#!/usr/bin/env python3
"""Fold per-leg BENCH_*.json artifacts into one perf-trajectory table.

Every bench binary writes a BENCH_*.json (see bench/bench_common.h) and CI
uploads one artifact per matrix leg. Downloading those artifacts yields a
directory per leg, each holding the same three file names — this script
merges any number of them into a single markdown table so a perf trajectory
across legs (and across downloaded runs) is one page instead of N job logs.

Usage:
    scripts/bench_summary.py [path ...]

Each path may be a BENCH_*.json file or a directory searched recursively
for files matching BENCH_*.json. With no arguments the current directory
is searched. The leg label for a result is the file's parent directory
(relative, '.' for the working directory), which matches the artifact
names CI uses (bench-json-<compiler>-<kernel>-<precision>).

Standard library only — the CI runners and the dev image both lack
third-party Python packages by design.
"""

import json
import os
import sys


def find_bench_files(paths):
    """Yield (leg, path) for every BENCH_*.json under the given paths."""
    if not paths:
        paths = ["."]
    seen = set()
    for p in paths:
        if os.path.isfile(p):
            candidates = [p]
        elif os.path.isdir(p):
            candidates = []
            for root, _dirs, files in os.walk(p):
                for name in sorted(files):
                    if name.startswith("BENCH_") and name.endswith(".json"):
                        candidates.append(os.path.join(root, name))
        else:
            print(f"warning: {p}: no such file or directory", file=sys.stderr)
            continue
        for c in candidates:
            real = os.path.realpath(c)
            if real in seen:
                continue
            seen.add(real)
            leg = os.path.relpath(os.path.dirname(c)) or "."
            yield leg, c


def load_rows(leg, path):
    """(result_rows, phase_rows): flat dicts annotated with leg + host."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    host = doc.get("host", {})
    bench = doc.get("bench", os.path.basename(path))
    rows = []
    for r in doc.get("results", []):
        rows.append(
            {
                "leg": leg,
                "bench": bench,
                "name": r.get("name", "?"),
                "kernel": r.get("kernel", "?"),
                "precision": r.get("precision", "?"),
                "words_per_s": float(r.get("words_per_s", 0.0)),
                "f32_detectors": r.get("f32_detectors"),
                "f64_rescue_detectors": r.get("f64_rescue_detectors"),
                "host_kernel": host.get("active_kernel", "?"),
            }
        )
    phases = []
    for p in doc.get("phases", []):
        phases.append(
            {
                "leg": leg,
                "bench": bench,
                "name": p.get("name", "?"),
                "phase": p.get("phase", "?"),
                "mean_seconds": float(p.get("mean_seconds", 0.0)),
                "count": int(p.get("count", 0)),
            }
        )
    return rows, phases


def fmt_rate(words_per_s):
    if words_per_s >= 1e6:
        return f"{words_per_s / 1e6:.1f}M"
    if words_per_s >= 1e3:
        return f"{words_per_s / 1e3:.1f}k"
    return f"{words_per_s:.0f}"


def fmt_mix(row):
    if row["f32_detectors"] is None:
        return ""
    return f"{row['f32_detectors']}f32/{row['f64_rescue_detectors']}f64"


def fmt_mean_us(seconds):
    return f"{seconds * 1e6:.1f}us"


def main(argv):
    rows = []
    phase_rows = []
    for leg, path in find_bench_files(argv[1:]):
        try:
            file_rows, file_phases = load_rows(leg, path)
            rows.extend(file_rows)
            phase_rows.extend(file_phases)
        except (OSError, ValueError) as e:
            print(f"warning: {path}: {e}", file=sys.stderr)
    if not rows:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1

    rows.sort(key=lambda r: (r["bench"], r["name"], r["kernel"],
                             r["precision"], r["leg"]))
    header = ["bench", "experiment", "kernel", "precision", "words/s",
              "detector mix", "leg"]
    table = [
        [r["bench"], r["name"], r["kernel"], r["precision"],
         fmt_rate(r["words_per_s"]), fmt_mix(r), r["leg"]]
        for r in rows
    ]
    widths = [max(len(h), *(len(row[i]) for row in table))
              for i, h in enumerate(header)]
    def line(cells):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
    print(line(header))
    print("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in table:
        print(line(row))

    if phase_rows:
        # The per-phase sections benches emit (bench_common.h add_phase):
        # where a served request's lifetime went, as its own table.
        phase_rows.sort(key=lambda r: (r["bench"], r["name"], r["phase"],
                                       r["leg"]))
        pheader = ["bench", "experiment", "phase", "mean", "count", "leg"]
        ptable = [
            [r["bench"], r["name"], r["phase"], fmt_mean_us(r["mean_seconds"]),
             str(r["count"]), r["leg"]]
            for r in phase_rows
        ]
        pwidths = [max(len(h), *(len(row[i]) for row in ptable))
                   for i, h in enumerate(pheader)]
        def pline(cells):
            return "| " + " | ".join(
                c.ljust(w) for c, w in zip(cells, pwidths)) + " |"
        print()
        print("phase breakdown:")
        print(pline(pheader))
        print("|" + "|".join("-" * (w + 2) for w in pwidths) + "|")
        for row in ptable:
            print(pline(row))

    legs = sorted({(r["leg"], r["host_kernel"]) for r in rows})
    print()
    for leg, host_kernel in legs:
        print(f"{leg}: active kernel {host_kernel}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
