#!/usr/bin/env bash
# Networked sweep smoke: the distributed exhaustive 2^16-word sweep over
# localhost TCP, twice.
#
#   scripts/net_sweep_smoke.sh [BUILD_DIR]
#
# Leg 1 — healthy: 1 coordinator + 2 workers split the sweep; the
# coordinator binary itself asserts bit-for-bit equality against its
# in-process sweep and the Boolean AND reference, then shuts the workers
# down (both must exit 0).
#
# Leg 2 — straggler + observability: 2 fresh workers, one SIGSTOPped
# before the sweep starts. Its shards sit in flight until the straggler
# deadline, get re-sharded to the live worker, and the sweep must still
# complete bit-for-bit. The coordinator runs in the background with
# --trace-out so the script can scrape the live worker's metrics endpoint
# *mid-sweep* (request-latency histogram buckets and non-zero byte
# counters must be present), and the merged Perfetto trace written
# afterwards must parse as JSON and contain per-request phase spans
# (admission, kernel), per-shard coordinator spans (shard_send) and at
# least one reshard event. The trace file lands at $TRACE_OUT (default
# sweep_trace.json) for CI to upload next to the bench JSON.
#
# Leg 3 — registry discovery + straggler: an example_registry process with
# a long TTL, 2 fresh workers that register themselves (no --workers list
# anywhere), one SIGSTOPped *after* registering. The coordinator discovers
# both endpoints from the registry, the frozen worker's shards get
# re-sharded, and the sweep still completes bit-for-bit.
#
# Leg 4 — compiled cascade: a fresh worker serves a wire-v3 program frame.
# example_compile_function synthesizes an arbitrary 3-input truth table to
# a majority cascade, ships it over TCP, and asserts the remote result
# bit-for-bit against the Boolean table.
set -euo pipefail

BUILD=${1:-build}
WORKER="$BUILD/example_sweep_worker"
COORD="$BUILD/example_sweep_coordinator"
REGISTRY="$BUILD/example_registry"
SCRAPE="$BUILD/example_scrape"
TRACE_OUT=${TRACE_OUT:-sweep_trace.json}
[[ -x $WORKER && -x $COORD && -x $REGISTRY && -x $SCRAPE ]] || {
  echo "missing $WORKER, $COORD, $REGISTRY or $SCRAPE (build first)" >&2
  exit 1
}

# Ports in the dynamic range, offset by PID so parallel CI jobs on one
# host do not collide.
P1=$((20000 + ($$ % 20000)))
P2=$((P1 + 1))
P3=$((P1 + 2))
P4=$((P1 + 3))
P5=$((P1 + 4))  # registry
P6=$((P1 + 5))
P7=$((P1 + 6))

cleanup() {
  # Resume anything stopped so kill can reap it; ignore the already-gone.
  kill -CONT "${PIDS[@]}" 2>/dev/null || true
  kill "${PIDS[@]}" 2>/dev/null || true
}
PIDS=()
trap cleanup EXIT

echo "=== leg 1: healthy 2-worker TCP sweep ==="
"$WORKER" --transport=tcp --listen "tcp:127.0.0.1:$P1" --max-seconds 300 &
W1=$!
"$WORKER" --transport=tcp --listen "tcp:127.0.0.1:$P2" --max-seconds 300 &
W2=$!
PIDS+=("$W1" "$W2")
"$COORD" --transport=tcp \
  --workers "tcp:127.0.0.1:$P1,tcp:127.0.0.1:$P2" --shutdown-workers
wait "$W1"
wait "$W2"
echo "leg 1 OK: both workers exited cleanly after shutdown"

echo "=== leg 2: straggler (one worker SIGSTOPped) + observability ==="
"$WORKER" --transport=tcp --listen "tcp:127.0.0.1:$P3" --max-seconds 300 &
W3=$!
"$WORKER" --transport=tcp --listen "tcp:127.0.0.1:$P4" --max-seconds 300 &
W4=$!
PIDS+=("$W3" "$W4")
# Let the victim reach its listen loop, then freeze it. Its accept backlog
# still completes TCP handshakes, so the coordinator connects and sends —
# and never hears back: exactly the straggler shape.
sleep 1
kill -STOP "$W4"
# Background coordinator: the straggler deadline guarantees the sweep is
# still in flight one second in, which is when the metrics scrape lands.
COORD_LOG=$(mktemp)
"$COORD" --transport=tcp \
  --workers "tcp:127.0.0.1:$P3,tcp:127.0.0.1:$P4" \
  --deadline-ms 1000 --shutdown-workers --trace-out "$TRACE_OUT" \
  >"$COORD_LOG" &
C1=$!
PIDS+=("$C1")
sleep 1
# Mid-sweep scrape of the live worker: the histogram families must render
# and the transport byte counters must already be counting.
METRICS=$("$SCRAPE" "tcp:127.0.0.1:$P3")
grep -q 'sw_serve_request_latency_seconds_bucket' <<<"$METRICS" || {
  echo "mid-sweep scrape is missing the request-latency histogram" >&2
  exit 1
}
grep -q 'sw_serve_kernel_exec_seconds_bucket' <<<"$METRICS" || {
  echo "mid-sweep scrape is missing the kernel-exec histogram" >&2
  exit 1
}
grep -qE 'sw_net_rx_bytes_total [1-9]' <<<"$METRICS" || {
  echo "mid-sweep scrape shows no bytes received" >&2
  exit 1
}
grep -qE 'sw_net_tx_bytes_total [1-9]' <<<"$METRICS" || {
  echo "mid-sweep scrape shows no bytes sent" >&2
  exit 1
}
wait "$C1"
OUT=$(cat "$COORD_LOG")
rm -f "$COORD_LOG"
echo "$OUT"
grep -q "PASS" <<<"$OUT"
# The straggler's shard(s) must actually have been re-sharded, not just
# happen to finish: a zero re-shard count means the leg tested nothing.
grep -qE "[1-9][0-9]* re-shard" <<<"$OUT" || {
  echo "straggler leg completed without re-sharding" >&2
  exit 1
}
# The merged trace must be valid JSON and show the per-request phase spans
# from the worker, the per-shard spans from the coordinator, and the
# reshard event the straggler forced.
python3 - "$TRACE_OUT" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
names = {e.get("name") for e in doc["traceEvents"]}
for want in ("admission", "kernel", "wire_decode", "wire_encode",
             "shard_assign", "shard_send", "shard_wait", "shard_retire",
             "reshard"):
    assert want in names, f"trace is missing {want!r} spans: {sorted(names)}"
print(f"trace OK: {len(doc['traceEvents'])} events, "
      f"{len(names)} distinct span names")
EOF
wait "$W3"
kill -CONT "$W4" 2>/dev/null || true
kill "$W4" 2>/dev/null || true
echo "leg 2 OK: sweep completed bit-for-bit around the stopped worker"

echo "=== leg 3: registry discovery + straggler ==="
# Long TTL: the frozen worker's advert must stay listed so the coordinator
# discovers 2 workers (a straggler is a scheduling fact, not a
# deregistration).
"$REGISTRY" --listen "tcp:127.0.0.1:$P5" --ttl-ms 60000 --max-seconds 300 &
R1=$!
PIDS+=("$R1")
# Registry first, workers second: a worker's first register fires at
# start-up, and its retry cadence is the 2 s heartbeat — give the registry
# a beat to bind so the first attempt is the one that lands.
sleep 1
"$WORKER" --transport=tcp --listen "tcp:127.0.0.1:$P6" \
  --registry "tcp:127.0.0.1:$P5" --max-seconds 300 &
W5=$!
"$WORKER" --transport=tcp --listen "tcp:127.0.0.1:$P7" \
  --registry "tcp:127.0.0.1:$P5" --max-seconds 300 &
W6=$!
PIDS+=("$W5" "$W6")
# Let both workers heartbeat their adverts in, then freeze one — after
# registration, so the registry still lists it and the coordinator must
# work around it the straggler way.
sleep 1
kill -STOP "$W6"
OUT=$("$COORD" --transport=tcp \
  --registry "tcp:127.0.0.1:$P5" --min-workers 2 --discover-ms 20000 \
  --deadline-ms 1000 --shutdown-workers)
echo "$OUT"
grep -q "PASS" <<<"$OUT"
grep -q "discovered 2 worker(s)" <<<"$OUT" || {
  echo "coordinator did not discover both workers from the registry" >&2
  exit 1
}
grep -qE "[1-9][0-9]* re-shard" <<<"$OUT" || {
  echo "registry leg completed without re-sharding" >&2
  exit 1
}
wait "$W5"
kill -CONT "$W6" 2>/dev/null || true
kill "$W6" 2>/dev/null || true
kill "$R1" 2>/dev/null || true
echo "leg 3 OK: registry-discovered sweep completed around the stopped worker"

echo "=== leg 4: compiled cascade over a wire-v3 program frame ==="
COMPILE="$BUILD/example_compile_function"
[[ -x $COMPILE ]] || { echo "missing $COMPILE (build first)" >&2; exit 1; }
P8=$((P1 + 7))
"$WORKER" --transport=tcp --listen "tcp:127.0.0.1:$P8" --max-seconds 300 &
W7=$!
PIDS+=("$W7")
sleep 1
# 00011011 = 0x1B, an arbitrary non-special 3-ary function: the cascade is
# a real multi-gate chain, and the binary exits non-zero on any bit
# mismatch against the Boolean table.
OUT=$("$COMPILE" 00011011 --connect "tcp:127.0.0.1:$P8")
echo "$OUT"
grep -q "PASS: remote cascade" <<<"$OUT"
kill "$W7" 2>/dev/null || true
echo "leg 4 OK: synthesized cascade served remotely bit-for-bit"
