#!/usr/bin/env bash
# Networked sweep smoke: the distributed exhaustive 2^16-word sweep over
# localhost TCP, twice.
#
#   scripts/net_sweep_smoke.sh [BUILD_DIR]
#
# Leg 1 — healthy: 1 coordinator + 2 workers split the sweep; the
# coordinator binary itself asserts bit-for-bit equality against its
# in-process sweep and the Boolean AND reference, then shuts the workers
# down (both must exit 0).
#
# Leg 2 — straggler: 2 fresh workers, one SIGSTOPped before the sweep
# starts. Its shards sit in flight until the straggler deadline, get
# re-sharded to the live worker, and the sweep must still complete
# bit-for-bit. The stopped worker is then resumed and killed.
set -euo pipefail

BUILD=${1:-build}
WORKER="$BUILD/example_sweep_worker"
COORD="$BUILD/example_sweep_coordinator"
[[ -x $WORKER && -x $COORD ]] || {
  echo "missing $WORKER or $COORD (build first)" >&2
  exit 1
}

# Ports in the dynamic range, offset by PID so parallel CI jobs on one
# host do not collide.
P1=$((20000 + ($$ % 20000)))
P2=$((P1 + 1))
P3=$((P1 + 2))
P4=$((P1 + 3))

cleanup() {
  # Resume anything stopped so kill can reap it; ignore the already-gone.
  kill -CONT "${PIDS[@]}" 2>/dev/null || true
  kill "${PIDS[@]}" 2>/dev/null || true
}
PIDS=()
trap cleanup EXIT

echo "=== leg 1: healthy 2-worker TCP sweep ==="
"$WORKER" --transport=tcp --listen "tcp:127.0.0.1:$P1" --max-seconds 300 &
W1=$!
"$WORKER" --transport=tcp --listen "tcp:127.0.0.1:$P2" --max-seconds 300 &
W2=$!
PIDS+=("$W1" "$W2")
"$COORD" --transport=tcp \
  --workers "tcp:127.0.0.1:$P1,tcp:127.0.0.1:$P2" --shutdown-workers
wait "$W1"
wait "$W2"
echo "leg 1 OK: both workers exited cleanly after shutdown"

echo "=== leg 2: straggler (one worker SIGSTOPped) ==="
"$WORKER" --transport=tcp --listen "tcp:127.0.0.1:$P3" --max-seconds 300 &
W3=$!
"$WORKER" --transport=tcp --listen "tcp:127.0.0.1:$P4" --max-seconds 300 &
W4=$!
PIDS+=("$W3" "$W4")
# Let the victim reach its listen loop, then freeze it. Its accept backlog
# still completes TCP handshakes, so the coordinator connects and sends —
# and never hears back: exactly the straggler shape.
sleep 1
kill -STOP "$W4"
OUT=$("$COORD" --transport=tcp \
  --workers "tcp:127.0.0.1:$P3,tcp:127.0.0.1:$P4" \
  --deadline-ms 1000 --shutdown-workers)
echo "$OUT"
grep -q "PASS" <<<"$OUT"
# The straggler's shard(s) must actually have been re-sharded, not just
# happen to finish: a zero re-shard count means the leg tested nothing.
grep -qE "[1-9][0-9]* re-shard" <<<"$OUT" || {
  echo "straggler leg completed without re-sharding" >&2
  exit 1
}
wait "$W3"
kill -CONT "$W4" 2>/dev/null || true
kill "$W4" 2>/dev/null || true
echo "leg 2 OK: sweep completed bit-for-bit around the stopped worker"
