// Experiments E1 + E2 — paper Fig. 3: byte-based 3-input Majority gate
// response in time and frequency.
//
// Runs the reduced 1-D micromagnetic byte gate (8 frequency channels in one
// waveguide) for all 8 (I1, I2, I3) input vectors applied uniformly across
// channels, then:
//   * writes the Mx(t)/Ms trace at the first output port per pattern
//     (Fig. 3 bottom) -> results/fig3_time.csv
//   * writes the FFT amplitude spectrum per pattern (Fig. 3 top)
//     -> results/fig3_fft.csv
//   * prints the tone-to-spur crosstalk table: peaks appear only at the 8
//     excitation frequencies (the paper's "no inter-frequency
//     interference" observation).
// The google-benchmark section measures the LLG solver on this workload.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "fft/spectrum.h"
#include "io/csv.h"
#include "util/strings.h"
#include "mag/anisotropy.h"
#include "mag/demag_factors.h"
#include "mag/demag_local.h"
#include "mag/exchange.h"
#include "mag/simulation.h"
#include "util/units.h"

namespace {

using namespace sw;
using bench::make_byte_gate_setup;
using bench::pattern_label;
using bench::run_all_patterns;

void run_experiment() {
  auto setup = make_byte_gate_setup();
  core::MicromagGateRunner runner(setup.layout, setup.wg, setup.cfg);
  std::printf("byte gate: %zu sources, %zu detectors, guide %.0f nm\n",
              setup.layout.sources.size(), setup.layout.detectors.size(),
              runner.guide_length() / units::nm);

  // Calibrate once, then fan the 8 patterns over both cores.
  runner.run_uniform(core::Bits{0, 0, 0});
  const unsigned threads =
      std::max(1u, std::thread::hardware_concurrency());
  const auto runs = run_all_patterns(runner, 3, threads);
  const auto patterns = core::all_patterns(3);

  // ---- Fig. 3 bottom: time traces at output port 1 (10 GHz channel).
  {
    std::vector<std::string> header{"t_ns"};
    for (const auto& p : patterns) header.push_back(pattern_label(p));
    io::CsvWriter csv("results/fig3_time.csv", header);
    const auto& times = runs[0].times;
    for (std::size_t s = 0; s < times.size(); ++s) {
      std::vector<double> row{times[s] / units::ns};
      for (const auto& run : runs) row.push_back(run.traces[0][s]);
      csv.row(row);
    }
  }
  std::printf("Fig. 3 (time traces, all 8 patterns) -> results/fig3_time.csv\n");

  // ---- Fig. 3 top: FFT amplitude spectra over the detection window.
  const auto tones = bench::paper_frequencies();
  io::TextTable tab({"pattern", "peaks@10..80GHz", "max spur", "tone/spur"});
  {
    std::vector<std::string> header{"freq_GHz"};
    for (const auto& p : patterns) header.push_back(pattern_label(p));
    io::CsvWriter csv("results/fig3_fft.csv", header);

    std::vector<fft::Spectrum> spectra;
    for (const auto& run : runs) {
      // Sum the traces of all ports so every channel contributes, matching
      // the paper's whole-signal FFT view.
      std::vector<double> sig(run.times.size() - run.window_begin, 0.0);
      for (const auto& trace : run.traces) {
        for (std::size_t s = 0; s < sig.size(); ++s) {
          sig[s] += trace[run.window_begin + s];
        }
      }
      spectra.push_back(
          fft::amplitude_spectrum(sig, runs[0].sample_rate,
                                  fft::WindowKind::kHann));
    }

    for (std::size_t k = 0; k < spectra[0].freq.size(); ++k) {
      if (spectra[0].freq[k] > 100e9) break;  // the paper plots 0..90 GHz
      std::vector<double> row{spectra[0].freq[k] / units::GHz};
      for (const auto& s : spectra) row.push_back(s.amplitude[k]);
      csv.row(row);
    }

    for (std::size_t p = 0; p < runs.size(); ++p) {
      const auto peaks = fft::find_peaks(spectra[p], 1e-5);
      std::size_t at_tone = 0;
      for (const auto& pk : peaks) {
        for (double f : tones) {
          if (std::abs(pk.freq - f) < 3.0 * spectra[p].resolution) {
            ++at_tone;
            break;
          }
        }
      }
      const double ratio =
          fft::tone_to_spur_ratio(spectra[p], tones,
                                  5.0 * spectra[p].resolution);
      double max_spur = 0.0;
      for (std::size_t k = 0; k < spectra[p].freq.size(); ++k) {
        bool near_tone = spectra[p].freq[k] < 5.0 * spectra[p].resolution;
        for (double f : tones) {
          near_tone |= std::abs(spectra[p].freq[k] - f) <
                       5.0 * spectra[p].resolution;
        }
        if (!near_tone) max_spur = std::max(max_spur,
                                            spectra[p].amplitude[k]);
      }
      tab.add_row({pattern_label(patterns[p]),
                   std::to_string(at_tone) + "/" + std::to_string(peaks.size()),
                   sw::util::format_sig(max_spur, 2),
                   sw::util::format_sig(ratio, 3)});
    }
  }
  std::printf("Fig. 3 (FFT spectra) -> results/fig3_fft.csv\n\n");
  std::printf("%s\n", tab.str().c_str());
  std::printf(
      "Paper observation reproduced: spectral peaks only at the 8 "
      "excitation\nfrequencies; no inter-frequency intermodulation above "
      "the noise floor.\n\n");
}

void BM_ByteGateSingleRun(benchmark::State& state) {
  // One short micromagnetic run of the full byte gate (reduced duration so
  // the benchmark loop stays tractable).
  auto setup = make_byte_gate_setup(8, 2.2e-9);
  setup.cfg.t_end = 0.2e-9;
  for (auto _ : state) {
    const std::size_t nx = static_cast<std::size_t>(
        std::ceil((setup.layout.right_edge() + 240e-9) /
                  setup.cfg.cell_size));
    const mag::Mesh mesh(nx, 1, 1, setup.cfg.cell_size, setup.wg.width,
                         setup.wg.thickness);
    mag::Simulation sim(mesh, setup.wg.material, setup.cfg.integrator);
    sim.add_term<mag::ExchangeField>(mesh, setup.wg.material);
    sim.add_term<mag::UniaxialAnisotropyField>(setup.wg.material);
    sim.add_term<mag::DemagLocalField>(
        setup.wg.material,
        mag::demag_factors_waveguide(setup.wg.width, setup.wg.thickness));
    sim.run_until(setup.cfg.t_end);
    benchmark::DoNotOptimize(sim.magnetization().average());
    state.counters["cell_steps_per_s"] = benchmark::Counter(
        static_cast<double>(sim.stats().steps_taken * nx),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_ByteGateSingleRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E1/E2: Fig. 3 — byte MAJ gate, time + frequency ===\n\n");
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
