// Experiment E5 — Section V "Scalability": damping-graded input drive.
//
// The paper argues that for larger input counts the damping asymmetry
// between near and far sources eventually corrupts the interference vote,
// and proposes graded drive levels (I1 > I2 > ... > In). This bench
// quantifies that argument on the analytic engine:
//   * worst-case decision margin vs input count m, with and without
//     damping compensation, for the paper's damping (0.004) and a lossy
//     variant -> results/scalability.csv and a printed table
//   * the drive-level schedule itself for the byte gate.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/gate.h"
#include "core/scalability.h"
#include "dispersion/fvmsw.h"
#include "io/csv.h"
#include "util/strings.h"
#include "util/units.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw;
using bench::paper_waveguide;

void run_experiment() {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);

  io::CsvWriter csv("results/scalability.csv",
                    {"alpha", "inputs", "margin_uncompensated",
                     "margin_compensated", "correct_uncompensated",
                     "correct_compensated"});

  for (const double alpha : {0.004, 0.02, 0.05}) {
    const auto points = core::scalability_sweep(model, alpha, 2e10, 15);
    io::TextTable tab({"inputs m", "margin (plain)", "margin (graded)",
                       "correct (plain)", "correct (graded)"});
    for (const auto& pt : points) {
      tab.add_row({std::to_string(pt.num_inputs),
                   sw::util::format_sig(pt.margin_uncompensated, 3),
                   sw::util::format_sig(pt.margin_compensated, 3),
                   pt.correct_uncompensated ? "yes" : "NO",
                   pt.correct_compensated ? "yes" : "NO"});
      csv.row({alpha, static_cast<double>(pt.num_inputs),
               pt.margin_uncompensated, pt.margin_compensated,
               pt.correct_uncompensated ? 1.0 : 0.0,
               pt.correct_compensated ? 1.0 : 0.0});
    }
    std::printf("alpha = %.3f (decay length %.2f um @ 20 GHz)\n%s\n", alpha,
                wavesim::WaveEngine(model, alpha).decay_length(2e10) /
                    units::um,
                tab.str().c_str());
  }

  // Drive-level schedule for the paper's byte gate (graded I1 > I2 > I3).
  const core::InlineGateDesigner designer(model);
  core::GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = bench::paper_frequencies();
  const auto layout = designer.design(spec);
  const wavesim::WaveEngine engine(model, wg.material.alpha);
  const auto levels = core::damping_compensation(layout, engine);

  io::TextTable tab({"channel", "f [GHz]", "I1 drive", "I2 drive",
                     "I3 drive"});
  for (std::size_t ch = 0; ch < 8; ++ch) {
    std::vector<std::string> row{std::to_string(ch + 1),
                                 sw::util::format_sig(
                                     spec.frequencies[ch] / units::GHz, 3)};
    for (std::size_t k = 0; k < 3; ++k) {
      // levels[] is ordered like layout.sources (channel-major).
      row.push_back(sw::util::format_sig(levels[ch * 3 + k], 4));
    }
    tab.add_row(row);
  }
  std::printf("graded drive levels, byte gate (relative):\n%s\n",
              tab.str().c_str());
  std::printf(
      "Paper claim reproduced: required drive grading satisfies I1 >= I2 "
      ">= I3;\nwith grading the margin is flat in m, without it the margin "
      "decays with m\nand eventually flips the vote at high damping.\n\n");
}

void BM_EvaluateByteGate(benchmark::State& state) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  core::GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = bench::paper_frequencies();
  const wavesim::WaveEngine engine(model, wg.material.alpha);
  const core::DataParallelGate gate(designer.design(spec), engine);
  const core::Bits pattern{1, 0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gate.evaluate_uniform(pattern));
  }
}
BENCHMARK(BM_EvaluateByteGate);

void BM_MarginReport(benchmark::State& state) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  core::GateSpec spec;
  spec.num_inputs = static_cast<std::size_t>(state.range(0));
  spec.frequencies = {2e10};
  const wavesim::WaveEngine engine(model, 0.004);
  const core::DataParallelGate gate(designer.design(spec), engine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::margin_report(gate));
  }
}
BENCHMARK(BM_MarginReport)->Arg(3)->Arg(7)->Arg(11);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E5: scalability — graded drive levels vs damping ===\n\n");
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
