// Experiment E3 — paper Fig. 4: per-frequency MAJ gate outputs.
//
// Runs the byte gate for all 8 input vectors and, for every frequency
// channel a)..h) (10..80 GHz):
//   * writes the Mx(t)/Ms trace at that channel's output port for every
//     pattern -> results/fig4_f{1..8}.csv
//   * prints the decoded per-channel truth table against MAJ(I1, I2, I3)
//     with the phase-decision margin (the paper's qualitative claim that
//     "this holds true for all 8 output detectors" becomes a hard check).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "io/csv.h"
#include "util/strings.h"
#include "util/units.h"

namespace {

using namespace sw;
using bench::make_byte_gate_setup;
using bench::pattern_label;
using bench::run_all_patterns;

void run_experiment() {
  auto setup = make_byte_gate_setup();
  core::MicromagGateRunner runner(setup.layout, setup.wg, setup.cfg);
  runner.run_uniform(core::Bits{0, 0, 0});  // calibration
  const unsigned threads =
      std::max(1u, std::thread::hardware_concurrency());
  const auto runs = run_all_patterns(runner, 3, threads);
  const auto patterns = core::all_patterns(3);

  // Per-channel trace files (Fig. 4 a..h).
  for (std::size_t ch = 0; ch < setup.layout.detectors.size(); ++ch) {
    std::vector<std::string> header{"t_ns"};
    for (const auto& p : patterns) header.push_back(pattern_label(p));
    io::CsvWriter csv("results/fig4_f" + std::to_string(ch + 1) + ".csv",
                      header);
    const auto& times = runs[0].times;
    for (std::size_t s = 0; s < times.size(); ++s) {
      std::vector<double> row{times[s] / units::ns};
      for (const auto& run : runs) row.push_back(run.traces[ch][s]);
      csv.row(row);
    }
  }
  std::printf("Fig. 4 traces -> results/fig4_f1.csv .. fig4_f8.csv\n\n");

  // Truth table: decoded output of every channel for every pattern.
  std::size_t failures = 0;
  double min_margin = 1.0;
  io::TextTable tab({"pattern", "MAJ", "f1", "f2", "f3", "f4", "f5", "f6",
                     "f7", "f8", "min margin"});
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const bool expect = core::majority(patterns[p]);
    std::vector<std::string> row{pattern_label(patterns[p]),
                                 expect ? "1" : "0"};
    double mrow = 1.0;
    for (const auto& ch : runs[p].channels) {
      row.push_back(std::to_string(int(ch.logic)) +
                    (ch.logic == static_cast<std::uint8_t>(expect) ? ""
                                                                   : "!"));
      failures += (ch.logic != static_cast<std::uint8_t>(expect));
      mrow = std::min(mrow, ch.margin);
    }
    min_margin = std::min(min_margin, mrow);
    row.push_back(sw::util::format_sig(mrow, 3));
    tab.add_row(row);
  }
  std::printf("%s\n", tab.str().c_str());
  std::printf("truth-table failures: %zu / 64 channel-pattern pairs\n",
              failures);
  std::printf("worst phase-decision margin: %.3f\n\n", min_margin);
  if (failures == 0) {
    std::printf(
        "Paper result reproduced: every frequency channel computes "
        "MAJ(I1,I2,I3)\nfor every input vector (Fig. 4 a-h).\n\n");
  } else {
    std::printf("WARNING: majority decision violated — inspect margins.\n\n");
  }
}

void BM_DecodeChannels(benchmark::State& state) {
  // Goertzel-decode cost for one 8-channel output set over a realistic
  // detection window (~1k samples).
  std::vector<double> sig(1200);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    for (int c = 1; c <= 8; ++c) {
      sig[i] += 0.001 * std::cos(6.2832e10 * 0.5 * c * 1e-12 *
                                 static_cast<double>(i));
    }
  }
  for (auto _ : state) {
    for (int c = 1; c <= 8; ++c) {
      benchmark::DoNotOptimize(
          core::extract_phasor(sig, 200, 1200, 1e12, 1e10 * c));
    }
  }
}
BENCHMARK(BM_DecodeChannels);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E3: Fig. 4 — per-frequency Majority outputs ===\n\n");
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
