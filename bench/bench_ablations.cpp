// Design-choice ablations (DESIGN.md §6) on the micromagnetic gate:
//
//   A1 drive amplitude — where does the linear regime end? Sweeps the
//      antenna field and reports decode margins and spur floor; the paper's
//      phase logic relies on staying below the nonlinear threshold.
//   A2 detection window — decode margin vs window start (settle periods)
//      and length; quantifies how much steady-state time the detector
//      actually needs.
//   A3 temperature — Langevin noise at 0/150/300/450 K; the majority
//      decision must survive thermal agitation at room temperature.
//
// All three use a single-channel 3-input gate (every effect is per-channel)
// so the full sweep stays under a minute.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/detector.h"
#include "fft/spectrum.h"
#include "io/csv.h"
#include "util/strings.h"
#include "util/units.h"

namespace {

using namespace sw;
using bench::paper_waveguide;

struct SingleChannelSetup {
  disp::Waveguide wg;
  core::GateLayout layout;
  core::MicromagConfig cfg;
};

SingleChannelSetup make_setup() {
  SingleChannelSetup s;
  s.wg = paper_waveguide();
  s.cfg = core::MicromagConfig{};
  s.cfg.t_end = 1.0e-9;
  auto model = disp::LocalDemag1DDispersion::from_waveguide(s.wg);
  model.set_discretization(s.cfg.cell_size);
  const core::InlineGateDesigner designer(model);
  core::GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = {2e10};
  s.layout = designer.design(spec);
  return s;
}

// Worst decode margin over all 8 patterns; counts wrong bits.
struct SweepPoint {
  double min_margin = 1.0;
  std::size_t errors = 0;
  double amplitude = 0.0;  ///< single-wave port amplitude (cal run)
};

SweepPoint run_truth_table(core::MicromagGateRunner& runner) {
  SweepPoint pt;
  for (const auto& pattern : core::all_patterns(3)) {
    const auto run = runner.run_uniform(pattern);
    const auto want =
        static_cast<std::uint8_t>(core::majority(pattern));
    if (run.channels[0].logic != want) {
      ++pt.errors;
    } else {
      pt.min_margin = std::min(pt.min_margin, run.channels[0].margin);
    }
    pt.amplitude = std::max(pt.amplitude, run.channels[0].amplitude);
  }
  if (pt.errors > 0) pt.min_margin = 0.0;
  return pt;
}

void ablation_drive() {
  std::printf("--- A1: drive amplitude (linear-regime boundary) ---\n");
  io::TextTable tab({"drive [kA/m]", "port mx/Ms", "min margin", "errors"});
  io::CsvWriter csv("results/ablation_drive.csv",
                    {"drive_kA_m", "port_amplitude", "min_margin", "errors"});
  for (const double drive : {0.5e3, 2e3, 8e3, 20e3, 50e3, 120e3}) {
    auto s = make_setup();
    s.cfg.drive_field = drive;
    core::MicromagGateRunner runner(s.layout, s.wg, s.cfg);
    const auto pt = run_truth_table(runner);
    tab.add_row({util::format_sig(drive / 1e3, 3),
                 util::format_sig(pt.amplitude, 3),
                 util::format_sig(pt.min_margin, 3),
                 std::to_string(pt.errors)});
    csv.row({drive / 1e3, pt.amplitude, pt.min_margin,
             static_cast<double>(pt.errors)});
  }
  std::printf("%s-> results/ablation_drive.csv\n\n", tab.str().c_str());
}

void ablation_window() {
  std::printf("--- A2: detection window (settle periods) ---\n");
  io::TextTable tab({"settle periods", "min margin", "errors"});
  io::CsvWriter csv("results/ablation_window.csv",
                    {"settle_periods", "min_margin", "errors"});
  for (const double settle : {1.0, 3.0, 6.0, 12.0}) {
    auto s = make_setup();
    s.cfg.settle_periods = settle;
    core::MicromagGateRunner runner(s.layout, s.wg, s.cfg);
    const auto pt = run_truth_table(runner);
    tab.add_row({util::format_sig(settle, 3),
                 util::format_sig(pt.min_margin, 3),
                 std::to_string(pt.errors)});
    csv.row({settle, pt.min_margin, static_cast<double>(pt.errors)});
  }
  std::printf("%s-> results/ablation_window.csv\n\n", tab.str().c_str());
}

void ablation_temperature() {
  // Thermal noise sets a signal-to-noise requirement on the drive: at the
  // nominal 2 kA/m the 300 K Langevin field drowns the phase vote, while
  // >= 8 kA/m restores a solid margin — the quantitative version of the
  // paper's implicit room-temperature operating assumption.
  std::printf("--- A3: Langevin thermal noise (drive x temperature) ---\n");
  io::TextTable tab({"drive [kA/m]", "T [K]", "min margin", "errors"});
  io::CsvWriter csv("results/ablation_temperature.csv",
                    {"drive_kA_m", "T_K", "min_margin", "errors"});
  for (const double drive : {2e3, 8e3, 20e3}) {
    for (const double temperature : {0.0, 300.0}) {
      auto s = make_setup();
      s.cfg.drive_field = drive;
      s.cfg.temperature = temperature;
      core::MicromagGateRunner runner(s.layout, s.wg, s.cfg);
      const auto pt = run_truth_table(runner);
      tab.add_row({util::format_sig(drive / 1e3, 3),
                   util::format_sig(temperature, 3),
                   util::format_sig(pt.min_margin, 3),
                   std::to_string(pt.errors)});
      csv.row({drive / 1e3, temperature, pt.min_margin,
               static_cast<double>(pt.errors)});
    }
  }
  std::printf("%s-> results/ablation_temperature.csv\n\n", tab.str().c_str());
}

void BM_SingleChannelTruthTable(benchmark::State& state) {
  auto s = make_setup();
  for (auto _ : state) {
    core::MicromagGateRunner runner(s.layout, s.wg, s.cfg);
    benchmark::DoNotOptimize(runner.run_uniform(core::Bits{1, 1, 0}));
  }
}
BENCHMARK(BM_SingleChannelTruthTable)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== ablations: drive, window, temperature ===\n\n");
  ablation_drive();
  ablation_window();
  ablation_temperature();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
