// Experiment E7 — evaluator-service steady-state throughput.
//
// The serving question: a stream of packed word batches arrives for the
// same gate layout — what does plan caching buy over PR 1's per-call
// pattern of reconstructing a BatchEvaluator for every batch? The baseline
// rebuilds the evaluator per call exactly as the one-shot evaluate_batch
// hooks do (plan precompute + pool setup each time, engine memoisation
// shared); the service path submits the same batches to a long-lived
// EvaluatorService whose plan cache makes the steady-state cost just the
// packed-bit evaluation. A ≥ 2x floor on the speedup gates CI (the
// acceptance bar of the serving PR); both paths are cross-checked
// bit-for-bit first.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <deque>
#include <random>
#include <vector>

#include "bench_common.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "serve/service.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw;

// Serving shape: many modest batches, not one huge sweep. m = 7 inputs on
// the 8 paper channels makes the per-layout plan (112 steady-phasor
// solves) the dominant per-call cost the cache exists to amortise.
constexpr std::size_t kNumInputs = 7;
constexpr std::size_t kWordsPerBatch = 24;
constexpr std::size_t kBatches = 400;

struct BenchSetup {
  disp::Waveguide wg = bench::paper_waveguide();
  disp::FvmswDispersion model{wg};
  core::InlineGateDesigner designer{model};
  wavesim::WaveEngine engine{model, wg.material.alpha};
  core::GateLayout layout;
  core::DataParallelGate gate;
  std::vector<std::uint8_t> batch;

  BenchSetup()
      : layout([this] {
          core::GateSpec spec;
          spec.num_inputs = kNumInputs;
          spec.frequencies = bench::paper_frequencies();
          return designer.design(spec);
        }()),
        gate(layout, engine) {
    const std::size_t slots =
        layout.spec.frequencies.size() * layout.spec.num_inputs;
    batch.resize(kWordsPerBatch * slots);
    std::mt19937 rng(12345);
    std::bernoulli_distribution coin(0.5);
    for (auto& b : batch) b = coin(rng) ? 1 : 0;
  }
};

const BenchSetup& setup() {
  static const BenchSetup s;
  return s;
}

std::vector<std::uint8_t> run_rebuild_per_call(const BenchSetup& s) {
  // PR 1's per-call shape: a fresh BatchEvaluator (plan + pool) per batch.
  const wavesim::BatchEvaluator evaluator(s.gate);
  return evaluator.evaluate_bits(kWordsPerBatch, s.batch);
}

std::vector<std::uint8_t> run_service_batches(serve::EvaluatorService& svc,
                                              const core::GateLayout& layout,
                                              const BenchSetup& s,
                                              std::size_t batches) {
  // Pipelined client: submit the whole wave, then drain the futures. The
  // admission queue is sized to hold the wave (a throughput client raises
  // the knob; a latency client keeps it small and blocks).
  std::deque<std::future<serve::ResultBatch>> inflight;
  std::vector<std::uint8_t> last;
  for (std::size_t i = 0; i < batches; ++i) {
    inflight.push_back(svc.submit(serve::EvalRequest::for_layout(layout, s.batch, kWordsPerBatch)));
  }
  while (!inflight.empty()) {
    last = inflight.front().get().bits;
    inflight.pop_front();
  }
  return last;
}

void run_experiment(bench::BenchJson& json) {
  const auto& s = setup();
  const double words = static_cast<double>(kBatches * kWordsPerBatch);
  std::printf("%zu batches x %zu words, %zu-input %zu-channel majority "
              "layout (plan: %zu phasor pairs)\n\n",
              kBatches, kWordsPerBatch, kNumInputs,
              s.layout.spec.frequencies.size(),
              s.layout.sources.size());

  // Best of three either way (bench::best_of_three_seconds): the floor
  // check gates CI, so one scheduler stall must not read as a regression.
  std::vector<std::uint8_t> rebuilt;
  const double rebuild_s = bench::best_of_three_seconds([&] {
    for (std::size_t i = 0; i < kBatches; ++i) rebuilt = run_rebuild_per_call(s);
  });

  serve::ServiceOptions options;
  options.plan_cache_capacity = 8;
  options.admission.max_queued_requests = kBatches + 8;
  serve::EvaluatorService svc(s.model, s.wg.material.alpha, options);
  // Warm the plan cache once; steady state is what serving measures.
  (void)svc.submit(serve::EvalRequest::for_layout(s.layout, s.batch, kWordsPerBatch)).get();

  std::vector<std::uint8_t> served;
  const double service_s = bench::best_of_three_seconds(
      [&] { served = run_service_batches(svc, s.layout, s, kBatches); });

  const auto stats = svc.stats();
  std::printf("rebuild per call : %8.1f ms  (%10.0f words/s)\n",
              rebuild_s * 1e3, words / rebuild_s);
  std::printf("EvaluatorService : %8.1f ms  (%10.0f words/s, kernel: %s, "
              "precision: %s)\n",
              service_s * 1e3, words / service_s, stats.kernel.c_str(),
              stats.precision.c_str());
  std::printf("speedup          : %8.1fx  (floor: 2x)\n\n",
              rebuild_s / service_s);
  json.add("rebuild_per_call", stats.kernel, stats.precision,
           words / rebuild_s);
  json.add("service_steady_state", stats.kernel, stats.precision,
           words / service_s);

  // Kernel x precision side-by-side on the serving batch shape: the
  // cached-plan steady state runs exactly this evaluate_bits call per
  // request. Both precisions pinned explicitly so the rows mean the same
  // thing on every CI leg.
  {
    const wavesim::BatchEvaluator f64(
        s.gate,
        {.num_threads = 1, .precision = wavesim::Precision::kFloat64});
    const wavesim::BatchEvaluator f32(
        s.gate,
        {.num_threads = 1, .precision = wavesim::Precision::kFloat32});
    SW_REQUIRE(f32.effective_precision() == wavesim::Precision::kFloat32,
               "serving layout unexpectedly rejected the f32 plan");
    const auto time_kernel = [&](const wavesim::BatchEvaluator& evaluator,
                                 const wavesim::kernels::Kernel& kernel) {
      return bench::best_of_three_seconds([&] {
        for (std::size_t i = 0; i < kBatches; ++i) {
          benchmark::DoNotOptimize(
              evaluator.evaluate_bits(kWordsPerBatch, s.batch, kernel));
        }
      });
    };
    const double scalar_s = time_kernel(f64, wavesim::kernels::scalar_kernel());
    const double scalar_f32_s =
        time_kernel(f32, wavesim::kernels::scalar_kernel());
    std::printf("cached-plan evaluate_bits, per kernel (single thread):\n");
    std::printf("scalar f64       : %8.2f ms  (%10.0f words/s)\n",
                scalar_s * 1e3, words / scalar_s);
    std::printf("scalar f32       : %8.2f ms  (%10.0f words/s)\n",
                scalar_f32_s * 1e3, words / scalar_f32_s);
    json.add("serving_batch_shape", "scalar", "f64", words / scalar_s);
    json.add("serving_batch_shape", "scalar", "f32", words / scalar_f32_s);
    if (const auto* avx2 = wavesim::kernels::avx2_kernel()) {
      const double simd_s = time_kernel(f64, *avx2);
      const double simd_f32_s = time_kernel(f32, *avx2);
      std::printf("AVX2 f64         : %8.2f ms  (%10.0f words/s, %.2fx)\n",
                  simd_s * 1e3, words / simd_s, scalar_s / simd_s);
      std::printf("AVX2 f32         : %8.2f ms  (%10.0f words/s, %.2fx over "
                  "f64 AVX2)\n\n",
                  simd_f32_s * 1e3, words / simd_f32_s,
                  simd_s / simd_f32_s);
      json.add("serving_batch_shape", "avx2", "f64", words / simd_s);
      json.add("serving_batch_shape", "avx2", "f32", words / simd_f32_s);
    } else {
      std::printf("AVX2 kernel      : unavailable on this build/host\n\n");
    }
    if (const auto* avx512 = wavesim::kernels::avx512_kernel()) {
      const double simd512_s = time_kernel(f64, *avx512);
      const double simd512_f32_s = time_kernel(f32, *avx512);
      std::printf("AVX-512 f64      : %8.2f ms  (%10.0f words/s, %.2fx)\n",
                  simd512_s * 1e3, words / simd512_s, scalar_s / simd512_s);
      std::printf("AVX-512 f32      : %8.2f ms  (%10.0f words/s, %.2fx over "
                  "f64 AVX-512)\n\n",
                  simd512_f32_s * 1e3, words / simd512_f32_s,
                  simd512_s / simd512_f32_s);
      json.add("serving_batch_shape", "avx512", "f64", words / simd512_s);
      json.add("serving_batch_shape", "avx512", "f32", words / simd512_f32_s);
    } else {
      std::printf("AVX-512 kernel   : unavailable on this build/host\n\n");
    }
  }
  std::printf("cache: %llu hits / %llu misses / %llu evictions; "
              "%llu requests served\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.evictions),
              static_cast<unsigned long long>(stats.completed));
  // Tail latency over the recent-request window (the metrics endpoint
  // serves the same numbers as sw_serve_latency_p*_seconds).
  const auto latest = svc.stats();
  std::printf("latency: p50 %.0f us / p95 %.0f us / p99 %.0f us / "
              "mean %.0f us / max %.0f us over the last <=1024 of %llu "
              "request(s)\n",
              latest.latency.p50_s * 1e6, latest.latency.p95_s * 1e6,
              latest.latency.p99_s * 1e6, latest.latency.mean_s * 1e6,
              latest.latency.max_s * 1e6,
              static_cast<unsigned long long>(latest.latency.count));
  // Phase breakdown from the service's always-on histograms: where a
  // request's lifetime actually went, in the same shape the metrics
  // endpoint exposes — and folded into the bench artifact so the
  // trajectory tracks phase drift, not just the end-to-end rate.
  const struct {
    const char* label;
    const sw::obs::HistogramSnapshot& h;
  } phases[] = {
      {"request_latency", latest.request_latency},
      {"admission_wait", latest.admission_wait},
      {"queue_wait", latest.queue_wait},
      {"kernel_exec", latest.kernel_exec},
  };
  std::printf("phase breakdown (mean over all requests):\n");
  for (const auto& p : phases) {
    std::printf("  %-16s %10.1f us  (n=%llu)\n", p.label, p.h.mean() * 1e6,
                static_cast<unsigned long long>(p.h.count));
    json.add_phase("service_steady_state", p.label, p.h.mean(), p.h.count);
  }
  std::printf("\n");

  std::fflush(stdout);
  SW_REQUIRE(served == rebuilt,
             "service results diverged from the rebuild-per-call sweep");
  SW_REQUIRE(stats.cache.hits >= 3 * kBatches,
             "steady-state submissions were expected to hit the plan cache");
  // The acceptance bar: cached-plan steady state at >= 2x the
  // rebuild-per-call baseline, as a hard floor so CI catches regressions.
  SW_REQUIRE(rebuild_s / service_s >= 2.0,
             "service steady state regressed below 2x rebuild-per-call");
}

/// Returns the serving layout with one channel's margin driven to ~0: the
/// last input's source amplitude at `channel` is rescaled so the pattern
/// exciting only that input nearly cancels the rest at the detector. The
/// f32 margin proof must then reject exactly that detector, making an
/// f32-precision service build a block plan (f32 run + one f64 rescue lane)
/// instead of falling back wholesale.
core::GateLayout thin_one_channel(const BenchSetup& s, std::size_t channel) {
  core::GateLayout layout = s.layout;
  const core::DataParallelGate gate(layout, s.engine);
  const wavesim::EvalPlan probe(gate, wavesim::kDefaultFreqTol,
                                wavesim::Precision::kFloat64);
  const auto offsets = probe.detector_offsets();
  for (std::size_t d = 0; d < probe.num_detectors(); ++d) {
    if (probe.detector_channels()[d] != channel) continue;
    const std::size_t i = offsets[d];
    const std::size_t n = offsets[d + 1] - offsets[d];
    SW_REQUIRE(n >= 2, "thin-channel fixture expects >= 2 contributions");
    double head = 0.0;
    for (std::size_t k = 0; k + 1 < n; ++k) head += probe.re0()[i + k];
    const double t = head / probe.re0()[i + n - 1];
    const std::uint32_t input = probe.inputs()[i + n - 1];
    for (auto& src : layout.sources) {
      if (src.channel == channel && src.input == input) src.amplitude *= t;
    }
    return layout;
  }
  throw sw::util::Error("no detector found for the thinned channel");
}

/// Steady-state serving of a layout whose f32 plan is a block plan: the
/// detector mix must surface through PlanCacheStats -> ServiceStats -> the
/// bench artifact, and the served bits must equal the all-f64 reference
/// (the proof guarantees the f32 run, the rescue lanes guarantee the rest).
void run_block_experiment(bench::BenchJson& json) {
  const auto& s = setup();
  const core::GateLayout thin = thin_one_channel(s, /*channel=*/5);
  const double words = static_cast<double>(kBatches * kWordsPerBatch);

  const core::DataParallelGate gate(thin, s.engine);
  const wavesim::BatchEvaluator f64(
      gate, {.num_threads = 1, .precision = wavesim::Precision::kFloat64});
  const auto want = f64.evaluate_bits(kWordsPerBatch, s.batch);

  serve::ServiceOptions options;
  options.plan_cache_capacity = 8;
  options.admission.max_queued_requests = kBatches + 8;
  options.evaluator_options = {.num_threads = 1,
                               .precision = wavesim::Precision::kFloat32};
  serve::EvaluatorService svc(s.model, s.wg.material.alpha, options);
  (void)svc.submit(serve::EvalRequest::for_layout(thin, s.batch, kWordsPerBatch)).get();  // warm the cache

  std::vector<std::uint8_t> served;
  const double service_s = bench::best_of_three_seconds(
      [&] { served = run_service_batches(svc, thin, s, kBatches); });

  const auto stats = svc.stats();
  std::printf("block-plan serving (1 thinned channel, f32-precision "
              "service):\n");
  std::printf("steady state     : %8.1f ms  (%10.0f words/s, kernel: %s)\n",
              service_s * 1e3, words / service_s, stats.kernel.c_str());
  std::printf("plan mix         : %llu block plan(s), %llu f32 detectors / "
              "%llu f64 rescue detectors\n\n",
              static_cast<unsigned long long>(stats.cache.block_plans),
              static_cast<unsigned long long>(stats.cache.f32_detectors),
              static_cast<unsigned long long>(
                  stats.cache.f64_rescue_detectors));
  std::fflush(stdout);
  SW_REQUIRE(served == want,
             "block-plan serving diverged from the all-f64 reference");
  SW_REQUIRE(stats.cache.block_plans == 1,
             "thinned layout did not build a block plan in the service");
  SW_REQUIRE(stats.cache.f32_detectors == 7 &&
                 stats.cache.f64_rescue_detectors == 1,
             "expected a 7-proved / 1-rescued detector split in the cache");
  json.add_mix("service_block_plan", stats.kernel, "block-f32",
               words / service_s, stats.cache.f32_detectors,
               stats.cache.f64_rescue_detectors);
}

void BM_RebuildPerCall(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_rebuild_per_call(s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWordsPerBatch));
}
BENCHMARK(BM_RebuildPerCall);

void BM_ServiceCachedSubmit(benchmark::State& state) {
  const auto& s = setup();
  serve::EvaluatorService svc(s.model, s.wg.material.alpha);
  (void)svc.submit(serve::EvalRequest::for_layout(s.layout, s.batch, kWordsPerBatch)).get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        svc.submit(serve::EvalRequest::for_layout(s.layout, s.batch, kWordsPerBatch)).get().bits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWordsPerBatch));
}
BENCHMARK(BM_ServiceCachedSubmit);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== E7: serving throughput — plan cache vs rebuild per call ===\n\n");
  sw::bench::BenchJson json("BENCH_service.json");
  run_experiment(json);
  run_block_experiment(json);
  json.write("bench_service_throughput");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
