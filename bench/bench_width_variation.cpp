// Experiment E6 — Section V "Waveguide Width Variation".
//
// The paper scales the guide width from 50 nm to 500 nm and observes
// (i) the gate still functions, (ii) no crosstalk appears, and (iii) the
// ferromagnetic resonance decreases with width, lowering the first usable
// channel frequency. This bench sweeps the width and checks all three:
//   * FMR(width) from both dispersion models -> results/width_variation.csv
//   * full byte-gate truth table at each width on the analytic engine
//   * tone isolation (different frequencies never mix by construction of
//     linear superposition; the margin column shows the usable headroom).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/gate.h"
#include "core/scalability.h"
#include "dispersion/fvmsw.h"
#include "dispersion/local_1d.h"
#include "io/csv.h"
#include "util/strings.h"
#include "util/units.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw;
using bench::paper_waveguide;

void run_experiment() {
  io::CsvWriter csv("results/width_variation.csv",
                    {"width_nm", "fmr_fvmsw_GHz", "fmr_local1d_GHz",
                     "lambda_10GHz_nm", "gate_correct", "min_margin"});
  io::TextTable tab({"width [nm]", "FMR fvmsw [GHz]", "FMR 1-D [GHz]",
                     "lambda@10GHz [nm]", "byte gate", "min margin"});

  for (const double width_nm : {50, 100, 150, 200, 300, 400, 500}) {
    auto wg = paper_waveguide();
    wg.width = width_nm * units::nm;
    const disp::FvmswDispersion fv(wg);
    const auto l1 = disp::LocalDemag1DDispersion::from_waveguide(wg);

    const double fmr_fv = fv.fmr() / units::GHz;
    const double fmr_l1 = l1.fmr() / units::GHz;
    const double lambda10 =
        (fv.fmr() < 1e10) ? fv.wavelength(1e10) / units::nm : 0.0;

    // Byte gate on this width: all patterns, all channels.
    core::GateSpec spec;
    spec.num_inputs = 3;
    spec.frequencies = bench::paper_frequencies();
    const core::InlineGateDesigner designer(fv);
    const wavesim::WaveEngine engine(fv, wg.material.alpha);
    const core::DataParallelGate gate(designer.design(spec), engine);
    const auto rep = core::margin_report(gate);

    tab.add_row({sw::util::format_sig(width_nm, 3),
                 sw::util::format_sig(fmr_fv, 4),
                 sw::util::format_sig(fmr_l1, 4),
                 lambda10 > 0 ? sw::util::format_sig(lambda10, 4) : "-",
                 rep.all_correct ? "correct" : "BROKEN",
                 sw::util::format_sig(rep.min_margin, 3)});
    csv.row({width_nm, fmr_fv, fmr_l1, lambda10,
             rep.all_correct ? 1.0 : 0.0, rep.min_margin});
  }
  std::printf("%s\n", tab.str().c_str());
  std::printf("-> results/width_variation.csv\n\n");
  std::printf(
      "Paper observations reproduced: the gate stays functional at every "
      "width,\nno inter-channel crosstalk appears, and the FMR (hence the "
      "lowest usable\nchannel frequency) decreases monotonically with "
      "width.\n\n");
}

void BM_FmrSweep(benchmark::State& state) {
  for (auto _ : state) {
    for (const double width_nm : {50, 100, 200, 500}) {
      auto wg = paper_waveguide();
      wg.width = width_nm * units::nm;
      benchmark::DoNotOptimize(disp::FvmswDispersion(wg).fmr());
    }
  }
}
BENCHMARK(BM_FmrSweep);

void BM_WavelengthInversion(benchmark::State& state) {
  const disp::FvmswDispersion fv(paper_waveguide());
  double f = 1e10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fv.wavelength(f));
    f = (f >= 8e10) ? 1e10 : f + 1e10;
  }
}
BENCHMARK(BM_WavelengthInversion);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E6: waveguide width variation, 50..500 nm ===\n\n");
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
