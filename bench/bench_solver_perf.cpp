// Experiment E8 — solver and analysis performance, plus the design-choice
// ablations called out in DESIGN.md §6:
//   * integrator comparison (Euler / Heun / RK4 / RKF54) in cell-steps/s
//   * field-term costs (exchange, local demag, Newell FFT demag)
//   * FFT throughput across sizes (radix-2 vs Bluestein)
//   * Goertzel single-bin readout vs full-spectrum FFT readout.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.h"
#include "fft/fft.h"
#include "fft/goertzel.h"
#include "fft/spectrum.h"
#include "mag/anisotropy.h"
#include "mag/demag_factors.h"
#include "mag/demag_local.h"
#include "mag/demag_newell.h"
#include "mag/exchange.h"
#include "mag/integrator.h"
#include "mag/simulation.h"
#include "util/constants.h"

namespace {

using namespace sw;
using bench::paper_waveguide;

mag::Simulation make_chain_sim(std::size_t nx, mag::Stepper stepper) {
  const auto wg = paper_waveguide();
  const mag::Mesh mesh(nx, 1, 1, 2e-9, wg.width, wg.thickness);
  mag::IntegratorOptions opts;
  opts.stepper = stepper;
  opts.dt = 1.0e-13;
  opts.dt_max = 5e-13;
  opts.tolerance = 1e-5;
  mag::Simulation sim(mesh, wg.material, opts);
  sim.add_term<mag::ExchangeField>(mesh, wg.material);
  sim.add_term<mag::UniaxialAnisotropyField>(wg.material);
  sim.add_term<mag::DemagLocalField>(
      wg.material, mag::demag_factors_waveguide(wg.width, wg.thickness));
  // Seed a little dynamics so the adaptive stepper has something to chase.
  auto& m = sim.magnetization();
  for (std::size_t i = 0; i < m.size(); ++i) {
    const double x = 0.02 * std::sin(0.1 * static_cast<double>(i));
    m[i] = mag::Vec3{x, 0.0, 1.0}.normalized();
  }
  return sim;
}

void BM_Integrator(benchmark::State& state) {
  const auto stepper = static_cast<mag::Stepper>(state.range(0));
  const std::size_t nx = 512;
  auto sim = make_chain_sim(nx, stepper);
  double t = sim.time();
  for (auto _ : state) {
    t += 2e-12;
    sim.run_until(t);
  }
  state.counters["cell_steps_per_s"] = benchmark::Counter(
      static_cast<double>(sim.stats().steps_taken * nx),
      benchmark::Counter::kIsRate);
  state.SetLabel(mag::stepper_name(stepper));
}
BENCHMARK(BM_Integrator)
    ->Arg(static_cast<int>(mag::Stepper::kEuler))
    ->Arg(static_cast<int>(mag::Stepper::kHeun))
    ->Arg(static_cast<int>(mag::Stepper::kRk4))
    ->Arg(static_cast<int>(mag::Stepper::kRkf54))
    ->Unit(benchmark::kMicrosecond);

void BM_FieldTermExchange(benchmark::State& state) {
  const auto wg = paper_waveguide();
  const std::size_t nx = static_cast<std::size_t>(state.range(0));
  const mag::Mesh mesh(nx, 1, 1, 2e-9, wg.width, wg.thickness);
  const mag::ExchangeField term(mesh, wg.material);
  const mag::VectorField m(mesh, {0, 0, 1});
  mag::VectorField h(mesh);
  for (auto _ : state) {
    h.zero();
    term.accumulate(0.0, m, h);
    benchmark::DoNotOptimize(h[0]);
  }
  state.counters["cells_per_s"] = benchmark::Counter(
      static_cast<double>(nx), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FieldTermExchange)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FieldTermDemagLocal(benchmark::State& state) {
  const auto wg = paper_waveguide();
  const std::size_t nx = static_cast<std::size_t>(state.range(0));
  const mag::Mesh mesh(nx, 1, 1, 2e-9, wg.width, wg.thickness);
  const mag::DemagLocalField term(
      wg.material, mag::demag_factors_waveguide(wg.width, wg.thickness));
  const mag::VectorField m(mesh, {0, 0, 1});
  mag::VectorField h(mesh);
  for (auto _ : state) {
    h.zero();
    term.accumulate(0.0, m, h);
    benchmark::DoNotOptimize(h[0]);
  }
  state.counters["cells_per_s"] = benchmark::Counter(
      static_cast<double>(nx), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FieldTermDemagLocal)->Arg(1024)->Arg(4096);

void BM_FieldTermDemagNewell(benchmark::State& state) {
  const auto wg = paper_waveguide();
  const std::size_t nx = static_cast<std::size_t>(state.range(0));
  const mag::Mesh mesh(nx, 1, 1, 2e-9, wg.width, wg.thickness);
  const mag::DemagNewellField term(mesh, wg.material);
  const mag::VectorField m(mesh, {0, 0, 1});
  mag::VectorField h(mesh);
  for (auto _ : state) {
    h.zero();
    term.accumulate(0.0, m, h);
    benchmark::DoNotOptimize(h[0]);
  }
  state.counters["cells_per_s"] = benchmark::Counter(
      static_cast<double>(nx), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FieldTermDemagNewell)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_FftPow2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<fft::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = fft::Complex(std::sin(0.1 * static_cast<double>(i)), 0.0);
  }
  for (auto _ : state) {
    auto copy = data;
    fft::fft(copy);
    benchmark::DoNotOptimize(copy[0]);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_FftPow2)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Complexity(benchmark::oNLogN);

void BM_FftBluestein(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<fft::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = fft::Complex(std::sin(0.1 * static_cast<double>(i)), 0.0);
  }
  for (auto _ : state) {
    auto copy = data;
    fft::fft(copy);
    benchmark::DoNotOptimize(copy[0]);
  }
}
BENCHMARK(BM_FftBluestein)->Arg(1000)->Arg(2200)->Arg(4001);

void BM_ReadoutGoertzel8(benchmark::State& state) {
  std::vector<double> sig(2000);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    for (int c = 1; c <= 8; ++c) {
      sig[i] += 0.001 * std::cos(sw::util::kTwoPi * 1e10 * c *
                                 static_cast<double>(i) * 1e-12);
    }
  }
  for (auto _ : state) {
    for (int c = 1; c <= 8; ++c) {
      benchmark::DoNotOptimize(fft::goertzel(sig, 1e12, 1e10 * c));
    }
  }
}
BENCHMARK(BM_ReadoutGoertzel8);

void BM_ReadoutFullFft(benchmark::State& state) {
  std::vector<double> sig(2000);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    for (int c = 1; c <= 8; ++c) {
      sig[i] += 0.001 * std::cos(sw::util::kTwoPi * 1e10 * c *
                                 static_cast<double>(i) * 1e-12);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fft::amplitude_spectrum(sig, 1e12, fft::WindowKind::kHann));
  }
}
BENCHMARK(BM_ReadoutFullFft);

void BM_NewellKernelBuild(benchmark::State& state) {
  const auto wg = paper_waveguide();
  const std::size_t nx = static_cast<std::size_t>(state.range(0));
  const mag::Mesh mesh(nx, 1, 1, 2e-9, wg.width, wg.thickness);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mag::DemagNewellField(mesh, wg.material));
  }
}
BENCHMARK(BM_NewellKernelBuild)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
