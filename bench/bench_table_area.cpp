// Experiment E4 — Section V.B comparison table.
//
// Reproduces the paper's area/delay/energy comparison between the 8-bit
// data-parallel 3-input Majority gate and eight replicated scalar gates.
// Two views are printed:
//   1. the paper's published geometry (its d_i values and accounting),
//      which reproduces the 4.16x figure exactly, and
//   2. our self-consistent design (FVMSW dispersion of the same material),
//      which lands in the same regime with identical delay/energy parity.
// The google-benchmark section measures layout-synthesis throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "cost/cost_model.h"
#include "dispersion/fvmsw.h"
#include "io/csv.h"
#include "util/strings.h"
#include "util/units.h"

namespace {

using namespace sw;
using sw::bench::paper_frequencies;
using sw::bench::paper_waveguide;

void print_paper_reference() {
  // The paper's published same-frequency spacings (nm) for 10..80 GHz.
  const double d_nm[8] = {166, 100, 117, 165, 174, 130, 168, 176};
  const double guide_width = 50 * units::nm;
  const double paper_parallel_area = 0.0279 * units::um2;
  const double paper_scalar_area = 0.116 * units::um2;

  // Scalar accounting: per gate, the guide spans the 2 d_i between the three
  // sources (the paper's 0.116 um^2 follows from exactly this sum).
  double scalar_area = 0.0;
  for (double d : d_nm) scalar_area += 2.0 * d * units::nm * guide_width;

  io::TextTable t({"quantity", "paper", "this repo (paper geometry)"});
  t.add_row({"scalar 8x MAJ3 area [um^2]", "0.116",
             sw::util::format_sig(scalar_area / units::um2, 3)});
  t.add_row({"parallel MAJ3 area [um^2]", "0.0279", "(paper value)"});
  t.add_row({"area ratio", "4.16x",
             sw::util::format_sig(scalar_area / paper_parallel_area, 3) +
                 "x"});
  std::printf("%s\n", t.str().c_str());
  (void)paper_scalar_area;
}

void print_model_comparison() {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);

  core::GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies();

  const cost::TransducerModel transducer;
  const auto cmp =
      cost::compare_parallel_vs_scalar(designer, spec, wg.width, transducer);

  io::TextTable t({"metric", "8x scalar gates", "parallel gate", "ratio"});
  t.add_row({"area [um^2]",
             sw::util::format_sig(cmp.scalar_total.area / units::um2, 3),
             sw::util::format_sig(cmp.parallel.area / units::um2, 3),
             sw::util::format_sig(cmp.area_ratio, 3) + "x"});
  t.add_row({"guide length [nm]",
             sw::util::format_sig(cmp.scalar_total.length / units::nm, 4),
             sw::util::format_sig(cmp.parallel.length / units::nm, 4), "-"});
  t.add_row({"delay [ns]",
             sw::util::format_sig(cmp.scalar_total.delay / units::ns, 3),
             sw::util::format_sig(cmp.parallel.delay / units::ns, 3),
             sw::util::format_sig(cmp.delay_ratio, 3) + "x"});
  t.add_row({"energy [aJ]",
             sw::util::format_sig(cmp.scalar_total.energy / units::aJ, 3),
             sw::util::format_sig(cmp.parallel.energy / units::aJ, 3),
             sw::util::format_sig(cmp.energy_ratio, 3) + "x"});
  t.add_row({"transducers", std::to_string(cmp.scalar_total.transducers),
             std::to_string(cmp.parallel.transducers), "1x"});
  t.add_row({"waveguides", std::to_string(cmp.scalar_total.waveguides),
             std::to_string(cmp.parallel.waveguides), "8x"});
  std::printf("%s\n", t.str().c_str());

  io::CsvWriter csv("results/table_area.csv",
                    {"channel", "freq_GHz", "scalar_length_nm",
                     "scalar_area_um2"});
  for (std::size_t i = 0; i < cmp.scalar_each.size(); ++i) {
    csv.row({static_cast<double>(i + 1), spec.frequencies[i] / units::GHz,
             cmp.scalar_each[i].length / units::nm,
             cmp.scalar_each[i].area / units::um2});
  }
  std::printf("per-channel scalar costs -> results/table_area.csv\n\n");
}

void BM_DesignByteGate(benchmark::State& state) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  core::GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies();
  for (auto _ : state) {
    benchmark::DoNotOptimize(designer.design(spec));
  }
}
BENCHMARK(BM_DesignByteGate);

void BM_CostComparison(benchmark::State& state) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  core::GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost::compare_parallel_vs_scalar(
        designer, spec, wg.width, cost::TransducerModel{}));
  }
}
BENCHMARK(BM_CostComparison);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E4: Section V.B area/delay/energy comparison ===\n\n");
  std::printf("--- paper-reference accounting ---\n");
  print_paper_reference();
  std::printf("--- self-consistent model (FVMSW, this repo) ---\n");
  print_model_comparison();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
