// Experiment E9 — compiled-program evaluation throughput.
//
// The gate-cascade compiler turns an arbitrary truth table into a
// multi-stage EvalProgram whose per-stage plans are built once and whose
// interconnect gathers are resolved ahead of time. This bench measures
// what that buys over the pre-compiler serving shape, where every batch
// pays per-stage design + plan construction and materialises each stage's
// inputs by hand:
//   * staged: per batch, for every stage, design the gate, build a
//     one-shot BatchEvaluator and gather its input matrix from the
//     primary word / earlier stage outputs (the MajorityCascade-era
//     client loop);
//   * fused: one long-lived EvalProgram evaluating the same primary
//     matrix end to end.
// Both paths sweep a synthesized 3-input function (0x1B — an arbitrary
// non-special table, so the cascade is a real multi-gate chain) over the
// paper's 8-channel fabric, are cross-checked bit-exact against each
// other and against the Boolean truth table, and the fused path must
// clear 1.5x the staged one — the PR's CI floor, far under the typical
// margin so machine-load noise cannot flake the gate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "compile/lower.h"
#include "compile/synth.h"
#include "compile/truth_table.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/eval_program.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw;

constexpr std::size_t kChannels = 8;
constexpr std::uint16_t kFunctionBits = 0x1B;
// One serving-sized batch per timed call: small enough that the staged
// path's per-batch design + plan builds do not amortise away (the cost
// the compiled program exists to delete), large enough to keep the SIMD
// word loop out of startup noise.
constexpr std::size_t kNumWords = 512;

struct BenchSetup {
  disp::Waveguide wg = bench::paper_waveguide();
  disp::FvmswDispersion model{wg};
  core::InlineGateDesigner designer{model};
  wavesim::WaveEngine engine{model, wg.material.alpha};
  wavesim::ProgramSpec spec = make_spec();
  // The fused artefact: built once, reused per batch (what PlanCache
  // hands the service on a program hit).
  wavesim::EvalProgram program{spec, designer, engine};
  std::vector<std::uint8_t> primary = make_primary(spec);

  static wavesim::ProgramSpec make_spec() {
    compile::Synthesizer synth;
    const auto circuit =
        synth.compile(compile::TruthTable(3, kFunctionBits));
    core::GateSpec base;
    base.num_inputs = 3;
    base.frequencies = bench::paper_frequencies();
    return compile::lower_to_program(circuit, base);
  }

  static std::vector<std::uint8_t> make_primary(
      const wavesim::ProgramSpec& spec) {
    // Channel ch of word w carries assignment (w + ch) % 8: every channel
    // cycles through all eight input patterns, out of phase with its
    // neighbours.
    const std::size_t cols = spec.primary_slot_count();
    std::vector<std::uint8_t> primary(kNumWords * cols);
    for (std::size_t w = 0; w < kNumWords; ++w) {
      for (std::size_t ch = 0; ch < kChannels; ++ch) {
        const std::size_t a = (w + ch) % 8;
        for (std::size_t i = 0; i < 3; ++i) {
          primary[w * cols + ch * 3 + i] =
              static_cast<std::uint8_t>((a >> i) & 1);
        }
      }
    }
    return primary;
  }
};

const BenchSetup& setup() {
  static const BenchSetup s;
  return s;
}

/// The pre-compiler client loop: per stage, design + one-shot evaluator +
/// hand-gathered input matrix, intermediates materialised between stages.
std::vector<std::uint8_t> run_staged(const BenchSetup& s) {
  using wavesim::SlotSource;
  const std::size_t n = s.spec.num_channels();
  std::vector<std::vector<std::uint8_t>> stage_bits;
  for (const auto& ss : s.spec.stages) {
    const core::DataParallelGate gate(s.designer.design(ss.gate), s.engine);
    const wavesim::BatchEvaluator evaluator(gate);
    const std::size_t m = ss.gate.num_inputs;
    const std::size_t cols = s.spec.primary_slot_count();
    std::vector<std::uint8_t> packed(kNumWords * n * m);
    for (std::size_t w = 0; w < kNumWords; ++w) {
      for (std::size_t ch = 0; ch < n; ++ch) {
        for (std::size_t k = 0; k < m; ++k) {
          const auto& src = ss.sources[ch * m + k];
          bool v = false;
          switch (src.kind) {
            case SlotSource::Kind::kZero: v = false; break;
            case SlotSource::Kind::kOne: v = true; break;
            case SlotSource::Kind::kPrimary:
              v = s.primary[w * cols + src.index] != 0;
              break;
            case SlotSource::Kind::kStage:
              v = stage_bits[src.stage][w * n + src.index] != 0;
              break;
          }
          packed[w * n * m + ch * m + k] =
              static_cast<std::uint8_t>(v != src.negated);
        }
      }
    }
    stage_bits.push_back(evaluator.evaluate_bits(kNumWords, packed));
  }
  return stage_bits.back();
}

std::vector<std::uint8_t> run_fused(const BenchSetup& s) {
  return s.program.evaluate_bits(kNumWords, s.primary);
}

void run_experiment(bench::BenchJson& json) {
  const auto& s = setup();
  const double words = static_cast<double>(kNumWords);
  std::printf("compiled cascade for table 0x%02X: %zu stages, depth %zu, "
              "%zu channels, %zu words/batch\n\n",
              kFunctionBits, s.spec.num_stages(), s.spec.depth(), kChannels,
              kNumWords);

  // Best of three per path: the floor check gates CI, so one scheduler
  // stall must not read as a regression.
  std::vector<std::uint8_t> staged, fused;
  const double staged_s =
      bench::best_of_three_seconds([&] { staged = run_staged(s); });
  const double fused_s =
      bench::best_of_three_seconds([&] { fused = run_fused(s); });

  SW_REQUIRE(fused == staged,
             "fused program diverged from the staged per-stage sweep");
  const compile::TruthTable table(3, kFunctionBits);
  const std::size_t cols = s.spec.primary_slot_count();
  for (std::size_t w = 0; w < kNumWords; ++w) {
    for (std::size_t ch = 0; ch < kChannels; ++ch) {
      std::size_t a = 0;
      for (std::size_t i = 0; i < 3; ++i) {
        a |= static_cast<std::size_t>(s.primary[w * cols + ch * 3 + i]) << i;
      }
      SW_REQUIRE(fused[w * kChannels + ch] == (table.value(a) ? 1 : 0),
                 "compiled program diverged from the Boolean reference");
    }
  }
  SW_REQUIRE(staged_s / fused_s >= 1.5,
             "fused program below 1.5x the staged per-stage path");

  std::printf("staged per-stage loop: %8.2f ms  (%10.0f words/s)\n",
              staged_s * 1e3, words / staged_s);
  std::printf("fused EvalProgram    : %8.2f ms  (%10.0f words/s)\n",
              fused_s * 1e3, words / fused_s);
  std::printf("speedup              : %8.1fx  (CI floor: 1.5x)\n\n",
              staged_s / fused_s);
  std::printf("Outputs cross-checked against the staged sweep and the "
              "Boolean table on all %zu words.\n\n", kNumWords);

  json.add("staged_per_stage", std::string(wavesim::active_kernel_name()),
           std::string(wavesim::precision_name(wavesim::active_precision())),
           words / staged_s);
  json.add("fused_program", std::string(wavesim::active_kernel_name()),
           std::string(wavesim::precision_name(wavesim::active_precision())),
           words / fused_s);
}

void BM_StagedCascadeSweep(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_staged(s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kNumWords));
}
BENCHMARK(BM_StagedCascadeSweep)->Unit(benchmark::kMillisecond);

void BM_FusedProgramSweep(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_fused(s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kNumWords));
}
BENCHMARK(BM_FusedProgramSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E9: compiled-program throughput — staged vs fused ===\n\n");
  sw::bench::BenchJson json("BENCH_program.json");
  run_experiment(json);
  json.write("bench_program_throughput");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
