// Experiment E8 — networked serving throughput.
//
// The serving question behind the net subsystem: what does the socket
// transport cost relative to handing the same batches to the in-process
// EvaluatorService? A client pushes the same stream of 4096-word packed
// batches (the sweep-shard shape) three ways — pipelined in-process
// submits, localhost TCP through net::EvalServer, and a unix-domain
// socket — all against one shared service so every path runs the same
// cached SIMD plan. Results are cross-checked bit-for-bit first, then a
// hard floor gates CI: localhost TCP must sustain >= 0.75x the in-process
// cached-plan words/s (since the PR 6 pipelined event core, the transport
// overlaps the wire codec with evaluation, so it may cost at most a third
// of the evaluation it feeds). Emits BENCH_net.json for the CI artifact
// trail.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <deque>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "net/eval_server.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "serve/layout_hash.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "util/error.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw;
using namespace std::chrono_literals;

// The sweep-shard serving shape: big packed batches against the paper's
// 8-channel, 3-input majority fabric.
constexpr std::size_t kNumInputs = 3;
constexpr std::size_t kChannels = 8;
constexpr std::size_t kWordsPerBatch = 4096;
constexpr std::size_t kBatches = 24;

struct NetBenchSetup {
  disp::Waveguide wg = bench::paper_waveguide();
  disp::FvmswDispersion model{wg};
  core::InlineGateDesigner designer{model};
  core::GateLayout layout;
  std::vector<std::uint8_t> batch;
  serve::EvaluatorService service;
  net::EvalServer tcp_server;
  net::EvalServer unix_server;

  static serve::ServiceOptions service_options() {
    serve::ServiceOptions options;
    options.admission.max_queued_requests = kBatches * 2 + 8;
    return options;
  }

  NetBenchSetup()
      : layout([this] {
          core::GateSpec spec;
          spec.num_inputs = kNumInputs;
          spec.frequencies = bench::paper_frequencies();
          return designer.design(spec);
        }()),
        service(model, wg.material.alpha, service_options()),
        tcp_server(
            service,
            [this](const core::GateSpec& spec) {
              return designer.design(spec);
            },
            net::Endpoint::parse("tcp:127.0.0.1:0")),
        unix_server(
            service,
            [this](const core::GateSpec& spec) {
              return designer.design(spec);
            },
            // PID-unique path: a second concurrent run must not unlink
            // and bind over this one's live socket.
            net::Endpoint::parse("unix:/tmp/swlogic_bench_net." +
                                 std::to_string(::getpid()) + ".sock")) {
    const std::size_t slots = kChannels * kNumInputs;
    batch.resize(kWordsPerBatch * slots);
    std::mt19937 rng(20260727);
    std::bernoulli_distribution coin(0.5);
    for (auto& b : batch) b = coin(rng) ? 1 : 0;
  }
};

NetBenchSetup& setup() {
  static NetBenchSetup s;
  return s;
}

/// Pipelined in-process client: the cached-plan baseline the socket paths
/// are measured against.
std::vector<std::uint8_t> run_inprocess(NetBenchSetup& s) {
  std::deque<std::future<serve::ResultBatch>> inflight;
  for (std::size_t i = 0; i < kBatches; ++i) {
    inflight.push_back(s.service.submit(serve::EvalRequest::for_layout(s.layout, s.batch, kWordsPerBatch)));
  }
  std::vector<std::uint8_t> last;
  while (!inflight.empty()) {
    last = inflight.front().get().bits;
    inflight.pop_front();
  }
  return last;
}

/// Pipelined requests in flight per connection. Kept under the server's
/// max_inflight_per_connection so back-pressure never pauses the read side
/// mid-benchmark.
constexpr std::size_t kPipelineDepth = 8;

/// Socket client: split the batch stream over a few connections, each
/// keeping kPipelineDepth tagged frames in flight (the PR 6 event server
/// completes them out of order; replies are matched back by tag).
std::vector<std::uint8_t> run_socket(NetBenchSetup& s,
                                     const net::Endpoint& endpoint,
                                     std::size_t connections) {
  const std::uint64_t hash = serve::hash_layout(s.layout);
  std::vector<std::thread> clients;
  std::vector<std::uint8_t> last;
  std::vector<std::exception_ptr> errors(connections);
  std::mutex last_mutex;
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      try {
        auto conn = net::Connection::connect(endpoint, 5000ms);
        std::vector<std::uint8_t> request;
        std::vector<std::uint8_t> rbuf;
        std::size_t rpos = 0;
        std::vector<std::uint8_t> mine;
        std::size_t next = c;      // next batch index to send
        std::size_t inflight = 0;
        std::size_t received = 0;
        std::size_t total = 0;
        for (std::size_t i = c; i < kBatches; i += connections) ++total;
        // Buffered reads: one recv may carry several pipelined replies, so
        // parse from a rolling buffer instead of two syscalls per message.
        constexpr std::size_t kRecvChunk = 64u << 10;
        const auto ensure_buffered = [&](std::size_t need) {
          while (rbuf.size() - rpos < need) {
            const std::size_t old = rbuf.size();
            rbuf.resize(old + kRecvChunk);
            const auto got = conn.recv_some({rbuf.data() + old, kRecvChunk});
            if (got < 0) {
              rbuf.resize(old);
              SW_REQUIRE(conn.wait_readable(30000ms),
                         "timed out awaiting a reply mid-benchmark");
              continue;
            }
            SW_REQUIRE(got > 0, "server closed mid-benchmark");
            rbuf.resize(old + static_cast<std::size_t>(got));
          }
        };
        while (received < total) {
          // Refill the pipeline window in bursts (hysteresis keeps the
          // depth >= half the cap with a few frames per send syscall).
          if (next < kBatches && inflight <= kPipelineDepth / 2) {
            request.clear();
            while (inflight < kPipelineDepth && next < kBatches) {
              net::append_frame_message(
                  request,
                  serve::make_request_view(s.layout.spec, hash,
                                           next * kWordsPerBatch,
                                           kWordsPerBatch, s.batch),
                  /*tag=*/next);
              next += connections;
              ++inflight;
            }
            conn.send_all(request, 10000ms);
          }
          ensure_buffered(net::kMessageHeaderSize);
          const auto header = net::parse_message_header(
              {rbuf.data() + rpos, net::kMessageHeaderSize});
          ensure_buffered(net::kMessageHeaderSize + header.payload_size);
          const std::span<const std::uint8_t> payload{
              rbuf.data() + rpos + net::kMessageHeaderSize,
              static_cast<std::size_t>(header.payload_size)};
          net::verify_message_payload(header, payload);
          if (header.kind == net::MessageKind::kError) {
            net::Message err;
            err.kind = header.kind;
            err.payload.assign(payload.begin(), payload.end());
            const auto info = net::decode_error_message(err);
            throw net::RemoteError(info.code, info.text);
          }
          SW_REQUIRE(header.kind == net::MessageKind::kFrame,
                     "unexpected reply kind mid-benchmark");
          auto frame = serve::decode_frame(payload);
          // The tag must identify the request this completion answers.
          SW_REQUIRE(frame.word_offset == header.tag * kWordsPerBatch,
                     "reply tag does not match its frame's word range");
          mine = std::move(frame.matrix);
          rpos += net::kMessageHeaderSize + header.payload_size;
          if (rpos == rbuf.size()) {
            rbuf.clear();
            rpos = 0;
          }
          --inflight;
          ++received;
        }
        std::lock_guard<std::mutex> lock(last_mutex);
        last = std::move(mine);
      } catch (...) {
        errors[c] = std::current_exception();
      }
    });
  }
  for (auto& t : clients) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return last;
}

void run_experiment(bench::BenchJson& json) {
  auto& s = setup();
  const double words = static_cast<double>(kBatches * kWordsPerBatch);
  const std::size_t connections =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   4, std::thread::hardware_concurrency()));
  std::printf("%zu batches x %zu words, %zu-input %zu-channel layout, "
              "%zu socket connection(s)\n\n",
              kBatches, kWordsPerBatch, kNumInputs, kChannels, connections);

  // Warm the plan cache; steady state is what serving measures.
  (void)s.service.submit(serve::EvalRequest::for_layout(s.layout, s.batch, kWordsPerBatch)).get();

  // Interleaved best-of-N: one round times all three paths back to back,
  // so a noisy-neighbour window on a shared core hits them alike instead
  // of deflating whichever path it happened to land on. The per-path best
  // then compares clean windows against clean windows.
  constexpr int kRounds = 5;
  const auto timed = [](const auto& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  std::vector<std::uint8_t> expected, via_tcp, via_unix;
  double inprocess_s = std::numeric_limits<double>::infinity();
  double tcp_s = inprocess_s;
  double unix_s = inprocess_s;
  for (int round = 0; round < kRounds; ++round) {
    inprocess_s =
        std::min(inprocess_s, timed([&] { expected = run_inprocess(s); }));
    tcp_s = std::min(tcp_s, timed([&] {
              via_tcp =
                  run_socket(s, s.tcp_server.local_endpoint(), connections);
            }));
    unix_s = std::min(unix_s, timed([&] {
               via_unix = run_socket(s, s.unix_server.local_endpoint(),
                                     connections);
             }));
  }

  SW_REQUIRE(via_tcp == expected && via_unix == expected,
             "socket results diverged from the in-process sweep");

  const auto stats = s.service.stats();
  std::printf("in-process pipelined : %8.1f ms  (%10.0f words/s, kernel: "
              "%s, precision: %s)\n",
              inprocess_s * 1e3, words / inprocess_s, stats.kernel.c_str(),
              stats.precision.c_str());
  std::printf("TCP localhost        : %8.1f ms  (%10.0f words/s, %.2fx "
              "in-process)\n",
              tcp_s * 1e3, words / tcp_s, inprocess_s / tcp_s);
  std::printf("unix-domain socket   : %8.1f ms  (%10.0f words/s, %.2fx "
              "in-process)\n\n",
              unix_s * 1e3, words / unix_s, inprocess_s / unix_s);
  std::printf("service latency (recent window): p50 %.0f us, p95 %.0f us, "
              "p99 %.0f us over %llu request(s)\n\n",
              stats.latency.p50_s * 1e6, stats.latency.p95_s * 1e6,
              stats.latency.p99_s * 1e6,
              static_cast<unsigned long long>(stats.latency.count));

  json.add("inprocess_pipelined", stats.kernel, stats.precision,
           words / inprocess_s);
  json.add("tcp_localhost", stats.kernel, stats.precision, words / tcp_s);
  json.add("unix_localhost", stats.kernel, stats.precision, words / unix_s);

  std::fflush(stdout);
  // The acceptance bar: with pipelining overlapping the wire codec and
  // evaluation, localhost TCP must sustain >= 0.75x the in-process
  // cached-plan words/s.
  SW_REQUIRE(inprocess_s / tcp_s >= 0.75,
             "localhost TCP serving fell below 0.75x in-process throughput");
}

void BM_TcpBatchRoundTrip(benchmark::State& state) {
  auto& s = setup();
  auto conn =
      net::Connection::connect(s.tcp_server.local_endpoint(), 5000ms);
  for (auto _ : state) {
    net::send_message(conn,
                      net::make_frame_message(serve::make_request_frame(
                          s.layout, 0, kWordsPerBatch, s.batch)),
                      10000ms);
    auto response = net::recv_frame(conn, 30000ms);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWordsPerBatch));
}
BENCHMARK(BM_TcpBatchRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== E8: networked serving — localhost sockets vs in-process ===\n\n");
  sw::bench::BenchJson json("BENCH_net.json");
  run_experiment(json);
  json.write("bench_net_throughput");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
