// Experiment E8 — networked serving throughput.
//
// The serving question behind the net subsystem: what does the socket
// transport cost relative to handing the same batches to the in-process
// EvaluatorService? A client pushes the same stream of 4096-word packed
// batches (the sweep-shard shape) three ways — pipelined in-process
// submits, localhost TCP through net::EvalServer, and a unix-domain
// socket — all against one shared service so every path runs the same
// cached SIMD plan. Results are cross-checked bit-for-bit first, then a
// hard floor gates CI: localhost TCP must sustain >= 0.5x the in-process
// cached-plan words/s (the wire codec and syscalls may cost at most as
// much as the evaluation they feed). Emits BENCH_net.json for the CI
// artifact trail.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <deque>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "net/eval_server.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "util/error.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw;
using namespace std::chrono_literals;

// The sweep-shard serving shape: big packed batches against the paper's
// 8-channel, 3-input majority fabric.
constexpr std::size_t kNumInputs = 3;
constexpr std::size_t kChannels = 8;
constexpr std::size_t kWordsPerBatch = 4096;
constexpr std::size_t kBatches = 24;

struct NetBenchSetup {
  disp::Waveguide wg = bench::paper_waveguide();
  disp::FvmswDispersion model{wg};
  core::InlineGateDesigner designer{model};
  core::GateLayout layout;
  std::vector<std::uint8_t> batch;
  serve::EvaluatorService service;
  net::EvalServer tcp_server;
  net::EvalServer unix_server;

  static serve::ServiceOptions service_options() {
    serve::ServiceOptions options;
    options.admission.max_queued_requests = kBatches * 2 + 8;
    return options;
  }

  NetBenchSetup()
      : layout([this] {
          core::GateSpec spec;
          spec.num_inputs = kNumInputs;
          spec.frequencies = bench::paper_frequencies();
          return designer.design(spec);
        }()),
        service(model, wg.material.alpha, service_options()),
        tcp_server(
            service,
            [this](const core::GateSpec& spec) {
              return designer.design(spec);
            },
            net::Endpoint::parse("tcp:127.0.0.1:0")),
        unix_server(
            service,
            [this](const core::GateSpec& spec) {
              return designer.design(spec);
            },
            // PID-unique path: a second concurrent run must not unlink
            // and bind over this one's live socket.
            net::Endpoint::parse("unix:/tmp/swlogic_bench_net." +
                                 std::to_string(::getpid()) + ".sock")) {
    const std::size_t slots = kChannels * kNumInputs;
    batch.resize(kWordsPerBatch * slots);
    std::mt19937 rng(20260727);
    std::bernoulli_distribution coin(0.5);
    for (auto& b : batch) b = coin(rng) ? 1 : 0;
  }
};

NetBenchSetup& setup() {
  static NetBenchSetup s;
  return s;
}

/// Pipelined in-process client: the cached-plan baseline the socket paths
/// are measured against.
std::vector<std::uint8_t> run_inprocess(NetBenchSetup& s) {
  std::deque<std::future<serve::ResultBatch>> inflight;
  for (std::size_t i = 0; i < kBatches; ++i) {
    inflight.push_back(s.service.submit(s.layout, s.batch, kWordsPerBatch));
  }
  std::vector<std::uint8_t> last;
  while (!inflight.empty()) {
    last = inflight.front().get().bits;
    inflight.pop_front();
  }
  return last;
}

/// Socket client: split the batch stream over a few connections (the
/// server is synchronous per connection; concurrency comes from
/// connections, exactly how a sweep coordinator drives its workers).
std::vector<std::uint8_t> run_socket(NetBenchSetup& s,
                                     const net::Endpoint& endpoint,
                                     std::size_t connections) {
  std::vector<std::thread> clients;
  std::vector<std::uint8_t> last;
  std::vector<std::exception_ptr> errors(connections);
  std::mutex last_mutex;
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      try {
        auto conn = net::Connection::connect(endpoint, 5000ms);
        std::vector<std::uint8_t> mine;
        for (std::size_t i = c; i < kBatches; i += connections) {
          net::send_message(
              conn,
              net::make_frame_message(serve::make_request_frame(
                  s.layout, i * kWordsPerBatch, kWordsPerBatch, s.batch)),
              10000ms);
          auto response = net::recv_frame(conn, 30000ms);
          SW_REQUIRE(response.has_value(),
                     "server closed mid-benchmark");
          mine = std::move(response->matrix);
        }
        std::lock_guard<std::mutex> lock(last_mutex);
        last = std::move(mine);
      } catch (...) {
        errors[c] = std::current_exception();
      }
    });
  }
  for (auto& t : clients) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return last;
}

void run_experiment(bench::BenchJson& json) {
  auto& s = setup();
  const double words = static_cast<double>(kBatches * kWordsPerBatch);
  const std::size_t connections =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   4, std::thread::hardware_concurrency()));
  std::printf("%zu batches x %zu words, %zu-input %zu-channel layout, "
              "%zu socket connection(s)\n\n",
              kBatches, kWordsPerBatch, kNumInputs, kChannels, connections);

  // Warm the plan cache; steady state is what serving measures.
  (void)s.service.submit(s.layout, s.batch, kWordsPerBatch).get();

  std::vector<std::uint8_t> expected;
  const double inprocess_s =
      bench::best_of_three_seconds([&] { expected = run_inprocess(s); });

  std::vector<std::uint8_t> via_tcp;
  const double tcp_s = bench::best_of_three_seconds([&] {
    via_tcp = run_socket(s, s.tcp_server.local_endpoint(), connections);
  });

  std::vector<std::uint8_t> via_unix;
  const double unix_s = bench::best_of_three_seconds([&] {
    via_unix = run_socket(s, s.unix_server.local_endpoint(), connections);
  });

  SW_REQUIRE(via_tcp == expected && via_unix == expected,
             "socket results diverged from the in-process sweep");

  const auto stats = s.service.stats();
  std::printf("in-process pipelined : %8.1f ms  (%10.0f words/s, kernel: "
              "%s, precision: %s)\n",
              inprocess_s * 1e3, words / inprocess_s, stats.kernel.c_str(),
              stats.precision.c_str());
  std::printf("TCP localhost        : %8.1f ms  (%10.0f words/s, %.2fx "
              "in-process)\n",
              tcp_s * 1e3, words / tcp_s, inprocess_s / tcp_s);
  std::printf("unix-domain socket   : %8.1f ms  (%10.0f words/s, %.2fx "
              "in-process)\n\n",
              unix_s * 1e3, words / unix_s, inprocess_s / unix_s);
  std::printf("service latency (recent window): p50 %.0f us, p95 %.0f us, "
              "p99 %.0f us over %llu request(s)\n\n",
              stats.latency.p50_s * 1e6, stats.latency.p95_s * 1e6,
              stats.latency.p99_s * 1e6,
              static_cast<unsigned long long>(stats.latency.count));

  json.add("inprocess_pipelined", stats.kernel, stats.precision,
           words / inprocess_s);
  json.add("tcp_localhost", stats.kernel, stats.precision, words / tcp_s);
  json.add("unix_localhost", stats.kernel, stats.precision, words / unix_s);

  std::fflush(stdout);
  // The acceptance bar: the transport may cost at most as much as the
  // evaluation it feeds, i.e. localhost TCP sustains >= 0.5x the
  // in-process cached-plan words/s.
  SW_REQUIRE(inprocess_s / tcp_s >= 0.5,
             "localhost TCP serving fell below 0.5x in-process throughput");
}

void BM_TcpBatchRoundTrip(benchmark::State& state) {
  auto& s = setup();
  auto conn =
      net::Connection::connect(s.tcp_server.local_endpoint(), 5000ms);
  for (auto _ : state) {
    net::send_message(conn,
                      net::make_frame_message(serve::make_request_frame(
                          s.layout, 0, kWordsPerBatch, s.batch)),
                      10000ms);
    auto response = net::recv_frame(conn, 30000ms);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWordsPerBatch));
}
BENCHMARK(BM_TcpBatchRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== E8: networked serving — localhost sockets vs in-process ===\n\n");
  sw::bench::BenchJson json("BENCH_net.json");
  run_experiment(json);
  json.write("bench_net_throughput");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
