// Shared experiment plumbing for the paper-reproduction benches.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/encoding.h"
#include "core/gate_design.h"
#include "core/micromag_gate.h"
#include "dispersion/local_1d.h"
#include "dispersion/waveguide.h"
#include "mag/material.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/precision.h"

namespace sw::bench {

/// The paper's device: Fe60Co20B20 PMA waveguide, 50 nm x 1 nm.
inline sw::disp::Waveguide paper_waveguide() {
  sw::disp::Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

/// The paper's eight channel frequencies: 10, 20, ..., 80 GHz.
inline std::vector<double> paper_frequencies() {
  std::vector<double> f;
  for (int i = 1; i <= 8; ++i) f.push_back(1e10 * i);
  return f;
}

/// Reduced-model byte gate: designed against the solver-consistent 1-D
/// dispersion so the micromagnetic run and the layout agree exactly.
struct ByteGateSetup {
  sw::disp::Waveguide wg;
  sw::core::GateLayout layout;
  sw::core::MicromagConfig cfg;
};

inline ByteGateSetup make_byte_gate_setup(std::size_t channels = 8,
                                          double t_end = 2.2e-9) {
  ByteGateSetup s;
  s.wg = paper_waveguide();
  s.cfg = sw::core::MicromagConfig{};
  s.cfg.t_end = t_end;

  auto model = sw::disp::LocalDemag1DDispersion::from_waveguide(s.wg);
  model.set_discretization(s.cfg.cell_size);
  const sw::core::InlineGateDesigner designer(model);

  sw::core::GateSpec spec;
  spec.num_inputs = 3;
  const auto all = paper_frequencies();
  spec.frequencies.assign(all.begin(), all.begin() + channels);
  s.layout = designer.design(spec);
  return s;
}

/// Run all 2^m uniform patterns through a micromagnetic runner, splitting
/// across `threads` workers (each worker gets a calibrated copy).
inline std::vector<sw::core::MicromagRun> run_all_patterns(
    const sw::core::MicromagGateRunner& calibrated_prototype,
    std::size_t num_inputs, unsigned threads) {
  const auto patterns = sw::core::all_patterns(num_inputs);
  std::vector<sw::core::MicromagRun> runs(patterns.size());
  threads = std::max(1u, threads);
  std::vector<std::thread> pool;
  for (unsigned w = 0; w < threads; ++w) {
    pool.emplace_back([&, w]() {
      sw::core::MicromagGateRunner local = calibrated_prototype;
      for (std::size_t p = w; p < patterns.size(); p += threads) {
        runs[p] = local.run_uniform(patterns[p]);
      }
    });
  }
  for (auto& t : pool) t.join();
  return runs;
}

/// Best wall-clock seconds of three runs of `fn`. The CI-gating floor
/// checks use this so one noisy-neighbour stall inside a short window does
/// not read as a regression; keeping the rep policy here keeps every bench
/// measuring the same way.
template <typename Fn>
inline double best_of_three_seconds(const Fn& fn) {
  using clock = std::chrono::steady_clock;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Pretty "I1=0, I2=1, I3=0"-style label for a pattern.
inline std::string pattern_label(const sw::core::Bits& bits) {
  std::string s;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i) s += ", ";
    s += "I" + std::to_string(i + 1) + "=" + (bits[i] ? "1" : "0");
  }
  return s;
}

/// Machine-readable bench results: a flat list of {name, kernel,
/// precision, words/s} rows plus host capability flags, written as one
/// JSON object so CI can upload the file as a workflow artifact and the
/// perf trajectory is tracked instead of discarded with the job log. The
/// writer is deliberately tiny (no JSON library in the image): every
/// string it emits comes from this codebase's fixed identifiers, so
/// escaping reduces to forbidding the characters that never occur.
class BenchJson {
 public:
  /// `default_path` is used unless SW_BENCH_JSON overrides it (the CI
  /// workflow leaves the default so artifacts land in the working dir).
  explicit BenchJson(std::string default_path)
      : path_(default_path) {
    if (const char* env = std::getenv("SW_BENCH_JSON");
        env != nullptr && *env != '\0') {
      path_ = env;
    }
  }

  void add(const std::string& name, const std::string& kernel,
           const std::string& precision, double words_per_s) {
    rows_.push_back({name, kernel, precision, words_per_s, false, 0, 0});
  }

  /// Row for a mixed-precision (block-f32) measurement: also records the
  /// per-detector grant split so the artifact shows WHAT ran at f32, not
  /// just how fast. Plain `add` rows omit the mix fields entirely.
  void add_mix(const std::string& name, const std::string& kernel,
               const std::string& precision, double words_per_s,
               std::size_t f32_detectors, std::size_t rescue_detectors) {
    rows_.push_back({name, kernel, precision, words_per_s, true,
                     f32_detectors, rescue_detectors});
  }

  /// Phase-breakdown row: time spent in one request phase during the
  /// named experiment, taken from the serving-side phase histograms
  /// (obs::HistogramSnapshot mean + count). Emitted as a separate
  /// "phases" array so `results` keeps its flat shape; bench_summary.py
  /// renders them as their own table.
  void add_phase(const std::string& name, const std::string& phase,
                 double mean_seconds, std::uint64_t count) {
    phases_.push_back({name, phase, mean_seconds, count});
  }

  /// Writes the file; returns false (and says so on stderr) when the path
  /// is unwritable. Benches call this after their floor checks so a gating
  /// failure still aborts before a half-written artifact uploads.
  bool write(const std::string& bench_binary) const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot open %s for writing\n",
                   path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_binary.c_str());
    std::fprintf(f, "  \"host\": {\n");
    std::fprintf(f, "    \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "    \"avx2\": %s,\n",
                 sw::wavesim::kernels::avx2_kernel() != nullptr ? "true"
                                                                : "false");
    std::fprintf(f, "    \"avx512\": %s,\n",
                 sw::wavesim::kernels::avx512_kernel() != nullptr ? "true"
                                                                  : "false");
    std::fprintf(f, "    \"active_kernel\": \"%s\",\n",
                 std::string(sw::wavesim::active_kernel_name()).c_str());
    std::fprintf(f, "    \"active_precision\": \"%s\",\n",
                 std::string(sw::wavesim::precision_name(
                                 sw::wavesim::active_precision()))
                     .c_str());
    std::fprintf(f, "    \"compiler\": \"%s\"\n  },\n",
                 json_escape(__VERSION__).c_str());
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"kernel\": \"%s\", "
                   "\"precision\": \"%s\", \"words_per_s\": %.1f",
                   r.name.c_str(), r.kernel.c_str(), r.precision.c_str(),
                   r.words_per_s);
      if (r.has_mix) {
        std::fprintf(f,
                     ", \"f32_detectors\": %zu, "
                     "\"f64_rescue_detectors\": %zu",
                     r.f32_detectors, r.f64_rescue_detectors);
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]%s\n", phases_.empty() ? "" : ",");
    if (!phases_.empty()) {
      std::fprintf(f, "  \"phases\": [\n");
      for (std::size_t i = 0; i < phases_.size(); ++i) {
        const PhaseRow& p = phases_[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"phase\": \"%s\", "
                     "\"mean_seconds\": %.9g, \"count\": %llu}%s\n",
                     p.name.c_str(), p.phase.c_str(), p.mean_seconds,
                     static_cast<unsigned long long>(p.count),
                     i + 1 < phases_.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("bench results written to %s\n", path_.c_str());
    return true;
  }

 private:
  /// Minimal escape for the one free-form string (the compiler banner):
  /// every other emitted string is a codebase-controlled identifier.
  static std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars
      out += c;
    }
    return out;
  }

  struct Row {
    std::string name;
    std::string kernel;
    std::string precision;
    double words_per_s = 0.0;
    bool has_mix = false;  ///< emit the per-detector precision split
    std::size_t f32_detectors = 0;
    std::size_t f64_rescue_detectors = 0;
  };
  struct PhaseRow {
    std::string name;
    std::string phase;
    double mean_seconds = 0.0;
    std::uint64_t count = 0;
  };
  std::string path_;
  std::vector<Row> rows_;
  std::vector<PhaseRow> phases_;
};

}  // namespace sw::bench
