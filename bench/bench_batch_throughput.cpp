// Experiment E6 — batched gate evaluation throughput.
//
// The multi-frequency gate's whole pitch is parallel evaluation: n channels
// per device pass, and (with BatchEvaluator) many input words per layout.
// This bench sweeps the exhaustive 2^(2n) truth table of the 8-channel
// parallel AND gate two ways:
//   * scalar: a per-word loop over ParallelLogicGate::evaluate, which
//     redoes the dispersion-dependent phasor arithmetic for every word;
//   * batched: ParallelLogicGate::evaluate_batch, which precomputes the two
//     possible phasor contributions of every source once and fans words
//     across the thread pool.
// It prints both throughputs and the speedup (the PR's acceptance bar is
// >= 4x on a multi-core host; the precompute alone clears that bar even on
// one core), cross-checks that both paths decode identically, and registers
// Google Benchmark timings for regression tracking.
#include <benchmark/benchmark.h>

#include <chrono>
#include <complex>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/encoding.h"
#include "core/logic_ops.h"
#include "dispersion/fvmsw.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/eval_plan.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw;
using core::Bits;

constexpr std::size_t kChannels = 8;

/// All 2^(2n) operand-word pairs of the n-channel truth table, a-word in
/// the low n bits of the pair index, b-word in the high n bits.
struct TruthTable {
  std::vector<Bits> a_words;
  std::vector<Bits> b_words;
};

TruthTable exhaustive_words(std::size_t n) {
  const std::size_t words = std::size_t{1} << n;
  TruthTable t;
  t.a_words.reserve(words * words);
  t.b_words.reserve(words * words);
  for (std::size_t av = 0; av < words; ++av) {
    for (std::size_t bv = 0; bv < words; ++bv) {
      Bits a(n), b(n);
      for (std::size_t ch = 0; ch < n; ++ch) {
        a[ch] = static_cast<std::uint8_t>((av >> ch) & 1u);
        b[ch] = static_cast<std::uint8_t>((bv >> ch) & 1u);
      }
      t.a_words.push_back(std::move(a));
      t.b_words.push_back(std::move(b));
    }
  }
  return t;
}

struct BenchSetup {
  disp::Waveguide wg = bench::paper_waveguide();
  disp::FvmswDispersion model{wg};
  core::InlineGateDesigner designer{model};
  wavesim::WaveEngine engine{model, wg.material.alpha};
  core::ParallelLogicGate gate{core::BooleanOp::kAnd,
                               bench::paper_frequencies(), designer, engine};
  TruthTable table = exhaustive_words(kChannels);
};

const BenchSetup& setup() {
  static const BenchSetup s;
  return s;
}

std::vector<std::vector<std::uint8_t>> run_scalar(const BenchSetup& s) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(s.table.a_words.size());
  for (std::size_t w = 0; w < s.table.a_words.size(); ++w) {
    out.push_back(s.gate.evaluate(s.table.a_words[w], s.table.b_words[w]));
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> run_batched(const BenchSetup& s) {
  // The replacement for the deprecated evaluate_batch hook: pack the
  // operands, evaluate on a BatchEvaluator. Plan construction stays inside
  // the timed region, matching what the old one-shot call measured.
  const wavesim::BatchEvaluator evaluator(s.gate.gate());
  const auto decoded = evaluator.evaluate_bits(
      s.table.a_words.size(),
      s.gate.pack_batch(s.table.a_words, s.table.b_words));
  const std::size_t n = kChannels;
  std::vector<std::vector<std::uint8_t>> out(s.table.a_words.size());
  for (std::size_t w = 0; w < out.size(); ++w) {
    out[w].assign(decoded.begin() + static_cast<std::ptrdiff_t>(w * n),
                  decoded.begin() + static_cast<std::ptrdiff_t>((w + 1) * n));
  }
  return out;
}

void run_experiment(bench::BenchJson& json) {
  const auto& s = setup();
  const double words = static_cast<double>(s.table.a_words.size());
  std::printf("8-channel parallel AND, exhaustive truth table: %zu words "
              "(2^16 operand pairs x 8 channels)\n\n",
              s.table.a_words.size());

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto scalar = run_scalar(s);
  const auto t1 = clock::now();
  const double scalar_s = std::chrono::duration<double>(t1 - t0).count();

  // Best of three batched runs: the floor check below gates CI, so one
  // noisy-neighbour stall inside a 10 ms window must not read as a
  // regression.
  std::vector<std::vector<std::uint8_t>> batched;
  const double batch_s =
      bench::best_of_three_seconds([&] { batched = run_batched(s); });

  SW_REQUIRE(scalar == batched, "batch result diverged from scalar sweep");
  // Half the acceptance bar as a hard floor so CI catches a gross batch
  // regression without flaking on machine-load noise (~10x headroom today).
  SW_REQUIRE(scalar_s / batch_s >= 2.0,
             "batch path regressed below 2x over the scalar loop");
  std::printf("scalar per-word loop : %8.1f ms  (%10.0f words/s)\n",
              scalar_s * 1e3, words / scalar_s);
  std::printf("BatchEvaluator       : %8.1f ms  (%10.0f words/s)\n",
              batch_s * 1e3, words / batch_s);
  std::printf("speedup              : %8.1fx  (acceptance bar: 4x)\n\n",
              scalar_s / batch_s);
  std::printf("Outputs cross-checked identical on all %zu words.\n\n",
              scalar.size());
  // evaluate_batch routes through evaluate_bits with default options, so
  // the batch row runs at the process-wide precision (f32 on that CI leg).
  json.add("scalar_per_word_loop", "none", "f64", words / scalar_s);
  json.add("batch_evaluator", std::string(wavesim::active_kernel_name()),
           std::string(wavesim::precision_name(wavesim::active_precision())),
           words / batch_s);
}

// ------------------------------------------------------------------------
// Kernel comparison: the same exhaustive packed sweep through (a) a rebuilt
// PR 2-shape AoS inner loop, (b) the scalar SoA kernel, (c) the AVX2 SoA
// kernel where the host supports it. Single-threaded evaluator so the
// ratios measure the kernels, not the pool.

/// PR 2's evaluation shape, reconstructed from the SoA plan: interleaved
/// complex pairs + slot per contribution, complex accumulation per word.
struct AosContribution {
  std::size_t slot;
  std::complex<double> zero, one;
};

std::vector<std::uint8_t> run_aos_reference(
    const wavesim::EvalPlan& plan,
    const std::vector<std::vector<AosContribution>>& detectors,
    const std::vector<std::uint8_t>& packed, std::size_t num_words) {
  const std::size_t stride = plan.slot_count();
  const std::size_t channels = plan.num_channels();
  const auto det_channel = plan.detector_channels();
  std::vector<std::uint8_t> out(num_words * channels);
  for (std::size_t w = 0; w < num_words; ++w) {
    const std::uint8_t* word = packed.data() + w * stride;
    std::uint8_t* row = out.data() + w * channels;
    for (std::size_t d = 0; d < detectors.size(); ++d) {
      std::complex<double> acc{0.0, 0.0};
      for (const auto& c : detectors[d]) {
        acc += word[c.slot] ? c.one : c.zero;
      }
      row[det_channel[d]] = acc.real() < 0.0 ? 1 : 0;
    }
  }
  return out;
}

void run_kernel_experiment(bench::BenchJson& json) {
  const auto& s = setup();
  // Single inline thread: kernel-vs-kernel, no pool fan-out in the ratio.
  // Precision pinned to f64 here so the f64 rows of the comparison stay
  // f64 even under an SW_EVAL_PRECISION=f32 CI leg; the f32 section below
  // pins its own.
  const wavesim::BatchEvaluator evaluator(
      s.gate.gate(),
      {.num_threads = 1, .precision = wavesim::Precision::kFloat64});
  const wavesim::EvalPlan& plan = evaluator.plan();
  const std::size_t stride = evaluator.slot_count();
  const std::size_t num_words = s.table.a_words.size();

  // Pack the exhaustive operand sweep (slots per channel: a, b, pin = 0
  // for AND; the pin stays at the zero-initialised value).
  const std::size_t num_inputs = plan.num_inputs();
  std::vector<std::uint8_t> packed(num_words * stride);
  for (std::size_t w = 0; w < num_words; ++w) {
    for (std::size_t ch = 0; ch < kChannels; ++ch) {
      packed[w * stride + ch * num_inputs] = s.table.a_words[w][ch];
      packed[w * stride + ch * num_inputs + 1] = s.table.b_words[w][ch];
    }
  }

  std::vector<std::vector<AosContribution>> aos(plan.num_detectors());
  for (std::size_t d = 0; d < plan.num_detectors(); ++d) {
    const auto offsets = plan.detector_offsets();
    for (std::size_t i = offsets[d]; i < offsets[d + 1]; ++i) {
      aos[d].push_back({plan.slots()[i],
                        {plan.re0()[i], plan.im0()[i]},
                        {plan.re1()[i], plan.im1()[i]}});
    }
  }

  std::vector<std::uint8_t> aos_bits, scalar_bits, simd_bits;
  const double aos_s = bench::best_of_three_seconds([&] {
    aos_bits = run_aos_reference(plan, aos, packed, num_words);
  });
  const auto& scalar = wavesim::kernels::scalar_kernel();
  const double scalar_s = bench::best_of_three_seconds([&] {
    scalar_bits = evaluator.evaluate_bits(num_words, packed, scalar);
  });
  SW_REQUIRE(scalar_bits == aos_bits,
             "scalar kernel diverged from the AoS reference decode");
  // Ground the whole comparison in the Boolean truth, not just internal
  // consistency: a packing bug would fool all three loops identically.
  for (std::size_t w = 0; w < num_words; ++w) {
    for (std::size_t ch = 0; ch < kChannels; ++ch) {
      const std::uint8_t want =
          s.table.a_words[w][ch] & s.table.b_words[w][ch];
      SW_REQUIRE(scalar_bits[w * kChannels + ch] == want,
                 "packed sweep decode diverged from the AND truth table");
    }
  }

  const double words = static_cast<double>(num_words);
  std::printf("packed evaluate_bits, same sweep (single thread):\n");
  std::printf("AoS reference (PR 2) : %8.1f ms  (%10.0f words/s)\n",
              aos_s * 1e3, words / aos_s);
  std::printf("scalar SoA kernel    : %8.1f ms  (%10.0f words/s, %.2fx)\n",
              scalar_s * 1e3, words / scalar_s, aos_s / scalar_s);
  json.add("exhaustive_2^16_sweep", "aos_reference", "f64", words / aos_s);
  json.add("exhaustive_2^16_sweep", "scalar", "f64", words / scalar_s);
  // The portable acceptance bar: the scalar-kernel fallback must not be
  // slower than the PR 2 AoS shape it replaced (parity; the hard floor
  // leaves 10% for machine-load noise since both sides are timed here).
  SW_REQUIRE(aos_s / scalar_s >= 0.9,
             "scalar SoA kernel regressed below the AoS baseline");

  // f32 plan over the same gate: the margin analysis must accept the paper
  // layout (decode margins are orders of magnitude above the f32 error
  // bound), and every decode must stay bit-identical to f64 — that is the
  // fallback's contract, checked here on the full 2^16 sweep.
  const wavesim::BatchEvaluator evaluator_f32(
      s.gate.gate(),
      {.num_threads = 1, .precision = wavesim::Precision::kFloat32});
  SW_REQUIRE(evaluator_f32.effective_precision() ==
                 wavesim::Precision::kFloat32,
             "paper layout unexpectedly rejected the f32 plan");
  std::vector<std::uint8_t> f32_scalar_bits, f32_simd_bits;
  const double f32_scalar_s = bench::best_of_three_seconds([&] {
    f32_scalar_bits =
        evaluator_f32.evaluate_bits(num_words, packed,
                                    wavesim::kernels::scalar_kernel());
  });
  SW_REQUIRE(f32_scalar_bits == scalar_bits,
             "f32 scalar decode diverged from the f64 decode");
  std::printf("scalar SoA f32       : %8.1f ms  (%10.0f words/s, %.2fx)\n",
              f32_scalar_s * 1e3, words / f32_scalar_s,
              aos_s / f32_scalar_s);
  json.add("exhaustive_2^16_sweep", "scalar", "f32", words / f32_scalar_s);

  double f32_avx2_s = 0.0;  // the avx512 section compares against this
  if (const auto* avx2 = wavesim::kernels::avx2_kernel()) {
    const double simd_s = bench::best_of_three_seconds([&] {
      simd_bits = evaluator.evaluate_bits(num_words, packed, *avx2);
    });
    SW_REQUIRE(simd_bits == scalar_bits,
               "AVX2 kernel diverged from the scalar kernel decode");
    std::printf("AVX2 SoA kernel      : %8.1f ms  (%10.0f words/s, %.2fx)\n",
                simd_s * 1e3, words / simd_s, aos_s / simd_s);
    json.add("exhaustive_2^16_sweep", "avx2", "f64", words / simd_s);
    // Raised floor, applied only where the host verifiably runs AVX2: the
    // SIMD kernel at >= 2x the PR 2 AoS words/s (the acceptance bar).
    SW_REQUIRE(aos_s / simd_s >= 2.0,
               "AVX2 kernel below 2x the AoS baseline on an AVX2 host");

    // f32 AVX2: eight words per register instead of four, half the
    // constant traffic. The acceptance bar of the f32 PR: >= 1.5x the f64
    // AVX2 words/s on the same sweep, with bit-identical decodes.
    const double f32_simd_s = bench::best_of_three_seconds([&] {
      f32_simd_bits = evaluator_f32.evaluate_bits(num_words, packed, *avx2);
    });
    SW_REQUIRE(f32_simd_bits == scalar_bits,
               "f32 AVX2 decode diverged from the f64 decode");
    std::printf("AVX2 SoA f32         : %8.1f ms  (%10.0f words/s, %.2fx, "
                "%.2fx over f64 AVX2)\n",
                f32_simd_s * 1e3, words / f32_simd_s, aos_s / f32_simd_s,
                simd_s / f32_simd_s);
    json.add("exhaustive_2^16_sweep", "avx2", "f32", words / f32_simd_s);
    SW_REQUIRE(simd_s / f32_simd_s >= 1.5,
               "f32 AVX2 kernel below 1.5x the f64 AVX2 kernel");
    f32_avx2_s = f32_simd_s;
  } else {
    std::printf("AVX2 SoA kernel      : unavailable on this build/host\n");
  }

  if (const auto* avx512 = wavesim::kernels::avx512_kernel()) {
    // AVX-512: 8 doubles / 16 floats per register, mask-register blends.
    std::vector<std::uint8_t> avx512_bits, f32_avx512_bits;
    const double simd512_s = bench::best_of_three_seconds([&] {
      avx512_bits = evaluator.evaluate_bits(num_words, packed, *avx512);
    });
    SW_REQUIRE(avx512_bits == scalar_bits,
               "AVX-512 kernel diverged from the scalar kernel decode");
    std::printf("AVX-512 SoA kernel   : %8.1f ms  (%10.0f words/s, %.2fx)\n",
                simd512_s * 1e3, words / simd512_s, aos_s / simd512_s);
    json.add("exhaustive_2^16_sweep", "avx512", "f64", words / simd512_s);
    SW_REQUIRE(aos_s / simd512_s >= 2.0,
               "AVX-512 kernel below 2x the AoS baseline on an AVX-512 host");

    const double f32_simd512_s = bench::best_of_three_seconds([&] {
      f32_avx512_bits =
          evaluator_f32.evaluate_bits(num_words, packed, *avx512);
    });
    SW_REQUIRE(f32_avx512_bits == scalar_bits,
               "f32 AVX-512 decode diverged from the f64 decode");
    std::printf("AVX-512 SoA f32      : %8.1f ms  (%10.0f words/s, %.2fx, "
                "%.2fx over f64 AVX-512",
                f32_simd512_s * 1e3, words / f32_simd512_s,
                aos_s / f32_simd512_s, simd512_s / f32_simd512_s);
    if (f32_avx2_s > 0.0) {
      std::printf(", %.2fx over f32 AVX2", f32_avx2_s / f32_simd512_s);
    }
    std::printf(")\n");
    json.add("exhaustive_2^16_sweep", "avx512", "f32", words / f32_simd512_s);
    // The acceptance bar of the AVX-512 PR: the 16-wide f32 kernel at
    // >= 1.5x the AVX2 f32 words/s on the same sweep. Both sides are timed
    // in this process, so the full bar holds as the CI floor.
    if (f32_avx2_s > 0.0) {
      SW_REQUIRE(f32_avx2_s / f32_simd512_s >= 1.5,
                 "f32 AVX-512 kernel below 1.5x the f32 AVX2 kernel");
    }
  } else {
    std::printf("AVX-512 SoA kernel   : unavailable on this build/host\n");
  }
  std::printf("active kernel        : %s\n\n",
              std::string(wavesim::active_kernel_name()).c_str());
}

// ------------------------------------------------------------------------
// Mixed precision: one thin detector out of eight. The per-detector margin
// proof rejects exactly the thinned channel, so the plan partitions into a
// block-f32 plan — f32 accumulation on the seven proved detectors, f64
// rescue lanes for the thin one — which must land between the all-f64
// floor and the all-f32 ceiling. Acceptance bar: >= 1.3x the all-f64
// plan's words/s on the same sweep.

/// Rescales one channel of the AND fabric so one bit assignment nearly
/// cancels at that channel's detector: with phase-pi contributions being
/// exact negations, scaling the third source by (re0[0] + re0[1]) /
/// re0[2] zeroes that assignment's sum. The f64 decode stays
/// deterministic; the f32 margin proof must refuse exactly this detector.
core::GateLayout thin_one_channel(const BenchSetup& s,
                                  std::size_t channel) {
  core::GateLayout layout = s.gate.layout();
  const core::DataParallelGate gate(layout, s.engine);
  const wavesim::EvalPlan probe(gate, wavesim::kDefaultFreqTol,
                                wavesim::Precision::kFloat64);
  const auto offsets = probe.detector_offsets();
  for (std::size_t d = 0; d < probe.num_detectors(); ++d) {
    if (probe.detector_channels()[d] != channel) continue;
    SW_REQUIRE(offsets[d + 1] - offsets[d] == 3,
               "thin-channel fixture expects 3 contributions");
    const std::size_t i = offsets[d];
    const double t =
        (probe.re0()[i] + probe.re0()[i + 1]) / probe.re0()[i + 2];
    const std::uint32_t input = probe.inputs()[i + 2];
    for (auto& src : layout.sources) {
      if (src.channel == channel && src.input == input) src.amplitude *= t;
    }
    return layout;
  }
  throw sw::util::Error("no detector found for the thinned channel");
}

void run_mixed_experiment(bench::BenchJson& json) {
  const auto& s = setup();
  const core::GateLayout thin = thin_one_channel(s, /*channel=*/3);
  const core::DataParallelGate gate(thin, s.engine);
  const wavesim::BatchEvaluator f64(
      gate, {.num_threads = 1, .precision = wavesim::Precision::kFloat64});
  const wavesim::BatchEvaluator block(
      gate, {.num_threads = 1, .precision = wavesim::Precision::kFloat32});
  const wavesim::EvalPlan& plan = block.plan();
  SW_REQUIRE(plan.is_block(),
             "thin-1-of-8 layout did not partition into a block plan");
  SW_REQUIRE(plan.num_f32_detectors() == 7 &&
                 plan.num_f64_rescue_detectors() == 1,
             "expected a 7-proved / 1-rescued detector split");

  // The same packed exhaustive sweep as the kernel comparison.
  const std::size_t stride = f64.slot_count();
  const std::size_t num_inputs = plan.num_inputs();
  const std::size_t num_words = s.table.a_words.size();
  std::vector<std::uint8_t> packed(num_words * stride);
  for (std::size_t w = 0; w < num_words; ++w) {
    for (std::size_t ch = 0; ch < kChannels; ++ch) {
      packed[w * stride + ch * num_inputs] = s.table.a_words[w][ch];
      packed[w * stride + ch * num_inputs + 1] = s.table.b_words[w][ch];
    }
  }

  std::vector<std::uint8_t> f64_bits, block_bits;
  const double f64_s = bench::best_of_three_seconds(
      [&] { f64_bits = f64.evaluate_bits(num_words, packed); });
  const double block_s = bench::best_of_three_seconds(
      [&] { block_bits = block.evaluate_bits(num_words, packed); });
  SW_REQUIRE(block_bits == f64_bits,
             "block-f32 decode diverged from the all-f64 decode");

  const double words = static_cast<double>(num_words);
  const std::string kernel(wavesim::active_kernel_name());
  std::printf("1-thin-of-8 block plan (%s), same sweep (single thread):\n",
              plan.precision_label().c_str());
  std::printf("all-f64 plan         : %8.1f ms  (%10.0f words/s)\n",
              f64_s * 1e3, words / f64_s);
  std::printf("block-f32 plan       : %8.1f ms  (%10.0f words/s, %.2fx; "
              "bar: 1.3x)\n\n",
              block_s * 1e3, words / block_s, f64_s / block_s);
  json.add("thin_1_of_8_sweep", kernel, "f64", words / f64_s);
  json.add_mix("thin_1_of_8_sweep", kernel, "block-f32", words / block_s,
               plan.num_f32_detectors(), plan.num_f64_rescue_detectors());
  // The acceptance bar only binds where a SIMD kernel actually widens the
  // f32 run; the forced-scalar CI leg still cross-checks the decode above.
  if (kernel != "scalar") {
    SW_REQUIRE(f64_s / block_s >= 1.3,
               "block-f32 plan below 1.3x the all-f64 plan");
  }
}

void BM_ScalarTruthTableSweep(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_scalar(s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.table.a_words.size()));
}
BENCHMARK(BM_ScalarTruthTableSweep)->Unit(benchmark::kMillisecond);

void BM_BatchedTruthTableSweep(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batched(s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.table.a_words.size()));
}
BENCHMARK(BM_BatchedTruthTableSweep)->Unit(benchmark::kMillisecond);

void BM_BatchedSweepReusedPlan(benchmark::State& state) {
  // Long-lived evaluator over the byte majority fabric: the steady-serving
  // shape, plan built once and reused across batches.
  const auto& s = setup();
  core::GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = bench::paper_frequencies();
  const core::DataParallelGate gate(s.designer.design(spec), s.engine);
  const wavesim::BatchEvaluator evaluator(gate);
  const auto patterns = core::all_patterns(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate_uniform(patterns));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(patterns.size()));
}
BENCHMARK(BM_BatchedSweepReusedPlan);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E6: batch evaluation throughput — scalar vs batched ===\n\n");
  sw::bench::BenchJson json("BENCH_batch.json");
  run_experiment(json);
  run_kernel_experiment(json);
  run_mixed_experiment(json);
  json.write("bench_batch_throughput");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
