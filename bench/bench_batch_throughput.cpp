// Experiment E6 — batched gate evaluation throughput.
//
// The multi-frequency gate's whole pitch is parallel evaluation: n channels
// per device pass, and (with BatchEvaluator) many input words per layout.
// This bench sweeps the exhaustive 2^(2n) truth table of the 8-channel
// parallel AND gate two ways:
//   * scalar: a per-word loop over ParallelLogicGate::evaluate, which
//     redoes the dispersion-dependent phasor arithmetic for every word;
//   * batched: ParallelLogicGate::evaluate_batch, which precomputes the two
//     possible phasor contributions of every source once and fans words
//     across the thread pool.
// It prints both throughputs and the speedup (the PR's acceptance bar is
// >= 4x on a multi-core host; the precompute alone clears that bar even on
// one core), cross-checks that both paths decode identically, and registers
// Google Benchmark timings for regression tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "core/encoding.h"
#include "core/logic_ops.h"
#include "dispersion/fvmsw.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw;
using core::Bits;

constexpr std::size_t kChannels = 8;

/// All 2^(2n) operand-word pairs of the n-channel truth table, a-word in
/// the low n bits of the pair index, b-word in the high n bits.
struct TruthTable {
  std::vector<Bits> a_words;
  std::vector<Bits> b_words;
};

TruthTable exhaustive_words(std::size_t n) {
  const std::size_t words = std::size_t{1} << n;
  TruthTable t;
  t.a_words.reserve(words * words);
  t.b_words.reserve(words * words);
  for (std::size_t av = 0; av < words; ++av) {
    for (std::size_t bv = 0; bv < words; ++bv) {
      Bits a(n), b(n);
      for (std::size_t ch = 0; ch < n; ++ch) {
        a[ch] = static_cast<std::uint8_t>((av >> ch) & 1u);
        b[ch] = static_cast<std::uint8_t>((bv >> ch) & 1u);
      }
      t.a_words.push_back(std::move(a));
      t.b_words.push_back(std::move(b));
    }
  }
  return t;
}

struct BenchSetup {
  disp::Waveguide wg = bench::paper_waveguide();
  disp::FvmswDispersion model{wg};
  core::InlineGateDesigner designer{model};
  wavesim::WaveEngine engine{model, wg.material.alpha};
  core::ParallelLogicGate gate{core::BooleanOp::kAnd,
                               bench::paper_frequencies(), designer, engine};
  TruthTable table = exhaustive_words(kChannels);
};

const BenchSetup& setup() {
  static const BenchSetup s;
  return s;
}

std::vector<std::vector<std::uint8_t>> run_scalar(const BenchSetup& s) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(s.table.a_words.size());
  for (std::size_t w = 0; w < s.table.a_words.size(); ++w) {
    out.push_back(s.gate.evaluate(s.table.a_words[w], s.table.b_words[w]));
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> run_batched(const BenchSetup& s) {
  return s.gate.evaluate_batch(s.table.a_words, s.table.b_words);
}

void run_experiment() {
  const auto& s = setup();
  const double words = static_cast<double>(s.table.a_words.size());
  std::printf("8-channel parallel AND, exhaustive truth table: %zu words "
              "(2^16 operand pairs x 8 channels)\n\n",
              s.table.a_words.size());

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto scalar = run_scalar(s);
  const auto t1 = clock::now();
  const double scalar_s = std::chrono::duration<double>(t1 - t0).count();

  // Best of three batched runs: the floor check below gates CI, so one
  // noisy-neighbour stall inside a 10 ms window must not read as a
  // regression.
  double batch_s = std::numeric_limits<double>::infinity();
  std::vector<std::vector<std::uint8_t>> batched;
  for (int rep = 0; rep < 3; ++rep) {
    const auto b0 = clock::now();
    batched = run_batched(s);
    const auto b1 = clock::now();
    batch_s = std::min(batch_s,
                       std::chrono::duration<double>(b1 - b0).count());
  }

  SW_REQUIRE(scalar == batched, "batch result diverged from scalar sweep");
  // Half the acceptance bar as a hard floor so CI catches a gross batch
  // regression without flaking on machine-load noise (~10x headroom today).
  SW_REQUIRE(scalar_s / batch_s >= 2.0,
             "batch path regressed below 2x over the scalar loop");
  std::printf("scalar per-word loop : %8.1f ms  (%10.0f words/s)\n",
              scalar_s * 1e3, words / scalar_s);
  std::printf("BatchEvaluator       : %8.1f ms  (%10.0f words/s)\n",
              batch_s * 1e3, words / batch_s);
  std::printf("speedup              : %8.1fx  (acceptance bar: 4x)\n\n",
              scalar_s / batch_s);
  std::printf("Outputs cross-checked identical on all %zu words.\n\n",
              scalar.size());
}

void BM_ScalarTruthTableSweep(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_scalar(s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.table.a_words.size()));
}
BENCHMARK(BM_ScalarTruthTableSweep)->Unit(benchmark::kMillisecond);

void BM_BatchedTruthTableSweep(benchmark::State& state) {
  const auto& s = setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batched(s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.table.a_words.size()));
}
BENCHMARK(BM_BatchedTruthTableSweep)->Unit(benchmark::kMillisecond);

void BM_BatchedSweepReusedPlan(benchmark::State& state) {
  // Long-lived evaluator over the byte majority fabric: the steady-serving
  // shape, plan built once and reused across batches.
  const auto& s = setup();
  core::GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = bench::paper_frequencies();
  const core::DataParallelGate gate(s.designer.design(spec), s.engine);
  const wavesim::BatchEvaluator evaluator(gate);
  const auto patterns = core::all_patterns(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate_uniform(patterns));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(patterns.size()));
}
BENCHMARK(BM_BatchedSweepReusedPlan);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E6: batch evaluation throughput — scalar vs batched ===\n\n");
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
