// Integration tests: full solver runs validating the physics chain the
// benches rely on — dispersion self-consistency, micromagnetic majority
// gates, demag model agreement and OOMMF-format interop.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/encoding.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "core/micromag_gate.h"
#include "dispersion/local_1d.h"
#include "io/ovf.h"
#include "mag/anisotropy.h"
#include "mag/antenna.h"
#include "mag/demag_factors.h"
#include "mag/demag_local.h"
#include "mag/demag_newell.h"
#include "mag/exchange.h"
#include "mag/simulation.h"
#include "util/constants.h"
#include "util/stats.h"

namespace {

using namespace sw::core;
using namespace sw::mag;
using sw::disp::LocalDemag1DDispersion;
using sw::disp::Waveguide;
using sw::util::kPi;
using sw::util::kTwoPi;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

// Dispersion self-consistency: a wave excited at frequency f in the reduced
// 1-D solver must propagate with the wavelength the design model predicts.
// This is the property that makes d_i = n_i lambda_i placements meaningful.
TEST(Integration, SolverWavelengthMatchesDesignModel) {
  const Waveguide wg = paper_waveguide();
  const double cell = 2e-9;
  const double f = 2e10;

  auto model = LocalDemag1DDispersion::from_waveguide(wg);
  model.set_discretization(cell);
  const double lambda_model = model.wavelength(f);
  const double vg = model.group_velocity(model.k_from_frequency(f));

  const std::size_t nx = 400;  // 800 nm
  const Mesh mesh(nx, 1, 1, cell, wg.width, wg.thickness);
  IntegratorOptions opts;
  opts.stepper = Stepper::kRk4;
  opts.dt = 1.5e-13;
  Simulation sim(mesh, wg.material, opts);
  sim.add_term<ExchangeField>(mesh, wg.material);
  sim.add_term<UniaxialAnisotropyField>(wg.material);
  sim.add_term<DemagLocalField>(
      wg.material, demag_factors_waveguide(wg.width, wg.thickness));

  auto& ant = sim.add_term<AntennaField>(mesh);
  Antenna a;
  a.x_center = 100e-9;
  a.width = 10e-9;
  a.frequency = f;
  a.amplitude = 2e3;
  a.ramp = 1.0 / f;
  ant.add(a);
  sim.add_absorbing_ends(60e-9, 0.5);

  // Run until the wavefront has comfortably crossed the analysis window.
  const double t_end = (500e-9) / vg + 10.0 / f;
  sim.run_until(t_end);

  // Unwrap the spatial phase of the precession over a window downstream of
  // the antenna and fit the slope -> wavenumber.
  const double r = model.ellipticity(model.k_from_frequency(f));
  const auto& m = sim.magnetization();
  std::vector<double> xs, phis;
  double prev = 0.0, accum = 0.0;
  const std::size_t i0 = mesh.cell_at_x(160e-9);
  const std::size_t i1 = mesh.cell_at_x(560e-9);
  for (std::size_t i = i0; i <= i1; ++i) {
    const double phi = std::atan2(m[i].y / r, m[i].x);
    if (!xs.empty()) {
      double d = phi - prev;
      while (d > kPi) d -= kTwoPi;
      while (d < -kPi) d += kTwoPi;
      accum += d;
    }
    prev = phi;
    xs.push_back((static_cast<double>(i) + 0.5) * cell);
    phis.push_back(accum);
  }
  const auto fit = sw::util::fit_line(xs, phis);
  const double k_measured = std::abs(fit.slope);
  const double lambda_measured = kTwoPi / k_measured;

  EXPECT_GT(fit.r2, 0.99);  // clean single-mode propagation
  EXPECT_NEAR(lambda_measured, lambda_model, 0.02 * lambda_model);
}

// The core validation (paper Fig. 4 reduced to one channel): a 3-input
// in-line majority gate simulated with the full LLG solver must reproduce
// the majority truth table for all 8 input patterns.
TEST(Integration, MicromagMajorityTruthTableSingleChannel) {
  const Waveguide wg = paper_waveguide();
  MicromagConfig cfg;
  cfg.t_end = 1.0e-9;

  auto model = LocalDemag1DDispersion::from_waveguide(wg);
  model.set_discretization(cfg.cell_size);
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = {2e10};
  const auto layout = designer.design(spec);

  MicromagGateRunner runner(layout, wg, cfg);
  for (const auto& pattern : all_patterns(3)) {
    const auto run = runner.run_uniform(pattern);
    ASSERT_EQ(run.channels.size(), 1u);
    EXPECT_EQ(run.channels[0].logic,
              static_cast<std::uint8_t>(majority(pattern)))
        << "pattern " << int(pattern[0]) << int(pattern[1])
        << int(pattern[2]);
    EXPECT_GT(run.channels[0].margin, 0.2)
        << "margin too small for pattern " << int(pattern[0])
        << int(pattern[1]) << int(pattern[2]);
  }
}

// Two frequency channels carrying *different* data through one waveguide:
// each channel's output must follow its own inputs (the data-parallelism
// claim, micromagnetic version).
TEST(Integration, MicromagTwoChannelIndependence) {
  const Waveguide wg = paper_waveguide();
  MicromagConfig cfg;
  cfg.t_end = 1.2e-9;

  auto model = LocalDemag1DDispersion::from_waveguide(wg);
  model.set_discretization(cfg.cell_size);
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = {2e10, 4e10};
  const auto layout = designer.design(spec);

  MicromagGateRunner runner(layout, wg, cfg);
  // Channel 0 sees MAJ = 1, channel 1 sees MAJ = 0, then swapped.
  {
    const auto run = runner.run({Bits{1, 1, 0}, Bits{0, 0, 1}});
    EXPECT_EQ(run.channels[0].logic, 1);
    EXPECT_EQ(run.channels[1].logic, 0);
  }
  {
    const auto run = runner.run({Bits{0, 1, 0}, Bits{1, 0, 1}});
    EXPECT_EQ(run.channels[0].logic, 0);
    EXPECT_EQ(run.channels[1].logic, 1);
  }
}

// Local cross-section demag vs the exact Newell convolution: deep inside a
// long thin chain the two agree on the static field.
TEST(Integration, NewellMatchesLocalDemagInLongChain) {
  const Waveguide wg = paper_waveguide();
  const std::size_t nx = 256;
  const Mesh mesh(nx, 1, 1, 2e-9, wg.width, wg.thickness);
  const Material mat = wg.material;

  const DemagNewellField newell(mesh, mat);
  const auto nf = demag_factors_waveguide(wg.width, wg.thickness);

  const VectorField m(mesh, {0, 0, 1});
  VectorField h(mesh);
  newell.accumulate(0.0, m, h);

  // Mid-chain cells: the local approximation predicts -Nz*Ms along z. The
  // finite chain and cell-tensor discreteness leave a few-percent residue.
  const double expect = -nf.z * mat.Ms;
  const double got = h[nx / 2].z;
  EXPECT_NEAR(got, expect, 0.05 * std::abs(expect));
  // Ends are less screened: |H_z| must be smaller there.
  EXPECT_LT(std::abs(h[0].z), std::abs(got));
}

// A spin wave also propagates under the full Newell demag (the physics does
// not depend on the local-tensor shortcut).
TEST(Integration, WavePropagatesUnderNewellDemag) {
  const Waveguide wg = paper_waveguide();
  const std::size_t nx = 200;
  const double cell = 2e-9;
  const Mesh mesh(nx, 1, 1, cell, wg.width, wg.thickness);
  IntegratorOptions opts;
  opts.stepper = Stepper::kRk4;
  opts.dt = 1.5e-13;
  Simulation sim(mesh, wg.material, opts);
  sim.add_term<ExchangeField>(mesh, wg.material);
  sim.add_term<UniaxialAnisotropyField>(wg.material);
  sim.add_term<DemagNewellField>(mesh, wg.material);

  auto& ant = sim.add_term<AntennaField>(mesh);
  Antenna a;
  a.x_center = 60e-9;
  a.width = 10e-9;
  a.frequency = 2e10;
  a.amplitude = 2e3;
  a.ramp = 5e-11;
  ant.add(a);
  sim.add_absorbing_ends(40e-9, 0.5);

  // Uniform +z is an exact equilibrium of the chain (odd Nxz symmetry), so
  // the run starts hot with no relaxation pass.
  auto& probe = sim.add_probe("far", 300e-9, 10e-9, 1e-12);
  sim.run_until(0.6e-9);

  const auto mx = probe.component('x');
  double max_abs = 0.0;
  for (double v : mx) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_GT(max_abs, 1e-5);  // the wave reached the distant probe
}

// Full-pipeline interop: simulate, snapshot to OVF, read back.
TEST(Integration, SimulationSnapshotRoundTripsThroughOvf) {
  const Waveguide wg = paper_waveguide();
  const Mesh mesh(64, 1, 1, 2e-9, wg.width, wg.thickness);
  Simulation sim(mesh, wg.material);
  sim.add_term<ExchangeField>(mesh, wg.material);
  sim.add_term<UniaxialAnisotropyField>(wg.material);
  sim.add_term<DemagLocalField>(
      wg.material, demag_factors_waveguide(wg.width, wg.thickness));
  auto& ant = sim.add_term<AntennaField>(mesh);
  Antenna a;
  a.x_center = 30e-9;
  a.width = 10e-9;
  a.frequency = 2e10;
  a.amplitude = 2e3;
  ant.add(a);
  sim.run_until(0.1e-9);

  const auto path =
      (std::filesystem::temp_directory_path() / "sw_integ.ovf").string();
  sw::io::write_ovf(path, sim.magnetization(), "integration snapshot");
  const auto back = sw::io::read_ovf(path);
  ASSERT_EQ(back.size(), sim.magnetization().size());
  for (std::size_t c = 0; c < back.size(); ++c) {
    EXPECT_NEAR(back[c].x, sim.magnetization()[c].x, 1e-9);
    EXPECT_NEAR(back[c].z, sim.magnetization()[c].z, 1e-9);
  }
  std::remove(path.c_str());
}

// Functional model vs micromagnetics: the analytic gate and the LLG gate
// must agree on every output bit of the truth table.
TEST(Integration, WavesimAgreesWithMicromagnetics) {
  const Waveguide wg = paper_waveguide();
  MicromagConfig cfg;
  cfg.t_end = 1.0e-9;

  auto model = LocalDemag1DDispersion::from_waveguide(wg);
  model.set_discretization(cfg.cell_size);
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = {3e10};
  const auto layout = designer.design(spec);

  const sw::wavesim::WaveEngine engine(model, wg.material.alpha);
  DataParallelGate analytic(layout, engine);
  MicromagGateRunner micromag(layout, wg, cfg);

  for (const auto& pattern : all_patterns(3)) {
    const auto a = analytic.evaluate_uniform(pattern);
    const auto m = micromag.run_uniform(pattern);
    EXPECT_EQ(a[0].logic, m.channels[0].logic)
        << "pattern " << int(pattern[0]) << int(pattern[1])
        << int(pattern[2]);
  }
}

}  // namespace
