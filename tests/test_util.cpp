// Unit tests for the util substrate: constants, root finding, statistics,
// interpolation and string handling.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/constants.h"
#include "util/error.h"
#include "util/interp.h"
#include "util/root_find.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/units.h"

namespace {

using namespace sw::util;

// ---------------------------------------------------------------- constants

TEST(Constants, GammaMu0MatchesOommfValue) {
  // OOMMF's default gyromagnetic ratio is 2.211e5 m/(A s) within 0.1%.
  EXPECT_NEAR(kGammaMu0, 2.211e5, 2.3e2);
}

TEST(Constants, Mu0IsCodata) { EXPECT_NEAR(kMu0, 4e-7 * kPi, 1e-12); }

TEST(Constants, TwoPi) { EXPECT_DOUBLE_EQ(kTwoPi, 2.0 * kPi); }

TEST(Units, LengthScales) {
  EXPECT_DOUBLE_EQ(sw::units::nm, 1e-9);
  EXPECT_DOUBLE_EQ(50 * sw::units::nm, 5e-8);
  EXPECT_DOUBLE_EQ(sw::units::um2, 1e-12);
}

TEST(Units, TimeAndFrequency) {
  EXPECT_DOUBLE_EQ(10 * sw::units::GHz, 1e10);
  EXPECT_DOUBLE_EQ(3 * sw::units::ns, 3e-9);
  EXPECT_DOUBLE_EQ(sw::units::fs, 1e-15);
}

// --------------------------------------------------------------- root find

TEST(Brent, FindsPolynomialRoot) {
  const auto f = [](double x) { return x * x * x - 2.0 * x - 5.0; };
  const auto r = brent(f, 2.0, 3.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.0945514815423265, 1e-12);
}

TEST(Brent, FindsTrigRoot) {
  const auto r = brent([](double x) { return std::cos(x); }, 0.0, 3.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, kPi / 2.0, 1e-12);
}

TEST(Brent, ExactEndpointRoot) {
  const auto r = brent([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 0.0);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Brent, ThrowsWhenNotBracketed) {
  EXPECT_THROW(brent([](double x) { return x * x + 1.0; }, -1.0, 1.0), Error);
}

TEST(Brent, ThrowsOnNonFiniteEndpoint) {
  EXPECT_THROW(brent([](double x) { return 1.0 / x; }, 0.0, 1.0), Error);
}

TEST(Brent, RespectsFTolerance) {
  RootOptions opts;
  opts.f_tol = 1e-3;
  const auto r = brent([](double x) { return x - 0.25; }, 0.0, 1.0, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(std::abs(r.f), 1e-3);
}

TEST(Bisect, AgreesWithBrent) {
  const auto f = [](double x) { return std::exp(x) - 3.0; };
  const auto rb = brent(f, 0.0, 2.0);
  const auto ri = bisect(f, 0.0, 2.0, {.x_tol = 1e-13});
  EXPECT_NEAR(rb.x, ri.x, 1e-10);
  EXPECT_NEAR(rb.x, std::log(3.0), 1e-10);
}

TEST(Bisect, ThrowsWhenNotBracketed) {
  EXPECT_THROW(bisect([](double) { return 1.0; }, 0.0, 1.0), Error);
}

TEST(ExpandBracket, GrowsUntilSignChange) {
  double a = 10.0, b = 11.0;
  const auto f = [](double x) { return x - 3.0; };
  EXPECT_TRUE(expand_bracket(f, a, b));
  EXPECT_LE(f(a) * f(b), 0.0);
}

TEST(ExpandBracket, FailsWhenNoRoot) {
  double a = 0.0, b = 1.0;
  EXPECT_FALSE(expand_bracket([](double) { return 2.0; }, a, b, 8));
}

TEST(GoldenMin, FindsParabolaMinimum) {
  const double x =
      golden_min([](double t) { return (t - 1.25) * (t - 1.25); }, -4.0, 4.0);
  EXPECT_NEAR(x, 1.25, 1e-9);
}

TEST(GoldenMin, ThrowsOnBadInterval) {
  EXPECT_THROW(golden_min([](double t) { return t; }, 1.0, 0.0), Error);
}

// -------------------------------------------------------------------- stats

TEST(Summarize, EmptySpan) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(FitLine, ExactLine) {
  const std::vector<double> xs{0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x - 2.0);
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, ThrowsOnMismatch) {
  const std::vector<double> xs{0, 1};
  const std::vector<double> ys{0, 1, 2};
  EXPECT_THROW(fit_line(xs, ys), Error);
}

TEST(FitLine, ThrowsOnDegenerateX) {
  const std::vector<double> xs{2, 2, 2};
  const std::vector<double> ys{0, 1, 2};
  EXPECT_THROW(fit_line(xs, ys), Error);
}

TEST(Rms, SineWave) {
  std::vector<double> xs(10000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(kTwoPi * static_cast<double>(i) / 100.0);
  }
  EXPECT_NEAR(rms(xs), 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(ArgmaxAbs, PicksLargestMagnitude) {
  const std::vector<double> xs{1.0, -5.0, 3.0};
  EXPECT_EQ(argmax_abs(xs), 1u);
}

TEST(WrapAngle, StaysInRange) {
  for (double a = -30.0; a <= 30.0; a += 0.37) {
    const double w = wrap_angle(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    // Same angle modulo 2 pi.
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-12);
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-12);
  }
}

TEST(AngleDistance, SymmetricAndBounded) {
  EXPECT_NEAR(angle_distance(0.1, kTwoPi + 0.1), 0.0, 1e-12);
  EXPECT_NEAR(angle_distance(0.0, kPi), kPi, 1e-12);
  EXPECT_NEAR(angle_distance(-kPi / 2, kPi / 2), kPi, 1e-12);
  EXPECT_NEAR(angle_distance(0.3, 0.8), angle_distance(0.8, 0.3), 1e-15);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(1.0, 2.0, 11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 2.0);
  EXPECT_NEAR(v[5], 1.5, 1e-12);
}

TEST(Linspace, ThrowsOnTooFewPoints) { EXPECT_THROW(linspace(0, 1, 1), Error); }

// ------------------------------------------------------------------- interp

TEST(LinearTable, InterpolatesAndExtrapolates) {
  const LinearTable t({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(t(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t(1.5), 25.0);
  EXPECT_DOUBLE_EQ(t(3.0), 70.0);   // extrapolation from last segment
  EXPECT_DOUBLE_EQ(t(-1.0), -10.0); // extrapolation from first segment
}

TEST(LinearTable, Derivative) {
  const LinearTable t({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(t.derivative(0.5), 10.0);
  EXPECT_DOUBLE_EQ(t.derivative(1.5), 30.0);
}

TEST(LinearTable, Inverse) {
  const LinearTable t({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(t.inverse(5.0), 0.5);
  EXPECT_DOUBLE_EQ(t.inverse(25.0), 1.5);
}

TEST(LinearTable, InverseThrowsOutsideRange) {
  const LinearTable t({0.0, 1.0}, {0.0, 1.0});
  EXPECT_THROW(t.inverse(2.0), Error);
}

TEST(LinearTable, InverseThrowsOnNonMonotonicY) {
  const LinearTable t({0.0, 1.0, 2.0}, {0.0, 1.0, 0.5});
  EXPECT_THROW(t.inverse(0.7), Error);
}

TEST(LinearTable, RejectsUnsortedX) {
  EXPECT_THROW(LinearTable({1.0, 0.0}, {0.0, 1.0}), Error);
}

// ------------------------------------------------------------------ strings

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\n x \r"), "x");
  EXPECT_EQ(trim("    "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  const auto trimmed = split(" a ; b ", ';', true);
  EXPECT_EQ(trimmed[0], "a");
  EXPECT_EQ(trimmed[1], "b");
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  10e9   20e9\t30e9 ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "20e9");
}

TEST(Strings, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("FeCoB"), "fecob");
  EXPECT_TRUE(starts_with("# comment", "#"));
  EXPECT_FALSE(starts_with("x", "xy"));
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double(" 1.5e-9 "), 1.5e-9);
  EXPECT_DOUBLE_EQ(*parse_double("-3"), -3.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(Strings, ParseLong) {
  EXPECT_EQ(*parse_long("42"), 42);
  EXPECT_EQ(*parse_long(" -7 "), -7);
  EXPECT_FALSE(parse_long("4.2").has_value());
}

TEST(Strings, ParseBool) {
  EXPECT_TRUE(*parse_bool("true"));
  EXPECT_TRUE(*parse_bool("YES"));
  EXPECT_FALSE(*parse_bool("0"));
  EXPECT_FALSE(parse_bool("maybe").has_value());
}

TEST(Strings, FormatSig) {
  EXPECT_EQ(format_sig(1234.5678, 4), "1235");
  EXPECT_EQ(format_sig(0.000123456, 3), "0.000123");
}

// -------------------------------------------------------------------- error

TEST(Error, RequireThrowsWithContext) {
  try {
    SW_REQUIRE(false, "broken thing");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("broken thing"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(SW_REQUIRE(true, "fine"));
}

}  // namespace
