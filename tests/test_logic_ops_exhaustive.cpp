// Exhaustive truth tables for every derived Boolean op at n in {1, 4, 8}
// channels: all 2^(2n) operand-word pairs (2^n for unary ops) must agree
// with boolean_op_eval on every channel. The 8-channel sweeps run through
// the batch path so the whole 65k-word table stays cheap; batch/scalar
// equivalence is pinned separately in test_batch_evaluator.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/encoding.h"
#include "core/logic_ops.h"
#include "dispersion/fvmsw.h"
#include "mag/material.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw::core;
using sw::disp::FvmswDispersion;
using sw::disp::Waveguide;
using sw::wavesim::WaveEngine;

constexpr BooleanOp kAllOps[] = {BooleanOp::kAnd,    BooleanOp::kOr,
                                 BooleanOp::kNand,   BooleanOp::kNor,
                                 BooleanOp::kBuffer, BooleanOp::kNot};

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

std::vector<double> channel_frequencies(std::size_t n) {
  std::vector<double> f;
  for (std::size_t i = 1; i <= n; ++i) f.push_back(1e10 * static_cast<double>(i));
  return f;
}

Bits word_bits(std::uint32_t value, std::size_t n) {
  Bits bits(n);
  for (std::size_t ch = 0; ch < n; ++ch) {
    bits[ch] = static_cast<std::uint8_t>((value >> ch) & 1u);
  }
  return bits;
}

bool is_unary(BooleanOp op) {
  return op == BooleanOp::kBuffer || op == BooleanOp::kNot;
}

/// Check one gate against the reference for every word pair in the batch
/// results (word index encodes a in the low n bits, b in the high n bits).
void check_against_reference(
    BooleanOp op, std::size_t n,
    const std::vector<Bits>& a_words, const std::vector<Bits>& b_words,
    const std::vector<std::vector<std::uint8_t>>& outputs) {
  ASSERT_EQ(outputs.size(), a_words.size());
  for (std::size_t w = 0; w < outputs.size(); ++w) {
    ASSERT_EQ(outputs[w].size(), n);
    for (std::size_t ch = 0; ch < n; ++ch) {
      const bool a = a_words[w][ch] != 0;
      const bool b = is_unary(op) ? false : b_words[w][ch] != 0;
      EXPECT_EQ(outputs[w][ch],
                static_cast<std::uint8_t>(boolean_op_eval(op, a, b)))
          << boolean_op_name(op) << " n=" << n << " word=" << w
          << " channel=" << ch;
    }
  }
}

class ExhaustiveTruthTable : public ::testing::TestWithParam<std::size_t> {
 protected:
  Waveguide wg_ = paper_waveguide();
  FvmswDispersion model_{wg_};
  InlineGateDesigner designer_{model_};
  WaveEngine engine_{model_, wg_.material.alpha};
};

TEST_P(ExhaustiveTruthTable, EveryOpMatchesReferenceOnAllWords) {
  const std::size_t n = GetParam();
  const std::uint32_t words = 1u << n;

  for (const auto op : kAllOps) {
    const ParallelLogicGate gate(op, channel_frequencies(n), designer_,
                                 engine_);
    EXPECT_EQ(gate.data_inputs(), is_unary(op) ? 1u : 2u);

    // Enumerate every operand combination: 2^n a-words x 2^n b-words for
    // binary ops, 2^n a-words for unary ones.
    std::vector<Bits> a_words, b_words;
    for (std::uint32_t av = 0; av < words; ++av) {
      if (is_unary(op)) {
        a_words.push_back(word_bits(av, n));
      } else {
        for (std::uint32_t bv = 0; bv < words; ++bv) {
          a_words.push_back(word_bits(av, n));
          b_words.push_back(word_bits(bv, n));
        }
      }
    }

    if (n >= 8) {
      // 2^(2n) words: sweep through the batch path — pack_batch feeding a
      // held BatchEvaluator, the replacement for the deprecated
      // evaluate_batch hook.
      const sw::wavesim::BatchEvaluator evaluator(gate.gate());
      const auto decoded =
          evaluator.evaluate_bits(a_words.size(),
                                  gate.pack_batch(a_words, b_words));
      std::vector<std::vector<std::uint8_t>> outputs(a_words.size());
      for (std::size_t w = 0; w < outputs.size(); ++w) {
        outputs[w].assign(
            decoded.begin() + static_cast<std::ptrdiff_t>(w * n),
            decoded.begin() + static_cast<std::ptrdiff_t>((w + 1) * n));
      }
      check_against_reference(op, n, a_words, b_words, outputs);
    } else {
      // Small tables: exercise the scalar path directly.
      std::vector<std::vector<std::uint8_t>> outputs;
      outputs.reserve(a_words.size());
      for (std::size_t w = 0; w < a_words.size(); ++w) {
        outputs.push_back(
            gate.evaluate(a_words[w], is_unary(op) ? Bits{} : b_words[w]));
      }
      check_against_reference(op, n, a_words, b_words, outputs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Channels, ExhaustiveTruthTable,
                         ::testing::Values(1u, 4u, 8u),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// The in-gate self-check must agree with the exhaustive sweep above.
TEST(ExhaustiveTruthTableSelfCheck, VerifyPassesForEveryOp) {
  const auto wg = paper_waveguide();
  const FvmswDispersion model(wg);
  const InlineGateDesigner designer(model);
  const WaveEngine engine(model, wg.material.alpha);
  for (const auto op : kAllOps) {
    const ParallelLogicGate gate(op, channel_frequencies(4), designer, engine);
    EXPECT_NO_THROW(gate.verify()) << boolean_op_name(op);
  }
}

}  // namespace
