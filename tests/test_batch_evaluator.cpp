// Batch-vs-scalar equivalence: every word pushed through BatchEvaluator must
// decode bit-for-bit like a per-word loop over the single-shot path, and the
// full ChannelResult payload (phase, amplitude, margin) must be identical
// because the batch plan reproduces the scalar arithmetic exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "core/encoding.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "core/logic_ops.h"
#include "dispersion/fvmsw.h"
#include "mag/material.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw::core;
using sw::disp::FvmswDispersion;
using sw::disp::Waveguide;
using sw::wavesim::BatchEvaluator;
using sw::wavesim::BatchOptions;
using sw::wavesim::WaveEngine;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

std::vector<double> channel_frequencies(std::size_t n) {
  std::vector<double> f;
  for (std::size_t i = 1; i <= n; ++i) f.push_back(1e10 * static_cast<double>(i));
  return f;
}

struct GateFixture {
  Waveguide wg = paper_waveguide();
  FvmswDispersion model{wg};
  InlineGateDesigner designer{model};
  WaveEngine engine{model, wg.material.alpha};

  DataParallelGate majority_gate(std::size_t m, std::size_t n) const {
    GateSpec spec;
    spec.num_inputs = m;
    spec.frequencies = channel_frequencies(n);
    return DataParallelGate(designer.design(spec), engine);
  }
};

std::vector<std::vector<Bits>> random_batch(std::size_t words, std::size_t n,
                                            std::size_t m, unsigned seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution coin(0.5);
  std::vector<std::vector<Bits>> batch(words);
  for (auto& word : batch) {
    word.resize(n);
    for (auto& bits : word) {
      bits.resize(m);
      for (auto& b : bits) b = coin(rng) ? 1 : 0;
    }
  }
  return batch;
}

void expect_identical(const std::vector<ChannelResult>& got,
                      const std::vector<ChannelResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t ch = 0; ch < got.size(); ++ch) {
    EXPECT_EQ(got[ch].channel, want[ch].channel);
    EXPECT_EQ(got[ch].logic, want[ch].logic);
    // Bit-for-bit: the batch plan performs the same floating-point
    // operations in the same order as the scalar path.
    EXPECT_EQ(got[ch].phase, want[ch].phase);
    EXPECT_EQ(got[ch].amplitude, want[ch].amplitude);
    EXPECT_EQ(got[ch].margin, want[ch].margin);
  }
}

TEST(BatchEvaluator, RandomWordsMatchScalarBitForBit) {
  const GateFixture fix;
  const auto gate = fix.majority_gate(3, 8);
  const auto batch = random_batch(256, 8, 3, /*seed=*/42);

  const BatchEvaluator evaluator(gate);
  const auto got = evaluator.evaluate(batch);
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t w = 0; w < batch.size(); ++w) {
    expect_identical(got[w], gate.evaluate(batch[w]));
  }
}

TEST(BatchEvaluator, UniformSweepMatchesScalar) {
  const GateFixture fix;
  const auto gate = fix.majority_gate(3, 4);
  const auto patterns = all_patterns(3);

  const BatchEvaluator evaluator(gate);
  const auto got = evaluator.evaluate_uniform(patterns);
  ASSERT_EQ(got.size(), patterns.size());
  for (std::size_t w = 0; w < patterns.size(); ++w) {
    expect_identical(got[w], gate.evaluate_uniform(patterns[w]));
  }
}

TEST(BatchEvaluator, MajorityTruthTableDecodesCorrectly) {
  const GateFixture fix;
  const auto gate = fix.majority_gate(5, 2);
  const auto patterns = all_patterns(5);
  const BatchEvaluator evaluator(gate);
  const auto results = evaluator.evaluate_uniform(patterns);
  for (std::size_t w = 0; w < patterns.size(); ++w) {
    for (const auto& r : results[w]) {
      EXPECT_EQ(r.logic, gate.expected_majority(r.channel, patterns[w]));
      EXPECT_GT(r.margin, 0.0);
    }
  }
}

TEST(BatchEvaluator, ThreadCountDoesNotChangeResults) {
  const GateFixture fix;
  const auto gate = fix.majority_gate(3, 4);
  const auto batch = random_batch(64, 4, 3, /*seed=*/7);

  const auto reference = BatchEvaluator(gate, {.num_threads = 1}).evaluate(batch);
  for (const std::size_t threads : {2ul, 3ul, 8ul}) {
    const auto got =
        BatchEvaluator(gate, {.num_threads = threads}).evaluate(batch);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t w = 0; w < got.size(); ++w) {
      expect_identical(got[w], reference[w]);
    }
  }
}

// The one-shot gate hooks are deprecated in favour of holding a
// BatchEvaluator (or submitting serve::EvalRequests), but the shims must
// stay bit-exact until removal — these three tests are that contract.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(BatchEvaluator, GateHookMatchesScalar) {
  const GateFixture fix;
  const auto gate = fix.majority_gate(3, 4);
  const auto batch = random_batch(32, 4, 3, /*seed=*/11);
  const auto got = gate.evaluate_batch(batch);
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t w = 0; w < batch.size(); ++w) {
    expect_identical(got[w], gate.evaluate(batch[w]));
  }
}

TEST(BatchEvaluator, UniformGateHookMatchesScalar) {
  const GateFixture fix;
  const auto gate = fix.majority_gate(3, 2);
  const auto patterns = all_patterns(3);
  const auto got = gate.evaluate_batch_uniform(patterns);
  ASSERT_EQ(got.size(), patterns.size());
  for (std::size_t w = 0; w < patterns.size(); ++w) {
    expect_identical(got[w], gate.evaluate_uniform(patterns[w]));
  }
}

TEST(BatchEvaluator, ParallelLogicGateBatchMatchesScalar) {
  const GateFixture fix;
  for (const auto op : {BooleanOp::kAnd, BooleanOp::kNor, BooleanOp::kNot}) {
    const ParallelLogicGate gate(op, channel_frequencies(4), fix.designer,
                                 fix.engine);
    std::mt19937 rng(13);
    std::bernoulli_distribution coin(0.5);
    std::vector<Bits> a_words(40), b_words(40);
    for (std::size_t w = 0; w < a_words.size(); ++w) {
      a_words[w].resize(4);
      b_words[w].resize(4);
      for (std::size_t ch = 0; ch < 4; ++ch) {
        a_words[w][ch] = coin(rng) ? 1 : 0;
        b_words[w][ch] = coin(rng) ? 1 : 0;
      }
    }
    const auto got = gate.evaluate_batch(a_words, b_words);
    ASSERT_EQ(got.size(), a_words.size());
    for (std::size_t w = 0; w < a_words.size(); ++w) {
      EXPECT_EQ(got[w], gate.evaluate(a_words[w], b_words[w]))
          << "op " << boolean_op_name(op) << " word " << w;
    }
  }
}

#pragma GCC diagnostic pop

TEST(BatchEvaluator, PackBatchFeedsAHeldEvaluatorBitExactly) {
  const GateFixture fix;
  const ParallelLogicGate gate(BooleanOp::kNand, channel_frequencies(4),
                               fix.designer, fix.engine);
  std::mt19937 rng(29);
  std::bernoulli_distribution coin(0.5);
  std::vector<Bits> a_words(48), b_words(48);
  for (std::size_t w = 0; w < a_words.size(); ++w) {
    a_words[w].resize(4);
    b_words[w].resize(4);
    for (std::size_t ch = 0; ch < 4; ++ch) {
      a_words[w][ch] = coin(rng) ? 1 : 0;
      b_words[w][ch] = coin(rng) ? 1 : 0;
    }
  }
  // The replacement idiom for the deprecated evaluate_batch: pack once per
  // batch, evaluate on a long-lived plan.
  const BatchEvaluator evaluator(gate.gate(), {.num_threads = 1});
  const auto packed = gate.pack_batch(a_words, b_words);
  const auto decoded = evaluator.evaluate_bits(a_words.size(), packed);
  const std::size_t n = 4;
  for (std::size_t w = 0; w < a_words.size(); ++w) {
    const auto want = gate.evaluate(a_words[w], b_words[w]);
    for (std::size_t ch = 0; ch < n; ++ch) {
      ASSERT_EQ(decoded[w * n + ch], want[ch]) << "word " << w;
    }
  }
}

TEST(BatchEvaluator, GenericAccessorMatchesVectorPath) {
  const GateFixture fix;
  const auto gate = fix.majority_gate(3, 4);
  const auto batch = random_batch(64, 4, 3, /*seed=*/17);
  const BatchEvaluator evaluator(gate);
  const auto got = evaluator.evaluate_with(
      batch.size(), [&](std::size_t w, std::size_t ch, std::size_t in) {
        return batch[w][ch][in];
      });
  const auto want = evaluator.evaluate(batch);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t w = 0; w < got.size(); ++w) {
    expect_identical(got[w], want[w]);
  }
  EXPECT_THROW(evaluator.evaluate_with(1, BatchEvaluator::BitAccessor{}),
               sw::util::Error);
}

TEST(BatchEvaluator, ReusedEvaluatorOverLogicGateFabric) {
  // The plan-reuse route for derived gates: build one evaluator over the
  // exposed inner majority fabric and feed packed operand words directly.
  const GateFixture fix;
  const ParallelLogicGate logic(BooleanOp::kOr, channel_frequencies(4),
                                fix.designer, fix.engine);
  const BatchEvaluator evaluator(logic.gate());
  const std::size_t stride = evaluator.slot_count();
  ASSERT_EQ(stride, 12u);  // 4 channels x (a, b, pin)

  std::mt19937 rng(29);
  std::bernoulli_distribution coin(0.5);
  std::vector<Bits> a_words(20), b_words(20);
  std::vector<std::uint8_t> packed(a_words.size() * stride);
  for (std::size_t w = 0; w < a_words.size(); ++w) {
    a_words[w].resize(4);
    b_words[w].resize(4);
    for (std::size_t ch = 0; ch < 4; ++ch) {
      a_words[w][ch] = coin(rng) ? 1 : 0;
      b_words[w][ch] = coin(rng) ? 1 : 0;
      packed[w * stride + ch * 3] = a_words[w][ch];
      packed[w * stride + ch * 3 + 1] = b_words[w][ch];
      packed[w * stride + ch * 3 + 2] = 1;  // OR pins the third input to 1
    }
  }
  const auto bits = evaluator.evaluate_bits(a_words.size(), packed);
  for (std::size_t w = 0; w < a_words.size(); ++w) {
    const auto want = logic.evaluate(a_words[w], b_words[w]);
    for (std::size_t ch = 0; ch < 4; ++ch) {
      EXPECT_EQ(bits[w * 4 + ch], want[ch]) << "word " << w;
    }
  }
}

TEST(BatchEvaluator, PackedBitsMatchChannelResults) {
  const GateFixture fix;
  const auto gate = fix.majority_gate(3, 4);
  const auto batch = random_batch(128, 4, 3, /*seed=*/23);
  const BatchEvaluator evaluator(gate);
  ASSERT_EQ(evaluator.slot_count(), 12u);

  std::vector<std::uint8_t> packed(batch.size() * evaluator.slot_count());
  for (std::size_t w = 0; w < batch.size(); ++w) {
    for (std::size_t ch = 0; ch < 4; ++ch) {
      for (std::size_t in = 0; in < 3; ++in) {
        packed[w * 12 + ch * 3 + in] = batch[w][ch][in];
      }
    }
  }
  const auto bits = evaluator.evaluate_bits(batch.size(), packed);
  const auto full = evaluator.evaluate(batch);
  ASSERT_EQ(bits.size(), batch.size() * 4);
  for (std::size_t w = 0; w < batch.size(); ++w) {
    for (const auto& r : full[w]) {
      EXPECT_EQ(bits[w * 4 + r.channel], r.logic) << "word " << w;
    }
  }
}

TEST(BatchEvaluator, PackedBitsRejectsWrongShape) {
  const GateFixture fix;
  const auto gate = fix.majority_gate(3, 2);
  const BatchEvaluator evaluator(gate);
  const std::vector<std::uint8_t> packed(evaluator.slot_count() + 1);
  EXPECT_THROW(evaluator.evaluate_bits(1, packed), sw::util::Error);
}

TEST(BatchEvaluator, EmptyBatchIsEmpty) {
  const GateFixture fix;
  const auto gate = fix.majority_gate(3, 2);
  const BatchEvaluator evaluator(gate);
  EXPECT_TRUE(evaluator.evaluate({}).empty());
  EXPECT_TRUE(evaluator.evaluate_uniform({}).empty());
}

TEST(BatchEvaluator, RejectsMalformedWords) {
  const GateFixture fix;
  const auto gate = fix.majority_gate(3, 2);
  const BatchEvaluator evaluator(gate);

  // Wrong channel count.
  std::vector<std::vector<Bits>> bad_channels{{Bits{1, 0, 1}}};
  EXPECT_THROW(evaluator.evaluate(bad_channels), sw::util::Error);

  // Wrong bit count on a channel.
  std::vector<std::vector<Bits>> bad_bits{{Bits{1, 0, 1}, Bits{1, 0}}};
  EXPECT_THROW(evaluator.evaluate(bad_bits), sw::util::Error);

  const std::vector<Bits> bad_pattern{Bits{1, 0}};
  EXPECT_THROW(evaluator.evaluate_uniform(bad_pattern), sw::util::Error);
}

// --------------------------------------------------------------------------
// clamp_batch_threads edge cases: the one-shot hooks rely on it never
// requesting more workers than words (or zero workers).

TEST(ClampBatchThreads, ZeroWordsStillYieldsOneWorker) {
  EXPECT_EQ(sw::wavesim::clamp_batch_threads(4, 0), 1u);
  EXPECT_EQ(sw::wavesim::clamp_batch_threads(0, 0), 1u);
}

TEST(ClampBatchThreads, SingleWordRunsSingleThreaded) {
  EXPECT_EQ(sw::wavesim::clamp_batch_threads(8, 1), 1u);
  EXPECT_EQ(sw::wavesim::clamp_batch_threads(0, 1), 1u);
}

TEST(ClampBatchThreads, FewerWordsThanThreadsClampsToWords) {
  EXPECT_EQ(sw::wavesim::clamp_batch_threads(8, 3), 3u);
  EXPECT_EQ(sw::wavesim::clamp_batch_threads(8, 7), 7u);
  EXPECT_EQ(sw::wavesim::clamp_batch_threads(8, 8), 8u);
}

TEST(ClampBatchThreads, ManyWordsKeepRequestedThreads) {
  EXPECT_EQ(sw::wavesim::clamp_batch_threads(1, 1000), 1u);
  EXPECT_EQ(sw::wavesim::clamp_batch_threads(6, 1000), 6u);
}

TEST(ClampBatchThreads, ZeroThreadsResolvesToHardwareConcurrency) {
  const auto hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  EXPECT_EQ(sw::wavesim::clamp_batch_threads(0, 1000000), hw);
  EXPECT_GE(sw::wavesim::clamp_batch_threads(0, 2), 1u);
}

// --------------------------------------------------------------------------
// ThreadPool unit behaviour backing the evaluator's fan-out.

TEST(ThreadPool, CoversFullRangeOnce) {
  sw::util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  sw::util::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(5, [&](std::size_t, std::size_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, HandlesFewerItemsThanThreads) {
  sw::util::ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  sw::util::ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PostRunsAsynchronouslyOnAWorker) {
  sw::util::ThreadPool pool(2);
  std::promise<std::thread::id> ran;
  pool.post([&] { ran.set_value(std::this_thread::get_id()); });
  EXPECT_NE(ran.get_future().get(), std::this_thread::get_id());
}

TEST(ThreadPool, PostOnInlinePoolRunsOnCaller) {
  sw::util::ThreadPool pool(1);
  std::thread::id seen;
  pool.post([&] { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, std::this_thread::get_id());
}

TEST(ThreadPool, AlwaysSpawnMakesSingleThreadPostAsynchronous) {
  sw::util::ThreadPool pool(1, /*always_spawn=*/true);
  EXPECT_EQ(pool.size(), 1u);
  std::promise<std::thread::id> ran;
  pool.post([&] { ran.set_value(std::this_thread::get_id()); });
  EXPECT_NE(ran.get_future().get(), std::this_thread::get_id());
}

TEST(ThreadPool, DestructorDrainsPostedJobs) {
  std::atomic<int> done{0};
  {
    sw::util::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.post([&] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, PostAndParallelForInterleave) {
  sw::util::ThreadPool pool(3);
  std::atomic<int> posted{0};
  std::atomic<int> swept{0};
  for (int i = 0; i < 50; ++i) {
    pool.post([&] { posted.fetch_add(1); });
  }
  pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    swept.fetch_add(static_cast<int>(end - begin));
  });
  while (posted.load() != 50) std::this_thread::yield();
  EXPECT_EQ(swept.load(), 1000);
}

TEST(ThreadPool, PropagatesWorkerException) {
  sw::util::ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t) {
                          if (begin == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool stays usable after an exception.
  std::atomic<int> total{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 10);
}

}  // namespace
