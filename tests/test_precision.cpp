// The margin-aware f32 fallback, end to end: a layout whose decode margin
// is artificially thin must be refused single precision at plan build time
// and transparently served from the double plan — by EvalPlan, by
// BatchEvaluator, by PlanCache (whose keys carry the precision bit and
// whose stats count the fallbacks) and by EvaluatorService (whose
// ServiceStats report the configured precision and the per-layout
// verdicts). A paper-margin layout on the same fixtures must keep f32.
//
// The margin proof is per DETECTOR: when only some channels are thin the
// plan partitions into a block-f32 plan (proved detectors accumulate f32,
// rejected ones ride f64 rescue lanes) that must decode bit-identical to
// the all-f64 plan on every kernel, and the detector mix must surface in
// PlanCacheStats / ServiceStats.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/encoding.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "core/logic_ops.h"
#include "dispersion/fvmsw.h"
#include "mag/material.h"
#include "serve/plan_cache.h"
#include "serve/service.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/eval_plan.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/precision.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw::core;
using sw::disp::FvmswDispersion;
using sw::disp::Waveguide;
using sw::wavesim::BatchEvaluator;
using sw::wavesim::EvalPlan;
using sw::wavesim::Precision;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

struct PrecisionFixture {
  Waveguide wg = paper_waveguide();
  FvmswDispersion model{wg};
  InlineGateDesigner designer{model};
  sw::wavesim::WaveEngine engine{model, wg.material.alpha};

  GateLayout majority_layout(std::size_t m, std::size_t n) const {
    GateSpec spec;
    spec.num_inputs = m;
    spec.frequencies.clear();
    for (std::size_t i = 1; i <= n; ++i) {
      spec.frequencies.push_back(1e10 * static_cast<double>(i));
    }
    return designer.design(spec);
  }

  /// Rescales one channel of a 3-input layout so a bit assignment sums to
  /// (nearly) zero at that channel's detector: with phase-pi contributions
  /// being exact negations, scaling the third source's amplitude by
  /// (re0[0] + re0[1]) / re0[2] makes the (0, 0, 1) assignment cancel.
  /// The double plan still decodes deterministically (bit-exact vs the
  /// scalar gate path either way); f32 must refuse exactly that detector
  /// while every other channel keeps its paper margin.
  GateLayout thin_channel(GateLayout layout, std::size_t channel) const {
    const DataParallelGate gate(layout, engine);
    const EvalPlan probe(gate, sw::wavesim::kDefaultFreqTol,
                         Precision::kFloat64);
    const auto offsets = probe.detector_offsets();
    for (std::size_t d = 0; d < probe.num_detectors(); ++d) {
      if (probe.detector_channels()[d] != channel) continue;
      // Three contributions per detector on the majority fabric; map the
      // third back to its source via the plan's input index rather than
      // assuming the source vector's order. Throw (clean test failure)
      // rather than index past the spans if a designer change ever alters
      // the shape.
      if (offsets[d + 1] - offsets[d] != 3) {
        throw sw::util::Error("thin-channel fixture expects 3 contributions");
      }
      const std::size_t i = offsets[d];
      const double t =
          (probe.re0()[i] + probe.re0()[i + 1]) / probe.re0()[i + 2];
      EXPECT_GT(t, 0.0);  // phase-0 contributions are co-phased by design
      const std::uint32_t input = probe.inputs()[i + 2];
      for (auto& s : layout.sources) {
        if (s.channel == channel && s.input == input) s.amplitude *= t;
      }
      return layout;
    }
    throw sw::util::Error("no detector found for the thinned channel");
  }

  /// The single-channel special case the all-or-nothing fallback tests use.
  GateLayout thin_margin_layout() const {
    return thin_channel(majority_layout(3, 1), 0);
  }
};

std::vector<std::uint8_t> random_matrix(std::size_t words, std::size_t slots,
                                        unsigned seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution coin(0.5);
  std::vector<std::uint8_t> m(words * slots);
  for (auto& b : m) b = coin(rng) ? 1 : 0;
  return m;
}

// ---------------------------------------------------------------- plans --

TEST(MarginFallback, ThinMarginLayoutFallsBackToDouble) {
  const PrecisionFixture fix;
  const GateLayout thin = fix.thin_margin_layout();
  const DataParallelGate gate(thin, fix.engine);

  const EvalPlan plan(gate, sw::wavesim::kDefaultFreqTol,
                      Precision::kFloat32);
  EXPECT_EQ(plan.requested_precision(), Precision::kFloat32);
  EXPECT_EQ(plan.effective_precision(), Precision::kFloat64);
  EXPECT_FALSE(plan.has_f32());
  EXPECT_TRUE(plan.re0_f32().empty());
  EXPECT_FALSE(plan.f32_rejection().empty());
}

TEST(MarginFallback, FallbackEvaluatorDecodesLikeTheDoublePath) {
  const PrecisionFixture fix;
  const GateLayout thin = fix.thin_margin_layout();
  const DataParallelGate gate(thin, fix.engine);

  const BatchEvaluator f32(gate, {.num_threads = 1,
                                  .precision = Precision::kFloat32});
  EXPECT_EQ(f32.effective_precision(), Precision::kFloat64);
  const BatchEvaluator f64(gate, {.num_threads = 1,
                                  .precision = Precision::kFloat64});

  // Every word of the 2^3 sweep, packed; the fallback must make these
  // bitwise equal even on the near-cancelling assignment.
  const auto patterns = all_patterns(3);
  std::vector<std::uint8_t> packed(patterns.size() * f32.slot_count());
  for (std::size_t w = 0; w < patterns.size(); ++w) {
    for (std::size_t in = 0; in < 3; ++in) {
      packed[w * f32.slot_count() + in] = patterns[w][in];
    }
  }
  EXPECT_EQ(f32.evaluate_bits(patterns.size(), packed),
            f64.evaluate_bits(patterns.size(), packed));
  // And both agree with the scalar gate path bit-for-bit.
  for (std::size_t w = 0; w < patterns.size(); ++w) {
    const auto want = gate.evaluate_uniform(patterns[w]);
    const auto got = f32.evaluate_bits(patterns.size(), packed);
    EXPECT_EQ(got[w], want[0].logic) << "word " << w;
  }
}

TEST(MarginFallback, WideMarginLayoutKeepsFloat32) {
  const PrecisionFixture fix;
  const DataParallelGate gate(fix.majority_layout(3, 2), fix.engine);
  const EvalPlan plan(gate, sw::wavesim::kDefaultFreqTol,
                      Precision::kFloat32);
  EXPECT_TRUE(plan.has_f32()) << plan.f32_rejection();
  EXPECT_EQ(plan.effective_precision(), Precision::kFloat32);
}

// ---------------------------------------------------------------- block --

using sw::wavesim::kernels::Kernel;

/// Every kernel available on this build/host, scalar first.
std::vector<const Kernel*> all_kernels() {
  std::vector<const Kernel*> kernels{&sw::wavesim::kernels::scalar_kernel()};
  if (const Kernel* k = sw::wavesim::kernels::avx2_kernel()) {
    kernels.push_back(k);
  }
  if (const Kernel* k = sw::wavesim::kernels::avx512_kernel()) {
    kernels.push_back(k);
  }
  return kernels;
}

/// The exhaustive operand sweep of a logic op packed into the evaluate_bits
/// matrix: binary ops sweep all 2^n x 2^n (a, b) word pairs with the
/// constant input pinned per op (2^16 words at n = 8); unary ops sweep the
/// 2^n a-words.
std::vector<std::uint8_t> exhaustive_op_matrix(BooleanOp op, std::size_t n,
                                               std::size_t num_inputs,
                                               std::size_t* num_words) {
  const bool binary =
      op != BooleanOp::kBuffer && op != BooleanOp::kNot;
  const std::uint8_t pin =
      (op == BooleanOp::kOr || op == BooleanOp::kNor) ? 1 : 0;
  const std::size_t stride = n * num_inputs;
  const std::size_t a_values = std::size_t{1} << n;
  const std::size_t b_values = binary ? a_values : 1;
  *num_words = a_values * b_values;
  std::vector<std::uint8_t> bits(*num_words * stride);
  std::size_t w = 0;
  for (std::size_t av = 0; av < a_values; ++av) {
    for (std::size_t bv = 0; bv < b_values; ++bv, ++w) {
      for (std::size_t ch = 0; ch < n; ++ch) {
        std::uint8_t* slot = bits.data() + w * stride + ch * num_inputs;
        slot[0] = static_cast<std::uint8_t>((av >> ch) & 1u);
        if (binary) {
          slot[1] = static_cast<std::uint8_t>((bv >> ch) & 1u);
          slot[2] = pin;
        }
      }
    }
  }
  return bits;
}

TEST(BlockPrecision, OneThinDetectorYieldsBlockPlan) {
  const PrecisionFixture fix;
  // Thin a middle channel of an 8-channel majority fabric: exactly one
  // detector must lose its f32 grant, and the plan must partition rather
  // than abandon single precision wholesale.
  const GateLayout layout = fix.thin_channel(fix.majority_layout(3, 8), 3);
  const DataParallelGate gate(layout, fix.engine);
  const EvalPlan plan(gate, sw::wavesim::kDefaultFreqTol,
                      Precision::kFloat32);
  const std::size_t nd = plan.num_detectors();
  ASSERT_EQ(nd, 8u);

  EXPECT_TRUE(plan.is_block());
  EXPECT_EQ(plan.num_f32_detectors(), 7u);
  EXPECT_EQ(plan.num_f64_rescue_detectors(), 1u);
  // A block plan is not "all f32": the coarse precision channel keeps its
  // all-or-nothing meaning and the rejection note names the rescue.
  EXPECT_FALSE(plan.has_f32());
  EXPECT_EQ(plan.effective_precision(), Precision::kFloat64);
  EXPECT_NE(plan.f32_rejection().find("rescue"), std::string::npos)
      << plan.f32_rejection();
  EXPECT_EQ(plan.precision_label(), "block-f32(7/8)");

  // The rescued detector is parked at the end of plan order, and it is the
  // thinned channel.
  EXPECT_EQ(plan.detector_channels()[nd - 1], 3u);

  // f32 mirrors cover exactly the proved prefix, entry for entry.
  const std::size_t nf = plan.detector_offsets()[plan.num_f32_detectors()];
  ASSERT_EQ(plan.re0_f32().size(), nf);
  ASSERT_EQ(plan.re1_f32().size(), nf);
  for (std::size_t i = 0; i < nf; ++i) {
    EXPECT_EQ(plan.re0_f32()[i], static_cast<float>(plan.re0()[i]));
    EXPECT_EQ(plan.re1_f32()[i], static_cast<float>(plan.re1()[i]));
  }

  // detector_results() is a permutation: every original result position is
  // produced by exactly one plan-order detector.
  std::vector<unsigned> seen(nd, 0);
  for (const std::size_t r : plan.detector_results()) {
    ASSERT_LT(r, nd);
    ++seen[r];
  }
  for (const unsigned count : seen) EXPECT_EQ(count, 1u);

  // The SoA invariant survives the permutation.
  for (std::size_t i = 0; i < plan.num_contributions(); ++i) {
    EXPECT_EQ(plan.slots()[i],
              plan.channels()[i] * plan.num_inputs() + plan.inputs()[i]);
  }
}

TEST(BlockPrecision, BlockDecodesBitIdenticalToDoubleOnEveryOp) {
  // The block acceptance bar: with one channel thinned, the f32-requested
  // plan (block on n > 1 binary fabrics, full fallback at n = 1) must
  // decode bit-identical to the all-f64 plan on every kernel over the
  // exhaustive operand sweep — the full 2^16 words on binary ops at n = 8.
  const PrecisionFixture fix;
  const auto kernels = all_kernels();
  for (const std::size_t n : {1ul, 4ul, 8ul}) {
    for (const BooleanOp op :
         {BooleanOp::kAnd, BooleanOp::kOr, BooleanOp::kNand, BooleanOp::kNor,
          BooleanOp::kBuffer, BooleanOp::kNot}) {
      std::vector<double> freqs;
      for (std::size_t i = 1; i <= n; ++i) {
        freqs.push_back(1e10 * static_cast<double>(i));
      }
      const ParallelLogicGate logic(op, freqs, fix.designer, fix.engine);
      const bool binary = logic.data_inputs() == 2;
      // Unary fabrics have single-contribution detectors (nothing to
      // cancel), so only binary layouts get a thin channel; their sweep
      // still pins the block machinery against the full-f32 path.
      GateLayout layout = logic.layout();
      if (binary) layout = fix.thin_channel(std::move(layout), n / 2);
      const DataParallelGate gate(layout, fix.engine);
      const BatchEvaluator f64(
          gate, {.num_threads = 1, .precision = Precision::kFloat64});
      const BatchEvaluator f32(
          gate, {.num_threads = 1, .precision = Precision::kFloat32});
      if (binary && n > 1) {
        ASSERT_TRUE(f32.plan().is_block())
            << boolean_op_name(op) << " n=" << n << ": "
            << f32.plan().f32_rejection();
        ASSERT_EQ(f32.plan().num_f64_rescue_detectors(), 1u);
      }
      std::size_t num_words = 0;
      const auto bits = exhaustive_op_matrix(op, n, layout.spec.num_inputs,
                                             &num_words);
      const auto want = f64.evaluate_bits(num_words, bits);
      for (const Kernel* k : kernels) {
        EXPECT_EQ(f32.evaluate_bits(num_words, bits, *k), want)
            << boolean_op_name(op) << " n=" << n << " kernel " << k->name;
      }
    }
  }
}

TEST(BlockPrecision, MixedKernelOddWordCountsExerciseTheTails) {
  // The mixed entry point splits each word group into an f32 sub-pass and
  // an f64 rescue sub-pass with DIFFERENT group widths (8/16 floats vs
  // 4/8 doubles per register), so odd word counts leave different tails in
  // each sub-pass. Every SIMD kernel must agree with scalar on all of them.
  const PrecisionFixture fix;
  const GateLayout layout = fix.thin_channel(fix.majority_layout(3, 8), 5);
  const DataParallelGate gate(layout, fix.engine);
  const BatchEvaluator evaluator(
      gate, {.num_threads = 1, .precision = Precision::kFloat32});
  ASSERT_TRUE(evaluator.plan().is_block());
  const auto kernels = all_kernels();
  const std::size_t stride = evaluator.slot_count();
  for (const std::size_t words :
       {1ul, 3ul, 5ul, 7ul, 8ul, 9ul, 15ul, 16ul, 17ul, 31ul, 33ul, 65ul}) {
    const auto packed = random_matrix(words, stride, /*seed=*/71 + words);
    const auto want = evaluator.evaluate_bits(
        words, packed, sw::wavesim::kernels::scalar_kernel());
    for (const Kernel* k : kernels) {
      EXPECT_EQ(evaluator.evaluate_bits(words, packed, *k), want)
          << words << " words, kernel " << k->name;
    }
  }
}

TEST(BlockPrecision, AllDetectorsRejectedDegeneratesToTheDoublePlan) {
  // Thin EVERY channel: no detector earns f32, so the block plan must
  // degenerate to exactly the f64 plan — no mirrors, no permutation, the
  // fallback counters (not the block ones) take the build.
  const PrecisionFixture fix;
  GateLayout layout = fix.majority_layout(3, 4);
  for (std::size_t ch = 0; ch < 4; ++ch) {
    layout = fix.thin_channel(std::move(layout), ch);
  }
  const DataParallelGate gate(layout, fix.engine);
  const EvalPlan plan(gate, sw::wavesim::kDefaultFreqTol,
                      Precision::kFloat32);
  EXPECT_FALSE(plan.is_block());
  EXPECT_FALSE(plan.has_f32());
  EXPECT_EQ(plan.num_f32_detectors(), 0u);
  EXPECT_EQ(plan.num_f64_rescue_detectors(), 4u);
  EXPECT_TRUE(plan.re0_f32().empty());
  EXPECT_EQ(plan.effective_precision(), Precision::kFloat64);
  EXPECT_EQ(plan.precision_label(), "f64");
  EXPECT_NE(plan.f32_rejection().find("double plan"), std::string::npos)
      << plan.f32_rejection();

  // Plan order is untouched: detector_results() is the identity.
  const auto results = plan.detector_results();
  for (std::size_t d = 0; d < results.size(); ++d) {
    EXPECT_EQ(results[d], d);
  }

  // And it decodes exactly like a plan that never asked for f32.
  const BatchEvaluator fallback(
      gate, {.num_threads = 1, .precision = Precision::kFloat32});
  const BatchEvaluator f64(
      gate, {.num_threads = 1, .precision = Precision::kFloat64});
  const auto matrix = random_matrix(128, fallback.slot_count(), /*seed=*/17);
  for (const Kernel* k : all_kernels()) {
    EXPECT_EQ(fallback.evaluate_bits(128, matrix, *k),
              f64.evaluate_bits(128, matrix, *k))
        << "kernel " << k->name;
  }
}

// ---------------------------------------------------------------- cache --

TEST(PlanCachePrecision, KeysCarryThePrecisionBit) {
  const PrecisionFixture fix;
  sw::serve::PlanCache cache(fix.engine, 8,
                             {.num_threads = 1,
                              .precision = Precision::kFloat64});
  const GateLayout layout = fix.majority_layout(3, 2);

  const auto f64 = cache.get_or_build(layout, Precision::kFloat64);
  EXPECT_FALSE(f64.hit);
  const auto f32 = cache.get_or_build(layout, Precision::kFloat32);
  EXPECT_FALSE(f32.hit) << "f32 lookup must not alias the f64 entry";
  EXPECT_NE(f64.plan.get(), f32.plan.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(f64.plan->effective_precision(), Precision::kFloat64);
  EXPECT_EQ(f32.plan->effective_precision(), Precision::kFloat32);

  // Repeat lookups hit their own precision's entry.
  EXPECT_TRUE(cache.get_or_build(layout, Precision::kFloat64).hit);
  EXPECT_TRUE(cache.get_or_build(layout, Precision::kFloat32).hit);
  EXPECT_EQ(cache.try_get(layout, Precision::kFloat32).get(),
            f32.plan.get());
  EXPECT_EQ(cache.try_get(layout, Precision::kFloat64).get(),
            f64.plan.get());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.f32_plans, 1u);
  EXPECT_EQ(stats.f32_fallbacks, 0u);
}

TEST(PlanCachePrecision, FallbacksAreCountedPerBuild) {
  const PrecisionFixture fix;
  sw::serve::PlanCache cache(fix.engine, 8,
                             {.num_threads = 1,
                              .precision = Precision::kFloat32});
  EXPECT_EQ(cache.default_precision(), Precision::kFloat32);

  const auto wide = cache.get_or_build(fix.majority_layout(3, 2));
  const auto thin = cache.get_or_build(fix.thin_margin_layout());
  EXPECT_EQ(wide.plan->effective_precision(), Precision::kFloat32);
  EXPECT_EQ(thin.plan->effective_precision(), Precision::kFloat64);
  EXPECT_FALSE(thin.plan->plan().f32_rejection().empty());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.f32_plans, 1u);
  EXPECT_EQ(stats.f32_fallbacks, 1u);
}

TEST(PlanCachePrecision, BlockBuildsAndDetectorMixAreCounted) {
  const PrecisionFixture fix;
  sw::serve::PlanCache cache(fix.engine, 8,
                             {.num_threads = 1,
                              .precision = Precision::kFloat32});

  // Three f32-requested builds, one per verdict: all proved, a 7/8 block,
  // and an all-rejected fallback.
  const auto wide = cache.get_or_build(fix.majority_layout(3, 2));
  const auto block = cache.get_or_build(
      fix.thin_channel(fix.majority_layout(3, 8), 2));
  const auto thin = cache.get_or_build(fix.thin_margin_layout());

  EXPECT_TRUE(wide.plan->plan().has_f32());
  ASSERT_TRUE(block.plan->plan().is_block());
  EXPECT_EQ(block.plan->f32_detectors(), 7u);
  EXPECT_EQ(block.plan->f64_rescue_detectors(), 1u);
  EXPECT_EQ(block.plan->precision_label(), "block-f32(7/8)");
  EXPECT_FALSE(thin.plan->plan().has_f32());

  const auto stats = cache.stats();
  // Each f32-requested build lands in exactly one of the three counters.
  EXPECT_EQ(stats.f32_plans, 1u);
  EXPECT_EQ(stats.block_plans, 1u);
  EXPECT_EQ(stats.f32_fallbacks, 1u);
  // The detector mix sums across every f32-requested build: 2 + 7 proved,
  // 1 + 1 rescued.
  EXPECT_EQ(stats.f32_detectors, 9u);
  EXPECT_EQ(stats.f64_rescue_detectors, 2u);
}

// -------------------------------------------------------------- service --

TEST(ServicePrecision, TransparentFallbackSurfacesInStats) {
  const PrecisionFixture fix;
  sw::serve::ServiceOptions options;
  options.evaluator_options.precision = Precision::kFloat32;
  sw::serve::EvaluatorService svc(fix.model, fix.wg.material.alpha, options);

  // Wide-margin layout: served at f32, decodes bit-identical to the
  // double reference.
  const GateLayout wide = fix.majority_layout(3, 2);
  const DataParallelGate wide_gate(wide, fix.engine);
  const BatchEvaluator reference(wide_gate,
                                 {.num_threads = 1,
                                  .precision = Precision::kFloat64});
  const auto matrix = random_matrix(64, reference.slot_count(), /*seed=*/9);
  EXPECT_EQ(svc.submit(sw::serve::EvalRequest::for_layout(wide, matrix, 64)).get().bits,
            reference.evaluate_bits(64, matrix));

  // Thin-margin layout: the service transparently serves the double plan.
  const GateLayout thin = fix.thin_margin_layout();
  const DataParallelGate thin_gate(thin, fix.engine);
  const auto patterns = all_patterns(3);
  std::vector<std::uint8_t> packed(patterns.size() * 3);
  for (std::size_t w = 0; w < patterns.size(); ++w) {
    for (std::size_t in = 0; in < 3; ++in) {
      packed[w * 3 + in] = patterns[w][in];
    }
  }
  const auto thin_bits =
      svc.submit(sw::serve::EvalRequest::for_layout(thin, packed, patterns.size())).get().bits;
  for (std::size_t w = 0; w < patterns.size(); ++w) {
    EXPECT_EQ(thin_bits[w], thin_gate.evaluate_uniform(patterns[w])[0].logic)
        << "word " << w;
  }

  const auto stats = svc.stats();
  EXPECT_EQ(stats.precision, "f32");
  EXPECT_EQ(stats.cache.f32_plans, 1u);
  EXPECT_EQ(stats.cache.f32_fallbacks, 1u);
}

TEST(ServicePrecision, BlockPlanMixSurfacesInStats) {
  const PrecisionFixture fix;
  sw::serve::ServiceOptions options;
  options.evaluator_options.precision = Precision::kFloat32;
  options.evaluator_options.num_threads = 1;
  sw::serve::EvaluatorService svc(fix.model, fix.wg.material.alpha, options);

  // A block layout served end to end decodes exactly like the all-f64
  // reference...
  const GateLayout layout =
      fix.thin_channel(fix.majority_layout(3, 8), 6);
  const DataParallelGate gate(layout, fix.engine);
  const BatchEvaluator reference(
      gate, {.num_threads = 1, .precision = Precision::kFloat64});
  const auto matrix = random_matrix(96, reference.slot_count(), /*seed=*/23);
  EXPECT_EQ(svc.submit(sw::serve::EvalRequest::for_layout(layout, matrix, 96)).get().bits,
            reference.evaluate_bits(96, matrix));

  // ...and the per-detector mix is visible in the service stats.
  const auto stats = svc.stats();
  EXPECT_EQ(stats.precision, "f32");
  EXPECT_EQ(stats.cache.block_plans, 1u);
  EXPECT_EQ(stats.cache.f32_detectors, 7u);
  EXPECT_EQ(stats.cache.f64_rescue_detectors, 1u);
}

TEST(ServicePrecision, DefaultPrecisionFollowsTheProcessChoice) {
  const PrecisionFixture fix;
  sw::serve::EvaluatorService svc(fix.model, fix.wg.material.alpha);
  EXPECT_EQ(svc.stats().precision,
            std::string(sw::wavesim::precision_name(
                sw::wavesim::active_precision())));
}

}  // namespace
