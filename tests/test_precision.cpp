// The margin-aware f32 fallback, end to end: a layout whose decode margin
// is artificially thin must be refused single precision at plan build time
// and transparently served from the double plan — by EvalPlan, by
// BatchEvaluator, by PlanCache (whose keys carry the precision bit and
// whose stats count the fallbacks) and by EvaluatorService (whose
// ServiceStats report the configured precision and the per-layout
// verdicts). A paper-margin layout on the same fixtures must keep f32.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/encoding.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "mag/material.h"
#include "serve/plan_cache.h"
#include "serve/service.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/eval_plan.h"
#include "wavesim/precision.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw::core;
using sw::disp::FvmswDispersion;
using sw::disp::Waveguide;
using sw::wavesim::BatchEvaluator;
using sw::wavesim::EvalPlan;
using sw::wavesim::Precision;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

struct PrecisionFixture {
  Waveguide wg = paper_waveguide();
  FvmswDispersion model{wg};
  InlineGateDesigner designer{model};
  sw::wavesim::WaveEngine engine{model, wg.material.alpha};

  GateLayout majority_layout(std::size_t m, std::size_t n) const {
    GateSpec spec;
    spec.num_inputs = m;
    spec.frequencies.clear();
    for (std::size_t i = 1; i <= n; ++i) {
      spec.frequencies.push_back(1e10 * static_cast<double>(i));
    }
    return designer.design(spec);
  }

  /// A single-channel 3-input layout rescaled so one bit assignment sums
  /// to (nearly) zero at the detector: with phase-pi contributions being
  /// exact negations, scaling the third source's amplitude by
  /// (re0[0] + re0[1]) / re0[2] makes the (0, 0, 1) assignment cancel.
  /// The double plan still decodes deterministically (bit-exact vs the
  /// scalar gate path either way); f32 must refuse the layout.
  GateLayout thin_margin_layout() const {
    GateLayout layout = majority_layout(3, 1);
    const DataParallelGate gate(layout, engine);
    const EvalPlan probe(gate, sw::wavesim::kDefaultFreqTol,
                         Precision::kFloat64);
    // One detector, three contributions; map the third contribution back
    // to its source via the plan's input index rather than assuming the
    // source vector's order. Throw (clean test failure) rather than index
    // past the spans if a designer change ever alters the shape.
    if (probe.num_contributions() != 3) {
      throw sw::util::Error("thin-margin fixture expects 3 contributions");
    }
    const double t =
        (probe.re0()[0] + probe.re0()[1]) / probe.re0()[2];
    EXPECT_GT(t, 0.0);  // phase-0 contributions are co-phased by design
    const std::uint32_t input = probe.inputs()[2];
    for (auto& s : layout.sources) {
      if (s.channel == 0 && s.input == input) s.amplitude *= t;
    }
    return layout;
  }
};

std::vector<std::uint8_t> random_matrix(std::size_t words, std::size_t slots,
                                        unsigned seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution coin(0.5);
  std::vector<std::uint8_t> m(words * slots);
  for (auto& b : m) b = coin(rng) ? 1 : 0;
  return m;
}

// ---------------------------------------------------------------- plans --

TEST(MarginFallback, ThinMarginLayoutFallsBackToDouble) {
  const PrecisionFixture fix;
  const GateLayout thin = fix.thin_margin_layout();
  const DataParallelGate gate(thin, fix.engine);

  const EvalPlan plan(gate, sw::wavesim::kDefaultFreqTol,
                      Precision::kFloat32);
  EXPECT_EQ(plan.requested_precision(), Precision::kFloat32);
  EXPECT_EQ(plan.effective_precision(), Precision::kFloat64);
  EXPECT_FALSE(plan.has_f32());
  EXPECT_TRUE(plan.re0_f32().empty());
  EXPECT_FALSE(plan.f32_rejection().empty());
}

TEST(MarginFallback, FallbackEvaluatorDecodesLikeTheDoublePath) {
  const PrecisionFixture fix;
  const GateLayout thin = fix.thin_margin_layout();
  const DataParallelGate gate(thin, fix.engine);

  const BatchEvaluator f32(gate, {.num_threads = 1,
                                  .precision = Precision::kFloat32});
  EXPECT_EQ(f32.effective_precision(), Precision::kFloat64);
  const BatchEvaluator f64(gate, {.num_threads = 1,
                                  .precision = Precision::kFloat64});

  // Every word of the 2^3 sweep, packed; the fallback must make these
  // bitwise equal even on the near-cancelling assignment.
  const auto patterns = all_patterns(3);
  std::vector<std::uint8_t> packed(patterns.size() * f32.slot_count());
  for (std::size_t w = 0; w < patterns.size(); ++w) {
    for (std::size_t in = 0; in < 3; ++in) {
      packed[w * f32.slot_count() + in] = patterns[w][in];
    }
  }
  EXPECT_EQ(f32.evaluate_bits(patterns.size(), packed),
            f64.evaluate_bits(patterns.size(), packed));
  // And both agree with the scalar gate path bit-for-bit.
  for (std::size_t w = 0; w < patterns.size(); ++w) {
    const auto want = gate.evaluate_uniform(patterns[w]);
    const auto got = f32.evaluate_bits(patterns.size(), packed);
    EXPECT_EQ(got[w], want[0].logic) << "word " << w;
  }
}

TEST(MarginFallback, WideMarginLayoutKeepsFloat32) {
  const PrecisionFixture fix;
  const DataParallelGate gate(fix.majority_layout(3, 2), fix.engine);
  const EvalPlan plan(gate, sw::wavesim::kDefaultFreqTol,
                      Precision::kFloat32);
  EXPECT_TRUE(plan.has_f32()) << plan.f32_rejection();
  EXPECT_EQ(plan.effective_precision(), Precision::kFloat32);
}

// ---------------------------------------------------------------- cache --

TEST(PlanCachePrecision, KeysCarryThePrecisionBit) {
  const PrecisionFixture fix;
  sw::serve::PlanCache cache(fix.engine, 8,
                             {.num_threads = 1,
                              .precision = Precision::kFloat64});
  const GateLayout layout = fix.majority_layout(3, 2);

  const auto f64 = cache.get_or_build(layout, Precision::kFloat64);
  EXPECT_FALSE(f64.hit);
  const auto f32 = cache.get_or_build(layout, Precision::kFloat32);
  EXPECT_FALSE(f32.hit) << "f32 lookup must not alias the f64 entry";
  EXPECT_NE(f64.plan.get(), f32.plan.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(f64.plan->effective_precision(), Precision::kFloat64);
  EXPECT_EQ(f32.plan->effective_precision(), Precision::kFloat32);

  // Repeat lookups hit their own precision's entry.
  EXPECT_TRUE(cache.get_or_build(layout, Precision::kFloat64).hit);
  EXPECT_TRUE(cache.get_or_build(layout, Precision::kFloat32).hit);
  EXPECT_EQ(cache.try_get(layout, Precision::kFloat32).get(),
            f32.plan.get());
  EXPECT_EQ(cache.try_get(layout, Precision::kFloat64).get(),
            f64.plan.get());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.f32_plans, 1u);
  EXPECT_EQ(stats.f32_fallbacks, 0u);
}

TEST(PlanCachePrecision, FallbacksAreCountedPerBuild) {
  const PrecisionFixture fix;
  sw::serve::PlanCache cache(fix.engine, 8,
                             {.num_threads = 1,
                              .precision = Precision::kFloat32});
  EXPECT_EQ(cache.default_precision(), Precision::kFloat32);

  const auto wide = cache.get_or_build(fix.majority_layout(3, 2));
  const auto thin = cache.get_or_build(fix.thin_margin_layout());
  EXPECT_EQ(wide.plan->effective_precision(), Precision::kFloat32);
  EXPECT_EQ(thin.plan->effective_precision(), Precision::kFloat64);
  EXPECT_FALSE(thin.plan->plan().f32_rejection().empty());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.f32_plans, 1u);
  EXPECT_EQ(stats.f32_fallbacks, 1u);
}

// -------------------------------------------------------------- service --

TEST(ServicePrecision, TransparentFallbackSurfacesInStats) {
  const PrecisionFixture fix;
  sw::serve::ServiceOptions options;
  options.evaluator_options.precision = Precision::kFloat32;
  sw::serve::EvaluatorService svc(fix.model, fix.wg.material.alpha, options);

  // Wide-margin layout: served at f32, decodes bit-identical to the
  // double reference.
  const GateLayout wide = fix.majority_layout(3, 2);
  const DataParallelGate wide_gate(wide, fix.engine);
  const BatchEvaluator reference(wide_gate,
                                 {.num_threads = 1,
                                  .precision = Precision::kFloat64});
  const auto matrix = random_matrix(64, reference.slot_count(), /*seed=*/9);
  EXPECT_EQ(svc.submit(wide, matrix, 64).get().bits,
            reference.evaluate_bits(64, matrix));

  // Thin-margin layout: the service transparently serves the double plan.
  const GateLayout thin = fix.thin_margin_layout();
  const DataParallelGate thin_gate(thin, fix.engine);
  const auto patterns = all_patterns(3);
  std::vector<std::uint8_t> packed(patterns.size() * 3);
  for (std::size_t w = 0; w < patterns.size(); ++w) {
    for (std::size_t in = 0; in < 3; ++in) {
      packed[w * 3 + in] = patterns[w][in];
    }
  }
  const auto thin_bits =
      svc.submit(thin, packed, patterns.size()).get().bits;
  for (std::size_t w = 0; w < patterns.size(); ++w) {
    EXPECT_EQ(thin_bits[w], thin_gate.evaluate_uniform(patterns[w])[0].logic)
        << "word " << w;
  }

  const auto stats = svc.stats();
  EXPECT_EQ(stats.precision, "f32");
  EXPECT_EQ(stats.cache.f32_plans, 1u);
  EXPECT_EQ(stats.cache.f32_fallbacks, 1u);
}

TEST(ServicePrecision, DefaultPrecisionFollowsTheProcessChoice) {
  const PrecisionFixture fix;
  sw::serve::EvaluatorService svc(fix.model, fix.wg.material.alpha);
  EXPECT_EQ(svc.stats().precision,
            std::string(sw::wavesim::precision_name(
                sw::wavesim::active_precision())));
}

}  // namespace
