// Wire-format property tests: randomized frames round-trip bit-exactly,
// and hostile bytes — truncations, corrupt bodies, oversized length
// prefixes, flipped header fields — are rejected with the typed
// sw::util::Error (or decode to *some* well-formed frame for the header
// bytes the checksum deliberately does not cover) instead of crashing,
// over-allocating or reading out of bounds. Every loop runs from a fixed
// seed so CI failures reproduce locally.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/gate_design.h"
#include "serve/wire.h"
#include "util/error.h"

namespace {

using namespace sw::serve;
using sw::core::GateSpec;

/// A finite random double built from random mantissa/exponent bits: varied
/// magnitudes without NaN/inf (GateSpec equality would reject NaN).
double random_finite(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> mantissa(-1.0, 1.0);
  std::uniform_int_distribution<int> exponent(-40, 40);
  return std::ldexp(mantissa(rng), exponent(rng));
}

GateSpec random_spec(std::mt19937_64& rng) {
  GateSpec spec;
  spec.num_inputs = std::uniform_int_distribution<std::size_t>(1, 4)(rng);
  const std::size_t channels =
      std::uniform_int_distribution<std::size_t>(1, 6)(rng);
  for (std::size_t i = 0; i < channels; ++i) {
    spec.frequencies.push_back(1e10 * (1.0 + static_cast<double>(i)) +
                               random_finite(rng));
  }
  spec.transducer_width = random_finite(rng);
  spec.min_gap = random_finite(rng);
  spec.min_same_channel_spacing = random_finite(rng);
  spec.multiple_search = std::uniform_int_distribution<int>(-3, 7)(rng);
  if (std::bernoulli_distribution(0.5)(rng)) {
    for (std::size_t i = 0; i < channels; ++i) {
      spec.invert_output.push_back(
          std::bernoulli_distribution(0.5)(rng) ? 1 : 0);
    }
  }
  return spec;
}

SweepFrame random_frame(std::mt19937_64& rng) {
  SweepFrame frame;
  const bool request = std::bernoulli_distribution(0.5)(rng);
  frame.kind = request ? FrameKind::kRequest : FrameKind::kResponse;
  frame.layout_hash = rng();
  frame.word_offset = rng() % (std::uint64_t{1} << 48);
  frame.num_words = std::uniform_int_distribution<std::uint64_t>(0, 40)(rng);
  frame.num_cols = std::uniform_int_distribution<std::uint64_t>(1, 37)(rng);
  if (request) frame.spec = random_spec(rng);
  frame.matrix.resize(
      static_cast<std::size_t>(frame.num_words * frame.num_cols));
  std::bernoulli_distribution coin(0.5);
  for (auto& b : frame.matrix) b = coin(rng) ? 1 : 0;
  return frame;
}

void expect_equal(const SweepFrame& a, const SweepFrame& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.layout_hash, b.layout_hash);
  EXPECT_EQ(a.word_offset, b.word_offset);
  EXPECT_EQ(a.num_words, b.num_words);
  EXPECT_EQ(a.num_cols, b.num_cols);
  EXPECT_EQ(a.spec.has_value(), b.spec.has_value());
  if (a.spec && b.spec) {
    EXPECT_EQ(*a.spec, *b.spec);
  }
  EXPECT_EQ(a.matrix, b.matrix);
}

TEST(WireProperty, RandomFramesRoundTripBitExactly) {
  std::mt19937_64 rng(20260727);
  for (int iter = 0; iter < 200; ++iter) {
    const SweepFrame frame = random_frame(rng);
    const auto bytes = encode_frame(frame);
    const SweepFrame decoded = decode_frame(bytes);
    expect_equal(frame, decoded);
    // Canonical encoding: re-encoding the decode reproduces the bytes.
    EXPECT_EQ(encode_frame(decoded), bytes);
  }
}

TEST(WireProperty, NonBinaryCellsNormaliseToOne) {
  // The in-memory matrix contract is "nonzero means 1"; the packed wire
  // form cannot distinguish 1 from 7, so the round trip normalises.
  SweepFrame frame;
  frame.kind = FrameKind::kResponse;
  frame.num_words = 3;
  frame.num_cols = 11;
  frame.matrix.assign(33, 0);
  for (std::size_t i = 0; i < frame.matrix.size(); i += 3) {
    frame.matrix[i] = static_cast<std::uint8_t>(1 + (i % 250));
  }
  const SweepFrame decoded = decode_frame(encode_frame(frame));
  for (std::size_t i = 0; i < frame.matrix.size(); ++i) {
    EXPECT_EQ(decoded.matrix[i], frame.matrix[i] != 0 ? 1 : 0);
  }
}

TEST(WireProperty, EveryTruncationIsRejected) {
  std::mt19937_64 rng(4242);
  const SweepFrame frame = random_frame(rng);
  const auto bytes = encode_frame(frame);
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    EXPECT_THROW((void)decode_frame({bytes.data(), keep}), sw::util::Error)
        << "decode accepted a frame truncated to " << keep << " bytes";
  }
}

TEST(WireProperty, EveryBodyByteFlipIsRejected) {
  // Everything from the spec block onward is checksummed: any single-bit
  // corruption there must be caught.
  std::mt19937_64 rng(1717);
  SweepFrame frame = random_frame(rng);
  frame.num_words = std::max<std::uint64_t>(frame.num_words, 1);
  frame.matrix.resize(
      static_cast<std::size_t>(frame.num_words * frame.num_cols), 1);
  const auto bytes = encode_frame(frame);
  ASSERT_GT(bytes.size(), 64u);
  for (std::size_t pos = 64; pos < bytes.size(); ++pos) {
    for (const std::uint8_t flip : {0x01, 0x80}) {
      auto bad = bytes;
      bad[pos] ^= flip;
      EXPECT_THROW((void)decode_frame(bad), sw::util::Error)
          << "body flip at byte " << pos << " went undetected";
    }
  }
  // The stored checksum itself (bytes 56..63) must also disagree when
  // flipped.
  for (std::size_t pos = 56; pos < 64; ++pos) {
    auto bad = bytes;
    bad[pos] ^= 0x01;
    EXPECT_THROW((void)decode_frame(bad), sw::util::Error);
  }
}

TEST(WireProperty, HeaderFlipsNeverCrashOrOverallocate) {
  // Identity fields before the checksum (magic, version, kind, hash,
  // offset, dimensions, sizes) are validated structurally rather than by
  // checksum: a flip must either throw the typed error or still decode to
  // a well-formed frame (hash/offset flips change metadata the higher
  // layers re-validate). What it must never do is crash, hang or drive a
  // huge allocation — ASan/UBSan legs enforce the "never" here.
  std::mt19937_64 rng(55);
  const SweepFrame frame = random_frame(rng);
  const auto bytes = encode_frame(frame);
  int rejected = 0;
  for (std::size_t pos = 0; pos < 56; ++pos) {
    for (const std::uint8_t flip : {0x01, 0x10, 0x80}) {
      auto bad = bytes;
      bad[pos] ^= flip;
      try {
        const SweepFrame decoded = decode_frame(bad);
        // Accepted: must still be internally consistent.
        EXPECT_EQ(decoded.matrix.size(),
                  decoded.num_words * decoded.num_cols);
      } catch (const sw::util::Error&) {
        ++rejected;
      }
    }
  }
  // Magic, version and kind flips alone guarantee a healthy rejection
  // count; a suspiciously low number means validation fell off.
  EXPECT_GE(rejected, 24);
}

TEST(WireProperty, OversizedLengthPrefixesAreRejectedCheaply) {
  std::mt19937_64 rng(99);
  const SweepFrame frame = random_frame(rng);
  auto bytes = encode_frame(frame);
  const auto stamp_u64 = [&](std::size_t offset, std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes[offset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(value >> (8 * i));
    }
  };
  auto original = bytes;

  stamp_u64(24, std::uint64_t{1} << 40);  // num_words beyond the cap
  EXPECT_THROW((void)decode_frame(bytes), sw::util::Error);
  bytes = original;

  stamp_u64(32, std::uint64_t{1} << 40);  // num_cols beyond the cap
  EXPECT_THROW((void)decode_frame(bytes), sw::util::Error);
  bytes = original;

  stamp_u64(40, std::uint64_t{1} << 40);  // spec_size beyond the cap
  EXPECT_THROW((void)decode_frame(bytes), sw::util::Error);
  bytes = original;

  stamp_u64(48, ~std::uint64_t{0});  // payload_size inconsistent / absurd
  EXPECT_THROW((void)decode_frame(bytes), sw::util::Error);
}

TEST(WireProperty, ShapeContractsAreEnforcedOnEncode) {
  SweepFrame frame;
  frame.kind = FrameKind::kResponse;
  frame.num_words = 4;
  frame.num_cols = 3;
  frame.matrix.assign(11, 0);  // should be 12
  EXPECT_THROW((void)encode_frame(frame), sw::util::Error);

  frame.matrix.assign(12, 0);
  frame.spec = GateSpec{};  // responses must not carry a spec
  EXPECT_THROW((void)encode_frame(frame), sw::util::Error);

  frame.spec.reset();
  frame.kind = FrameKind::kRequest;  // requests must carry one
  EXPECT_THROW((void)encode_frame(frame), sw::util::Error);
}

}  // namespace
