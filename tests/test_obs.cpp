// Observability subsystem tests: histogram bucket edges, the golden
// Prometheus exposition text, cumulative monotonicity, the standard
// ladders, fixed-slot trace contexts (span accounting, truncation), the
// bounded trace ring, and the Chrome trace-event JSON export — parsed
// back by a minimal JSON parser so a malformed document fails here, not
// in Perfetto.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"
#include "util/error.h"

namespace {

using sw::obs::Histogram;
using sw::obs::HistogramSnapshot;
using sw::obs::Phase;
using sw::obs::TraceContext;
using sw::obs::TraceRecorder;

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h(1.0, 2.0, 4);  // bounds 1, 2, 4, 8 (+Inf implicit)
  h.record(-3.0);  // negative clamps into the first bucket
  h.record(0.5);
  h.record(1.0);   // le is inclusive: lands in the le="1" bucket
  h.record(1.5);
  h.record(8.0);
  h.record(9.0);   // past the last finite bound: +Inf bucket

  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.bounds, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  ASSERT_EQ(s.counts.size(), 5u);
  EXPECT_EQ(s.counts[0], 3u);  // -3, 0.5, 1.0
  EXPECT_EQ(s.counts[1], 1u);  // 1.5
  EXPECT_EQ(s.counts[2], 0u);
  EXPECT_EQ(s.counts[3], 1u);  // 8.0
  EXPECT_EQ(s.counts[4], 1u);  // 9.0
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.sum, -3.0 + 0.5 + 1.0 + 1.5 + 8.0 + 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), s.sum / 6.0);
  EXPECT_EQ(s.cumulative(0), 3u);
  EXPECT_EQ(s.cumulative(3), 5u);
  EXPECT_EQ(s.cumulative(s.bounds.size()), 6u);
}

TEST(ObsHistogram, GoldenPrometheusExposition) {
  Histogram h(1.0, 10.0, 2);  // bounds 1, 10
  h.record(0.5);
  h.record(5.0);
  h.record(100.0);
  std::string out;
  sw::obs::append_histogram(out, "t_seconds", h.snapshot());
  EXPECT_EQ(out,
            "t_seconds_bucket{le=\"1\"} 1\n"
            "t_seconds_bucket{le=\"10\"} 2\n"
            "t_seconds_bucket{le=\"+Inf\"} 3\n"
            "t_seconds_sum 105.5\n"
            "t_seconds_count 3\n");
}

TEST(ObsHistogram, CumulativeBucketsAreMonotonic) {
  Histogram h = Histogram::for_seconds();
  // A spread hitting sub-first-bound, mid-ladder and +Inf territory.
  for (const double v : {1e-7, 3e-6, 4e-5, 1e-3, 0.02, 0.02, 1.0, 40.0}) {
    h.record(v);
  }
  const HistogramSnapshot s = h.snapshot();
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
    const std::uint64_t c = s.cumulative(i);
    EXPECT_GE(c, prev) << "cumulative shrank at bucket " << i;
    prev = c;
  }
  EXPECT_EQ(prev, s.count);
}

TEST(ObsHistogram, StandardLaddersCoverServingRanges) {
  const HistogramSnapshot seconds = Histogram::for_seconds().snapshot();
  ASSERT_EQ(seconds.bounds.size(), 25u);
  EXPECT_DOUBLE_EQ(seconds.bounds.front(), 1e-6);
  EXPECT_GT(seconds.bounds.back(), 10.0);  // ~16.8s: admission stalls fit
  const HistogramSnapshot words = Histogram::for_words().snapshot();
  ASSERT_EQ(words.bounds.size(), 12u);
  EXPECT_DOUBLE_EQ(words.bounds.front(), 1.0);
  EXPECT_GT(words.bounds.back(), 4e6);  // the 2^16-word paper sweep fits

  EXPECT_THROW(Histogram(0.0, 2.0, 4), sw::util::Error);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), sw::util::Error);
  EXPECT_THROW(Histogram(1.0, 2.0, 0), sw::util::Error);
}

TEST(ObsTrace, SpansAccumulateByPhaseAndTruncatePastCapacity) {
  TraceContext t;
  t.id = 42;
  t.track = 3;
  const std::size_t slot = t.begin(Phase::kKernel);
  ASSERT_NE(slot, TraceContext::kNoSlot);
  t.end(slot);
  t.add(Phase::kQueue, 1000, 4000);
  t.add(Phase::kQueue, 5000, 6000);
  t.add(Phase::kReshard, 7000, 7000, /*arg=*/2);  // instantaneous is legal
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.phase_ns(Phase::kQueue), 4000u);
  EXPECT_EQ(t.phase_ns(Phase::kReshard), 0u);
  EXPECT_EQ(t.phase_ns(Phase::kAdmission), 0u);
  EXPECT_EQ(t.span(3).arg, 2u);
  EXPECT_FALSE(t.truncated());

  // Filling every remaining slot must not lose the request — begin()
  // degrades to kNoSlot and end(kNoSlot) is a no-op.
  while (t.size() < TraceContext::kMaxSpans) t.add(Phase::kStage, 1, 2);
  const std::size_t overflow = t.begin(Phase::kWireEncode);
  EXPECT_EQ(overflow, TraceContext::kNoSlot);
  t.end(overflow);
  t.add(Phase::kWireEncode, 1, 2);
  EXPECT_EQ(t.size(), TraceContext::kMaxSpans);
  EXPECT_TRUE(t.truncated());
}

TEST(ObsTrace, RecorderKeepsMostRecentTracesBounded) {
  TraceRecorder recorder(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    TraceContext t;
    t.id = i;
    t.add(Phase::kKernel, 100 * i, 100 * i + 50);
    recorder.record(t);
  }
  EXPECT_EQ(recorder.recorded_total(), 10u);
  const auto traces = recorder.snapshot();
  ASSERT_EQ(traces.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(traces[i].id, 9u - i) << "snapshot is not most-recent-first";
  }
  // A tiny slow threshold exercises the slow-request log path (stderr);
  // recording must stay well-defined either way.
  recorder.set_slow_threshold(1e-12);
  TraceContext slow;
  slow.id = 99;
  slow.add(Phase::kKernel, 0, 5'000'000);
  recorder.record(slow);
  EXPECT_EQ(recorder.snapshot().front().id, 99u);
}

/// Minimal recursive-descent JSON parser: validates the full grammar the
/// trace emitter can produce and collects every string value stored under
/// a "name" key. Throws std::runtime_error on any syntax error, so a
/// malformed dump fails here instead of inside Perfetto.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text)
      : p_(text.c_str()), end_(p_ + text.size()) {}

  void parse() {
    value();
    ws();
    if (p_ != end_) fail("trailing characters after the document");
  }

  const std::vector<std::string>& names() const { return names_; }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error: " + why);
  }
  void ws() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\n' || *p_ == '\r' || *p_ == '\t')) {
      ++p_;
    }
  }
  char peek() {
    if (p_ >= end_) fail("unexpected end of input");
    return *p_;
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++p_;
  }
  void value() {
    ws();
    switch (peek()) {
      case '{': object(); return;
      case '[': array(); return;
      case '"': (void)string(); return;
      case 't': literal("true"); return;
      case 'f': literal("false"); return;
      case 'n': literal("null"); return;
      default: number(); return;
    }
  }
  void object() {
    expect('{');
    ws();
    if (peek() == '}') { ++p_; return; }
    for (;;) {
      ws();
      const std::string key = string();
      ws();
      expect(':');
      ws();
      if (key == "name" && peek() == '"') {
        names_.push_back(string());
      } else {
        value();
      }
      ws();
      if (peek() == ',') { ++p_; continue; }
      expect('}');
      return;
    }
  }
  void array() {
    expect('[');
    ws();
    if (peek() == ']') { ++p_; return; }
    for (;;) {
      value();
      ws();
      if (peek() == ',') { ++p_; continue; }
      expect(']');
      return;
    }
  }
  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (p_ >= end_) fail("unterminated string");
      const char c = *p_++;
      if (c == '"') return out;
      if (c == '\\') {
        if (p_ >= end_) fail("dangling escape");
        out += *p_++;
        continue;
      }
      out += c;
    }
  }
  void literal(const char* word) {
    for (const char* w = word; *w != '\0'; ++w) {
      if (p_ >= end_ || *p_ != *w) fail(std::string("bad literal ") + word);
      ++p_;
    }
  }
  void number() {
    const char* start = p_;
    while (p_ < end_ &&
           (*p_ == '-' || *p_ == '+' || *p_ == '.' || *p_ == 'e' ||
            *p_ == 'E' || (*p_ >= '0' && *p_ <= '9'))) {
      ++p_;
    }
    if (p_ == start) fail("expected a value");
  }

  const char* p_;
  const char* end_;
  std::vector<std::string> names_;
};

bool contains(const std::vector<std::string>& names, const std::string& s) {
  return std::find(names.begin(), names.end(), s) != names.end();
}

TEST(ObsTraceJson, RendersValidJsonWithPhaseNamesAndSkipsOpenSpans) {
  TraceContext a;
  a.id = 1;
  a.track = 7;
  a.add(Phase::kWireDecode, 500, 900);
  a.add(Phase::kKernel, 1000, 5000);
  TraceContext b;
  b.id = 2;
  b.track = 8;
  b.add(Phase::kReshard, 2000, 2000, /*arg=*/3);
  (void)b.begin(Phase::kQueue);  // left open: must not render

  const std::string doc = sw::obs::trace_json({a, b}, "unit-test");
  MiniJsonParser parser(doc);
  ASSERT_NO_THROW(parser.parse()) << doc;
  EXPECT_TRUE(contains(parser.names(), "process_name")) << doc;
  EXPECT_TRUE(contains(parser.names(), "unit-test")) << doc;
  EXPECT_TRUE(contains(parser.names(), "wire_decode")) << doc;
  EXPECT_TRUE(contains(parser.names(), "kernel")) << doc;
  EXPECT_TRUE(contains(parser.names(), "reshard")) << doc;
  EXPECT_FALSE(contains(parser.names(), "queue")) << doc;
}

TEST(ObsTraceJson, MergeSplicesDocumentsAndHandlesEmpty) {
  TraceContext a;
  a.id = 1;
  a.add(Phase::kKernel, 1000, 2000);
  const std::string first = sw::obs::trace_json({a}, "proc-a");
  TraceContext b;
  b.id = 2;
  b.add(Phase::kShardSend, 3000, 4000);
  const std::string second = sw::obs::trace_json({b}, "proc-b");

  const std::string merged = sw::obs::merge_trace_json({first, second});
  MiniJsonParser parser(merged);
  ASSERT_NO_THROW(parser.parse()) << merged;
  EXPECT_TRUE(contains(parser.names(), "proc-a"));
  EXPECT_TRUE(contains(parser.names(), "proc-b"));
  EXPECT_TRUE(contains(parser.names(), "kernel"));
  EXPECT_TRUE(contains(parser.names(), "shard_send"));

  const std::string none = sw::obs::merge_trace_json({});
  MiniJsonParser empty_parser(none);
  ASSERT_NO_THROW(empty_parser.parse()) << none;
  const std::string bare = sw::obs::trace_json({}, "idle");
  MiniJsonParser bare_parser(bare);
  ASSERT_NO_THROW(bare_parser.parse()) << bare;
}

}  // namespace
