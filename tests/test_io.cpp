// Unit tests for the IO module: CSV/tables, OVF round trip, MIF-lite.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/csv.h"
#include "io/miflite.h"
#include "io/ovf.h"
#include "mag/mesh.h"
#include "mag/vector_field.h"
#include "util/error.h"

namespace {

using namespace sw::io;
using sw::util::Error;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------- csv

TEST(Csv, WritesHeaderAndRows) {
  const auto path = temp_path("sw_test.csv");
  {
    CsvWriter w(path, {"t", "mx", "my"});
    w.row({1.0, 0.5, -0.25});
    w.row_text({"2", "a", "b"});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  const auto content = slurp(path);
  EXPECT_NE(content.find("t,mx,my"), std::string::npos);
  EXPECT_NE(content.find("1,0.5,-0.25"), std::string::npos);
  EXPECT_NE(content.find("2,a,b"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, RejectsWidthMismatch) {
  const auto path = temp_path("sw_test2.csv");
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({1.0}), Error);
  std::remove(path.c_str());
}

TEST(Csv, CreatesParentDirectories) {
  const auto dir = temp_path("sw_csv_nested");
  std::filesystem::remove_all(dir);
  const auto path = dir + "/deep/file.csv";
  {
    CsvWriter w(path, {"x"});
    w.row({1.0});
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "0.004"});
  t.add_numeric_row({42.0, 3.14159});
  const auto s = t.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.142"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "many", "cells"}), Error);
}

// ---------------------------------------------------------------------- ovf

TEST(Ovf, RoundTripPreservesFieldAndMesh) {
  const sw::mag::Mesh mesh(6, 3, 2, 2e-9, 5e-9, 1e-9);
  sw::mag::VectorField f(mesh);
  for (std::size_t c = 0; c < f.size(); ++c) {
    f[c] = {static_cast<double>(c), -0.5 * static_cast<double>(c), 1.0};
  }
  const auto path = temp_path("sw_test.ovf");
  write_ovf(path, f, "round trip");
  const auto g = read_ovf(path);
  ASSERT_EQ(g.size(), f.size());
  EXPECT_EQ(g.mesh().nx(), 6u);
  EXPECT_EQ(g.mesh().ny(), 3u);
  EXPECT_EQ(g.mesh().nz(), 2u);
  EXPECT_DOUBLE_EQ(g.mesh().dx(), 2e-9);
  for (std::size_t c = 0; c < f.size(); ++c) {
    EXPECT_NEAR(g[c].x, f[c].x, 1e-12);
    EXPECT_NEAR(g[c].y, f[c].y, 1e-12);
    EXPECT_NEAR(g[c].z, f[c].z, 1e-12);
  }
  std::remove(path.c_str());
}

TEST(Ovf, HeaderIsOommfCompatible) {
  const sw::mag::Mesh mesh(2, 1, 1, 1e-9, 1e-9, 1e-9);
  const sw::mag::VectorField f(mesh, {0, 0, 1});
  const auto path = temp_path("sw_hdr.ovf");
  write_ovf(path, f);
  const auto content = slurp(path);
  EXPECT_NE(content.find("# OOMMF: rectangular mesh v1.0"),
            std::string::npos);
  EXPECT_NE(content.find("# Begin: Data Text"), std::string::npos);
  EXPECT_NE(content.find("# xnodes: 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Ovf, ReadRejectsMissingFile) {
  EXPECT_THROW(read_ovf("/nonexistent/filefile.ovf"), Error);
}

TEST(Ovf, ReadRejectsTruncatedData) {
  const auto path = temp_path("sw_bad.ovf");
  std::ofstream out(path);
  out << "# OOMMF: rectangular mesh v1.0\n"
      << "# xnodes: 2\n# ynodes: 1\n# znodes: 1\n"
      << "# xstepsize: 1e-9\n# ystepsize: 1e-9\n# zstepsize: 1e-9\n"
      << "# Begin: Data Text\n"
      << "0 0 1\n"  // one row missing
      << "# End: Data Text\n";
  out.close();
  EXPECT_THROW(read_ovf(path), Error);
  std::remove(path.c_str());
}

// ------------------------------------------------------------------ miflite

constexpr const char* kSampleMif = R"(
# paper configuration
[material]
name = FeCoB
alpha = 0.004

[waveguide]
width = 50e-9
thickness = 1e-9
pinning_factor = 0.92

[gate]
inputs = 3
frequencies = 10e9 20e9 30e9 40e9
transducer_width = 10e-9
min_gap = 1e-9
invert = 0 0 1 0
)";

TEST(MifLite, ParsesSectionsAndKeys) {
  const auto doc = MifDocument::parse(kSampleMif);
  EXPECT_TRUE(doc.has_section("material"));
  EXPECT_TRUE(doc.has_key("gate", "inputs"));
  EXPECT_FALSE(doc.has_key("gate", "nonsense"));
  EXPECT_EQ(doc.get_string("material", "name"), "FeCoB");
  EXPECT_DOUBLE_EQ(doc.get_double("waveguide", "width"), 50e-9);
  EXPECT_EQ(doc.get_long("gate", "inputs"), 3);
  EXPECT_EQ(doc.get_doubles("gate", "frequencies").size(), 4u);
}

TEST(MifLite, SectionAndKeyNamesAreCaseInsensitive) {
  const auto doc = MifDocument::parse("[Material]\nMs = 1e6\n");
  EXPECT_DOUBLE_EQ(doc.get_double("material", "ms"), 1e6);
  EXPECT_DOUBLE_EQ(doc.get_double("MATERIAL", "MS"), 1e6);
}

TEST(MifLite, CommentsAndBlankLinesIgnored) {
  const auto doc = MifDocument::parse(
      "# leading comment\n\n[a]\nx = 1 # trailing comment\n\n");
  EXPECT_DOUBLE_EQ(doc.get_double("a", "x"), 1.0);
}

TEST(MifLite, DefaultsViaOrGetters) {
  const auto doc = MifDocument::parse("[a]\nx = 2\n");
  EXPECT_DOUBLE_EQ(doc.get_double_or("a", "x", 9.0), 2.0);
  EXPECT_DOUBLE_EQ(doc.get_double_or("a", "missing", 9.0), 9.0);
  EXPECT_EQ(doc.get_long_or("b", "y", 7), 7);
}

TEST(MifLite, ParseErrorsCarryLineNumbers) {
  try {
    MifDocument::parse("[a]\nbroken line without equals\n");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(MifDocument::parse("key = before_section\n"), Error);
  EXPECT_THROW(MifDocument::parse("[unterminated\n"), Error);
}

TEST(MifLite, TypedGetterErrors) {
  const auto doc = MifDocument::parse("[a]\nx = hello\n");
  EXPECT_THROW(doc.get_double("a", "x"), Error);
  EXPECT_THROW(doc.get_double("a", "missing"), Error);
  EXPECT_THROW(doc.get_double("nosection", "x"), Error);
}

TEST(MifLite, BuildsMaterial) {
  const auto doc = MifDocument::parse(kSampleMif);
  const auto mat = parse_material(doc);
  EXPECT_EQ(mat.name, "Fe60Co20B20");
  EXPECT_DOUBLE_EQ(mat.alpha, 0.004);
  EXPECT_DOUBLE_EQ(mat.Ms, 1.1e6);  // preset value kept
}

TEST(MifLite, MaterialOverrides) {
  const auto doc =
      MifDocument::parse("[material]\nname = YIG\nms = 1.39e5\n");
  const auto mat = parse_material(doc);
  EXPECT_EQ(mat.name, "YIG");
  EXPECT_DOUBLE_EQ(mat.Ms, 1.39e5);
}

TEST(MifLite, BuildsWaveguide) {
  const auto doc = MifDocument::parse(kSampleMif);
  const auto wg = parse_waveguide(doc);
  EXPECT_DOUBLE_EQ(wg.width, 50e-9);
  EXPECT_DOUBLE_EQ(wg.thickness, 1e-9);
  EXPECT_DOUBLE_EQ(wg.pinning_factor, 0.92);
}

TEST(MifLite, BuildsGateSpec) {
  const auto doc = MifDocument::parse(kSampleMif);
  const auto spec = parse_gate_spec(doc);
  EXPECT_EQ(spec.num_inputs, 3u);
  ASSERT_EQ(spec.frequencies.size(), 4u);
  EXPECT_DOUBLE_EQ(spec.frequencies[1], 20e9);
  ASSERT_EQ(spec.invert_output.size(), 4u);
  EXPECT_EQ(spec.invert_output[2], 1);
}

TEST(MifLite, ParseFileMissingThrows) {
  EXPECT_THROW(MifDocument::parse_file("/nonexistent/file.mif"), Error);
}

}  // namespace

// Appended: ODT writer tests.
#include "io/odt.h"
#include "mag/material.h"

namespace {

TEST(Odt, WritesTableWithHeaderAndRows) {
  const auto path = temp_path("sw_test.odt");
  std::vector<sw::io::OdtColumn> cols;
  cols.push_back({"Simulation time", "s", {0.0, 1e-12, 2e-12}});
  cols.push_back({"probe::mx", "", {0.1, 0.2, 0.3}});
  sw::io::write_odt(path, "unit test", cols);
  const auto content = slurp(path);
  EXPECT_NE(content.find("# ODT 1.0"), std::string::npos);
  EXPECT_NE(content.find("{Simulation time} {probe::mx}"),
            std::string::npos);
  EXPECT_NE(content.find("# Table End"), std::string::npos);
  EXPECT_NE(content.find("0.2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Odt, RejectsMismatchedColumns) {
  std::vector<sw::io::OdtColumn> cols;
  cols.push_back({"a", "", {1.0, 2.0}});
  cols.push_back({"b", "", {1.0}});
  EXPECT_THROW(sw::io::write_odt(temp_path("bad.odt"), "t", cols), Error);
  EXPECT_THROW(sw::io::write_odt(temp_path("bad.odt"), "t", {}), Error);
}

TEST(Odt, DumpsProbesWithSharedTimeBase) {
  const sw::mag::Mesh mesh(10, 1, 1, 2e-9, 50e-9, 1e-9);
  const sw::mag::VectorField m(mesh, {0.5, 0, 1});
  sw::mag::Probe p1("O1", mesh, 10e-9, 4e-9, 1e-12);
  sw::mag::Probe p2("O2", mesh, 16e-9, 4e-9, 1e-12);
  for (int i = 0; i < 3; ++i) {
    p1.sample(i * 1e-12, m);
    p2.sample(i * 1e-12, m);
  }
  const auto path = temp_path("sw_probes.odt");
  sw::io::write_probes_odt(path, "probes", {p1, p2});
  const auto content = slurp(path);
  EXPECT_NE(content.find("{O1::mx}"), std::string::npos);
  EXPECT_NE(content.find("{O2::mz}"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
