// Physics regression pins: FVMSW / BVMSW / Damon-Eshbach dispersion and the
// engine decay length, evaluated on the paper's device (Fe60Co20B20 PMA
// waveguide, 50 nm x 1 nm, alpha = 0.004) and pinned to golden values
// produced by the seed implementation. These guard future solver refactors:
// a change that moves any of these numbers beyond the stated tolerance is a
// physics change, not a refactor, and must update the goldens deliberately.
//
// Tolerances: direct closed-form evaluations are pinned at 1e-9 relative;
// values that pass through Brent root finding or numeric differentiation
// (k(f), lambda(f), v_g, decay length) at 1e-6 relative.
#include <gtest/gtest.h>

#include "dispersion/bvmsw_de.h"
#include "dispersion/fvmsw.h"
#include "mag/material.h"
#include "wavesim/wave_engine.h"

namespace {

using sw::disp::BvmswDispersion;
using sw::disp::DamonEshbachDispersion;
using sw::disp::FvmswDispersion;
using sw::disp::Waveguide;
using sw::wavesim::WaveEngine;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

constexpr double kFormulaTol = 1e-9;  ///< relative, closed-form values
constexpr double kSolverTol = 1e-6;   ///< relative, root-find / numeric-diff

void expect_rel(double got, double want, double rel_tol) {
  EXPECT_NEAR(got, want, std::abs(want) * rel_tol);
}

TEST(PhysicsRegression, FvmswInternalFieldAndQuantisation) {
  const FvmswDispersion model(paper_waveguide());
  // Internal field Hk - Ms (self-biased PMA film, Hext = 0) and the
  // first-width-mode transverse wavenumber pi / (0.92 * 50 nm).
  expect_rel(model.internal_field(), 103457.33584982879, kFormulaTol);
  expect_rel(model.k_transverse(), 68295492.46934332, kFormulaTol);
}

TEST(PhysicsRegression, FvmswDispersionCurve) {
  const FvmswDispersion model(paper_waveguide());
  expect_rel(model.fmr(), 8662810003.1731339, kFormulaTol);
  expect_rel(model.frequency(1e7), 8763591799.3303375, kFormulaTol);
  expect_rel(model.frequency(5e7), 11165606779.342091, kFormulaTol);
  expect_rel(model.frequency(1e8), 18559530219.228283, kFormulaTol);
  expect_rel(model.frequency(3e8), 95537707138.806503, kFormulaTol);
}

TEST(PhysicsRegression, FvmswInversionAtChannelFrequencies) {
  const FvmswDispersion model(paper_waveguide());
  // The paper's channel grid spans 10-80 GHz; pin the ends and two interior
  // points of k(f) and lambda(f).
  expect_rel(model.k_from_frequency(1e10), 36443837.96853558, kSolverTol);
  expect_rel(model.k_from_frequency(2e10), 107083225.17843153, kSolverTol);
  expect_rel(model.k_from_frequency(4e10), 179156940.23373842, kSolverTol);
  expect_rel(model.k_from_frequency(8e10), 271502312.0623709, kSolverTol);

  expect_rel(model.wavelength(1e10), 1.7240734394122493e-07, kSolverTol);
  expect_rel(model.wavelength(2e10), 5.8675719719031514e-08, kSolverTol);
  expect_rel(model.wavelength(4e10), 3.5070845142712204e-08, kSolverTol);
  expect_rel(model.wavelength(8e10), 2.3142290242214146e-08, kSolverTol);
}

TEST(PhysicsRegression, FvmswGroupVelocity) {
  const FvmswDispersion model(paper_waveguide());
  expect_rel(model.group_velocity_at_frequency(1e10), 458.15247970817484,
             kSolverTol);
  expect_rel(model.group_velocity_at_frequency(2e10), 1315.15058191751,
             kSolverTol);
  expect_rel(model.group_velocity_at_frequency(4e10), 2172.2223170716061,
             kSolverTol);
  expect_rel(model.group_velocity_at_frequency(8e10), 3265.2755180467975,
             kSolverTol);
}

TEST(PhysicsRegression, EngineDecayLengthAtPaperDamping) {
  const auto wg = paper_waveguide();
  const FvmswDispersion model(wg);
  const WaveEngine engine(model, 0.004);
  // Micron-scale decay, non-monotonic in f: v_g growth beats the 1/f factor
  // up to ~20 GHz, then loses.
  expect_rel(engine.decay_length(1e10), 1.8229307958841325e-06, kSolverTol);
  expect_rel(engine.decay_length(2e10), 2.6164089502794291e-06, kSolverTol);
  expect_rel(engine.decay_length(4e10), 2.1607494953529781e-06, kSolverTol);
  expect_rel(engine.decay_length(8e10), 1.6240148101690536e-06, kSolverTol);
}

TEST(PhysicsRegression, BvmswDispersionCurve) {
  // In-plane magnetised configuration at H_int = 1e5 A/m.
  const BvmswDispersion model(paper_waveguide(), 1e5);
  expect_rel(model.fmr(), 12199593384.862387, kFormulaTol);
  expect_rel(model.frequency(1e7), 12347331873.547905, kFormulaTol);
  expect_rel(model.frequency(1e8), 25396781332.080978, kFormulaTol);
  expect_rel(model.frequency(5e8), 253971663282.17862, kFormulaTol);
}

TEST(PhysicsRegression, DamonEshbachDispersionCurve) {
  const DamonEshbachDispersion model(paper_waveguide(), 1e5);
  expect_rel(model.fmr(), 12199593384.862387, kFormulaTol);
  expect_rel(model.frequency(1e7), 12672160480.25329, kFormulaTol);
  expect_rel(model.frequency(1e8), 27152697214.276966, kFormulaTol);
  expect_rel(model.frequency(5e8), 258288496666.59277, kFormulaTol);
}

TEST(PhysicsRegression, DamonEshbachSitsAboveBvmsw) {
  // Standard magnetostatic ordering at equal internal field: surface mode
  // above the backward-volume branch for every k > 0.
  const auto wg = paper_waveguide();
  const BvmswDispersion bv(wg, 1e5);
  const DamonEshbachDispersion de(wg, 1e5);
  for (const double k : {1e7, 5e7, 1e8, 5e8}) {
    EXPECT_GT(de.frequency(k), bv.frequency(k)) << "k = " << k;
  }
}

}  // namespace
