// Unit tests for the spin-wave dispersion library.
#include <gtest/gtest.h>

#include <cmath>

#include "dispersion/bvmsw_de.h"
#include "dispersion/fvmsw.h"
#include "dispersion/local_1d.h"
#include "dispersion/model.h"
#include "dispersion/waveguide.h"
#include "mag/demag_factors.h"
#include "mag/material.h"
#include "util/constants.h"
#include "util/error.h"

namespace {

using namespace sw::disp;
using sw::mag::make_fecob;
using sw::mag::make_yig;
using sw::util::Error;
using sw::util::kGammaMu0;
using sw::util::kTwoPi;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

// -------------------------------------------------------------------- fvmsw

TEST(Fvmsw, FmrMatchesClosedForm) {
  const Waveguide wg = paper_waveguide();
  const FvmswDispersion fv(wg);
  // At k = 0 the dispersion reduces to the width-quantised mode frequency;
  // evaluate the closed form independently.
  const auto& m = wg.material;
  const double hi = m.anisotropy_field() - m.Ms;
  EXPECT_NEAR(fv.internal_field(), hi, 1e-3);
  EXPECT_GT(fv.fmr(), kGammaMu0 * hi / kTwoPi);  // quantisation raises it
}

TEST(Fvmsw, MonotonicallyIncreasing) {
  const FvmswDispersion fv(paper_waveguide());
  double prev = fv.frequency(0.0);
  for (double k = 1e6; k <= 3e8; k *= 1.5) {
    const double f = fv.frequency(k);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(Fvmsw, PaperFrequenciesAreReachable) {
  // All eight channel frequencies used in the paper (10..80 GHz) must lie
  // in the band and have nanometre-scale wavelengths.
  const FvmswDispersion fv(paper_waveguide());
  for (int i = 1; i <= 8; ++i) {
    const double f = 1e10 * i;
    const double lambda = fv.wavelength(f);
    EXPECT_GT(lambda, 5e-9);
    EXPECT_LT(lambda, 500e-9);
  }
}

TEST(Fvmsw, WavelengthOrderingMatchesPaper) {
  // Higher frequency -> shorter wavelength; the paper's lambda range spans
  // roughly 170 nm (10 GHz) down to ~22 nm (80 GHz).
  const FvmswDispersion fv(paper_waveguide());
  const double l10 = fv.wavelength(1e10);
  const double l80 = fv.wavelength(8e10);
  EXPECT_GT(l10, l80);
  EXPECT_NEAR(l10, 166e-9, 40e-9);
  EXPECT_NEAR(l80, 22e-9, 8e-9);
}

TEST(Fvmsw, InversionRoundTrip) {
  const FvmswDispersion fv(paper_waveguide());
  for (double f = 1.2e10; f < 9e10; f *= 1.7) {
    const double k = fv.k_from_frequency(f);
    EXPECT_NEAR(fv.frequency(k), f, 1e-3 * f);
  }
}

TEST(Fvmsw, WavelengthKRelation) {
  const FvmswDispersion fv(paper_waveguide());
  const double f = 3e10;
  EXPECT_NEAR(fv.wavelength(f) * fv.k_from_frequency(f), kTwoPi, 1e-6);
}

TEST(Fvmsw, GroupVelocityPositiveAndIncreasing) {
  const FvmswDispersion fv(paper_waveguide());
  const double vg10 = fv.group_velocity_at_frequency(1e10);
  const double vg80 = fv.group_velocity_at_frequency(8e10);
  EXPECT_GT(vg10, 0.0);
  EXPECT_GT(vg80, vg10);  // exchange-dominated regime accelerates
}

TEST(Fvmsw, GroupVelocityMatchesFiniteDifference) {
  const FvmswDispersion fv(paper_waveguide());
  const double k = 1e8;
  const double h = 1e4;
  const double fd =
      kTwoPi * (fv.frequency(k + h) - fv.frequency(k - h)) / (2.0 * h);
  EXPECT_NEAR(fv.group_velocity(k), fd, 1e-3 * std::abs(fd));
}

TEST(Fvmsw, WiderGuideLowersFmr) {
  // The paper's width-variation observation: FMR decreases with width.
  Waveguide narrow = paper_waveguide();
  Waveguide wide = paper_waveguide();
  wide.width = 500e-9;
  EXPECT_LT(FvmswDispersion(wide).fmr(), FvmswDispersion(narrow).fmr());
}

TEST(Fvmsw, HigherWidthModeRaisesFrequency) {
  Waveguide wg = paper_waveguide();
  const FvmswDispersion m1(wg);
  wg.width_mode = 2;
  const FvmswDispersion m2(wg);
  EXPECT_GT(m2.fmr(), m1.fmr());
}

TEST(Fvmsw, ExternalFieldStiffensTheBand) {
  const Waveguide wg = paper_waveguide();
  const FvmswDispersion biased(wg, 1e5);
  const FvmswDispersion bare(wg);
  EXPECT_GT(biased.fmr(), bare.fmr());
}

TEST(Fvmsw, RejectsInPlaneFilm) {
  Waveguide wg = paper_waveguide();
  wg.material.Ku = 0.0;  // no PMA: Hk < Ms
  EXPECT_THROW(FvmswDispersion{wg}, Error);
}

TEST(Fvmsw, RejectsFrequencyBelowBand) {
  const FvmswDispersion fv(paper_waveguide());
  EXPECT_THROW(fv.k_from_frequency(0.5 * fv.fmr()), Error);
  EXPECT_THROW(fv.wavelength(-1.0), Error);
}

// ---------------------------------------------------------------- bvmsw/de

TEST(Bvmsw, StartsAtInternalFieldFmr) {
  Waveguide wg = paper_waveguide();
  wg.material = make_yig();
  const double h = 5e4;
  const BvmswDispersion bv(wg, h);
  const double w0 = kGammaMu0 * h;
  const double wm = kGammaMu0 * wg.material.Ms;
  EXPECT_NEAR(bv.frequency(0.0), std::sqrt(w0 * (w0 + wm)) / kTwoPi, 1e6);
}

TEST(Bvmsw, DipoleBranchIsBackward) {
  // BVMSW frequency initially *decreases* with k (negative group velocity)
  // before exchange lifts it: the defining feature of the geometry.
  Waveguide wg = paper_waveguide();
  wg.material = make_yig();
  wg.thickness = 30e-9;
  const BvmswDispersion bv(wg, 5e4);
  EXPECT_LT(bv.frequency(5e6), bv.frequency(0.0));
}

TEST(Bvmsw, ExchangeDominatesAtLargeK) {
  Waveguide wg = paper_waveguide();
  wg.material = make_yig();
  const BvmswDispersion bv(wg, 5e4);
  EXPECT_GT(bv.frequency(5e8), bv.frequency(0.0));
}

TEST(DamonEshbach, LiesAboveBvmsw) {
  // For the same film and field, the surface branch sits above the backward
  // volume branch at every k > 0.
  Waveguide wg = paper_waveguide();
  wg.material = make_yig();
  wg.thickness = 30e-9;
  const BvmswDispersion bv(wg, 5e4);
  const DamonEshbachDispersion de(wg, 5e4);
  for (double k = 1e6; k < 1e8; k *= 3.0) {
    EXPECT_GT(de.frequency(k), bv.frequency(k));
  }
}

TEST(DamonEshbach, ForwardBranch) {
  Waveguide wg = paper_waveguide();
  wg.material = make_yig();
  wg.thickness = 30e-9;
  const DamonEshbachDispersion de(wg, 5e4);
  EXPECT_GT(de.frequency(1e7), de.frequency(0.0));
}

TEST(BvmswDe, RejectNonPositiveField) {
  const Waveguide wg = paper_waveguide();
  EXPECT_THROW(BvmswDispersion(wg, 0.0), Error);
  EXPECT_THROW(DamonEshbachDispersion(wg, -1.0), Error);
}

// ----------------------------------------------------------------- local 1d

TEST(Local1D, FmrMatchesKittelForm) {
  const auto mat = make_fecob();
  const auto nf = sw::mag::demag_factors_waveguide(50e-9, 1e-9);
  const LocalDemag1DDispersion d(mat, nf);
  const double hi = mat.anisotropy_field() - nf.z * mat.Ms;
  const double expect = kGammaMu0 *
                        std::sqrt((hi + nf.x * mat.Ms) *
                                  (hi + nf.y * mat.Ms)) /
                        kTwoPi;
  EXPECT_NEAR(d.fmr(), expect, 1.0);
}

TEST(Local1D, FromWaveguideEqualsManualFactors) {
  const Waveguide wg = paper_waveguide();
  const auto d1 = LocalDemag1DDispersion::from_waveguide(wg);
  const auto nf = sw::mag::demag_factors_waveguide(wg.width, wg.thickness);
  const LocalDemag1DDispersion d2(wg.material, nf);
  EXPECT_NEAR(d1.frequency(1e8), d2.frequency(1e8), 1.0);
}

TEST(Local1D, DiscretizationLowersHighKFrequencies) {
  const auto mat = make_fecob();
  const auto nf = sw::mag::demag_factors_waveguide(50e-9, 1e-9);
  LocalDemag1DDispersion cont(mat, nf);
  LocalDemag1DDispersion disc(mat, nf);
  disc.set_discretization(2e-9);
  const double k = 2.5e8;  // ~ lambda = 25 nm
  EXPECT_LT(disc.frequency(k), cont.frequency(k));
  // At low k the difference is negligible.
  EXPECT_NEAR(disc.frequency(1e7), cont.frequency(1e7), 1e6);
}

TEST(Local1D, EllipticityReflectsDemagAsymmetry) {
  const auto mat = make_fecob();
  const auto nf = sw::mag::demag_factors_waveguide(50e-9, 1e-9);
  const LocalDemag1DDispersion d(mat, nf);
  // Ny > Nx for the flat cross-section -> H2 > H1 -> ellipticity > 1.
  EXPECT_GT(d.ellipticity(0.0), 1.0);
  // Exchange dominates at large k: precession tends circular.
  EXPECT_LT(std::abs(d.ellipticity(5e8) - 1.0),
            std::abs(d.ellipticity(0.0) - 1.0));
}

TEST(Local1D, WiderGuideLowersFmr) {
  Waveguide narrow = paper_waveguide();
  Waveguide wide = paper_waveguide();
  wide.width = 500e-9;
  const auto dn = LocalDemag1DDispersion::from_waveguide(narrow);
  const auto dw = LocalDemag1DDispersion::from_waveguide(wide);
  EXPECT_LT(dw.fmr(), dn.fmr());
}

TEST(Local1D, RejectsUnstableFilm) {
  auto mat = make_fecob();
  mat.Ku = 1e4;  // far below shape anisotropy
  EXPECT_THROW(LocalDemag1DDispersion(mat, {0.0, 0.05, 0.95}), Error);
}

// ---------------------------------------------------------- generic model

TEST(Model, PhaseVelocityDefinition) {
  const FvmswDispersion fv(paper_waveguide());
  const double k = 1e8;
  EXPECT_NEAR(fv.phase_velocity(k), kTwoPi * fv.frequency(k) / k, 1e-6);
  EXPECT_THROW(fv.phase_velocity(0.0), Error);
}

TEST(Model, KFromFrequencyAtBandBottomIsZero) {
  const FvmswDispersion fv(paper_waveguide());
  EXPECT_DOUBLE_EQ(fv.k_from_frequency(fv.frequency(0.0)), 0.0);
}

}  // namespace
