// Serving-layer tests: canonical layout hashing (stability across designs
// and process runs), plan-cache hit/miss/eviction accounting and
// single-build-under-contention, wire-format round trips with hostile
// input rejection, admission-control shed-vs-block semantics, and the
// EvaluatorService end-to-end against the scalar gate path.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <limits>
#include <mutex>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "compile/lower.h"
#include "compile/synth.h"
#include "compile/truth_table.h"
#include "core/encoding.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "mag/material.h"
#include "serve/admission.h"
#include "serve/layout_hash.h"
#include "serve/plan_cache.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "util/error.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/eval_program.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw::core;
using namespace sw::serve;
using sw::disp::FvmswDispersion;
using sw::disp::Waveguide;
using sw::wavesim::BatchEvaluator;
using sw::wavesim::WaveEngine;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

std::vector<double> channel_frequencies(std::size_t n) {
  std::vector<double> f;
  for (std::size_t i = 1; i <= n; ++i) {
    f.push_back(1e10 * static_cast<double>(i));
  }
  return f;
}

struct ServeFixture {
  Waveguide wg = paper_waveguide();
  FvmswDispersion model{wg};
  InlineGateDesigner designer{model};
  WaveEngine engine{model, wg.material.alpha};

  GateLayout majority_layout(std::size_t m, std::size_t n) const {
    GateSpec spec;
    spec.num_inputs = m;
    spec.frequencies = channel_frequencies(n);
    return designer.design(spec);
  }
};

std::vector<std::uint8_t> random_matrix(std::size_t rows, std::size_t cols,
                                        unsigned seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution coin(0.5);
  std::vector<std::uint8_t> m(rows * cols);
  for (auto& b : m) b = coin(rng) ? 1 : 0;
  return m;
}

// --------------------------------------------------------------------------
// Layout hashing.

TEST(LayoutHash, StableAcrossIndependentDesigns) {
  const ServeFixture fix;
  const auto a = fix.majority_layout(3, 4);
  const auto b = fix.majority_layout(3, 4);
  EXPECT_EQ(canonical_layout_bytes(a), canonical_layout_bytes(b));
  EXPECT_EQ(hash_layout(a), hash_layout(b));
  EXPECT_TRUE(LayoutKey::from(a) == LayoutKey::from(b));
}

TEST(LayoutHash, SensitiveToGeometryOpsAndFrequencies) {
  const ServeFixture fix;
  const auto base = fix.majority_layout(3, 4);
  const auto h = hash_layout(base);

  EXPECT_NE(h, hash_layout(fix.majority_layout(5, 4)));  // geometry
  EXPECT_NE(h, hash_layout(fix.majority_layout(3, 5)));  // frequencies

  GateSpec inverted_spec;
  inverted_spec.num_inputs = 3;
  inverted_spec.frequencies = channel_frequencies(4);
  inverted_spec.invert_output = {1, 0, 0, 0};
  const auto inverted = fix.designer.design(inverted_spec);
  EXPECT_NE(h, hash_layout(inverted));  // ops

  auto nudged = base;
  nudged.sources[0].amplitude += 1e-12;
  EXPECT_NE(h, hash_layout(nudged));  // any field perturbs the hash
}

// The golden pin is what makes "stable across process runs" a tested
// property rather than a promise: the constant was produced by a separate
// process, so any change to the canonical serialisation or to the hash
// fold breaks this test.
TEST(LayoutHash, GoldenValuePinsCanonicalFormat) {
  GateLayout lay;
  lay.spec.num_inputs = 1;
  lay.spec.frequencies = {1.0e10};
  lay.wavelengths = {1.0e-6};
  lay.multiple = {1};
  lay.spacing = {1.0e-6};
  lay.sources = {{0, 0, 0.0, 1.0}};
  lay.detectors = {{0, 2.0e-6, false}};
  EXPECT_EQ(hash_layout(lay), 0xf733003c29d86516ull);
}

TEST(LayoutHash, ChunkedFnvRejectsLengthAliases) {
  const std::vector<std::uint8_t> one{1};
  const std::vector<std::uint8_t> one_padded{1, 0};
  const std::vector<std::uint8_t> empty;
  EXPECT_NE(chunked_fnv1a64(one), chunked_fnv1a64(one_padded));
  EXPECT_NE(chunked_fnv1a64(empty), chunked_fnv1a64({one_padded.data() + 1, 1}));
}

// --------------------------------------------------------------------------
// Plan cache.

TEST(PlanCache, HitMissEvictionCounters) {
  const ServeFixture fix;
  PlanCache cache(fix.engine, /*capacity=*/2);
  const auto a = fix.majority_layout(3, 2);
  const auto b = fix.majority_layout(3, 3);
  const auto c = fix.majority_layout(3, 4);

  EXPECT_EQ(cache.try_get(a), nullptr);  // cold: no entry, no miss counted
  EXPECT_FALSE(cache.get_or_build(a).hit);
  EXPECT_TRUE(cache.get_or_build(a).hit);
  EXPECT_NE(cache.try_get(a), nullptr);
  EXPECT_FALSE(cache.get_or_build(b).hit);
  EXPECT_EQ(cache.size(), 2u);

  // Inserting c evicts the LRU entry, which is a (b was touched later).
  EXPECT_FALSE(cache.get_or_build(c).hit);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.try_get(a), nullptr);
  EXPECT_NE(cache.try_get(b), nullptr);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);  // get_or_build(a) hit + try_get a + try_get b
}

TEST(PlanCache, CachedPlanEvaluatesLikeAFreshEvaluator) {
  const ServeFixture fix;
  PlanCache cache(fix.engine, 4);
  const auto layout = fix.majority_layout(3, 4);
  const auto plan = cache.get_or_build(layout).plan;
  ASSERT_NE(plan, nullptr);

  const DataParallelGate gate(layout, fix.engine);
  const BatchEvaluator fresh(gate, {.num_threads = 1});
  const auto matrix = random_matrix(64, fresh.slot_count(), /*seed=*/5);
  EXPECT_EQ(plan->evaluator().evaluate_bits(64, matrix),
            fresh.evaluate_bits(64, matrix));
}

TEST(PlanCache, ConcurrentLookupsBuildOnce) {
  const ServeFixture fix;
  PlanCache cache(fix.engine, 4);
  const auto layout = fix.majority_layout(3, 4);

  constexpr std::size_t kThreads = 8;
  std::vector<PlanCache::PlanPtr> got(kThreads);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        got[t] = cache.get_or_build(layout).plan;
      });
    }
    for (auto& th : threads) th.join();
  }
  for (const auto& p : got) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p, got[0]);  // one shared plan, not one per thread
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kThreads - 1);
}

TEST(PlanCache, FailedBuildPropagatesAndRetries) {
  const ServeFixture fix;
  PlanCache cache(fix.engine, 4);
  auto broken = fix.majority_layout(3, 2);
  broken.sources[0].x += 1e-9;  // violates the layout invariants

  EXPECT_THROW((void)cache.get_or_build(broken), sw::util::Error);
  EXPECT_EQ(cache.size(), 0u);  // poisoned entry removed, retry possible
  EXPECT_THROW((void)cache.get_or_build(broken), sw::util::Error);
}

// The historical hazard this subsystem retires by design: many threads
// building evaluators against one shared engine (the engine memoisation is
// now mutex-guarded, and the cache serialises per-key construction).
TEST(PlanCache, ConcurrentEvaluatorConstructionOnSharedEngine) {
  const ServeFixture fix;
  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<std::uint8_t>> results(kThreads);
  const auto patterns = all_patterns(3);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Distinct layouts force fresh engine-cache misses concurrently.
        const ServeFixture local_design;  // designer only; engine is shared
        const auto layout =
            local_design.majority_layout(3, 1 + (t % 4) + 1);
        const DataParallelGate gate(layout, fix.engine);
        const BatchEvaluator evaluator(gate, {.num_threads = 1});
        std::vector<std::uint8_t> packed(patterns.size() *
                                         evaluator.slot_count());
        for (std::size_t w = 0; w < patterns.size(); ++w) {
          for (std::size_t ch = 0; ch < layout.spec.frequencies.size();
               ++ch) {
            for (std::size_t in = 0; in < 3; ++in) {
              packed[w * evaluator.slot_count() + ch * 3 + in] =
                  patterns[w][in];
            }
          }
        }
        results[t] = evaluator.evaluate_bits(patterns.size(), packed);
      });
    }
    for (auto& th : threads) th.join();
  }
  // Cross-check every thread's decode against a serial evaluation on a
  // fresh engine.
  for (std::size_t t = 0; t < kThreads; ++t) {
    const ServeFixture serial;
    const auto layout = serial.majority_layout(3, 1 + (t % 4) + 1);
    const DataParallelGate gate(layout, serial.engine);
    for (std::size_t w = 0; w < patterns.size(); ++w) {
      const auto want = gate.evaluate_uniform(patterns[w]);
      for (const auto& r : want) {
        EXPECT_EQ(results[t][w * layout.spec.frequencies.size() + r.channel],
                  r.logic);
      }
    }
  }
}

// --------------------------------------------------------------------------
// Wire format.

TEST(WireFormat, RequestRoundTripsBitExact) {
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 3);  // 9 cols: padding in play
  const auto matrix = random_matrix(17, 9, /*seed=*/3);
  const auto frame = make_request_frame(layout, /*word_offset=*/1234, 17,
                                        matrix);
  const auto decoded = decode_frame(encode_frame(frame));

  EXPECT_EQ(decoded.kind, FrameKind::kRequest);
  EXPECT_EQ(decoded.layout_hash, hash_layout(layout));
  EXPECT_EQ(decoded.word_offset, 1234u);
  EXPECT_EQ(decoded.num_words, 17u);
  EXPECT_EQ(decoded.num_cols, 9u);
  ASSERT_TRUE(decoded.spec.has_value());
  EXPECT_EQ(*decoded.spec, layout.spec);  // field-wise, doubles bit-exact
  EXPECT_EQ(decoded.matrix, matrix);
}

TEST(WireFormat, ResponseRoundTripsBitExact) {
  const auto matrix = random_matrix(9, 5, /*seed=*/11);
  SweepFrame request;
  request.layout_hash = 0xabcdef0123456789ull;
  request.word_offset = 7;
  request.num_words = 9;
  const auto frame = make_response_frame(request, /*num_channels=*/5, matrix);
  const auto decoded = decode_frame(encode_frame(frame));
  EXPECT_EQ(decoded.kind, FrameKind::kResponse);
  EXPECT_EQ(decoded.layout_hash, request.layout_hash);
  EXPECT_EQ(decoded.word_offset, 7u);
  EXPECT_FALSE(decoded.spec.has_value());
  EXPECT_EQ(decoded.matrix, matrix);
}

TEST(WireFormat, RejectsTruncationAtEveryBoundary) {
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 2);
  const auto bytes = encode_frame(
      make_request_frame(layout, 0, 8, random_matrix(8, 6, /*seed=*/7)));
  // Every strict prefix must be rejected, wherever the cut lands.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{8}, std::size_t{63},
        bytes.size() - 17, bytes.size() - 1}) {
    EXPECT_THROW((void)decode_frame({bytes.data(), keep}), sw::util::Error)
        << "prefix of " << keep << " bytes slipped through";
  }
}

TEST(WireFormat, RejectsTrailingGarbage) {
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 2);
  auto bytes = encode_frame(
      make_request_frame(layout, 0, 4, random_matrix(4, 6, /*seed=*/9)));
  bytes.push_back(0);
  EXPECT_THROW((void)decode_frame(bytes), sw::util::Error);
}

TEST(WireFormat, RejectsCorruptMagicVersionKindAndBody) {
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 2);
  const auto good = encode_frame(
      make_request_frame(layout, 0, 8, random_matrix(8, 6, /*seed=*/13)));

  auto bad = good;
  bad[0] ^= 0xFF;  // magic
  EXPECT_THROW((void)decode_frame(bad), sw::util::Error);

  bad = good;
  bad[4] ^= 0xFF;  // version
  EXPECT_THROW((void)decode_frame(bad), sw::util::Error);

  bad = good;
  bad[6] = 9;  // kind
  EXPECT_THROW((void)decode_frame(bad), sw::util::Error);

  bad = good;
  bad.back() ^= 0x01;  // payload bit flip -> checksum mismatch
  EXPECT_THROW((void)decode_frame(bad), sw::util::Error);

  bad = good;
  bad[70] ^= 0xFF;  // spec block flip -> checksum mismatch
  EXPECT_THROW((void)decode_frame(bad), sw::util::Error);
}

TEST(WireFormat, RejectsShapeInconsistencies) {
  // Response carrying a spec.
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 2);
  auto frame = make_request_frame(layout, 0, 2, random_matrix(2, 6, 1));
  frame.kind = FrameKind::kResponse;
  EXPECT_THROW((void)encode_frame(frame), sw::util::Error);

  // Matrix not matching the declared dimensions.
  auto bad = make_request_frame(layout, 0, 2, random_matrix(2, 6, 1));
  bad.num_words = 3;
  EXPECT_THROW((void)encode_frame(bad), sw::util::Error);
}

TEST(WireFormat, FileRoundTrip) {
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 4);
  const auto matrix = random_matrix(32, 12, /*seed=*/21);
  const auto path = testing::TempDir() + "swlogic_wire_roundtrip.req";
  write_frame_file(path, make_request_frame(layout, 64, 32, matrix));
  const auto decoded = read_frame_file(path);
  EXPECT_EQ(decoded.matrix, matrix);
  EXPECT_EQ(decoded.layout_hash, hash_layout(layout));
  EXPECT_EQ(decoded.word_offset, 64u);
  std::remove(path.c_str());
  EXPECT_THROW((void)read_frame_file(path), sw::util::Error);
}

// --------------------------------------------------------------------------
// Admission control.

TEST(Admission, ShedsOnQueueBudget) {
  AdmissionController adm({.max_queued_requests = 2,
                           .max_inflight_words = 0,
                           .policy = OverloadPolicy::kShed});
  adm.admit(10);
  adm.admit(10);
  EXPECT_THROW(adm.admit(10), OverloadError);
  EXPECT_EQ(adm.shed_total(), 1u);
  adm.mark_dequeued();
  adm.admit(10);  // queue slot freed
  EXPECT_EQ(adm.queued(), 2u);
  EXPECT_EQ(adm.inflight_words(), 30u);
}

TEST(Admission, ShedsOnWordBudgetButAdmitsOversizedWhenIdle) {
  AdmissionController adm({.max_queued_requests = 0,
                           .max_inflight_words = 100,
                           .policy = OverloadPolicy::kShed});
  adm.admit(1000);  // oversized but idle: must be admitted
  EXPECT_THROW(adm.admit(1), OverloadError);
  adm.mark_dequeued();
  adm.release(1000);
  adm.admit(60);
  adm.admit(40);  // exactly at the budget
  EXPECT_THROW(adm.admit(1), OverloadError);
}

TEST(Admission, BlockPolicyWaitsForCapacity) {
  AdmissionController adm({.max_queued_requests = 1,
                           .max_inflight_words = 0,
                           .policy = OverloadPolicy::kBlock});
  adm.admit(5);
  std::atomic<bool> admitted{false};
  std::thread blocked([&] {
    adm.admit(5);
    admitted.store(true);
  });
  // The blocked submitter registers before it parks; once it has, freeing
  // the queue slot must let it through.
  while (adm.blocked_total() == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  adm.mark_dequeued();
  blocked.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(adm.queued(), 1u);
}

TEST(Admission, CloseWakesBlockedSubmitters) {
  AdmissionController adm({.max_queued_requests = 1,
                           .max_inflight_words = 0,
                           .policy = OverloadPolicy::kBlock});
  adm.admit(1);
  std::atomic<bool> threw{false};
  std::thread blocked([&] {
    try {
      adm.admit(1);
    } catch (const sw::util::Error&) {
      threw.store(true);
    }
  });
  while (adm.blocked_total() == 0) std::this_thread::yield();
  adm.close();
  blocked.join();
  EXPECT_TRUE(threw.load());
  EXPECT_THROW(adm.admit(1), sw::util::Error);
}

// --------------------------------------------------------------------------
// EvaluatorService end to end.

/// Test gate that lets a test hold the (single) service worker in place:
/// the first request to start signals `entered` and then parks until
/// open(); later requests pass straight through once opened.
struct WorkerGate {
  std::mutex m;
  std::condition_variable cv;
  bool open_flag = false;
  std::size_t entered = 0;

  std::function<void(std::uint64_t)> hook() {
    return [this](std::uint64_t) {
      std::unique_lock<std::mutex> lock(m);
      ++entered;
      cv.notify_all();
      cv.wait(lock, [this] { return open_flag; });
    };
  }
  void wait_entered() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [this] { return entered > 0; });
  }
  void open() {
    std::lock_guard<std::mutex> lock(m);
    open_flag = true;
    cv.notify_all();
  }
};

TEST(EvaluatorService, MatchesScalarGateAndCachesPlans) {
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 4);
  EvaluatorService svc(fix.model, fix.wg.material.alpha);

  const DataParallelGate gate(layout, fix.engine);
  const BatchEvaluator reference(gate, {.num_threads = 1});
  const auto matrix = random_matrix(96, reference.slot_count(), /*seed=*/31);

  auto first = svc.submit(EvalRequest::for_layout(layout, matrix, 96)).get();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.num_channels, 4u);
  EXPECT_EQ(first.bits, reference.evaluate_bits(96, matrix));

  auto second = svc.submit(EvalRequest::for_layout(layout, matrix, 96)).get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.bits, first.bits);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_GE(stats.cache.hits, 1u);
  EXPECT_EQ(stats.shed, 0u);
  // The stats surface which evaluation kernel and precision requests
  // dispatch to, so operators can tell the scalar fallback from the SIMD
  // path and a forced-f32 process from the default double one.
  EXPECT_EQ(stats.kernel, std::string(sw::wavesim::active_kernel_name()));
  EXPECT_EQ(stats.precision,
            std::string(sw::wavesim::precision_name(
                sw::wavesim::active_precision())));
}

TEST(EvaluatorService, NestedBitsConvenienceMatchesScalarLoop) {
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 2);
  EvaluatorService svc(fix.model, fix.wg.material.alpha);
  const DataParallelGate gate(layout, fix.engine);

  std::mt19937 rng(77);
  std::bernoulli_distribution coin(0.5);
  std::vector<std::vector<Bits>> batch(40);
  for (auto& word : batch) {
    word.assign(2, Bits(3));
    for (auto& bits : word) {
      for (auto& b : bits) b = coin(rng) ? 1 : 0;
    }
  }
  const auto result = svc.submit(EvalRequest::for_batch(layout, batch)).get();
  for (std::size_t w = 0; w < batch.size(); ++w) {
    const auto want = gate.evaluate(batch[w]);
    for (const auto& r : want) {
      EXPECT_EQ(result.bit(w, r.channel), r.logic) << "word " << w;
    }
  }
}

TEST(EvaluatorService, DistinctLayoutsInterleaveThroughTheCache) {
  const ServeFixture fix;
  ServiceOptions options;
  options.plan_cache_capacity = 2;
  EvaluatorService svc(fix.model, fix.wg.material.alpha, options);

  const auto a = fix.majority_layout(3, 2);
  const auto b = fix.majority_layout(3, 3);
  const auto c = fix.majority_layout(3, 4);
  for (int round = 0; round < 3; ++round) {
    for (const auto* lay : {&a, &b, &c}) {
      const std::size_t slots =
          lay->spec.frequencies.size() * lay->spec.num_inputs;
      const auto matrix = random_matrix(8, slots, /*seed=*/round + 1);
      const auto result = svc.submit(EvalRequest::for_layout(*lay, matrix, 8)).get();
      const DataParallelGate gate(*lay, fix.engine);
      const BatchEvaluator reference(gate, {.num_threads = 1});
      EXPECT_EQ(result.bits, reference.evaluate_bits(8, matrix));
    }
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, 9u);
  // Capacity 2 over 3 interleaved layouts: the round-robin order makes
  // every access after the warm-up round a miss-plus-eviction.
  EXPECT_GE(stats.cache.evictions, 6u);
}

TEST(EvaluatorService, SubmitValidatesShapeUpFront) {
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 2);
  EvaluatorService svc(fix.model, fix.wg.material.alpha);
  EXPECT_THROW((void)svc.submit(EvalRequest::for_layout(layout, std::vector<std::uint8_t>(5), 1)),
               sw::util::Error);
  // A word count whose product with slot_count wraps size_t must fail
  // synchronously here — before admission charges a near-SIZE_MAX inflight
  // word budget that would starve every other submitter.
  const std::size_t wrap =
      (std::numeric_limits<std::size_t>::max() / 6) + 1;  // 6 slots
  EXPECT_THROW((void)svc.submit(EvalRequest::for_layout(layout, std::vector<std::uint8_t>(6), wrap)),
               sw::util::Error);
  EXPECT_EQ(svc.stats().inflight_words, 0u);
}

TEST(EvaluatorService, BrokenLayoutFailsThroughTheFuture) {
  const ServeFixture fix;
  auto broken = fix.majority_layout(3, 2);
  broken.sources[0].x += 1e-9;  // invalid geometry: plan build throws
  EvaluatorService svc(fix.model, fix.wg.material.alpha);
  auto future = svc.submit(EvalRequest::for_layout(broken, std::vector<std::uint8_t>(6), 1));
  EXPECT_THROW((void)future.get(), sw::util::Error);
  EXPECT_EQ(svc.stats().completed, 1u);
  EXPECT_EQ(svc.stats().inflight_words, 0u);
}

TEST(EvaluatorService, ShedsWhenSaturated) {
  const ServeFixture fix;
  WorkerGate gate;
  ServiceOptions options;
  options.num_threads = 1;
  options.admission.max_queued_requests = 1;
  options.admission.policy = OverloadPolicy::kShed;
  options.on_request_start = gate.hook();
  EvaluatorService svc(fix.model, fix.wg.material.alpha, options);

  const auto layout = fix.majority_layout(3, 2);
  const auto matrix = random_matrix(4, 6, /*seed=*/41);

  // r1 is picked up by the single worker (leaves the queue) and parks in
  // the gate; r2 then occupies the one queue slot; r3 must shed.
  auto r1 = svc.submit(EvalRequest::for_layout(layout, matrix, 4));
  gate.wait_entered();
  auto r2 = svc.submit(EvalRequest::for_layout(layout, matrix, 4));
  EXPECT_THROW((void)svc.submit(EvalRequest::for_layout(layout, matrix, 4)), OverloadError);
  EXPECT_EQ(svc.stats().shed, 1u);

  gate.open();
  EXPECT_EQ(r1.get().bits, r2.get().bits);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(EvaluatorService, BlocksWhenSaturatedAndResumes) {
  const ServeFixture fix;
  WorkerGate gate;
  ServiceOptions options;
  options.num_threads = 1;
  options.admission.max_queued_requests = 1;
  options.admission.policy = OverloadPolicy::kBlock;
  options.on_request_start = gate.hook();
  EvaluatorService svc(fix.model, fix.wg.material.alpha, options);

  const auto layout = fix.majority_layout(3, 2);
  const auto matrix = random_matrix(4, 6, /*seed=*/43);

  auto r1 = svc.submit(EvalRequest::for_layout(layout, matrix, 4));
  gate.wait_entered();
  auto r2 = svc.submit(EvalRequest::for_layout(layout, matrix, 4));

  std::future<ResultBatch> r3;
  std::thread submitter([&] { r3 = svc.submit(EvalRequest::for_layout(layout, matrix, 4)); });
  // The submitter must actually block (registered, not admitted) …
  while (svc.stats().blocked == 0) std::this_thread::yield();
  EXPECT_EQ(svc.stats().submitted, 2u);

  // … and proceed once the worker drains the queue.
  gate.open();
  submitter.join();
  const auto first = r1.get().bits;
  EXPECT_EQ(r3.get().bits, first);
  EXPECT_EQ(r2.get().bits, first);
  EXPECT_EQ(svc.stats().completed, 3u);
  EXPECT_EQ(svc.stats().shed, 0u);
}

TEST(LatencyReservoir, NearestRankPercentiles) {
  sw::serve::LatencyReservoir reservoir(256);
  for (int i = 1; i <= 100; ++i) {
    reservoir.record(static_cast<double>(i));
  }
  const auto summary = reservoir.summary();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.p50_s, 50.0);
  EXPECT_DOUBLE_EQ(summary.p95_s, 95.0);
  EXPECT_DOUBLE_EQ(summary.p99_s, 99.0);
}

TEST(LatencyReservoir, WindowTracksRecentRequestsOnly) {
  sw::serve::LatencyReservoir reservoir(10);
  for (int i = 1; i <= 1000; ++i) {
    reservoir.record(static_cast<double>(i));
  }
  const auto summary = reservoir.summary();
  EXPECT_EQ(summary.count, 1000u);
  // Only 991..1000 remain in the window.
  EXPECT_DOUBLE_EQ(summary.p50_s, 995.0);
  EXPECT_DOUBLE_EQ(summary.p99_s, 1000.0);
}

TEST(LatencyReservoir, EmptySummaryIsZero) {
  const auto summary = sw::serve::LatencyReservoir(8).summary();
  EXPECT_EQ(summary.count, 0u);
  EXPECT_DOUBLE_EQ(summary.p50_s, 0.0);
  EXPECT_DOUBLE_EQ(summary.p99_s, 0.0);
}

TEST(LatencyReservoir, NearestRankBoundaries) {
  // n = 1: every percentile is the single sample (rank ceil(q) == 1).
  {
    sw::serve::LatencyReservoir reservoir(8);
    reservoir.record(7.0);
    const auto summary = reservoir.summary();
    EXPECT_DOUBLE_EQ(summary.p50_s, 7.0);
    EXPECT_DOUBLE_EQ(summary.p95_s, 7.0);
    EXPECT_DOUBLE_EQ(summary.p99_s, 7.0);
  }
  // n = 2: p50 must be the *lower* sample — ceil(0.5 * 2) is exactly 1,
  // the boundary a pseudo-ceil (q * n + eps) overshoots to rank 2.
  {
    sw::serve::LatencyReservoir reservoir(8);
    reservoir.record(2.0);
    reservoir.record(1.0);
    const auto summary = reservoir.summary();
    EXPECT_DOUBLE_EQ(summary.p50_s, 1.0);
    EXPECT_DOUBLE_EQ(summary.p95_s, 2.0);
    EXPECT_DOUBLE_EQ(summary.p99_s, 2.0);
  }
  // n = 100 recorded in descending order: q * n integral for all three
  // quantiles (ranks 50 / 95 / 99 exactly), and the result must not
  // depend on insertion order.
  {
    sw::serve::LatencyReservoir reservoir(256);
    for (int i = 100; i >= 1; --i) reservoir.record(static_cast<double>(i));
    const auto summary = reservoir.summary();
    EXPECT_DOUBLE_EQ(summary.p50_s, 50.0);
    EXPECT_DOUBLE_EQ(summary.p95_s, 95.0);
    EXPECT_DOUBLE_EQ(summary.p99_s, 99.0);
  }
}

TEST(EvaluatorService, TracksLatencyPercentilesAndCompletionHook) {
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 2);
  const auto matrix = random_matrix(4, 6, /*seed=*/31);

  std::mutex seen_mutex;
  std::vector<std::uint64_t> finished_ids;
  double last_latency = -1.0;
  ServiceOptions options;
  options.on_request_finish = [&](std::uint64_t id, double latency_s) {
    std::lock_guard<std::mutex> lock(seen_mutex);
    finished_ids.push_back(id);
    last_latency = latency_s;
  };
  EvaluatorService svc(fix.model, fix.wg.material.alpha, options);
  for (int i = 0; i < 5; ++i) {
    (void)svc.submit(EvalRequest::for_layout(layout, matrix, 4)).get();
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.latency.count, 5u);
  EXPECT_GT(stats.latency.p50_s, 0.0);
  EXPECT_LE(stats.latency.p50_s, stats.latency.p95_s);
  EXPECT_LE(stats.latency.p95_s, stats.latency.p99_s);
  std::lock_guard<std::mutex> lock(seen_mutex);
  EXPECT_EQ(finished_ids.size(), 5u);
  EXPECT_GE(last_latency, 0.0);
}

TEST(EvaluatorService, DestructorDrainsPendingRequests) {
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 2);
  const auto matrix = random_matrix(4, 6, /*seed=*/47);
  std::vector<std::future<ResultBatch>> futures;
  {
    EvaluatorService svc(fix.model, fix.wg.material.alpha);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(svc.submit(EvalRequest::for_layout(layout, matrix, 4)));
    }
    // Destructor runs here with requests still queued.
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().num_words, 4u);  // every future completed
  }
}

// --------------------------------------------------------------------------
// Compiled programs: wire v3 frames, shared-LRU cache entries, and the
// service end to end against the per-stage physics oracle.

/// Synthesize `bits` (an `num_inputs`-ary truth table, MSB-first column)
/// into a minimal majority cascade and lower it onto an n-channel fabric.
sw::wavesim::ProgramSpec synthesize_program(std::uint16_t bits,
                                            std::size_t num_inputs,
                                            std::size_t n) {
  sw::compile::Synthesizer synth;
  const auto circuit =
      synth.compile(sw::compile::TruthTable(num_inputs, bits));
  GateSpec base;
  base.num_inputs = 3;
  base.frequencies = channel_frequencies(n);
  return sw::compile::lower_to_program(circuit, base);
}

/// Per-stage physics oracle: run every stage as its own DataParallelGate,
/// gathering inputs per SlotSource by hand. Returns the stage-major
/// outputs (stage s, channel ch at s * n + ch); the last n entries are
/// the program's output word.
std::vector<std::uint8_t> physics_stage_outputs(
    const sw::wavesim::ProgramSpec& program,
    const InlineGateDesigner& designer, const WaveEngine& engine,
    std::span<const std::uint8_t> primary_row) {
  using sw::wavesim::SlotSource;
  const std::size_t n = program.num_channels();
  std::vector<std::uint8_t> stage_out;
  for (const auto& ss : program.stages) {
    const DataParallelGate gate(designer.design(ss.gate), engine);
    const std::size_t m = ss.gate.num_inputs;
    std::vector<Bits> inputs(n, Bits(m));
    for (std::size_t ch = 0; ch < n; ++ch) {
      for (std::size_t k = 0; k < m; ++k) {
        const auto& src = ss.sources[ch * m + k];
        bool v = false;
        switch (src.kind) {
          case SlotSource::Kind::kZero: v = false; break;
          case SlotSource::Kind::kOne: v = true; break;
          case SlotSource::Kind::kPrimary:
            v = primary_row[src.index] != 0;
            break;
          case SlotSource::Kind::kStage:
            v = stage_out[src.stage * n + src.index] != 0;
            break;
        }
        inputs[ch][k] = static_cast<std::uint8_t>(v != src.negated);
      }
    }
    const auto results = gate.evaluate(inputs);
    std::vector<std::uint8_t> out(n);
    for (const auto& r : results) out[r.channel] = r.logic;
    stage_out.insert(stage_out.end(), out.begin(), out.end());
  }
  return stage_out;
}

TEST(WireFormat, ProgramRequestRoundTripsBitExact) {
  const auto program = synthesize_program(0x1B, 3, 4);
  ASSERT_GE(program.num_stages(), 2u);  // a real cascade, not one gate
  const auto matrix = random_matrix(17, program.primary_slot_count(), 51);
  const auto frame =
      make_program_request_frame(program, /*word_offset=*/64, 17, matrix);
  const auto decoded = decode_frame(encode_frame(frame));

  EXPECT_EQ(decoded.kind, FrameKind::kRequest);
  EXPECT_EQ(decoded.layout_hash, hash_program(program));
  EXPECT_EQ(decoded.word_offset, 64u);
  EXPECT_EQ(decoded.num_words, 17u);
  EXPECT_EQ(decoded.num_cols, program.primary_slot_count());
  EXPECT_FALSE(decoded.spec.has_value());
  ASSERT_TRUE(decoded.program.has_value());
  EXPECT_EQ(*decoded.program, program);  // field-wise, doubles bit-exact
  EXPECT_EQ(decoded.matrix, matrix);
}

TEST(WireFormat, ProgramBlockCorruptionRejected) {
  const auto program = synthesize_program(0xE8, 3, 2);
  const auto good = encode_frame(
      make_program_request_frame(program, 0, 4,
                                 random_matrix(4, 6, /*seed=*/53)));
  // Flip one byte inside the program block: either the block's trailing
  // self-checksum or the frame checksum must catch it.
  auto bad = good;
  bad[80] ^= 0xFF;
  EXPECT_THROW((void)decode_frame(bad), sw::util::Error);
  // Truncation inside the program block must be caught, not read past.
  EXPECT_THROW((void)decode_frame({good.data(), good.size() - 9}),
               sw::util::Error);
}

TEST(WireFormat, VersionCeilingYieldsTypedUnsupportedError) {
  const auto program = synthesize_program(0xE8, 3, 2);
  const auto v3 = encode_frame(
      make_program_request_frame(program, 0, 2,
                                 random_matrix(2, 6, /*seed=*/55)));
  // A v2-pinned decoder (an old worker) must refuse the frame with the
  // typed error negotiation keys on — not a generic parse failure.
  try {
    (void)decode_frame(v3, kWireVersion);
    FAIL() << "expected UnsupportedVersionError";
  } catch (const UnsupportedVersionError& e) {
    EXPECT_EQ(e.version, kWireVersionProgram);
    EXPECT_NE(std::string(e.what()).find("unsupported wire version"),
              std::string::npos);
  }
  // The pinned ceiling still accepts plain v2 layout frames.
  const ServeFixture fix;
  const auto layout = fix.majority_layout(3, 2);
  const auto v2 = encode_frame(
      make_request_frame(layout, 0, 2, random_matrix(2, 6, /*seed=*/57)));
  EXPECT_TRUE(decode_frame(v2, kWireVersion).spec.has_value());
}

TEST(PlanCache, ProgramEntriesShareTheLruWithStats) {
  const ServeFixture fix;
  PlanCache cache(fix.engine, /*capacity=*/2, {.num_threads = 1},
                  &fix.designer);
  const auto program = synthesize_program(0x1B, 3, 2);

  EXPECT_EQ(cache.try_get_program(program), nullptr);  // cold: no entry
  const auto first = cache.get_or_build_program(program);
  EXPECT_FALSE(first.hit);
  ASSERT_NE(first.program, nullptr);
  EXPECT_EQ(first.program->num_stages(), program.num_stages());
  EXPECT_TRUE(cache.get_or_build_program(program).hit);
  EXPECT_NE(cache.try_get_program(program), nullptr);

  // Layout entries share the LRU: two layout builds push the program out.
  (void)cache.get_or_build(fix.majority_layout(3, 2));
  (void)cache.get_or_build(fix.majority_layout(3, 3));
  EXPECT_EQ(cache.try_get_program(program), nullptr);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);  // program + two layouts
  EXPECT_EQ(stats.hits, 2u);    // get_or_build_program hit + try_get
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.program_builds, 1u);
  EXPECT_EQ(stats.program_stages, first.program->num_stages());
  EXPECT_EQ(stats.max_program_depth, first.program->depth());
}

TEST(PlanCache, ProgramLookupWithoutDesignerThrows) {
  const ServeFixture fix;
  PlanCache cache(fix.engine, 4);  // no designer: layouts only
  const auto program = synthesize_program(0xE8, 3, 2);
  EXPECT_THROW((void)cache.try_get_program(program), sw::util::Error);
  EXPECT_THROW((void)cache.get_or_build_program(program), sw::util::Error);
  // Layout lookups stay unaffected.
  EXPECT_FALSE(cache.get_or_build(fix.majority_layout(3, 2)).hit);
}

TEST(EvaluatorService, ProgramRequestMatchesPerStagePhysicsOracle) {
  const ServeFixture fix;
  const std::size_t n = 4;
  const std::uint16_t bits = 0x1B;  // arbitrary non-special 3-ary function
  const auto program = synthesize_program(bits, 3, n);
  EvaluatorService svc(fix.model, fix.wg.material.alpha);

  const std::size_t words = 32;
  const std::size_t cols = program.primary_slot_count();
  const auto matrix = random_matrix(words, cols, /*seed=*/61);
  auto first =
      svc.submit(EvalRequest::for_program(program, matrix, words)).get();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.num_channels, n);
  EXPECT_EQ(first.num_stages, program.num_stages());
  EXPECT_EQ(first.depth, program.depth());
  ASSERT_EQ(first.bits.size(), words * n);

  const sw::compile::TruthTable table(3, bits);
  for (std::size_t w = 0; w < words; ++w) {
    const std::span<const std::uint8_t> row{matrix.data() + w * cols, cols};
    const auto stages =
        physics_stage_outputs(program, fix.designer, fix.engine, row);
    for (std::size_t ch = 0; ch < n; ++ch) {
      // The fused program equals the per-stage physics oracle …
      EXPECT_EQ(first.bits[w * n + ch],
                stages[(program.num_stages() - 1) * n + ch])
          << "w=" << w << " ch=" << ch;
      // … and both equal the Boolean function that was compiled.
      std::size_t a = 0;
      for (std::size_t i = 0; i < 3; ++i) {
        a |= static_cast<std::size_t>(row[ch * 3 + i] != 0) << i;
      }
      EXPECT_EQ(first.bits[w * n + ch], table.value(a) ? 1 : 0)
          << "w=" << w << " ch=" << ch;
    }
  }

  auto second =
      svc.submit(EvalRequest::for_program(program, matrix, words)).get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.bits, first.bits);
  EXPECT_GE(svc.stats().cache.program_builds, 1u);
}

}  // namespace
