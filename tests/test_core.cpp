// Unit tests for the core data-parallel gate library: encoding, layout
// synthesis, functional gate evaluation, detection and scalability.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "core/detector.h"
#include "core/encoding.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "core/micromag_gate.h"
#include "core/scalability.h"
#include "dispersion/fvmsw.h"
#include "dispersion/local_1d.h"
#include "mag/material.h"
#include "util/constants.h"
#include "util/error.h"
#include "util/stats.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw::core;
using sw::disp::FvmswDispersion;
using sw::disp::LocalDemag1DDispersion;
using sw::disp::Waveguide;
using sw::util::Error;
using sw::util::kPi;
using sw::util::kTwoPi;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

std::vector<double> paper_frequencies(std::size_t n) {
  std::vector<double> f;
  for (std::size_t i = 1; i <= n; ++i) f.push_back(1e10 * double(i));
  return f;
}

// ----------------------------------------------------------------- encoding

TEST(Encoding, PhaseOfBit) {
  EXPECT_DOUBLE_EQ(phase_of_bit(false), 0.0);
  EXPECT_DOUBLE_EQ(phase_of_bit(true), kPi);
}

TEST(Encoding, BitOfPhaseRoundTrip) {
  EXPECT_FALSE(bit_of_phase(0.0));
  EXPECT_TRUE(bit_of_phase(kPi));
  EXPECT_TRUE(bit_of_phase(-kPi));
  EXPECT_FALSE(bit_of_phase(0.3));
  EXPECT_TRUE(bit_of_phase(kPi - 0.3));
  EXPECT_FALSE(bit_of_phase(kTwoPi));  // wraps to 0
}

TEST(Encoding, Majority3) {
  EXPECT_FALSE(majority3(false, false, false));
  EXPECT_FALSE(majority3(true, false, false));
  EXPECT_TRUE(majority3(true, true, false));
  EXPECT_TRUE(majority3(true, true, true));
}

TEST(Encoding, MajoritySpanMatchesMajority3) {
  for (const auto& p : all_patterns(3)) {
    EXPECT_EQ(majority(p), majority3(p[0], p[1], p[2]));
  }
}

TEST(Encoding, MajorityRejectsEvenCount) {
  const Bits even{0, 1};
  EXPECT_THROW(majority(even), Error);
}

TEST(Encoding, Parity) {
  EXPECT_FALSE(parity(Bits{}));
  EXPECT_TRUE(parity(Bits{1}));
  EXPECT_FALSE(parity(Bits{1, 1}));
  EXPECT_TRUE(parity(Bits{1, 1, 1}));
}

TEST(Encoding, AllPatternsEnumerate) {
  const auto pats = all_patterns(3);
  ASSERT_EQ(pats.size(), 8u);
  EXPECT_EQ(pats[0], (Bits{0, 0, 0}));
  EXPECT_EQ(pats[5], (Bits{1, 0, 1}));  // 5 = 0b101, bit 0 first
  EXPECT_EQ(pats[7], (Bits{1, 1, 1}));
}

// ----------------------------------------------------------------- designer

class DesignerParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DesignerParam, LayoutSatisfiesAllInvariants) {
  const auto [m, n] = GetParam();
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = m;
  spec.frequencies = paper_frequencies(n);
  const GateLayout layout = designer.design(spec);
  EXPECT_NO_THROW(layout.validate());
  EXPECT_EQ(layout.sources.size(), m * n);
  EXPECT_EQ(layout.detectors.size(), n);
  EXPECT_GT(layout.length(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    InputAndChannelCounts, DesignerParam,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 7u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(Designer, ByteGateMatchesPaperShape) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies(8);
  const GateLayout layout = designer.design(spec);
  // 24 sources + 8 detectors on a sub-micron guide.
  EXPECT_EQ(layout.transducer_count(), 32u);
  EXPECT_LT(layout.length(), 1.2e-6);
  // Spacings are ~100-180 nm, the same range the paper reports.
  for (double d : layout.spacing) {
    EXPECT_GT(d, 90e-9);
    EXPECT_LT(d, 200e-9);
  }
}

TEST(Designer, SpacingIsExactWavelengthMultiple) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies(4);
  const GateLayout layout = designer.design(spec);
  for (std::size_t i = 0; i < 4; ++i) {
    const double ratio = layout.spacing[i] / layout.wavelengths[i];
    EXPECT_NEAR(ratio, std::round(ratio), 1e-9);
  }
}

TEST(Designer, InvertedChannelsGetHalfIntegerDetectors) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies(3);
  spec.invert_output = {0, 1, 0};
  const GateLayout layout = designer.design(spec);
  EXPECT_FALSE(layout.detectors[0].inverted);
  EXPECT_TRUE(layout.detectors[1].inverted);
  // validate() already checks the half-integer placement; re-check here.
  const auto& det = layout.detectors[1];
  const double last = layout.source(1, 2).x;
  const double cycles = (det.x - last) / layout.wavelengths[1];
  EXPECT_NEAR(cycles - std::floor(cycles), 0.5, 1e-9);
}

TEST(Designer, MinSameChannelSpacingHonored) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = {2e10};
  spec.min_same_channel_spacing = 117e-9;
  spec.multiple_search = 0;
  const GateLayout layout = designer.design(spec);
  EXPECT_GE(layout.spacing[0], 117e-9 - 1e-12);
  // And it is still an exact multiple of the wavelength.
  const double ratio = layout.spacing[0] / layout.wavelengths[0];
  EXPECT_NEAR(ratio, std::round(ratio), 1e-9);
}

TEST(Designer, RejectsBadSpecs) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;

  spec.frequencies = {};
  EXPECT_THROW(designer.design(spec), Error);

  spec.frequencies = {2e10, 2e10};  // duplicate
  EXPECT_THROW(designer.design(spec), Error);

  spec.frequencies = {1e9};  // below FMR
  EXPECT_THROW(designer.design(spec), Error);

  spec.frequencies = {2e10, 3e10};
  spec.invert_output = {1};  // wrong flag count
  EXPECT_THROW(designer.design(spec), Error);

  spec.invert_output.clear();
  spec.transducer_width = 0.0;
  EXPECT_THROW(designer.design(spec), Error);
}

TEST(Designer, SourceLookupThrowsOnMissing) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 2;
  spec.frequencies = {2e10};
  const GateLayout layout = designer.design(spec);
  EXPECT_THROW(layout.source(1, 0), Error);
  EXPECT_THROW(layout.source(0, 5), Error);
}

// --------------------------------------------------------------------- gate

class GateTruthTable : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GateTruthTable, MajorityHoldsForAllPatterns) {
  const std::size_t m = GetParam();
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const sw::wavesim::WaveEngine engine(model, 0.004);
  GateSpec spec;
  spec.num_inputs = m;
  spec.frequencies = paper_frequencies(4);
  DataParallelGate gate(designer.design(spec), engine);
  const double worst = gate.verify_majority_truth_table();
  EXPECT_GT(worst, 0.5);  // phases land far from the decision boundary
}

INSTANTIATE_TEST_SUITE_P(OddInputCounts, GateTruthTable,
                         ::testing::Values(1u, 3u, 5u));

TEST(Gate, ByteWideMajorityAllChannelsAllPatterns) {
  // The paper's headline configuration: 8 channels x 3 inputs.
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const sw::wavesim::WaveEngine engine(model, 0.004);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies(8);
  DataParallelGate gate(designer.design(spec), engine);

  for (const auto& pattern : all_patterns(3)) {
    const auto results = gate.evaluate_uniform(pattern);
    ASSERT_EQ(results.size(), 8u);
    for (const auto& r : results) {
      EXPECT_EQ(r.logic, static_cast<std::uint8_t>(majority(pattern)))
          << "channel " << r.channel;
    }
  }
}

TEST(Gate, IndependentChannelsCarryIndependentData) {
  // Different bit patterns per channel: each channel's output must follow
  // its own inputs only (the data-parallelism property).
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const sw::wavesim::WaveEngine engine(model, 0.004);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies(4);
  DataParallelGate gate(designer.design(spec), engine);

  const std::vector<Bits> inputs{
      {0, 0, 0}, {1, 1, 0}, {0, 1, 0}, {1, 1, 1}};
  const auto results = gate.evaluate(inputs);
  EXPECT_EQ(results[0].logic, 0);
  EXPECT_EQ(results[1].logic, 1);
  EXPECT_EQ(results[2].logic, 0);
  EXPECT_EQ(results[3].logic, 1);
}

TEST(Gate, InvertedChannelComplementsOutput) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const sw::wavesim::WaveEngine engine(model, 0.004);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies(2);
  spec.invert_output = {0, 1};
  DataParallelGate gate(designer.design(spec), engine);

  for (const auto& pattern : all_patterns(3)) {
    const auto results = gate.evaluate_uniform(pattern);
    const bool maj = majority(pattern);
    EXPECT_EQ(results[0].logic, static_cast<std::uint8_t>(maj));
    EXPECT_EQ(results[1].logic, static_cast<std::uint8_t>(!maj));
  }
}

TEST(Gate, DriveListEncodesPhases) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const sw::wavesim::WaveEngine engine(model, 0.004);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies(2);
  DataParallelGate gate(designer.design(spec), engine);

  const std::vector<Bits> inputs{{1, 0, 1}, {0, 0, 0}};
  const auto drives = gate.drive_list(inputs);
  ASSERT_EQ(drives.size(), 6u);
  for (const auto& d : drives) {
    EXPECT_TRUE(d.phase == 0.0 || d.phase == kPi);
  }
  // Channel 0 input 0 is a logic 1.
  const auto& s = gate.layout().source(0, 0);
  for (const auto& d : drives) {
    if (d.x == s.x) {
      EXPECT_DOUBLE_EQ(d.phase, kPi);
    }
  }
}

TEST(Gate, RejectsMalformedInputs) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const sw::wavesim::WaveEngine engine(model, 0.004);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies(2);
  DataParallelGate gate(designer.design(spec), engine);

  EXPECT_THROW(gate.evaluate({{0, 0, 0}}), Error);          // channel count
  EXPECT_THROW(gate.evaluate({{0, 0}, {0, 0, 0}}), Error);  // bit count
}

TEST(Gate, XorViaAmplitudeDetection) {
  // Two-input XOR on amplitude: in-phase inputs (00, 11) superpose
  // constructively (amplitude 2A -> logic 0), out-of-phase inputs cancel
  // (amplitude ~0 -> logic 1).
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const sw::wavesim::WaveEngine engine(model, 0.004);
  GateSpec spec;
  spec.num_inputs = 2;
  spec.frequencies = paper_frequencies(8);
  DataParallelGate gate(designer.design(spec), engine);

  // Reference amplitude: both-zero inputs.
  const auto ref = gate.evaluate_uniform(Bits{0, 0});
  for (const auto& pattern : all_patterns(2)) {
    const auto out = gate.evaluate_uniform(pattern);
    for (std::size_t ch = 0; ch < out.size(); ++ch) {
      const auto d = decide_amplitude(out[ch].amplitude, ref[ch].amplitude);
      EXPECT_EQ(d.logic, static_cast<std::uint8_t>(parity(pattern)))
          << "channel " << ch;
    }
  }
}

// ----------------------------------------------------------------- detector

TEST(Detector, DecidePhaseBasics) {
  const auto d0 = decide_phase(std::polar(1.0, 0.1), 0.0);
  EXPECT_EQ(d0.logic, 0);
  EXPECT_GT(d0.margin, 0.9);
  const auto d1 = decide_phase(std::polar(2.0, kPi - 0.1), 0.0);
  EXPECT_EQ(d1.logic, 1);
  EXPECT_NEAR(d1.amplitude, 2.0, 1e-12);
}

TEST(Detector, MarginShrinksNearBoundary) {
  const auto near_b = decide_phase(std::polar(1.0, kPi / 2.0 - 0.05), 0.0);
  const auto far_b = decide_phase(std::polar(1.0, 0.05), 0.0);
  EXPECT_LT(near_b.margin, 0.1);
  EXPECT_GT(far_b.margin, 0.9);
}

TEST(Detector, DecideAmplitude) {
  const auto hi = decide_amplitude(2.0, 2.0, 0.5);
  EXPECT_EQ(hi.logic, 0);
  const auto lo = decide_amplitude(0.05, 2.0, 0.5);
  EXPECT_EQ(lo.logic, 1);
  EXPECT_THROW(decide_amplitude(1.0, 0.0), Error);
  EXPECT_THROW(decide_amplitude(1.0, 1.0, 1.5), Error);
}

TEST(Detector, ExtractPhasorRecoversAbsolutePhase) {
  // A tone sampled from t=0; extraction over a late window must still
  // report the phase referenced to t=0.
  const double fs = 1e12;
  const double f = 2e10;
  const double phase = 1.234;
  std::vector<double> x(4000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.8 * std::cos(kTwoPi * f * static_cast<double>(i) / fs + phase);
  }
  const auto p = extract_phasor(x, 1500, 3500, fs, f);
  EXPECT_NEAR(std::abs(p), 0.8, 1e-6);
  EXPECT_NEAR(sw::util::angle_distance(std::arg(p), phase), 0.0, 1e-6);
}

TEST(Detector, ExtractPhasorWindowValidation) {
  std::vector<double> x(100, 0.0);
  EXPECT_THROW(extract_phasor(x, 50, 50, 1e12, 1e10), Error);
  EXPECT_THROW(extract_phasor(x, 0, 200, 1e12, 1e10), Error);
}

// -------------------------------------------------------------- scalability

TEST(Scalability, CompensationBoostsFartherSources) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const sw::wavesim::WaveEngine engine(model, 0.004);
  GateSpec spec;
  spec.num_inputs = 5;
  spec.frequencies = {2e10};
  const auto layout = designer.design(spec);
  const auto levels = damping_compensation(layout, engine);
  ASSERT_EQ(levels.size(), 5u);
  // Sources are emitted in input order; earlier inputs sit farther from the
  // detector, so the levels must be non-increasing (paper's I1 > I2 > ...).
  for (std::size_t k = 1; k < levels.size(); ++k) {
    EXPECT_GE(levels[k - 1], levels[k]);
  }
  EXPECT_NEAR(levels.back(), 1.0, 1e-12);
}

TEST(Scalability, CompensatedArrivalAmplitudesEqual) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const sw::wavesim::WaveEngine engine(model, 0.004);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = {2e10};
  const auto layout = designer.design(spec);
  const auto levels = damping_compensation(layout, engine);
  const auto boosted = with_drive_levels(layout, levels);
  const double f = 2e10;
  const double l = engine.decay_length(f);
  const double det = boosted.detectors[0].x;
  double first = -1.0;
  for (const auto& s : boosted.sources) {
    const double arrival = s.amplitude * std::exp(-std::abs(det - s.x) / l);
    if (first < 0.0) first = arrival;
    EXPECT_NEAR(arrival, first, 1e-9);
  }
}

TEST(Scalability, MarginReportFlagsWorstPattern) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const sw::wavesim::WaveEngine engine(model, 0.004);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = paper_frequencies(2);
  DataParallelGate gate(designer.design(spec), engine);
  const auto rep = margin_report(gate);
  EXPECT_TRUE(rep.all_correct);
  EXPECT_GT(rep.min_margin, 0.0);
  EXPECT_EQ(rep.worst_pattern.size(), 3u);
}

TEST(Scalability, SweepImprovesWithCompensation) {
  const FvmswDispersion model(paper_waveguide());
  // Exaggerated damping makes the uncompensated margin visibly worse.
  const auto points = scalability_sweep(model, 0.05, 2e10, 9);
  ASSERT_EQ(points.size(), 4u);  // m = 3, 5, 7, 9
  for (const auto& pt : points) {
    EXPECT_TRUE(pt.correct_compensated);
    EXPECT_GE(pt.margin_compensated, pt.margin_uncompensated - 1e-9);
  }
}

TEST(Scalability, WithDriveLevelsValidates) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = {2e10};
  const auto layout = designer.design(spec);
  EXPECT_THROW(with_drive_levels(layout, {1.0}), Error);
  EXPECT_THROW(with_drive_levels(layout, {1.0, -1.0, 1.0}), Error);
}

// ------------------------------------------------------- micromag interface

TEST(MicromagRunner, ValidatesConfiguration) {
  const Waveguide wg = paper_waveguide();
  const auto model = LocalDemag1DDispersion::from_waveguide(wg);
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = {2e10};
  const auto layout = designer.design(spec);

  MicromagConfig cfg;
  cfg.sample_dt = 1e-10;  // violates Nyquist for 20 GHz
  EXPECT_THROW(MicromagGateRunner(layout, wg, cfg), Error);

  cfg = MicromagConfig{};
  cfg.t_end = 1e-12;  // far too short for settle
  MicromagGateRunner runner(layout, wg, cfg);
  EXPECT_THROW(runner.run_uniform(Bits{0, 0, 0}), Error);
}

TEST(MicromagRunner, GuideGeometry) {
  const Waveguide wg = paper_waveguide();
  const auto model = LocalDemag1DDispersion::from_waveguide(wg);
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = {2e10};
  const auto layout = designer.design(spec);
  const MicromagGateRunner runner(layout, wg);
  EXPECT_GT(runner.guide_length(),
            layout.length());  // leads included
  EXPECT_DOUBLE_EQ(runner.to_mesh_x(0.0), runner.config().lead_in);
}

}  // namespace

// Appended: randomized property tests for the layout designer.
#include <random>

namespace {

class DesignerFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(DesignerFuzz, RandomSpecsAlwaysProduceValidLayouts) {
  // Random channel counts, input counts and frequency sets drawn from the
  // guide's band; design() must either throw a contract error (never
  // triggered here — inputs are pre-sanitised) or produce a layout that
  // passes every invariant in GateLayout::validate().
  std::mt19937 rng(GetParam());
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const double f_lo = model.fmr() * 1.2;
  const double f_hi = 9e10;

  std::uniform_int_distribution<std::size_t> n_dist(1, 8);
  std::uniform_int_distribution<std::size_t> m_dist(0, 2);
  std::uniform_real_distribution<double> f_dist(f_lo, f_hi);
  std::uniform_int_distribution<int> inv_dist(0, 1);

  for (int trial = 0; trial < 10; ++trial) {
    GateSpec spec;
    spec.num_inputs = 2 * m_dist(rng) + 1;  // 1, 3, 5
    const std::size_t n = n_dist(rng);
    while (spec.frequencies.size() < n) {
      const double f = f_dist(rng);
      bool distinct = true;
      for (double g : spec.frequencies) {
        distinct &= std::abs(f - g) > 0.02 * g;
      }
      if (distinct) spec.frequencies.push_back(f);
    }
    if (inv_dist(rng)) {
      for (std::size_t i = 0; i < n; ++i) {
        spec.invert_output.push_back(static_cast<std::uint8_t>(inv_dist(rng)));
      }
    }
    const GateLayout layout = designer.design(spec);
    EXPECT_NO_THROW(layout.validate());
    // And the gate built on it computes majority on every channel.
    const sw::wavesim::WaveEngine engine(model, 0.004);
    const DataParallelGate gate(layout, engine);
    EXPECT_GT(gate.verify_majority_truth_table(), 0.4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesignerFuzz,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u, 97u));

TEST(Designer, LayoutLengthScalesWithChannels) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  double prev = 0.0;
  for (std::size_t n = 1; n <= 8; n += 1) {
    GateSpec spec;
    spec.num_inputs = 3;
    spec.frequencies = paper_frequencies(n);
    const auto layout = designer.design(spec);
    EXPECT_GE(layout.length(), prev * 0.8);  // roughly monotone growth
    prev = layout.length();
  }
}

TEST(Designer, PitchTightensAndLoosens) {
  // A wider transducer or gap must never shrink the layout.
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec narrow;
  narrow.num_inputs = 3;
  narrow.frequencies = paper_frequencies(4);
  GateSpec wide = narrow;
  wide.transducer_width = 20e-9;
  wide.min_gap = 5e-9;
  EXPECT_GE(designer.design(wide).length(),
            designer.design(narrow).length());
}

}  // namespace
