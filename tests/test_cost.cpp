// Unit tests for the area/delay/energy cost models (paper Section V.B).
#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "dispersion/fvmsw.h"
#include "mag/material.h"
#include "util/error.h"

namespace {

using namespace sw::cost;
using sw::core::GateSpec;
using sw::core::InlineGateDesigner;
using sw::disp::FvmswDispersion;
using sw::disp::Waveguide;
using sw::util::Error;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

GateSpec byte_spec() {
  GateSpec spec;
  spec.num_inputs = 3;
  for (int i = 1; i <= 8; ++i) spec.frequencies.push_back(1e10 * i);
  return spec;
}

TEST(GateCost, AreaIsLengthTimesWidth) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const auto layout = designer.design(byte_spec());
  const TransducerModel t;
  const auto c = gate_cost(layout, 50e-9, t, model);
  EXPECT_NEAR(c.area, c.length * 50e-9, 1e-25);
  EXPECT_EQ(c.transducers, 32u);
  EXPECT_EQ(c.waveguides, 1u);
  EXPECT_NEAR(c.energy, 32.0 * t.energy, 1e-25);
}

TEST(GateCost, DelayIncludesTransducersAndFlight) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = {2e10};
  const auto layout = designer.design(spec);
  const TransducerModel t;
  const auto c = gate_cost(layout, 50e-9, t, model);
  EXPECT_GT(c.delay, 2.0 * t.delay);
  // Flight time bounded by layout length over the slowest group velocity.
  const double vg = model.group_velocity_at_frequency(2e10);
  EXPECT_LT(c.delay, 2.0 * t.delay + layout.length() / vg * 1.01);
}

TEST(GateCost, RejectsBadWidth) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const auto layout = designer.design(byte_spec());
  EXPECT_THROW(gate_cost(layout, 0.0, TransducerModel{}, model), Error);
}

TEST(Comparison, ByteMajorityReproducesPaperShape) {
  // The paper: 4.16x area reduction, delay and energy parity. Our layouts
  // are self-consistent with our dispersion so the exact ratio differs,
  // but it must be a substantial (>2.5x) area win at exact delay/energy
  // parity.
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const auto cmp = compare_parallel_vs_scalar(designer, byte_spec(), 50e-9,
                                              TransducerModel{});
  EXPECT_GT(cmp.area_ratio, 2.5);
  EXPECT_LT(cmp.area_ratio, 6.0);
  EXPECT_NEAR(cmp.delay_ratio, 1.0, 1e-9);
  EXPECT_NEAR(cmp.energy_ratio, 1.0, 1e-9);
  EXPECT_EQ(cmp.scalar_each.size(), 8u);
  EXPECT_EQ(cmp.scalar_total.waveguides, 8u);
  EXPECT_EQ(cmp.scalar_total.transducers, cmp.parallel.transducers);
}

TEST(Comparison, ScalarGatesPreserveParallelSpacings) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  const auto spec = byte_spec();
  const auto parallel = designer.design(spec);
  const auto cmp =
      compare_parallel_vs_scalar(designer, spec, 50e-9, TransducerModel{});
  // Each scalar gate spans at least (m-1) parallel spacings: its length
  // cannot be smaller than that.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GE(cmp.scalar_each[i].length,
              2.0 * parallel.spacing[i] - 1e-12);
  }
}

TEST(Comparison, AreaRatioGrowsWithChannelCount) {
  // More channels amortise the single waveguide better.
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec two;
  two.num_inputs = 3;
  two.frequencies = {1e10, 2e10};
  GateSpec eight = byte_spec();
  const auto cmp2 =
      compare_parallel_vs_scalar(designer, two, 50e-9, TransducerModel{});
  const auto cmp8 =
      compare_parallel_vs_scalar(designer, eight, 50e-9, TransducerModel{});
  EXPECT_GT(cmp8.area_ratio, cmp2.area_ratio);
}

TEST(Comparison, SingleChannelIsNeutral) {
  const FvmswDispersion model(paper_waveguide());
  const InlineGateDesigner designer(model);
  GateSpec one;
  one.num_inputs = 3;
  one.frequencies = {2e10};
  const auto cmp =
      compare_parallel_vs_scalar(designer, one, 50e-9, TransducerModel{});
  EXPECT_NEAR(cmp.area_ratio, 1.0, 1e-9);
  EXPECT_NEAR(cmp.energy_ratio, 1.0, 1e-9);
}

}  // namespace
