// Unit tests for the micromagnetic solver substrate: mesh, fields, field
// terms (exchange / anisotropy / Zeeman / antenna / demag), LLG dynamics,
// integrators, probes and energies.
#include <gtest/gtest.h>

#include <cmath>

#include "mag/anisotropy.h"
#include "mag/antenna.h"
#include "mag/demag_factors.h"
#include "mag/demag_local.h"
#include "mag/demag_newell.h"
#include "mag/energy.h"
#include "mag/exchange.h"
#include "mag/integrator.h"
#include "mag/llg.h"
#include "mag/material.h"
#include "mag/mesh.h"
#include "mag/probe.h"
#include "mag/simulation.h"
#include "mag/vector_field.h"
#include "mag/zeeman.h"
#include "util/constants.h"
#include "util/error.h"

namespace {

using namespace sw::mag;
using sw::util::Error;
using sw::util::kGammaMu0;
using sw::util::kPi;
using sw::util::kTwoPi;

// --------------------------------------------------------------------- vec3

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5);
  EXPECT_DOUBLE_EQ((a - b).z, -3);
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4);
  EXPECT_DOUBLE_EQ(dot(a, b), 32);
}

TEST(Vec3, CrossFollowsRightHandRule) {
  const Vec3 c = cross(Vec3{1, 0, 0}, Vec3{0, 1, 0});
  EXPECT_DOUBLE_EQ(c.x, 0);
  EXPECT_DOUBLE_EQ(c.y, 0);
  EXPECT_DOUBLE_EQ(c.z, 1);
}

TEST(Vec3, NormAndNormalized) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(Vec3{}.normalized().norm(), 0.0);
}

// --------------------------------------------------------------------- mesh

TEST(Mesh, IndexCoordsRoundTrip) {
  const Mesh mesh(5, 3, 2, 1e-9, 2e-9, 3e-9);
  EXPECT_EQ(mesh.cell_count(), 30u);
  for (std::size_t idx = 0; idx < mesh.cell_count(); ++idx) {
    std::size_t i, j, k;
    mesh.coords(idx, i, j, k);
    EXPECT_EQ(mesh.index(i, j, k), idx);
  }
}

TEST(Mesh, GeometryQueries) {
  const Mesh mesh(10, 1, 1, 2e-9, 50e-9, 1e-9);
  EXPECT_DOUBLE_EQ(mesh.size_x(), 20e-9);
  EXPECT_DOUBLE_EQ(mesh.cell_volume(), 1e-25);
  const Vec3 c = mesh.cell_center(0, 0, 0);
  EXPECT_DOUBLE_EQ(c.x, 1e-9);
}

TEST(Mesh, CellAtXClamps) {
  const Mesh mesh(10, 1, 1, 2e-9, 1e-9, 1e-9);
  EXPECT_EQ(mesh.cell_at_x(-5e-9), 0u);
  EXPECT_EQ(mesh.cell_at_x(3e-9), 1u);
  EXPECT_EQ(mesh.cell_at_x(1e-6), 9u);
}

TEST(Mesh, RejectsBadArguments) {
  EXPECT_THROW(Mesh(0, 1, 1, 1e-9, 1e-9, 1e-9), Error);
  EXPECT_THROW(Mesh(1, 1, 1, 0.0, 1e-9, 1e-9), Error);
}

// -------------------------------------------------------------- vectorfield

TEST(VectorField, FillAndAverage) {
  const Mesh mesh(4, 2, 1, 1e-9, 1e-9, 1e-9);
  VectorField f(mesh, {0, 0, 1});
  EXPECT_DOUBLE_EQ(f.average().z, 1.0);
  f.at(0, 0, 0) = {0, 0, -1};
  EXPECT_NEAR(f.average().z, 6.0 / 8.0, 1e-15);
}

TEST(VectorField, AddScaledAndAssignSum) {
  const Mesh mesh(3, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField a(mesh, {1, 0, 0});
  const VectorField b(mesh, {0, 2, 0});
  a.add_scaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a[0].y, 1.0);
  VectorField c;
  c.assign_sum(a, b, -0.5);
  EXPECT_DOUBLE_EQ(c[1].y, 0.0);
  EXPECT_DOUBLE_EQ(c[1].x, 1.0);
}

TEST(VectorField, NormalizeRestoresUnitLength) {
  const Mesh mesh(2, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField f(mesh, {0.1, 0.2, 0.9});
  f.normalize();
  EXPECT_NEAR(f[0].norm(), 1.0, 1e-15);
  f[1] = {0, 0, 0};
  f.normalize();  // zero vectors untouched
  EXPECT_DOUBLE_EQ(f[1].norm(), 0.0);
}

TEST(VectorField, MaxNorm) {
  const Mesh mesh(3, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField f(mesh);
  f[2] = {0, -3, 4};
  EXPECT_DOUBLE_EQ(f.max_norm(), 5.0);
}

TEST(VectorField, SizeMismatchThrows) {
  const Mesh m1(2, 1, 1, 1e-9, 1e-9, 1e-9);
  const Mesh m2(3, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField a(m1), b(m2);
  EXPECT_THROW(a.add_scaled(b, 1.0), Error);
}

// ----------------------------------------------------------------- material

TEST(Material, PaperParameters) {
  const Material m = make_fecob();
  EXPECT_DOUBLE_EQ(m.Ms, 1.1e6);
  EXPECT_DOUBLE_EQ(m.Aex, 18.5e-12);
  EXPECT_DOUBLE_EQ(m.alpha, 0.004);
  EXPECT_DOUBLE_EQ(m.Ku, 8.3177e5);
  // Hk = 2 Ku / (mu0 Ms) must exceed Ms for self-biased PMA operation.
  EXPECT_GT(m.anisotropy_field(), m.Ms);
  EXPECT_NEAR(m.anisotropy_field(), 1.2035e6, 5e2);
  EXPECT_NEAR(m.exchange_length(), 4.93e-9, 5e-11);
}

TEST(Material, LookupByName) {
  EXPECT_EQ(material_by_name("fecob").name, "Fe60Co20B20");
  EXPECT_EQ(material_by_name("YIG").name, "YIG");
  EXPECT_EQ(material_by_name("Permalloy").name, "Py");
  EXPECT_THROW(material_by_name("unobtainium"), Error);
}

TEST(Material, ValidateRejectsNonsense) {
  Material m = make_fecob();
  m.alpha = 2.0;
  EXPECT_THROW(m.validate(), Error);
  m = make_fecob();
  m.easy_axis = {0, 0, 2};
  EXPECT_THROW(m.validate(), Error);
  m = make_fecob();
  m.Ms = -1.0;
  EXPECT_THROW(m.validate(), Error);
}

// ------------------------------------------------------------ demag factors

TEST(DemagFactors, CubeIsOneThird) {
  const Vec3 n = demag_factors(1e-9, 1e-9, 1e-9);
  EXPECT_NEAR(n.x, 1.0 / 3.0, 1e-10);
  EXPECT_NEAR(n.y, 1.0 / 3.0, 1e-10);
  EXPECT_NEAR(n.z, 1.0 / 3.0, 1e-10);
}

TEST(DemagFactors, TraceIsOne) {
  const Vec3 n = demag_factors(10e-9, 50e-9, 1e-9);
  EXPECT_NEAR(n.x + n.y + n.z, 1.0, 1e-9);
}

TEST(DemagFactors, ThinFilmLimit) {
  // Very wide, very thin: Nz -> 1.
  const Vec3 n = demag_factors(1e-6, 1e-6, 1e-9);
  EXPECT_GT(n.z, 0.99);
  EXPECT_LT(n.x, 0.01);
}

TEST(DemagFactors, OrderingFollowsGeometry) {
  // Longest axis has the smallest factor.
  const Vec3 n = demag_factors(100e-9, 50e-9, 10e-9);
  EXPECT_LT(n.x, n.y);
  EXPECT_LT(n.y, n.z);
}

TEST(DemagFactors, WaveguideHelperIsSane) {
  const Vec3 n = demag_factors_waveguide(50e-9, 1e-9);
  EXPECT_NEAR(n.x + n.y + n.z, 1.0, 1e-12);
  EXPECT_GE(n.x, 0.0);
  EXPECT_LT(n.x, 0.01);    // propagation axis ~ free
  EXPECT_GT(n.z, 0.9);     // thickness direction dominates
  EXPECT_GT(n.y, n.x);
}

TEST(DemagFactors, RejectsBadShape) {
  EXPECT_THROW(demag_factor_z(0.0, 1e-9, 1e-9), Error);
}

// ------------------------------------------------------------ newell tensor

TEST(NewellTensor, SelfTermOfCubeIsOneThird) {
  const double d = 2e-9;
  EXPECT_NEAR(newell_nxx(0, 0, 0, d, d, d), 1.0 / 3.0, 1e-9);
}

TEST(NewellTensor, SelfTermMatchesAharoni) {
  const double dx = 2e-9, dy = 50e-9, dz = 1e-9;
  const Vec3 aha = demag_factors(dx, dy, dz);
  const DemagTensor n = newell_tensor(0, 0, 0, dx, dy, dz, 0.0);
  EXPECT_NEAR(n.xx, aha.x, 1e-6);
  EXPECT_NEAR(n.yy, aha.y, 1e-6);
  EXPECT_NEAR(n.zz, aha.z, 1e-6);
  EXPECT_NEAR(n.xy, 0.0, 1e-12);
  EXPECT_NEAR(n.xz, 0.0, 1e-12);
  EXPECT_NEAR(n.yz, 0.0, 1e-12);
}

TEST(NewellTensor, TraceVanishesOffOrigin) {
  // The demag tensor is traceless away from the source cell.
  const double d = 2e-9;
  const DemagTensor n = newell_tensor(3 * d, 2 * d, d, d, d, d, 0.0);
  EXPECT_NEAR(n.xx + n.yy + n.zz, 0.0, 1e-10);
}

TEST(NewellTensor, MatchesDipoleFarAway) {
  const double d = 2e-9;
  const double X = 40 * d, Y = 10 * d, Z = 5 * d;
  const DemagTensor exact = newell_tensor(X, Y, Z, d, d, d, 0.0);
  const DemagTensor dip = newell_tensor(X, Y, Z, d, d, d, 10.0);
  EXPECT_NEAR(exact.xx, dip.xx, 5e-3 * std::abs(dip.xx) + 1e-12);
  EXPECT_NEAR(exact.xy, dip.xy, 5e-3 * std::abs(dip.xy) + 1e-12);
}

TEST(NewellTensor, SymmetricUnderReflection) {
  const double d = 2e-9;
  const DemagTensor a = newell_tensor(3 * d, d, 0, d, d, d, 0.0);
  const DemagTensor b = newell_tensor(-3 * d, d, 0, d, d, d, 0.0);
  EXPECT_NEAR(a.xx, b.xx, 1e-15);
  EXPECT_NEAR(a.xy, -b.xy, 1e-15);  // odd in x
}

TEST(DemagNewellField, UniformFilmAverageMatchesShapeFactor) {
  // A uniformly magnetised thin platelet: the *average* demag field is
  // -N_body * Ms with N_body the Aharoni factors of the whole body.
  const std::size_t nx = 16, ny = 16;
  const double d = 2e-9;
  const Mesh mesh(nx, ny, 1, d, d, 1e-9);
  const Material mat = make_fecob();
  DemagNewellField demag(mesh, mat);

  VectorField m(mesh, {0, 0, 1});
  VectorField h(mesh);
  demag.accumulate(0.0, m, h);

  const Vec3 body = demag_factors(nx * d, ny * d, 1e-9);
  const Vec3 avg = h.average();
  EXPECT_NEAR(avg.z, -body.z * mat.Ms, 0.01 * mat.Ms);
  EXPECT_NEAR(avg.x, 0.0, 1e-6 * mat.Ms);
}

TEST(DemagNewellField, SelfTensorExposed) {
  const Mesh mesh(4, 1, 1, 2e-9, 50e-9, 1e-9);
  const DemagNewellField demag(mesh, make_fecob());
  const auto self = demag.self_tensor();
  const Vec3 aha = demag_factors(2e-9, 50e-9, 1e-9);
  EXPECT_NEAR(self.zz, aha.z, 1e-8);
}

// ----------------------------------------------------------------- exchange

TEST(ExchangeField, UniformStateHasZeroField) {
  const Mesh mesh(8, 1, 1, 2e-9, 50e-9, 1e-9);
  const Material mat = make_fecob();
  const ExchangeField ex(mesh, mat);
  const VectorField m(mesh, {0, 0, 1});
  VectorField h(mesh);
  ex.accumulate(0.0, m, h);
  EXPECT_NEAR(h.max_norm(), 0.0, 1e-20);
}

TEST(ExchangeField, CosineModeEigenvalue) {
  // For m_x = eps*cos(kx) (interior cells), the discrete Laplacian gives
  // -k_eff^2 m_x with k_eff^2 = 2(1 - cos(k dx))/dx^2.
  const std::size_t n = 64;
  const double dx = 2e-9;
  const Mesh mesh(n, 1, 1, dx, 50e-9, 1e-9);
  const Material mat = make_fecob();
  const ExchangeField ex(mesh, mat);

  const double k = kTwoPi / (16 * dx);
  const double eps = 1e-4;
  VectorField m(mesh);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = (static_cast<double>(i) + 0.5) * dx;
    m[i] = Vec3{eps * std::cos(k * x), 0, 1}.normalized();
  }
  VectorField h(mesh);
  ex.accumulate(0.0, m, h);

  const double k_eff2 = 2.0 * (1.0 - std::cos(k * dx)) / (dx * dx);
  // Check interior cells only (boundary cells feel the Neumann mirror).
  for (std::size_t i = 8; i < n - 8; ++i) {
    const double expect = -ex.prefactor() * k_eff2 * m[i].x;
    EXPECT_NEAR(h[i].x, expect, std::abs(expect) * 0.02 + 1e-10);
  }
}

TEST(ExchangeField, PrefactorValue) {
  const Mesh mesh(4, 1, 1, 2e-9, 50e-9, 1e-9);
  const Material mat = make_fecob();
  const ExchangeField ex(mesh, mat);
  EXPECT_NEAR(ex.prefactor(),
              2.0 * mat.Aex / (sw::util::kMu0 * mat.Ms), 1e-20);
}

// --------------------------------------------------------------- anisotropy

TEST(AnisotropyField, AlignedStateFeelsFullHk) {
  const Material mat = make_fecob();
  const UniaxialAnisotropyField ani(mat);
  const Mesh mesh(2, 1, 1, 1e-9, 1e-9, 1e-9);
  const VectorField m(mesh, {0, 0, 1});
  VectorField h(mesh);
  ani.accumulate(0.0, m, h);
  EXPECT_NEAR(h[0].z, mat.anisotropy_field(), 1e-6);
  EXPECT_DOUBLE_EQ(h[0].x, 0.0);
}

TEST(AnisotropyField, TransverseStateFeelsNothing) {
  const UniaxialAnisotropyField ani(make_fecob());
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);
  const VectorField m(mesh, {1, 0, 0});
  VectorField h(mesh);
  ani.accumulate(0.0, m, h);
  EXPECT_NEAR(h[0].norm(), 0.0, 1e-12);
}

TEST(AnisotropyField, ProjectionScaling) {
  const Material mat = make_fecob();
  const UniaxialAnisotropyField ani(mat);
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);
  const double c = std::cos(0.3), s = std::sin(0.3);
  const VectorField m(mesh, {s, 0, c});
  VectorField h(mesh);
  ani.accumulate(0.0, m, h);
  EXPECT_NEAR(h[0].z, mat.anisotropy_field() * c, 1e-6);
}

// ------------------------------------------------------------------- zeeman

TEST(ZeemanField, AddsUniformField) {
  const UniformZeemanField z({1e4, 0, 2e4});
  const Mesh mesh(3, 1, 1, 1e-9, 1e-9, 1e-9);
  const VectorField m(mesh, {0, 0, 1});
  VectorField h(mesh);
  z.accumulate(0.0, m, h);
  EXPECT_DOUBLE_EQ(h[2].x, 1e4);
  EXPECT_DOUBLE_EQ(h[2].z, 2e4);
  EXPECT_DOUBLE_EQ(z.energy_prefactor(), 1.0);
}

// ------------------------------------------------------------------ antenna

TEST(Antenna, DriveEnvelope) {
  Antenna a;
  a.frequency = 1e10;
  a.phase = 0.0;
  a.t_on = 1e-9;
  a.t_off = 2e-9;
  a.ramp = 0.0;
  EXPECT_DOUBLE_EQ(a.drive(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(a.drive(2.5e-9), 0.0);
  EXPECT_NE(a.drive(1.5e-9), 0.0);
}

TEST(Antenna, RampGrowsLinearly) {
  Antenna a;
  a.frequency = 1e10;
  a.phase = kPi / 2.0;  // sin(wt + pi/2) = cos(wt) = 1 at t = 0
  a.ramp = 1e-10;
  EXPECT_NEAR(a.drive(0.0), 0.0, 1e-12);
  EXPECT_NEAR(a.drive(1e-10), std::sin(kTwoPi * 1e10 * 1e-10 + kPi / 2.0),
              1e-9);
}

TEST(AntennaField, AppliesOnlyInsideFootprint) {
  const Mesh mesh(100, 1, 1, 2e-9, 50e-9, 1e-9);
  AntennaField af(mesh);
  Antenna a;
  a.x_center = 100e-9;
  a.width = 10e-9;
  a.frequency = 1e10;
  a.phase = kPi / 2.0;
  a.amplitude = 1e3;
  af.add(a);
  ASSERT_EQ(af.count(), 1u);

  const VectorField m(mesh, {0, 0, 1});
  VectorField h(mesh);
  af.accumulate(0.0, m, h);
  // Footprint is cells with centres in [95, 105] nm -> indices 47..52.
  EXPECT_NEAR(h[50].x, 1e3, 1e-6);
  EXPECT_DOUBLE_EQ(h[30].x, 0.0);
  EXPECT_DOUBLE_EQ(h[70].x, 0.0);
}

TEST(AntennaField, PhaseEncodesLogicOne) {
  const Mesh mesh(10, 1, 1, 2e-9, 50e-9, 1e-9);
  AntennaField af(mesh);
  Antenna a0;
  a0.x_center = 10e-9;
  a0.width = 20e-9;
  a0.frequency = 1e10;
  a0.amplitude = 1.0;
  Antenna a1 = a0;
  a1.phase = kPi;
  af.add(a0);
  af.add(a1);
  const VectorField m(mesh, {0, 0, 1});
  VectorField h(mesh);
  af.accumulate(0.025e-9, m, h);  // quarter period of 10 GHz
  // sin(x) + sin(x + pi) = 0: opposite phases cancel exactly.
  EXPECT_NEAR(h[2].x, 0.0, 1e-12);
}

TEST(AntennaField, RejectsOutOfMeshFootprint) {
  const Mesh mesh(10, 1, 1, 2e-9, 50e-9, 1e-9);
  AntennaField af(mesh);
  Antenna a;
  a.x_center = 1e-6;
  a.width = 10e-9;
  EXPECT_THROW(af.add(a), Error);
}

// -------------------------------------------------------------- demag local

TEST(DemagLocalField, FieldOpposesMagnetisation) {
  const Material mat = make_fecob();
  const DemagLocalField d(mat, {0.0, 0.1, 0.9});
  const Mesh mesh(2, 1, 1, 1e-9, 1e-9, 1e-9);
  const VectorField m(mesh, {0, 0, 1});
  VectorField h(mesh);
  d.accumulate(0.0, m, h);
  EXPECT_NEAR(h[0].z, -0.9 * mat.Ms, 1e-3);
  EXPECT_DOUBLE_EQ(h[0].x, 0.0);
}

TEST(DemagLocalField, FromShapeUsesAharoni) {
  const Material mat = make_fecob();
  const auto d = DemagLocalField::from_shape(mat, 1e-9, 1e-9, 1e-9);
  EXPECT_NEAR(d.factors().z, 1.0 / 3.0, 1e-9);
}

TEST(DemagLocalField, RejectsBadFactors) {
  const Material mat = make_fecob();
  EXPECT_THROW(DemagLocalField(mat, {0.5, 0.5, 0.5}), Error);
  EXPECT_THROW(DemagLocalField(mat, {-0.1, 0.2, 0.9}), Error);
}

// ---------------------------------------------------------------------- llg

TEST(Llg, PrecessionRateMatchesLarmor) {
  // m precessing about a fixed field H: omega = gamma mu0 H (alpha = 0).
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField m(mesh, Vec3{1, 0, 0});
  const VectorField h(mesh, Vec3{0, 0, 1e5});
  VectorField dmdt(mesh);
  LlgParams p;
  p.gamma_mu0 = kGammaMu0;
  p.alpha = 0.0;
  llg_rhs(p, m, h, dmdt);
  // dm/dt = -gamma (m x H) = -gamma * (x_hat x H z_hat)*H = +gamma H y_hat.
  EXPECT_NEAR(dmdt[0].y, kGammaMu0 * 1e5, 1.0);
  EXPECT_NEAR(dmdt[0].x, 0.0, 1e-9);
  EXPECT_NEAR(dmdt[0].z, 0.0, 1e-9);
}

TEST(Llg, DampingPullsTowardField) {
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField m(mesh, Vec3{1, 0, 0});
  const VectorField h(mesh, Vec3{0, 0, 1e5});
  VectorField dmdt(mesh);
  LlgParams p;
  p.gamma_mu0 = kGammaMu0;
  p.alpha = 0.1;
  llg_rhs(p, m, h, dmdt);
  EXPECT_GT(dmdt[0].z, 0.0);  // relaxing toward +z
}

TEST(Llg, RhsIsOrthogonalToM) {
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField m(mesh, Vec3{0.6, 0.48, 0.64});
  const VectorField h(mesh, Vec3{2e4, -1e4, 5e4});
  VectorField dmdt(mesh);
  LlgParams p;
  p.gamma_mu0 = kGammaMu0;
  p.alpha = 0.02;
  llg_rhs(p, m, h, dmdt);
  EXPECT_NEAR(dot(m[0], dmdt[0]), 0.0, 1e-3);
}

TEST(Llg, PerCellAlphaOverrides) {
  const Mesh mesh(2, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField m(mesh, Vec3{1, 0, 0});
  const VectorField h(mesh, Vec3{0, 0, 1e5});
  VectorField dmdt(mesh);
  LlgParams p;
  p.gamma_mu0 = kGammaMu0;
  p.alpha = 0.0;
  const std::vector<double> alphas{0.0, 0.5};
  p.alpha_per_cell = &alphas;
  llg_rhs(p, m, h, dmdt);
  EXPECT_NEAR(dmdt[0].z, 0.0, 1e-9);
  EXPECT_GT(dmdt[1].z, 0.0);
}

TEST(Llg, MaxTorqueZeroAtEquilibrium) {
  const Mesh mesh(2, 1, 1, 1e-9, 1e-9, 1e-9);
  const VectorField m(mesh, Vec3{0, 0, 1});
  const VectorField h(mesh, Vec3{0, 0, 1e5});
  EXPECT_NEAR(max_torque(m, h), 0.0, 1e-9);
}

// -------------------------------------------------------------- integrators

// Macrospin precession about +z at 1e5 A/m: period T = 2 pi/(gamma mu0 H).
class MacrospinConvergence : public ::testing::TestWithParam<Stepper> {};

TEST_P(MacrospinConvergence, CompletesOneRevolution) {
  const double H = 1e5;
  const double T = kTwoPi / (kGammaMu0 * H);
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField m(mesh, Vec3{1, 0, 0});

  const RhsFn rhs = [H](double, const VectorField& mm, VectorField& out) {
    LlgParams p;
    p.gamma_mu0 = kGammaMu0;
    p.alpha = 0.0;
    const VectorField h(mm.mesh(), Vec3{0, 0, H});
    llg_rhs(p, mm, h, out);
  };

  IntegratorOptions opts;
  opts.stepper = GetParam();
  opts.dt = T / 500.0;
  opts.dt_max = T / 100.0;
  opts.tolerance = 1e-8;
  Integrator integ(opts);
  integ.advance(rhs, m, 0.0, T);

  // After one full period the macrospin is back at +x.
  const double tol = (GetParam() == Stepper::kEuler) ? 0.05 : 1e-3;
  EXPECT_NEAR(m[0].x, 1.0, tol);
  EXPECT_NEAR(m[0].y, 0.0, 10 * tol);
  EXPECT_NEAR(m[0].norm(), 1.0, 1e-12);  // renormalised
}

INSTANTIATE_TEST_SUITE_P(AllSteppers, MacrospinConvergence,
                         ::testing::Values(Stepper::kEuler, Stepper::kHeun,
                                           Stepper::kRk4, Stepper::kRkf54));

TEST(Integrator, Rk4BeatsHeunAtSameStep) {
  const double H = 1e5;
  const double T = kTwoPi / (kGammaMu0 * H);
  const RhsFn rhs = [H](double, const VectorField& mm, VectorField& out) {
    LlgParams p;
    p.gamma_mu0 = kGammaMu0;
    const VectorField h(mm.mesh(), Vec3{0, 0, H});
    llg_rhs(p, mm, h, out);
  };
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);

  auto phase_error = [&](Stepper s) {
    VectorField m(mesh, Vec3{1, 0, 0});
    IntegratorOptions opts;
    opts.stepper = s;
    opts.dt = T / 40.0;
    opts.renormalize = false;
    Integrator integ(opts);
    integ.advance(rhs, m, 0.0, T);
    return std::abs(std::atan2(m[0].y, m[0].x));
  };

  EXPECT_LT(phase_error(Stepper::kRk4), phase_error(Stepper::kHeun) / 10.0);
}

TEST(Integrator, AdaptiveTakesFewerStepsWhenLoose) {
  const double H = 1e5;
  const double T = kTwoPi / (kGammaMu0 * H);
  const RhsFn rhs = [H](double, const VectorField& mm, VectorField& out) {
    LlgParams p;
    p.gamma_mu0 = kGammaMu0;
    const VectorField h(mm.mesh(), Vec3{0, 0, H});
    llg_rhs(p, mm, h, out);
  };
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);

  auto steps_at = [&](double tol) {
    VectorField m(mesh, Vec3{1, 0, 0});
    IntegratorOptions opts;
    opts.stepper = Stepper::kRkf54;
    opts.dt = T / 1000.0;
    opts.dt_max = T / 8.0;
    opts.tolerance = tol;
    Integrator integ(opts);
    return integ.advance(rhs, m, 0.0, T).steps_taken;
  };

  EXPECT_LT(steps_at(1e-4), steps_at(1e-8));
}

TEST(Integrator, StatsAccumulate) {
  const RhsFn rhs = [](double, const VectorField& mm, VectorField& out) {
    out = mm;
    out.fill({});
  };
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField m(mesh, Vec3{0, 0, 1});
  IntegratorOptions opts;
  opts.stepper = Stepper::kRk4;
  opts.dt = 1e-13;
  Integrator integ(opts);
  integ.advance(rhs, m, 0.0, 1e-12);
  EXPECT_EQ(integ.stats().steps_taken, 10u);
  EXPECT_EQ(integ.stats().rhs_evals, 40u);
}

TEST(Integrator, NameRoundTrip) {
  EXPECT_EQ(stepper_from_name("rk4"), Stepper::kRk4);
  EXPECT_EQ(stepper_from_name(stepper_name(Stepper::kHeun)), Stepper::kHeun);
  EXPECT_THROW(stepper_from_name("leapfrog"), Error);
}

// ------------------------------------------------------------------- energy

TEST(Energy, ZeemanEnergyOfUniformState) {
  const Material mat = make_fecob();
  const Mesh mesh(2, 1, 1, 1e-9, 1e-9, 1e-9);
  const VectorField m(mesh, {0, 0, 1});
  const UniformZeemanField z({0, 0, 1e5});
  const double e = term_energy(z, mat, m, 0.0);
  // E = -mu0 Ms H V_total.
  const double expect = -sw::util::kMu0 * mat.Ms * 1e5 * 2e-27;
  EXPECT_NEAR(e, expect, std::abs(expect) * 1e-12);
}

TEST(Energy, AnisotropyFavoursEasyAxis) {
  const Material mat = make_fecob();
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);
  const UniaxialAnisotropyField ani(mat);
  const VectorField easy(mesh, {0, 0, 1});
  const VectorField hard(mesh, {1, 0, 0});
  EXPECT_LT(term_energy(ani, mat, easy, 0.0),
            term_energy(ani, mat, hard, 0.0));
}

TEST(Energy, TableSumsTerms) {
  const Material mat = make_fecob();
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);
  const VectorField m(mesh, {0, 0, 1});
  const UniformZeemanField z({0, 0, 1e5});
  const UniaxialAnisotropyField ani(mat);
  const auto table = energy_table({&z, &ani}, mat, m, 0.0);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table.back().name, "total");
  EXPECT_NEAR(table.back().energy, table[0].energy + table[1].energy, 1e-30);
}

// -------------------------------------------------------------------- probe

TEST(Probe, SamplesAtRequestedRate) {
  const Mesh mesh(100, 1, 1, 2e-9, 50e-9, 1e-9);
  Probe p("test", mesh, 100e-9, 10e-9, 1e-12);
  const VectorField m(mesh, {0, 0, 1});
  for (int i = 0; i <= 10; ++i) {
    p.maybe_sample(static_cast<double>(i) * 0.5e-12, m);
  }
  // Deadlines at 0, 1, 2, 3, 4, 5 ps within [0, 5] ps.
  EXPECT_EQ(p.samples().size(), 6u);
  EXPECT_DOUBLE_EQ(p.samples()[1].t, 1e-12);
}

TEST(Probe, AveragesWindow) {
  const Mesh mesh(10, 1, 1, 2e-9, 50e-9, 1e-9);
  VectorField m(mesh, {0, 0, 1});
  m[5] = {1, 0, 0};
  Probe p("win", mesh, 11e-9, 4e-9, 1e-12);  // covers cells 4..6
  p.sample(0.0, m);
  EXPECT_NEAR(p.samples()[0].m.x, 1.0 / 3.0, 1e-12);
}

TEST(Probe, ComponentExtraction) {
  const Mesh mesh(4, 1, 1, 1e-9, 1e-9, 1e-9);
  Probe p("c", mesh, 2e-9, 2e-9, 1e-12);
  const VectorField m(mesh, {0.25, 0.5, 1.0});
  p.sample(0.0, m);
  p.sample(1e-12, m);
  EXPECT_EQ(p.component('y').size(), 2u);
  EXPECT_DOUBLE_EQ(p.component('y')[0], 0.5);
  EXPECT_THROW(p.component('w'), Error);
}

// --------------------------------------------------------------- simulation

TEST(Simulation, RelaxAlignsWithEasyAxis) {
  const Mesh mesh(8, 1, 1, 2e-9, 50e-9, 1e-9);
  Material mat = make_fecob();
  Simulation sim(mesh, mat);
  sim.add_term<UniaxialAnisotropyField>(mat);
  sim.add_term<DemagLocalField>(mat, demag_factors_waveguide(50e-9, 1e-9));
  // Tilt the state away from equilibrium.
  for (auto& v : sim.magnetization().values()) {
    v = Vec3{0.3, 0.1, 0.95}.normalized();
  }
  const double torque = sim.relax(10.0, 10e-9);
  EXPECT_LT(torque, 10.0);
  EXPECT_GT(sim.magnetization().average().z, 0.999);
}

TEST(Simulation, UniformPrecessionMatchesKittel) {
  // Uniform mode of the PMA film with local demag: the probe must ring at
  // f = gamma mu0 sqrt((Hi + Nx Ms)(Hi + Ny Ms)) / 2 pi.
  const Mesh mesh(4, 1, 1, 2e-9, 50e-9, 1e-9);
  Material mat = make_fecob();
  mat.alpha = 0.0;  // undamped ringdown
  const Vec3 nf = demag_factors_waveguide(50e-9, 1e-9);
  Simulation sim(mesh, mat);
  sim.add_term<UniaxialAnisotropyField>(mat);
  sim.add_term<DemagLocalField>(mat, nf);

  // Small uniform tilt, then free precession.
  for (auto& v : sim.magnetization().values()) {
    v = Vec3{0.02, 0.0, 1.0}.normalized();
  }
  auto& probe = sim.add_probe("fmr", 4e-9, 8e-9, 0.5e-12);
  sim.run_until(2e-9);

  // Count zero crossings of mx to estimate the frequency.
  const auto mx = probe.component('x');
  std::size_t crossings = 0;
  for (std::size_t i = 1; i < mx.size(); ++i) {
    if ((mx[i - 1] < 0.0) != (mx[i] < 0.0)) ++crossings;
  }
  const double duration = probe.samples().back().t;
  const double f_measured =
      static_cast<double>(crossings) / (2.0 * duration);

  const double hi = mat.anisotropy_field() - nf.z * mat.Ms;
  const double f_kittel = kGammaMu0 *
                          std::sqrt((hi + nf.x * mat.Ms) *
                                    (hi + nf.y * mat.Ms)) /
                          kTwoPi;
  EXPECT_NEAR(f_measured, f_kittel, 0.03 * f_kittel);
}

TEST(Simulation, AbsorbingEndsReduceReflection) {
  const Mesh mesh(50, 1, 1, 2e-9, 50e-9, 1e-9);
  Material mat = make_fecob();
  Simulation sim(mesh, mat);
  sim.add_term<UniaxialAnisotropyField>(mat);
  EXPECT_NO_THROW(sim.add_absorbing_ends(20e-9, 0.5));
  EXPECT_THROW(sim.add_absorbing_ends(60e-9), Error);  // > half the guide
}

TEST(Simulation, ProbeRegistrationAndTime) {
  const Mesh mesh(10, 1, 1, 2e-9, 50e-9, 1e-9);
  Simulation sim(mesh, make_fecob());
  sim.add_term<UniaxialAnisotropyField>(make_fecob());
  sim.add_probe("a", 10e-9, 4e-9, 1e-12);
  EXPECT_EQ(sim.probes().size(), 1u);
  sim.run_until(10e-12);
  EXPECT_DOUBLE_EQ(sim.time(), 10e-12);
  EXPECT_GE(sim.probes()[0].samples().size(), 10u);
}

}  // namespace

// Appended: conservation and reciprocity properties.
namespace {

TEST(Llg, UndampedPrecessionConservesFieldProjection) {
  // With alpha = 0 the angle between m and a static field is conserved:
  // m.z after many periods equals m.z at the start, to integrator accuracy.
  const double H = 2e5;
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField m(mesh, Vec3{0.6, 0.0, 0.8});
  const RhsFn rhs = [H](double, const VectorField& mm, VectorField& out) {
    LlgParams p;
    p.gamma_mu0 = kGammaMu0;
    p.alpha = 0.0;
    const VectorField h(mm.mesh(), Vec3{0, 0, H});
    llg_rhs(p, mm, h, out);
  };
  IntegratorOptions opts;
  opts.stepper = Stepper::kRk4;
  opts.dt = 1e-13;
  Integrator integ(opts);
  integ.advance(rhs, m, 0.0, 1e-9);  // ~56 precession periods
  EXPECT_NEAR(m[0].z, 0.8, 1e-6);
}

TEST(Llg, DampedMotionDecreasesZeemanEnergy) {
  const double H = 2e5;
  const Mesh mesh(1, 1, 1, 1e-9, 1e-9, 1e-9);
  VectorField m(mesh, Vec3{0.6, 0.0, 0.8});
  const RhsFn rhs = [H](double, const VectorField& mm, VectorField& out) {
    LlgParams p;
    p.gamma_mu0 = kGammaMu0;
    p.alpha = 0.05;
    const VectorField h(mm.mesh(), Vec3{0, 0, H});
    llg_rhs(p, mm, h, out);
  };
  IntegratorOptions opts;
  opts.stepper = Stepper::kRk4;
  opts.dt = 1e-13;
  Integrator integ(opts);
  double prev_mz = m[0].z;
  for (int k = 0; k < 5; ++k) {
    integ.advance(rhs, m, k * 2e-10, (k + 1) * 2e-10);
    EXPECT_GE(m[0].z, prev_mz);  // monotone approach to the field axis
    prev_mz = m[0].z;
  }
  EXPECT_GT(m[0].z, 0.95);
}

TEST(NewellTensor, ActionReactionSymmetry) {
  // N(r_ij) for equal cells is symmetric under exchanging the two cells
  // (offset negation) on the diagonal, and the off-diagonal picks up the
  // sign of the odd coordinates.
  const double dx = 2e-9, dy = 3e-9, dz = 1e-9;
  const DemagTensor f = newell_tensor(3 * dx, -2 * dy, dz, dx, dy, dz, 0.0);
  const DemagTensor r = newell_tensor(-3 * dx, 2 * dy, -dz, dx, dy, dz, 0.0);
  EXPECT_NEAR(f.xx, r.xx, 1e-15);
  EXPECT_NEAR(f.yy, r.yy, 1e-15);
  EXPECT_NEAR(f.zz, r.zz, 1e-15);
  EXPECT_NEAR(f.xy, r.xy, 1e-15);  // even in joint negation
  EXPECT_NEAR(f.xz, r.xz, 1e-15);
  EXPECT_NEAR(f.yz, r.yz, 1e-15);
}

TEST(Probe, NextDeadlineTracksGrid) {
  const Mesh mesh(10, 1, 1, 2e-9, 50e-9, 1e-9);
  Probe p("grid", mesh, 10e-9, 4e-9, 1e-12);
  const VectorField m(mesh, {0, 0, 1});
  EXPECT_DOUBLE_EQ(p.next_deadline(), 0.0);
  p.maybe_sample(0.0, m);
  EXPECT_DOUBLE_EQ(p.next_deadline(), 1e-12);
  p.maybe_sample(5.3e-12, m);  // jump over several deadlines
  EXPECT_DOUBLE_EQ(p.next_deadline(), 6e-12);
  EXPECT_EQ(p.samples().size(), 2u);
}

}  // namespace
