// Kernel-layer coverage: the SoA EvalPlan, the scalar/AVX2/AVX-512
// evaluation kernels, and the runtime dispatch. The load-bearing property
// is bit-exact equivalence — every kernel must decode exactly like the
// scalar gate path (DataParallelGate::evaluate) on every BooleanOp,
// including the full 2^16 operand sweep at n = 8 and word counts that
// exercise each kernel's word grouping (4/8 doubles, 8/16 floats) and
// scalar remainder tail.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/encoding.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "core/logic_ops.h"
#include "dispersion/fvmsw.h"
#include "mag/material.h"
#include "serve/plan_cache.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/eval_plan.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw::core;
using sw::disp::FvmswDispersion;
using sw::disp::Waveguide;
using sw::wavesim::BatchEvaluator;
using sw::wavesim::EvalPlan;
using sw::wavesim::kernels::avx2_kernel;
using sw::wavesim::kernels::avx512_kernel;
using sw::wavesim::kernels::Kernel;
using sw::wavesim::kernels::scalar_kernel;
using sw::wavesim::kernels::select_kernel;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

std::vector<double> channel_frequencies(std::size_t n) {
  std::vector<double> f;
  for (std::size_t i = 1; i <= n; ++i) {
    f.push_back(1e10 * static_cast<double>(i));
  }
  return f;
}

struct KernelFixture {
  Waveguide wg = paper_waveguide();
  FvmswDispersion model{wg};
  InlineGateDesigner designer{model};
  sw::wavesim::WaveEngine engine{model, wg.material.alpha};

  DataParallelGate majority_gate(std::size_t m, std::size_t n) const {
    GateSpec spec;
    spec.num_inputs = m;
    spec.frequencies = channel_frequencies(n);
    return DataParallelGate(designer.design(spec), engine);
  }
};

/// Packs the exhaustive operand sweep of a ParallelLogicGate into the
/// evaluate_bits matrix: binary ops sweep all 2^n x 2^n (a, b) word pairs
/// with the constant input pinned per op; unary ops sweep the 2^n a-words.
struct PackedSweep {
  std::size_t num_words = 0;
  std::vector<std::uint8_t> bits;           ///< num_words x slot_count
  std::vector<Bits> a_words, b_words;       ///< operands, per word
};

PackedSweep exhaustive_sweep(const ParallelLogicGate& logic, std::size_t n) {
  const std::size_t m = logic.layout().spec.num_inputs;
  const std::size_t stride = n * m;
  const bool binary = logic.data_inputs() == 2;
  // AND/NAND pin the third input to 0, OR/NOR to 1 (MAJ synthesis).
  const std::uint8_t pin =
      (logic.op() == BooleanOp::kOr || logic.op() == BooleanOp::kNor) ? 1 : 0;

  const std::size_t a_values = std::size_t{1} << n;
  const std::size_t b_values = binary ? a_values : 1;
  PackedSweep sweep;
  sweep.num_words = a_values * b_values;
  sweep.bits.resize(sweep.num_words * stride);
  sweep.a_words.reserve(sweep.num_words);
  sweep.b_words.reserve(sweep.num_words);
  std::size_t w = 0;
  for (std::size_t av = 0; av < a_values; ++av) {
    for (std::size_t bv = 0; bv < b_values; ++bv, ++w) {
      Bits a(n), b(n);
      for (std::size_t ch = 0; ch < n; ++ch) {
        a[ch] = static_cast<std::uint8_t>((av >> ch) & 1u);
        b[ch] = static_cast<std::uint8_t>((bv >> ch) & 1u);
        std::uint8_t* slot = sweep.bits.data() + w * stride + ch * m;
        slot[0] = a[ch];
        if (binary) {
          slot[1] = b[ch];
          slot[2] = pin;
        }
      }
      sweep.a_words.push_back(std::move(a));
      sweep.b_words.push_back(std::move(b));
    }
  }
  return sweep;
}

constexpr BooleanOp kAllOps[] = {BooleanOp::kAnd,    BooleanOp::kOr,
                                 BooleanOp::kNand,   BooleanOp::kNor,
                                 BooleanOp::kBuffer, BooleanOp::kNot};

// --------------------------------------------------------------- dispatch --

TEST(KernelDispatch, ScalarKernelIsAlwaysAvailable) {
  EXPECT_STREQ(scalar_kernel().name, "scalar");
  EXPECT_EQ(&select_kernel("scalar"), &scalar_kernel());
}

TEST(KernelDispatch, Avx2SelectionMatchesAvailability) {
  if (const Kernel* k = avx2_kernel()) {
    EXPECT_STREQ(k->name, "avx2");
    EXPECT_EQ(&select_kernel("avx2"), k);
  } else {
    EXPECT_THROW(select_kernel("avx2"), sw::util::Error);
  }
}

TEST(KernelDispatch, Avx512SelectionMatchesAvailability) {
  if (const Kernel* k = avx512_kernel()) {
    EXPECT_STREQ(k->name, "avx512");
    EXPECT_EQ(&select_kernel("avx512"), k);
  } else {
    // A build without the codegen (or a host without the instructions)
    // must fail loudly on a forced avx512 — never fall back silently.
    try {
      select_kernel("avx512");
      FAIL() << "expected sw::util::Error";
    } catch (const sw::util::Error& e) {
      EXPECT_NE(std::string(e.what()).find("avx512"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("unavailable"), std::string::npos)
          << e.what();
    }
  }
}

TEST(KernelDispatch, UnknownNamesAreRejected) {
  EXPECT_THROW(select_kernel(""), sw::util::Error);
  EXPECT_THROW(select_kernel("sse2"), sw::util::Error);
  EXPECT_THROW(select_kernel("AVX2"), sw::util::Error);  // names are exact
  // The unknown-name error enumerates the accepted names straight from the
  // dispatch table, so it can never drift from the kernels that exist.
  try {
    select_kernel("avx1024");
    FAIL() << "expected sw::util::Error";
  } catch (const sw::util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'scalar'"), std::string::npos) << what;
    EXPECT_NE(what.find("'avx2'"), std::string::npos) << what;
    EXPECT_NE(what.find("'avx512'"), std::string::npos) << what;
  }
}

TEST(KernelDispatch, BadEnvOverrideFailsLoudlyAndNamesTheVariable) {
  // The bad-SW_EVAL_KERNEL path must be a hard error that names the
  // variable — never a silent scalar fallback that reads as a perf
  // regression later. kernel_from_env is exactly the function
  // active_kernel() feeds the environment value through, so exercising it
  // directly covers the env path without fighting the process-wide cache.
  try {
    sw::wavesim::kernels::kernel_from_env("sclar");  // the classic typo
    FAIL() << "expected sw::util::Error";
  } catch (const sw::util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("SW_EVAL_KERNEL"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("sclar"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(sw::wavesim::kernels::kernel_from_env(""), sw::util::Error);
  // Valid names pass through to the same kernels select_kernel returns.
  EXPECT_EQ(&sw::wavesim::kernels::kernel_from_env("scalar"),
            &scalar_kernel());
  // SW_EVAL_KERNEL=avx512 is a valid name everywhere; on builds/hosts
  // without the kernel it must fail loudly naming the variable, not fall
  // back to a slower kernel.
  if (const Kernel* k = avx512_kernel()) {
    EXPECT_EQ(&sw::wavesim::kernels::kernel_from_env("avx512"), k);
  } else {
    try {
      sw::wavesim::kernels::kernel_from_env("avx512");
      FAIL() << "expected sw::util::Error";
    } catch (const sw::util::Error& e) {
      EXPECT_NE(std::string(e.what()).find("SW_EVAL_KERNEL"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(PrecisionDispatch, ParseAndEnvOverride) {
  using sw::wavesim::parse_precision;
  using sw::wavesim::Precision;
  EXPECT_EQ(parse_precision("f64"), Precision::kFloat64);
  EXPECT_EQ(parse_precision("f32"), Precision::kFloat32);
  EXPECT_THROW(parse_precision(""), sw::util::Error);
  EXPECT_THROW(parse_precision("auto"), sw::util::Error);  // not forceable
  EXPECT_THROW(parse_precision("F32"), sw::util::Error);   // names are exact
  EXPECT_THROW(parse_precision("double"), sw::util::Error);

  // The env wrapper names the variable, like the kernel one.
  try {
    sw::wavesim::precision_from_env("f16");
    FAIL() << "expected sw::util::Error";
  } catch (const sw::util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("SW_EVAL_PRECISION"),
              std::string::npos)
        << e.what();
  }

  // Resolution honours the process-wide choice and passes explicit
  // requests through untouched.
  const Precision active = sw::wavesim::active_precision();
  if (const char* env = std::getenv("SW_EVAL_PRECISION"); env && *env) {
    EXPECT_EQ(active, parse_precision(env));
  } else {
    EXPECT_EQ(active, Precision::kFloat64);
  }
  EXPECT_EQ(sw::wavesim::resolve_precision(Precision::kAuto), active);
  EXPECT_EQ(sw::wavesim::resolve_precision(Precision::kFloat32),
            Precision::kFloat32);
  EXPECT_EQ(sw::wavesim::resolve_precision(Precision::kFloat64),
            Precision::kFloat64);
}

TEST(KernelDispatch, ActiveKernelHonoursOverrideOrPicksBest) {
  const std::string active(sw::wavesim::active_kernel_name());
  // The forced-scalar CI job runs the whole suite under
  // SW_EVAL_KERNEL=scalar; with no override the best supported kernel wins.
  if (const char* env = std::getenv("SW_EVAL_KERNEL"); env && *env) {
    EXPECT_EQ(active, std::string(env));
  } else {
    EXPECT_EQ(active, avx512_kernel() != nullptr
                          ? "avx512"
                          : (avx2_kernel() != nullptr ? "avx2" : "scalar"));
  }
  // The cached choice is stable.
  EXPECT_EQ(std::string(sw::wavesim::active_kernel_name()), active);
}

// -------------------------------------------------------------- plan shape --

TEST(EvalPlan, MirrorsLayoutStructure) {
  const KernelFixture fix;
  const auto gate = fix.majority_gate(3, 4);
  const EvalPlan plan(gate);

  EXPECT_EQ(plan.num_channels(), 4u);
  EXPECT_EQ(plan.num_inputs(), 3u);
  EXPECT_EQ(plan.slot_count(), 12u);
  EXPECT_EQ(plan.num_detectors(), gate.layout().detectors.size());

  const auto offsets = plan.detector_offsets();
  ASSERT_EQ(offsets.size(), plan.num_detectors() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), plan.num_contributions());
  for (std::size_t d = 0; d + 1 < offsets.size(); ++d) {
    EXPECT_LE(offsets[d], offsets[d + 1]);
  }
  ASSERT_EQ(plan.re0().size(), plan.num_contributions());
  ASSERT_EQ(plan.im0().size(), plan.num_contributions());
  ASSERT_EQ(plan.re1().size(), plan.num_contributions());
  ASSERT_EQ(plan.im1().size(), plan.num_contributions());
  ASSERT_EQ(plan.slots().size(), plan.num_contributions());
  for (std::size_t i = 0; i < plan.num_contributions(); ++i) {
    EXPECT_LT(plan.slots()[i], plan.slot_count());
    EXPECT_EQ(plan.slots()[i],
              plan.channels()[i] * plan.num_inputs() + plan.inputs()[i]);
  }
  for (const std::size_t ch : plan.detector_channels()) {
    EXPECT_LT(ch, plan.num_channels());
  }
}

TEST(EvalPlan, ArraysAreCacheLineAligned) {
  const KernelFixture fix;
  const auto gate = fix.majority_gate(3, 8);
  const EvalPlan plan(gate);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(plan.re0().data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(plan.im0().data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(plan.re1().data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(plan.im1().data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(plan.slots().data()) % 64, 0u);
}

TEST(EvalPlan, SharedPlanMustMatchTheGate) {
  const KernelFixture fix;
  const auto gate3 = fix.majority_gate(3, 4);
  const auto gate5 = fix.majority_gate(5, 4);
  auto plan3 = std::make_shared<const EvalPlan>(gate3);
  EXPECT_THROW(BatchEvaluator(gate5, plan3, {}), sw::util::Error);
  EXPECT_THROW(BatchEvaluator(gate3, nullptr, {}), sw::util::Error);
  EXPECT_THROW(BatchEvaluator(gate3, plan3, {.freq_tol = 1e-3}),
               sw::util::Error);
  // A matching share works and evaluates identically to a rebuilt plan.
  const BatchEvaluator shared(gate3, plan3, {});
  EXPECT_EQ(&shared.plan(), plan3.get());
  const BatchEvaluator rebuilt(gate3);
  const auto patterns = all_patterns(3);
  const auto a = shared.evaluate_uniform(patterns);
  const auto b = rebuilt.evaluate_uniform(patterns);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    for (std::size_t ch = 0; ch < a[w].size(); ++ch) {
      EXPECT_EQ(a[w][ch].logic, b[w][ch].logic);
      EXPECT_EQ(a[w][ch].phase, b[w][ch].phase);
    }
  }
}

TEST(EvalPlan, Float32ArraysAndMarginMetadata) {
  const KernelFixture fix;
  const auto gate = fix.majority_gate(3, 8);

  const EvalPlan f64(gate, sw::wavesim::kDefaultFreqTol,
                     sw::wavesim::Precision::kFloat64);
  EXPECT_EQ(f64.requested_precision(), sw::wavesim::Precision::kFloat64);
  EXPECT_EQ(f64.effective_precision(), sw::wavesim::Precision::kFloat64);
  EXPECT_FALSE(f64.has_f32());
  EXPECT_TRUE(f64.re0_f32().empty());
  EXPECT_TRUE(f64.f32_rejection().empty());  // nothing was rejected

  const EvalPlan f32(gate, sw::wavesim::kDefaultFreqTol,
                     sw::wavesim::Precision::kFloat32);
  ASSERT_TRUE(f32.has_f32()) << f32.f32_rejection();
  EXPECT_EQ(f32.effective_precision(), sw::wavesim::Precision::kFloat32);
  ASSERT_EQ(f32.re0_f32().size(), f32.num_contributions());
  ASSERT_EQ(f32.re1_f32().size(), f32.num_contributions());
  for (std::size_t i = 0; i < f32.num_contributions(); ++i) {
    EXPECT_EQ(f32.re0_f32()[i], static_cast<float>(f32.re0()[i]));
    EXPECT_EQ(f32.re1_f32()[i], static_cast<float>(f32.re1()[i]));
  }
  // The margin analysis publishes its numbers: a real margin, a nonzero
  // error bound and plenty of head-room between them on a paper layout.
  EXPECT_GT(f32.min_decode_margin(), 0.0);
  EXPECT_GT(f32.f32_error_bound(), 0.0);
  EXPECT_GT(f32.min_decode_margin(), 8.0 * f32.f32_error_bound());
  EXPECT_TRUE(f32.f32_rejection().empty());
}

TEST(EvalPlan, SharedPlanPrecisionMustMatchTheOptions) {
  const KernelFixture fix;
  const auto gate = fix.majority_gate(3, 4);
  auto f32 = std::make_shared<const EvalPlan>(
      gate, sw::wavesim::kDefaultFreqTol, sw::wavesim::Precision::kFloat32);
  // A plan built at one precision cannot back an evaluator asked for the
  // other: silently serving it would misreport effective_precision().
  EXPECT_THROW(
      BatchEvaluator(gate, f32,
                     {.precision = sw::wavesim::Precision::kFloat64}),
      sw::util::Error);
  const BatchEvaluator ok(gate, f32,
                          {.precision = sw::wavesim::Precision::kFloat32});
  EXPECT_EQ(&ok.plan(), f32.get());
}

TEST(EvalPlan, PlanCacheServesTheSoAPlanItBuilt) {
  const KernelFixture fix;
  sw::serve::PlanCache cache(fix.engine, 4);
  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = channel_frequencies(4);
  const auto layout = fix.designer.design(spec);
  const auto lookup = cache.get_or_build(layout);
  ASSERT_NE(lookup.plan, nullptr);
  // The evaluator shares the cached SoA plan — same object, no conversion.
  EXPECT_EQ(&lookup.plan->evaluator().plan(), &lookup.plan->plan());
}

// ------------------------------------------------------------ equivalence --

/// Decodes `sweep` through `kernel` and checks every word against the
/// scalar gate path (ParallelLogicGate::evaluate) and the Boolean
/// reference.
void expect_kernel_matches_scalar_gate(const ParallelLogicGate& logic,
                                       const BatchEvaluator& evaluator,
                                       const PackedSweep& sweep,
                                       const Kernel& kernel, std::size_t n) {
  const auto bits =
      evaluator.evaluate_bits(sweep.num_words, sweep.bits, kernel);
  ASSERT_EQ(bits.size(), sweep.num_words * n);
  for (std::size_t w = 0; w < sweep.num_words; ++w) {
    const auto want = logic.evaluate(sweep.a_words[w], sweep.b_words[w]);
    for (std::size_t ch = 0; ch < n; ++ch) {
      ASSERT_EQ(bits[w * n + ch], want[ch])
          << boolean_op_name(logic.op()) << " kernel " << kernel.name
          << " word " << w << " channel " << ch;
      ASSERT_EQ(want[ch] != 0,
                boolean_op_eval(logic.op(), sweep.a_words[w][ch] != 0,
                                sweep.b_words[w][ch] != 0))
          << "scalar gate path diverged from the Boolean reference";
    }
  }
}

TEST(KernelEquivalence, EveryOpExhaustiveAtEveryWidth) {
  const KernelFixture fix;
  // n = 8 on binary ops is the full 2^16-word sweep of the acceptance
  // criteria; n = 1 exercises single-detector plans, n = 4 the mid size.
  for (const std::size_t n : {1ul, 4ul, 8ul}) {
    for (const BooleanOp op : kAllOps) {
      const ParallelLogicGate logic(op, channel_frequencies(n), fix.designer,
                                    fix.engine);
      const BatchEvaluator evaluator(logic.gate());
      const PackedSweep sweep = exhaustive_sweep(logic, n);
      expect_kernel_matches_scalar_gate(logic, evaluator, sweep,
                                        scalar_kernel(), n);
      if (const Kernel* avx2 = avx2_kernel()) {
        expect_kernel_matches_scalar_gate(logic, evaluator, sweep, *avx2, n);
      }
      if (const Kernel* avx512 = avx512_kernel()) {
        expect_kernel_matches_scalar_gate(logic, evaluator, sweep, *avx512,
                                          n);
      }
    }
  }
}

TEST(KernelEquivalence, Float32DecodesBitIdenticalOnEveryOp) {
  // The acceptance bar of the f32 plan: decodes bit-identical to f64 on
  // every BooleanOp at n = 1/4/8, including the full 2^16 operand sweep —
  // guaranteed per layout by the plan's build-time margin analysis, which
  // must accept f32 for every designed (paper-margin) layout here.
  const KernelFixture fix;
  for (const std::size_t n : {1ul, 4ul, 8ul}) {
    for (const BooleanOp op : kAllOps) {
      const ParallelLogicGate logic(op, channel_frequencies(n), fix.designer,
                                    fix.engine);
      const BatchEvaluator f64(logic.gate(),
                               {.precision = sw::wavesim::Precision::kFloat64});
      const BatchEvaluator f32(logic.gate(),
                               {.precision = sw::wavesim::Precision::kFloat32});
      ASSERT_EQ(f32.effective_precision(), sw::wavesim::Precision::kFloat32)
          << boolean_op_name(op) << " n=" << n << ": margin analysis "
          << "unexpectedly rejected f32: " << f32.plan().f32_rejection();
      const PackedSweep sweep = exhaustive_sweep(logic, n);
      const auto want =
          f64.evaluate_bits(sweep.num_words, sweep.bits, scalar_kernel());
      EXPECT_EQ(f32.evaluate_bits(sweep.num_words, sweep.bits,
                                  scalar_kernel()),
                want)
          << boolean_op_name(op) << " n=" << n << " (f32 scalar)";
      if (const Kernel* avx2 = avx2_kernel()) {
        EXPECT_EQ(f32.evaluate_bits(sweep.num_words, sweep.bits, *avx2), want)
            << boolean_op_name(op) << " n=" << n << " (f32 avx2)";
      }
      if (const Kernel* avx512 = avx512_kernel()) {
        EXPECT_EQ(f32.evaluate_bits(sweep.num_words, sweep.bits, *avx512),
                  want)
            << boolean_op_name(op) << " n=" << n << " (f32 avx512)";
      }
    }
  }
}

TEST(KernelEquivalence, Float32OddWordCountsExerciseTheWideTails) {
  // The f32 AVX2 kernel groups EIGHT words per register and the AVX-512
  // one SIXTEEN; word counts below, at and just past both group sizes
  // exercise each kernel's f32 scalar tail (15/17 straddle the 16-wide
  // group, 65 leaves a 1-word tail after four full 16-wide groups).
  std::vector<const Kernel*> simd;
  if (const Kernel* avx2 = avx2_kernel()) simd.push_back(avx2);
  if (const Kernel* avx512 = avx512_kernel()) simd.push_back(avx512);
  if (simd.empty()) {
    GTEST_SKIP() << "no SIMD kernel available on this build/host";
  }
  const KernelFixture fix;
  const auto gate = fix.majority_gate(3, 4);
  const BatchEvaluator evaluator(
      gate, {.num_threads = 1, .precision = sw::wavesim::Precision::kFloat32});
  ASSERT_EQ(evaluator.effective_precision(),
            sw::wavesim::Precision::kFloat32);
  const std::size_t stride = evaluator.slot_count();

  std::mt19937 rng(53);
  std::uniform_int_distribution<int> byte(0, 255);  // non-canonical too
  for (const std::size_t words : {1ul, 3ul, 7ul, 8ul, 9ul, 15ul, 16ul, 17ul,
                                  31ul, 33ul, 65ul}) {
    std::vector<std::uint8_t> packed(words * stride);
    for (auto& b : packed) b = static_cast<std::uint8_t>(byte(rng));
    const auto want = evaluator.evaluate_bits(words, packed, scalar_kernel());
    for (const Kernel* k : simd) {
      EXPECT_EQ(evaluator.evaluate_bits(words, packed, *k), want)
          << words << " words, kernel " << k->name;
    }
  }
}

TEST(KernelEquivalence, ActiveKernelMatchesScalarKernel) {
  const KernelFixture fix;
  const ParallelLogicGate logic(BooleanOp::kAnd, channel_frequencies(8),
                                fix.designer, fix.engine);
  const BatchEvaluator evaluator(logic.gate());
  const PackedSweep sweep = exhaustive_sweep(logic, 8);
  EXPECT_EQ(evaluator.evaluate_bits(sweep.num_words, sweep.bits),
            evaluator.evaluate_bits(sweep.num_words, sweep.bits,
                                    scalar_kernel()));
}

TEST(KernelEquivalence, OddWordCountsExerciseTheVectorTail) {
  std::vector<const Kernel*> simd;
  if (const Kernel* avx2 = avx2_kernel()) simd.push_back(avx2);
  if (const Kernel* avx512 = avx512_kernel()) simd.push_back(avx512);
  if (simd.empty()) {
    GTEST_SKIP() << "no SIMD kernel available on this build/host";
  }
  const KernelFixture fix;
  const auto gate = fix.majority_gate(3, 4);
  const BatchEvaluator evaluator(gate, {.num_threads = 1});
  const std::size_t stride = evaluator.slot_count();

  std::mt19937 rng(31);
  std::bernoulli_distribution coin(0.5);
  // 1..3 words never enter AVX2's 4-word loop and 1..7 never enter
  // AVX-512's 8-word loop; 5/7/9 leave AVX2 tails, 9 leaves an AVX-512
  // 1-word tail; 31/33 leave tails after several full groups of either
  // width.
  for (const std::size_t words : {1ul, 2ul, 3ul, 4ul, 5ul, 6ul, 7ul, 9ul,
                                  31ul, 32ul, 33ul}) {
    std::vector<std::uint8_t> packed(words * stride);
    for (auto& b : packed) b = coin(rng) ? 1 : 0;
    const auto want = evaluator.evaluate_bits(words, packed, scalar_kernel());
    for (const Kernel* k : simd) {
      EXPECT_EQ(evaluator.evaluate_bits(words, packed, *k), want)
          << words << " words, kernel " << k->name;
    }
  }
}

TEST(KernelEquivalence, NonCanonicalBytesDecodeIdentically) {
  // evaluate_bits documents a bit per byte but never validates the values;
  // the scalar kernel treats any nonzero byte as a set bit, and the SIMD
  // mask builds must agree (a lane mask keyed on bit 0 alone would
  // silently decode 2, 4, 0x80... as zeros).
  std::vector<const Kernel*> simd;
  if (const Kernel* avx2 = avx2_kernel()) simd.push_back(avx2);
  if (const Kernel* avx512 = avx512_kernel()) simd.push_back(avx512);
  if (simd.empty()) {
    GTEST_SKIP() << "no SIMD kernel available on this build/host";
  }
  const KernelFixture fix;
  const auto gate = fix.majority_gate(3, 4);
  const BatchEvaluator evaluator(gate, {.num_threads = 1});
  const std::size_t words = 64;
  std::mt19937 rng(41);
  std::uniform_int_distribution<int> byte(0, 255);
  std::vector<std::uint8_t> packed(words * evaluator.slot_count());
  for (auto& b : packed) b = static_cast<std::uint8_t>(byte(rng));
  const auto want = evaluator.evaluate_bits(words, packed, scalar_kernel());
  for (const Kernel* k : simd) {
    EXPECT_EQ(evaluator.evaluate_bits(words, packed, *k), want)
        << "kernel " << k->name;
  }
}

TEST(KernelEquivalence, ThreadedChunkingDoesNotChangeDecodes) {
  // Thread-pool chunk boundaries shift where the AVX2 4-word groups fall;
  // decodes are per-word and must not move.
  const KernelFixture fix;
  const auto gate = fix.majority_gate(3, 4);
  const std::size_t words = 203;  // prime-ish: uneven chunks + vector tails
  std::mt19937 rng(37);
  std::bernoulli_distribution coin(0.5);
  const BatchEvaluator single(gate, {.num_threads = 1});
  std::vector<std::uint8_t> packed(words * single.slot_count());
  for (auto& b : packed) b = coin(rng) ? 1 : 0;
  const auto want = single.evaluate_bits(words, packed);
  for (const std::size_t threads : {2ul, 3ul, 5ul}) {
    const BatchEvaluator pooled(gate, {.num_threads = threads});
    EXPECT_EQ(pooled.evaluate_bits(words, packed), want)
        << threads << " threads";
  }
}

// -------------------------------------------------------------- validation --

TEST(EvaluateBitsValidation, RejectsShapeMismatch) {
  const KernelFixture fix;
  const auto gate = fix.majority_gate(3, 2);
  const BatchEvaluator evaluator(gate);
  const std::vector<std::uint8_t> packed(evaluator.slot_count() * 2);
  EXPECT_THROW(evaluator.evaluate_bits(1, packed), sw::util::Error);
  EXPECT_THROW(evaluator.evaluate_bits(3, packed), sw::util::Error);
  EXPECT_NO_THROW(evaluator.evaluate_bits(2, packed));
}

TEST(EvaluateBitsValidation, GuardsWordCountOverflow) {
  const KernelFixture fix;
  const auto gate = fix.majority_gate(3, 2);
  const BatchEvaluator evaluator(gate);
  ASSERT_EQ(evaluator.slot_count(), 6u);
  // num_words * slot_count wraps around size_t; without the guard the
  // wrapped product could even equal bits.size() and drive the kernel far
  // out of bounds. Must throw a clear error, not allocate or crash.
  const std::vector<std::uint8_t> tiny(4);
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(evaluator.evaluate_bits(huge, tiny), sw::util::Error);
  // A wrapping product that lands exactly on bits.size(): (2^64 / 8) * 8
  // + 4 distinct words would wrap; pick num_words so num_words * 6 wraps
  // to tiny.size() modulo 2^64.
  const std::size_t wrap =
      (std::numeric_limits<std::size_t>::max() / 6) + 1;  // 6 * wrap wraps
  EXPECT_THROW(evaluator.evaluate_bits(wrap, tiny), sw::util::Error);
}

TEST(EvaluateBitsValidation, ChannelResultPathGuardsWordCountOverflow) {
  // The kernelised evaluate_with packs num_words x slot_count bytes; a
  // wrapping product must throw before it can size a tiny buffer and
  // drive the packing loop far out of bounds.
  const KernelFixture fix;
  const auto gate = fix.majority_gate(3, 2);
  const BatchEvaluator evaluator(gate);
  const auto accessor = [](std::size_t, std::size_t, std::size_t) {
    return std::uint8_t{0};
  };
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(evaluator.evaluate_with(huge, accessor), sw::util::Error);
  const std::size_t wrap =
      (std::numeric_limits<std::size_t>::max() / 6) + 1;  // 6 * wrap wraps
  EXPECT_THROW(evaluator.evaluate_with(wrap, accessor), sw::util::Error);
}

}  // namespace
