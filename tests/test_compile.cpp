// Synthesis correctness: every truth table the compiler accepts must come
// back as a majority chain computing exactly that function (exhaustively for
// n <= 3, sampled plus structured specials for n = 4), and lowering a chain
// to an EvalProgram must be bit-exact against both the Boolean reference and
// the per-stage physics path (MajorityCascade) on every channel.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "compile/lower.h"
#include "compile/synth.h"
#include "compile/truth_table.h"
#include "core/cascade.h"
#include "core/encoding.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "mag/material.h"
#include "util/error.h"
#include "wavesim/eval_program.h"
#include "wavesim/wave_engine.h"

namespace {

using sw::compile::CompiledCircuit;
using sw::compile::NpnClass;
using sw::compile::Synthesizer;
using sw::compile::TruthTable;
using sw::core::Bits;
using sw::core::GateSpec;
using sw::core::InlineGateDesigner;
using sw::core::MajorityCascade;
using sw::disp::FvmswDispersion;
using sw::disp::Waveguide;
using sw::wavesim::EvalProgram;
using sw::wavesim::ProgramSpec;
using sw::wavesim::WaveEngine;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

std::vector<double> channel_frequencies(std::size_t n) {
  std::vector<double> f;
  for (std::size_t i = 1; i <= n; ++i) {
    f.push_back(1e10 * static_cast<double>(i));
  }
  return f;
}

struct CompileFixture {
  Waveguide wg = paper_waveguide();
  FvmswDispersion model{wg};
  InlineGateDesigner designer{model};
  WaveEngine engine{model, wg.material.alpha};

  GateSpec base_spec(std::size_t n) const {
    GateSpec spec;
    spec.num_inputs = 3;
    spec.frequencies = channel_frequencies(n);
    return spec;
  }
};

// --------------------------------------------------------------------------
// TruthTable mechanics

TEST(TruthTable, FromStringMsbFirst) {
  // Column is listed from assignment 2^n-1 down to 0.
  const TruthTable maj = TruthTable::from_string("11101000");
  EXPECT_EQ(maj.num_inputs(), 3u);
  EXPECT_EQ(maj.bits(), 0xE8u);
  EXPECT_FALSE(maj.value(0b000));
  EXPECT_FALSE(maj.value(0b001));
  EXPECT_TRUE(maj.value(0b011));
  EXPECT_TRUE(maj.value(0b111));
}

TEST(TruthTable, CofactorSplitsShannon) {
  const TruthTable maj(3, 0xE8);
  // MAJ(a,b,1) = OR(a,b); MAJ(a,b,0) = AND(a,b), splitting on input 2.
  EXPECT_EQ(maj.cofactor(2, true).bits(), 0b1110u);
  EXPECT_EQ(maj.cofactor(2, false).bits(), 0b1000u);
}

TEST(TruthTable, NpnTransformRoundTrip) {
  for (std::uint32_t bits = 0; bits < 256; ++bits) {
    const TruthTable t(3, static_cast<std::uint16_t>(bits));
    const NpnClass cls = sw::compile::npn_canonicalize(t);
    // The stored transform maps t to its representative.
    EXPECT_EQ(cls.transform.apply(t), cls.representative);
    // Canonicalisation is idempotent across the class.
    EXPECT_EQ(sw::compile::npn_canonicalize(cls.representative).representative,
              cls.representative);
  }
}

// --------------------------------------------------------------------------
// Synthesis: exhaustive and sampled equivalence

void expect_compiles_exactly(Synthesizer& synth, const TruthTable& t) {
  const CompiledCircuit circuit = synth.compile(t);
  ASSERT_EQ(circuit.num_inputs, t.num_inputs());
  ASSERT_FALSE(circuit.nodes.empty());
  EXPECT_EQ(circuit.table(), t) << "n=" << t.num_inputs()
                                << " bits=" << t.bits();
  EXPECT_EQ(circuit.depth, sw::compile::circuit_depth(circuit));
  EXPECT_EQ(circuit.function, t);
  // Topological discipline: fanins reference strictly earlier nodes.
  for (std::size_t i = 0; i < circuit.nodes.size(); ++i) {
    for (const sw::compile::Literal& lit : circuit.nodes[i].in) {
      if (lit.kind == sw::compile::Literal::Kind::kNode) {
        EXPECT_LT(lit.index, i);
      }
      if (lit.kind == sw::compile::Literal::Kind::kInput) {
        EXPECT_LT(lit.index, circuit.num_inputs);
      }
    }
  }
}

TEST(Synthesizer, ExhaustiveUpToThreeInputs) {
  Synthesizer synth;
  for (std::size_t n = 1; n <= 3; ++n) {
    const std::uint32_t tables = 1u << (1u << n);
    for (std::uint32_t bits = 0; bits < tables; ++bits) {
      expect_compiles_exactly(synth, TruthTable(n, static_cast<std::uint16_t>(bits)));
    }
  }
  // 2 + 16 + 256 top-level requests collapse onto a handful of NPN classes
  // (Shannon cofactors recurse through compile(), so requests may exceed the
  // top-level count).
  EXPECT_GT(synth.stats().memo_hits, 0u);
  EXPECT_GE(synth.stats().requests, 2u + 16u + 256u);
}

TEST(Synthesizer, SampledFourInputTables) {
  Synthesizer synth;
  // Structured specials first: parity, majority-like, mux.
  expect_compiles_exactly(synth, TruthTable(4, 0x6996));  // XOR4
  expect_compiles_exactly(synth, TruthTable(4, 0xE8E8));  // MAJ3(a,b,c)
  expect_compiles_exactly(synth, TruthTable(4, 0xF888));  // MAJ-ish threshold
  expect_compiles_exactly(synth, TruthTable(4, 0xCACA));  // MUX(a, b, c)
  expect_compiles_exactly(synth, TruthTable(4, 0x0000));  // const 0
  expect_compiles_exactly(synth, TruthTable(4, 0xFFFF));  // const 1
  // Deterministic LCG sample over the 65536-table space.
  std::uint32_t x = 0x12345u;
  for (int i = 0; i < 300; ++i) {
    x = x * 1664525u + 1013904223u;
    expect_compiles_exactly(synth, TruthTable(4, static_cast<std::uint16_t>(x >> 16)));
  }
  EXPECT_GT(synth.stats().exact + synth.stats().decomposed, 0u);
}

TEST(Synthesizer, KnownMinimalChains) {
  Synthesizer synth;
  // One gate suffices for MAJ, AND, OR (free constants).
  EXPECT_EQ(synth.compile(TruthTable(3, 0xE8)).nodes.size(), 1u);
  EXPECT_EQ(synth.compile(TruthTable(2, 0b1000)).nodes.size(), 1u);
  EXPECT_EQ(synth.compile(TruthTable(2, 0b1110)).nodes.size(), 1u);
  // XOR2 needs exactly 3 majority gates (no MAJ chain of 2 computes it).
  EXPECT_EQ(synth.compile(TruthTable(2, 0b0110)).nodes.size(), 3u);
  // NAND and NOR are one gate with a free output complement.
  EXPECT_EQ(synth.compile(TruthTable(2, 0b0111)).nodes.size(), 1u);
  EXPECT_EQ(synth.compile(TruthTable(2, 0b0001)).nodes.size(), 1u);
}

TEST(Synthesizer, MemoSharesNpnClasses) {
  Synthesizer synth;
  synth.compile(TruthTable(2, 0b1000));  // AND
  const std::size_t after_first = synth.memo_size();
  synth.compile(TruthTable(2, 0b1110));  // OR = NPN-equivalent to AND
  synth.compile(TruthTable(2, 0b0111));  // NAND
  synth.compile(TruthTable(2, 0b0010));  // a AND NOT b
  EXPECT_EQ(synth.memo_size(), after_first);
  EXPECT_EQ(synth.stats().memo_hits, 3u);
}

// --------------------------------------------------------------------------
// Lowering: EvalProgram vs Boolean reference on every channel

TEST(Lowering, ProgramMatchesReferenceExhaustively) {
  const CompileFixture fix;
  Synthesizer synth;
  const std::size_t n = 4;
  const std::array<std::uint16_t, 5> functions = {
      0x96,  // XOR3 (parity)
      0xE8,  // MAJ3
      0xCA,  // MUX(a2; a1, a0)
      0x1B,  // random-ish
      0x80,  // AND3
  };
  for (const std::uint16_t bits : functions) {
    const TruthTable t(3, bits);
    const CompiledCircuit circuit = synth.compile(t);
    const ProgramSpec spec = sw::compile::lower_to_program(circuit, fix.base_spec(n));
    EXPECT_EQ(spec.num_stages(), circuit.nodes.size());
    EXPECT_EQ(spec.depth(), circuit.depth);
    const EvalProgram program(spec, fix.designer, fix.engine);

    // Words cover all 8 assignments; channel ch carries assignment
    // (w + ch) % 8 so channels exercise independent data.
    const std::size_t num_words = 8;
    std::vector<std::uint8_t> packed(num_words * program.num_primary_slots());
    for (std::size_t w = 0; w < num_words; ++w) {
      for (std::size_t ch = 0; ch < n; ++ch) {
        const std::size_t a = (w + ch) % 8;
        for (std::size_t i = 0; i < 3; ++i) {
          packed[w * program.num_primary_slots() + ch * 3 + i] =
              static_cast<std::uint8_t>((a >> i) & 1);
        }
      }
    }
    const auto out = program.evaluate_bits(num_words, packed);
    ASSERT_EQ(out.size(), num_words * n);
    for (std::size_t w = 0; w < num_words; ++w) {
      for (std::size_t ch = 0; ch < n; ++ch) {
        const std::size_t a = (w + ch) % 8;
        EXPECT_EQ(out[w * n + ch], t.value(a) ? 1 : 0)
            << "bits=" << bits << " w=" << w << " ch=" << ch;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Program vs per-stage physics: the full adder at n in {1, 4, 8}

// Build the paper's 3-gate majority full adder as a ProgramSpec:
//   carry = MAJ(a, b, cin); t = MAJ(a, b, !cin); sum = MAJ(!carry, t, cin).
ProgramSpec full_adder_program(const GateSpec& base) {
  using sw::compile::MajNode;
  CompiledCircuit circuit;
  circuit.num_inputs = 3;
  circuit.nodes.push_back(MajNode{{sw::compile::input_lit(0),
                                   sw::compile::input_lit(1),
                                   sw::compile::input_lit(2)}});
  circuit.nodes.push_back(MajNode{{sw::compile::input_lit(0),
                                   sw::compile::input_lit(1),
                                   sw::compile::input_lit(2, true)}});
  circuit.nodes.push_back(MajNode{{sw::compile::node_lit(0, true),
                                   sw::compile::node_lit(1),
                                   sw::compile::input_lit(2)}});
  circuit.depth = sw::compile::circuit_depth(circuit);
  return sw::compile::lower_to_program(circuit, base);
}

void expect_program_matches_physics(const CompileFixture& fix, std::size_t n,
                                    std::size_t num_words) {
  const EvalProgram program(full_adder_program(fix.base_spec(n)),
                            fix.designer, fix.engine);

  MajorityCascade cascade(channel_frequencies(n), fix.designer, fix.engine);
  const auto fa = sw::core::build_full_adder(cascade);
  ASSERT_EQ(cascade.num_gates(), program.num_stages());

  // Deterministic word stream: word w, channel ch carries assignment
  // (w * 3 + ch * 5 + (w >> 6)) % 8 — covers all assignments per channel
  // for any num_words >= 8 and differs across channels.
  std::vector<std::uint8_t> packed(num_words * program.num_primary_slots());
  std::vector<std::size_t> assignment(num_words * n);
  for (std::size_t w = 0; w < num_words; ++w) {
    for (std::size_t ch = 0; ch < n; ++ch) {
      const std::size_t a = (w * 3 + ch * 5 + (w >> 6)) % 8;
      assignment[w * n + ch] = a;
      for (std::size_t i = 0; i < 3; ++i) {
        packed[w * program.num_primary_slots() + ch * 3 + i] =
            static_cast<std::uint8_t>((a >> i) & 1);
      }
    }
  }
  const auto all = program.evaluate_all_bits(num_words, packed);
  ASSERT_EQ(all.size(), num_words * program.num_stages() * n);

  // Physics oracle: evaluate each distinct assignment per channel once via
  // the per-stage gate path and compare each stage's verdicts.
  for (std::size_t a = 0; a < 8; ++a) {
    std::vector<Bits> primary(3, Bits(n));
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t ch = 0; ch < n; ++ch) {
        primary[i][ch] = static_cast<std::uint8_t>((a >> i) & 1);
      }
    }
    const auto signals = cascade.evaluate(primary);
    for (std::size_t w = 0; w < num_words; ++w) {
      for (std::size_t ch = 0; ch < n; ++ch) {
        if (assignment[w * n + ch] != a) continue;
        for (std::size_t s = 0; s < program.num_stages(); ++s) {
          EXPECT_EQ(all[w * program.num_stages() * n + s * n + ch],
                    signals[3 + s][ch])
              << "n=" << n << " w=" << w << " ch=" << ch << " stage=" << s;
        }
      }
    }
  }
  // Spot-check the named full-adder outputs against arithmetic.
  const std::size_t n_stages = program.num_stages();
  for (std::size_t w = 0; w < num_words; ++w) {
    for (std::size_t ch = 0; ch < n; ++ch) {
      const std::size_t a = assignment[w * n + ch];
      const int ones = ((a >> 0) & 1) + ((a >> 1) & 1) + ((a >> 2) & 1);
      EXPECT_EQ(all[w * n_stages * n + 0 * n + ch], ones >= 2 ? 1 : 0);
      EXPECT_EQ(all[w * n_stages * n + 2 * n + ch], ones & 1);
    }
  }
  (void)fa;
}

TEST(ProgramPhysics, FullAdderOneChannel) {
  const CompileFixture fix;
  expect_program_matches_physics(fix, 1, 8);
}

TEST(ProgramPhysics, FullAdderFourChannels) {
  const CompileFixture fix;
  expect_program_matches_physics(fix, 4, 4096);
}

TEST(ProgramPhysics, FullAdderEightChannelFullSweep) {
  const CompileFixture fix;
  expect_program_matches_physics(fix, 8, 65536);
}

// --------------------------------------------------------------------------
// ProgramSpec validation

TEST(ProgramSpec, ValidateRejectsMalformedPrograms) {
  const CompileFixture fix;
  ProgramSpec empty;
  empty.num_primary_inputs = 1;
  EXPECT_THROW(empty.validate(), sw::util::Error);

  ProgramSpec good = full_adder_program(fix.base_spec(2));
  good.validate();

  ProgramSpec forward = good;
  forward.stages[0].sources[0] = {sw::wavesim::SlotSource::Kind::kStage, 2, 0,
                                  false};
  EXPECT_THROW(forward.validate(), sw::util::Error);

  ProgramSpec overread = good;
  overread.stages[0].sources[0] = {sw::wavesim::SlotSource::Kind::kPrimary, 0,
                                   99, false};
  EXPECT_THROW(overread.validate(), sw::util::Error);

  ProgramSpec ragged = good;
  ragged.stages[1].sources.pop_back();
  EXPECT_THROW(ragged.validate(), sw::util::Error);
}

}  // namespace
