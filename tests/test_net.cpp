// Networked-serving tests: endpoint parsing, socket round trips and
// timeout behaviour over TCP and unix-domain transports, the message
// envelope, EvalServer end-to-end against the in-process evaluator
// (including pipelined tagged out-of-order completion, kShed mapping to
// a typed error frame on a surviving connection, connection-cap refusal
// with a live accept loop, metrics scraping and layout-hash rejection),
// the worker registry (advert codec, TTL upsert/expiry, tag echo), and
// the SweepCoordinator's distributed exhaustive sweep with registry
// discovery, straggler re-sharding, bit-exact duplicate deduplication
// and divergent-duplicate abort.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "compile/lower.h"
#include "compile/synth.h"
#include "compile/truth_table.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "mag/material.h"
#include "net/eval_server.h"
#include "net/metrics.h"
#include "net/protocol.h"
#include "net/registry.h"
#include "net/socket.h"
#include "net/sweep_coordinator.h"
#include "obs/trace.h"
#include "serve/layout_hash.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/eval_program.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw::net;
using sw::core::DataParallelGate;
using sw::core::GateLayout;
using sw::core::GateSpec;
using sw::core::InlineGateDesigner;
using sw::disp::FvmswDispersion;
using sw::disp::Waveguide;
using sw::wavesim::BatchEvaluator;
using sw::wavesim::WaveEngine;
using namespace std::chrono_literals;

Waveguide paper_waveguide() {
  Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

GateSpec majority_spec(std::size_t m, std::size_t n) {
  GateSpec spec;
  spec.num_inputs = m;
  for (std::size_t i = 1; i <= n; ++i) {
    spec.frequencies.push_back(1e10 * static_cast<double>(i));
  }
  return spec;
}

std::vector<std::uint8_t> random_matrix(std::size_t rows, std::size_t cols,
                                        unsigned seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution coin(0.5);
  std::vector<std::uint8_t> m(rows * cols);
  for (auto& b : m) b = coin(rng) ? 1 : 0;
  return m;
}

/// Value of a `name value` exposition line, or -1 when absent. Matches at
/// line starts only, so a name that prefixes another (rx_bytes_total vs a
/// labelled variant) cannot alias.
double metric_value(const std::string& text, const std::string& name) {
  const std::string needle = name + " ";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::atof(text.c_str() + pos + needle.size());
    }
    pos += needle.size();
  }
  return -1.0;
}

/// Everything a worker end needs: model, designer, service, server.
struct ServerFixture {
  Waveguide wg = paper_waveguide();
  FvmswDispersion model{wg};
  InlineGateDesigner designer{model};
  sw::serve::EvaluatorService service;
  EvalServer server;

  explicit ServerFixture(const Endpoint& endpoint,
                         sw::serve::ServiceOptions service_options = {},
                         EvalServerOptions server_options = {})
      : service(model, wg.material.alpha, std::move(service_options)),
        server(
            service,
            [this](const GateSpec& spec) { return designer.design(spec); },
            endpoint, server_options) {}
};

Endpoint loopback() { return Endpoint::parse("tcp:127.0.0.1:0"); }

// ------------------------------------------------------------- endpoints --

TEST(NetEndpoint, ParsesTcpAndUnix) {
  const auto tcp = Endpoint::parse("tcp:127.0.0.1:8080");
  EXPECT_EQ(tcp.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 8080);
  EXPECT_EQ(tcp.to_string(), "tcp:127.0.0.1:8080");

  const auto unix_ep = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/x.sock");
  EXPECT_EQ(unix_ep.to_string(), "unix:/tmp/x.sock");
}

TEST(NetEndpoint, RejectsMalformed) {
  EXPECT_THROW((void)Endpoint::parse("tcp:127.0.0.1"), sw::util::Error);
  EXPECT_THROW((void)Endpoint::parse("tcp::8080"), sw::util::Error);
  EXPECT_THROW((void)Endpoint::parse("tcp:h:65536"), sw::util::Error);
  EXPECT_THROW((void)Endpoint::parse("tcp:h:80x"), sw::util::Error);
  EXPECT_THROW((void)Endpoint::parse("unix:"), sw::util::Error);
  EXPECT_THROW((void)Endpoint::parse("udp:1.2.3.4:5"), sw::util::Error);
}

// ----------------------------------------------------- socket + envelope --

void roundtrip_over(const Endpoint& endpoint) {
  Listener listener(endpoint);
  Connection client;
  std::thread connector([&] {
    client = Connection::connect(listener.local_endpoint(), 2000ms);
  });
  auto accepted = listener.accept(2000ms);
  connector.join();
  ASSERT_TRUE(accepted.has_value());
  ASSERT_TRUE(client.valid());

  // Error message client -> server.
  send_message(client, make_error_message(ErrorCode::kOverload, "busy"),
               1000ms);
  auto got = recv_message(*accepted, 2000ms);
  ASSERT_TRUE(got.has_value());
  const auto info = decode_error_message(*got);
  EXPECT_EQ(info.code, ErrorCode::kOverload);
  EXPECT_EQ(info.text, "busy");

  // Metrics text server -> client.
  send_message(*accepted,
               make_text_message(MessageKind::kMetricsResponse, "a 1\n"),
               1000ms);
  auto text = recv_message(client, 2000ms);
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(decode_text_message(*text), "a 1\n");

  // Orderly close surfaces as nullopt, not an exception.
  client.close();
  EXPECT_FALSE(recv_message(*accepted, 2000ms).has_value());
}

TEST(NetSocket, TcpRoundtrip) { roundtrip_over(loopback()); }

TEST(NetSocket, UnixRoundtrip) {
  const std::string path =
      testing::TempDir() + "swlogic_net_roundtrip.sock";
  roundtrip_over(Endpoint::parse("unix:" + path));
}

TEST(NetSocket, RecvTimesOutOnSilentPeer) {
  Listener listener(loopback());
  Connection client;
  std::thread connector([&] {
    client = Connection::connect(listener.local_endpoint(), 2000ms);
  });
  auto accepted = listener.accept(2000ms);
  connector.join();
  ASSERT_TRUE(accepted.has_value());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)recv_message(*accepted, 100ms), TimeoutError);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, 90ms);
  EXPECT_LT(waited, 5s) << "timeout must be bounded";
}

TEST(NetSocket, ConnectTimesOutWithoutListener) {
  // Bind-then-close gives a port with (almost certainly) nobody on it.
  std::uint16_t port;
  {
    Listener listener(loopback());
    port = listener.local_endpoint().port;
  }
  EXPECT_THROW((void)Connection::connect(
                   Endpoint::parse("tcp:127.0.0.1:" + std::to_string(port)),
                   200ms),
               TimeoutError);
}

TEST(NetProtocol, CorruptEnvelopeRejected) {
  Listener listener(loopback());
  Connection client;
  std::thread connector([&] {
    client = Connection::connect(listener.local_endpoint(), 2000ms);
  });
  auto accepted = listener.accept(2000ms);
  connector.join();
  ASSERT_TRUE(accepted.has_value());

  auto bytes = encode_message(
      make_error_message(ErrorCode::kInternal, "corrupt me"));
  bytes.back() ^= 0x01;  // payload flip -> checksum mismatch
  client.send_all(bytes, 1000ms);
  EXPECT_THROW((void)recv_message(*accepted, 2000ms), sw::util::Error);
}

TEST(NetProtocol, OversizedPayloadPrefixRejected) {
  auto bytes =
      encode_message(make_error_message(ErrorCode::kInternal, "x"));
  // Stamp an absurd payload_size (offset 16 in the v2 header) before any
  // body arrives: the decoder must reject from the header alone instead
  // of allocating.
  for (int i = 0; i < 8; ++i) bytes[16 + i] = 0xFF;
  Listener listener(loopback());
  Connection client;
  std::thread connector([&] {
    client = Connection::connect(listener.local_endpoint(), 2000ms);
  });
  auto accepted = listener.accept(2000ms);
  connector.join();
  client.send_all(bytes, 1000ms);
  EXPECT_THROW((void)recv_message(*accepted, 2000ms), sw::util::Error);
}

// ------------------------------------------------------------ EvalServer --

TEST(EvalServer, ServesBatchesBitExactWithMetrics) {
  ServerFixture fx(loopback());
  const GateLayout layout = fx.designer.design(majority_spec(3, 4));
  const std::size_t slots = 4 * 3;
  const std::size_t words = 257;  // odd size: exercises vector tails
  const auto matrix = random_matrix(words, slots, 42);

  const WaveEngine engine(fx.model, fx.wg.material.alpha);
  const DataParallelGate gate(layout, engine);
  const BatchEvaluator evaluator(gate);
  const auto expected = evaluator.evaluate_bits(words, matrix);

  auto conn = Connection::connect(fx.server.local_endpoint(), 2000ms);
  for (int round = 0; round < 3; ++round) {
    send_message(conn,
                 make_frame_message(sw::serve::make_request_frame(
                     layout, 0, words, matrix)),
                 2000ms);
    const auto response = recv_frame(conn, 10000ms);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->kind, sw::serve::FrameKind::kResponse);
    EXPECT_EQ(response->num_words, words);
    EXPECT_EQ(response->num_cols, 4u);
    EXPECT_EQ(response->matrix, expected);
  }

  Message metrics_request;
  metrics_request.kind = MessageKind::kMetricsRequest;
  send_message(conn, metrics_request, 2000ms);
  auto metrics = recv_message(conn, 5000ms);
  ASSERT_TRUE(metrics.has_value());
  const std::string text = decode_text_message(*metrics);
  EXPECT_NE(text.find("sw_serve_requests_completed 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("sw_serve_latency_p99_seconds"), std::string::npos);
  EXPECT_NE(text.find("sw_serve_plan_cache_hits 2"), std::string::npos);
  EXPECT_NE(text.find("sw_net_frames_received 3"), std::string::npos);
  EXPECT_NE(text.find("sw_net_connections_accepted 1"), std::string::npos);
  // The kernel/precision identity gauge and the detector-granularity f32
  // share must scrape: the kernel label is the active kernel's name and
  // the ratio is a bare number (0 here — no f32 builds in this fixture).
  EXPECT_NE(
      text.find("sw_serve_kernel_info{kernel=\"" +
                std::string(sw::wavesim::active_kernel_name()) + "\""),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("sw_serve_f32_detector_ratio 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("sw_serve_plan_cache_block_plans 0"),
            std::string::npos)
      << text;

  const auto counters = fx.server.counters();
  EXPECT_EQ(counters.frames_received, 3u);
  EXPECT_EQ(counters.responses_sent, 3u);
  EXPECT_EQ(counters.metrics_requests, 1u);
  EXPECT_EQ(counters.errors_sent, 0u);
}

TEST(EvalServer, MetricsHistogramsAndByteCountersScrapeMonotonically) {
  ServerFixture fx(loopback());
  const GateLayout layout = fx.designer.design(majority_spec(3, 4));
  const std::size_t words = 64;
  const auto matrix = random_matrix(words, 4 * 3, 9);

  auto conn = Connection::connect(fx.server.local_endpoint(), 2000ms);
  const auto roundtrip = [&] {
    send_message(conn,
                 make_frame_message(sw::serve::make_request_frame(
                     layout, 0, words, matrix)),
                 2000ms);
    ASSERT_TRUE(recv_frame(conn, 10000ms).has_value());
  };
  roundtrip();

  const std::string first = fetch_text(
      fx.server.local_endpoint(), MessageKind::kMetricsRequest, 5000ms);
  // Every histogram family renders in full Prometheus form: cumulative
  // buckets ending at +Inf, then _sum and _count.
  for (const std::string fam :
       {"sw_serve_request_latency_seconds", "sw_serve_admission_wait_seconds",
        "sw_serve_queue_wait_seconds", "sw_serve_kernel_exec_seconds",
        "sw_serve_batch_words"}) {
    EXPECT_NE(first.find(fam + "_bucket{le=\"+Inf\"} "), std::string::npos)
        << fam << " buckets missing:\n" << first;
    EXPECT_GE(metric_value(first, fam + "_sum"), 0.0) << fam;
    EXPECT_GE(metric_value(first, fam + "_count"), 1.0) << fam;
  }
  EXPECT_EQ(metric_value(first, "sw_serve_request_latency_seconds_count"),
            1.0);
  EXPECT_EQ(metric_value(first, "sw_serve_batch_words_sum"),
            static_cast<double>(words));
  // The windowed summary gained mean and max next to the percentiles.
  EXPECT_GE(metric_value(first, "sw_serve_latency_mean_seconds"), 0.0);
  EXPECT_GE(metric_value(first, "sw_serve_latency_max_seconds"),
            metric_value(first, "sw_serve_latency_mean_seconds"));
  const double rx1 = metric_value(first, "sw_net_rx_bytes_total");
  const double tx1 = metric_value(first, "sw_net_tx_bytes_total");
  EXPECT_GT(rx1, 0.0) << first;
  EXPECT_GT(tx1, 0.0) << first;

  // Counter monotonicity: another request can only grow the totals.
  roundtrip();
  const std::string second = fetch_text(
      fx.server.local_endpoint(), MessageKind::kMetricsRequest, 5000ms);
  EXPECT_EQ(metric_value(second, "sw_serve_request_latency_seconds_count"),
            2.0);
  EXPECT_GT(metric_value(second, "sw_net_rx_bytes_total"), rx1);
  EXPECT_GT(metric_value(second, "sw_net_tx_bytes_total"), tx1);
  EXPECT_GE(metric_value(second, "sw_serve_kernel_exec_seconds_sum"),
            metric_value(first, "sw_serve_kernel_exec_seconds_sum"));
}

TEST(EvalServer, TraceRequestReturnsPerPhaseSpans) {
  ServerFixture fx(loopback());
  const GateLayout layout = fx.designer.design(majority_spec(3, 4));
  const std::size_t words = 64;
  const auto matrix = random_matrix(words, 4 * 3, 11);

  auto conn = Connection::connect(fx.server.local_endpoint(), 2000ms);
  send_message(conn,
               make_frame_message(sw::serve::make_request_frame(
                   layout, 0, words, matrix)),
               2000ms);
  ASSERT_TRUE(recv_frame(conn, 10000ms).has_value());

  Message trace_request;
  trace_request.kind = MessageKind::kTraceRequest;
  trace_request.tag = 9;
  send_message(conn, trace_request, 2000ms);
  const auto reply = recv_message(conn, 5000ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->kind, MessageKind::kTraceResponse);
  EXPECT_EQ(reply->tag, 9u);
  const std::string json = decode_text_message(*reply);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The served request's full lifetime, phase by phase: decoded off the
  // wire, admitted, plan looked up, queued, evaluated, encoded, flushed.
  for (const std::string phase :
       {"wire_decode", "admission", "plan_lookup", "queue", "kernel",
        "wire_encode", "write_queue"}) {
    EXPECT_NE(json.find("\"name\":\"" + phase + "\""), std::string::npos)
        << "missing " << phase << " span:\n" << json;
  }
  EXPECT_EQ(fx.server.counters().trace_requests, 1u);

  // The one-shot client helper fetches the same document.
  const std::string again = fetch_text(fx.server.local_endpoint(),
                                       MessageKind::kTraceRequest, 5000ms);
  EXPECT_NE(again.find("\"name\":\"kernel\""), std::string::npos);
}

TEST(EvalServer, ShedMapsToErrorFrameNotDroppedConnection) {
  // One service worker held in place + a 1-deep admission queue: the
  // third concurrent request must shed.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> started{0};

  sw::serve::ServiceOptions options;
  options.num_threads = 1;
  options.admission.max_queued_requests = 1;
  options.admission.policy = sw::serve::OverloadPolicy::kShed;
  options.on_request_start = [&](std::uint64_t) {
    started.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
  };

  ServerFixture fx(loopback(), std::move(options));
  const GateLayout layout = fx.designer.design(majority_spec(3, 2));
  const std::size_t slots = 2 * 3;
  const auto matrix = random_matrix(4, slots, 7);
  const auto request =
      sw::serve::make_request_frame(layout, 0, 4, matrix);

  auto conn_a = Connection::connect(fx.server.local_endpoint(), 2000ms);
  auto conn_b = Connection::connect(fx.server.local_endpoint(), 2000ms);
  auto conn_c = Connection::connect(fx.server.local_endpoint(), 2000ms);

  // A occupies the held worker; B fills the queue. Wait on the service's
  // own accounting at each step so C deterministically finds both budget
  // slots taken however slowly the handler threads get scheduled.
  send_message(conn_a, make_frame_message(request), 2000ms);
  while (started.load() == 0) std::this_thread::sleep_for(1ms);
  send_message(conn_b, make_frame_message(request), 2000ms);
  {
    // Generous deadline: on a one-core host a parallel ctest run can
    // starve B's handler thread for a long time; the steady state (held
    // worker + B queued) is what matters, not how fast it is reached.
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    while (fx.service.stats().queued_requests < 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_EQ(fx.service.stats().queued_requests, 1u)
        << "request B never reached the admission queue";
  }

  send_message(conn_c, make_frame_message(request), 2000ms);
  bool shed = false;
  try {
    (void)recv_frame(conn_c, 60000ms);
  } catch (const RemoteError& e) {
    shed = true;
    EXPECT_EQ(e.code(), ErrorCode::kOverload);
  }
  EXPECT_TRUE(shed) << "third request should have been shed";

  // The shed connection stays serviceable: release the gate, drain A and
  // B (their completion frees the whole admission budget), then retry on
  // C — which must now be admitted and answered on the same connection.
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  EXPECT_TRUE(recv_frame(conn_a, 60000ms).has_value());
  EXPECT_TRUE(recv_frame(conn_b, 60000ms).has_value());
  send_message(conn_c, make_frame_message(request), 2000ms);
  EXPECT_TRUE(recv_frame(conn_c, 60000ms).has_value());
  EXPECT_GE(fx.server.counters().overloads, 1u);
}

TEST(EvalServer, RejectsAlienGeometryWithTypedError) {
  ServerFixture fx(loopback());
  const GateLayout layout = fx.designer.design(majority_spec(3, 2));
  const auto matrix = random_matrix(2, 6, 3);
  auto request = sw::serve::make_request_frame(layout, 0, 2, matrix);
  request.layout_hash ^= 0xdeadbeefull;  // claim a different geometry

  auto conn = Connection::connect(fx.server.local_endpoint(), 2000ms);
  send_message(conn, make_frame_message(request), 2000ms);
  try {
    (void)recv_frame(conn, 10000ms);
    FAIL() << "expected a typed error reply";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
    EXPECT_NE(std::string(e.what()).find("hash mismatch"),
              std::string::npos);
  }
  // And the connection survives a bad request.
  request.layout_hash ^= 0xdeadbeefull;
  send_message(conn, make_frame_message(request), 2000ms);
  EXPECT_TRUE(recv_frame(conn, 10000ms).has_value());
}

/// Synthesize `bits` (a 3-ary truth table) into a majority cascade and
/// lower it onto an n-channel fabric.
sw::wavesim::ProgramSpec synthesize_program(std::uint16_t bits,
                                            std::size_t n) {
  sw::compile::Synthesizer synth;
  const auto circuit = synth.compile(sw::compile::TruthTable(3, bits));
  return sw::compile::lower_to_program(circuit, majority_spec(3, n));
}

/// Per-stage physics oracle (mirrors the serving-layer tests): every stage
/// evaluated as its own DataParallelGate, inputs gathered per SlotSource.
/// Returns stage-major outputs; the last n entries are the program output.
std::vector<std::uint8_t> physics_stage_outputs(
    const sw::wavesim::ProgramSpec& program,
    const InlineGateDesigner& designer, const WaveEngine& engine,
    std::span<const std::uint8_t> primary_row) {
  using sw::wavesim::SlotSource;
  const std::size_t n = program.num_channels();
  std::vector<std::uint8_t> stage_out;
  for (const auto& ss : program.stages) {
    const DataParallelGate gate(designer.design(ss.gate), engine);
    const std::size_t m = ss.gate.num_inputs;
    std::vector<sw::core::Bits> inputs(n, sw::core::Bits(m));
    for (std::size_t ch = 0; ch < n; ++ch) {
      for (std::size_t k = 0; k < m; ++k) {
        const auto& src = ss.sources[ch * m + k];
        bool v = false;
        switch (src.kind) {
          case SlotSource::Kind::kZero: v = false; break;
          case SlotSource::Kind::kOne: v = true; break;
          case SlotSource::Kind::kPrimary:
            v = primary_row[src.index] != 0;
            break;
          case SlotSource::Kind::kStage:
            v = stage_out[src.stage * n + src.index] != 0;
            break;
        }
        inputs[ch][k] = static_cast<std::uint8_t>(v != src.negated);
      }
    }
    const auto results = gate.evaluate(inputs);
    std::vector<std::uint8_t> out(n);
    for (const auto& r : results) out[r.channel] = r.logic;
    stage_out.insert(stage_out.end(), out.begin(), out.end());
  }
  return stage_out;
}

TEST(EvalServer, ServesCompiledProgramsBitExact) {
  ServerFixture fx(loopback());
  const std::size_t n = 4;
  const std::uint16_t bits = 0x1B;
  const auto program = synthesize_program(bits, n);
  ASSERT_GE(program.num_stages(), 2u);  // a real cascade, not one gate
  const std::size_t words = 33;  // odd size: exercises vector tails
  const std::size_t cols = program.primary_slot_count();
  const auto matrix = random_matrix(words, cols, 71);

  auto conn = Connection::connect(fx.server.local_endpoint(), 2000ms);
  send_message(conn,
               make_frame_message(sw::serve::make_program_request_frame(
                   program, 0, words, matrix)),
               2000ms);
  const auto response = recv_frame(conn, 10000ms);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->kind, sw::serve::FrameKind::kResponse);
  EXPECT_EQ(response->layout_hash, sw::serve::hash_program(program));
  EXPECT_EQ(response->num_words, words);
  EXPECT_EQ(response->num_cols, n);
  ASSERT_EQ(response->matrix.size(), words * n);

  const WaveEngine engine(fx.model, fx.wg.material.alpha);
  const sw::compile::TruthTable table(3, bits);
  for (std::size_t w = 0; w < words; ++w) {
    const std::span<const std::uint8_t> row{matrix.data() + w * cols, cols};
    const auto stages =
        physics_stage_outputs(program, fx.designer, engine, row);
    for (std::size_t ch = 0; ch < n; ++ch) {
      // The remote fused result equals the local per-stage physics …
      EXPECT_EQ(response->matrix[w * n + ch],
                stages[(program.num_stages() - 1) * n + ch])
          << "w=" << w << " ch=" << ch;
      // … and the Boolean function the client compiled.
      std::size_t a = 0;
      for (std::size_t i = 0; i < 3; ++i) {
        a |= static_cast<std::size_t>(row[ch * 3 + i] != 0) << i;
      }
      EXPECT_EQ(response->matrix[w * n + ch], table.value(a) ? 1 : 0)
          << "w=" << w << " ch=" << ch;
    }
  }
}

TEST(EvalServer, PinnedWorkerRejectsProgramFramesWithTypedError) {
  // A worker pinned to wire v2 (a pre-program build) must answer a v3
  // program frame with kUnsupportedVersion — the typed reply coordinators
  // key version negotiation on — and keep serving v2 on the connection.
  EvalServerOptions server_options;
  server_options.max_wire_version = sw::serve::kWireVersion;
  ServerFixture fx(loopback(), {}, server_options);

  const auto program = synthesize_program(0xE8, 2);
  const auto matrix = random_matrix(2, program.primary_slot_count(), 81);
  auto conn = Connection::connect(fx.server.local_endpoint(), 2000ms);
  send_message(conn,
               make_frame_message(sw::serve::make_program_request_frame(
                   program, 0, 2, matrix)),
               2000ms);
  try {
    (void)recv_frame(conn, 10000ms);
    FAIL() << "expected a typed version error";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupportedVersion);
    EXPECT_NE(std::string(e.what()).find("unsupported wire version"),
              std::string::npos);
  }
  // Fall back to v2 on the same connection: still served.
  const GateLayout layout = fx.designer.design(majority_spec(3, 2));
  send_message(conn,
               make_frame_message(sw::serve::make_request_frame(
                   layout, 0, 2, random_matrix(2, 6, 83))),
               2000ms);
  EXPECT_TRUE(recv_frame(conn, 10000ms).has_value());
}

TEST(EvalServer, ShutdownMessageSetsFlagWithoutStopping) {
  ServerFixture fx(loopback());
  EXPECT_FALSE(fx.server.shutdown_requested());
  auto conn = Connection::connect(fx.server.local_endpoint(), 2000ms);
  Message shutdown;
  shutdown.kind = MessageKind::kShutdown;
  send_message(conn, shutdown, 1000ms);
  EXPECT_TRUE(fx.server.wait_shutdown(5000ms));
  // Still serving after the flag: shutdown is a request, not a kill.
  const GateLayout layout = fx.designer.design(majority_spec(3, 2));
  const auto matrix = random_matrix(1, 6, 9);
  send_message(conn,
               make_frame_message(
                   sw::serve::make_request_frame(layout, 0, 1, matrix)),
               2000ms);
  EXPECT_TRUE(recv_frame(conn, 10000ms).has_value());
}

TEST(EvalServer, PipelinedTaggedRequestsCompleteOutOfOrder) {
  // One connection, six tagged shard requests sent back-to-back in a
  // single write, replies matched by tag: the event core must answer all
  // of them without a request/response lockstep, in whatever order the
  // evaluations finish.
  ServerFixture fx(loopback());
  const GateSpec spec = majority_spec(3, 2);
  const GateLayout layout = fx.designer.design(spec);
  const std::uint64_t hash = sw::serve::hash_layout(layout);
  constexpr std::size_t kDepth = 6;
  constexpr std::size_t kShardWords = 8;
  constexpr std::size_t kSlots = 2 * 3;
  const std::size_t channels = layout.spec.frequencies.size();
  const auto matrix = random_matrix(kDepth * kShardWords, kSlots, 21);

  const WaveEngine engine(fx.model, fx.wg.material.alpha);
  const DataParallelGate gate(layout, engine);
  const BatchEvaluator evaluator(gate);
  const auto expected = evaluator.evaluate_bits(kDepth * kShardWords, matrix);

  auto conn = Connection::connect(fx.server.local_endpoint(), 2000ms);
  std::vector<std::uint8_t> burst;
  for (std::size_t tag = 0; tag < kDepth; ++tag) {
    const auto view = sw::serve::make_request_view(
        layout.spec, hash, tag * kShardWords, kShardWords,
        std::span<const std::uint8_t>(matrix).subspan(
            tag * kShardWords * kSlots, kShardWords * kSlots));
    append_frame_message(burst, view, tag);
  }
  conn.send_all(burst, 5000ms);

  std::vector<bool> seen(kDepth, false);
  for (std::size_t i = 0; i < kDepth; ++i) {
    auto message = recv_message(conn, 60000ms);
    ASSERT_TRUE(message.has_value());
    ASSERT_EQ(message->kind, MessageKind::kFrame);
    const std::uint64_t tag = message->tag;
    ASSERT_LT(tag, kDepth);
    EXPECT_FALSE(seen[tag]) << "tag " << tag << " answered twice";
    seen[tag] = true;
    const auto frame = sw::serve::decode_frame(message->payload);
    EXPECT_EQ(frame.kind, sw::serve::FrameKind::kResponse);
    EXPECT_EQ(frame.word_offset, tag * kShardWords);
    EXPECT_EQ(frame.num_words, kShardWords);
    const std::vector<std::uint8_t> slice(
        expected.begin() + static_cast<std::ptrdiff_t>(
                               tag * kShardWords * channels),
        expected.begin() + static_cast<std::ptrdiff_t>(
                               (tag + 1) * kShardWords * channels));
    EXPECT_EQ(frame.matrix, slice) << "wrong bits for tag " << tag;
  }
  for (std::size_t tag = 0; tag < kDepth; ++tag) {
    EXPECT_TRUE(seen[tag]) << "tag " << tag << " never answered";
  }
  const auto counters = fx.server.counters();
  EXPECT_EQ(counters.frames_received, kDepth);
  EXPECT_EQ(counters.responses_sent, kDepth);
  EXPECT_EQ(counters.errors_sent, 0u);
}

TEST(EvalServer, RefusesConnectionsPastCapButKeepsAccepting) {
  EvalServerOptions server_options;
  server_options.max_connections = 2;
  ServerFixture fx(loopback(), {}, server_options);
  const GateLayout layout = fx.designer.design(majority_spec(3, 2));
  const auto matrix = random_matrix(1, 6, 23);
  const auto request = sw::serve::make_request_frame(layout, 0, 1, matrix);

  // Prove each admission with a served request before connecting the
  // next peer: connect() only completes the TCP handshake (the kernel
  // backlog does that), so without the round trip the refusal could land
  // on any of the three.
  auto conn_a = Connection::connect(fx.server.local_endpoint(), 2000ms);
  send_message(conn_a, make_frame_message(request), 2000ms);
  ASSERT_TRUE(recv_frame(conn_a, 60000ms).has_value());
  auto conn_b = Connection::connect(fx.server.local_endpoint(), 2000ms);
  send_message(conn_b, make_frame_message(request), 2000ms);
  ASSERT_TRUE(recv_frame(conn_b, 60000ms).has_value());

  // The third connection must receive a *typed* refusal, then EOF — not
  // a silent drop, and not a hung accept loop.
  auto conn_c = Connection::connect(fx.server.local_endpoint(), 2000ms);
  auto refusal = recv_message(conn_c, 60000ms);
  ASSERT_TRUE(refusal.has_value());
  ASSERT_EQ(refusal->kind, MessageKind::kError);
  EXPECT_EQ(decode_error_message(*refusal).code, ErrorCode::kOverload);
  EXPECT_FALSE(recv_message(conn_c, 60000ms).has_value())
      << "refused connection should be closed after the error reply";

  {
    // connections_accepted counts every accept(), refused ones included;
    // the admitted population is the difference.
    const auto counters = fx.server.counters();
    EXPECT_GE(counters.connections_refused, 1u);
    EXPECT_EQ(counters.connections_accepted - counters.connections_refused,
              2u);
    EXPECT_LE(counters.active_connections, 2u);
  }

  // Freeing a slot re-opens admission: close B, wait for the server to
  // reap it, and a fresh connection must be served again.
  conn_b.close();
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (fx.server.counters().active_connections >= 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_LT(fx.server.counters().active_connections, 2u)
      << "server never noticed the closed connection";
  auto conn_d = Connection::connect(fx.server.local_endpoint(), 2000ms);
  send_message(conn_d, make_frame_message(request), 2000ms);
  EXPECT_TRUE(recv_frame(conn_d, 60000ms).has_value())
      << "accept loop must stay live after refusals";
}

TEST(EvalServer, StopIsNotStalledByRefusedPeersThatNeverRead) {
  // Regression: the old thread-per-connection server sent the refusal
  // reply with a blocking write while holding the server mutex, so a
  // refused peer that never read could wedge accept *and* stop(). The
  // event core writes refusals non-blockingly; stop() must stay prompt
  // however many unread refusals are outstanding.
  EvalServerOptions server_options;
  server_options.max_connections = 1;
  ServerFixture fx(loopback(), {}, server_options);
  const GateLayout layout = fx.designer.design(majority_spec(3, 2));
  const auto matrix = random_matrix(1, 6, 29);
  const auto request = sw::serve::make_request_frame(layout, 0, 1, matrix);

  auto admitted = Connection::connect(fx.server.local_endpoint(), 2000ms);
  send_message(admitted, make_frame_message(request), 2000ms);
  ASSERT_TRUE(recv_frame(admitted, 60000ms).has_value());

  std::vector<Connection> silent;
  for (int i = 0; i < 3; ++i) {
    silent.push_back(Connection::connect(fx.server.local_endpoint(), 2000ms));
  }
  const auto refused_deadline = std::chrono::steady_clock::now() + 60s;
  while (fx.server.counters().connections_refused < 3 &&
         std::chrono::steady_clock::now() < refused_deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(fx.server.counters().connections_refused, 3u);

  const auto t0 = std::chrono::steady_clock::now();
  fx.server.stop();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s)
      << "stop() stalled behind unread refusal replies";
}

// ---------------------------------------------------------------- registry --

TEST(NetRegistry, AdvertCodecRoundTripsAndRejectsMalformed) {
  std::vector<WorkerAdvert> adverts(2);
  adverts[0] = {"tcp:127.0.0.1:4101", "avx2", "f64", 2.5e7};
  adverts[1] = {"unix:/tmp/worker.sock", "scalar", "f32", 0.0};
  const auto bytes = encode_adverts(adverts);
  EXPECT_EQ(decode_adverts(bytes), adverts);

  // Truncation anywhere must throw, never read garbage.
  for (const std::size_t keep : {std::size_t{0}, bytes.size() / 2,
                                 bytes.size() - 1}) {
    std::span<const std::uint8_t> cut(bytes.data(), keep);
    EXPECT_THROW((void)decode_adverts(cut), sw::util::Error) << keep;
  }
  // Trailing bytes after the advertised count are corruption too.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW((void)decode_adverts(padded), sw::util::Error);
  // An advert with no endpoint is useless to a coordinator: rejected.
  const auto empty_endpoint =
      encode_adverts({WorkerAdvert{"", "scalar", "f64", 0.0}});
  EXPECT_THROW((void)decode_adverts(empty_endpoint), sw::util::Error);
}

TEST(NetRegistry, RegisterUpsertsPerEndpointAndExpiresByTtl) {
  RegistryOptions registry_options;
  registry_options.ttl = 300ms;
  RegistryServer registry(loopback(), registry_options);

  WorkerAdvert a{"tcp:127.0.0.1:4201", "scalar", "f64", 1e6};
  WorkerAdvert b{"tcp:127.0.0.1:4202", "avx2", "f64", 3e6};
  register_worker(registry.local_endpoint(), a, 2000ms);
  // Regression: the upsert once keyed the entry map on a moved-out
  // endpoint string, so every worker landed on the same "" key and only
  // the last register survived. Both adverts must coexist.
  register_worker(registry.local_endpoint(), b, 2000ms);
  auto listed = fetch_registry(registry.local_endpoint(), 2000ms);
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], a);  // snapshot order is keyed by endpoint
  EXPECT_EQ(listed[1], b);

  // A heartbeat for a known endpoint updates in place, no duplicate.
  a.words_per_second = 2e6;
  register_worker(registry.local_endpoint(), a, 2000ms);
  listed = fetch_registry(registry.local_endpoint(), 2000ms);
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].words_per_second, 2e6);

  // Stop heartbeating and the adverts age out of the snapshot.
  std::this_thread::sleep_for(400ms);
  EXPECT_TRUE(fetch_registry(registry.local_endpoint(), 2000ms).empty());
}

TEST(NetRegistry, EchoesTagsAndRejectsUnsupportedKinds) {
  RegistryServer registry(loopback());
  auto conn = Connection::connect(registry.local_endpoint(), 2000ms);

  Message reg;
  reg.kind = MessageKind::kRegister;
  reg.tag = 77;
  reg.payload =
      encode_adverts({WorkerAdvert{"tcp:127.0.0.1:4301", "scalar", "f64", 0}});
  send_message(conn, reg, 2000ms);
  auto ack = recv_message(conn, 5000ms);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->kind, MessageKind::kRegister);
  EXPECT_EQ(ack->tag, 77u);

  Message alien;
  alien.kind = MessageKind::kTraceRequest;
  alien.tag = 78;
  send_message(conn, alien, 2000ms);
  auto refused = recv_message(conn, 5000ms);
  ASSERT_TRUE(refused.has_value());
  ASSERT_EQ(refused->kind, MessageKind::kError);
  EXPECT_EQ(decode_error_message(*refused).code, ErrorCode::kBadRequest);
  EXPECT_EQ(refused->tag, 78u);

  // The connection survives the rejected message.
  reg.tag = 79;
  send_message(conn, reg, 2000ms);
  ack = recv_message(conn, 5000ms);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->tag, 79u);
}

TEST(NetRegistry, MetricsCountUpsertsLiveAdvertsAndExpirations) {
  RegistryOptions options;
  options.ttl = 200ms;
  RegistryServer registry(loopback(), options);
  const WorkerAdvert a{"tcp:127.0.0.1:4401", "scalar", "f64", 1e6};
  const WorkerAdvert b{"tcp:127.0.0.1:4402", "avx2", "f32", 2e6};
  register_worker(registry.local_endpoint(), a, 2000ms);
  register_worker(registry.local_endpoint(), b, 2000ms);
  register_worker(registry.local_endpoint(), a, 2000ms);  // heartbeat

  const std::string text = fetch_text(registry.local_endpoint(),
                                      MessageKind::kMetricsRequest, 2000ms);
  EXPECT_EQ(metric_value(text, "sw_registry_upserts"), 3.0) << text;
  EXPECT_EQ(metric_value(text, "sw_registry_live_adverts"), 2.0) << text;
  EXPECT_EQ(metric_value(text, "sw_registry_expirations"), 0.0) << text;
  EXPECT_EQ(metric_value(text, "sw_registry_metrics_requests"), 1.0);
  EXPECT_GE(metric_value(text, "sw_registry_oldest_advert_age_seconds"),
            0.0);

  // Both adverts age past the TTL: the counters view prunes like
  // snapshot() does, so expirations land without any client traffic.
  std::this_thread::sleep_for(300ms);
  const auto counters = registry.counters();
  EXPECT_EQ(counters.live_adverts, 0u);
  EXPECT_EQ(counters.expirations, 2u);
  EXPECT_EQ(counters.upserts, 3u);
  EXPECT_EQ(counters.oldest_advert_age_s, 0.0);
}

// ------------------------------------------------- distributed sweeping --

/// The paper's exhaustive byte-operand workload: every (a, b) pair through
/// the 8-channel majority-as-AND fabric (third input pinned 0).
struct ExhaustiveSweep {
  static constexpr std::size_t kChannels = 8;
  static constexpr std::size_t kSlots = kChannels * 3;
  static constexpr std::size_t kWords = std::size_t{1} << 16;

  static std::vector<std::uint8_t> matrix() {
    std::vector<std::uint8_t> m(kWords * kSlots, 0);
    for (std::size_t v = 0; v < kWords; ++v) {
      const std::size_t a = v & 0xFFu;
      const std::size_t b = v >> kChannels;
      for (std::size_t ch = 0; ch < kChannels; ++ch) {
        m[v * kSlots + ch * 3 + 0] =
            static_cast<std::uint8_t>((a >> ch) & 1u);
        m[v * kSlots + ch * 3 + 1] =
            static_cast<std::uint8_t>((b >> ch) & 1u);
      }
    }
    return m;
  }
};

TEST(SweepCoordinator, DistributedExhaustiveSweepMatchesSingleProcess) {
  const GateSpec spec = majority_spec(3, ExhaustiveSweep::kChannels);
  ServerFixture worker_a(loopback());
  ServerFixture worker_b(loopback());
  const GateLayout layout = worker_a.designer.design(spec);
  const auto matrix = ExhaustiveSweep::matrix();

  const WaveEngine engine(worker_a.model, worker_a.wg.material.alpha);
  const DataParallelGate gate(layout, engine);
  const BatchEvaluator evaluator(gate);
  const auto expected =
      evaluator.evaluate_bits(ExhaustiveSweep::kWords, matrix);

  SweepOptions options;
  options.shard_words = 4096;
  SweepCoordinator coordinator(
      {worker_a.server.local_endpoint(), worker_b.server.local_endpoint()},
      options);
  SweepReport report;
  const auto merged =
      coordinator.run(layout, matrix, ExhaustiveSweep::kWords, &report);

  EXPECT_EQ(merged, expected);
  EXPECT_EQ(report.shards, 16u);
  EXPECT_EQ(report.dead_workers, 0u);
  EXPECT_EQ(report.shards_per_worker.size(), 2u);
  EXPECT_EQ(report.shards_per_worker[0] + report.shards_per_worker[1], 16u);
  // No per-worker minimum: shard acquisition is pull-based, and with the
  // SIMD kernels a 4096-word shard evaluates in tens of microseconds —
  // on a single-core host one worker can legitimately drain the whole
  // queue while the other is still building its plan. That the work
  // flows to whichever worker makes progress is asserted
  // deterministically by the straggler test below (all shards end up on
  // the fast worker when the other is delayed).
}

TEST(SweepCoordinator, RecorderCapturesPerShardSpans) {
  const GateSpec spec = majority_spec(3, 4);
  ServerFixture worker(loopback());
  const GateLayout layout = worker.designer.design(spec);
  const std::size_t words = 4096;
  const auto matrix = random_matrix(words, 4 * 3, 21);

  sw::obs::TraceRecorder recorder(64);
  SweepOptions options;
  options.shard_words = 512;
  options.recorder = &recorder;
  SweepCoordinator coordinator({worker.server.local_endpoint()}, options);
  SweepReport report;
  (void)coordinator.run(layout, matrix, words, &report);
  ASSERT_EQ(report.shards, 8u);

  // One trace per shard assignment: id = shard index, track = worker
  // index, with the full assign -> send -> wait -> retire chain closed on
  // the completion path.
  const auto traces = recorder.snapshot();
  ASSERT_GE(traces.size(), 8u);
  std::vector<bool> retired(8, false);
  for (const auto& t : traces) {
    ASSERT_LT(t.id, 8u);
    EXPECT_EQ(t.track, 0u);
    if (t.phase_ns(sw::obs::Phase::kShardRetire) == 0) continue;
    EXPECT_GT(t.phase_ns(sw::obs::Phase::kShardSend), 0u);
    EXPECT_GT(t.phase_ns(sw::obs::Phase::kShardWait), 0u);
    retired[static_cast<std::size_t>(t.id)] = true;
  }
  for (std::size_t i = 0; i < retired.size(); ++i) {
    EXPECT_TRUE(retired[i]) << "shard " << i << " has no retire span";
  }
  // Healthy single-worker sweep: nothing was duplicated, so no reshard
  // events (the straggler path is exercised by the smoke script's leg 2).
  for (const auto& t : traces) {
    EXPECT_EQ(t.phase_ns(sw::obs::Phase::kReshard), 0u);
  }
}

/// A hand-rolled worker for fault injection: serves real evaluations but
/// can delay every response, corrupt response bits, or never answer.
class FaultyWorker {
 public:
  enum class Mode { kSlow, kStalled, kCorrupt };

  FaultyWorker(Mode mode, std::chrono::milliseconds delay,
               const GateLayout& layout, const FvmswDispersion& model,
               double alpha)
      : mode_(mode),
        delay_(delay),
        listener_(Endpoint::parse("tcp:127.0.0.1:0")),
        engine_(model, alpha),
        gate_(layout, engine_),
        evaluator_(gate_) {
    thread_ = std::thread([this] { serve(); });
  }

  ~FaultyWorker() {
    listener_.close();
    if (thread_.joinable()) thread_.join();
  }

  const Endpoint& endpoint() const { return listener_.local_endpoint(); }

  /// True once the worker holds its first request — tests gate the healthy
  /// worker on this so the faulty one deterministically owns a shard (on a
  /// one-core host the healthy worker would otherwise drain every shard
  /// before this thread is even scheduled).
  bool got_request() const { return got_request_.load(); }

 private:
  void serve() {
    auto conn = listener_.accept(30000ms);
    if (!conn) return;
    try {
      for (;;) {
        auto frame = recv_frame(*conn, 30000ms);
        if (!frame) return;  // coordinator closed: sweep is over
        got_request_.store(true);
        if (mode_ == Mode::kStalled) {
          // Swallow the request; the shard must be re-sharded. Wait for
          // the coordinator to abandon us (EOF) rather than replying.
          std::uint8_t byte;
          (void)conn->recv_all({&byte, 1}, 60000ms);
          return;
        }
        auto bits = evaluator_.evaluate_bits(
            static_cast<std::size_t>(frame->num_words), frame->matrix);
        if (mode_ == Mode::kCorrupt) bits[0] ^= 1;
        std::this_thread::sleep_for(delay_);
        send_message(*conn,
                     make_frame_message(sw::serve::make_response_frame(
                         *frame, gate_.layout().spec.frequencies.size(),
                         std::move(bits))),
                     30000ms);
      }
    } catch (const sw::util::Error&) {
      // Coordinator tore the connection down mid-wait; fine.
    }
  }

  Mode mode_;
  std::chrono::milliseconds delay_;
  std::atomic<bool> got_request_{false};
  Listener listener_;
  WaveEngine engine_;
  DataParallelGate gate_;
  BatchEvaluator evaluator_;
  std::thread thread_;
};

/// Service options whose requests block until `faulty` has received one:
/// guarantees the faulty worker owns a shard before the healthy worker
/// starts retiring them, whatever the scheduler does.
sw::serve::ServiceOptions gated_on(
    const std::atomic<const FaultyWorker*>& faulty) {
  sw::serve::ServiceOptions options;
  options.on_request_start = [&faulty](std::uint64_t) {
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    const FaultyWorker* worker = nullptr;
    while (((worker = faulty.load()) == nullptr || !worker->got_request()) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
  };
  return options;
}

struct SmallSweep {
  static constexpr std::size_t kChannels = 4;
  static constexpr std::size_t kSlots = kChannels * 3;
  static constexpr std::size_t kWords = 4096;
};

TEST(SweepCoordinator, ReshardsStragglersAndDedupsLateDuplicates) {
  const GateSpec spec = majority_spec(3, SmallSweep::kChannels);
  std::atomic<const FaultyWorker*> faulty{nullptr};
  ServerFixture fast(loopback(), gated_on(faulty));
  const GateLayout layout = fast.designer.design(spec);
  // A slow-but-correct worker: every shard it holds goes past the
  // straggler deadline, gets duplicated to the fast worker, and then
  // answers late — exercising re-shard AND bit-exact deduplication.
  FaultyWorker slow(FaultyWorker::Mode::kSlow, 700ms, layout, fast.model,
                    fast.wg.material.alpha);
  faulty.store(&slow);

  const auto matrix =
      random_matrix(SmallSweep::kWords, SmallSweep::kSlots, 11);
  const WaveEngine engine(fast.model, fast.wg.material.alpha);
  const DataParallelGate gate(layout, engine);
  const BatchEvaluator evaluator(gate);
  const auto expected = evaluator.evaluate_bits(SmallSweep::kWords, matrix);

  SweepOptions options;
  options.shard_words = 512;  // 8 shards
  options.straggler_deadline = 150ms;
  options.poll_tick = 10ms;
  options.duplicate_grace = 10000ms;  // hold for the late replies
  SweepCoordinator coordinator(
      {fast.server.local_endpoint(), slow.endpoint()}, options);
  SweepReport report;
  const auto merged =
      coordinator.run(layout, matrix, SmallSweep::kWords, &report);

  EXPECT_EQ(merged, expected);
  EXPECT_GE(report.resharded, 1u);
  EXPECT_GE(report.duplicate_results, 1u);
  EXPECT_EQ(report.dead_workers, 0u);
}

TEST(SweepCoordinator, CompletesWithAWorkerThatNeverAnswers) {
  const GateSpec spec = majority_spec(3, SmallSweep::kChannels);
  std::atomic<const FaultyWorker*> faulty{nullptr};
  ServerFixture fast(loopback(), gated_on(faulty));
  const GateLayout layout = fast.designer.design(spec);
  FaultyWorker stalled(FaultyWorker::Mode::kStalled, 0ms, layout,
                       fast.model, fast.wg.material.alpha);
  faulty.store(&stalled);

  const auto matrix =
      random_matrix(SmallSweep::kWords, SmallSweep::kSlots, 13);
  const WaveEngine engine(fast.model, fast.wg.material.alpha);
  const DataParallelGate gate(layout, engine);
  const BatchEvaluator evaluator(gate);
  const auto expected = evaluator.evaluate_bits(SmallSweep::kWords, matrix);

  SweepOptions options;
  options.shard_words = 512;
  options.straggler_deadline = 150ms;
  options.poll_tick = 10ms;
  SweepCoordinator coordinator(
      {fast.server.local_endpoint(), stalled.endpoint()}, options);
  SweepReport report;
  const auto merged =
      coordinator.run(layout, matrix, SmallSweep::kWords, &report);

  EXPECT_EQ(merged, expected);
  EXPECT_GE(report.resharded, 1u);
  EXPECT_EQ(report.shards_per_worker[0], report.shards)
      << "the live worker should have retired every shard";
}

TEST(SweepCoordinator, DivergentDuplicateAborts) {
  const GateSpec spec = majority_spec(3, SmallSweep::kChannels);
  std::atomic<const FaultyWorker*> faulty{nullptr};
  ServerFixture fast(loopback(), gated_on(faulty));
  const GateLayout layout = fast.designer.design(spec);
  FaultyWorker corrupt(FaultyWorker::Mode::kCorrupt, 700ms, layout,
                       fast.model, fast.wg.material.alpha);
  faulty.store(&corrupt);

  const auto matrix =
      random_matrix(SmallSweep::kWords, SmallSweep::kSlots, 17);
  SweepOptions options;
  options.shard_words = 512;
  options.straggler_deadline = 150ms;
  options.poll_tick = 10ms;
  options.duplicate_grace = 10000ms;
  SweepCoordinator coordinator(
      {fast.server.local_endpoint(), corrupt.endpoint()}, options);
  try {
    (void)coordinator.run(layout, matrix, SmallSweep::kWords, nullptr);
    FAIL() << "divergent duplicate results must abort the sweep";
  } catch (const sw::util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("diverge"), std::string::npos)
        << e.what();
  }
}

TEST(SweepCoordinator, DiscoversHeartbeatingWorkersAndSweepsBitExact) {
  // End-to-end discovery: two EvalServers heartbeat their adverts into a
  // registry, the coordinator takes its worker list from discover() alone
  // (no static endpoints anywhere), and the distributed sweep still
  // matches the in-process evaluator bit for bit.
  RegistryServer registry(loopback());
  EvalServerOptions server_options;
  server_options.registry = registry.local_endpoint();
  server_options.advertised_words_per_second = 1e6;
  ServerFixture worker_a(loopback(), {}, server_options);
  ServerFixture worker_b(loopback(), {}, server_options);

  const auto discovered = SweepCoordinator::discover(
      registry.local_endpoint(), 2, 30000ms);
  ASSERT_EQ(discovered.size(), 2u);
  std::vector<std::string> found;
  for (const auto& ep : discovered) found.push_back(ep.to_string());
  std::vector<std::string> served{
      worker_a.server.local_endpoint().to_string(),
      worker_b.server.local_endpoint().to_string()};
  std::sort(found.begin(), found.end());
  std::sort(served.begin(), served.end());
  EXPECT_EQ(found, served);

  // The adverts must carry real capability facts, not placeholders.
  for (const auto& advert : fetch_registry(registry.local_endpoint(), 2000ms)) {
    EXPECT_FALSE(advert.kernel.empty());
    EXPECT_FALSE(advert.precision.empty());
    EXPECT_EQ(advert.words_per_second, 1e6);
  }

  const GateSpec spec = majority_spec(3, SmallSweep::kChannels);
  const GateLayout layout = worker_a.designer.design(spec);
  const auto matrix =
      random_matrix(SmallSweep::kWords, SmallSweep::kSlots, 31);
  const WaveEngine engine(worker_a.model, worker_a.wg.material.alpha);
  const DataParallelGate gate(layout, engine);
  const BatchEvaluator evaluator(gate);
  const auto expected = evaluator.evaluate_bits(SmallSweep::kWords, matrix);

  SweepOptions options;
  options.shard_words = 512;
  SweepCoordinator coordinator(discovered, options);
  SweepReport report;
  const auto merged =
      coordinator.run(layout, matrix, SmallSweep::kWords, &report);
  EXPECT_EQ(merged, expected);
  EXPECT_EQ(report.dead_workers, 0u);
}

TEST(SweepCoordinator, DiscoverTimesOutOnAnEmptyRegistry) {
  RegistryServer registry(loopback());
  EXPECT_THROW((void)SweepCoordinator::discover(registry.local_endpoint(),
                                                1, 300ms),
               TimeoutError);
}

TEST(SweepCoordinator, AbortsWhenEveryWorkerIsUnreachable) {
  const GateSpec spec = majority_spec(3, 2);
  const Waveguide wg = paper_waveguide();
  const FvmswDispersion model(wg);
  const InlineGateDesigner designer(model);
  const GateLayout layout = designer.design(spec);
  const auto matrix = random_matrix(16, 6, 19);

  std::uint16_t dead_port;
  {
    Listener listener(loopback());
    dead_port = listener.local_endpoint().port;
  }
  SweepOptions options;
  options.connect_timeout = 200ms;
  SweepCoordinator coordinator(
      {Endpoint::parse("tcp:127.0.0.1:" + std::to_string(dead_port))},
      options);
  try {
    (void)coordinator.run(layout, matrix, 16, nullptr);
    FAIL() << "a sweep with no reachable workers must abort";
  } catch (const sw::util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("all sweep workers failed"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
