// Unit tests for the analytic travelling-wave engine.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "dispersion/local_1d.h"
#include "mag/demag_factors.h"
#include "mag/material.h"
#include "util/constants.h"
#include "util/error.h"
#include "util/stats.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw::wavesim;
using sw::disp::LocalDemag1DDispersion;
using sw::util::Error;
using sw::util::kPi;
using sw::util::kTwoPi;

LocalDemag1DDispersion test_model() {
  const auto nf = sw::mag::demag_factors_waveguide(50e-9, 1e-9);
  return LocalDemag1DDispersion(sw::mag::make_fecob(), nf);
}

TEST(WaveEngine, DecayLengthFormula) {
  const auto model = test_model();
  const WaveEngine engine(model, 0.004);
  const double f = 2e10;
  const double k = model.k_from_frequency(f);
  const double vg = model.group_velocity(k);
  EXPECT_NEAR(engine.decay_length(f), vg / (0.004 * kTwoPi * f), 1e-6);
}

TEST(WaveEngine, ZeroDampingMeansNoDecay) {
  const auto model = test_model();
  const WaveEngine engine(model, 0.0);
  EXPECT_TRUE(std::isinf(engine.decay_length(2e10)));
}

TEST(WaveEngine, SingleSourcePhasorAccumulatesKd) {
  const auto model = test_model();
  const WaveEngine engine(model, 0.0);  // no decay: pure phase
  const double f = 2e10;
  const double k = model.k_from_frequency(f);
  const double lambda = kTwoPi / k;

  const WaveSource src{.x = 0.0, .frequency = f, .phase = 0.3,
                       .amplitude = 1.0};
  const std::vector<WaveSource> sources{src};

  // One wavelength downstream: phase unchanged (mod 2 pi).
  const auto p1 = engine.steady_phasor(sources, lambda, f);
  EXPECT_NEAR(std::arg(p1), 0.3, 1e-9);
  EXPECT_NEAR(std::abs(p1), 1.0, 1e-12);

  // Half a wavelength: phase flipped.
  const auto p2 = engine.steady_phasor(sources, 0.5 * lambda, f);
  EXPECT_NEAR(sw::util::angle_distance(std::arg(p2), 0.3 + kPi), 0.0, 1e-9);
}

TEST(WaveEngine, DampedAmplitudeDecays) {
  const auto model = test_model();
  const WaveEngine engine(model, 0.004);
  const double f = 2e10;
  const double l = engine.decay_length(f);
  const std::vector<WaveSource> sources{{0.0, f, 0.0, 1.0, 0.0}};
  const auto p = engine.steady_phasor(sources, l, f);
  EXPECT_NEAR(std::abs(p), std::exp(-1.0), 1e-9);
}

TEST(WaveEngine, ConstructiveInterferenceDoubles) {
  const auto model = test_model();
  const WaveEngine engine(model, 0.0);
  const double f = 2e10;
  const double lambda = model.wavelength(f);
  const std::vector<WaveSource> sources{
      {0.0, f, 0.0, 1.0, 0.0}, {lambda, f, 0.0, 1.0, 0.0}};
  const auto p = engine.steady_phasor(sources, 3.0 * lambda, f);
  EXPECT_NEAR(std::abs(p), 2.0, 1e-9);
}

TEST(WaveEngine, DestructiveInterferenceCancels) {
  const auto model = test_model();
  const WaveEngine engine(model, 0.0);
  const double f = 2e10;
  const double lambda = model.wavelength(f);
  // Same launch phase, half-wavelength spacing: cancellation downstream.
  const std::vector<WaveSource> sources{
      {0.0, f, 0.0, 1.0, 0.0}, {0.5 * lambda, f, 0.0, 1.0, 0.0}};
  const auto p = engine.steady_phasor(sources, 4.0 * lambda, f);
  EXPECT_NEAR(std::abs(p), 0.0, 1e-9);
}

TEST(WaveEngine, OppositePhasesAtSamePointCancel) {
  const auto model = test_model();
  const WaveEngine engine(model, 0.0);
  const double f = 2e10;
  const double lambda = model.wavelength(f);
  const std::vector<WaveSource> sources{
      {0.0, f, 0.0, 1.0, 0.0}, {lambda, f, kPi, 1.0, 0.0}};
  const auto p = engine.steady_phasor(sources, 2.0 * lambda, f);
  EXPECT_NEAR(std::abs(p), 0.0, 1e-9);
}

TEST(WaveEngine, MajorityVoteOfThreeWaves) {
  const auto model = test_model();
  const WaveEngine engine(model, 0.0);
  const double f = 2e10;
  const double lambda = model.wavelength(f);
  // Two logic-1 (pi) and one logic-0 (0): resultant phase must be pi.
  const std::vector<WaveSource> sources{{0.0, f, kPi, 1.0, 0.0},
                                        {lambda, f, kPi, 1.0, 0.0},
                                        {2 * lambda, f, 0.0, 1.0, 0.0}};
  const auto p = engine.steady_phasor(sources, 4.0 * lambda, f);
  EXPECT_NEAR(std::abs(p), 1.0, 1e-9);
  EXPECT_NEAR(sw::util::angle_distance(std::arg(p), kPi), 0.0, 1e-9);
}

TEST(WaveEngine, FrequencyIsolation) {
  // A 20 GHz source contributes nothing to the 40 GHz phasor: the heart of
  // the paper's parallelism claim.
  const auto model = test_model();
  const WaveEngine engine(model, 0.004);
  const std::vector<WaveSource> sources{{0.0, 2e10, 0.0, 1.0, 0.0}};
  const auto p = engine.steady_phasor(sources, 100e-9, 4e10);
  EXPECT_DOUBLE_EQ(std::abs(p), 0.0);
}

TEST(WaveEngine, SignalGatedByGroupArrival) {
  const auto model = test_model();
  const WaveEngine engine(model, 0.004);
  const double f = 2e10;
  const double k = model.k_from_frequency(f);
  const double vg = model.group_velocity(k);
  const double x = 200e-9;
  const std::vector<WaveSource> sources{{0.0, f, 0.0, 1.0, 0.0}};

  EXPECT_DOUBLE_EQ(engine.signal(sources, x, 0.5 * x / vg), 0.0);
  // Well after arrival the signal oscillates.
  double max_abs = 0.0;
  for (double t = 2.0 * x / vg; t < 2.0 * x / vg + 1.0 / f; t += 0.02 / f) {
    max_abs = std::max(max_abs, std::abs(engine.signal(sources, x, t)));
  }
  EXPECT_GT(max_abs, 0.5);
}

TEST(WaveEngine, RecordProducesRequestedSamples) {
  const auto model = test_model();
  const WaveEngine engine(model, 0.004);
  const std::vector<WaveSource> sources{{0.0, 2e10, 0.0, 1.0, 0.0}};
  const auto rec = engine.record(sources, 50e-9, 0.0, 1e-9, 1e-12);
  EXPECT_EQ(rec.size(), 1000u);
  EXPECT_THROW(engine.record(sources, 0.0, 1e-9, 0.0, 1e-12), Error);
}

TEST(WaveEngine, SettleTimeCoversSlowestPath) {
  const auto model = test_model();
  const WaveEngine engine(model, 0.004);
  const double f = 2e10;
  const double k = model.k_from_frequency(f);
  const double vg = model.group_velocity(k);
  const std::vector<WaveSource> sources{{0.0, f, 0.0, 1.0, 0.0}};
  const double x = 300e-9;
  const double t = engine.settle_time(sources, x, 5.0);
  EXPECT_GE(t, x / vg + 5.0 / f - 1e-15);
}

TEST(WaveEngine, RejectsNegativeAlpha) {
  const auto model = test_model();
  EXPECT_THROW(WaveEngine(model, -0.1), Error);
}

}  // namespace
