// Unit tests for the FFT library: transforms, windows, Goertzel, spectra.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>
#include <vector>

#include "fft/fft.h"
#include "fft/goertzel.h"
#include "fft/spectrum.h"
#include "fft/window.h"
#include "util/constants.h"
#include "util/error.h"

namespace {

using namespace sw::fft;
using sw::util::kPi;
using sw::util::kTwoPi;

std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -kTwoPi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      acc += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<Complex> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(dist(rng), dist(rng));
  return x;
}

// ------------------------------------------------------------------ helpers

TEST(FftHelpers, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1000));
}

TEST(FftHelpers, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

// --------------------------------------------------------------------- fft

TEST(Fft, DeltaHasFlatSpectrum) {
  std::vector<Complex> x(8, Complex(0, 0));
  x[0] = 1.0;
  fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantIsDcBin) {
  std::vector<Complex> x(16, Complex(1, 0));
  fft(x);
  EXPECT_NEAR(x[0].real(), 16.0, 1e-12);
  for (std::size_t k = 1; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-11);
  }
}

TEST(Fft, SingleToneLandsInItsBin) {
  const std::size_t n = 64;
  std::vector<Complex> x(n);
  const std::size_t bin = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = kTwoPi * static_cast<double>(bin * i) /
                       static_cast<double>(n);
    x[i] = Complex(std::cos(ang), 0.0);
  }
  fft(x);
  EXPECT_NEAR(std::abs(x[bin]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(x[n - bin]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(x[bin + 1]), 0.0, 1e-9);
}

class FftMatchesNaiveDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftMatchesNaiveDft, ForwardAgreesWithNaive) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 42 + static_cast<unsigned>(n));
  const auto ref = naive_dft(x);
  fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(x[k] - ref[k]), 0.0, 1e-8 * static_cast<double>(n))
        << "bin " << k << " of n=" << n;
  }
}

TEST_P(FftMatchesNaiveDft, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const auto orig = random_signal(n, 7 + static_cast<unsigned>(n));
  auto x = orig;
  fft(x);
  ifft(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(x[k] - orig[k]), 0.0, 1e-10);
  }
}

// Mix of power-of-two, prime, composite and awkward sizes: exercises both
// the radix-2 path and Bluestein.
INSTANTIATE_TEST_SUITE_P(Sizes, FftMatchesNaiveDft,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17,
                                           31, 32, 45, 64, 100, 127, 128,
                                           243, 256));

TEST(Fft, ParsevalHolds) {
  auto x = random_signal(256, 99);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  fft(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 256.0, time_energy, 1e-8 * time_energy);
}

TEST(Fft, Linearity) {
  auto a = random_signal(128, 1);
  auto b = random_signal(128, 2);
  std::vector<Complex> sum(128);
  for (std::size_t i = 0; i < 128; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_NEAR(std::abs(sum[i] - (2.0 * a[i] + 3.0 * b[i])), 0.0, 1e-8);
  }
}

TEST(FftReal, MatchesComplexPath) {
  std::vector<double> x(100);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (auto& v : x) v = dist(rng);
  const auto spec = fft_real(x);
  std::vector<Complex> xc(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xc[i] = Complex(x[i], 0.0);
  fft(xc);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(spec[i] - xc[i]), 0.0, 1e-10);
  }
}

TEST(FftReal, HermitianSymmetry) {
  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.3 * static_cast<double>(i)) +
           0.2 * std::cos(1.1 * static_cast<double>(i));
  }
  const auto spec = fft_real(x);
  for (std::size_t k = 1; k < x.size() / 2; ++k) {
    EXPECT_NEAR(std::abs(spec[k] - std::conj(spec[x.size() - k])), 0.0, 1e-9);
  }
}

// ------------------------------------------------------------- convolution

TEST(Convolve, CircularAgainstNaive) {
  const std::size_t n = 12;
  auto a = random_signal(n, 11);
  auto b = random_signal(n, 12);
  std::vector<Complex> ref(n, Complex(0, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ref[(i + j) % n] += a[i] * b[j];
    }
  }
  const auto got = circular_convolve(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(got[i] - ref[i]), 0.0, 1e-9);
  }
}

TEST(Convolve, CircularSizeMismatchThrows) {
  std::vector<Complex> a(4), b(5);
  EXPECT_THROW(circular_convolve(a, b), sw::util::Error);
}

TEST(Convolve, LinearAgainstNaive) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{0.5, -1.0, 2.0, 1.0};
  const auto got = linear_convolve(a, b);
  ASSERT_EQ(got.size(), 6u);
  std::vector<double> ref(6, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) ref[i + j] += a[i] * b[j];
  }
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(got[i], ref[i], 1e-10);
}

// ------------------------------------------------------------------ window

class WindowGain : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowGain, CoherentGainMatchesMean) {
  const auto w = make_window(GetParam(), 128);
  double mean = 0.0;
  for (double v : w) mean += v;
  mean /= 128.0;
  EXPECT_NEAR(coherent_gain(GetParam(), 128), mean, 1e-14);
}

TEST_P(WindowGain, NonNegativeEnergy) {
  const auto w = make_window(GetParam(), 64);
  EXPECT_EQ(w.size(), 64u);
  double energy = 0.0;
  for (double v : w) energy += v * v;
  EXPECT_GT(energy, 0.0);
}

TEST_P(WindowGain, RoundTripName) {
  EXPECT_EQ(window_from_name(window_name(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WindowGain,
                         ::testing::Values(WindowKind::kRect, WindowKind::kHann,
                                           WindowKind::kHamming,
                                           WindowKind::kBlackman,
                                           WindowKind::kFlatTop));

TEST(Window, RectIsUnity) {
  for (double v : make_window(WindowKind::kRect, 16)) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
  EXPECT_DOUBLE_EQ(coherent_gain(WindowKind::kRect, 16), 1.0);
}

TEST(Window, HannGainIsHalf) {
  EXPECT_NEAR(coherent_gain(WindowKind::kHann, 4096), 0.5, 1e-3);
}

TEST(Window, UnknownNameThrows) {
  EXPECT_THROW(window_from_name("kaiser"), sw::util::Error);
}

// ---------------------------------------------------------------- goertzel

TEST(Goertzel, ExactToneBinAligned) {
  const double fs = 1e12;
  const double f = 1e10;  // 100 samples per period, 10 periods in 1000
  const std::size_t n = 1000;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.7 * std::cos(kTwoPi * f * static_cast<double>(i) / fs + 0.4);
  }
  const auto p = goertzel(x, fs, f);
  EXPECT_NEAR(p.amplitude, 0.7, 1e-9);
  EXPECT_NEAR(p.phase, 0.4, 1e-9);
}

TEST(Goertzel, NonBinAlignedTone) {
  const double fs = 1e12;
  const double f = 1.37e10;  // not an integer number of cycles in the window
  const std::size_t n = 2000;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 1.3 * std::cos(kTwoPi * f * static_cast<double>(i) / fs - 1.1);
  }
  const auto p = goertzel(x, fs, f);
  // Leakage from the rectangular window bounds accuracy here.
  EXPECT_NEAR(p.amplitude, 1.3, 0.05);
  EXPECT_NEAR(p.phase, -1.1, 0.05);
}

TEST(Goertzel, PhaseOfLogicOneIsPi) {
  const double fs = 1e12;
  const double f = 2e10;
  const std::size_t n = 1500;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(kTwoPi * f * static_cast<double>(i) / fs + kPi);
  }
  const auto p = goertzel(x, fs, f);
  EXPECT_NEAR(std::abs(p.phase), kPi, 1e-6);
}

TEST(Goertzel, RejectsOtherFrequencies) {
  // A 20 GHz tone leaks almost nothing into the 40 GHz estimate when the
  // window holds whole periods of both.
  const double fs = 1e12;
  const std::size_t n = 1000;  // 20 and 40 periods
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(kTwoPi * 2e10 * static_cast<double>(i) / fs);
  }
  const auto p = goertzel(x, fs, 4e10);
  EXPECT_LT(p.amplitude, 1e-9);
}

TEST(Goertzel, MultiToneSeparation) {
  const double fs = 1e12;
  const std::size_t n = 1000;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    x[i] = 0.5 * std::cos(kTwoPi * 1e10 * t + 0.2) +
           0.8 * std::cos(kTwoPi * 3e10 * t - 0.9);
  }
  const auto p1 = goertzel(x, fs, 1e10);
  const auto p3 = goertzel(x, fs, 3e10);
  EXPECT_NEAR(p1.amplitude, 0.5, 1e-9);
  EXPECT_NEAR(p1.phase, 0.2, 1e-8);
  EXPECT_NEAR(p3.amplitude, 0.8, 1e-9);
  EXPECT_NEAR(p3.phase, -0.9, 1e-8);
}

TEST(Goertzel, WindowedCompensatesGain) {
  const double fs = 1e12;
  const std::size_t n = 1000;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.6 * std::cos(kTwoPi * 1e10 * static_cast<double>(i) / fs);
  }
  const auto w = make_window(WindowKind::kHann, n);
  const auto p = goertzel_windowed(x, w, fs, 1e10);
  EXPECT_NEAR(p.amplitude, 0.6, 0.01);
}

TEST(Goertzel, GuardsContract) {
  std::vector<double> x(10, 0.0);
  EXPECT_THROW(goertzel(x, 1e9, 6e8), sw::util::Error);  // above Nyquist
  EXPECT_THROW(goertzel({}, 1e9, 1e8), sw::util::Error);
  EXPECT_THROW(goertzel(x, -1.0, 0.0), sw::util::Error);
}

// ---------------------------------------------------------------- spectrum

TEST(Spectrum, PeakAtToneWithCorrectAmplitude) {
  const double fs = 1e12;
  const std::size_t n = 4096;
  std::vector<double> x(n);
  const double f = fs * 64.0 / static_cast<double>(n);  // bin-aligned
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.9 * std::cos(kTwoPi * f * static_cast<double>(i) / fs);
  }
  const auto s = amplitude_spectrum(x, fs, WindowKind::kHann);
  const auto peaks = find_peaks(s, 0.1);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks[0].freq, f, s.resolution);
  EXPECT_NEAR(peaks[0].amplitude, 0.9, 0.02);
}

TEST(Spectrum, ResolutionIsSampleRateOverN) {
  std::vector<double> x(1000, 0.0);
  x[1] = 1.0;
  const auto s = amplitude_spectrum(x, 2e9);
  EXPECT_NEAR(s.resolution, 2e6, 1e-6);
  EXPECT_EQ(s.freq.size(), 501u);
}

TEST(Spectrum, ToneToSpurRatioCleanSignal) {
  const double fs = 1e12;
  const std::size_t n = 2048;
  std::vector<double> x(n);
  const double f = fs * 100.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(kTwoPi * f * static_cast<double>(i) / fs);
  }
  const auto s = amplitude_spectrum(x, fs, WindowKind::kHann);
  const std::vector<double> tones{f};
  EXPECT_GT(tone_to_spur_ratio(s, tones, 10.0 * s.resolution), 100.0);
}

TEST(Spectrum, ToneToSpurRatioDetectsSpur) {
  const double fs = 1e12;
  const std::size_t n = 2048;
  std::vector<double> x(n);
  const double f = fs * 100.0 / static_cast<double>(n);
  const double spur = fs * 400.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    x[i] = std::cos(kTwoPi * f * t) + 0.1 * std::cos(kTwoPi * spur * t);
  }
  const auto s = amplitude_spectrum(x, fs, WindowKind::kHann);
  const std::vector<double> tones{f};
  const double ratio = tone_to_spur_ratio(s, tones, 10.0 * s.resolution);
  EXPECT_NEAR(ratio, 10.0, 1.5);
}

TEST(Spectrum, RejectsBadInput) {
  std::vector<double> x(1, 0.0);
  EXPECT_THROW(amplitude_spectrum(x, 1e9), sw::util::Error);
}

}  // namespace
