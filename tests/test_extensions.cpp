// Tests for the extension modules: thermal (Langevin) field, derived
// Boolean gates, majority cascades, and 2-D mesh operation of the solver.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cascade.h"
#include "core/logic_ops.h"
#include "dispersion/fvmsw.h"
#include "mag/anisotropy.h"
#include "mag/antenna.h"
#include "mag/demag_factors.h"
#include "mag/demag_local.h"
#include "mag/demag_newell.h"
#include "mag/exchange.h"
#include "mag/simulation.h"
#include "mag/thermal.h"
#include "util/constants.h"
#include "util/error.h"
#include "util/stats.h"
#include "wavesim/wave_engine.h"

namespace {

using namespace sw;
using sw::util::Error;

disp::Waveguide paper_waveguide() {
  disp::Waveguide wg;
  wg.material = mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

// ------------------------------------------------------------------ thermal

TEST(ThermalField, ZeroTemperatureIsSilent) {
  const mag::Mesh mesh(8, 1, 1, 2e-9, 50e-9, 1e-9);
  const mag::ThermalField th(mesh, mag::make_fecob(), 0.0, 1e-13);
  const mag::VectorField m(mesh, {0, 0, 1});
  mag::VectorField h(mesh);
  th.accumulate(0.0, m, h);
  EXPECT_DOUBLE_EQ(h.max_norm(), 0.0);
  EXPECT_DOUBLE_EQ(th.sigma(), 0.0);
}

TEST(ThermalField, SigmaFollowsBrownFormula) {
  const mag::Mesh mesh(4, 1, 1, 2e-9, 50e-9, 1e-9);
  const auto mat = mag::make_fecob();
  const double dt = 1e-13;
  const mag::ThermalField th(mesh, mat, 300.0, dt);
  const double expect = std::sqrt(
      2.0 * mat.alpha * sw::util::kBoltzmann * 300.0 /
      (sw::util::kGammaMu0 * sw::util::kMu0 * mat.Ms * mesh.cell_volume() *
       dt));
  EXPECT_NEAR(th.sigma(), expect, 1e-9 * expect);
}

TEST(ThermalField, RealisationFrozenWithinStep) {
  const mag::Mesh mesh(16, 1, 1, 2e-9, 50e-9, 1e-9);
  const mag::ThermalField th(mesh, mag::make_fecob(), 300.0, 1e-13);
  const mag::VectorField m(mesh, {0, 0, 1});
  mag::VectorField h1(mesh), h2(mesh);
  th.accumulate(0.05e-13, m, h1);   // two times inside step 0
  th.accumulate(0.95e-13, m, h2);
  for (std::size_t c = 0; c < h1.size(); ++c) {
    EXPECT_DOUBLE_EQ(h1[c].x, h2[c].x);
  }
}

TEST(ThermalField, RealisationRefreshesBetweenSteps) {
  const mag::Mesh mesh(16, 1, 1, 2e-9, 50e-9, 1e-9);
  const mag::ThermalField th(mesh, mag::make_fecob(), 300.0, 1e-13);
  const mag::VectorField m(mesh, {0, 0, 1});
  mag::VectorField h1(mesh), h2(mesh);
  th.accumulate(0.5e-13, m, h1);
  th.accumulate(1.5e-13, m, h2);
  double diff = 0.0;
  for (std::size_t c = 0; c < h1.size(); ++c) {
    diff += std::abs(h1[c].x - h2[c].x);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(ThermalField, DeterministicAcrossInstances) {
  const mag::Mesh mesh(16, 1, 1, 2e-9, 50e-9, 1e-9);
  const mag::ThermalField a(mesh, mag::make_fecob(), 300.0, 1e-13, 42);
  const mag::ThermalField b(mesh, mag::make_fecob(), 300.0, 1e-13, 42);
  const mag::VectorField m(mesh, {0, 0, 1});
  mag::VectorField ha(mesh), hb(mesh);
  a.accumulate(0.0, m, ha);
  b.accumulate(0.0, m, hb);
  for (std::size_t c = 0; c < ha.size(); ++c) {
    EXPECT_DOUBLE_EQ(ha[c].x, hb[c].x);
    EXPECT_DOUBLE_EQ(ha[c].y, hb[c].y);
    EXPECT_DOUBLE_EQ(ha[c].z, hb[c].z);
  }
}

TEST(ThermalField, EmpiricalVarianceMatchesSigma) {
  const mag::Mesh mesh(64, 1, 1, 2e-9, 50e-9, 1e-9);
  const mag::ThermalField th(mesh, mag::make_fecob(), 300.0, 1e-13);
  const mag::VectorField m(mesh, {0, 0, 1});
  std::vector<double> samples;
  for (int step = 0; step < 40; ++step) {
    mag::VectorField h(mesh);
    th.accumulate(step * 1e-13, m, h);
    for (std::size_t c = 0; c < h.size(); ++c) {
      samples.push_back(h[c].x);
      samples.push_back(h[c].y);
      samples.push_back(h[c].z);
    }
  }
  const auto s = sw::util::summarize(samples);
  EXPECT_NEAR(s.mean, 0.0, 0.05 * th.sigma());
  EXPECT_NEAR(s.stddev, th.sigma(), 0.03 * th.sigma());
}

TEST(ThermalField, ThermalizedMacrospinFluctuates) {
  // A single-cell run at 300 K must show transverse fluctuations with the
  // expected order of magnitude, while T = 0 stays perfectly aligned.
  const auto mat = mag::make_fecob();
  const mag::Mesh mesh(1, 1, 1, 10e-9, 50e-9, 1e-9);

  auto run_rms = [&](double temperature) {
    mag::IntegratorOptions opts;
    opts.stepper = mag::Stepper::kHeun;
    opts.dt = 1e-13;
    mag::Simulation sim(mesh, mat, opts);
    sim.add_term<mag::UniaxialAnisotropyField>(mat);
    sim.add_term<mag::DemagLocalField>(
        mat, mag::demag_factors_waveguide(50e-9, 1e-9));
    sim.add_term<mag::ThermalField>(mesh, mat, temperature, opts.dt);
    auto& probe = sim.add_probe("p", 5e-9, 10e-9, 1e-12);
    sim.run_until(0.5e-9);
    return sw::util::rms(probe.component('x'));
  };

  EXPECT_EQ(run_rms(0.0), 0.0);
  const double rms300 = run_rms(300.0);
  EXPECT_GT(rms300, 1e-5);
  EXPECT_LT(rms300, 0.3);  // still far from switching
}

TEST(ThermalField, RejectsBadArguments) {
  const mag::Mesh mesh(4, 1, 1, 2e-9, 50e-9, 1e-9);
  EXPECT_THROW(mag::ThermalField(mesh, mag::make_fecob(), -1.0, 1e-13),
               Error);
  EXPECT_THROW(mag::ThermalField(mesh, mag::make_fecob(), 300.0, 0.0),
               Error);
}

// ---------------------------------------------------------------- logic ops

class LogicOpParam : public ::testing::TestWithParam<core::BooleanOp> {};

TEST_P(LogicOpParam, TruthTableHoldsOnAllChannels) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  const wavesim::WaveEngine engine(model, wg.material.alpha);
  std::vector<double> freqs;
  for (int i = 1; i <= 4; ++i) freqs.push_back(1e10 * i);

  const core::ParallelLogicGate gate(GetParam(), freqs, designer, engine);
  EXPECT_NO_THROW(gate.verify());
}

INSTANTIATE_TEST_SUITE_P(AllOps, LogicOpParam,
                         ::testing::Values(core::BooleanOp::kAnd,
                                           core::BooleanOp::kOr,
                                           core::BooleanOp::kNand,
                                           core::BooleanOp::kNor,
                                           core::BooleanOp::kBuffer,
                                           core::BooleanOp::kNot));

TEST(LogicOps, IndependentLanes) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  const wavesim::WaveEngine engine(model, wg.material.alpha);
  std::vector<double> freqs{1e10, 2e10, 3e10, 4e10};

  const core::ParallelLogicGate andg(core::BooleanOp::kAnd, freqs, designer,
                                     engine);
  const core::Bits a{1, 1, 0, 0};
  const core::Bits b{1, 0, 1, 0};
  const auto out = andg.evaluate(a, b);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 0, 0, 0}));
}

TEST(LogicOps, UnaryGatesUseOneDataInput) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  const wavesim::WaveEngine engine(model, wg.material.alpha);

  const core::ParallelLogicGate notg(core::BooleanOp::kNot, {2e10}, designer,
                                     engine);
  EXPECT_EQ(notg.data_inputs(), 1u);
  EXPECT_EQ(notg.evaluate({1}, {})[0], 0);
  EXPECT_EQ(notg.evaluate({0}, {})[0], 1);
}

TEST(LogicOps, NamesRoundTrip) {
  EXPECT_STREQ(core::boolean_op_name(core::BooleanOp::kNand), "nand");
  EXPECT_TRUE(core::boolean_op_eval(core::BooleanOp::kNand, false, true));
  EXPECT_FALSE(core::boolean_op_eval(core::BooleanOp::kAnd, false, true));
}

TEST(LogicOps, OperandSizeValidated) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  const wavesim::WaveEngine engine(model, wg.material.alpha);
  const core::ParallelLogicGate org(core::BooleanOp::kOr, {2e10, 3e10},
                                    designer, engine);
  EXPECT_THROW(org.evaluate({1}, {0, 1}), Error);
}

// ------------------------------------------------------------------ cascade

TEST(Cascade, SingleMajNodeMatchesGate) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  const wavesim::WaveEngine engine(model, wg.material.alpha);

  core::MajorityCascade c({2e10, 4e10}, designer, engine);
  const auto a = c.input();
  const auto b = c.input();
  const auto d = c.input();
  const auto out = c.maj(a, b, d);
  EXPECT_NO_THROW(c.verify());
  EXPECT_EQ(c.num_gates(), 1u);

  const auto signals =
      c.evaluate({core::Bits{1, 0}, core::Bits{1, 1}, core::Bits{0, 0}});
  EXPECT_EQ(signals[out.id][0], 1);  // MAJ(1,1,0)
  EXPECT_EQ(signals[out.id][1], 0);  // MAJ(0,1,0)
}

TEST(Cascade, NegatedInputsAreFree) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  const wavesim::WaveEngine engine(model, wg.material.alpha);

  core::MajorityCascade c({2e10}, designer, engine);
  const auto a = c.input();
  const auto b = c.input();
  const auto d = c.input();
  const auto out = c.maj(!a, !b, !d);  // NOT-MAJ = minority
  const auto signals =
      c.evaluate({core::Bits{1}, core::Bits{1}, core::Bits{0}});
  EXPECT_EQ(signals[out.id][0], 0);  // MAJ(0,0,1) = 0
}

TEST(Cascade, InvertedOutputNode) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  const wavesim::WaveEngine engine(model, wg.material.alpha);

  core::MajorityCascade c({2e10}, designer, engine);
  const auto a = c.input();
  const auto b = c.input();
  const auto d = c.input();
  const auto out = c.maj(a, b, d, /*invert_output=*/true);
  const auto signals =
      c.evaluate({core::Bits{1}, core::Bits{1}, core::Bits{0}});
  EXPECT_EQ(signals[out.id][0], 0);  // !MAJ(1,1,0)
}

TEST(Cascade, FullAdderExhaustive) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  const wavesim::WaveEngine engine(model, wg.material.alpha);

  core::MajorityCascade c({1e10, 3e10, 6e10}, designer, engine);
  const auto fa = core::build_full_adder(c);
  EXPECT_EQ(c.num_gates(), 3u);

  for (int v = 0; v < 8; ++v) {
    const bool a = v & 1, b = v & 2, ci = v & 4;
    const std::size_t n = c.num_channels();
    const auto signals = c.evaluate({core::Bits(n, a), core::Bits(n, b),
                                     core::Bits(n, ci)});
    const int total = int(a) + int(b) + int(ci);
    for (std::size_t ch = 0; ch < n; ++ch) {
      EXPECT_EQ(int(signals[fa.sum.id][ch]), total % 2)
          << "sum wrong for v=" << v;
      EXPECT_EQ(int(signals[fa.carry_out.id][ch]), total / 2)
          << "carry wrong for v=" << v;
    }
  }
}

TEST(Cascade, RejectsMalformedNetlists) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  const wavesim::WaveEngine engine(model, wg.material.alpha);

  core::MajorityCascade c({2e10}, designer, engine);
  const auto a = c.input();
  EXPECT_THROW(c.maj(a, a, {.id = 99}), Error);  // dangling reference
  c.maj(a, a, a);
  EXPECT_THROW(c.input(), Error);  // inputs after gates
  EXPECT_THROW(c.evaluate({}), Error);
}

TEST(Cascade, AreaAccounting) {
  const auto wg = paper_waveguide();
  const disp::FvmswDispersion model(wg);
  const core::InlineGateDesigner designer(model);
  const wavesim::WaveEngine engine(model, wg.material.alpha);

  core::MajorityCascade c({2e10}, designer, engine);
  const auto a = c.input();
  const auto b = c.input();
  const auto d = c.input();
  c.maj(a, b, d);
  c.maj(a, b, d);
  EXPECT_GT(c.total_area(50e-9), 0.0);
  EXPECT_THROW(c.total_area(0.0), Error);
}

// ------------------------------------------------------------------ 2-D runs

TEST(TwoDimensional, WavePropagatesAcrossAWideGuide) {
  // The solver is not restricted to chains: a 2-D film strip (ny > 1) with
  // the exact Newell demag still carries spin waves. This is the substrate
  // for the paper's width-variation study.
  const auto mat = mag::make_fecob();
  const std::size_t nx = 90, ny = 5;
  const double dx = 4e-9, dy = 10e-9;  // 360 x 50 nm strip
  const mag::Mesh mesh(nx, ny, 1, dx, dy, 1e-9);
  mag::IntegratorOptions opts;
  opts.stepper = mag::Stepper::kRk4;
  opts.dt = 2e-13;
  mag::Simulation sim(mesh, mat, opts);
  sim.add_term<mag::ExchangeField>(mesh, mat);
  sim.add_term<mag::UniaxialAnisotropyField>(mat);
  sim.add_term<mag::DemagNewellField>(mesh, mat);

  auto& ant = sim.add_term<mag::AntennaField>(mesh);
  mag::Antenna a;
  a.x_center = 80e-9;
  a.width = 12e-9;
  a.frequency = 1.5e10;
  a.amplitude = 3e3;
  a.ramp = 5e-11;
  ant.add(a);
  sim.add_absorbing_ends(50e-9, 0.5);

  // The uniform +z state is an exact equilibrium here (the demag field is
  // z-parallel by the odd symmetry of Nxz/Nyz), so no relaxation pass.
  auto& probe = sim.add_probe("far", 250e-9, 12e-9, 2e-12);
  sim.run_until(0.45e-9);

  double max_abs = 0.0;
  for (double v : probe.component('x')) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_GT(max_abs, 1e-5);

  // Linear regime, no blow-up: the film stays essentially saturated along
  // +z and every cell stays exactly unit length. (The instantaneous mx
  // profile across the width is *not* mirror-symmetric: magnetisation is a
  // pseudovector, so the plain y-mirror is not a symmetry of the
  // out-of-plane state, and the odd-in-y Nxy/Nyz dipolar couplings mix
  // symmetric and antisymmetric width profiles — physics, not a solver
  // artefact; per-term symmetry on symmetric inputs is covered by the
  // DemagNewellField unit tests.)
  const auto& m = sim.magnetization();
  EXPECT_GT(m.average().z, 0.999);
  for (std::size_t c = 0; c < m.size(); ++c) {
    ASSERT_NEAR(m[c].norm(), 1.0, 1e-9);
  }
}

}  // namespace
