// 8-bit data-parallel XOR gate: the paper's other gate type. Two inputs per
// channel; the readout is amplitude-threshold instead of phase-threshold —
// in-phase inputs (00, 11) interfere constructively (logic 0), out-of-phase
// inputs (01, 10) cancel (logic 1).
//
//   $ ./parallel_xor
#include <cstdio>

#include "core/detector.h"
#include "core/encoding.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "io/csv.h"
#include "mag/material.h"
#include "util/strings.h"
#include "util/units.h"
#include "wavesim/wave_engine.h"

using namespace sw;

int main() {
  disp::Waveguide wg;
  wg.material = mag::make_fecob();
  wg.width = 50 * units::nm;
  wg.thickness = 1 * units::nm;
  const disp::FvmswDispersion dispersion(wg);

  core::GateSpec spec;
  spec.num_inputs = 2;  // XOR is a 2-input, amplitude-decoded gate
  for (int i = 1; i <= 8; ++i) spec.frequencies.push_back(i * 10.0 * units::GHz);

  const core::InlineGateDesigner designer(dispersion);
  const auto layout = designer.design(spec);
  const wavesim::WaveEngine engine(dispersion, wg.material.alpha);
  const core::DataParallelGate gate(layout, engine);

  // Reference amplitudes: the all-zero (fully constructive) case.
  const auto ref = gate.evaluate_uniform(core::Bits{0, 0});

  io::TextTable tab({"A B", "XOR", "decoded (8 channels)", "min amp margin"});
  std::size_t failures = 0;
  for (const auto& pattern : core::all_patterns(2)) {
    const auto out = gate.evaluate_uniform(pattern);
    std::string bits;
    double min_margin = 1e9;
    for (std::size_t ch = 0; ch < out.size(); ++ch) {
      const auto d =
          core::decide_amplitude(out[ch].amplitude, ref[ch].amplitude);
      bits += d.logic ? '1' : '0';
      min_margin = std::min(min_margin, d.margin);
      failures += (d.logic != static_cast<std::uint8_t>(core::parity(pattern)));
    }
    tab.add_row({std::string() + char('0' + pattern[0]) + " " +
                     char('0' + pattern[1]),
                 core::parity(pattern) ? "1" : "0", bits,
                 util::format_sig(min_margin, 3)});
  }
  std::printf("8-bit data-parallel XOR (amplitude readout):\n%s\n",
              tab.str().c_str());
  std::printf("failures: %zu / 32 channel-pattern pairs\n", failures);

  // Per-channel demonstration with independent data words.
  const std::vector<core::Bits> a_word{{1, 0}, {0, 0}, {1, 1}, {0, 1},
                                       {1, 0}, {1, 1}, {0, 0}, {0, 1}};
  const auto out = gate.evaluate(a_word);
  std::string result;
  for (std::size_t ch = 0; ch < out.size(); ++ch) {
    const auto d = core::decide_amplitude(out[ch].amplitude,
                                          ref[ch].amplitude);
    result += d.logic ? '1' : '0';
  }
  std::printf("\nindependent per-channel words -> XOR byte = %s\n",
              result.c_str());
  return failures == 0 ? 0 : 1;
}
