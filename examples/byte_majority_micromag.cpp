// Full micromagnetic (LLG) validation of the byte-wide Majority gate for
// one input vector — the single-shot version of the paper's OOMMF run.
// Writes the final magnetisation as an OOMMF-compatible OVF file and the
// per-port traces as CSV.
//
//   $ ./byte_majority_micromag           # default input vector 1 1 0
//   $ ./byte_majority_micromag 0 1 1     # choose your own
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/encoding.h"
#include "core/gate_design.h"
#include "core/micromag_gate.h"
#include "dispersion/local_1d.h"
#include "io/csv.h"
#include "mag/material.h"
#include "util/strings.h"
#include "util/units.h"

using namespace sw;

int main(int argc, char** argv) {
  core::Bits pattern{1, 1, 0};
  if (argc == 4) {
    for (int i = 0; i < 3; ++i) {
      pattern[i] = static_cast<std::uint8_t>(std::atoi(argv[i + 1]) != 0);
    }
  }

  disp::Waveguide wg;
  wg.material = mag::make_fecob();
  wg.width = 50 * units::nm;
  wg.thickness = 1 * units::nm;

  // Design against the solver-consistent 1-D dispersion (discretisation
  // aware) so source spacings are exact wavelength multiples in the sim.
  core::MicromagConfig cfg;
  cfg.t_end = 2.2 * units::ns;
  auto model = disp::LocalDemag1DDispersion::from_waveguide(wg);
  model.set_discretization(cfg.cell_size);

  core::GateSpec spec;
  spec.num_inputs = 3;
  for (int i = 1; i <= 8; ++i) spec.frequencies.push_back(i * 10.0 * units::GHz);
  const core::InlineGateDesigner designer(model);
  const auto layout = designer.design(spec);

  std::printf("running LLG simulation: %zu antennas, ~%.0f nm guide, "
              "t_end %.1f ns ...\n",
              layout.sources.size(),
              (layout.right_edge() + 240 * units::nm) / units::nm,
              cfg.t_end / units::ns);

  core::MicromagGateRunner runner(layout, wg, cfg);
  const auto run = runner.run_uniform(pattern);  // calibrates, then runs

  const bool expect = core::majority(pattern);
  io::TextTable tab({"port", "f [GHz]", "decoded", "expected MAJ",
                     "phase [rad]", "amplitude", "margin"});
  for (const auto& ch : run.channels) {
    tab.add_row({"O" + std::to_string(ch.channel + 1),
                 util::format_sig(spec.frequencies[ch.channel] / units::GHz, 3),
                 std::to_string(int(ch.logic)), expect ? "1" : "0",
                 util::format_sig(ch.phase, 3),
                 util::format_sig(ch.amplitude, 3),
                 util::format_sig(ch.margin, 3)});
  }
  std::printf("inputs I1=%d I2=%d I3=%d  ->  MAJ=%d\n%s\n", int(pattern[0]),
              int(pattern[1]), int(pattern[2]), int(expect),
              tab.str().c_str());

  // Dump all port traces.
  {
    std::vector<std::string> header{"t_ns"};
    for (std::size_t i = 1; i <= 8; ++i) header.push_back("O" + std::to_string(i));
    io::CsvWriter csv("results/byte_majority_traces.csv", header);
    for (std::size_t s = 0; s < run.times.size(); ++s) {
      std::vector<double> row{run.times[s] / units::ns};
      for (const auto& trace : run.traces) row.push_back(trace[s]);
      csv.row(row);
    }
  }
  std::printf("port traces  -> results/byte_majority_traces.csv\n");
  std::printf("done: all 8 channels decoded %s.\n",
              expect ? "logic 1" : "logic 0");
  return 0;
}
