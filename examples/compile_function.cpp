// Compile an arbitrary Boolean function to a spin-wave majority cascade
// and evaluate it — in process, or on a remote worker over TCP.
//
//   example_compile_function <truth-column> [--channels N]
//   example_compile_function <truth-column> [--channels N] --connect ENDPOINT
//
// <truth-column> is the function's truth-table column MSB-first (the value
// at assignment 2^k-1 down to 0), e.g. "11101000" for 3-input majority or
// "00011011" for an arbitrary 3-ary function; its length must be a power
// of two between 2 and 16 (1 to 4 inputs).
//
// In-process mode synthesizes the minimal majority chain, lowers it onto
// an N-channel fabric and submits the exhaustive assignment sweep through
// serve::EvaluatorService as a program EvalRequest. With --connect the
// same program ships to a running example_sweep_worker as a wire-v3
// program frame instead (the worker designs, plans and caches the cascade
// on its side). Either way every decoded bit is checked against the truth
// table — the run prints PASS or dies — so the example is also the
// end-to-end smoke CI drives through scripts/net_sweep_smoke.sh.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "compile/lower.h"
#include "compile/synth.h"
#include "compile/truth_table.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "serve/eval_request.h"
#include "serve/layout_hash.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "sweep_common.h"
#include "util/error.h"

namespace {

using namespace std::chrono_literals;

const char* literal_name(const sw::compile::Literal& lit, std::string& buf) {
  using Kind = sw::compile::Literal::Kind;
  switch (lit.kind) {
    case Kind::kConstZero: buf = lit.negated ? "1" : "0"; break;
    case Kind::kInput:
      buf = (lit.negated ? "!x" : "x") + std::to_string(lit.index);
      break;
    case Kind::kNode:
      buf = (lit.negated ? "!g" : "g") + std::to_string(lit.index);
      break;
  }
  return buf.c_str();
}

void print_circuit(const sw::compile::CompiledCircuit& circuit) {
  for (std::size_t g = 0; g < circuit.nodes.size(); ++g) {
    const auto& node = circuit.nodes[g];
    std::string a, b, c;
    std::printf("  g%zu = %sMAJ(%s, %s, %s)\n", g,
                node.invert_output ? "!" : "", literal_name(node.in[0], a),
                literal_name(node.in[1], b), literal_name(node.in[2], c));
  }
}

/// Exhaustive primary matrix: word w puts assignment (w + ch) % 2^k on
/// channel ch, so every channel sweeps every assignment.
std::vector<std::uint8_t> exhaustive_primary(std::size_t k, std::size_t n,
                                             std::size_t num_words) {
  std::vector<std::uint8_t> primary(num_words * n * k);
  for (std::size_t w = 0; w < num_words; ++w) {
    for (std::size_t ch = 0; ch < n; ++ch) {
      const std::size_t a = (w + ch) % (std::size_t{1} << k);
      for (std::size_t i = 0; i < k; ++i) {
        primary[w * n * k + ch * k + i] =
            static_cast<std::uint8_t>((a >> i) & 1);
      }
    }
  }
  return primary;
}

void check_bits(const sw::compile::TruthTable& table, std::size_t k,
                std::size_t n, std::size_t num_words,
                const std::vector<std::uint8_t>& bits) {
  SW_REQUIRE(bits.size() == num_words * n,
             "result has the wrong number of bits");
  for (std::size_t w = 0; w < num_words; ++w) {
    for (std::size_t ch = 0; ch < n; ++ch) {
      const std::size_t a = (w + ch) % (std::size_t{1} << k);
      SW_REQUIRE(bits[w * n + ch] == (table.value(a) ? 1 : 0),
                 "cascade output diverged from the truth table");
    }
  }
}

int run(int argc, char** argv) {
  std::string column;
  std::size_t channels = sweep_example::kChannels;
  std::string connect;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--channels") == 0 && i + 1 < argc) {
      channels = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    } else if (argv[i][0] != '-' && column.empty()) {
      column = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s <truth-column> [--channels N] "
                   "[--connect ENDPOINT]\n",
                   argv[0]);
      return 1;
    }
  }
  if (column.empty()) {
    std::fprintf(stderr, "missing truth-table column (e.g. 11101000)\n");
    return 1;
  }

  const auto table = sw::compile::TruthTable::from_string(column);
  const std::size_t k = table.num_inputs();
  sw::compile::Synthesizer synth;
  const auto circuit = synth.compile(table);
  std::printf("function 0x%llX over %zu input(s): %zu majority gate(s), "
              "depth %zu\n",
              static_cast<unsigned long long>(table.bits()), k,
              circuit.nodes.size(), circuit.depth);
  print_circuit(circuit);

  sw::core::GateSpec base;
  base.num_inputs = 3;
  for (std::size_t i = 1; i <= channels; ++i) {
    base.frequencies.push_back(1e10 * static_cast<double>(i));
  }
  const auto program = sw::compile::lower_to_program(circuit, base);

  // Every channel sweeps every assignment at least once.
  const std::size_t num_words = std::size_t{1} << k;
  const auto primary = exhaustive_primary(k, channels, num_words);

  if (connect.empty()) {
    const auto wg = sweep_example::waveguide();
    const sw::disp::FvmswDispersion model(wg);
    sw::serve::EvaluatorService service(model, wg.material.alpha);
    const auto result =
        service
            .submit(sw::serve::EvalRequest::for_program(program, primary,
                                                        num_words))
            .get();
    check_bits(table, k, channels, num_words, result.bits);
    std::printf("PASS: in-process program (%zu stages, depth %zu) exact on "
                "all %zu words x %zu channels\n",
                result.num_stages, result.depth, num_words, channels);
    return 0;
  }

  auto conn = sw::net::Connection::connect(
      sw::net::Endpoint::parse(connect), 5000ms);
  sw::net::send_message(conn,
                        sw::net::make_frame_message(
                            sw::serve::make_program_request_frame(
                                program, 0, num_words, primary)),
                        5000ms);
  const auto response = sw::net::recv_frame(conn, 30000ms);
  SW_REQUIRE(response.has_value(), "worker closed without a response");
  SW_REQUIRE(response->kind == sw::serve::FrameKind::kResponse &&
                 response->layout_hash == sw::serve::hash_program(program),
             "response does not match the submitted program");
  check_bits(table, k, channels, num_words, response->matrix);
  std::printf("PASS: remote cascade at %s exact on all %zu words x %zu "
              "channels\n",
              connect.c_str(), num_words, channels);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
