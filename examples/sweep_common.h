// Shared fixture for the sharded-sweep example pair (sweep_coordinator +
// sweep_worker).
//
// Both processes construct the SAME dispersion model locally (the paper's
// Fe60Co20B20 50 nm x 1 nm waveguide); only the GateSpec and the packed
// input words travel on the wire. The canonical layout hash in each
// request frame is the contract: the worker re-designs the layout from the
// wire spec against its local model and refuses the shard unless its hash
// matches the coordinator's — proving, across process boundaries, that
// both binaries derived bit-identical geometry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/encoding.h"
#include "core/gate_design.h"
#include "dispersion/waveguide.h"
#include "mag/material.h"
#include "util/error.h"

namespace sweep_example {

/// How the frame pair travels between coordinator and worker. File is the
/// PR 2 flow (request/response files, worker spawned per shard) and stays
/// the default so existing invocations keep working; tcp/unix use the
/// socket transport (persistent workers, straggler re-sharding).
enum class Transport { kFile, kTcp, kUnix };

inline Transport parse_transport(const std::string& name) {
  if (name == "file") return Transport::kFile;
  if (name == "tcp") return Transport::kTcp;
  if (name == "unix") return Transport::kUnix;
  throw sw::util::Error("unknown --transport (want file|tcp|unix): " + name);
}

/// The paper's device: Fe60Co20B20 PMA waveguide, 50 nm x 1 nm.
inline sw::disp::Waveguide waveguide() {
  sw::disp::Waveguide wg;
  wg.material = sw::mag::make_fecob();
  wg.width = 50e-9;
  wg.thickness = 1e-9;
  return wg;
}

inline constexpr std::size_t kChannels = 8;

/// The majority fabric behind the 8-channel parallel AND gate: 3 inputs
/// per channel (a, b, pinned 0) at 10..80 GHz.
inline sw::core::GateSpec gate_spec() {
  sw::core::GateSpec spec;
  spec.num_inputs = 3;
  for (std::size_t i = 1; i <= kChannels; ++i) {
    spec.frequencies.push_back(1e10 * static_cast<double>(i));
  }
  return spec;
}

/// Packed slot count per word: channel * 3 + {0: a, 1: b, 2: pin}.
inline constexpr std::size_t kSlotsPerWord = kChannels * 3;

/// Total words of the exhaustive sweep: every (a, b) operand-byte pair.
inline constexpr std::size_t kSweepWords = std::size_t{1} << (2 * kChannels);

/// The full exhaustive input matrix (kSweepWords x kSlotsPerWord): word v
/// applies operand byte a = low 8 bits of v and b = high 8 bits, with the
/// third input of every channel pinned to 0 (MAJ(a, b, 0) = AND).
inline std::vector<std::uint8_t> and_truth_table_matrix() {
  std::vector<std::uint8_t> matrix(kSweepWords * kSlotsPerWord, 0);
  for (std::size_t v = 0; v < kSweepWords; ++v) {
    const std::size_t a = v & 0xFFu;
    const std::size_t b = v >> kChannels;
    for (std::size_t ch = 0; ch < kChannels; ++ch) {
      matrix[v * kSlotsPerWord + ch * 3 + 0] =
          static_cast<std::uint8_t>((a >> ch) & 1u);
      matrix[v * kSlotsPerWord + ch * 3 + 1] =
          static_cast<std::uint8_t>((b >> ch) & 1u);
      // slot ch * 3 + 2 stays 0: the AND pin.
    }
  }
  return matrix;
}

}  // namespace sweep_example
