// Standalone worker registry for the sharded-sweep serving fleet.
//
//   example_registry --listen tcp:127.0.0.1:7800
//       [--ttl-ms T] [--max-seconds N]
//
// binds a net::RegistryServer and serves register/snapshot traffic until a
// kShutdown message arrives (exit 0) or the optional --max-seconds safety
// net expires (exit 2). Workers started with --registry heartbeat their
// WorkerAdvert here; a coordinator started with --registry discovers them
// through SweepCoordinator::discover instead of a --workers list.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "net/registry.h"
#include "net/socket.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen ENDPOINT [--ttl-ms T] [--max-seconds N]\n",
               argv0);
  std::exit(64);
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen;
  long ttl_ms = 10000;
  long max_seconds = 0;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--listen" && i + 1 < argc) {
        listen = argv[++i];
      } else if (arg == "--ttl-ms" && i + 1 < argc) {
        ttl_ms = std::atol(argv[++i]);
      } else if (arg == "--max-seconds" && i + 1 < argc) {
        max_seconds = std::atol(argv[++i]);
      } else {
        usage(argv[0]);
      }
    }
    if (listen.empty()) usage(argv[0]);

    sw::net::RegistryOptions options;
    options.ttl = std::chrono::milliseconds(ttl_ms);
    sw::net::RegistryServer registry(sw::net::Endpoint::parse(listen),
                                     options);
    std::printf("registry: listening on %s (ttl %ld ms)\n",
                registry.local_endpoint().to_string().c_str(), ttl_ms);
    std::fflush(stdout);

    const bool shut = registry.wait_shutdown(
        std::chrono::milliseconds(max_seconds > 0 ? max_seconds * 1000 : 0));
    const auto adverts = registry.snapshot();
    registry.stop();
    std::printf("registry: %s with %zu live advert(s)\n",
                shut ? "shutdown requested" : "max-seconds safety net hit",
                adverts.size());
    return shut ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "registry: %s\n", e.what());
    return 1;
  }
}
