// Quickstart: design the paper's byte-wide 3-input Majority gate, evaluate
// it on the fast analytic engine, and print the layout, truth table and
// area comparison — the whole public API in ~60 lines of user code.
//
//   $ ./quickstart
#include <cstdio>

#include "core/encoding.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "cost/cost_model.h"
#include "dispersion/fvmsw.h"
#include "io/csv.h"
#include "mag/material.h"
#include "util/strings.h"
#include "util/units.h"
#include "wavesim/wave_engine.h"

using namespace sw;

int main() {
  // 1. The device: Fe60Co20B20 PMA waveguide, 50 nm x 1 nm (paper Sec. IV).
  disp::Waveguide wg;
  wg.material = mag::make_fecob();
  wg.width = 50 * units::nm;
  wg.thickness = 1 * units::nm;

  // 2. Physics: forward-volume spin waves (isotropic in-plane dispersion).
  const disp::FvmswDispersion dispersion(wg);
  std::printf("FMR of the guide: %.2f GHz\n\n",
              dispersion.fmr() / units::GHz);

  // 3. What to build: 8 frequency channels x 3 inputs, one waveguide.
  core::GateSpec spec;
  spec.num_inputs = 3;
  for (int i = 1; i <= 8; ++i) spec.frequencies.push_back(i * 10.0 * units::GHz);

  const core::InlineGateDesigner designer(dispersion);
  const core::GateLayout layout = designer.design(spec);

  io::TextTable lt({"channel", "f [GHz]", "lambda [nm]", "d_i = n*lambda [nm]",
                    "output port [nm]"});
  for (std::size_t i = 0; i < 8; ++i) {
    lt.add_row({std::to_string(i + 1),
                util::format_sig(spec.frequencies[i] / units::GHz, 3),
                util::format_sig(layout.wavelengths[i] / units::nm, 4),
                util::format_sig(layout.spacing[i] / units::nm, 4) + "  (n=" +
                    std::to_string(layout.multiple[i]) + ")",
                util::format_sig(layout.detectors[i].x / units::nm, 4)});
  }
  std::printf("in-line layout, %zu transducers, %.0f nm long:\n%s\n",
              layout.transducer_count(), layout.length() / units::nm,
              lt.str().c_str());

  // 4. Evaluate: all 8 input patterns on all 8 channels simultaneously.
  const wavesim::WaveEngine engine(dispersion, wg.material.alpha);
  const core::DataParallelGate gate(layout, engine);

  io::TextTable tt({"I1 I2 I3", "MAJ", "gate output (all 8 channels)"});
  for (const auto& pattern : core::all_patterns(3)) {
    const auto out = gate.evaluate_uniform(pattern);
    std::string bits;
    for (const auto& r : out) bits += r.logic ? '1' : '0';
    tt.add_row({std::string() + char('0' + pattern[0]) + "  " +
                    char('0' + pattern[1]) + "  " + char('0' + pattern[2]),
                core::majority(pattern) ? "1" : "0", bits});
  }
  std::printf("truth table:\n%s\n", tt.str().c_str());

  // 5. Compare against eight replicated scalar gates (paper Sec. V.B).
  const auto cmp = cost::compare_parallel_vs_scalar(designer, spec, wg.width,
                                                    cost::TransducerModel{});
  std::printf("area: %.4f um^2 (parallel) vs %.4f um^2 (8x scalar) -> %.2fx"
              " reduction\ndelay ratio %.2f, energy ratio %.2f (paper: 4.16x,"
              " 1.0, 1.0)\n",
              cmp.parallel.area / units::um2,
              cmp.scalar_total.area / units::um2, cmp.area_ratio,
              cmp.delay_ratio, cmp.energy_ratio);
  return 0;
}
