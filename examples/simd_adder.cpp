// 8-way SIMD full adder on the majority fabric: three cascaded in-line
// majority gates per bit slice (carry = MAJ(a,b,c); sum = MAJ(!carry,
// MAJ(a,b,!c), c)), with all eight data lanes riding different frequencies
// through the same waveguides. Inversions are free: input complements are
// drive-phase flips, output complements are half-wavelength ports.
//
//   $ ./simd_adder
#include <cstdio>

#include "core/cascade.h"
#include "dispersion/fvmsw.h"
#include "io/csv.h"
#include "mag/material.h"
#include "util/strings.h"
#include "util/units.h"
#include "wavesim/wave_engine.h"

using namespace sw;

namespace {

std::string word_str(const core::Bits& w) {
  std::string s;
  for (std::size_t i = w.size(); i-- > 0;) s += w[i] ? '1' : '0';
  return s;
}

}  // namespace

int main() {
  disp::Waveguide wg;
  wg.material = mag::make_fecob();
  wg.width = 50 * units::nm;
  wg.thickness = 1 * units::nm;
  const disp::FvmswDispersion dispersion(wg);
  const core::InlineGateDesigner designer(dispersion);
  const wavesim::WaveEngine engine(dispersion, wg.material.alpha);

  std::vector<double> freqs;
  for (int i = 1; i <= 8; ++i) freqs.push_back(i * 10.0 * units::GHz);

  core::MajorityCascade cascade(freqs, designer, engine);
  const auto fa = core::build_full_adder(cascade);

  std::printf("full adder: %zu majority gates x %zu channels, total area "
              "%.4f um^2\n\n",
              cascade.num_gates(), cascade.num_channels(),
              cascade.total_area(wg.width) / units::um2);

  // Exhaustive physical verification (8 scalar patterns x 8 channels).
  cascade.verify();
  std::printf("physical == boolean reference for all input patterns on all "
              "channels\n\n");

  // SIMD demonstration: add two 8-bit vectors lane-wise (each lane is one
  // frequency channel; this is a 1-bit add per lane with carry in/out).
  const core::Bits a{1, 0, 1, 1, 0, 0, 1, 0};
  const core::Bits b{1, 1, 0, 1, 0, 1, 0, 0};
  const core::Bits cin{0, 1, 0, 1, 0, 0, 1, 0};

  const auto signals = cascade.evaluate({a, b, cin});
  const auto& sum = signals[fa.sum.id];
  const auto& cout = signals[fa.carry_out.id];

  io::TextTable tab({"lane (f GHz)", "a", "b", "cin", "sum", "cout"});
  for (std::size_t ch = 0; ch < 8; ++ch) {
    tab.add_row({sw::util::format_sig(freqs[ch] / units::GHz, 3),
                 std::to_string(int(a[ch])), std::to_string(int(b[ch])),
                 std::to_string(int(cin[ch])), std::to_string(int(sum[ch])),
                 std::to_string(int(cout[ch]))});
  }
  std::printf("%s\n", tab.str().c_str());
  std::printf("a    = %s\nb    = %s\ncin  = %s\nsum  = %s\ncout = %s\n",
              word_str(a).c_str(), word_str(b).c_str(), word_str(cin).c_str(),
              word_str(sum).c_str(), word_str(cout).c_str());
  return 0;
}
