// Sharded-sweep coordinator: split the exhaustive 2^16-word truth table of
// the 8-channel parallel AND gate across workers, then verify the
// reassembled result bit-for-bit against both the in-process sweep and the
// Boolean AND reference.
//
// File transport (the PR 2 flow, still the default):
//
//   example_sweep_coordinator [--shards N] [--dir PATH] [--worker PATH]
//
// writes request frames to <dir>/shard_<k>.req, spawns the worker binary
// per shard, reads back <dir>/shard_<k>.resp.
//
// Socket transport (persistent workers, straggler re-sharding):
//
//   example_sweep_coordinator --transport=tcp|unix
//       --workers EP1,EP2,…  [--shard-words N] [--deadline-ms D]
//       [--grace-ms G] [--shutdown-workers] [--trace-out FILE]
//   example_sweep_coordinator --transport=tcp|unix
//       --registry ENDPOINT --min-workers N [--discover-ms T] [...]
//
// connects to already-running example_sweep_worker processes (one
// endpoint each), streams word-range shards through net::SweepCoordinator
// — shards in flight past --deadline-ms are duplicated to the fastest
// idle worker, and redundant results are dedup-verified bit-for-bit — and
// optionally shuts the workers down afterwards. With --registry the
// worker list is discovered from an example_registry process instead:
// the coordinator polls until at least --min-workers adverts are live.
//
// --trace-out FILE writes one Chrome trace-event JSON document loadable in
// Perfetto: the coordinator's per-shard spans (assign/send/wait/retire per
// worker track, plus zero-length reshard events) merged with each worker's
// own trace ring (wire decode, admission, plan, kernel, wire encode,
// write-queue spans per request) fetched over kTraceRequest after the
// sweep. With --shutdown-workers the traces are collected first and the
// shutdown sent by the example afterwards, so the dump never races worker
// exit.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "net/sweep_coordinator.h"
#include "obs/trace.h"
#include "serve/layout_hash.h"
#include "serve/wire.h"
#include "sweep_common.h"
#include "util/error.h"
#include "util/strings.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/wave_engine.h"

namespace {

std::string default_worker_path(const char* argv0) {
  std::string path(argv0);
  const auto pos = path.rfind("coordinator");
  if (pos == std::string::npos) return "./example_sweep_worker";
  return path.replace(pos, std::string("coordinator").size(), "worker");
}

struct Args {
  sweep_example::Transport transport = sweep_example::Transport::kFile;
  // file mode
  std::size_t shards = 4;
  std::string dir = "sweep_shards";
  std::string worker;
  // socket mode
  std::vector<std::string> worker_endpoints;
  std::string registry;
  std::size_t min_workers = 1;
  long discover_ms = 10000;
  std::size_t shard_words = 4096;
  long deadline_ms = 2000;
  long grace_ms = 0;
  bool shutdown_workers = false;
  std::string trace_out;
};

/// Run the sweep over the file transport: one worker process per shard,
/// frames on disk — exactly the PR 2 smoke.
std::vector<std::uint8_t> run_file_sweep(const Args& args,
                                         const sw::core::GateLayout& layout,
                                         const std::vector<std::uint8_t>& matrix) {
  using namespace sweep_example;
  const std::uint64_t hash = sw::serve::hash_layout(layout);

  std::filesystem::create_directories(args.dir);
  const std::size_t shards = args.shards == 0 ? 1 : args.shards;
  const std::size_t per_shard = (kSweepWords + shards - 1) / shards;

  struct Shard {
    std::size_t offset = 0;
    std::size_t words = 0;
    std::string req, resp;
  };
  std::vector<Shard> plan;
  for (std::size_t k = 0, offset = 0; k < shards && offset < kSweepWords;
       ++k, offset += per_shard) {
    Shard s;
    s.offset = offset;
    s.words = std::min(per_shard, kSweepWords - offset);
    s.req = args.dir + "/shard_" + std::to_string(k) + ".req";
    s.resp = args.dir + "/shard_" + std::to_string(k) + ".resp";
    std::vector<std::uint8_t> rows(
        matrix.begin() + static_cast<std::ptrdiff_t>(s.offset * kSlotsPerWord),
        matrix.begin() + static_cast<std::ptrdiff_t>(
                             (s.offset + s.words) * kSlotsPerWord));
    sw::serve::write_frame_file(
        s.req, sw::serve::make_request_frame(layout, s.offset, s.words,
                                             std::move(rows)));
    plan.push_back(std::move(s));
  }

  for (const auto& s : plan) {
    const std::string cmd =
        "\"" + args.worker + "\" \"" + s.req + "\" \"" + s.resp + "\"";
    std::printf("spawning: %s\n", cmd.c_str());
    const int rc = std::system(cmd.c_str());
    SW_REQUIRE(rc == 0, "worker process failed on shard " + s.req);
  }

  std::vector<std::uint8_t> merged(kSweepWords * kChannels, 0);
  for (const auto& s : plan) {
    const auto resp = sw::serve::read_frame_file(s.resp);
    SW_REQUIRE(resp.kind == sw::serve::FrameKind::kResponse,
               "expected a response frame");
    SW_REQUIRE(resp.layout_hash == hash,
               "response layout hash does not match the request");
    SW_REQUIRE(resp.word_offset == s.offset && resp.num_words == s.words &&
                   resp.num_cols == kChannels,
               "response shard shape mismatch");
    std::copy(resp.matrix.begin(), resp.matrix.end(),
              merged.begin() +
                  static_cast<std::ptrdiff_t>(s.offset * kChannels));
  }
  std::printf("file transport: %zu shard(s) done\n", plan.size());
  return merged;
}

/// Run the sweep over the socket transport via net::SweepCoordinator.
std::vector<std::uint8_t> run_socket_sweep(
    const Args& args, const sw::core::GateLayout& layout,
    const std::vector<std::uint8_t>& matrix) {
  using namespace sweep_example;
  std::vector<sw::net::Endpoint> endpoints;
  if (!args.registry.empty()) {
    endpoints = sw::net::SweepCoordinator::discover(
        sw::net::Endpoint::parse(args.registry), args.min_workers,
        std::chrono::milliseconds(args.discover_ms));
    std::printf("discovered %zu worker(s) from registry %s\n",
                endpoints.size(), args.registry.c_str());
    for (const auto& ep : endpoints) {
      std::printf("  %s\n", ep.to_string().c_str());
    }
  } else {
    for (const auto& text : args.worker_endpoints) {
      endpoints.push_back(sw::net::Endpoint::parse(text));
    }
  }
  sw::net::SweepOptions options;
  options.shard_words = args.shard_words;
  options.straggler_deadline = std::chrono::milliseconds(args.deadline_ms);
  options.duplicate_grace = std::chrono::milliseconds(args.grace_ms);
  options.shutdown_workers = args.shutdown_workers;
  const bool tracing = !args.trace_out.empty();
  // Tracing defers the shutdown to this function: worker trace rings must
  // be fetched while the workers still serve.
  if (tracing) options.shutdown_workers = false;
  sw::obs::TraceRecorder recorder(8192);
  if (tracing) options.recorder = &recorder;
  sw::net::SweepCoordinator coordinator(std::move(endpoints), options);

  sw::net::SweepReport report;
  auto merged = coordinator.run(layout, matrix, kSweepWords, &report);
  if (tracing) {
    std::vector<std::string> documents;
    documents.push_back(
        sw::obs::trace_json(recorder.snapshot(), "sweep-coordinator"));
    for (const auto& ep : coordinator.workers()) {
      try {
        documents.push_back(sw::net::fetch_text(
            ep, sw::net::MessageKind::kTraceRequest,
            std::chrono::milliseconds(5000)));
      } catch (const sw::util::Error& e) {
        std::fprintf(stderr, "trace fetch from %s failed: %s\n",
                     ep.to_string().c_str(), e.what());
      }
    }
    const std::string merged_json = sw::obs::merge_trace_json(documents);
    std::FILE* f = std::fopen(args.trace_out.c_str(), "w");
    SW_REQUIRE(f != nullptr, "cannot open --trace-out file " + args.trace_out);
    std::fwrite(merged_json.data(), 1, merged_json.size(), f);
    std::fclose(f);
    std::printf("trace: %zu document(s) merged into %s\n", documents.size(),
                args.trace_out.c_str());
    if (args.shutdown_workers) {
      for (const auto& ep : coordinator.workers()) {
        try {
          auto conn = sw::net::Connection::connect(
              ep, std::chrono::milliseconds(5000));
          sw::net::Message m;
          m.kind = sw::net::MessageKind::kShutdown;
          sw::net::send_message(conn, m, std::chrono::milliseconds(5000));
        } catch (const sw::util::Error&) {
          // Best-effort, like the coordinator's own shutdown path.
        }
      }
    }
  }
  std::printf("socket transport: %zu shard(s), %zu re-shard(s), "
              "%zu duplicate result(s), %zu overload retr%s, "
              "%zu dead worker(s)\n",
              report.shards, report.resharded, report.duplicate_results,
              report.overload_retries,
              report.overload_retries == 1 ? "y" : "ies",
              report.dead_workers);
  for (std::size_t w = 0; w < report.shards_per_worker.size(); ++w) {
    std::printf("  worker %zu (%s): %zu shard(s)\n", w,
                coordinator.workers()[w].to_string().c_str(),
                report.shards_per_worker[w]);
  }
  return merged;
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--shards N] [--dir PATH] [--worker PATH]\n"
      "       %s --transport=tcp|unix --workers EP1,EP2,… "
      "[--shard-words N] [--deadline-ms D] [--grace-ms G] "
      "[--shutdown-workers] [--trace-out FILE]\n"
      "       … --registry ENDPOINT [--min-workers N] [--discover-ms T] "
      "instead of --workers\n",
      argv0, argv0);
  std::exit(64);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--transport=", 0) == 0) {
        args.transport = sweep_example::parse_transport(arg.substr(12));
      } else if (arg == "--shards" && i + 1 < argc) {
        args.shards = static_cast<std::size_t>(std::atol(argv[++i]));
      } else if (arg == "--dir" && i + 1 < argc) {
        args.dir = argv[++i];
      } else if (arg == "--worker" && i + 1 < argc) {
        args.worker = argv[++i];
      } else if (arg == "--workers" && i + 1 < argc) {
        args.worker_endpoints = sw::util::split(argv[++i], ',');
      } else if (arg == "--registry" && i + 1 < argc) {
        args.registry = argv[++i];
      } else if (arg == "--min-workers" && i + 1 < argc) {
        args.min_workers = static_cast<std::size_t>(std::atol(argv[++i]));
      } else if (arg == "--discover-ms" && i + 1 < argc) {
        args.discover_ms = std::atol(argv[++i]);
      } else if (arg == "--shard-words" && i + 1 < argc) {
        args.shard_words = static_cast<std::size_t>(std::atol(argv[++i]));
      } else if (arg == "--deadline-ms" && i + 1 < argc) {
        args.deadline_ms = std::atol(argv[++i]);
      } else if (arg == "--grace-ms" && i + 1 < argc) {
        args.grace_ms = std::atol(argv[++i]);
      } else if (arg == "--shutdown-workers") {
        args.shutdown_workers = true;
      } else if (arg == "--trace-out" && i + 1 < argc) {
        args.trace_out = argv[++i];
      } else {
        usage(argv[0]);
      }
    }
    if (args.worker.empty()) args.worker = default_worker_path(argv[0]);
    const bool socket_mode =
        args.transport != sweep_example::Transport::kFile;
    if (socket_mode && args.worker_endpoints.empty() &&
        args.registry.empty()) {
      usage(argv[0]);
    }

    using namespace sweep_example;
    const auto wg = waveguide();
    const sw::disp::FvmswDispersion model(wg);
    const sw::core::InlineGateDesigner designer(model);
    const auto layout = designer.design(gate_spec());
    const std::uint64_t hash = sw::serve::hash_layout(layout);

    std::printf("=== sharded exhaustive sweep: 8-channel parallel AND ===\n");
    std::printf("layout hash %016llx, %zu words x %zu slots\n",
                static_cast<unsigned long long>(hash), kSweepWords,
                kSlotsPerWord);

    const auto matrix = and_truth_table_matrix();

    // Local ground truth: the same sweep through one in-process evaluator.
    const sw::wavesim::WaveEngine engine(model, wg.material.alpha);
    const sw::core::DataParallelGate gate(layout, engine);
    const sw::wavesim::BatchEvaluator evaluator(gate);
    const auto expected = evaluator.evaluate_bits(kSweepWords, matrix);

    const auto merged = socket_mode ? run_socket_sweep(args, layout, matrix)
                                    : run_file_sweep(args, layout, matrix);

    SW_REQUIRE(merged == expected,
               "cross-process sweep diverged from the in-process sweep");
    // And against the Boolean reference: channel ch of word v must read
    // AND(a_ch, b_ch).
    for (std::size_t v = 0; v < kSweepWords; ++v) {
      const std::size_t a = v & 0xFFu;
      const std::size_t b = v >> kChannels;
      for (std::size_t ch = 0; ch < kChannels; ++ch) {
        const std::uint8_t want =
            static_cast<std::uint8_t>(((a >> ch) & 1u) & ((b >> ch) & 1u));
        SW_REQUIRE(merged[v * kChannels + ch] == want,
                   "sweep bit disagrees with Boolean AND reference");
      }
    }

    std::printf("PASS: reproduced the exhaustive %zu-word truth table "
                "bit-for-bit (%zu output bits verified)\n",
                kSweepWords, merged.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "coordinator: %s\n", e.what());
    return 1;
  }
}
