// Sharded-sweep coordinator: split the exhaustive 2^16-word truth table of
// the 8-channel parallel AND gate across worker processes via the wire
// format, then verify the reassembled result bit-for-bit.
//
//   example_sweep_coordinator [--shards N] [--dir PATH] [--worker PATH]
//
// For each shard the coordinator writes a request frame (GateSpec + layout
// hash + bit-packed input rows) to <dir>/shard_<k>.req, launches the worker
// binary on it as a separate process, and reads back <dir>/shard_<k>.resp.
// The merged 65536 x 8 output matrix must match the coordinator's own
// in-process BatchEvaluator sweep exactly, and every decoded bit is also
// checked against the Boolean AND reference — a full cross-process
// reproduction of the paper's exhaustive truth table.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "serve/layout_hash.h"
#include "serve/wire.h"
#include "sweep_common.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/wave_engine.h"

namespace {

std::string default_worker_path(const char* argv0) {
  std::string path(argv0);
  const auto pos = path.rfind("coordinator");
  if (pos == std::string::npos) return "./example_sweep_worker";
  return path.replace(pos, std::string("coordinator").size(), "worker");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t shards = 4;
  std::string dir = "sweep_shards";
  std::string worker;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--worker" && i + 1 < argc) {
      worker = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards N] [--dir PATH] [--worker PATH]\n",
                   argv[0]);
      return 64;
    }
  }
  if (worker.empty()) worker = default_worker_path(argv[0]);
  if (shards == 0) shards = 1;

  try {
    using namespace sweep_example;

    const auto wg = waveguide();
    const sw::disp::FvmswDispersion model(wg);
    const sw::core::InlineGateDesigner designer(model);
    const auto layout = designer.design(gate_spec());
    const std::uint64_t hash = sw::serve::hash_layout(layout);

    std::printf("=== sharded exhaustive sweep: 8-channel parallel AND ===\n");
    std::printf("layout hash %016llx, %zu words x %zu slots, %zu shard(s)\n",
                static_cast<unsigned long long>(hash), kSweepWords,
                kSlotsPerWord, shards);

    const auto matrix = and_truth_table_matrix();

    // Local ground truth: the same sweep through one in-process evaluator.
    const sw::wavesim::WaveEngine engine(model, wg.material.alpha);
    const sw::core::DataParallelGate gate(layout, engine);
    const sw::wavesim::BatchEvaluator evaluator(gate);
    const auto expected = evaluator.evaluate_bits(kSweepWords, matrix);

    std::filesystem::create_directories(dir);
    const std::size_t per_shard = (kSweepWords + shards - 1) / shards;

    struct Shard {
      std::size_t offset = 0;
      std::size_t words = 0;
      std::string req, resp;
    };
    std::vector<Shard> plan;
    for (std::size_t k = 0, offset = 0; k < shards && offset < kSweepWords;
         ++k, offset += per_shard) {
      Shard s;
      s.offset = offset;
      s.words = std::min(per_shard, kSweepWords - offset);
      s.req = dir + "/shard_" + std::to_string(k) + ".req";
      s.resp = dir + "/shard_" + std::to_string(k) + ".resp";
      std::vector<std::uint8_t> rows(
          matrix.begin() +
              static_cast<std::ptrdiff_t>(s.offset * kSlotsPerWord),
          matrix.begin() + static_cast<std::ptrdiff_t>(
                               (s.offset + s.words) * kSlotsPerWord));
      sw::serve::write_frame_file(
          s.req, sw::serve::make_request_frame(layout, s.offset, s.words,
                                               std::move(rows)));
      plan.push_back(std::move(s));
    }

    for (const auto& s : plan) {
      const std::string cmd =
          "\"" + worker + "\" \"" + s.req + "\" \"" + s.resp + "\"";
      std::printf("spawning: %s\n", cmd.c_str());
      const int rc = std::system(cmd.c_str());
      SW_REQUIRE(rc == 0, "worker process failed on shard " + s.req);
    }

    std::vector<std::uint8_t> merged(kSweepWords * kChannels, 0);
    for (const auto& s : plan) {
      const auto resp = sw::serve::read_frame_file(s.resp);
      SW_REQUIRE(resp.kind == sw::serve::FrameKind::kResponse,
                 "expected a response frame");
      SW_REQUIRE(resp.layout_hash == hash,
                 "response layout hash does not match the request");
      SW_REQUIRE(resp.word_offset == s.offset && resp.num_words == s.words &&
                     resp.num_cols == kChannels,
                 "response shard shape mismatch");
      std::copy(resp.matrix.begin(), resp.matrix.end(),
                merged.begin() +
                    static_cast<std::ptrdiff_t>(s.offset * kChannels));
    }

    SW_REQUIRE(merged == expected,
               "cross-process sweep diverged from the in-process sweep");
    // And against the Boolean reference: channel ch of word v must read
    // AND(a_ch, b_ch).
    for (std::size_t v = 0; v < kSweepWords; ++v) {
      const std::size_t a = v & 0xFFu;
      const std::size_t b = v >> kChannels;
      for (std::size_t ch = 0; ch < kChannels; ++ch) {
        const std::uint8_t want =
            static_cast<std::uint8_t>(((a >> ch) & 1u) & ((b >> ch) & 1u));
        SW_REQUIRE(merged[v * kChannels + ch] == want,
                   "sweep bit disagrees with Boolean AND reference");
      }
    }

    std::printf("PASS: %zu shard(s) reproduced the exhaustive %zu-word "
                "truth table bit-for-bit (%zu output bits verified)\n",
                plan.size(), kSweepWords, merged.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "coordinator: %s\n", e.what());
    return 1;
  }
}
