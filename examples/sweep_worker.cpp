// Sharded-sweep worker process: evaluate one request frame, write one
// response frame.
//
//   example_sweep_worker <request-file> <response-file>
//
// The worker reads the request, re-designs the gate layout from the wire
// GateSpec against its locally constructed dispersion model, and verifies
// the canonical layout hash against the coordinator's before evaluating a
// single word — geometry drift between binaries is a hard error, not a
// silent wrong answer. The packed input rows are then pushed through a
// BatchEvaluator and the decoded bits answered via the wire format.
#include <cstdio>
#include <exception>
#include <string>

#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "serve/layout_hash.h"
#include "serve/wire.h"
#include "sweep_common.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/wave_engine.h"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s <request-file> <response-file>\n", argv[0]);
    return 64;
  }
  try {
    const auto request = sw::serve::read_frame_file(argv[1]);
    SW_REQUIRE(request.kind == sw::serve::FrameKind::kRequest && request.spec,
               "worker expects a request frame carrying a GateSpec");

    const auto wg = sweep_example::waveguide();
    const sw::disp::FvmswDispersion model(wg);
    const sw::core::InlineGateDesigner designer(model);
    const auto layout = designer.design(*request.spec);

    const std::uint64_t local_hash = sw::serve::hash_layout(layout);
    SW_REQUIRE(local_hash == request.layout_hash,
               "layout hash mismatch: worker geometry differs from "
               "coordinator geometry");

    const sw::wavesim::WaveEngine engine(model, wg.material.alpha);
    const sw::core::DataParallelGate gate(layout, engine);
    const sw::wavesim::BatchEvaluator evaluator(gate);
    SW_REQUIRE(request.num_cols == evaluator.slot_count(),
               "request slot count does not match the designed layout");

    auto bits = evaluator.evaluate_bits(
        static_cast<std::size_t>(request.num_words), request.matrix);
    const std::uint64_t channels = layout.spec.frequencies.size();
    sw::serve::write_frame_file(
        argv[2],
        sw::serve::make_response_frame(request, channels, std::move(bits)));

    std::printf(
        "worker: %llu words @ offset %llu, layout %016llx, kernel %s — "
        "done\n",
        static_cast<unsigned long long>(request.num_words),
        static_cast<unsigned long long>(request.word_offset),
        static_cast<unsigned long long>(local_hash),
        std::string(sw::wavesim::active_kernel_name()).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: %s\n", e.what());
    return 1;
  }
}
