// Sharded-sweep worker: evaluate request frames, answer response frames.
//
// File transport (the PR 2 flow, still the default):
//
//   example_sweep_worker <request-file> <response-file>
//   example_sweep_worker --transport=file <request-file> <response-file>
//
// reads one request, evaluates it, writes one response, exits.
//
// Socket transport (persistent worker process):
//
//   example_sweep_worker --transport=tcp  --listen tcp:127.0.0.1:7801
//   example_sweep_worker --transport=unix --listen unix:/tmp/sweep_w1.sock
//   [--max-seconds N] [--registry ENDPOINT] [--words-per-second W]
//
// binds a net::EvalServer over a local EvaluatorService and serves shard
// requests until a coordinator sends the shutdown message (exit 0) or the
// optional --max-seconds safety net expires (exit 2, so a harness can tell
// an orphaned worker from a clean shutdown). With --registry the server
// heartbeats a WorkerAdvert (endpoint, kernel, precision, the optional
// --words-per-second throughput hint) to an example_registry process so a
// coordinator can *discover* this worker instead of being handed its
// endpoint on the command line.
//
// Either way the worker re-designs the gate layout from the wire GateSpec
// against its locally constructed dispersion model and verifies the
// canonical layout hash against the coordinator's before evaluating a
// single word — geometry drift between binaries is a hard error, not a
// silent wrong answer.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/fvmsw.h"
#include "net/eval_server.h"
#include "net/socket.h"
#include "serve/layout_hash.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "sweep_common.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/kernels/kernel.h"
#include "wavesim/wave_engine.h"

namespace {

int run_file_mode(const std::string& request_path,
                  const std::string& response_path) {
  const auto request = sw::serve::read_frame_file(request_path);
  SW_REQUIRE(request.kind == sw::serve::FrameKind::kRequest && request.spec,
             "worker expects a request frame carrying a GateSpec");

  const auto wg = sweep_example::waveguide();
  const sw::disp::FvmswDispersion model(wg);
  const sw::core::InlineGateDesigner designer(model);
  const auto layout = designer.design(*request.spec);

  const std::uint64_t local_hash = sw::serve::hash_layout(layout);
  SW_REQUIRE(local_hash == request.layout_hash,
             "layout hash mismatch: worker geometry differs from "
             "coordinator geometry");

  const sw::wavesim::WaveEngine engine(model, wg.material.alpha);
  const sw::core::DataParallelGate gate(layout, engine);
  const sw::wavesim::BatchEvaluator evaluator(gate);
  SW_REQUIRE(request.num_cols == evaluator.slot_count(),
             "request slot count does not match the designed layout");

  auto bits = evaluator.evaluate_bits(
      static_cast<std::size_t>(request.num_words), request.matrix);
  const std::uint64_t channels = layout.spec.frequencies.size();
  sw::serve::write_frame_file(
      response_path,
      sw::serve::make_response_frame(request, channels, std::move(bits)));

  std::printf(
      "worker: %llu words @ offset %llu, layout %016llx, kernel %s — "
      "done\n",
      static_cast<unsigned long long>(request.num_words),
      static_cast<unsigned long long>(request.word_offset),
      static_cast<unsigned long long>(local_hash),
      std::string(sw::wavesim::active_kernel_name()).c_str());
  return 0;
}

int run_socket_mode(const sw::net::Endpoint& listen, long max_seconds,
                    const std::string& registry, double words_per_second) {
  const auto wg = sweep_example::waveguide();
  const sw::disp::FvmswDispersion model(wg);
  const sw::core::InlineGateDesigner designer(model);

  sw::serve::EvaluatorService service(model, wg.material.alpha);
  sw::net::EvalServerOptions options;
  if (!registry.empty()) {
    options.registry = sw::net::Endpoint::parse(registry);
    options.advertised_words_per_second = words_per_second;
  }
  sw::net::EvalServer server(
      service,
      [&designer](const sw::core::GateSpec& spec) {
        return designer.design(spec);
      },
      listen, options);

  std::printf("worker: listening on %s (kernel %s%s%s)\n",
              server.local_endpoint().to_string().c_str(),
              std::string(sw::wavesim::active_kernel_name()).c_str(),
              registry.empty() ? "" : ", registry ",
              registry.empty() ? "" : registry.c_str());
  std::fflush(stdout);

  const bool shut = server.wait_shutdown(
      std::chrono::milliseconds(max_seconds > 0 ? max_seconds * 1000 : 0));
  const auto counters = server.counters();
  server.stop();
  std::printf("worker: %s after %llu frame(s), %llu error reply(ies)\n",
              shut ? "shutdown requested" : "max-seconds safety net hit",
              static_cast<unsigned long long>(counters.frames_received),
              static_cast<unsigned long long>(counters.errors_sent));
  return shut ? 0 : 2;
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <request-file> <response-file>\n"
               "       %s --transport=file <request-file> <response-file>\n"
               "       %s --transport=tcp|unix --listen ENDPOINT "
               "[--max-seconds N] [--registry ENDPOINT] "
               "[--words-per-second W]\n",
               argv0, argv0, argv0);
  std::exit(64);
}

}  // namespace

int main(int argc, char** argv) {
  using sweep_example::Transport;
  Transport transport = Transport::kFile;
  std::string listen;
  std::string registry;
  double words_per_second = 0.0;
  long max_seconds = 0;
  std::vector<std::string> positional;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--transport=", 0) == 0) {
        transport = sweep_example::parse_transport(arg.substr(12));
      } else if (arg == "--listen" && i + 1 < argc) {
        listen = argv[++i];
      } else if (arg == "--registry" && i + 1 < argc) {
        registry = argv[++i];
      } else if (arg == "--words-per-second" && i + 1 < argc) {
        words_per_second = std::atof(argv[++i]);
      } else if (arg == "--max-seconds" && i + 1 < argc) {
        max_seconds = std::atol(argv[++i]);
      } else if (!arg.empty() && arg[0] == '-') {
        usage(argv[0]);
      } else {
        positional.push_back(arg);
      }
    }
    if (transport == Transport::kFile) {
      if (positional.size() != 2) usage(argv[0]);
      return run_file_mode(positional[0], positional[1]);
    }
    if (!positional.empty() || listen.empty()) usage(argv[0]);
    return run_socket_mode(sw::net::Endpoint::parse(listen), max_seconds,
                           registry, words_per_second);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: %s\n", e.what());
    return 1;
  }
}
