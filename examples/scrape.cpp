// One-shot observability scrape for a running EvalServer (or registry).
//
//   example_scrape ENDPOINT            # kMetricsRequest -> Prometheus text
//   example_scrape --trace ENDPOINT    # kTraceRequest   -> trace JSON
//   example_scrape [--trace] ENDPOINT --out FILE
//
// Prints the reply to stdout (or writes FILE) — the `curl` of this wire
// protocol, for smoke scripts and humans debugging a live worker. Metrics
// scrapes work against an EvalServer and a RegistryServer alike; trace
// scrapes are EvalServer-only (the registry rejects them, and this tool
// surfaces that as the typed error it is).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "net/protocol.h"
#include "net/socket.h"
#include "util/error.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trace] ENDPOINT [--out FILE] [--timeout-ms T]\n"
               "  ENDPOINT  tcp:HOST:PORT or unix:PATH\n",
               argv0);
  std::exit(64);
}

}  // namespace

int main(int argc, char** argv) {
  bool trace = false;
  std::string endpoint;
  std::string out_path;
  long timeout_ms = 5000;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--trace") {
        trace = true;
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--timeout-ms" && i + 1 < argc) {
        timeout_ms = std::atol(argv[++i]);
      } else if (!arg.empty() && arg[0] == '-') {
        usage(argv[0]);
      } else if (endpoint.empty()) {
        endpoint = arg;
      } else {
        usage(argv[0]);
      }
    }
    if (endpoint.empty()) usage(argv[0]);

    const std::string text = sw::net::fetch_text(
        sw::net::Endpoint::parse(endpoint),
        trace ? sw::net::MessageKind::kTraceRequest
              : sw::net::MessageKind::kMetricsRequest,
        std::chrono::milliseconds(timeout_ms));
    if (out_path.empty()) {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else {
      std::FILE* f = std::fopen(out_path.c_str(), "w");
      SW_REQUIRE(f != nullptr, "cannot open --out file " + out_path);
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "wrote %zu bytes to %s\n", text.size(),
                   out_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scrape: %s\n", e.what());
    return 1;
  }
}
