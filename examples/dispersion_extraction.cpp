// Dispersion extraction: the classic micromagnetic methodology check.
// Excite single-frequency waves in the LLG solver, fit the spatial phase
// profile, and compare the measured wavelength against the analytic
// dispersion model used by the gate designer. Agreement within ~1% is what
// makes d_i = n_i * lambda_i placements land on interference maxima.
//
//   $ ./dispersion_extraction
#include <cstdio>
#include <vector>

#include "dispersion/local_1d.h"
#include "io/csv.h"
#include "mag/anisotropy.h"
#include "mag/antenna.h"
#include "mag/demag_factors.h"
#include "mag/demag_local.h"
#include "mag/exchange.h"
#include "mag/simulation.h"
#include "util/constants.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/units.h"

using namespace sw;
using util::kPi;
using util::kTwoPi;

namespace {

/// Measured wavelength of a steady wave at frequency f in the 1-D solver.
double measure_wavelength(const disp::Waveguide& wg,
                          const disp::LocalDemag1DDispersion& model,
                          double f, double cell) {
  const std::size_t nx = 400;
  const mag::Mesh mesh(nx, 1, 1, cell, wg.width, wg.thickness);
  mag::IntegratorOptions opts;
  opts.stepper = mag::Stepper::kRk4;
  opts.dt = 1.5e-13;
  mag::Simulation sim(mesh, wg.material, opts);
  sim.add_term<mag::ExchangeField>(mesh, wg.material);
  sim.add_term<mag::UniaxialAnisotropyField>(wg.material);
  sim.add_term<mag::DemagLocalField>(
      wg.material, mag::demag_factors_waveguide(wg.width, wg.thickness));
  auto& ant = sim.add_term<mag::AntennaField>(mesh);
  mag::Antenna a;
  a.x_center = 100 * units::nm;
  a.width = 10 * units::nm;
  a.frequency = f;
  a.amplitude = 2e3;
  a.ramp = 1.0 / f;
  ant.add(a);
  sim.add_absorbing_ends(60 * units::nm, 0.5);

  const double vg = model.group_velocity(model.k_from_frequency(f));
  sim.run_until((500 * units::nm) / vg + 10.0 / f);

  // Unwrapped spatial phase fit over the propagation window.
  const double r = model.ellipticity(model.k_from_frequency(f));
  const auto& m = sim.magnetization();
  std::vector<double> xs, phis;
  double prev = 0.0, accum = 0.0;
  for (std::size_t i = mesh.cell_at_x(160 * units::nm);
       i <= mesh.cell_at_x(560 * units::nm); ++i) {
    const double phi = std::atan2(m[i].y / r, m[i].x);
    if (!xs.empty()) {
      double d = phi - prev;
      while (d > kPi) d -= kTwoPi;
      while (d < -kPi) d += kTwoPi;
      accum += d;
    }
    prev = phi;
    xs.push_back((static_cast<double>(i) + 0.5) * cell);
    phis.push_back(accum);
  }
  const auto fit = util::fit_line(xs, phis);
  return kTwoPi / std::abs(fit.slope);
}

}  // namespace

int main() {
  disp::Waveguide wg;
  wg.material = mag::make_fecob();
  wg.width = 50 * units::nm;
  wg.thickness = 1 * units::nm;
  const double cell = 2 * units::nm;

  auto model = disp::LocalDemag1DDispersion::from_waveguide(wg);
  model.set_discretization(cell);

  io::TextTable tab({"f [GHz]", "lambda model [nm]", "lambda solver [nm]",
                     "error [%]"});
  io::CsvWriter csv("results/dispersion_extraction.csv",
                    {"f_GHz", "lambda_model_nm", "lambda_solver_nm",
                     "error_pct"});
  for (const double f : {15e9, 25e9, 40e9, 60e9}) {
    const double lam_model = model.wavelength(f);
    std::printf("measuring lambda at %.0f GHz ...\n", f / units::GHz);
    const double lam_meas = measure_wavelength(wg, model, f, cell);
    const double err = 100.0 * (lam_meas - lam_model) / lam_model;
    tab.add_row({util::format_sig(f / units::GHz, 3),
                 util::format_sig(lam_model / units::nm, 4),
                 util::format_sig(lam_meas / units::nm, 4),
                 util::format_sig(err, 2)});
    csv.row({f / units::GHz, lam_model / units::nm, lam_meas / units::nm,
             err});
  }
  std::printf("\n%s\n-> results/dispersion_extraction.csv\n",
              tab.str().c_str());
  return 0;
}
