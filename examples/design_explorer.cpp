// Design explorer: load a gate description from a MIF-lite file, design the
// in-line layout, verify it functionally and report its costs. This is the
// "tool" face of the library: change the file, not the code.
//
//   $ ./design_explorer byte_majority.mif
#include <cstdio>

#include "core/gate.h"
#include "core/gate_design.h"
#include "core/scalability.h"
#include "cost/cost_model.h"
#include "dispersion/fvmsw.h"
#include "io/csv.h"
#include "io/miflite.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/units.h"
#include "wavesim/wave_engine.h"

using namespace sw;

int main(int argc, char** argv) {
  const std::string path = (argc > 1) ? argv[1] : "byte_majority.mif";

  io::MifDocument doc;
  try {
    doc = io::MifDocument::parse_file(path);
  } catch (const util::Error& e) {
    std::fprintf(stderr, "cannot load %s:\n%s\n", path.c_str(), e.what());
    return 1;
  }

  const auto wg = io::parse_waveguide(doc);
  const auto spec = io::parse_gate_spec(doc);
  std::printf("loaded %s: material %s, guide %.0f x %.0f nm, %zu inputs, "
              "%zu channels\n\n",
              path.c_str(), wg.material.name.c_str(), wg.width / units::nm,
              wg.thickness / units::nm, spec.num_inputs,
              spec.frequencies.size());

  const disp::FvmswDispersion dispersion(wg);
  const core::InlineGateDesigner designer(dispersion);
  const auto layout = designer.design(spec);

  io::TextTable lt({"element", "channel", "x [nm]", "note"});
  for (const auto& s : layout.sources) {
    lt.add_row({"I" + std::to_string(s.channel + 1) + "," +
                    std::to_string(s.input + 1),
                std::to_string(s.channel + 1),
                util::format_sig(s.x / units::nm, 4), "source"});
  }
  for (const auto& d : layout.detectors) {
    lt.add_row({"O" + std::to_string(d.channel + 1),
                std::to_string(d.channel + 1),
                util::format_sig(d.x / units::nm, 4),
                d.inverted ? "detector (inverted)" : "detector"});
  }
  std::printf("placement (%zu transducers, %.0f nm):\n%s\n",
              layout.transducer_count(), layout.length() / units::nm,
              lt.str().c_str());

  // Functional verification on the analytic engine.
  const wavesim::WaveEngine engine(dispersion, wg.material.alpha);
  const core::DataParallelGate gate(layout, engine);
  if (spec.num_inputs % 2 == 1) {
    const auto rep = core::margin_report(gate);
    std::printf("functional check: %s (worst margin %.3f, channel %zu)\n\n",
                rep.all_correct ? "MAJ truth table holds on all channels"
                                : "FAILED",
                rep.min_margin, rep.worst_channel);
  }

  // Cost summary.
  const auto cmp = cost::compare_parallel_vs_scalar(designer, spec, wg.width,
                                                    cost::TransducerModel{});
  std::printf("cost: %.4f um^2; scalar-equivalent %.4f um^2 (%.2fx); delay "
              "%.2f ns; energy %.0f aJ\n",
              cmp.parallel.area / units::um2,
              cmp.scalar_total.area / units::um2, cmp.area_ratio,
              cmp.parallel.delay / units::ns,
              cmp.parallel.energy / units::aJ);
  return 0;
}
