#include "core/gate.h"

#include <algorithm>
#include <cmath>

#include "util/constants.h"
#include "util/error.h"
#include "wavesim/batch_evaluator.h"

namespace sw::core {

DataParallelGate::DataParallelGate(GateLayout layout,
                                   const sw::wavesim::WaveEngine& engine)
    : layout_(std::move(layout)), engine_(&engine) {
  layout_.validate();
}

std::vector<sw::wavesim::WaveSource> DataParallelGate::drive_list(
    const std::vector<Bits>& inputs) const {
  const std::size_t n = layout_.spec.frequencies.size();
  const std::size_t m = layout_.spec.num_inputs;
  SW_REQUIRE(inputs.size() == n, "need one bit vector per channel");
  for (const auto& bits : inputs) {
    SW_REQUIRE(bits.size() == m, "each channel needs m bits");
  }
  std::vector<sw::wavesim::WaveSource> out;
  out.reserve(layout_.sources.size());
  for (const auto& s : layout_.sources) {
    sw::wavesim::WaveSource w;
    w.x = s.x;
    w.frequency = layout_.spec.frequencies[s.channel];
    w.phase = phase_of_bit(inputs[s.channel][s.input] != 0);
    w.amplitude = s.amplitude;
    out.push_back(w);
  }
  return out;
}

std::vector<ChannelResult> DataParallelGate::evaluate(
    const std::vector<Bits>& inputs) const {
  const auto sources = drive_list(inputs);
  std::vector<ChannelResult> results;
  results.reserve(layout_.detectors.size());
  for (const auto& det : layout_.detectors) {
    const double f = layout_.spec.frequencies[det.channel];
    const auto phasor = engine_->steady_phasor(sources, det.x, f);
    const auto decision = decide_phase(phasor, kPhaseZero);
    ChannelResult r;
    r.channel = det.channel;
    r.logic = decision.logic;
    r.phase = decision.phase;
    r.amplitude = decision.amplitude;
    r.margin = decision.margin;
    results.push_back(r);
  }
  return results;
}

std::vector<ChannelResult> DataParallelGate::evaluate_uniform(
    const Bits& pattern) const {
  const std::vector<Bits> inputs(layout_.spec.frequencies.size(), pattern);
  return evaluate(inputs);
}

namespace {
sw::wavesim::BatchEvaluator one_shot_evaluator(const DataParallelGate& gate,
                                               std::size_t num_threads,
                                               std::size_t num_words) {
  sw::wavesim::BatchOptions opts;
  opts.num_threads = sw::wavesim::clamp_batch_threads(num_threads, num_words);
  return sw::wavesim::BatchEvaluator(gate, opts);
}
}  // namespace

std::vector<std::vector<ChannelResult>> DataParallelGate::evaluate_batch(
    const std::vector<std::vector<Bits>>& batch,
    std::size_t num_threads) const {
  return one_shot_evaluator(*this, num_threads, batch.size()).evaluate(batch);
}

std::vector<std::vector<ChannelResult>>
DataParallelGate::evaluate_batch_uniform(const std::vector<Bits>& patterns,
                                         std::size_t num_threads) const {
  return one_shot_evaluator(*this, num_threads, patterns.size())
      .evaluate_uniform(patterns);
}

std::uint8_t DataParallelGate::expected_majority(std::size_t channel,
                                                 const Bits& pattern) const {
  SW_REQUIRE(channel < layout_.detectors.size(), "channel out of range");
  const bool maj = majority(pattern);
  const bool inv = layout_.detectors[channel].inverted;
  return static_cast<std::uint8_t>(maj != inv);
}

double DataParallelGate::verify_majority_truth_table() const {
  const std::size_t m = layout_.spec.num_inputs;
  SW_REQUIRE(m % 2 == 1, "majority verification needs odd input count");
  double worst = 1.0;
  for (const auto& pattern : all_patterns(m)) {
    const auto results = evaluate_uniform(pattern);
    for (const auto& r : results) {
      const auto want = expected_majority(r.channel, pattern);
      SW_REQUIRE(r.logic == want, "majority truth table violated");
      worst = std::min(worst, r.margin);
    }
  }
  return worst;
}

}  // namespace sw::core
