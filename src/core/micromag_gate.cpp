#include "core/micromag_gate.h"

#include <cmath>

#include "dispersion/local_1d.h"
#include "mag/anisotropy.h"
#include "mag/antenna.h"
#include "mag/demag_factors.h"
#include "mag/demag_local.h"
#include "mag/demag_newell.h"
#include "mag/exchange.h"
#include "mag/thermal.h"
#include "util/constants.h"
#include "util/error.h"

namespace sw::core {

using sw::util::kPi;

MicromagGateRunner::MicromagGateRunner(GateLayout layout,
                                       sw::disp::Waveguide wg,
                                       MicromagConfig cfg)
    : layout_(std::move(layout)), wg_(wg), cfg_(cfg) {
  layout_.validate();
  wg_.material.validate();
  SW_REQUIRE(cfg_.cell_size > 0.0, "cell size must be positive");
  SW_REQUIRE(cfg_.t_end > 0.0 && cfg_.sample_dt > 0.0, "bad time settings");
  // Sampling must resolve the fastest channel.
  for (double f : layout_.spec.frequencies) {
    SW_REQUIRE(cfg_.sample_dt < 0.5 / f,
               "sample_dt violates Nyquist for a channel frequency");
  }
  guide_length_ =
      cfg_.lead_in + layout_.right_edge() + cfg_.lead_out;
  // Cross-section demag factors, propagation axis treated as infinite.
  demag_factors_ = sw::mag::demag_factors_waveguide(wg_.width, wg_.thickness);
}

void MicromagGateRunner::ensure_calibration() {
  if (!cal_phase_.empty()) return;
  const std::size_t n = layout_.spec.frequencies.size();
  const std::vector<Bits> zeros(n, Bits(layout_.spec.num_inputs, 0));
  MicromagRun zero_run = run_raw(zeros);
  cal_phase_.resize(n);
  cal_amp_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cal_phase_[i] = zero_run.channels[i].phase;
    cal_amp_[i] = zero_run.channels[i].amplitude;
    SW_REQUIRE(cal_amp_[i] > 0.0, "calibration produced zero amplitude");
  }
}

MicromagRun MicromagGateRunner::run(const std::vector<Bits>& inputs) {
  ensure_calibration();
  MicromagRun out = run_raw(inputs);
  // Re-decode against the calibrated reference (plus pi for inverted
  // ports, which physically read the complemented value).
  for (std::size_t i = 0; i < out.channels.size(); ++i) {
    const bool inv = layout_.detectors[i].inverted;
    const double ref = cal_phase_[i] + (inv ? kPi : 0.0);
    const auto phasor = std::polar(out.channels[i].amplitude,
                                   out.channels[i].phase);
    const auto d = decide_phase(phasor, ref);
    out.channels[i].logic = d.logic;
    out.channels[i].margin = d.margin;
  }
  return out;
}

MicromagRun MicromagGateRunner::run_uniform(const Bits& pattern) {
  const std::vector<Bits> inputs(layout_.spec.frequencies.size(), pattern);
  return run(inputs);
}

MicromagRun MicromagGateRunner::run_raw(const std::vector<Bits>& inputs) {
  const std::size_t n = layout_.spec.frequencies.size();
  const std::size_t m = layout_.spec.num_inputs;
  SW_REQUIRE(inputs.size() == n, "need one bit vector per channel");

  const std::size_t nx = static_cast<std::size_t>(
      std::ceil(guide_length_ / cfg_.cell_size));
  const sw::mag::Mesh mesh(nx, 1, 1, cfg_.cell_size, wg_.width,
                           wg_.thickness);
  sw::mag::Simulation sim(mesh, wg_.material, cfg_.integrator);

  sim.add_term<sw::mag::ExchangeField>(mesh, wg_.material);
  sim.add_term<sw::mag::UniaxialAnisotropyField>(wg_.material);
  if (cfg_.use_newell_demag) {
    sim.add_term<sw::mag::DemagNewellField>(mesh, wg_.material);
  } else {
    sim.add_term<sw::mag::DemagLocalField>(wg_.material, demag_factors_);
  }
  if (cfg_.temperature > 0.0) {
    SW_REQUIRE(cfg_.integrator.stepper != sw::mag::Stepper::kRkf54,
               "finite temperature requires a fixed-step integrator");
    sim.add_term<sw::mag::ThermalField>(mesh, wg_.material, cfg_.temperature,
                                        cfg_.integrator.dt,
                                        cfg_.thermal_seed);
  }

  auto& antennas = sim.add_term<sw::mag::AntennaField>(mesh);
  for (const auto& s : layout_.sources) {
    const double f = layout_.spec.frequencies[s.channel];
    sw::mag::Antenna a;
    a.x_center = to_mesh_x(s.x);
    a.width = layout_.spec.transducer_width;
    a.frequency = f;
    a.phase = phase_of_bit(inputs[s.channel][s.input] != 0);
    a.amplitude = cfg_.drive_field * s.amplitude;
    a.direction = {1, 0, 0};
    a.ramp = 1.0 / f;
    antennas.add(a);
  }

  for (std::size_t i = 0; i < n; ++i) {
    sim.add_probe("O" + std::to_string(i + 1),
                  to_mesh_x(layout_.detectors[i].x),
                  layout_.spec.transducer_width, cfg_.sample_dt);
  }

  sim.add_absorbing_ends(cfg_.absorber_width, cfg_.absorber_alpha);

  // No relaxation pass: the uniform +z state is an exact equilibrium of the
  // chain under both demag models (the off-diagonal Newell components are
  // odd in the x offset and cancel, leaving the field z-parallel).
  sim.run_until(cfg_.t_end);

  // Decode: steady-state window after the slowest group arrival.
  sw::disp::LocalDemag1DDispersion model(wg_.material, demag_factors_);
  model.set_discretization(cfg_.cell_size);

  MicromagRun out;
  out.sample_rate = 1.0 / cfg_.sample_dt;
  out.times = sim.probes().front().times();

  double t_ready = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = layout_.spec.frequencies[i];
    const double vg =
        model.group_velocity(model.k_from_frequency(f));
    for (std::size_t k = 0; k < m; ++k) {
      const double d = std::abs(layout_.detectors[i].x -
                                layout_.source(i, k).x);
      t_ready = std::max(t_ready, d / vg + cfg_.settle_periods / f);
    }
  }
  SW_REQUIRE(t_ready < cfg_.t_end,
             "t_end too short for waves to settle at the detectors");

  const std::size_t samples = out.times.size();
  out.window_begin = std::min(
      samples - 2,
      static_cast<std::size_t>(std::ceil(t_ready / cfg_.sample_dt)));

  out.channels.resize(n);
  out.traces.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& probe = sim.probes()[i];
    out.traces[i] = probe.component('x');
    const double f = layout_.spec.frequencies[i];
    const auto phasor = extract_phasor(out.traces[i], out.window_begin,
                                       samples, out.sample_rate, f);
    ChannelResult r;
    r.channel = i;
    r.phase = std::arg(phasor);
    r.amplitude = std::abs(phasor);
    r.logic = 0;   // decoded later against calibration
    r.margin = 0.0;
    out.channels[i] = r;
  }
  return out;
}

}  // namespace sw::core
