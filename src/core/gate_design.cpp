#include "core/gate_design.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/constants.h"
#include "util/error.h"

namespace sw::core {

using sw::util::kTwoPi;

const PlacedSource& GateLayout::source(std::size_t channel,
                                       std::size_t input) const {
  for (const auto& s : sources) {
    if (s.channel == channel && s.input == input) return s;
  }
  SW_REQUIRE(false, "no such source");
}

double GateLayout::left_edge() const {
  SW_REQUIRE(!sources.empty(), "empty layout");
  double lo = std::numeric_limits<double>::infinity();
  for (const auto& s : sources) lo = std::min(lo, s.x);
  return lo - 0.5 * spec.transducer_width;
}

double GateLayout::right_edge() const {
  SW_REQUIRE(!detectors.empty(), "layout has no detectors");
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : sources) hi = std::max(hi, s.x);
  for (const auto& d : detectors) hi = std::max(hi, d.x);
  return hi + 0.5 * spec.transducer_width;
}

double GateLayout::length() const { return right_edge() - left_edge(); }

void GateLayout::validate() const {
  const std::size_t n = spec.frequencies.size();
  const std::size_t m = spec.num_inputs;
  SW_REQUIRE(sources.size() == n * m, "source count mismatch");
  SW_REQUIRE(detectors.size() == n, "detector count mismatch");
  SW_REQUIRE(wavelengths.size() == n && spacing.size() == n &&
                 multiple.size() == n,
             "per-channel arrays size mismatch");

  constexpr double kTol = 1e-9;  // relative position tolerance

  for (std::size_t i = 0; i < n; ++i) {
    SW_REQUIRE(multiple[i] >= 1, "spacing multiple must be >= 1");
    SW_REQUIRE(std::abs(spacing[i] - multiple[i] * wavelengths[i]) <
                   kTol * wavelengths[i],
               "spacing is not an integer multiple of the wavelength");
    // Same-channel sources form an exact lattice.
    const double x0 = source(i, 0).x;
    for (std::size_t k = 1; k < m; ++k) {
      const double expect = x0 + static_cast<double>(k) * spacing[i];
      SW_REQUIRE(std::abs(source(i, k).x - expect) < kTol * spacing[i],
                 "source lattice broken");
    }
    // Detector sits an exact (half-)integer number of wavelengths past the
    // last source of its channel.
    const double last = x0 + static_cast<double>(m - 1) * spacing[i];
    const double delta = detectors[i].x - last;
    SW_REQUIRE(delta > 0.0, "detector not beyond its last source");
    const double cycles = delta / wavelengths[i];
    const double frac = cycles - std::floor(cycles);
    if (detectors[i].inverted) {
      SW_REQUIRE(std::abs(frac - 0.5) < 1e-6,
                 "inverted detector not at a half-integer multiple");
    } else {
      SW_REQUIRE(frac < 1e-6 || frac > 1.0 - 1e-6,
                 "direct detector not at an integer multiple");
    }
  }

  // Global pitch constraint over every transducer.
  std::vector<double> xs;
  for (const auto& s : sources) xs.push_back(s.x);
  for (const auto& d : detectors) xs.push_back(d.x);
  std::sort(xs.begin(), xs.end());
  for (std::size_t i = 1; i < xs.size(); ++i) {
    SW_REQUIRE(xs[i] - xs[i - 1] >= spec.pitch() * (1.0 - 1e-9),
               "transducer pitch violated");
  }
  SW_REQUIRE(left_edge() >= -kTol, "layout extends past the origin");
}

GateLayout InlineGateDesigner::design(const GateSpec& spec) const {
  const std::size_t n = spec.frequencies.size();
  const std::size_t m = spec.num_inputs;
  SW_REQUIRE(n >= 1, "need at least one frequency channel");
  SW_REQUIRE(m >= 1, "need at least one input");
  SW_REQUIRE(spec.transducer_width > 0.0 && spec.min_gap > 0.0,
             "bad transducer geometry");
  SW_REQUIRE(spec.invert_output.empty() || spec.invert_output.size() == n,
             "invert_output must be empty or one flag per channel");
  for (std::size_t i = 0; i < n; ++i) {
    SW_REQUIRE(spec.frequencies[i] > 0.0, "frequencies must be positive");
    for (std::size_t j = i + 1; j < n; ++j) {
      SW_REQUIRE(std::abs(spec.frequencies[i] - spec.frequencies[j]) >
                     1e-3 * spec.frequencies[i],
                 "channel frequencies must be distinct");
    }
  }

  GateLayout out;
  out.spec = spec;
  const double pitch = spec.pitch();

  // Wavelengths and same-channel spacings d_i = n_i * lambda_i. Between two
  // consecutive same-channel sources sit one source of every other channel,
  // so d_i must clear n+1 transducer pitches (an exact fit d_i == n*pitch
  // admits no feasible placement); a caller-supplied floor can raise it.
  out.wavelengths.resize(n);
  out.multiple.resize(n);
  out.spacing.resize(n);
  const double d_min = std::max(static_cast<double>(n + 1) * pitch,
                                spec.min_same_channel_spacing);
  std::vector<int> min_mult(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.wavelengths[i] = model_->wavelength(spec.frequencies[i]);
    min_mult[i] =
        std::max(1, static_cast<int>(
                        std::ceil(d_min / out.wavelengths[i] - 1e-9)));
  }

  // Sequential exact placement. Offsets are free reals — only the
  // *relative* spacing within a channel carries phase meaning — so each
  // channel's lattice is slid right to the first offset clearing every
  // already-placed source by at least one pitch. A source at p forbids
  // offsets in (p - k*d_i - pitch, p - k*d_i + pitch) for lattice element k;
  // the smallest admissible offset is found in one sweep over the sorted
  // forbidden intervals (complete: a feasible offset always exists beyond
  // the last interval). Per channel, a few candidate multiples above the
  // minimum are tried and the one whose lattice ends leftmost wins — larger
  // d_i sometimes interleaves better than the minimal one.
  const auto first_free_offset = [&](const std::vector<double>& placed,
                                     double lo, double d) {
    std::vector<std::pair<double, double>> forbidden;
    forbidden.reserve(placed.size() * m);
    for (double p : placed) {
      for (std::size_t k = 0; k < m; ++k) {
        const double c = p - static_cast<double>(k) * d;
        forbidden.emplace_back(c - pitch, c + pitch);
      }
    }
    std::sort(forbidden.begin(), forbidden.end());
    double x = lo;
    for (const auto& [a, b] : forbidden) {
      if (x > a + pitch * 1e-12 && x < b - pitch * 1e-12) x = b;
    }
    return x;
  };

  std::vector<double> offset(n);
  std::vector<double> placed;
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = (i == 0) ? 0.5 * spec.transducer_width
                               : offset[i - 1] + pitch;
    const int tries = std::max(0, spec.multiple_search);
    double best_end = std::numeric_limits<double>::infinity();
    for (int extra = 0; extra <= tries; ++extra) {
      const int mult = min_mult[i] + extra;
      const double d = mult * out.wavelengths[i];
      const double x = first_free_offset(placed, lo, d);
      const double end = x + static_cast<double>(m - 1) * d;
      if (end < best_end - 1e-15) {
        best_end = end;
        offset[i] = x;
        out.multiple[i] = mult;
        out.spacing[i] = d;
      }
    }
    for (std::size_t k = 0; k < m; ++k) {
      placed.push_back(offset[i] + static_cast<double>(k) * out.spacing[i]);
    }
  }

  // Emit sources.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < m; ++k) {
      PlacedSource s;
      s.channel = i;
      s.input = k;
      s.x = offset[i] + static_cast<double>(k) * out.spacing[i];
      out.sources.push_back(s);
    }
  }

  // Detectors: for channel i, an exact (half-)integer number of wavelengths
  // past its last source, beyond every source by one pitch, and clearing
  // every previously placed detector by one pitch. The smallest admissible
  // (half-)integer multiple is found by stepping q one wavelength at a time
  // (terminates: the placed set is finite).
  double floor_x = 0.0;
  for (const auto& s : out.sources) floor_x = std::max(floor_x, s.x);
  floor_x += pitch;
  std::vector<double> placed_det;
  for (std::size_t i = 0; i < n; ++i) {
    const bool inv =
        !spec.invert_output.empty() && spec.invert_output[i] != 0;
    const double last =
        offset[i] + static_cast<double>(m - 1) * out.spacing[i];
    const double lambda = out.wavelengths[i];
    double q;
    if (inv) {
      q = std::ceil((floor_x - last) / lambda - 0.5 - 1e-12) + 0.5;
      q = std::max(q, 0.5);
    } else {
      q = std::ceil((floor_x - last) / lambda - 1e-12);
      q = std::max(q, 1.0);
    }
    double x = last + q * lambda;
    const auto clears = [&](double cand) {
      for (double p : placed_det) {
        if (std::abs(cand - p) < pitch * (1.0 - 1e-12)) return false;
      }
      return true;
    };
    int guard = 0;
    while (!clears(x)) {
      q += 1.0;
      x = last + q * lambda;
      SW_ASSERT(++guard < 100000, "detector placement runaway");
    }
    PlacedDetector det;
    det.channel = i;
    det.inverted = inv;
    det.x = x;
    out.detectors.push_back(det);
    placed_det.push_back(x);
  }

  out.validate();
  return out;
}

}  // namespace sw::core
