// Micromagnetic ground-truth runner for in-line gates: builds a 1-D
// waveguide LLG simulation (exchange + PMA + local cross-section demag +
// antennas + absorbing ends) from a GateLayout, runs it, and decodes the
// per-channel outputs from the detector probes — the equivalent of the
// paper's OOMMF validation step.
#pragma once

#include <optional>
#include <vector>

#include "core/detector.h"
#include "core/encoding.h"
#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/waveguide.h"
#include "mag/integrator.h"
#include "mag/simulation.h"

namespace sw::core {

/// Knobs of the reduced micromagnetic experiment.
struct MicromagConfig {
  double cell_size = 2e-9;       ///< mesh cell along x [m]
  double drive_field = 2.0e3;    ///< antenna peak field [A/m], linear regime
  double lead_in = 120e-9;       ///< guide before the first transducer [m]
  double lead_out = 120e-9;      ///< guide after the last transducer [m]
  double absorber_width = 80e-9; ///< graded-damping region at both ends [m]
  double absorber_alpha = 0.5;   ///< damping at the guide walls
  double t_end = 2.5e-9;         ///< simulated duration [s]
  double sample_dt = 1.0e-12;    ///< probe sampling period [s]
  double settle_periods = 6.0;   ///< extra settle after slowest arrival
  bool use_newell_demag = false; ///< full dipolar convolution instead of the
                                 ///< local cross-section tensor
  double temperature = 0.0;      ///< [K]; > 0 adds the Langevin field
  std::uint64_t thermal_seed = 0x5917A5EBu;  ///< reproducible noise
  sw::mag::IntegratorOptions integrator{
      .stepper = sw::mag::Stepper::kRk4,
      .dt = 1.5e-13,
  };
};

/// Decoded result of one micromagnetic run.
struct MicromagRun {
  std::vector<ChannelResult> channels;      ///< decoded outputs
  std::vector<std::vector<double>> traces;  ///< per-channel mx(t)/Ms at port
  std::vector<double> times;                ///< sample times [s]
  double sample_rate = 0.0;                 ///< probe rate [Hz]
  std::size_t window_begin = 0;             ///< detection window start index
};

class MicromagGateRunner {
 public:
  /// `wg` supplies the cross-section (width, thickness) and material; its
  /// demag factors must match the dispersion model used to design `layout`
  /// for the spacings to be meaningful.
  MicromagGateRunner(GateLayout layout, sw::disp::Waveguide wg,
                     MicromagConfig cfg = {});

  /// Run one input assignment (inputs[channel] holds m bits). The first
  /// call also runs the all-zero calibration to fix per-channel reference
  /// phases (transduction and residual dispersion offsets).
  MicromagRun run(const std::vector<Bits>& inputs);

  /// Run with the same pattern on every channel.
  MicromagRun run_uniform(const Bits& pattern);

  /// Calibration phases (one per channel); empty before the first run.
  const std::vector<double>& calibration_phases() const { return cal_phase_; }

  const GateLayout& layout() const { return layout_; }
  const MicromagConfig& config() const { return cfg_; }

  /// Total mesh length [m] (layout + leads).
  double guide_length() const { return guide_length_; }

  /// Map a layout coordinate to a mesh coordinate.
  double to_mesh_x(double layout_x) const { return layout_x + cfg_.lead_in; }

 private:
  MicromagRun run_raw(const std::vector<Bits>& inputs);
  void ensure_calibration();

  GateLayout layout_;
  sw::disp::Waveguide wg_;
  MicromagConfig cfg_;
  double guide_length_ = 0.0;
  sw::mag::Vec3 demag_factors_;
  std::vector<double> cal_phase_;   ///< per-channel reference phases
  std::vector<double> cal_amp_;     ///< per-channel single-wave amplitudes
};

}  // namespace sw::core
