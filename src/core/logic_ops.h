// Derived Boolean operations on the majority fabric.
//
// A 3-input majority gate with one input pinned to a constant realises
// AND / OR, and the in-line structure's half-wavelength output placement
// complements for free:
//
//   AND(a, b)  = MAJ(a, b, 0)          NAND(a, b) = !MAJ(a, b, 0)
//   OR(a, b)   = MAJ(a, b, 1)          NOR(a, b)  = !MAJ(a, b, 1)
//   NOT(a)     = inverted buffer (single source, half-integer port)
//
// This is the standard majority-logic synthesis trick the spin-wave
// literature leans on (Khitun & Wang 2011); here it is a thin, tested layer
// over DataParallelGate so every derived gate inherits the n-channel data
// parallelism.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gate.h"
#include "core/gate_design.h"
#include "wavesim/wave_engine.h"

namespace sw::core {

enum class BooleanOp : std::uint8_t {
  kAnd,
  kOr,
  kNand,
  kNor,
  kBuffer,  ///< 1-input pass-through
  kNot,     ///< 1-input complement (inverted output port)
};

const char* boolean_op_name(BooleanOp op);

/// Reference semantics of the op (for tests and verification).
bool boolean_op_eval(BooleanOp op, bool a, bool b);

/// An n-channel data-parallel gate computing `op` on every channel.
/// Built as a majority gate with a pinned third input where needed and an
/// inverted output port for the complementing variants.
class ParallelLogicGate {
 public:
  /// Design the gate for the given channel frequencies.
  ParallelLogicGate(BooleanOp op, std::vector<double> frequencies,
                    const InlineGateDesigner& designer,
                    const sw::wavesim::WaveEngine& engine);

  BooleanOp op() const { return op_; }
  const GateLayout& layout() const { return gate_->layout(); }

  /// The underlying majority fabric. Long-lived callers with repeated
  /// batches should build a sw::wavesim::BatchEvaluator over this once
  /// (input slots per channel: 0 = a, 1 = b for binary ops, last = the
  /// pinned constant) instead of paying evaluate_batch's per-call
  /// precompute.
  const DataParallelGate& gate() const { return *gate_; }

  /// Data inputs per channel: 2 bits for binary ops, 1 for buffer/not.
  std::size_t data_inputs() const { return data_inputs_; }

  /// Evaluate with per-channel operand words a and b (b ignored for unary
  /// ops). Sizes must equal the channel count.
  std::vector<std::uint8_t> evaluate(const Bits& a, const Bits& b) const;

  /// Pack per-word operand pairs into the flat num_words x slot_count bit
  /// matrix of gate()'s slot layout (slot 0 = a, slot 1 = b for binary
  /// ops, last slot = the pinned constant): the input a long-lived
  /// sw::wavesim::BatchEvaluator over gate() — or a serve::EvalRequest —
  /// evaluates. b_words may be empty for unary ops.
  std::vector<std::uint8_t> pack_batch(const std::vector<Bits>& a_words,
                                       const std::vector<Bits>& b_words) const;

  /// \deprecated Batched evaluation: word w is the operand pair
  /// (a_words[w], b_words[w]); b_words may be empty for unary ops. Output
  /// words match a per-word `evaluate` loop bit-for-bit, but every call
  /// rebuilds the underlying BatchEvaluator — hold one over gate() (slot
  /// packing documented there) or submit through
  /// sw::serve::EvaluatorService instead.
  [[deprecated(
      "hold a sw::wavesim::BatchEvaluator over gate() (or submit an "
      "EvalRequest to serve::EvaluatorService) instead of the per-call "
      "plan rebuild")]]
  std::vector<std::vector<std::uint8_t>> evaluate_batch(
      const std::vector<Bits>& a_words, const std::vector<Bits>& b_words,
      std::size_t num_threads = 0) const;

  /// Exhaustive check over all operand combinations on every channel;
  /// throws on any mismatch with boolean_op_eval.
  void verify() const;

 private:
  BooleanOp op_;
  std::size_t data_inputs_ = 2;
  std::uint8_t pinned_value_ = 0;  ///< constant third input (binary ops)
  bool has_pin_ = false;
  std::unique_ptr<DataParallelGate> gate_;
};

}  // namespace sw::core
