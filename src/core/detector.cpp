#include "core/detector.h"

#include <cmath>
#include <vector>

#include "fft/goertzel.h"
#include "util/constants.h"
#include "util/error.h"
#include "util/stats.h"

namespace sw::core {

using sw::util::kPi;

PhaseDecision decide_phase(std::complex<double> phasor,
                           double reference_phase) {
  PhaseDecision d;
  d.amplitude = std::abs(phasor);
  d.phase = std::arg(phasor);
  const double dist = sw::util::angle_distance(d.phase, reference_phase);
  d.logic = dist > kPi / 2.0 ? 1 : 0;
  d.margin = std::abs(dist - kPi / 2.0) / (kPi / 2.0);
  return d;
}

AmplitudeDecision decide_amplitude(double amplitude,
                                   double reference_amplitude,
                                   double threshold_frac) {
  SW_REQUIRE(reference_amplitude > 0.0, "reference amplitude must be > 0");
  SW_REQUIRE(threshold_frac > 0.0 && threshold_frac < 1.0,
             "threshold fraction must be in (0, 1)");
  AmplitudeDecision d;
  d.amplitude = amplitude;
  const double threshold = threshold_frac * reference_amplitude;
  d.logic = amplitude < threshold ? 1 : 0;
  d.margin = std::abs(amplitude - threshold) / threshold;
  return d;
}

std::complex<double> extract_phasor(std::span<const double> signal,
                                    std::size_t i_begin, std::size_t i_end,
                                    double sample_rate, double frequency) {
  SW_REQUIRE(i_begin < i_end && i_end <= signal.size(),
             "bad extraction window");
  const std::span<const double> window =
      signal.subspan(i_begin, i_end - i_begin);
  const auto ph = sw::fft::goertzel(window, sample_rate, frequency);
  // Goertzel references the window start t_b = i_begin/fs: the estimate is
  // x(t) = A cos(2 pi f (t - t_b) + phi_w). Rotate to the absolute t = 0
  // convention phi_abs = phi_w - 2 pi f t_b so different windows compare.
  const double shift = sw::util::kTwoPi * frequency *
                       static_cast<double>(i_begin) / sample_rate;
  const std::complex<double> rot(std::cos(shift), -std::sin(shift));
  return std::polar(ph.amplitude, ph.phase) * rot;
}

}  // namespace sw::core
