// In-line multi-frequency gate layout synthesis — the paper's core proposal
// (Fig. 2): all m*n transducers on one straight waveguide, same-frequency
// source spacing an integer multiple of that frequency's wavelength, output
// ports at integer (direct) or half-integer (inverted) multiples past the
// last source of their frequency.
#pragma once

#include <cstdint>
#include <vector>

#include "dispersion/model.h"

namespace sw::core {

/// What to build: m inputs processed in parallel on n frequency channels.
struct GateSpec {
  std::size_t num_inputs = 3;         ///< m, inputs per channel
  std::vector<double> frequencies;    ///< channel frequencies [Hz], distinct
  double transducer_width = 10e-9;    ///< ME cell footprint along x [m]
  double min_gap = 1e-9;              ///< min edge-to-edge transducer gap [m]
  std::vector<std::uint8_t> invert_output;  ///< per channel; empty = direct

  /// Extra floor on every same-channel spacing d_i [m]. Used to build the
  /// scalar reference gates with exactly the spacings of a parallel design
  /// so that delay figures stay comparable (Section V.B convention).
  double min_same_channel_spacing = 0.0;

  /// How many candidate multiples beyond the minimum the designer tries per
  /// channel when compacting the layout (0 = always the minimum multiple).
  int multiple_search = 3;

  /// Centre-to-centre pitch implied by the transducer geometry.
  double pitch() const { return transducer_width + min_gap; }

  /// Field-wise equality (wire-format round trips, cache-key checks).
  bool operator==(const GateSpec&) const = default;
};

/// A placed input transducer.
struct PlacedSource {
  std::size_t channel = 0;  ///< frequency index
  std::size_t input = 0;    ///< input index within the channel (0 = first)
  double x = 0.0;           ///< centre position [m]
  double amplitude = 1.0;   ///< relative drive level (damping compensation)

  bool operator==(const PlacedSource&) const = default;
};

/// A placed output transducer.
struct PlacedDetector {
  std::size_t channel = 0;
  double x = 0.0;
  bool inverted = false;  ///< true: half-integer placement, reads NOT(f)

  bool operator==(const PlacedDetector&) const = default;
};

/// Complete physical layout of one in-line gate.
struct GateLayout {
  GateSpec spec;
  std::vector<double> wavelengths;   ///< lambda_i per channel [m]
  std::vector<int> multiple;         ///< n_i: d_i = n_i * lambda_i
  std::vector<double> spacing;       ///< d_i per channel [m]
  std::vector<PlacedSource> sources;     ///< size m*n
  std::vector<PlacedDetector> detectors; ///< size n

  /// Source lookup (throws if absent).
  const PlacedSource& source(std::size_t channel, std::size_t input) const;

  /// Leftmost transducer edge [m] (>= 0 by construction).
  double left_edge() const;

  /// Rightmost transducer edge [m].
  double right_edge() const;

  /// Device length: rightmost minus leftmost transducer edge.
  double length() const;

  /// Total transducer count (sources + detectors).
  std::size_t transducer_count() const {
    return sources.size() + detectors.size();
  }

  /// Verify every layout invariant (spacings are exact wavelength multiples,
  /// pitch respected, detectors beyond all sources); throws on violation.
  void validate() const;

  /// Field-wise equality over the full geometry — the collision-safe
  /// comparison behind sw::serve plan-cache keys.
  bool operator==(const GateLayout&) const = default;
};

/// Synthesises in-line layouts from a dispersion model.
class InlineGateDesigner {
 public:
  explicit InlineGateDesigner(const sw::disp::DispersionModel& model)
      : model_(&model) {}

  /// Design a layout for `spec`. Throws if a frequency is below the guide's
  /// FMR or if placement cannot be made feasible.
  GateLayout design(const GateSpec& spec) const;

  const sw::disp::DispersionModel& model() const { return *model_; }

 private:
  const sw::disp::DispersionModel* model_;
};

}  // namespace sw::core
