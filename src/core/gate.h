// DataParallelGate: functional evaluation of an in-line multi-frequency
// gate on the analytic wave engine. This is the fast model used for design
// exploration, property tests and the scalability study; the micromagnetic
// runner (micromag_gate.h) is the ground-truth counterpart.
#pragma once

#include <vector>

#include "core/detector.h"
#include "core/encoding.h"
#include "core/gate_design.h"
#include "wavesim/wave_engine.h"

namespace sw::core {

/// Decoded output of one frequency channel.
struct ChannelResult {
  std::size_t channel = 0;
  std::uint8_t logic = 0;   ///< decoded output bit (inversion included)
  double phase = 0.0;       ///< absolute detected phase [rad]
  double amplitude = 0.0;   ///< detected amplitude [arb]
  double margin = 0.0;      ///< phase decision margin in [0, 1]
};

class DataParallelGate {
 public:
  /// The engine must outlive the gate.
  DataParallelGate(GateLayout layout, const sw::wavesim::WaveEngine& engine);

  const GateLayout& layout() const { return layout_; }
  const sw::wavesim::WaveEngine& engine() const { return *engine_; }

  /// Evaluate the gate: `inputs[channel]` holds the m bits applied to that
  /// channel's sources (inputs.size() == #channels, each of size m).
  /// Decoding uses the ideal fixed transmit reference (phase 0), so an
  /// inverted detector physically reads the complemented value.
  std::vector<ChannelResult> evaluate(
      const std::vector<Bits>& inputs) const;

  /// Convenience: apply the same m-bit pattern to every channel.
  std::vector<ChannelResult> evaluate_uniform(const Bits& pattern) const;

  /// \deprecated One-shot batched evaluation that rebuilds the SoA
  /// EvalPlan on every call. Hold a sw::wavesim::BatchEvaluator over the
  /// gate (or submit through sw::serve::EvaluatorService, which caches
  /// plans across targets) instead; results are identical bit-for-bit.
  [[deprecated(
      "hold a sw::wavesim::BatchEvaluator (or submit an EvalRequest to "
      "serve::EvaluatorService) instead of the per-call plan rebuild")]]
  std::vector<std::vector<ChannelResult>> evaluate_batch(
      const std::vector<std::vector<Bits>>& batch,
      std::size_t num_threads = 0) const;

  /// \deprecated Batched uniform evaluation; same per-call plan rebuild as
  /// evaluate_batch. Use BatchEvaluator::evaluate_uniform.
  [[deprecated(
      "hold a sw::wavesim::BatchEvaluator and call evaluate_uniform")]]
  std::vector<std::vector<ChannelResult>> evaluate_batch_uniform(
      const std::vector<Bits>& patterns, std::size_t num_threads = 0) const;

  /// Expected (reference Boolean) output of a channel for the given bits:
  /// MAJ for odd m, complemented when the channel's detector is inverted.
  std::uint8_t expected_majority(std::size_t channel,
                                 const Bits& pattern) const;

  /// Exhaustively verify every channel against MAJ over all 2^m uniform
  /// patterns; returns the worst margin seen (negative never happens —
  /// throws on a logic mismatch instead).
  double verify_majority_truth_table() const;

  /// Wave sources (drive list) corresponding to an input assignment; used
  /// by the micromagnetic bridge and the benches.
  std::vector<sw::wavesim::WaveSource> drive_list(
      const std::vector<Bits>& inputs) const;

 private:
  GateLayout layout_;
  const sw::wavesim::WaveEngine* engine_;
};

}  // namespace sw::core
