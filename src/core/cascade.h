// Feed-forward majority netlists over the data-parallel fabric.
//
// The paper notes the gate output "can be read by transducers ... or passed
// to potential following SW gates". This module composes in-line majority
// gates into multi-stage circuits: every node is a physically designed
// 3-input gate evaluated on the wave engine, and stage boundaries model the
// regenerating transducers (which can launch the complement for free by
// flipping the drive phase — input negation costs nothing, just like the
// half-wavelength output ports give free output negation).
//
// The classic majority-logic full adder ships as a builder:
//   carry = MAJ(a, b, c)
//   sum   = MAJ(!carry, MAJ(a, b, !c), c)
// i.e. three majority gates and two free complements per bit — times n
// frequency channels, an n-way SIMD adder slice on two waveguides.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/gate.h"
#include "core/gate_design.h"
#include "wavesim/eval_program.h"
#include "wavesim/wave_engine.h"

namespace sw::core {

/// Reference to a signal in the netlist, with optional complement — the
/// complement is realised by the driving transducer's phase flip.
struct SignalRef {
  std::size_t id = 0;
  bool negated = false;

  SignalRef operator!() const { return {id, !negated}; }
};

class MajorityCascade {
 public:
  /// `designer`/`engine` are used for every node; `frequencies` defines the
  /// parallel channel set shared by the whole circuit.
  MajorityCascade(std::vector<double> frequencies,
                  const InlineGateDesigner& designer,
                  const sw::wavesim::WaveEngine& engine);

  /// Declare a primary input; returns its signal.
  SignalRef input();

  /// Add a 3-input majority node; returns its output signal.
  /// `invert_output` uses a half-integer output port (free complement).
  SignalRef maj(SignalRef a, SignalRef b, SignalRef c,
                bool invert_output = false);

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t num_gates() const { return nodes_.size(); }
  std::size_t num_channels() const { return frequencies_.size(); }

  /// Evaluate the cascade: `primary[i]` holds the per-channel word of
  /// input signal i. Returns per-signal, per-channel values for ALL
  /// signals (primaries first, then node outputs in creation order).
  /// Since the gate-cascade compiler this delegates to the compiled fused
  /// EvalProgram (one kernel pass through every stage), which is bit-exact
  /// with the per-stage physics path — kept as evaluate_physics(), the
  /// oracle verify() checks both against.
  std::vector<Bits> evaluate(const std::vector<Bits>& primary) const;

  /// The per-stage physics path: every node evaluated gate-by-gate on the
  /// wave engine, verdicts re-driven by the regenerating transducers. The
  /// oracle the fused program is verified against.
  std::vector<Bits> evaluate_physics(const std::vector<Bits>& primary) const;

  /// The cascade lowered to a portable multi-stage ProgramSpec (node k ->
  /// stage k; free complements on the interconnect): what the wire format
  /// ships and the plan cache keys on.
  sw::wavesim::ProgramSpec program_spec() const;

  /// The compiled fused program evaluate() runs on; built lazily from
  /// program_spec() and invalidated by maj(). Requires at least one node.
  const sw::wavesim::EvalProgram& program() const;

  /// Pure Boolean reference evaluation with scalar inputs.
  std::vector<std::uint8_t> reference_eval(
      const std::vector<std::uint8_t>& primary) const;

  /// Exhaustively verify fused program == per-stage physics == reference
  /// over all input patterns on every channel (throws on mismatch).
  /// Feasible for <= ~16 inputs.
  void verify() const;

  /// Total waveguide area of all nodes [m^2] given a guide width.
  double total_area(double guide_width) const;

 private:
  struct Node {
    SignalRef in[3];
    bool invert = false;
    std::unique_ptr<DataParallelGate> gate;
  };

  std::vector<double> frequencies_;
  const InlineGateDesigner* designer_;
  const sw::wavesim::WaveEngine* engine_;
  std::size_t num_inputs_ = 0;
  std::vector<Node> nodes_;
  /// Lazily compiled fused program (guarded for concurrent evaluate());
  /// reset whenever a node is added.
  mutable std::mutex program_mutex_;
  mutable std::unique_ptr<sw::wavesim::EvalProgram> program_;
};

/// Outputs of a full-adder slice built on a cascade.
struct FullAdderSignals {
  SignalRef a, b, carry_in;
  SignalRef sum, carry_out;
};

/// Build the 3-gate majority full adder on `cascade`.
FullAdderSignals build_full_adder(MajorityCascade& cascade);

}  // namespace sw::core
