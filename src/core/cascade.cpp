#include "core/cascade.h"

#include "util/error.h"

namespace sw::core {

MajorityCascade::MajorityCascade(std::vector<double> frequencies,
                                 const InlineGateDesigner& designer,
                                 const sw::wavesim::WaveEngine& engine)
    : frequencies_(std::move(frequencies)),
      designer_(&designer),
      engine_(&engine) {
  SW_REQUIRE(!frequencies_.empty(), "need at least one channel");
}

SignalRef MajorityCascade::input() {
  SW_REQUIRE(nodes_.empty(), "declare all inputs before adding gates");
  return {num_inputs_++, false};
}

SignalRef MajorityCascade::maj(SignalRef a, SignalRef b, SignalRef c,
                               bool invert_output) {
  const std::size_t next_id = num_inputs_ + nodes_.size();
  for (const auto& ref : {a, b, c}) {
    SW_REQUIRE(ref.id < next_id, "gate references a later signal");
  }
  Node node;
  node.in[0] = a;
  node.in[1] = b;
  node.in[2] = c;
  node.invert = invert_output;

  GateSpec spec;
  spec.num_inputs = 3;
  spec.frequencies = frequencies_;
  if (invert_output) {
    spec.invert_output.assign(frequencies_.size(), 1);
  }
  node.gate =
      std::make_unique<DataParallelGate>(designer_->design(spec), *engine_);
  nodes_.push_back(std::move(node));
  {
    // The compiled program no longer matches the netlist; rebuild lazily.
    std::lock_guard<std::mutex> lock(program_mutex_);
    program_.reset();
  }
  return {next_id, false};
}

sw::wavesim::ProgramSpec MajorityCascade::program_spec() const {
  const std::size_t n = frequencies_.size();
  sw::wavesim::ProgramSpec program;
  program.num_primary_inputs = num_inputs_;
  program.stages.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    sw::wavesim::StageSpec stage;
    stage.gate.num_inputs = 3;
    stage.gate.frequencies = frequencies_;
    if (node.invert) stage.gate.invert_output.assign(n, 1);
    stage.sources.resize(3 * n);
    for (std::size_t ch = 0; ch < n; ++ch) {
      for (int k = 0; k < 3; ++k) {
        const SignalRef& ref = node.in[k];
        sw::wavesim::SlotSource src;
        if (ref.id < num_inputs_) {
          src.kind = sw::wavesim::SlotSource::Kind::kPrimary;
          src.index = static_cast<std::uint32_t>(ch * num_inputs_ + ref.id);
        } else {
          src.kind = sw::wavesim::SlotSource::Kind::kStage;
          src.stage = static_cast<std::uint32_t>(ref.id - num_inputs_);
          src.index = static_cast<std::uint32_t>(ch);
        }
        src.negated = ref.negated;
        stage.sources[ch * 3 + static_cast<std::size_t>(k)] = src;
      }
    }
    program.stages.push_back(std::move(stage));
  }
  program.validate();
  return program;
}

const sw::wavesim::EvalProgram& MajorityCascade::program() const {
  SW_REQUIRE(!nodes_.empty(), "cascade has no gates to compile");
  std::lock_guard<std::mutex> lock(program_mutex_);
  if (!program_) {
    // A single inline worker: cascade evaluate() calls are one-word-ish
    // (exhaustive verifies, interactive use); batch traffic goes through
    // the serving layer, which builds its own programs.
    sw::wavesim::BatchOptions options;
    options.num_threads = 1;
    program_ = std::make_unique<sw::wavesim::EvalProgram>(
        program_spec(), *designer_, *engine_, options);
  }
  return *program_;
}

std::vector<Bits> MajorityCascade::evaluate(
    const std::vector<Bits>& primary) const {
  SW_REQUIRE(primary.size() == num_inputs_, "primary input count mismatch");
  const std::size_t n = frequencies_.size();
  for (const auto& word : primary) {
    SW_REQUIRE(word.size() == n, "each input needs one bit per channel");
  }
  if (nodes_.empty()) return primary;

  // One word through the fused program, all stages kept.
  std::vector<std::uint8_t> packed(num_inputs_ * n);
  for (std::size_t ch = 0; ch < n; ++ch) {
    for (std::size_t i = 0; i < num_inputs_; ++i) {
      packed[ch * num_inputs_ + i] = primary[i][ch];
    }
  }
  const auto stage_bits = program().evaluate_all_bits(1, packed);

  std::vector<Bits> signals = primary;
  signals.reserve(num_inputs_ + nodes_.size());
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    Bits out(n);
    for (std::size_t ch = 0; ch < n; ++ch) {
      out[ch] = stage_bits[s * n + ch];
    }
    signals.push_back(std::move(out));
  }
  return signals;
}

std::vector<Bits> MajorityCascade::evaluate_physics(
    const std::vector<Bits>& primary) const {
  SW_REQUIRE(primary.size() == num_inputs_, "primary input count mismatch");
  const std::size_t n = frequencies_.size();
  for (const auto& word : primary) {
    SW_REQUIRE(word.size() == n, "each input needs one bit per channel");
  }

  std::vector<Bits> signals = primary;
  signals.reserve(num_inputs_ + nodes_.size());
  for (const auto& node : nodes_) {
    // Regenerating transducers drive the next stage; a negated reference
    // simply flips the drive phase (free complement).
    std::vector<Bits> gate_inputs(n, Bits(3));
    for (std::size_t ch = 0; ch < n; ++ch) {
      for (int k = 0; k < 3; ++k) {
        const SignalRef& ref = node.in[k];
        const bool v = signals[ref.id][ch] != 0;
        gate_inputs[ch][k] = static_cast<std::uint8_t>(v != ref.negated);
      }
    }
    const auto results = node.gate->evaluate(gate_inputs);
    Bits out(n);
    for (const auto& r : results) out[r.channel] = r.logic;
    signals.push_back(std::move(out));
  }
  return signals;
}

std::vector<std::uint8_t> MajorityCascade::reference_eval(
    const std::vector<std::uint8_t>& primary) const {
  SW_REQUIRE(primary.size() == num_inputs_, "primary input count mismatch");
  std::vector<std::uint8_t> signals = primary;
  for (const auto& node : nodes_) {
    int ones = 0;
    for (int k = 0; k < 3; ++k) {
      const SignalRef& ref = node.in[k];
      const bool v = (signals[ref.id] != 0) != ref.negated;
      ones += v ? 1 : 0;
    }
    bool out = ones >= 2;
    if (node.invert) out = !out;
    signals.push_back(static_cast<std::uint8_t>(out));
  }
  return signals;
}

void MajorityCascade::verify() const {
  SW_REQUIRE(num_inputs_ <= 16, "exhaustive verification capped at 16 inputs");
  const std::size_t n = frequencies_.size();
  const std::size_t total = static_cast<std::size_t>(1) << num_inputs_;
  for (std::size_t v = 0; v < total; ++v) {
    std::vector<std::uint8_t> scalar(num_inputs_);
    std::vector<Bits> parallel(num_inputs_);
    for (std::size_t i = 0; i < num_inputs_; ++i) {
      scalar[i] = static_cast<std::uint8_t>((v >> i) & 1);
      parallel[i] = Bits(n, scalar[i]);
    }
    const auto want = reference_eval(scalar);
    const auto fused = evaluate(parallel);
    const auto physics = evaluate_physics(parallel);
    for (std::size_t s = 0; s < want.size(); ++s) {
      for (std::size_t ch = 0; ch < n; ++ch) {
        SW_REQUIRE(physics[s][ch] == want[s],
                   "cascade physical evaluation diverged from reference");
        SW_REQUIRE(fused[s][ch] == physics[s][ch],
                   "compiled program diverged from the per-stage physics");
      }
    }
  }
}

double MajorityCascade::total_area(double guide_width) const {
  SW_REQUIRE(guide_width > 0.0, "guide width must be positive");
  double area = 0.0;
  for (const auto& node : nodes_) {
    area += node.gate->layout().length() * guide_width;
  }
  return area;
}

FullAdderSignals build_full_adder(MajorityCascade& cascade) {
  FullAdderSignals fa;
  fa.a = cascade.input();
  fa.b = cascade.input();
  fa.carry_in = cascade.input();
  // carry = MAJ(a, b, c); sum = MAJ(!carry, MAJ(a, b, !c), c).
  fa.carry_out = cascade.maj(fa.a, fa.b, fa.carry_in);
  const SignalRef t = cascade.maj(fa.a, fa.b, !fa.carry_in);
  fa.sum = cascade.maj(!fa.carry_out, t, fa.carry_in);
  return fa;
}

}  // namespace sw::core
