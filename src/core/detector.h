// Output decoding: turn a detected phasor (or sampled signal) into a logic
// value with an explicit decision margin.
#pragma once

#include <complex>
#include <cstdint>
#include <span>

namespace sw::core {

/// Result of a phase-threshold decision.
struct PhaseDecision {
  std::uint8_t logic = 0;   ///< decoded bit
  double phase = 0.0;       ///< detected phase [rad]
  double amplitude = 0.0;   ///< detected amplitude [arb]
  double margin = 0.0;      ///< in [0,1]: distance of the phase from the
                            ///< decision boundary (pi/2), normalised
};

/// Decide a bit from a phasor against a reference phase: logic 1 when the
/// phase sits closer to reference+pi than to reference.
PhaseDecision decide_phase(std::complex<double> phasor,
                           double reference_phase);

/// Result of an amplitude-threshold decision (XOR-style readout).
struct AmplitudeDecision {
  std::uint8_t logic = 0;
  double amplitude = 0.0;
  double margin = 0.0;  ///< |amplitude - threshold| / threshold
};

/// Decide a bit from an amplitude: logic 1 when the wave has (mostly)
/// cancelled, i.e. amplitude < threshold_frac * reference_amplitude.
AmplitudeDecision decide_amplitude(double amplitude,
                                   double reference_amplitude,
                                   double threshold_frac = 0.5);

/// Per-channel phasor extraction from a sampled real signal via the
/// generalised Goertzel transform over [i_begin, i_end) samples.
std::complex<double> extract_phasor(std::span<const double> signal,
                                    std::size_t i_begin, std::size_t i_end,
                                    double sample_rate, double frequency);

}  // namespace sw::core
