// Phase encoding of logic values and the Boolean reference functions the
// interference realises.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/constants.h"

namespace sw::core {

/// Bit container used throughout the gate API (uint8_t avoids the
/// vector<bool> proxy-reference pitfalls).
using Bits = std::vector<std::uint8_t>;

/// Phase encoding: logic 0 <-> phase 0, logic 1 <-> phase pi.
inline constexpr double kPhaseZero = 0.0;
inline constexpr double kPhaseOne = sw::util::kPi;

/// Launch phase for a logic value.
constexpr double phase_of_bit(bool bit) { return bit ? kPhaseOne : kPhaseZero; }

/// Logic value whose encoding is closest to `phase` (absolute convention).
bool bit_of_phase(double phase);

/// MAJ of an odd number of bits (throws on even counts).
bool majority(std::span<const std::uint8_t> bits);

/// 3-input majority.
inline bool majority3(bool a, bool b, bool c) {
  return (a && b) || (b && c) || (a && c);
}

/// Parity (XOR fold) of the bits.
bool parity(std::span<const std::uint8_t> bits);

/// All 2^m input patterns of m bits, in counting order (bit 0 = input 0).
std::vector<Bits> all_patterns(std::size_t m);

}  // namespace sw::core
