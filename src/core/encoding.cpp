#include "core/encoding.h"

#include "util/error.h"
#include "util/stats.h"

namespace sw::core {

bool bit_of_phase(double phase) {
  return sw::util::angle_distance(phase, kPhaseZero) > sw::util::kPi / 2.0;
}

bool majority(std::span<const std::uint8_t> bits) {
  SW_REQUIRE(bits.size() % 2 == 1, "majority needs an odd number of inputs");
  std::size_t ones = 0;
  for (auto b : bits) ones += (b != 0);
  return ones * 2 > bits.size();
}

bool parity(std::span<const std::uint8_t> bits) {
  bool p = false;
  for (auto b : bits) p ^= (b != 0);
  return p;
}

std::vector<Bits> all_patterns(std::size_t m) {
  SW_REQUIRE(m <= 20, "pattern enumeration limited to 20 inputs");
  std::vector<Bits> out;
  const std::size_t total = static_cast<std::size_t>(1) << m;
  out.reserve(total);
  for (std::size_t v = 0; v < total; ++v) {
    Bits bits(m);
    for (std::size_t i = 0; i < m; ++i) {
      bits[i] = static_cast<std::uint8_t>((v >> i) & 1);
    }
    out.push_back(std::move(bits));
  }
  return out;
}

}  // namespace sw::core
