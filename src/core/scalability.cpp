#include "core/scalability.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace sw::core {

std::vector<double> damping_compensation(
    const GateLayout& layout, const sw::wavesim::WaveEngine& engine) {
  std::vector<double> levels;
  levels.reserve(layout.sources.size());
  for (const auto& s : layout.sources) {
    const auto& det = layout.detectors[s.channel];
    const double f = layout.spec.frequencies[s.channel];
    const double l = engine.decay_length(f);
    const double d = std::abs(det.x - s.x);
    // Boost so that the arrival amplitude matches a source sitting at the
    // channel's nearest (last) input position.
    const double d_near =
        std::abs(det.x - layout.source(s.channel,
                                       layout.spec.num_inputs - 1).x);
    levels.push_back(std::exp((d - d_near) / l));
  }
  return levels;
}

GateLayout with_drive_levels(GateLayout layout,
                             const std::vector<double>& levels) {
  SW_REQUIRE(levels.size() == layout.sources.size(),
             "one level per source required");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    SW_REQUIRE(levels[i] > 0.0, "drive levels must be positive");
    layout.sources[i].amplitude = levels[i];
  }
  return layout;
}

MarginReport margin_report(const DataParallelGate& gate) {
  MarginReport rep;
  const std::size_t m = gate.layout().spec.num_inputs;
  for (const auto& pattern : all_patterns(m)) {
    const auto results = gate.evaluate_uniform(pattern);
    for (const auto& r : results) {
      const bool correct =
          r.logic == gate.expected_majority(r.channel, pattern);
      if (!correct) rep.all_correct = false;
      // A wrong answer counts as a (negative-side) zero margin.
      const double margin = correct ? r.margin : 0.0;
      if (margin < rep.min_margin || !correct) {
        rep.min_margin = margin;
        rep.worst_channel = r.channel;
        rep.worst_pattern = pattern;
      }
    }
  }
  return rep;
}

std::vector<ScalabilityPoint> scalability_sweep(
    const sw::disp::DispersionModel& model, double alpha, double frequency,
    std::size_t max_inputs) {
  SW_REQUIRE(max_inputs >= 3, "sweep needs at least 3 inputs");
  sw::wavesim::WaveEngine engine(model, alpha);
  InlineGateDesigner designer(model);

  std::vector<ScalabilityPoint> out;
  for (std::size_t m = 3; m <= max_inputs; m += 2) {
    GateSpec spec;
    spec.num_inputs = m;
    spec.frequencies = {frequency};
    const GateLayout base = designer.design(spec);

    ScalabilityPoint pt;
    pt.num_inputs = m;
    {
      DataParallelGate gate(base, engine);
      const auto rep = margin_report(gate);
      pt.margin_uncompensated = rep.min_margin;
      pt.correct_uncompensated = rep.all_correct;
    }
    {
      const auto levels = damping_compensation(base, engine);
      DataParallelGate gate(with_drive_levels(base, levels), engine);
      const auto rep = margin_report(gate);
      pt.margin_compensated = rep.min_margin;
      pt.correct_compensated = rep.all_correct;
    }
    out.push_back(pt);
  }
  return out;
}

}  // namespace sw::core
