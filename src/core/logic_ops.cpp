#include "core/logic_ops.h"

#include <memory>

#include "util/error.h"
#include "wavesim/batch_evaluator.h"

namespace sw::core {

const char* boolean_op_name(BooleanOp op) {
  switch (op) {
    case BooleanOp::kAnd: return "and";
    case BooleanOp::kOr: return "or";
    case BooleanOp::kNand: return "nand";
    case BooleanOp::kNor: return "nor";
    case BooleanOp::kBuffer: return "buffer";
    case BooleanOp::kNot: return "not";
  }
  return "unknown";
}

bool boolean_op_eval(BooleanOp op, bool a, bool b) {
  switch (op) {
    case BooleanOp::kAnd: return a && b;
    case BooleanOp::kOr: return a || b;
    case BooleanOp::kNand: return !(a && b);
    case BooleanOp::kNor: return !(a || b);
    case BooleanOp::kBuffer: return a;
    case BooleanOp::kNot: return !a;
  }
  SW_ASSERT(false, "unhandled op");
}

ParallelLogicGate::ParallelLogicGate(BooleanOp op,
                                     std::vector<double> frequencies,
                                     const InlineGateDesigner& designer,
                                     const sw::wavesim::WaveEngine& engine)
    : op_(op) {
  SW_REQUIRE(!frequencies.empty(), "need at least one channel");
  GateSpec spec;
  spec.frequencies = std::move(frequencies);
  const std::size_t n = spec.frequencies.size();

  bool inverted = false;
  switch (op) {
    case BooleanOp::kAnd:
      pinned_value_ = 0; has_pin_ = true; break;
    case BooleanOp::kOr:
      pinned_value_ = 1; has_pin_ = true; break;
    case BooleanOp::kNand:
      pinned_value_ = 0; has_pin_ = true; inverted = true; break;
    case BooleanOp::kNor:
      pinned_value_ = 1; has_pin_ = true; inverted = true; break;
    case BooleanOp::kBuffer:
      data_inputs_ = 1; break;
    case BooleanOp::kNot:
      data_inputs_ = 1; inverted = true; break;
  }
  spec.num_inputs = has_pin_ ? 3 : data_inputs_;
  if (inverted) spec.invert_output.assign(n, 1);

  gate_ = std::make_unique<DataParallelGate>(designer.design(spec), engine);
}

std::vector<std::uint8_t> ParallelLogicGate::evaluate(const Bits& a,
                                                      const Bits& b) const {
  const std::size_t n = layout().spec.frequencies.size();
  SW_REQUIRE(a.size() == n, "operand a must have one bit per channel");
  SW_REQUIRE(data_inputs_ == 1 || b.size() == n,
             "operand b must have one bit per channel");

  std::vector<Bits> inputs(n);
  for (std::size_t ch = 0; ch < n; ++ch) {
    Bits bits;
    bits.push_back(a[ch]);
    if (data_inputs_ == 2) bits.push_back(b[ch]);
    if (has_pin_) bits.push_back(pinned_value_);
    inputs[ch] = std::move(bits);
  }
  const auto results = gate_->evaluate(inputs);
  std::vector<std::uint8_t> out(n);
  for (const auto& r : results) out[r.channel] = r.logic;
  return out;
}

std::vector<std::uint8_t> ParallelLogicGate::pack_batch(
    const std::vector<Bits>& a_words, const std::vector<Bits>& b_words) const {
  const std::size_t n = layout().spec.frequencies.size();
  const std::size_t words = a_words.size();
  SW_REQUIRE(data_inputs_ == 1 || b_words.size() == words,
             "need one b word per a word");
  for (std::size_t w = 0; w < words; ++w) {
    SW_REQUIRE(a_words[w].size() == n,
               "operand a must have one bit per channel");
    SW_REQUIRE(data_inputs_ == 1 || b_words[w].size() == n,
               "operand b must have one bit per channel");
  }

  // Pack the operands into the gate's flat slot matrix. Input slot layout
  // per channel (see evaluate()): slot 0 = a, slot 1 = b for binary ops,
  // last slot = the pinned constant when present.
  const std::size_t m = layout().spec.num_inputs;
  const std::size_t stride = n * m;
  std::vector<std::uint8_t> packed(words * stride);
  for (std::size_t w = 0; w < words; ++w) {
    std::uint8_t* row = packed.data() + w * stride;
    for (std::size_t ch = 0; ch < n; ++ch) {
      row[ch * m] = a_words[w][ch];
      if (data_inputs_ == 2) row[ch * m + 1] = b_words[w][ch];
      if (has_pin_) row[ch * m + m - 1] = pinned_value_;
    }
  }
  return packed;
}

std::vector<std::vector<std::uint8_t>> ParallelLogicGate::evaluate_batch(
    const std::vector<Bits>& a_words, const std::vector<Bits>& b_words,
    std::size_t num_threads) const {
  const std::size_t n = layout().spec.frequencies.size();
  const std::size_t words = a_words.size();
  const std::vector<std::uint8_t> packed = pack_batch(a_words, b_words);

  sw::wavesim::BatchOptions opts;
  opts.num_threads = sw::wavesim::clamp_batch_threads(num_threads, words);
  const sw::wavesim::BatchEvaluator evaluator(*gate_, opts);
  const auto decoded = evaluator.evaluate_bits(words, packed);

  std::vector<std::vector<std::uint8_t>> out(words);
  for (std::size_t w = 0; w < words; ++w) {
    out[w].assign(decoded.begin() + static_cast<std::ptrdiff_t>(w * n),
                  decoded.begin() + static_cast<std::ptrdiff_t>((w + 1) * n));
  }
  return out;
}

void ParallelLogicGate::verify() const {
  const std::size_t n = layout().spec.frequencies.size();
  const std::size_t combos = data_inputs_ == 1 ? 2 : 4;
  for (std::size_t v = 0; v < combos; ++v) {
    const bool a = (v & 1) != 0;
    const bool b = (v & 2) != 0;
    const Bits wa(n, static_cast<std::uint8_t>(a));
    const Bits wb(n, static_cast<std::uint8_t>(b));
    const auto out = evaluate(wa, wb);
    const auto want = static_cast<std::uint8_t>(boolean_op_eval(op_, a, b));
    for (std::size_t ch = 0; ch < n; ++ch) {
      SW_REQUIRE(out[ch] == want,
                 std::string("derived gate violates ") +
                     boolean_op_name(op_));
    }
  }
}

}  // namespace sw::core
