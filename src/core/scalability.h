// Scalability analysis (paper Section V "Scalability"): damping makes the
// first (farthest) input of each channel arrive weaker than the last; for
// large input counts the interference vote can be corrupted. The paper's
// remedy is graded drive levels (I_n energy < I_{n-1} < ... < I_1). This
// module computes those levels and the resulting decision margins.
#pragma once

#include <cstddef>
#include <vector>

#include "core/gate.h"
#include "core/gate_design.h"
#include "wavesim/wave_engine.h"

namespace sw::core {

/// Per-source amplitude multipliers that equalise the arrival amplitude of
/// every source of a channel at that channel's detector (the nearest source
/// keeps amplitude 1; farther sources are boosted). Order matches
/// layout.sources.
std::vector<double> damping_compensation(const GateLayout& layout,
                                         const sw::wavesim::WaveEngine& engine);

/// Apply compensation levels to a copy of the layout.
GateLayout with_drive_levels(GateLayout layout,
                             const std::vector<double>& levels);

/// Worst-case decision margin over all 2^m uniform patterns and channels.
struct MarginReport {
  double min_margin = 1.0;          ///< worst margin in [0, 1]
  std::size_t worst_channel = 0;
  Bits worst_pattern;
  bool all_correct = true;          ///< truth table fully satisfied
};

MarginReport margin_report(const DataParallelGate& gate);

/// Margin as a function of input count m (odd values), with and without
/// damping compensation, for a single-frequency channel: the data behind
/// the scalability argument.
struct ScalabilityPoint {
  std::size_t num_inputs = 0;
  double margin_uncompensated = 0.0;
  double margin_compensated = 0.0;
  bool correct_uncompensated = false;
  bool correct_compensated = false;
};

std::vector<ScalabilityPoint> scalability_sweep(
    const sw::disp::DispersionModel& model, double alpha, double frequency,
    std::size_t max_inputs);

}  // namespace sw::core
