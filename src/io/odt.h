// ODT (OOMMF Data Table) writer: the column-oriented text format OOMMF's
// mmGraph/mmDataTable consume, so probe time series plot directly in the
// standard micromagnetic tooling.
#pragma once

#include <string>
#include <vector>

#include "mag/probe.h"

namespace sw::io {

/// One named column of numeric data.
struct OdtColumn {
  std::string name;   ///< e.g. "Oxs_TimeDriver::Simulation time"
  std::string units;  ///< e.g. "s"
  std::vector<double> values;
};

/// Write columns as an ODT v1.0 table. All columns must have equal length.
void write_odt(const std::string& path, const std::string& title,
               const std::vector<OdtColumn>& columns);

/// Convenience: dump a set of probes (shared time base) as one ODT table
/// with time plus the mx/my/mz averages of each probe.
void write_probes_odt(const std::string& path, const std::string& title,
                      const std::vector<sw::mag::Probe>& probes);

}  // namespace sw::io
