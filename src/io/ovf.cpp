#include "io/ovf.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "io/csv.h"
#include "util/error.h"
#include "util/strings.h"

namespace sw::io {

using sw::mag::Mesh;
using sw::mag::Vec3;
using sw::mag::VectorField;

void write_ovf(const std::string& path, const VectorField& field,
               const std::string& title) {
  ensure_parent_dir(path);
  std::ofstream out(path);
  SW_REQUIRE(out.good(), "cannot open " + path + " for writing");
  out << std::setprecision(17);  // lossless double round trip
  const Mesh& mesh = field.mesh();

  out << "# OOMMF: rectangular mesh v1.0\n";
  out << "# Segment count: 1\n";
  out << "# Begin: Segment\n";
  out << "# Begin: Header\n";
  out << "# Title: " << title << "\n";
  out << "# meshtype: rectangular\n";
  out << "# meshunit: m\n";
  out << "# valueunit: A/m\n";
  out << "# valuemultiplier: 1.0\n";
  out << "# xbase: " << mesh.dx() * 0.5 << "\n";
  out << "# ybase: " << mesh.dy() * 0.5 << "\n";
  out << "# zbase: " << mesh.dz() * 0.5 << "\n";
  out << "# xstepsize: " << mesh.dx() << "\n";
  out << "# ystepsize: " << mesh.dy() << "\n";
  out << "# zstepsize: " << mesh.dz() << "\n";
  out << "# xnodes: " << mesh.nx() << "\n";
  out << "# ynodes: " << mesh.ny() << "\n";
  out << "# znodes: " << mesh.nz() << "\n";
  out << "# xmin: 0\n# ymin: 0\n# zmin: 0\n";
  out << "# xmax: " << mesh.size_x() << "\n";
  out << "# ymax: " << mesh.size_y() << "\n";
  out << "# zmax: " << mesh.size_z() << "\n";
  out << "# End: Header\n";
  out << "# Begin: Data Text\n";
  for (std::size_t c = 0; c < field.size(); ++c) {
    const Vec3& v = field[c];
    out << v.x << " " << v.y << " " << v.z << "\n";
  }
  out << "# End: Data Text\n";
  out << "# End: Segment\n";
  SW_REQUIRE(out.good(), "write failed for " + path);
}

VectorField read_ovf(const std::string& path) {
  std::ifstream in(path);
  SW_REQUIRE(in.good(), "cannot open " + path);

  std::size_t nx = 0, ny = 0, nz = 0;
  double dx = 0, dy = 0, dz = 0;
  std::string line;
  bool in_data = false;
  std::vector<Vec3> data;

  auto header_value = [](const std::string& l) {
    const auto pos = l.find(':', 2);
    SW_REQUIRE(pos != std::string::npos, "malformed OVF header line: " + l);
    return std::string(sw::util::trim(l.substr(pos + 1)));
  };

  while (std::getline(in, line)) {
    const auto trimmed = sw::util::trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      const std::string l(trimmed);
      if (l.find("xnodes") != std::string::npos) {
        nx = static_cast<std::size_t>(*sw::util::parse_long(header_value(l)));
      } else if (l.find("ynodes") != std::string::npos) {
        ny = static_cast<std::size_t>(*sw::util::parse_long(header_value(l)));
      } else if (l.find("znodes") != std::string::npos) {
        nz = static_cast<std::size_t>(*sw::util::parse_long(header_value(l)));
      } else if (l.find("xstepsize") != std::string::npos) {
        dx = *sw::util::parse_double(header_value(l));
      } else if (l.find("ystepsize") != std::string::npos) {
        dy = *sw::util::parse_double(header_value(l));
      } else if (l.find("zstepsize") != std::string::npos) {
        dz = *sw::util::parse_double(header_value(l));
      } else if (l.find("Begin: Data Text") != std::string::npos) {
        in_data = true;
      } else if (l.find("End: Data Text") != std::string::npos) {
        in_data = false;
      }
      continue;
    }
    if (in_data) {
      const auto parts = sw::util::split_ws(trimmed);
      SW_REQUIRE(parts.size() == 3, "bad OVF data row");
      const auto x = sw::util::parse_double(parts[0]);
      const auto y = sw::util::parse_double(parts[1]);
      const auto z = sw::util::parse_double(parts[2]);
      SW_REQUIRE(x && y && z, "non-numeric OVF data");
      data.push_back({*x, *y, *z});
    }
  }
  SW_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "missing node counts");
  SW_REQUIRE(dx > 0 && dy > 0 && dz > 0, "missing step sizes");
  SW_REQUIRE(data.size() == nx * ny * nz, "OVF data size mismatch");

  VectorField field(Mesh(nx, ny, nz, dx, dy, dz));
  for (std::size_t c = 0; c < data.size(); ++c) field[c] = data[c];
  return field;
}

}  // namespace sw::io
