#include "io/odt.h"

#include <fstream>
#include <iomanip>

#include "io/csv.h"
#include "util/error.h"

namespace sw::io {

void write_odt(const std::string& path, const std::string& title,
               const std::vector<OdtColumn>& columns) {
  SW_REQUIRE(!columns.empty(), "need at least one column");
  const std::size_t rows = columns.front().values.size();
  for (const auto& c : columns) {
    SW_REQUIRE(c.values.size() == rows, "column length mismatch");
  }

  ensure_parent_dir(path);
  std::ofstream out(path);
  SW_REQUIRE(out.good(), "cannot open " + path + " for writing");
  out << std::setprecision(17);

  out << "# ODT 1.0\n";
  out << "# Table Start\n";
  out << "# Title: " << title << "\n";
  out << "# Columns:";
  for (const auto& c : columns) out << " {" << c.name << "}";
  out << "\n# Units:";
  for (const auto& c : columns) out << " {" << c.units << "}";
  out << "\n";
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < columns.size(); ++j) {
      out << (j ? " " : "") << columns[j].values[r];
    }
    out << "\n";
  }
  out << "# Table End\n";
  SW_REQUIRE(out.good(), "write failed for " + path);
}

void write_probes_odt(const std::string& path, const std::string& title,
                      const std::vector<sw::mag::Probe>& probes) {
  SW_REQUIRE(!probes.empty(), "need at least one probe");
  std::vector<OdtColumn> cols;
  cols.push_back({"Simulation time", "s", probes.front().times()});
  for (const auto& p : probes) {
    SW_REQUIRE(p.samples().size() == cols.front().values.size(),
               "probes must share a time base");
    for (const char axis : {'x', 'y', 'z'}) {
      OdtColumn c;
      c.name = p.name() + "::m" + axis;
      c.units = "";
      c.values = p.component(axis);
      cols.push_back(std::move(c));
    }
  }
  write_odt(path, title, cols);
}

}  // namespace sw::io
