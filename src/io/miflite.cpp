#include "io/miflite.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace sw::io {

using sw::util::parse_bool;
using sw::util::parse_double;
using sw::util::parse_long;
using sw::util::split;
using sw::util::split_ws;
using sw::util::to_lower;
using sw::util::trim;

MifDocument MifDocument::parse(const std::string& text) {
  MifDocument doc;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto t = trim(line);
    if (t.empty()) continue;
    if (t.front() == '[') {
      SW_REQUIRE(t.back() == ']',
                 "line " + std::to_string(line_no) + ": unterminated section");
      section = to_lower(trim(t.substr(1, t.size() - 2)));
      SW_REQUIRE(!section.empty(),
                 "line " + std::to_string(line_no) + ": empty section name");
      doc.sections_[section];  // create (possibly empty) section
      continue;
    }
    const auto eq = t.find('=');
    SW_REQUIRE(eq != std::string::npos,
               "line " + std::to_string(line_no) + ": expected key = value");
    SW_REQUIRE(!section.empty(),
               "line " + std::to_string(line_no) + ": key outside a section");
    const std::string key = to_lower(trim(t.substr(0, eq)));
    const std::string value(trim(t.substr(eq + 1)));
    SW_REQUIRE(!key.empty(),
               "line " + std::to_string(line_no) + ": empty key");
    doc.sections_[section][key] = value;
  }
  return doc;
}

MifDocument MifDocument::parse_file(const std::string& path) {
  std::ifstream in(path);
  SW_REQUIRE(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

bool MifDocument::has_section(const std::string& section) const {
  return sections_.count(to_lower(section)) > 0;
}

bool MifDocument::has_key(const std::string& section,
                          const std::string& key) const {
  const auto it = sections_.find(to_lower(section));
  if (it == sections_.end()) return false;
  return it->second.count(to_lower(key)) > 0;
}

const std::string& MifDocument::raw(const std::string& section,
                                    const std::string& key) const {
  const auto it = sections_.find(to_lower(section));
  SW_REQUIRE(it != sections_.end(), "missing section [" + section + "]");
  const auto kt = it->second.find(to_lower(key));
  SW_REQUIRE(kt != it->second.end(),
             "missing key '" + key + "' in [" + section + "]");
  return kt->second;
}

std::string MifDocument::get_string(const std::string& section,
                                    const std::string& key) const {
  return raw(section, key);
}

double MifDocument::get_double(const std::string& section,
                               const std::string& key) const {
  const auto v = parse_double(raw(section, key));
  SW_REQUIRE(v.has_value(),
             "key '" + key + "' in [" + section + "] is not a number");
  return *v;
}

long MifDocument::get_long(const std::string& section,
                           const std::string& key) const {
  const auto v = parse_long(raw(section, key));
  SW_REQUIRE(v.has_value(),
             "key '" + key + "' in [" + section + "] is not an integer");
  return *v;
}

bool MifDocument::get_bool(const std::string& section,
                           const std::string& key) const {
  const auto v = parse_bool(raw(section, key));
  SW_REQUIRE(v.has_value(),
             "key '" + key + "' in [" + section + "] is not a boolean");
  return *v;
}

std::vector<double> MifDocument::get_doubles(const std::string& section,
                                             const std::string& key) const {
  std::vector<double> out;
  for (const auto& tok : split_ws(raw(section, key))) {
    const auto v = parse_double(tok);
    SW_REQUIRE(v.has_value(), "key '" + key + "' in [" + section +
                                  "]: bad number '" + tok + "'");
    out.push_back(*v);
  }
  SW_REQUIRE(!out.empty(), "key '" + key + "' in [" + section + "] is empty");
  return out;
}

double MifDocument::get_double_or(const std::string& section,
                                  const std::string& key,
                                  double fallback) const {
  return has_key(section, key) ? get_double(section, key) : fallback;
}

long MifDocument::get_long_or(const std::string& section,
                              const std::string& key, long fallback) const {
  return has_key(section, key) ? get_long(section, key) : fallback;
}

sw::mag::Material parse_material(const MifDocument& doc) {
  sw::mag::Material m;
  if (doc.has_key("material", "name")) {
    m = sw::mag::material_by_name(doc.get_string("material", "name"));
  } else {
    m = sw::mag::make_fecob();
  }
  m.Ms = doc.get_double_or("material", "ms", m.Ms);
  m.Aex = doc.get_double_or("material", "aex", m.Aex);
  m.alpha = doc.get_double_or("material", "alpha", m.alpha);
  m.Ku = doc.get_double_or("material", "ku", m.Ku);
  m.validate();
  return m;
}

sw::disp::Waveguide parse_waveguide(const MifDocument& doc) {
  sw::disp::Waveguide wg;
  wg.material = parse_material(doc);
  wg.width = doc.get_double_or("waveguide", "width", wg.width);
  wg.thickness = doc.get_double_or("waveguide", "thickness", wg.thickness);
  wg.pinning_factor =
      doc.get_double_or("waveguide", "pinning_factor", wg.pinning_factor);
  wg.width_mode = static_cast<int>(
      doc.get_long_or("waveguide", "width_mode", wg.width_mode));
  return wg;
}

sw::core::GateSpec parse_gate_spec(const MifDocument& doc) {
  sw::core::GateSpec spec;
  spec.num_inputs =
      static_cast<std::size_t>(doc.get_long_or("gate", "inputs", 3));
  spec.frequencies = doc.get_doubles("gate", "frequencies");
  spec.transducer_width = doc.get_double_or("gate", "transducer_width",
                                            spec.transducer_width);
  spec.min_gap = doc.get_double_or("gate", "min_gap", spec.min_gap);
  if (doc.has_key("gate", "invert")) {
    const auto flags = doc.get_doubles("gate", "invert");
    for (double f : flags) {
      spec.invert_output.push_back(f != 0.0 ? 1 : 0);
    }
  }
  return spec;
}

}  // namespace sw::io
