#include "io/csv.h"

#include <filesystem>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace sw::io {

void ensure_parent_dir(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path) {
  SW_REQUIRE(!header.empty(), "header must not be empty");
  ensure_parent_dir(path);
  out_.open(path);
  SW_REQUIRE(out_.good(), "cannot open " + path + " for writing");
  width_ = header.size();
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ",";
    out_ << header[i];
  }
  out_ << "\n";
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::row(const std::vector<double>& values) {
  SW_REQUIRE(values.size() == width_, "row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ",";
    out_ << sw::util::format_sig(values[i], 9);
  }
  out_ << "\n";
  ++rows_;
}

void CsvWriter::row_text(const std::vector<std::string>& cells) {
  SW_REQUIRE(cells.size() == width_, "row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ",";
    out_ << cells[i];
  }
  out_ << "\n";
  ++rows_;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SW_REQUIRE(!header_.empty(), "header must not be empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  SW_REQUIRE(cells.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(sw::util::format_sig(v, 4));
  add_row(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) w[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      w[i] = std::max(w[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << " " << cells[i] << std::string(w[i] - cells[i].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  emit(header_);
  os << "|";
  for (std::size_t i = 0; i < header_.size(); ++i) {
    os << std::string(w[i] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace sw::io
