// CSV output and aligned console tables for experiment harnesses.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace sw::io {

/// Streams rows to a CSV file; the header is written on construction.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Numeric row; must match the header width.
  void row(const std::vector<double>& values);

  /// Mixed row of preformatted cells; must match the header width.
  void row_text(const std::vector<std::string>& cells);

  const std::string& path() const { return path_; }
  std::size_t rows_written() const { return rows_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t width_ = 0;
  std::size_t rows_ = 0;
};

/// Fixed-layout console table (markdown-ish, aligned columns).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows (formatted with %.4g).
  void add_numeric_row(const std::vector<double>& values);

  /// Render with padded columns.
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Ensure the directory for `path` exists (mkdir -p semantics on the parent).
void ensure_parent_dir(const std::string& path);

}  // namespace sw::io
