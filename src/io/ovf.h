// OVF 1.0 (OOMMF Vector Field) text-format writer/reader, so field
// snapshots interoperate with OOMMF's mmDisp and the wider micromagnetic
// tooling ecosystem.
#pragma once

#include <string>

#include "mag/vector_field.h"

namespace sw::io {

/// Write `field` as an OVF 1.0 text file ("rectangular mesh v1.0").
/// `title` lands in the Title header line.
void write_ovf(const std::string& path, const sw::mag::VectorField& field,
               const std::string& title = "spinwave field");

/// Read an OVF 1.0 text file written by write_ovf (subset of the format:
/// rectangular mesh, text data). Throws on malformed input.
sw::mag::VectorField read_ovf(const std::string& path);

}  // namespace sw::io
