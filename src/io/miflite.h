// MIF-lite: a minimal, typed problem-description format in the spirit of
// OOMMF's MIF files (without the Tcl). Sections in square brackets hold
// key = value pairs; '#' starts a comment. Example:
//
//   [material]
//   name = FeCoB
//   Ms = 1.1e6
//   Aex = 18.5e-12
//   alpha = 0.004
//   Ku = 8.3177e5
//
//   [waveguide]
//   width = 50e-9
//   thickness = 1e-9
//
//   [gate]
//   inputs = 3
//   frequencies = 10e9 20e9 30e9
//   transducer_width = 10e-9
//   min_gap = 1e-9
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/gate_design.h"
#include "dispersion/waveguide.h"
#include "mag/material.h"

namespace sw::io {

/// Parsed MIF-lite document: section -> key -> raw value string.
class MifDocument {
 public:
  /// Parse from text; throws sw::util::Error with a line number on errors.
  static MifDocument parse(const std::string& text);

  /// Parse a file.
  static MifDocument parse_file(const std::string& path);

  bool has_section(const std::string& section) const;
  bool has_key(const std::string& section, const std::string& key) const;

  /// Typed getters; throw when the key is missing or malformed.
  std::string get_string(const std::string& section,
                         const std::string& key) const;
  double get_double(const std::string& section, const std::string& key) const;
  long get_long(const std::string& section, const std::string& key) const;
  bool get_bool(const std::string& section, const std::string& key) const;
  std::vector<double> get_doubles(const std::string& section,
                                  const std::string& key) const;

  /// Same with a default when absent.
  double get_double_or(const std::string& section, const std::string& key,
                       double fallback) const;
  long get_long_or(const std::string& section, const std::string& key,
                   long fallback) const;

 private:
  const std::string& raw(const std::string& section,
                         const std::string& key) const;
  std::map<std::string, std::map<std::string, std::string>> sections_;
};

/// Build a material from [material]. Either `name = <preset>` alone or a
/// preset refined by explicit keys (Ms, Aex, alpha, Ku).
sw::mag::Material parse_material(const MifDocument& doc);

/// Build a waveguide from [waveguide] (+ its [material]).
sw::disp::Waveguide parse_waveguide(const MifDocument& doc);

/// Build a gate spec from [gate].
sw::core::GateSpec parse_gate_spec(const MifDocument& doc);

}  // namespace sw::io
