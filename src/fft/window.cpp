#include "fft/window.h"

#include <cmath>

#include "util/constants.h"
#include "util/error.h"
#include "util/strings.h"

namespace sw::fft {

using sw::util::kTwoPi;

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  SW_REQUIRE(n >= 1, "window length must be >= 1");
  std::vector<double> w(n, 1.0);
  const double N = static_cast<double>(n);  // periodic window
  for (std::size_t i = 0; i < n; ++i) {
    const double x = kTwoPi * static_cast<double>(i) / N;
    switch (kind) {
      case WindowKind::kRect:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(x);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(x);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2.0 * x);
        break;
      case WindowKind::kFlatTop:
        // SRS flat-top coefficients.
        w[i] = 1.0 - 1.93 * std::cos(x) + 1.29 * std::cos(2.0 * x) -
               0.388 * std::cos(3.0 * x) + 0.028 * std::cos(4.0 * x);
        break;
    }
  }
  return w;
}

double coherent_gain(WindowKind kind, std::size_t n) {
  const auto w = make_window(kind, n);
  double sum = 0.0;
  for (double v : w) sum += v;
  return sum / static_cast<double>(n);
}

WindowKind window_from_name(const std::string& name) {
  const std::string t = sw::util::to_lower(name);
  if (t == "rect" || t == "rectangular" || t == "none") return WindowKind::kRect;
  if (t == "hann" || t == "hanning") return WindowKind::kHann;
  if (t == "hamming") return WindowKind::kHamming;
  if (t == "blackman") return WindowKind::kBlackman;
  if (t == "flattop" || t == "flat-top") return WindowKind::kFlatTop;
  SW_REQUIRE(false, "unknown window name: " + name);
}

const char* window_name(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRect: return "rect";
    case WindowKind::kHann: return "hann";
    case WindowKind::kHamming: return "hamming";
    case WindowKind::kBlackman: return "blackman";
    case WindowKind::kFlatTop: return "flattop";
  }
  return "unknown";
}

}  // namespace sw::fft
