// Goertzel single-bin DFT: amplitude and phase of one frequency component
// without computing the full spectrum. This is the per-channel detector
// primitive for multi-frequency gates: O(N) per frequency, exact for
// bin-aligned tones, and cheap enough to run per output port per channel.
#pragma once

#include <complex>
#include <span>

namespace sw::fft {

/// Phasor estimate of a single tone in a real signal.
struct Phasor {
  double amplitude = 0.0;  ///< peak amplitude of the cosine component
  double phase = 0.0;      ///< radians, relative to a cosine at t = t0
  std::complex<double> raw{0.0, 0.0};  ///< unnormalised complex bin value
};

/// Estimate the phasor of `signal` (sampled at `sample_rate` Hz) at frequency
/// `freq` using the generalised Goertzel algorithm (non-integer bin indices
/// allowed). The estimate is normalised so that for
/// x[n] = A*cos(2*pi*f*n/fs + phi), amplitude -> A and phase -> phi.
Phasor goertzel(std::span<const double> signal, double sample_rate,
                double freq);

/// Same, with a window applied (compensated by the window's coherent gain).
/// `window` must have signal.size() samples.
Phasor goertzel_windowed(std::span<const double> signal,
                         std::span<const double> window, double sample_rate,
                         double freq);

}  // namespace sw::fft
