#include "fft/goertzel.h"

#include <cmath>
#include <vector>

#include "util/constants.h"
#include "util/error.h"

namespace sw::fft {

using sw::util::kTwoPi;

Phasor goertzel(std::span<const double> signal, double sample_rate,
                double freq) {
  SW_REQUIRE(!signal.empty(), "empty signal");
  SW_REQUIRE(sample_rate > 0.0, "sample rate must be positive");
  SW_REQUIRE(freq >= 0.0 && freq <= 0.5 * sample_rate,
             "frequency outside [0, Nyquist]");

  const std::size_t n = signal.size();
  // Generalised Goertzel (Sysel & Rajmic 2012): non-integer bin index k.
  const double k = freq * static_cast<double>(n) / sample_rate;
  const double w = kTwoPi * k / static_cast<double>(n);
  const double cw = std::cos(w);
  const double coeff = 2.0 * cw;

  double s0 = 0.0, s1 = 0.0, s2 = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    s0 = signal[i] + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  // Final iteration folded in with the phase correction for non-integer k.
  s0 = signal[n - 1] + coeff * s1 - s2;

  const std::complex<double> wc(std::cos(w), -std::sin(w));
  std::complex<double> y = s0 - s1 * wc;
  // Correct the phase so it references sample 0.
  const double corr = kTwoPi * k * (static_cast<double>(n) - 1.0) /
                      static_cast<double>(n);
  y *= std::complex<double>(std::cos(corr), -std::sin(corr));

  Phasor p;
  p.raw = y;
  // For a real tone, the DFT bin magnitude is N*A/2 (except DC).
  const double scale = (freq == 0.0) ? static_cast<double>(n)
                                     : static_cast<double>(n) / 2.0;
  p.amplitude = std::abs(y) / scale;
  p.phase = std::arg(y);
  return p;
}

Phasor goertzel_windowed(std::span<const double> signal,
                         std::span<const double> window, double sample_rate,
                         double freq) {
  SW_REQUIRE(signal.size() == window.size(), "window/signal size mismatch");
  std::vector<double> tmp(signal.size());
  double gain = 0.0;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    tmp[i] = signal[i] * window[i];
    gain += window[i];
  }
  gain /= static_cast<double>(window.size());
  SW_REQUIRE(gain > 0.0, "window has non-positive coherent gain");
  Phasor p = goertzel(tmp, sample_rate, freq);
  p.amplitude /= gain;
  return p;
}

}  // namespace sw::fft
