#include "fft/spectrum.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fft/fft.h"
#include "util/error.h"

namespace sw::fft {

Spectrum amplitude_spectrum(std::span<const double> signal, double sample_rate,
                            WindowKind window) {
  SW_REQUIRE(signal.size() >= 2, "signal too short");
  SW_REQUIRE(sample_rate > 0.0, "sample rate must be positive");

  const std::size_t n = signal.size();
  const auto w = make_window(window, n);
  double gain = 0.0;
  std::vector<double> tmp(n);
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = signal[i] * w[i];
    gain += w[i];
  }
  gain /= static_cast<double>(n);

  auto bins = fft_real(tmp);

  Spectrum s;
  const std::size_t half = n / 2 + 1;
  s.freq.resize(half);
  s.amplitude.resize(half);
  s.resolution = sample_rate / static_cast<double>(n);
  for (std::size_t k = 0; k < half; ++k) {
    s.freq[k] = s.resolution * static_cast<double>(k);
    double a = std::abs(bins[k]) / static_cast<double>(n);
    if (k != 0 && !(n % 2 == 0 && k == half - 1)) a *= 2.0;  // one-sided
    s.amplitude[k] = a / gain;
  }
  return s;
}

std::vector<Peak> find_peaks(const Spectrum& spec, double min_amplitude) {
  std::vector<Peak> peaks;
  const auto& a = spec.amplitude;
  for (std::size_t k = 1; k + 1 < a.size(); ++k) {
    if (a[k] >= min_amplitude && a[k] >= a[k - 1] && a[k] >= a[k + 1]) {
      peaks.push_back({spec.freq[k], a[k], k});
    }
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& x, const Peak& y) { return x.amplitude > y.amplitude; });
  return peaks;
}

double tone_to_spur_ratio(const Spectrum& spec, std::span<const double> tones,
                          double guard_hz) {
  SW_REQUIRE(!tones.empty(), "need at least one tone");
  double max_tone = 0.0;
  double max_spur = 0.0;
  for (std::size_t k = 0; k < spec.freq.size(); ++k) {
    const double f = spec.freq[k];
    bool protected_bin = (f < guard_hz);  // exclude DC/near-DC drift
    for (double t : tones) {
      if (std::abs(f - t) <= guard_hz) {
        protected_bin = true;
        break;
      }
    }
    if (protected_bin) {
      max_tone = std::max(max_tone, spec.amplitude[k]);
    } else {
      max_spur = std::max(max_spur, spec.amplitude[k]);
    }
  }
  if (max_spur == 0.0) return std::numeric_limits<double>::infinity();
  return max_tone / max_spur;
}

}  // namespace sw::fft
