#include "fft/fft.h"

#include <cmath>

#include "util/constants.h"
#include "util/error.h"

namespace sw::fft {

namespace {

using sw::util::kPi;

// Iterative radix-2 Cooley-Tukey, decimation in time. data.size() must be a
// power of two. sign = -1 forward, +1 inverse (no normalisation here).
void fft_pow2(std::vector<Complex>& data, int sign) {
  const std::size_t n = data.size();
  if (n < 2) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = static_cast<double>(sign) * 2.0 * kPi /
                       static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein chirp-z: expresses an arbitrary-N DFT as a circular convolution
// of chirp-modulated sequences, evaluated with power-of-two FFTs.
void fft_bluestein(std::vector<Complex>& data, int sign) {
  const std::size_t n = data.size();
  const std::size_t m = next_pow2(2 * n + 1);

  // Chirp w[k] = exp(sign * i * pi * k^2 / n). Compute k^2 mod 2n to keep the
  // argument small and accurate for large k.
  std::vector<Complex> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double ang = static_cast<double>(sign) * kPi *
                       static_cast<double>(k2) / static_cast<double>(n);
    w[k] = Complex(std::cos(ang), std::sin(ang));
  }

  std::vector<Complex> a(m, Complex(0, 0));
  std::vector<Complex> b(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * w[k];
  b[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(w[k]);
  }

  fft_pow2(a, -1);
  fft_pow2(b, -1);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2(a, +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) data[k] = a[k] * inv_m * w[k];
}

void fft_dispatch(std::vector<Complex>& data, int sign) {
  if (data.empty()) return;
  if (is_pow2(data.size())) {
    fft_pow2(data, sign);
  } else {
    fft_bluestein(data, sign);
  }
}

}  // namespace

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<Complex>& data) { fft_dispatch(data, -1); }

void ifft(std::vector<Complex>& data) {
  fft_dispatch(data, +1);
  const double inv_n = data.empty() ? 1.0 : 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v *= inv_n;
}

std::vector<Complex> fft_real(const std::vector<double>& data) {
  std::vector<Complex> c(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) c[i] = Complex(data[i], 0.0);
  fft(c);
  return c;
}

std::vector<Complex> circular_convolve(std::vector<Complex> a,
                                       std::vector<Complex> b) {
  SW_REQUIRE(a.size() == b.size(), "circular convolution needs equal sizes");
  fft(a);
  fft(b);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= b[i];
  ifft(a);
  return a;
}

std::vector<double> linear_convolve(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  SW_REQUIRE(!a.empty() && !b.empty(), "empty input");
  const std::size_t out_n = a.size() + b.size() - 1;
  const std::size_t m = next_pow2(out_n);
  std::vector<Complex> fa(m, Complex(0, 0));
  std::vector<Complex> fb(m, Complex(0, 0));
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex(a[i], 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex(b[i], 0.0);
  fft(fa);
  fft(fb);
  for (std::size_t i = 0; i < m; ++i) fa[i] *= fb[i];
  ifft(fa);
  std::vector<double> out(out_n);
  for (std::size_t i = 0; i < out_n; ++i) out[i] = fa[i].real();
  return out;
}

}  // namespace sw::fft
