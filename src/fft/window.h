// Spectral window functions for leakage control in detector readout.
#pragma once

#include <string>
#include <vector>

namespace sw::fft {

enum class WindowKind {
  kRect,      ///< no tapering
  kHann,      ///< good general-purpose leakage suppression
  kHamming,   ///< slightly narrower main lobe than Hann
  kBlackman,  ///< stronger sidelobe suppression
  kFlatTop,   ///< amplitude-accurate readout (wide main lobe)
};

/// Window samples of length n (periodic convention, suited for FFT use).
std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Coherent gain: mean of the window samples. Divide spectra by this to
/// recover amplitude-correct peak heights.
double coherent_gain(WindowKind kind, std::size_t n);

/// Parse a window name ("hann", "rect", ...); throws on unknown names.
WindowKind window_from_name(const std::string& name);

/// Printable name.
const char* window_name(WindowKind kind);

}  // namespace sw::fft
