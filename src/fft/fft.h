// Self-contained FFT library.
//
// Provides an iterative radix-2 Cooley-Tukey transform for power-of-two sizes
// and Bluestein's chirp-z algorithm for arbitrary sizes, so callers never
// need to pad. Used both for output-spectrum analysis (paper Fig. 3) and the
// Newell demag-tensor convolution in the micromagnetic solver.
#pragma once

#include <complex>
#include <vector>

namespace sw::fft {

using Complex = std::complex<double>;

/// In-place forward FFT, any N >= 1 (radix-2 fast path, Bluestein otherwise).
/// Convention: X[k] = sum_n x[n] exp(-2*pi*i*n*k/N), no normalisation.
void fft(std::vector<Complex>& data);

/// In-place inverse FFT including the 1/N normalisation.
void ifft(std::vector<Complex>& data);

/// Forward FFT of a real signal; returns the full complex spectrum (size N).
std::vector<Complex> fft_real(const std::vector<double>& data);

/// Circular convolution of two equal-length sequences via FFT.
std::vector<Complex> circular_convolve(std::vector<Complex> a,
                                       std::vector<Complex> b);

/// Linear convolution of two real sequences (output size |a|+|b|-1).
std::vector<double> linear_convolve(const std::vector<double>& a,
                                    const std::vector<double>& b);

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

}  // namespace sw::fft
