// Amplitude-spectrum analysis of sampled signals (paper Fig. 3 top panel).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fft/window.h"

namespace sw::fft {

/// One-sided amplitude spectrum of a real signal.
struct Spectrum {
  std::vector<double> freq;       ///< bin frequencies [Hz], size N/2+1
  std::vector<double> amplitude;  ///< amplitude-normalised |X_k|
  double resolution = 0.0;        ///< bin spacing [Hz]
};

/// Compute the one-sided amplitude spectrum. Amplitudes are normalised such
/// that a full-scale tone of amplitude A bin-aligned at f appears with height
/// A (window coherent gain compensated).
Spectrum amplitude_spectrum(std::span<const double> signal, double sample_rate,
                            WindowKind window = WindowKind::kHann);

/// A detected spectral peak.
struct Peak {
  double freq = 0.0;
  double amplitude = 0.0;
  std::size_t bin = 0;
};

/// Local maxima above `min_amplitude`, sorted by descending amplitude.
std::vector<Peak> find_peaks(const Spectrum& spec, double min_amplitude);

/// Ratio (linear) between the largest spectral content inside protected bands
/// around `tones` and the largest content outside all of them; a spur-free
/// measure of inter-frequency crosstalk. `guard_hz` is the half-width of each
/// protected band. Returns +inf when nothing is outside the bands.
double tone_to_spur_ratio(const Spectrum& spec, std::span<const double> tones,
                          double guard_hz);

}  // namespace sw::fft
