// Networked front end over serve::EvaluatorService.
//
// One EvalServer owns a listening socket (TCP or unix-domain) and serves
// the sharded-sweep wire format to remote clients: each connection is a
// sequence of request frames answered in order with response frames, so a
// coordinator talks to a worker exactly as it would write/read frame
// files, just over a stream. Service-level overload keeps its admission
// semantics across the network boundary — a kShed rejection is answered
// with a typed kOverload error message on the same connection (the client
// can back off and retry), never by dropping the connection — and
// kMetricsRequest messages are answered with the plain-text metrics
// document (service stats, latency percentiles, transport counters), so
// an operator can scrape a live worker with a three-line client.
//
// Threading: one accept thread plus one handler thread per connection,
// each request handled synchronously (decode, submit, wait, respond).
// Concurrency across connections comes from the service's worker pool;
// clients that want pipelined throughput open several connections. Every
// blocking wait is tick-bounded so stop() completes within one frame
// timeout even with live, silent or half-dead peers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/gate_design.h"
#include "net/metrics.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "serve/service.h"

namespace sw::net {

struct EvalServerOptions {
  /// Per-frame read/write budget once a transfer has started; a peer that
  /// stalls a frame past this is dropped.
  std::chrono::milliseconds frame_timeout{10000};
  /// Idle tick between frames/accepts: the cadence at which serving loops
  /// notice stop() and shutdown requests.
  std::chrono::milliseconds poll_tick{100};
  /// Connections beyond this are answered with a kOverload error and
  /// closed instead of admitted.
  std::size_t max_connections = 64;
  /// Designed layouts cached by wire hash (each verified against its
  /// request's spec); sized like the service plan cache it feeds.
  std::size_t layout_cache_capacity = 32;
};

class EvalServer {
 public:
  /// Maps a wire GateSpec to the layout the service evaluates; usually
  /// InlineGateDesigner::design against the same dispersion model the
  /// service was built on. Must be callable from handler threads.
  using Designer =
      std::function<sw::core::GateLayout(const sw::core::GateSpec&)>;

  /// Binds and starts serving immediately. `service` must outlive the
  /// server. Throws on bind/listen failure (port taken, bad path).
  EvalServer(sw::serve::EvaluatorService& service, Designer designer,
             const Endpoint& endpoint, EvalServerOptions options = {});

  /// stop()s, so destruction joins every thread and closes every socket.
  ~EvalServer();

  EvalServer(const EvalServer&) = delete;
  EvalServer& operator=(const EvalServer&) = delete;

  /// Bound address with any ephemeral TCP port resolved — advertise this.
  const Endpoint& local_endpoint() const {
    return listener_.local_endpoint();
  }

  ServerCounters counters() const;

  /// The metrics document a kMetricsRequest receives (service section +
  /// transport section).
  std::string metrics_text() const;

  /// True once any client sent kShutdown (sticky). The server keeps
  /// serving — the owner decides when to stop(); the sweep worker example
  /// waits on this to exit cleanly.
  bool shutdown_requested() const;

  /// Block until shutdown_requested() or stop(); returns
  /// shutdown_requested(). `timeout` <= 0 waits indefinitely.
  bool wait_shutdown(std::chrono::milliseconds timeout =
                         std::chrono::milliseconds(0)) const;

  /// Stop accepting, unblock and join every connection handler, close all
  /// sockets. Idempotent; bounded by one frame_timeout.
  void stop();

 private:
  struct ConnSlot {
    Connection conn;
    std::thread thread;
    bool done = false;  ///< handler exited; accept loop may reap (mutex_)
  };

  void accept_loop();
  void serve_connection(ConnSlot* slot);
  /// Handle one admitted request frame; returns the reply message.
  Message handle_frame(const Message& message);
  sw::core::GateLayout layout_for(const sw::serve::SweepFrame& request);
  void reap_finished_locked();

  sw::serve::EvaluatorService* service_;
  Designer designer_;
  EvalServerOptions options_;
  Listener listener_;

  mutable std::mutex mutex_;
  mutable std::condition_variable shutdown_cv_;
  bool stop_ = false;
  bool shutdown_requested_ = false;
  std::list<ConnSlot> connections_;
  ServerCounters counters_;
  /// Wire hash -> designed layout, each entry verified against the spec
  /// that produced it (a 64-bit collision therefore cannot alias two
  /// specs: hits re-compare the full GateSpec).
  std::unordered_map<std::uint64_t, sw::core::GateLayout> layouts_;

  std::thread accept_thread_;
};

}  // namespace sw::net
