// Networked front end over serve::EvaluatorService.
//
// One EvalServer owns a listening socket (TCP or unix-domain) and serves
// the sharded-sweep wire format to remote clients. Since PR 6 the server
// is an epoll-based event core rather than a thread per connection:
//
//  - One event thread owns every socket. Connections are non-blocking;
//    reads and writes run only when epoll reports readiness, into
//    per-connection buffers that are reused across requests (no per-frame
//    allocation in steady state).
//  - Requests are *pipelined*: a client may send any number of tagged
//    frames without waiting; evaluations run concurrently on the service
//    pool via submit_async and each reply carries its request's tag, so
//    completions are written in whatever order the evaluations finish.
//  - Back-pressure, not shedding: when a connection reaches
//    max_inflight_per_connection submitted-but-unanswered frames (or its
//    outgoing buffer backs up past max_pending_write_bytes), the server
//    simply stops *reading* that connection until it drains — TCP flow
//    control pushes back to the client, and no admitted frame is ever
//    dropped. Service-level overload keeps its typed semantics: a kShed
//    rejection is answered with a kOverload error message carrying the
//    request's tag, never by dropping the connection.
//  - kMetricsRequest messages are answered with the plain-text metrics
//    document (service stats, latency percentiles + histograms, transport
//    counters); kTraceRequest with the service's trace ring as Chrome
//    trace-event JSON (obs::trace_json) — each served request carries
//    wire-decode, admission, plan, kernel, wire-encode and write-queue
//    spans, recorded once its reply reaches the socket.
//  - With `registry` set, a heartbeat thread periodically registers a
//    WorkerAdvert (endpoint, kernel, precision, measured words/s) with a
//    RegistryServer so coordinators can discover this worker instead of
//    being handed a static endpoint list.
//
// Connections past max_connections receive a typed kOverload refusal and
// are closed — written non-blockingly from the event thread, so an
// unreadable refused peer can never stall accepting or stop().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/gate_design.h"
#include "net/metrics.h"
#include "net/protocol.h"
#include "net/registry.h"
#include "net/socket.h"
#include "serve/service.h"

namespace sw::net {

struct EvalServerOptions {
  /// Budget for a *stalled* transfer: a connection with pending work
  /// (half-read frame, unflushed replies, an unread refusal) that makes no
  /// progress for this long is dropped. Idle connections are not reaped.
  std::chrono::milliseconds frame_timeout{10000};
  /// Event-loop wake cadence when nothing is ready: bounds how fast the
  /// loop notices stop() and runs the stall reaper.
  std::chrono::milliseconds poll_tick{100};
  /// Connections beyond this are answered with a kOverload error and
  /// closed instead of admitted.
  std::size_t max_connections = 64;
  /// Pipelining cap: submitted-but-unanswered frames per connection before
  /// the server pauses reading it. Keep max_connections x this within the
  /// service's admission queue budget so admission never blocks the event
  /// thread.
  std::size_t max_inflight_per_connection = 16;
  /// Outgoing-buffer cap per connection before reads are paused (a client
  /// that sends but never reads otherwise grows the reply buffer without
  /// bound).
  std::size_t max_pending_write_bytes = 4u << 20;
  /// Designed layouts cached by wire hash (each verified against its
  /// request's spec); sized like the service plan cache it feeds.
  std::size_t layout_cache_capacity = 32;
  /// When set, a heartbeat thread registers this worker with the registry
  /// at this endpoint every `heartbeat_interval`.
  std::optional<Endpoint> registry;
  std::chrono::milliseconds heartbeat_interval{2000};
  /// Throughput hint advertised to the registry (words/s; 0 = unmeasured).
  double advertised_words_per_second = 0.0;
  /// Endpoint string advertised to the registry; empty advertises
  /// local_endpoint() (override when serving behind NAT or on 0.0.0.0).
  std::string advertise;
  /// Newest wire frame version this worker accepts. The default serves
  /// both single-gate (v2) and program (v3) requests; pinning it to
  /// sw::serve::kWireVersion emulates a pre-program worker, which answers
  /// v3 frames with a typed kUnsupportedVersion error instead of treating
  /// them as corruption — the negotiation path version-mixed fleets rely
  /// on (and what the tests exercise).
  std::uint16_t max_wire_version = sw::serve::kWireVersionMax;
};

class EvalServer {
 public:
  /// Maps a wire GateSpec to the layout the service evaluates; usually
  /// InlineGateDesigner::design against the same dispersion model the
  /// service was built on. Called from the event thread.
  using Designer =
      std::function<sw::core::GateLayout(const sw::core::GateSpec&)>;

  /// Binds and starts serving immediately. `service` must outlive the
  /// server. Throws on bind/listen failure (port taken, bad path).
  EvalServer(sw::serve::EvaluatorService& service, Designer designer,
             const Endpoint& endpoint, EvalServerOptions options = {});

  /// stop()s, so destruction joins every thread and closes every socket.
  ~EvalServer();

  EvalServer(const EvalServer&) = delete;
  EvalServer& operator=(const EvalServer&) = delete;

  /// Bound address with any ephemeral TCP port resolved — advertise this.
  const Endpoint& local_endpoint() const {
    return listener_.local_endpoint();
  }

  ServerCounters counters() const;

  /// The metrics document a kMetricsRequest receives (service section +
  /// transport section).
  std::string metrics_text() const;

  /// The Chrome trace-event JSON a kTraceRequest receives: the service
  /// trace ring (wire decode, admission, plan, kernel, wire encode,
  /// write-queue spans per request) rendered by obs::trace_json.
  std::string trace_text() const;

  /// True once any client sent kShutdown (sticky). The server keeps
  /// serving — the owner decides when to stop(); the sweep worker example
  /// waits on this to exit cleanly.
  bool shutdown_requested() const;

  /// Block until shutdown_requested() or stop(); returns
  /// shutdown_requested(). `timeout` <= 0 waits indefinitely.
  bool wait_shutdown(std::chrono::milliseconds timeout =
                         std::chrono::milliseconds(0)) const;

  /// Stop accepting, wake the event thread, join every thread, close all
  /// sockets. Idempotent; in-flight evaluations settle harmlessly into the
  /// (kept-alive) completion queue.
  void stop();

 private:
  struct Conn;
  struct CompletionQueue;

  void event_loop();
  void heartbeat_loop();
  void handle_accept();
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void drain_completions();
  void process_buffered(Conn& conn);
  void handle_message(Conn& conn, const MessageHeader& header,
                      std::span<const std::uint8_t> payload);
  void handle_frame(Conn& conn, std::uint64_t tag,
                    std::span<const std::uint8_t> payload);
  void append_reply(Conn& conn, const Message& message);
  void update_epoll(Conn& conn);
  void close_conn(std::uint64_t conn_id);
  void reap_stalled();
  sw::core::GateLayout layout_for(const sw::serve::SweepFrame& request);

  sw::serve::EvaluatorService* service_;
  Designer designer_;
  EvalServerOptions options_;
  Listener listener_;

  int epoll_fd_ = -1;
  std::shared_ptr<CompletionQueue> completions_;
  std::uint64_t next_conn_id_ = 1;
  /// Owned by the event thread exclusively; no lock.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::chrono::steady_clock::time_point last_reap_;

  mutable std::mutex mutex_;
  mutable std::condition_variable shutdown_cv_;
  bool stop_ = false;
  bool shutdown_requested_ = false;
  ServerCounters counters_;
  /// Wire hash -> designed layout, each entry verified against the spec
  /// that produced it (a 64-bit collision therefore cannot alias two
  /// specs: hits re-compare the full GateSpec). Event-thread only, but
  /// kept under mutex_ for counters()' consistency with the old API.
  std::unordered_map<std::uint64_t, sw::core::GateLayout> layouts_;

  std::thread event_thread_;
  std::thread heartbeat_thread_;
};

}  // namespace sw::net
