// Message envelope for the networked serving protocol.
//
// The socket transport moves serve::wire sweep frames *unchanged*; what a
// raw stream needs on top is a way to know how many bytes the next unit
// occupies and a way to carry the non-frame traffic a server produces —
// typed error replies (admission shed maps to an error message, not a
// dropped connection), metrics requests/responses and a remote-shutdown
// signal. One fixed 24-byte header does all of that:
//
//   offset  size  field
//        0     4  magic "SWN1"
//        4     2  version (kNetVersion)
//        6     2  kind (MessageKind)
//        8     8  payload_size (bytes)
//       16     8  checksum (chunked FNV-1a 64 over the payload)
//       24     …  payload
//
// Payloads by kind: kFrame carries one encoded serve::wire frame (which
// keeps its own end-to-end checksum); kError carries a u16 ErrorCode plus
// UTF-8 text; kMetricsResponse carries plain text; kMetricsRequest and
// kShutdown are empty. The envelope checksum uses the chunked FNV variant
// (one multiply per 8 bytes) so the per-word envelope cost stays far below
// the evaluation kernels it feeds.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/socket.h"
#include "serve/wire.h"

namespace sw::net {

inline constexpr std::uint32_t kNetMagic = 0x314E5753u;  // "SWN1" on the wire
inline constexpr std::uint16_t kNetVersion = 1;
inline constexpr std::size_t kMessageHeaderSize = 24;
/// Caps a corrupt length prefix before it can drive a huge allocation.
inline constexpr std::uint64_t kMaxMessagePayload = std::uint64_t{1} << 30;

enum class MessageKind : std::uint16_t {
  kFrame = 1,           ///< one encoded serve::wire sweep frame
  kError = 2,           ///< ErrorCode + text, answering a failed request
  kMetricsRequest = 3,  ///< empty; asks for a metrics snapshot
  kMetricsResponse = 4, ///< plain-text metrics
  kShutdown = 5,        ///< empty; asks the server to stop serving
};

enum class ErrorCode : std::uint16_t {
  kOverload = 1,    ///< admission control shed the request (retryable)
  kBadRequest = 2,  ///< malformed frame, hash mismatch, bad shape
  kInternal = 3,    ///< evaluation failed server-side
};

struct Message {
  MessageKind kind = MessageKind::kFrame;
  std::vector<std::uint8_t> payload;
};

/// Error payload, decoded: the typed code plus human-readable context.
struct ErrorInfo {
  ErrorCode code = ErrorCode::kInternal;
  std::string text;
};

/// Thrown by callers that receive a kError message where they expected a
/// frame; carries the typed code so overloads are distinguishable from
/// hard failures.
class RemoteError : public sw::util::Error {
 public:
  RemoteError(ErrorCode code, const std::string& what)
      : Error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

std::vector<std::uint8_t> encode_message(const Message& message);

Message make_frame_message(const sw::serve::SweepFrame& frame);
Message make_error_message(ErrorCode code, std::string_view text);
Message make_text_message(MessageKind kind, std::string_view text);

/// Decode the payload of a kError / kMetricsResponse message; throws
/// sw::util::Error on a malformed payload or wrong kind.
ErrorInfo decode_error_message(const Message& message);
std::string decode_text_message(const Message& message);

/// Send one message within `timeout`.
void send_message(Connection& connection, const Message& message,
                  std::chrono::milliseconds timeout);

/// Receive one message within `timeout`: reads the fixed header, validates
/// magic/version/kind/size, then reads and checksums the payload. Returns
/// nullopt when the peer closed cleanly before the first header byte.
/// Throws TimeoutError on deadline and sw::util::Error on a malformed or
/// corrupt envelope (after which the stream is unsynchronised and the
/// connection should be dropped).
std::optional<Message> recv_message(Connection& connection,
                                    std::chrono::milliseconds timeout);

/// recv_message + the frame path in one step: expects kFrame and decodes
/// the wire frame; a kError message is rethrown as RemoteError.
std::optional<sw::serve::SweepFrame> recv_frame(
    Connection& connection, std::chrono::milliseconds timeout);

}  // namespace sw::net
