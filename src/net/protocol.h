// Message envelope for the networked serving protocol.
//
// The socket transport moves serve::wire sweep frames *unchanged*; what a
// raw stream needs on top is a way to know how many bytes the next unit
// occupies, a request tag so replies can complete out of order on a
// pipelined connection, and a way to carry the non-frame traffic a server
// produces — typed error replies (admission shed maps to an error message,
// not a dropped connection), metrics requests/responses, worker-registry
// traffic and a remote-shutdown signal. One fixed 32-byte header does all
// of that:
//
//   offset  size  field
//        0     4  magic "SWN1"
//        4     2  version (kNetVersion)
//        6     2  kind (MessageKind)
//        8     8  tag (echoed verbatim in the reply; 0 when unused)
//       16     8  payload_size (bytes)
//       24     8  checksum (chunked FNV-1a 64, see below)
//       32     …  payload
//
// Version history: v1 had a 24-byte tagless header and one-in-flight
// connections; v2 (current) added the tag for pipelining. Both ends of
// every transport in this repo are built from the same tree, so decoders
// only accept the current version.
//
// Payloads by kind: kFrame carries one encoded serve::wire frame; kError
// carries a u16 ErrorCode plus UTF-8 text; kMetricsResponse carries plain
// text and kTraceResponse a Chrome trace-event JSON document; kRegister /
// kRegistryResponse carry encoded worker adverts (net/registry.h);
// kMetricsRequest, kRegistryRequest, kTraceRequest and kShutdown are
// empty. The checksum covers the payload — except for kFrame, where it
// covers only the payload's first min(64, payload_size) bytes: a wire
// frame's body already carries its own end-to-end checksum over spec +
// matrix, so the envelope only needs to protect the frame header it would
// otherwise trust for sizing, and skipping the second full-body pass
// matters on the per-word serving path.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/socket.h"
#include "serve/wire.h"

namespace sw::net {

inline constexpr std::uint32_t kNetMagic = 0x314E5753u;  // "SWN1" on the wire
inline constexpr std::uint16_t kNetVersion = 2;
inline constexpr std::size_t kMessageHeaderSize = 32;
/// Caps a corrupt length prefix before it can drive a huge allocation.
inline constexpr std::uint64_t kMaxMessagePayload = std::uint64_t{1} << 30;
/// Bytes of a kFrame payload covered by the envelope checksum (the wire
/// frame header; the body self-checksums).
inline constexpr std::size_t kFrameChecksumPrefix = 64;

enum class MessageKind : std::uint16_t {
  kFrame = 1,            ///< one encoded serve::wire sweep frame
  kError = 2,            ///< ErrorCode + text, answering a failed request
  kMetricsRequest = 3,   ///< empty; asks for a metrics snapshot
  kMetricsResponse = 4,  ///< plain-text metrics
  kShutdown = 5,         ///< empty; asks the server to stop serving
  kRegister = 6,         ///< worker advert (registration / heartbeat)
  kRegistryRequest = 7,  ///< empty; asks the registry for live workers
  kRegistryResponse = 8, ///< encoded worker advert list
  kTraceRequest = 9,     ///< empty; asks for a trace-ring JSON dump
  kTraceResponse = 10,   ///< Chrome trace-event JSON (obs::trace_json)
};

enum class ErrorCode : std::uint16_t {
  kOverload = 1,    ///< admission control shed the request (retryable)
  kBadRequest = 2,  ///< malformed frame, hash mismatch, bad shape
  kInternal = 3,    ///< evaluation failed server-side
  /// The request's wire frame version exceeds what this worker decodes
  /// (e.g. a v3 program frame sent to a v2-pinned worker). Not retryable
  /// as-is, but negotiable: the client can fall back to v2 requests.
  kUnsupportedVersion = 4,
};

struct Message {
  MessageKind kind = MessageKind::kFrame;
  /// Request tag, echoed verbatim in the reply so a pipelined client can
  /// match out-of-order completions; 0 for untagged (non-pipelined) use.
  std::uint64_t tag = 0;
  std::vector<std::uint8_t> payload;
};

/// A parsed envelope header, before its payload has been read.
struct MessageHeader {
  MessageKind kind = MessageKind::kFrame;
  std::uint64_t tag = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
};

/// Error payload, decoded: the typed code plus human-readable context.
struct ErrorInfo {
  ErrorCode code = ErrorCode::kInternal;
  std::string text;
};

/// Thrown by callers that receive a kError message where they expected a
/// frame; carries the typed code so overloads are distinguishable from
/// hard failures.
class RemoteError : public sw::util::Error {
 public:
  RemoteError(ErrorCode code, const std::string& what)
      : Error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

std::vector<std::uint8_t> encode_message(const Message& message);

/// Append the encoded message to `out` (the reusable-buffer path of the
/// event server; encode_message is a fresh-vector wrapper over this).
void append_message(std::vector<std::uint8_t>& out, const Message& message);

/// Append a complete kFrame message, encoding the wire frame directly into
/// `out` behind the envelope header — no intermediate payload vector. The
/// zero-copy encode path for pipelined clients and the event server.
void append_frame_message(std::vector<std::uint8_t>& out,
                          const sw::serve::SweepFrameView& frame,
                          std::uint64_t tag = 0);

/// Parse and validate one fixed-size envelope header (magic, version,
/// kind, payload cap); throws sw::util::Error on any violation. The
/// event-driven read path, where the payload arrives incrementally.
MessageHeader parse_message_header(std::span<const std::uint8_t> header);

/// Checksum `payload` exactly as the encoder does for `kind` (kFrame
/// covers only the first kFrameChecksumPrefix bytes) and compare; throws
/// on mismatch.
void verify_message_payload(const MessageHeader& header,
                            std::span<const std::uint8_t> payload);

Message make_frame_message(const sw::serve::SweepFrame& frame,
                           std::uint64_t tag = 0);
Message make_error_message(ErrorCode code, std::string_view text,
                           std::uint64_t tag = 0);
Message make_text_message(MessageKind kind, std::string_view text);

/// Decode the payload of a kError / kMetricsResponse message; throws
/// sw::util::Error on a malformed payload or wrong kind.
ErrorInfo decode_error_message(const Message& message);
std::string decode_text_message(const Message& message);

/// Send one message within `timeout`.
void send_message(Connection& connection, const Message& message,
                  std::chrono::milliseconds timeout);

/// Receive one message within `timeout`: reads the fixed header, validates
/// magic/version/kind/size, then reads and checksums the payload. Returns
/// nullopt when the peer closed cleanly before the first header byte.
/// Throws TimeoutError on deadline and sw::util::Error on a malformed or
/// corrupt envelope (after which the stream is unsynchronised and the
/// connection should be dropped).
std::optional<Message> recv_message(Connection& connection,
                                    std::chrono::milliseconds timeout);

/// recv_message + the frame path in one step: expects kFrame and decodes
/// the wire frame; a kError message is rethrown as RemoteError.
std::optional<sw::serve::SweepFrame> recv_frame(
    Connection& connection, std::chrono::milliseconds timeout);

/// One-shot text scrape: connect to `server`, send an empty `kind` message
/// (kMetricsRequest or kTraceRequest) and return the decoded text reply —
/// the whole client side of a metrics scrape or a trace dump. Throws
/// RemoteError on a kError reply.
std::string fetch_text(const Endpoint& server, MessageKind kind,
                       std::chrono::milliseconds timeout);

}  // namespace sw::net
