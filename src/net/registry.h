// Worker registry: service discovery for the sharded-sweep serving fleet.
//
// A sweep coordinator used to take its worker list on the command line,
// which breaks down as soon as workers come and go (restarts, autoscaling,
// multi-host launches racing the coordinator). The registry is the
// rendezvous point: each EvalServer registers itself with a WorkerAdvert —
// its serving endpoint plus the capability facts a scheduler cares about
// (evaluation kernel, precision, measured words/s) — and re-sends the
// advert as a heartbeat. The registry holds adverts in memory with a TTL;
// an entry whose heartbeats stop is dropped at the next snapshot, so a
// SIGKILLed worker disappears without any explicit deregistration.
// Coordinators ask for a snapshot (kRegistryRequest) and connect to the
// endpoints it lists.
//
// Advert list payload (kRegister carries exactly one, kRegistryResponse
// any number; integers little-endian, strings length-prefixed):
//
//   u64 count, then per advert:
//     u64 len + bytes  endpoint   ("tcp:HOST:PORT" / "unix:PATH")
//     u64 len + bytes  kernel     ("scalar" | "avx2" | …)
//     u64 len + bytes  precision  ("f64" | "f32")
//     f64              words_per_second (0 = unmeasured)
//
// The registry is deliberately thread-per-connection and blocking: its
// traffic is a few frames per worker per TTL, so the event-driven core of
// eval_server would be machinery without a workload here.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/metrics.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace sw::net {

/// One worker's self-description, as registered and as served back to
/// coordinators.
struct WorkerAdvert {
  std::string endpoint;   ///< the worker's serving address, parseable
  std::string kernel;     ///< evaluation kernel (active_kernel_name())
  std::string precision;  ///< resolved precision of the service's plans
  double words_per_second = 0.0;  ///< measured throughput hint; 0 unknown

  friend bool operator==(const WorkerAdvert&, const WorkerAdvert&) = default;
};

/// Codec for kRegister (exactly one advert) and kRegistryResponse (any
/// number) payloads; decoders throw sw::util::Error on malformed input.
std::vector<std::uint8_t> encode_adverts(
    const std::vector<WorkerAdvert>& adverts);
std::vector<WorkerAdvert> decode_adverts(
    std::span<const std::uint8_t> payload);

struct RegistryOptions {
  /// An advert not refreshed within the TTL is dropped at the next
  /// snapshot. Heartbeat senders should refresh at ttl / 3 or faster.
  std::chrono::milliseconds ttl{10'000};
  /// Accept-loop wake cadence (stop() latency bound).
  std::chrono::milliseconds poll_tick{50};
  /// Per-message IO budget for register/snapshot exchanges.
  std::chrono::milliseconds io_timeout{5'000};
};

/// In-memory TTL registry server. Serves kRegister (upsert + empty
/// kRegister ack), kRegistryRequest (kRegistryResponse with the live
/// adverts), kMetricsRequest (plain-text sw_registry_* health counters)
/// and kShutdown.
class RegistryServer {
 public:
  explicit RegistryServer(const Endpoint& endpoint,
                          RegistryOptions options = {});
  ~RegistryServer();

  RegistryServer(const RegistryServer&) = delete;
  RegistryServer& operator=(const RegistryServer&) = delete;

  const Endpoint& local_endpoint() const { return listener_.local_endpoint(); }

  /// The live adverts (expired entries pruned), keyed order by endpoint so
  /// snapshots are deterministic.
  std::vector<WorkerAdvert> snapshot();

  /// Registry-health counters. Prunes expired adverts first (like
  /// snapshot()), so live_adverts and oldest_advert_age_s describe only
  /// entries a coordinator could actually discover.
  RegistryCounters counters();

  /// The text document a kMetricsRequest receives (sw_registry_* lines).
  std::string metrics_text();

  /// Block until a kShutdown message arrives or `max_wait` elapses
  /// (`max_wait` <= 0 waits indefinitely); true when shutdown was
  /// requested.
  bool wait_shutdown(std::chrono::milliseconds max_wait);

  void stop();

 private:
  void accept_loop();
  void serve_connection(Connection connection);

  RegistryOptions options_;
  Listener listener_;

  std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  struct Entry {
    WorkerAdvert advert;
    std::chrono::steady_clock::time_point last_seen;
  };
  std::map<std::string, Entry> entries_;  ///< keyed by advert endpoint
  std::uint64_t upserts_ = 0;
  std::uint64_t expirations_ = 0;
  std::uint64_t registry_requests_ = 0;
  std::uint64_t metrics_requests_ = 0;
  std::vector<std::thread> threads_;
  std::thread accept_thread_;
};

/// Register `advert` with the registry at `registry`: connect, send one
/// kRegister, await the ack. One call per heartbeat; cheap enough that
/// callers reconnect each time (the registry is not on the serving path).
void register_worker(const Endpoint& registry, const WorkerAdvert& advert,
                     std::chrono::milliseconds timeout);

/// Fetch the live adverts from the registry at `registry`.
std::vector<WorkerAdvert> fetch_registry(const Endpoint& registry,
                                         std::chrono::milliseconds timeout);

}  // namespace sw::net
