#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <thread>
#include <utility>

namespace sw::net {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_after(std::chrono::milliseconds timeout) {
  return Clock::now() + timeout;
}

/// Milliseconds left until `deadline`, clamped to [0, INT_MAX] for poll(2).
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > std::numeric_limits<int>::max()) {
    return std::numeric_limits<int>::max();
  }
  return static_cast<int>(left.count());
}

/// Wait for `events` on `fd`; false when the deadline passes first.
/// Spurious wakeups re-poll against the same deadline.
bool poll_until(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, remaining_ms(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw sw::util::Error(std::string("poll failed: ") +
                            std::strerror(errno));
    }
    if (rc == 0) return false;
    // Error/hangup conditions still count as "ready": the subsequent
    // send/recv surfaces the precise failure.
    return true;
  }
}

std::string errno_text() { return std::strerror(errno); }

void set_nodelay(int fd) {
  // Best-effort: meaningless (and failing) on unix-domain sockets.
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SW_REQUIRE(!path.empty() && path.size() < sizeof(addr.sun_path),
             "unix socket path empty or longer than sockaddr_un allows: " +
                 path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Resolve a TCP host/port to the first usable IPv4/IPv6 address.
struct ResolvedAddr {
  sockaddr_storage storage{};
  socklen_t len = 0;
  int family = AF_INET;
};

ResolvedAddr resolve_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* list = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &list);
  SW_REQUIRE(rc == 0 && list != nullptr,
             "cannot resolve tcp endpoint " + host + ":" + service + ": " +
                 (rc != 0 ? ::gai_strerror(rc) : "no addresses"));
  ResolvedAddr out;
  std::memcpy(&out.storage, list->ai_addr, list->ai_addrlen);
  out.len = static_cast<socklen_t>(list->ai_addrlen);
  out.family = list->ai_family;
  ::freeaddrinfo(list);
  return out;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& text) {
  Endpoint ep;
  if (text.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = text.substr(5);
    SW_REQUIRE(!ep.path.empty(), "unix endpoint needs a path: " + text);
    return ep;
  }
  SW_REQUIRE(text.rfind("tcp:", 0) == 0,
             "endpoint must start with tcp: or unix:, got: " + text);
  const std::string rest = text.substr(4);
  const auto colon = rest.rfind(':');
  SW_REQUIRE(colon != std::string::npos && colon > 0 &&
                 colon + 1 < rest.size(),
             "tcp endpoint must be tcp:HOST:PORT, got: " + text);
  ep.kind = Kind::kTcp;
  ep.host = rest.substr(0, colon);
  const std::string port_text = rest.substr(colon + 1);
  unsigned long port = 0;
  for (const char c : port_text) {
    SW_REQUIRE(c >= '0' && c <= '9',
               "tcp endpoint port must be numeric, got: " + text);
    port = port * 10 + static_cast<unsigned long>(c - '0');
    SW_REQUIRE(port <= 65535, "tcp endpoint port out of range: " + text);
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Connection::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Connection::set_nonblocking(bool enabled) {
  SW_REQUIRE(valid(), "set_nonblocking on an invalid connection");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  SW_REQUIRE(flags >= 0, "fcntl(F_GETFL) failed: " + errno_text());
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  SW_REQUIRE(::fcntl(fd_, F_SETFL, next) == 0,
             "fcntl(F_SETFL) failed: " + errno_text());
}

std::ptrdiff_t Connection::recv_some(std::span<std::uint8_t> bytes) {
  SW_REQUIRE(valid(), "recv on an invalid connection");
  for (;;) {
    const ssize_t n = ::recv(fd_, bytes.data(), bytes.size(), MSG_DONTWAIT);
    if (n >= 0) return static_cast<std::ptrdiff_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw sw::util::Error("recv failed: " + errno_text());
  }
}

std::ptrdiff_t Connection::send_some(std::span<const std::uint8_t> bytes) {
  SW_REQUIRE(valid(), "send on an invalid connection");
  for (;;) {
    const ssize_t n =
        ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0) return static_cast<std::ptrdiff_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw sw::util::Error("send failed: " + errno_text());
  }
}

// send_all/recv_all try the syscall first (MSG_DONTWAIT, so a full/empty
// buffer returns EAGAIN even on a blocking fd) and enter poll(2) only when
// the kernel actually pushed back. Two wins over the old poll-first loop:
// the happy path pays one syscall per transfer instead of two, and EAGAIN
// now explicitly re-polls for readiness against the deadline — the old
// loop's bare `continue` on EAGAIN could spin doing nothing against a
// slow peer until the deadline expired.

void Connection::send_all(std::span<const std::uint8_t> bytes,
                          std::chrono::milliseconds timeout) {
  SW_REQUIRE(valid(), "send on an invalid connection");
  const auto deadline = deadline_after(timeout);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const std::ptrdiff_t n = send_some(bytes.subspan(sent));
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    // Buffer full: block in poll until writable (or the deadline).
    if (!poll_until(fd_, POLLOUT, deadline)) {
      throw TimeoutError("send timed out with " +
                         std::to_string(bytes.size() - sent) +
                         " byte(s) unsent");
    }
  }
}

bool Connection::recv_all(std::span<std::uint8_t> bytes,
                          std::chrono::milliseconds timeout) {
  SW_REQUIRE(valid(), "recv on an invalid connection");
  const auto deadline = deadline_after(timeout);
  std::size_t got = 0;
  while (got < bytes.size()) {
    const std::ptrdiff_t n = recv_some(bytes.subspan(got));
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return false;  // orderly close at a message boundary
      throw sw::util::Error("connection closed mid-message (" +
                            std::to_string(got) + " of " +
                            std::to_string(bytes.size()) + " bytes)");
    }
    // Nothing buffered: block in poll until readable (or the deadline).
    if (!poll_until(fd_, POLLIN, deadline)) {
      throw TimeoutError("recv timed out with " +
                         std::to_string(bytes.size() - got) + " of " +
                         std::to_string(bytes.size()) +
                         " byte(s) outstanding");
    }
  }
  return true;
}

bool Connection::wait_readable(std::chrono::milliseconds timeout) {
  SW_REQUIRE(valid(), "wait_readable on an invalid connection");
  return poll_until(fd_, POLLIN, deadline_after(timeout));
}

Connection Connection::connect(const Endpoint& endpoint,
                               std::chrono::milliseconds timeout) {
  const auto deadline = deadline_after(timeout);
  for (;;) {
    int fd = -1;
    sockaddr_storage storage{};
    socklen_t len = 0;
    if (endpoint.kind == Endpoint::Kind::kUnix) {
      const sockaddr_un addr = unix_addr(endpoint.path);
      fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      SW_REQUIRE(fd >= 0, "cannot create unix socket: " + errno_text());
      std::memcpy(&storage, &addr, sizeof(addr));
      len = sizeof(addr);
    } else {
      const ResolvedAddr addr = resolve_tcp(endpoint.host, endpoint.port);
      fd = ::socket(addr.family, SOCK_STREAM | SOCK_CLOEXEC, 0);
      SW_REQUIRE(fd >= 0, "cannot create tcp socket: " + errno_text());
      storage = addr.storage;
      len = addr.len;
    }
    Connection conn(fd);
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&storage), len);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      if (endpoint.kind == Endpoint::Kind::kTcp) set_nodelay(fd);
      return conn;
    }
    // Not-listening-yet shapes are retried until the deadline so a
    // coordinator may start before its workers finish binding; anything
    // else is a hard error.
    const bool retryable = errno == ECONNREFUSED || errno == ENOENT ||
                           errno == ECONNRESET || errno == EAGAIN;
    if (!retryable) {
      throw sw::util::Error("connect to " + endpoint.to_string() +
                            " failed: " + errno_text());
    }
    conn.close();
    if (remaining_ms(deadline) == 0) {
      throw TimeoutError("connect to " + endpoint.to_string() +
                         " timed out: " + errno_text());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Listener::Listener(const Endpoint& endpoint, int backlog)
    : endpoint_(endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_addr(endpoint.path);
    // A socket file left by a killed process would make bind fail with
    // EADDRINUSE even though nobody is listening.
    ::unlink(endpoint.path.c_str());
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    SW_REQUIRE(fd_ >= 0, "cannot create unix socket: " + errno_text());
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string what = errno_text();
      close();
      throw sw::util::Error("cannot bind " + endpoint.to_string() + ": " +
                            what);
    }
    unlink_path_ = endpoint.path;
  } else {
    const ResolvedAddr addr = resolve_tcp(endpoint.host, endpoint.port);
    fd_ = ::socket(addr.family, SOCK_STREAM | SOCK_CLOEXEC, 0);
    SW_REQUIRE(fd_ >= 0, "cannot create tcp socket: " + errno_text());
    int one = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr.storage),
               addr.len) != 0) {
      const std::string what = errno_text();
      close();
      throw sw::util::Error("cannot bind " + endpoint.to_string() + ": " +
                            what);
    }
    // Resolve an ephemeral port request so callers can advertise the
    // actual address.
    sockaddr_storage bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      if (bound.ss_family == AF_INET) {
        endpoint_.port = ntohs(
            reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        endpoint_.port = ntohs(
            reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
      }
    }
  }
  if (::listen(fd_, backlog) != 0) {
    const std::string what = errno_text();
    close();
    throw sw::util::Error("cannot listen on " + endpoint.to_string() + ": " +
                          what);
  }
}

std::optional<Connection> Listener::accept(
    std::chrono::milliseconds timeout) {
  if (fd_ < 0) return std::nullopt;
  if (!poll_until(fd_, POLLIN, deadline_after(timeout))) return std::nullopt;
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED || errno == EINVAL || errno == EBADF) {
      // EINVAL/EBADF: the listener was closed under us during shutdown.
      return std::nullopt;
    }
    throw sw::util::Error("accept failed: " + errno_text());
  }
  if (endpoint_.kind == Endpoint::Kind::kTcp) set_nodelay(fd);
  return Connection(fd);
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    // Wake any thread parked in accept()'s poll before the descriptor is
    // released: close(2) alone does not interrupt a concurrent poll, and
    // the number could be reused under the sleeping thread.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

}  // namespace sw::net
