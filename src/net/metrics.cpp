#include "net/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "obs/histogram.h"

namespace sw::net {

namespace {

void line_u64(std::string& out, const char* name, std::uint64_t value) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", name, value);
  out += buf;
}

void line_f64(std::string& out, const char* name, double value) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s %.9g\n", name, value);
  out += buf;
}

}  // namespace

std::string render_service_metrics(const sw::serve::ServiceStats& stats) {
  std::string out;
  out.reserve(1024);
  line_u64(out, "sw_serve_requests_submitted", stats.submitted);
  line_u64(out, "sw_serve_requests_completed", stats.completed);
  line_u64(out, "sw_serve_requests_shed", stats.shed);
  line_u64(out, "sw_serve_requests_blocked", stats.blocked);
  line_u64(out, "sw_serve_queued_requests", stats.queued_requests);
  line_u64(out, "sw_serve_inflight_words", stats.inflight_words);
  line_u64(out, "sw_serve_latency_count", stats.latency.count);
  line_f64(out, "sw_serve_latency_p50_seconds", stats.latency.p50_s);
  line_f64(out, "sw_serve_latency_p95_seconds", stats.latency.p95_s);
  line_f64(out, "sw_serve_latency_p99_seconds", stats.latency.p99_s);
  line_f64(out, "sw_serve_latency_mean_seconds", stats.latency.mean_s);
  line_f64(out, "sw_serve_latency_max_seconds", stats.latency.max_s);
  line_u64(out, "sw_serve_plan_cache_hits", stats.cache.hits);
  line_u64(out, "sw_serve_plan_cache_misses", stats.cache.misses);
  line_u64(out, "sw_serve_plan_cache_evictions", stats.cache.evictions);
  line_u64(out, "sw_serve_plan_cache_f32_plans", stats.cache.f32_plans);
  line_u64(out, "sw_serve_plan_cache_f32_fallbacks",
           stats.cache.f32_fallbacks);
  line_u64(out, "sw_serve_plan_cache_block_plans", stats.cache.block_plans);
  line_u64(out, "sw_serve_plan_cache_f32_detectors",
           stats.cache.f32_detectors);
  line_u64(out, "sw_serve_plan_cache_f64_rescue_detectors",
           stats.cache.f64_rescue_detectors);
  // Detector-granularity f32 share across every f32-requested build: 1.0
  // means every detector runs f32, 0.0 none (or no f32 builds yet).
  const double mix_total = static_cast<double>(stats.cache.f32_detectors) +
                           static_cast<double>(stats.cache.f64_rescue_detectors);
  line_f64(out, "sw_serve_f32_detector_ratio",
           mix_total > 0.0
               ? static_cast<double>(stats.cache.f32_detectors) / mix_total
               : 0.0);
  // The phase histograms: full distributions a scraper can rate() and
  // aggregate, next to the windowed percentiles above.
  sw::obs::append_histogram(out, "sw_serve_request_latency_seconds",
                            stats.request_latency);
  sw::obs::append_histogram(out, "sw_serve_admission_wait_seconds",
                            stats.admission_wait);
  sw::obs::append_histogram(out, "sw_serve_queue_wait_seconds",
                            stats.queue_wait);
  sw::obs::append_histogram(out, "sw_serve_kernel_exec_seconds",
                            stats.kernel_exec);
  sw::obs::append_histogram(out, "sw_serve_batch_words", stats.batch_words);
  // Identity flags carry their value in a label, Prometheus-style, so the
  // set of metric names stays fixed across hosts and configurations.
  out += "sw_serve_kernel{name=\"" + stats.kernel + "\"} 1\n";
  out += "sw_serve_precision{name=\"" + stats.precision + "\"} 1\n";
  out += "sw_serve_kernel_info{kernel=\"" + stats.kernel + "\",precision=\"" +
         stats.precision + "\"} 1\n";
  return out;
}

std::string render_server_metrics(const ServerCounters& counters) {
  std::string out;
  out.reserve(256);
  line_u64(out, "sw_net_connections_accepted",
           counters.connections_accepted);
  line_u64(out, "sw_net_connections_refused", counters.connections_refused);
  line_u64(out, "sw_net_connections_active", counters.active_connections);
  line_u64(out, "sw_net_frames_received", counters.frames_received);
  line_u64(out, "sw_net_responses_sent", counters.responses_sent);
  line_u64(out, "sw_net_errors_sent", counters.errors_sent);
  line_u64(out, "sw_net_overloads", counters.overloads);
  line_u64(out, "sw_net_metrics_requests", counters.metrics_requests);
  line_u64(out, "sw_net_trace_requests", counters.trace_requests);
  line_u64(out, "sw_net_backpressure_pauses", counters.backpressure_pauses);
  line_u64(out, "sw_net_rx_bytes_total", counters.bytes_read);
  line_u64(out, "sw_net_tx_bytes_total", counters.bytes_written);
  return out;
}

std::string render_registry_metrics(const RegistryCounters& counters) {
  std::string out;
  out.reserve(256);
  line_u64(out, "sw_registry_upserts", counters.upserts);
  line_u64(out, "sw_registry_expirations", counters.expirations);
  line_u64(out, "sw_registry_requests", counters.registry_requests);
  line_u64(out, "sw_registry_metrics_requests", counters.metrics_requests);
  line_u64(out, "sw_registry_live_adverts", counters.live_adverts);
  line_f64(out, "sw_registry_oldest_advert_age_seconds",
           counters.oldest_advert_age_s);
  return out;
}

}  // namespace sw::net
