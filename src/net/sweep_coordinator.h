// Multi-host sweep coordinator: shard an exhaustive evaluate_bits sweep
// across remote workers, retire shards on result receipt, and re-shard
// stragglers.
//
// The paper's headline workload — all 2^n operand words through an n-bit
// data-parallel gate — is embarrassingly parallel by word offset, so the
// coordinator splits the input matrix into contiguous word-range shards
// and streams them to N workers over the socket transport (one blocking
// request/response per shard per connection, exactly the frame pair the
// file-based PR 2 flow used). Completion is tracked per shard, not per
// worker:
//
//   * a shard is only retired when its response frame arrives and
//     validates (kind, layout hash, word range, channel count);
//   * a shard still in flight past `straggler_deadline` becomes eligible
//     for duplication, and the *fastest currently-idle* worker (most
//     shards completed, ties to the lowest index) claims it — a stalled
//     or SIGSTOPped worker therefore delays the sweep by at most one
//     deadline, and a dead one by nothing at all once its connection
//     errors out;
//   * when both the original and the duplicate eventually answer, the
//     second result is checked bit-for-bit against the first — a
//     divergent duplicate means non-deterministic workers, which for this
//     workload is data corruption, and aborts the sweep rather than
//     letting a coin flip decide the truth table.
//
// Workers that fail (connect failure, stream error, mid-frame stall)
// return their in-flight shard to the pending pool and drop out; the
// sweep aborts only when every worker is gone or the wall deadline
// passes, so CI legs can never hang.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/gate_design.h"
#include "net/socket.h"
#include "obs/trace.h"

namespace sw::net {

struct SweepOptions {
  /// Words per shard; the last shard takes the remainder.
  std::size_t shard_words = 4096;
  /// Budget for each worker connection attempt (retries inside).
  std::chrono::milliseconds connect_timeout{10000};
  /// Per-frame send/receive budget once a transfer has started.
  std::chrono::milliseconds io_timeout{10000};
  /// Cadence at which waiting workers re-check shard state.
  std::chrono::milliseconds poll_tick{50};
  /// Age past which an in-flight shard may be duplicated to an idle
  /// worker.
  std::chrono::milliseconds straggler_deadline{2000};
  /// After the sweep completes, how long a worker still owed a (by then
  /// redundant) response keeps listening so the duplicate can be
  /// dedup-verified instead of abandoned. 0 = abandon immediately.
  std::chrono::milliseconds duplicate_grace{0};
  /// Hard abort on the whole run — bounds every CI invocation.
  std::chrono::milliseconds max_wall{600000};
  /// Send a kShutdown message to each live worker after a successful
  /// sweep (the example workers exit on it).
  bool shutdown_workers = false;
  /// Hold shard distribution until every worker has either connected or
  /// been declared dead (bounded by connect_timeout per worker). Without
  /// the barrier a fast first worker can drain a small sweep before the
  /// others finish connecting, which makes load distribution — and any
  /// test asserting on it — a race against thread start-up.
  bool wait_for_all_workers = true;
  /// When set, every shard assignment records a trace (id = shard index,
  /// track = worker index) with assign/send/wait/retire spans, and each
  /// straggler duplication records a zero-length "reshard" event — so a
  /// sweep becomes a per-worker timeline in Perfetto. Borrowed; must
  /// outlive run().
  sw::obs::TraceRecorder* recorder = nullptr;
};

struct SweepReport {
  std::size_t shards = 0;            ///< shards the sweep was split into
  std::size_t resharded = 0;         ///< duplicate assignments issued
  std::size_t duplicate_results = 0; ///< redundant responses, dedup-verified
  std::size_t overload_retries = 0;  ///< shards shed by a worker and re-queued
  std::size_t dead_workers = 0;      ///< workers lost before completion
  std::vector<std::size_t> shards_per_worker;  ///< completed, by worker index
};

class SweepCoordinator {
 public:
  explicit SweepCoordinator(std::vector<Endpoint> workers,
                            SweepOptions options = {});

  /// Discover workers from a RegistryServer instead of a static list:
  /// poll the registry until at least `min_workers` live adverts are
  /// listed (or `timeout` passes — then throws TimeoutError). Returns the
  /// advertised endpoints in the registry's deterministic order; feed them
  /// to the constructor.
  static std::vector<Endpoint> discover(const Endpoint& registry,
                                        std::size_t min_workers,
                                        std::chrono::milliseconds timeout);

  /// Run the sweep: `matrix` is the row-major num_words x slot_count input
  /// (the evaluate_bits shape for `layout`); returns the merged row-major
  /// num_words x num_channels output, bit-for-bit what a single in-process
  /// evaluator would produce. Throws sw::util::Error when the sweep cannot
  /// complete (all workers lost, wall deadline, divergent duplicate,
  /// geometry mismatch).
  std::vector<std::uint8_t> run(const sw::core::GateLayout& layout,
                                const std::vector<std::uint8_t>& matrix,
                                std::size_t num_words,
                                SweepReport* report = nullptr);

  const std::vector<Endpoint>& workers() const { return workers_; }

 private:
  std::vector<Endpoint> workers_;
  SweepOptions options_;
};

}  // namespace sw::net
