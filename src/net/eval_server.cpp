#include "net/eval_server.h"

#include <optional>
#include <utility>

#include "serve/admission.h"
#include "serve/layout_hash.h"
#include "serve/wire.h"

namespace sw::net {

EvalServer::EvalServer(sw::serve::EvaluatorService& service,
                       Designer designer, const Endpoint& endpoint,
                       EvalServerOptions options)
    : service_(&service),
      designer_(std::move(designer)),
      options_(options),
      listener_(endpoint) {
  SW_REQUIRE(designer_ != nullptr, "EvalServer needs a designer callback");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

EvalServer::~EvalServer() { stop(); }

void EvalServer::accept_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
      reap_finished_locked();
    }
    std::optional<Connection> conn;
    try {
      conn = listener_.accept(options_.poll_tick);
    } catch (const sw::util::Error&) {
      // A transient accept-level failure (fd pressure, netns teardown)
      // must not kill the accept thread; back off one tick and retry.
      std::this_thread::sleep_for(options_.poll_tick);
      continue;
    }
    if (!conn) continue;
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;  // stop() joins us, then closes the new connection
    ++counters_.connections_accepted;
    if (connections_.size() >= options_.max_connections) {
      // Over the connection cap: a typed, retryable refusal beats a
      // silent RST. Short timeout — an unreadable peer is not worth
      // stalling the accept loop for.
      try {
        send_message(*conn,
                     make_error_message(ErrorCode::kOverload,
                                        "connection limit reached"),
                     options_.poll_tick);
      } catch (const sw::util::Error&) {
      }
      ++counters_.errors_sent;
      continue;
    }
    connections_.emplace_back();
    ConnSlot* slot = &connections_.back();
    slot->conn = std::move(*conn);
    slot->thread = std::thread([this, slot] { serve_connection(slot); });
  }
}

void EvalServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done) {
      it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

sw::core::GateLayout EvalServer::layout_for(
    const sw::serve::SweepFrame& request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = layouts_.find(request.layout_hash);
    if (it != layouts_.end() && it->second.spec == *request.spec) {
      return it->second;
    }
  }
  sw::core::GateLayout layout = designer_(*request.spec);
  const std::uint64_t local_hash = sw::serve::hash_layout(layout);
  SW_REQUIRE(local_hash == request.layout_hash,
             "layout hash mismatch: server geometry differs from the "
             "client's");
  std::lock_guard<std::mutex> lock(mutex_);
  if (layouts_.size() >= options_.layout_cache_capacity &&
      layouts_.count(request.layout_hash) == 0) {
    // The layout cache is a small redesign-avoidance map, not an LRU:
    // dropping an arbitrary entry under pressure is fine because misses
    // only cost a redesign, never a wrong answer.
    layouts_.erase(layouts_.begin());
  }
  layouts_.emplace(request.layout_hash, layout);
  return layout;
}

Message EvalServer::handle_frame(const Message& message) {
  bool submitted = false;
  try {
    sw::serve::SweepFrame request = sw::serve::decode_frame(message.payload);
    SW_REQUIRE(request.kind == sw::serve::FrameKind::kRequest &&
                   request.spec.has_value(),
               "server expects request frames carrying a GateSpec");
    const sw::core::GateLayout layout = layout_for(request);
    const std::size_t num_words =
        static_cast<std::size_t>(request.num_words);
    auto future =
        service_->submit(layout, std::move(request.matrix), num_words);
    submitted = true;
    sw::serve::ResultBatch result = future.get();
    request.matrix.clear();  // moved-from; make_response_frame reads meta
    return make_frame_message(sw::serve::make_response_frame(
        request, result.num_channels, std::move(result.bits)));
  } catch (const sw::serve::OverloadError& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.overloads;
    return make_error_message(ErrorCode::kOverload, e.what());
  } catch (const sw::util::Error& e) {
    // Before submit: the client sent something malformed (bad frame,
    // wrong shape, alien geometry). After: the evaluation itself failed.
    return make_error_message(
        submitted ? ErrorCode::kInternal : ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    return make_error_message(ErrorCode::kInternal, e.what());
  }
}

void EvalServer::serve_connection(ConnSlot* slot) {
  Connection& conn = slot->conn;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) break;
    }
    try {
      if (!conn.wait_readable(options_.poll_tick)) continue;
      auto message = recv_message(conn, options_.frame_timeout);
      if (!message) break;  // orderly close
      if (message->kind == MessageKind::kShutdown) {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_requested_ = true;
        shutdown_cv_.notify_all();
        continue;
      }
      Message reply;
      if (message->kind == MessageKind::kMetricsRequest) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++counters_.metrics_requests;
        }
        reply = make_text_message(MessageKind::kMetricsResponse,
                                  metrics_text());
      } else if (message->kind == MessageKind::kFrame) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++counters_.frames_received;
        }
        reply = handle_frame(*message);
      } else {
        // A client has no business sending error/metrics-response kinds;
        // answer once, then drop the connection.
        send_message(conn,
                     make_error_message(ErrorCode::kBadRequest,
                                        "unexpected message kind"),
                     options_.frame_timeout);
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.errors_sent;
        break;
      }
      send_message(conn, reply, options_.frame_timeout);
      std::lock_guard<std::mutex> lock(mutex_);
      if (reply.kind == MessageKind::kError) {
        ++counters_.errors_sent;
      } else if (reply.kind == MessageKind::kFrame) {
        ++counters_.responses_sent;  // metrics replies count separately
      }
    } catch (const sw::util::Error&) {
      // Envelope-level corruption, a mid-frame stall or a vanished peer:
      // the stream is unsynchronised, so the only safe move is to drop
      // the connection. (TimeoutError is a util::Error: a silent peer
      // lands here too, keeping handler threads bounded.)
      break;
    }
  }
  // Close under the lock: stop() walks the slot list calling shutdown()
  // on live connections, and must never race the fd teardown.
  std::lock_guard<std::mutex> lock(mutex_);
  conn.close();
  slot->done = true;
}

ServerCounters EvalServer::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerCounters out = counters_;
  std::size_t active = 0;
  for (const auto& slot : connections_) {
    if (!slot.done) ++active;
  }
  out.active_connections = active;
  return out;
}

std::string EvalServer::metrics_text() const {
  return render_service_metrics(service_->stats()) +
         render_server_metrics(counters());
}

bool EvalServer::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_requested_;
}

bool EvalServer::wait_shutdown(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto ready = [this] { return shutdown_requested_ || stop_; };
  if (timeout.count() <= 0) {
    shutdown_cv_.wait(lock, ready);
  } else {
    shutdown_cv_.wait_for(lock, timeout, ready);
  }
  return shutdown_requested_;
}

void EvalServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Single-owner protocol: repeated stop() calls (explicit stop then
    // destructor) are no-ops; only the first performs the joins.
    if (stop_) return;
    stop_ = true;
    shutdown_cv_.notify_all();
    // Unblock handlers that are mid-recv/send; fds stay valid until each
    // handler closes its own connection on the way out.
    for (auto& slot : connections_) {
      if (!slot.done) slot.conn.shutdown();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  // After the accept loop is gone the connection list is stable.
  for (auto& slot : connections_) {
    if (slot.thread.joinable()) slot.thread.join();
  }
  connections_.clear();
}

}  // namespace sw::net
