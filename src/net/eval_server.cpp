#include "net/eval_server.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/layout_hash.h"
#include "serve/wire.h"
#include "wavesim/kernels/kernel.h"

namespace sw::net {

namespace {

// epoll user-data slots below the first connection id.
constexpr std::uint64_t kListenerSlot = 0;
constexpr std::uint64_t kWakeupSlot = 1;
constexpr std::uint64_t kFirstConnId = 2;

// Read granularity: the full 4096-word request of the throughput bench
// fits in one chunk, so the steady-state read path is one recv per frame.
constexpr std::size_t kReadChunk = 256u << 10;
// Stop reading a connection once this much unparsed input is buffered
// (back-pressure also comes from the in-flight cap; this bounds memory
// against a client that blasts frames faster than they are admitted).
constexpr std::size_t kMaxBufferedRead = 4u << 20;

void set_fd_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  SW_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             std::string("fcntl(O_NONBLOCK) failed: ") + std::strerror(errno));
}

}  // namespace

/// One evaluated request on its way back to the event thread. Carries the
/// response metadata (not the request frame) so the reply can be encoded
/// straight from the service's result bits without ever re-touching the
/// request.
struct Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t tag = 0;
  std::uint64_t layout_hash = 0;
  std::uint64_t word_offset = 0;
  std::uint64_t num_words = 0;
  std::uint64_t num_channels = 0;
  std::vector<std::uint8_t> bits;  ///< result matrix (empty on error)
  /// The request's settled spans (wire decode + service phases); the event
  /// thread appends wire-encode / write-queue spans before recording it.
  sw::obs::TraceContext trace;
  bool failed = false;
  ErrorCode error_code = ErrorCode::kInternal;
  std::string error_text;
};

/// The bridge from service worker threads back to the event thread: a
/// locked vector plus an eventfd wakeup. Held by shared_ptr from the
/// submit_async callbacks, so a completion that lands after stop() still
/// has a live queue to settle into (it is simply never drained).
struct EvalServer::CompletionQueue {
  std::mutex mutex;
  std::vector<Completion> items;
  int event_fd = -1;
  bool open = true;  ///< false after stop(): skip the wakeup write

  CompletionQueue() {
    event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    SW_REQUIRE(event_fd >= 0,
               std::string("eventfd failed: ") + std::strerror(errno));
  }
  ~CompletionQueue() {
    if (event_fd >= 0) ::close(event_fd);
  }

  void push(Completion&& completion) {
    bool wake;
    {
      std::lock_guard<std::mutex> lock(mutex);
      // Coalesce wakeups: items already queued mean a wakeup is already
      // pending (drain swaps the whole vector), so only the transition
      // from empty needs the eventfd write.
      wake = open && items.empty();
      items.push_back(std::move(completion));
    }
    if (wake) {
      const std::uint64_t one = 1;
      (void)!::write(event_fd, &one, sizeof(one));
    }
  }
};

/// Per-connection state, owned exclusively by the event thread. The
/// encode/decode buffers persist across requests: cleared (capacity kept)
/// when drained, so steady-state serving does no per-frame allocation.
struct EvalServer::Conn {
  std::uint64_t id = 0;
  Connection conn;
  std::vector<std::uint8_t> rbuf;  ///< unparsed input; [rpos, end) live
  std::size_t rpos = 0;
  std::vector<std::uint8_t> wbuf;  ///< unflushed output; [wpos, end) live
  std::size_t wpos = 0;
  std::size_t inflight = 0;  ///< submitted to the service, not yet replied
  std::uint32_t armed_events = 0;  ///< epoll mask currently registered
  bool admitted = false;  ///< counted against max_connections
  bool paused = false;    ///< reads stopped by back-pressure
  /// No further socket reads; settle in-flight work, flush, then close.
  /// Buffered complete frames are still served (a pipelining client may
  /// half-close after its last request) unless discard_input is also set.
  bool draining = false;
  bool discard_input = false;  ///< protocol violation: drop buffered input
  bool peer_eof = false;
  std::chrono::steady_clock::time_point last_progress;
  /// Bytes ever flushed to the socket; with pending_write() this gives the
  /// queue position a newly appended reply will have drained at.
  std::uint64_t total_flushed = 0;
  /// Traces whose reply sits in wbuf, waiting for its last byte to reach
  /// the socket (flush_mark = total_flushed at which the write-queue span
  /// closes and the trace records).
  struct PendingTrace {
    std::uint64_t flush_mark = 0;
    std::size_t slot = sw::obs::TraceContext::kNoSlot;
    sw::obs::TraceContext trace;
  };
  std::deque<PendingTrace> pending_traces;

  std::size_t pending_write() const { return wbuf.size() - wpos; }
  bool has_complete_message() const {
    const std::size_t avail = rbuf.size() - rpos;
    if (discard_input || avail < kMessageHeaderSize) return false;
    std::uint64_t payload_size = 0;
    for (int i = 0; i < 8; ++i) {
      payload_size |= static_cast<std::uint64_t>(rbuf[rpos + 16 + i])
                      << (8 * i);
    }
    return avail >= kMessageHeaderSize + payload_size;
  }
  /// A draining connection with nothing left to do may close.
  bool settled() const {
    return draining && inflight == 0 && pending_write() == 0 &&
           !has_complete_message();
  }
  bool has_stalled_work() const {
    return pending_write() > 0 || rbuf.size() - rpos > 0 || draining ||
           inflight > 0;
  }
};

EvalServer::EvalServer(sw::serve::EvaluatorService& service,
                       Designer designer, const Endpoint& endpoint,
                       EvalServerOptions options)
    : service_(&service),
      designer_(std::move(designer)),
      options_(options),
      listener_(endpoint) {
  SW_REQUIRE(designer_ != nullptr, "EvalServer needs a designer callback");
  completions_ = std::make_shared<CompletionQueue>();
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  SW_REQUIRE(epoll_fd_ >= 0,
             std::string("epoll_create1 failed: ") + std::strerror(errno));
  set_fd_nonblocking(listener_.fd());
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerSlot;
  SW_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) == 0,
             std::string("epoll_ctl(listener) failed: ") +
                 std::strerror(errno));
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeupSlot;
  SW_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, completions_->event_fd,
                         &ev) == 0,
             std::string("epoll_ctl(eventfd) failed: ") +
                 std::strerror(errno));
  next_conn_id_ = kFirstConnId;
  last_reap_ = std::chrono::steady_clock::now();
  event_thread_ = std::thread([this] { event_loop(); });
  if (options_.registry) {
    heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  }
}

EvalServer::~EvalServer() {
  stop();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void EvalServer::event_loop() {
  std::vector<epoll_event> events(64);
  const int tick_ms = static_cast<int>(options_.poll_tick.count());
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) break;
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; serving cannot continue
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t slot = events[i].data.u64;
      if (slot == kListenerSlot) {
        handle_accept();
        continue;
      }
      if (slot == kWakeupSlot) {
        std::uint64_t drained = 0;
        (void)!::read(completions_->event_fd, &drained, sizeof(drained));
        continue;  // completions drained below, once per wake
      }
      auto it = conns_.find(slot);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& conn = *it->second;
      try {
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) && conn.draining) {
          // A draining peer that reset: nothing left worth flushing.
          close_conn(slot);
          continue;
        }
        if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
          handle_readable(conn);
        }
        if (conns_.count(slot) != 0 && (events[i].events & EPOLLOUT)) {
          handle_writable(conn);
        }
      } catch (const std::exception&) {
        // Peer reset, corrupt envelope, unsynchronised stream: drop it.
        close_conn(slot);
      }
    }
    drain_completions();
    const auto now = std::chrono::steady_clock::now();
    if (now - last_reap_ >= options_.poll_tick) {
      last_reap_ = now;
      reap_stalled();
    }
  }
  // Teardown on the owning thread: every fd dies here, so no other thread
  // can race a descriptor reuse.
  conns_.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.active_connections = 0;
  }
}

void EvalServer::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr,
                             SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) {
      // EAGAIN: backlog drained. Anything transient (aborted handshake,
      // fd pressure) is simply retried at the next readiness event.
      return;
    }
    if (listener_.local_endpoint().kind == Endpoint::Kind::kTcp) {
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->conn = Connection(fd);
    conn->last_progress = std::chrono::steady_clock::now();

    std::size_t admitted_count = 0;
    for (const auto& [id, c] : conns_) {
      if (c->admitted) ++admitted_count;
    }
    const bool admit = admitted_count < options_.max_connections;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.connections_accepted;
      if (admit) {
        counters_.active_connections = admitted_count + 1;
      } else {
        ++counters_.connections_refused;
        ++counters_.errors_sent;
      }
    }
    conn->admitted = admit;
    if (!admit) {
      // Over the connection cap: a typed, retryable refusal beats a
      // silent RST. Queued non-blockingly and flushed by readiness — an
      // unreadable peer costs a buffer, never a stalled accept path; the
      // reaper drops it after frame_timeout.
      conn->draining = true;
      append_reply(*conn, make_error_message(ErrorCode::kOverload,
                                             "connection limit reached"));
    }
    epoll_event ev{};
    ev.events = conn->admitted ? EPOLLIN : EPOLLOUT;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // conn destructor closes the fd
    }
    conn->armed_events = ev.events;
    const std::uint64_t id = conn->id;
    conns_.emplace(id, std::move(conn));
    if (!admit) {
      // Optimistic flush: a readable peer gets its refusal immediately.
      auto it = conns_.find(id);
      try {
        handle_writable(*it->second);
      } catch (const std::exception&) {
        close_conn(id);
      }
    }
  }
}

void EvalServer::handle_readable(Conn& conn) {
  std::uint64_t read_total = 0;
  for (;;) {
    if (conn.paused || conn.draining || conn.peer_eof) break;
    if (conn.rbuf.size() - conn.rpos >= kMaxBufferedRead) break;
    const std::size_t old_size = conn.rbuf.size();
    conn.rbuf.resize(old_size + kReadChunk);
    const std::ptrdiff_t n =
        conn.conn.recv_some({conn.rbuf.data() + old_size, kReadChunk});
    if (n < 0) {
      conn.rbuf.resize(old_size);
      break;  // drained
    }
    if (n == 0) {
      conn.rbuf.resize(old_size);
      conn.peer_eof = true;
      break;
    }
    conn.rbuf.resize(old_size + static_cast<std::size_t>(n));
    read_total += static_cast<std::uint64_t>(n);
    conn.last_progress = std::chrono::steady_clock::now();
    process_buffered(conn);
    if (static_cast<std::size_t>(n) < kReadChunk) break;  // likely drained
  }
  if (read_total > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.bytes_read += read_total;
  }
  process_buffered(conn);
  if (conn.peer_eof) {
    // Half-close: no more requests will arrive, but complete frames
    // already buffered are still served before the connection closes.
    conn.draining = true;
  }
  if (conn.settled()) {
    close_conn(conn.id);
    return;
  }
  update_epoll(conn);
}

void EvalServer::process_buffered(Conn& conn) {
  for (;;) {
    if (conn.discard_input) break;
    if (conn.inflight >= options_.max_inflight_per_connection ||
        conn.pending_write() > options_.max_pending_write_bytes) {
      if (!conn.paused) {
        conn.paused = true;
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.backpressure_pauses;
      }
      break;
    }
    const std::size_t avail = conn.rbuf.size() - conn.rpos;
    if (avail < kMessageHeaderSize) break;
    const MessageHeader header = parse_message_header(
        {conn.rbuf.data() + conn.rpos, kMessageHeaderSize});
    if (avail < kMessageHeaderSize + header.payload_size) break;
    const std::span<const std::uint8_t> payload{
        conn.rbuf.data() + conn.rpos + kMessageHeaderSize,
        static_cast<std::size_t>(header.payload_size)};
    conn.rpos += kMessageHeaderSize + header.payload_size;
    handle_message(conn, header, payload);
  }
  // Reuse the buffer: fully parsed input resets it (capacity kept); a
  // large parsed prefix ahead of a partial frame is compacted away.
  if (conn.rpos == conn.rbuf.size()) {
    conn.rbuf.clear();
    conn.rpos = 0;
  } else if (conn.rpos >= (1u << 20)) {
    conn.rbuf.erase(conn.rbuf.begin(),
                    conn.rbuf.begin() + static_cast<std::ptrdiff_t>(conn.rpos));
    conn.rpos = 0;
  }
}

void EvalServer::handle_message(Conn& conn, const MessageHeader& header,
                                std::span<const std::uint8_t> payload) {
  verify_message_payload(header, payload);
  switch (header.kind) {
    case MessageKind::kShutdown: {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return;
    }
    case MessageKind::kMetricsRequest: {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.metrics_requests;
      }
      Message reply =
          make_text_message(MessageKind::kMetricsResponse, metrics_text());
      reply.tag = header.tag;
      append_reply(conn, reply);
      return;
    }
    case MessageKind::kTraceRequest: {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.trace_requests;
      }
      Message reply =
          make_text_message(MessageKind::kTraceResponse, trace_text());
      reply.tag = header.tag;
      append_reply(conn, reply);
      return;
    }
    case MessageKind::kFrame: {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.frames_received;
      }
      handle_frame(conn, header.tag, payload);
      return;
    }
    default: {
      // A client has no business sending error/metrics-response/registry
      // kinds; answer once, then drop the connection.
      append_reply(conn, make_error_message(ErrorCode::kBadRequest,
                                            "unexpected message kind",
                                            header.tag));
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.errors_sent;
      }
      conn.draining = true;
      conn.discard_input = true;
      return;
    }
  }
}

void EvalServer::handle_frame(Conn& conn, std::uint64_t tag,
                              std::span<const std::uint8_t> payload) {
  bool submitted = false;
  try {
    sw::obs::TraceContext trace;
    trace.track = conn.id;
    const std::size_t decode_slot = trace.begin(sw::obs::Phase::kWireDecode);
    sw::serve::SweepFrame request =
        sw::serve::decode_frame(payload, options_.max_wire_version);
    SW_REQUIRE(request.kind == sw::serve::FrameKind::kRequest,
               "server expects request frames");
    const std::size_t num_words = static_cast<std::size_t>(request.num_words);
    Completion meta;
    meta.conn_id = conn.id;
    meta.tag = tag;
    meta.layout_hash = request.layout_hash;
    meta.word_offset = request.word_offset;
    meta.num_words = request.num_words;
    sw::serve::EvalRequest eval_request;
    sw::core::GateLayout layout;
    if (request.program) {
      // v3: prove both ends mean the same program before evaluating, the
      // same contract layout_for enforces for geometry. The service's plan
      // cache keys on these canonical bytes, so no server-side program
      // cache is needed — a repeated program is a cache hit there.
      SW_REQUIRE(sw::serve::hash_program(*request.program) ==
                     request.layout_hash,
                 "program hash mismatch: decoded program differs from the "
                 "client's");
      eval_request = sw::serve::EvalRequest::for_program(
          *request.program, std::move(request.matrix), num_words);
    } else {
      layout = layout_for(request);
      eval_request = sw::serve::EvalRequest::for_layout(
          layout, std::move(request.matrix), num_words);
    }
    trace.end(decode_slot);
    eval_request.trace = std::move(trace);
    // The service's settle is not the request's end here — the reply still
    // has to be encoded and flushed — so recording is deferred to this
    // server (wire-encode + write-queue spans appended first).
    eval_request.defer_trace_record = true;
    service_->submit_async(
        std::move(eval_request),
        [queue = completions_, meta = std::move(meta)](
            sw::serve::ResultBatch&& result, std::exception_ptr error) mutable {
          if (error) {
            meta.failed = true;
            try {
              std::rethrow_exception(error);
            } catch (const sw::serve::OverloadError& e) {
              meta.error_code = ErrorCode::kOverload;
              meta.error_text = e.what();
            } catch (const std::exception& e) {
              meta.error_code = ErrorCode::kInternal;
              meta.error_text = e.what();
            }
          } else {
            meta.num_channels = result.num_channels;
            meta.bits = std::move(result.bits);
          }
          meta.trace = std::move(result.trace);
          queue->push(std::move(meta));
        });
    submitted = true;
    ++conn.inflight;
  } catch (const sw::serve::OverloadError& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.overloads;
      ++counters_.errors_sent;
    }
    append_reply(conn, make_error_message(ErrorCode::kOverload, e.what(), tag));
  } catch (const sw::serve::UnsupportedVersionError& e) {
    // A frame newer than this worker decodes (a v3 program frame at a
    // v2-pinned worker): typed refusal, connection kept — the client
    // negotiates down rather than reconnecting.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.errors_sent;
    }
    append_reply(conn, make_error_message(ErrorCode::kUnsupportedVersion,
                                          e.what(), tag));
  } catch (const std::exception& e) {
    // Before submit: the client sent something malformed (bad frame, wrong
    // shape, alien geometry). After submit is unreachable here — those
    // failures arrive through the completion callback.
    (void)submitted;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.errors_sent;
    }
    append_reply(conn,
                 make_error_message(ErrorCode::kBadRequest, e.what(), tag));
  }
}

void EvalServer::append_reply(Conn& conn, const Message& message) {
  append_message(conn.wbuf, message);
  conn.last_progress = std::chrono::steady_clock::now();
}

void EvalServer::drain_completions() {
  std::vector<Completion> items;
  {
    std::lock_guard<std::mutex> lock(completions_->mutex);
    items.swap(completions_->items);
  }
  for (Completion& c : items) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) {
      // Connection died while evaluating: the reply has nowhere to go, but
      // the request still happened — record its trace as-is.
      service_->trace_recorder().record(c.trace);
      continue;
    }
    Conn& conn = *it->second;
    if (c.failed) {
      append_reply(conn,
                   make_error_message(c.error_code, c.error_text, c.tag));
      service_->trace_recorder().record(c.trace);
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.errors_sent;
      if (c.error_code == ErrorCode::kOverload) ++counters_.overloads;
    } else {
      const std::size_t encode_slot =
          c.trace.begin(sw::obs::Phase::kWireEncode);
      sw::serve::SweepFrameView view;
      view.kind = sw::serve::FrameKind::kResponse;
      view.layout_hash = c.layout_hash;
      view.word_offset = c.word_offset;
      view.num_words = c.num_words;
      view.num_cols = c.num_channels;
      view.matrix = c.bits;
      append_frame_message(conn.wbuf, view, c.tag);
      c.trace.end(encode_slot);
      conn.last_progress = std::chrono::steady_clock::now();
      // The write-queue span stays open until the reply's last byte has
      // left for the socket (flush_mark); handle_writable closes it and
      // records the finished trace.
      Conn::PendingTrace pending;
      pending.flush_mark = conn.total_flushed + conn.pending_write();
      pending.slot = c.trace.begin(sw::obs::Phase::kWriteQueue);
      pending.trace = std::move(c.trace);
      conn.pending_traces.push_back(std::move(pending));
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.responses_sent;
    }
    --conn.inflight;
  }
  // Flush and, where back-pressure has lifted, resume reading. Done once
  // per drained batch per connection rather than per completion.
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& conn = *it->second;
    const std::uint64_t id = conn.id;
    ++it;  // close_conn below invalidates this entry's iterator
    if (conn.pending_write() == 0 && !conn.paused) continue;
    try {
      if (conn.pending_write() > 0) handle_writable(conn);
    } catch (const std::exception&) {
      close_conn(id);
      continue;
    }
    if (conns_.count(id) == 0) continue;  // drained and closed
    if (conn.paused &&
        conn.inflight < options_.max_inflight_per_connection &&
        conn.pending_write() <= options_.max_pending_write_bytes) {
      conn.paused = false;
      try {
        process_buffered(conn);
      } catch (const std::exception&) {
        close_conn(id);
        continue;
      }
      if (conn.settled()) {
        close_conn(id);
        continue;
      }
      update_epoll(conn);
    }
  }
}

void EvalServer::handle_writable(Conn& conn) {
  std::uint64_t sent_total = 0;
  while (conn.pending_write() > 0) {
    const std::ptrdiff_t n = conn.conn.send_some(
        {conn.wbuf.data() + conn.wpos, conn.pending_write()});
    if (n < 0) break;  // socket buffer full; EPOLLOUT re-arms below
    conn.wpos += static_cast<std::size_t>(n);
    conn.total_flushed += static_cast<std::uint64_t>(n);
    sent_total += static_cast<std::uint64_t>(n);
    conn.last_progress = std::chrono::steady_clock::now();
  }
  if (sent_total > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.bytes_written += sent_total;
  }
  // Replies fully on the wire close their write-queue span and record.
  while (!conn.pending_traces.empty() &&
         conn.pending_traces.front().flush_mark <= conn.total_flushed) {
    Conn::PendingTrace& pt = conn.pending_traces.front();
    pt.trace.end(pt.slot);
    service_->trace_recorder().record(pt.trace);
    conn.pending_traces.pop_front();
  }
  if (conn.pending_write() == 0) {
    conn.wbuf.clear();  // capacity kept for the next reply burst
    conn.wpos = 0;
    if (conn.settled()) {
      close_conn(conn.id);
      return;
    }
  }
  update_epoll(conn);
}

void EvalServer::update_epoll(Conn& conn) {
  std::uint32_t want = 0;
  if (!conn.paused && !conn.draining && !conn.peer_eof) want |= EPOLLIN;
  if (conn.pending_write() > 0) want |= EPOLLOUT;
  if (want == conn.armed_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.conn.fd(), &ev) == 0) {
    conn.armed_events = want;
  }
}

void EvalServer::close_conn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Replies that never reached the wire still record: their write-queue
  // span ends at the close, which is the truthful story of where the
  // request's time went.
  for (Conn::PendingTrace& pt : it->second->pending_traces) {
    pt.trace.end(pt.slot);
    service_->trace_recorder().record(pt.trace);
  }
  const bool was_admitted = it->second->admitted;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->conn.fd(), nullptr);
  conns_.erase(it);  // Connection destructor closes the fd
  if (was_admitted) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (counters_.active_connections > 0) --counters_.active_connections;
  }
}

void EvalServer::reap_stalled() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> stalled;
  for (const auto& [id, conn] : conns_) {
    if (conn->has_stalled_work() &&
        now - conn->last_progress > options_.frame_timeout) {
      stalled.push_back(id);
    }
  }
  for (const std::uint64_t id : stalled) close_conn(id);
}

sw::core::GateLayout EvalServer::layout_for(
    const sw::serve::SweepFrame& request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = layouts_.find(request.layout_hash);
    if (it != layouts_.end() && it->second.spec == *request.spec) {
      return it->second;
    }
  }
  sw::core::GateLayout layout = designer_(*request.spec);
  const std::uint64_t local_hash = sw::serve::hash_layout(layout);
  SW_REQUIRE(local_hash == request.layout_hash,
             "layout hash mismatch: server geometry differs from the "
             "client's");
  std::lock_guard<std::mutex> lock(mutex_);
  if (layouts_.size() >= options_.layout_cache_capacity &&
      layouts_.count(request.layout_hash) == 0) {
    // The layout cache is a small redesign-avoidance map, not an LRU:
    // dropping an arbitrary entry under pressure is fine because misses
    // only cost a redesign, never a wrong answer.
    layouts_.erase(layouts_.begin());
  }
  layouts_.emplace(request.layout_hash, layout);
  return layout;
}

void EvalServer::heartbeat_loop() {
  WorkerAdvert advert;
  advert.endpoint = options_.advertise.empty()
                        ? local_endpoint().to_string()
                        : options_.advertise;
  advert.kernel = std::string(sw::wavesim::active_kernel_name());
  advert.precision = service_->stats().precision;
  advert.words_per_second = options_.advertised_words_per_second;
  for (;;) {
    try {
      register_worker(*options_.registry, advert,
                      options_.heartbeat_interval);
    } catch (const std::exception&) {
      // Registry down or slow: keep serving, keep retrying. Workers must
      // never die because discovery is flaky.
    }
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_cv_.wait_for(lock, options_.heartbeat_interval,
                          [this] { return stop_; });
    if (stop_) return;
  }
}

ServerCounters EvalServer::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::string EvalServer::metrics_text() const {
  return render_service_metrics(service_->stats()) +
         render_server_metrics(counters());
}

std::string EvalServer::trace_text() const {
  return sw::obs::trace_json(service_->trace_recorder().snapshot(),
                             "sw-worker " + local_endpoint().to_string());
}

bool EvalServer::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_requested_;
}

bool EvalServer::wait_shutdown(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto ready = [this] { return shutdown_requested_ || stop_; };
  if (timeout.count() <= 0) {
    shutdown_cv_.wait(lock, ready);
  } else {
    shutdown_cv_.wait_for(lock, timeout, ready);
  }
  return shutdown_requested_;
}

void EvalServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Single-owner protocol: repeated stop() calls (explicit stop then
    // destructor) are no-ops; only the first performs the joins.
    if (stop_) return;
    stop_ = true;
  }
  shutdown_cv_.notify_all();
  {
    // Late completions must not write a wakeup nobody reads.
    std::lock_guard<std::mutex> lock(completions_->mutex);
    completions_->open = false;
  }
  const std::uint64_t one = 1;
  (void)!::write(completions_->event_fd, &one, sizeof(one));
  if (event_thread_.joinable()) event_thread_.join();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  listener_.close();
}

}  // namespace sw::net
