#include "net/registry.h"

#include <algorithm>
#include <utility>

#include "serve/byteio.h"
#include "util/error.h"

namespace sw::net {

namespace {

using sw::serve::detail::ByteReader;
using sw::serve::detail::append_f64;
using sw::serve::detail::append_u64;

// Far beyond any realistic fleet; stops a corrupt count from driving a
// huge allocation before the first advert fails to parse.
constexpr std::uint64_t kMaxAdverts = 1u << 16;
constexpr std::uint64_t kMaxAdvertString = 1u << 12;

void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  append_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::string read_string(ByteReader& r) {
  const std::uint64_t len = r.u64();
  SW_REQUIRE(len <= kMaxAdvertString, "implausible string length in advert");
  const auto bytes = r.take(static_cast<std::size_t>(len));
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

std::vector<std::uint8_t> encode_adverts(
    const std::vector<WorkerAdvert>& adverts) {
  std::vector<std::uint8_t> out;
  append_u64(out, adverts.size());
  for (const WorkerAdvert& a : adverts) {
    append_string(out, a.endpoint);
    append_string(out, a.kernel);
    append_string(out, a.precision);
    append_f64(out, a.words_per_second);
  }
  return out;
}

std::vector<WorkerAdvert> decode_adverts(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint64_t count = r.u64();
  SW_REQUIRE(count <= kMaxAdverts, "implausible advert count");
  std::vector<WorkerAdvert> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    WorkerAdvert a;
    a.endpoint = read_string(r);
    a.kernel = read_string(r);
    a.precision = read_string(r);
    a.words_per_second = r.f64();
    SW_REQUIRE(!a.endpoint.empty(), "advert with an empty endpoint");
    out.push_back(std::move(a));
  }
  SW_REQUIRE(r.remaining() == 0, "trailing bytes after advert list");
  return out;
}

RegistryServer::RegistryServer(const Endpoint& endpoint,
                               RegistryOptions options)
    : options_(options), listener_(endpoint) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

RegistryServer::~RegistryServer() { stop(); }

void RegistryServer::accept_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    std::optional<Connection> conn;
    try {
      conn = listener_.accept(options_.poll_tick);
    } catch (const std::exception&) {
      continue;  // transient accept failure; the tick bounds the retry rate
    }
    if (!conn) continue;
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    threads_.emplace_back(
        [this, c = std::move(*conn)]() mutable { serve_connection(std::move(c)); });
  }
}

void RegistryServer::serve_connection(Connection connection) {
  // One request/reply per exchange until the peer closes; a malformed
  // message drops the connection (the stream is unsynchronised after it).
  try {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) return;
      }
      if (!connection.wait_readable(options_.poll_tick)) continue;
      auto message = recv_message(connection, options_.io_timeout);
      if (!message) return;  // orderly close
      switch (message->kind) {
        case MessageKind::kRegister: {
          auto adverts = decode_adverts(message->payload);
          SW_REQUIRE(adverts.size() == 1,
                     "kRegister must carry exactly one advert");
          {
            // Key copied out first: assignment evaluates the right side
            // before the subscript, so moving the advert in the same
            // expression would index on a moved-out (empty) endpoint.
            const std::string key = adverts[0].endpoint;
            std::lock_guard<std::mutex> lock(mutex_);
            entries_[key] =
                Entry{std::move(adverts[0]), std::chrono::steady_clock::now()};
            ++upserts_;
          }
          Message ack;
          ack.kind = MessageKind::kRegister;
          ack.tag = message->tag;
          send_message(connection, ack, options_.io_timeout);
          break;
        }
        case MessageKind::kRegistryRequest: {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            ++registry_requests_;
          }
          Message reply;
          reply.kind = MessageKind::kRegistryResponse;
          reply.tag = message->tag;
          reply.payload = encode_adverts(snapshot());
          send_message(connection, reply, options_.io_timeout);
          break;
        }
        case MessageKind::kMetricsRequest: {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            ++metrics_requests_;
          }
          Message reply = make_text_message(MessageKind::kMetricsResponse,
                                            metrics_text());
          reply.tag = message->tag;
          send_message(connection, reply, options_.io_timeout);
          break;
        }
        case MessageKind::kShutdown: {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            shutdown_requested_ = true;
          }
          shutdown_cv_.notify_all();
          return;
        }
        default:
          send_message(connection,
                       make_error_message(ErrorCode::kBadRequest,
                                          "unsupported registry message",
                                          message->tag),
                       options_.io_timeout);
          break;
      }
    }
  } catch (const std::exception&) {
    // Peer misbehaviour must not take the registry down.
  }
}

std::vector<WorkerAdvert> RegistryServer::snapshot() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<WorkerAdvert> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.last_seen > options_.ttl) {
      it = entries_.erase(it);
      ++expirations_;
    } else {
      out.push_back(it->second.advert);
      ++it;
    }
  }
  return out;
}

RegistryCounters RegistryServer::counters() {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  double oldest_s = 0.0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const auto age = now - it->second.last_seen;
    if (age > options_.ttl) {
      it = entries_.erase(it);
      ++expirations_;
    } else {
      oldest_s = std::max(
          oldest_s, std::chrono::duration<double>(age).count());
      ++it;
    }
  }
  RegistryCounters c;
  c.upserts = upserts_;
  c.expirations = expirations_;
  c.registry_requests = registry_requests_;
  c.metrics_requests = metrics_requests_;
  c.live_adverts = entries_.size();
  c.oldest_advert_age_s = oldest_s;
  return c;
}

std::string RegistryServer::metrics_text() {
  return render_registry_metrics(counters());
}

bool RegistryServer::wait_shutdown(std::chrono::milliseconds max_wait) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto done = [this] { return shutdown_requested_ || stopping_; };
  if (max_wait <= std::chrono::milliseconds(0)) {
    shutdown_cv_.wait(lock, done);
  } else {
    shutdown_cv_.wait_for(lock, max_wait, done);
  }
  return shutdown_requested_;
}

void RegistryServer::stop() {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    threads.swap(threads_);
  }
  shutdown_cv_.notify_all();
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void register_worker(const Endpoint& registry, const WorkerAdvert& advert,
                     std::chrono::milliseconds timeout) {
  Connection conn = Connection::connect(registry, timeout);
  Message m;
  m.kind = MessageKind::kRegister;
  m.payload = encode_adverts({advert});
  send_message(conn, m, timeout);
  const auto reply = recv_message(conn, timeout);
  SW_REQUIRE(reply.has_value(), "registry closed before acking a register");
  if (reply->kind == MessageKind::kError) {
    const ErrorInfo info = decode_error_message(*reply);
    throw RemoteError(info.code, "registry rejected register: " + info.text);
  }
  SW_REQUIRE(reply->kind == MessageKind::kRegister,
             "unexpected reply to a register message");
}

std::vector<WorkerAdvert> fetch_registry(const Endpoint& registry,
                                         std::chrono::milliseconds timeout) {
  Connection conn = Connection::connect(registry, timeout);
  Message m;
  m.kind = MessageKind::kRegistryRequest;
  send_message(conn, m, timeout);
  const auto reply = recv_message(conn, timeout);
  SW_REQUIRE(reply.has_value(),
             "registry closed before answering a snapshot request");
  if (reply->kind == MessageKind::kError) {
    const ErrorInfo info = decode_error_message(*reply);
    throw RemoteError(info.code, "registry rejected snapshot: " + info.text);
  }
  SW_REQUIRE(reply->kind == MessageKind::kRegistryResponse,
             "unexpected reply to a registry request");
  return decode_adverts(reply->payload);
}

}  // namespace sw::net
