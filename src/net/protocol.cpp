#include "net/protocol.h"

#include <cstring>

#include "serve/byteio.h"
#include "serve/layout_hash.h"

namespace sw::net {

namespace {

using sw::serve::detail::ByteReader;
using sw::serve::detail::append_u16;
using sw::serve::detail::append_u32;
using sw::serve::detail::append_u64;

bool known_kind(std::uint16_t kind) {
  return kind >= static_cast<std::uint16_t>(MessageKind::kFrame) &&
         kind <= static_cast<std::uint16_t>(MessageKind::kShutdown);
}

}  // namespace

std::vector<std::uint8_t> encode_message(const Message& message) {
  SW_REQUIRE(known_kind(static_cast<std::uint16_t>(message.kind)),
             "unknown message kind");
  SW_REQUIRE(message.payload.size() <= kMaxMessagePayload,
             "message payload exceeds the protocol cap");
  std::vector<std::uint8_t> out;
  out.reserve(kMessageHeaderSize + message.payload.size());
  append_u32(out, kNetMagic);
  append_u16(out, kNetVersion);
  append_u16(out, static_cast<std::uint16_t>(message.kind));
  append_u64(out, message.payload.size());
  append_u64(out, sw::serve::chunked_fnv1a64(message.payload));
  out.insert(out.end(), message.payload.begin(), message.payload.end());
  return out;
}

Message make_frame_message(const sw::serve::SweepFrame& frame) {
  Message m;
  m.kind = MessageKind::kFrame;
  m.payload = sw::serve::encode_frame(frame);
  return m;
}

Message make_error_message(ErrorCode code, std::string_view text) {
  Message m;
  m.kind = MessageKind::kError;
  m.payload.resize(2 + text.size());
  m.payload[0] = static_cast<std::uint8_t>(static_cast<std::uint16_t>(code));
  m.payload[1] =
      static_cast<std::uint8_t>(static_cast<std::uint16_t>(code) >> 8);
  if (!text.empty()) {
    std::memcpy(m.payload.data() + 2, text.data(), text.size());
  }
  return m;
}

Message make_text_message(MessageKind kind, std::string_view text) {
  SW_REQUIRE(kind == MessageKind::kMetricsResponse,
             "only metrics responses carry free text");
  Message m;
  m.kind = kind;
  m.payload.assign(text.begin(), text.end());
  return m;
}

ErrorInfo decode_error_message(const Message& message) {
  SW_REQUIRE(message.kind == MessageKind::kError,
             "expected an error message");
  ByteReader r(message.payload);
  ErrorInfo info;
  const std::uint16_t code = r.u16();
  SW_REQUIRE(code >= static_cast<std::uint16_t>(ErrorCode::kOverload) &&
                 code <= static_cast<std::uint16_t>(ErrorCode::kInternal),
             "unknown error code in error message");
  info.code = static_cast<ErrorCode>(code);
  const auto text = r.take(r.remaining());
  info.text.assign(text.begin(), text.end());
  return info;
}

std::string decode_text_message(const Message& message) {
  SW_REQUIRE(message.kind == MessageKind::kMetricsResponse,
             "expected a metrics response message");
  return std::string(message.payload.begin(), message.payload.end());
}

void send_message(Connection& connection, const Message& message,
                  std::chrono::milliseconds timeout) {
  connection.send_all(encode_message(message), timeout);
}

std::optional<Message> recv_message(Connection& connection,
                                    std::chrono::milliseconds timeout) {
  std::uint8_t header[kMessageHeaderSize];
  if (!connection.recv_all(header, timeout)) return std::nullopt;
  ByteReader r(header);
  SW_REQUIRE(r.u32() == kNetMagic, "bad message magic");
  SW_REQUIRE(r.u16() == kNetVersion, "unsupported protocol version");
  const std::uint16_t kind = r.u16();
  SW_REQUIRE(known_kind(kind), "unknown message kind");
  const std::uint64_t payload_size = r.u64();
  const std::uint64_t checksum = r.u64();
  SW_REQUIRE(payload_size <= kMaxMessagePayload,
             "message payload size exceeds the protocol cap");

  Message message;
  message.kind = static_cast<MessageKind>(kind);
  message.payload.resize(static_cast<std::size_t>(payload_size));
  if (payload_size > 0) {
    SW_REQUIRE(connection.recv_all(message.payload, timeout),
               "connection closed between message header and payload");
  }
  SW_REQUIRE(sw::serve::chunked_fnv1a64(message.payload) == checksum,
             "message checksum mismatch (corrupt payload)");
  return message;
}

std::optional<sw::serve::SweepFrame> recv_frame(
    Connection& connection, std::chrono::milliseconds timeout) {
  auto message = recv_message(connection, timeout);
  if (!message) return std::nullopt;
  if (message->kind == MessageKind::kError) {
    const ErrorInfo info = decode_error_message(*message);
    throw RemoteError(info.code, "remote error: " + info.text);
  }
  SW_REQUIRE(message->kind == MessageKind::kFrame,
             "expected a frame message");
  return sw::serve::decode_frame(message->payload);
}

}  // namespace sw::net
