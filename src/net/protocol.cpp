#include "net/protocol.h"

#include <cstring>

#include "serve/byteio.h"
#include "serve/layout_hash.h"

namespace sw::net {

namespace {

using sw::serve::detail::ByteReader;
using sw::serve::detail::append_u16;
using sw::serve::detail::append_u32;
using sw::serve::detail::append_u64;

bool known_kind(std::uint16_t kind) {
  return kind >= static_cast<std::uint16_t>(MessageKind::kFrame) &&
         kind <= static_cast<std::uint16_t>(MessageKind::kTraceResponse);
}

/// The envelope checksum for `kind` over `payload`: kFrame covers only the
/// wire-frame header prefix (the body self-checksums end to end), every
/// other kind covers the whole payload.
std::uint64_t envelope_checksum(MessageKind kind,
                                std::span<const std::uint8_t> payload) {
  if (kind == MessageKind::kFrame && payload.size() > kFrameChecksumPrefix) {
    payload = payload.first(kFrameChecksumPrefix);
  }
  return sw::serve::chunked_fnv1a64(payload);
}

}  // namespace

void append_message(std::vector<std::uint8_t>& out, const Message& message) {
  SW_REQUIRE(known_kind(static_cast<std::uint16_t>(message.kind)),
             "unknown message kind");
  SW_REQUIRE(message.payload.size() <= kMaxMessagePayload,
             "message payload exceeds the protocol cap");
  out.reserve(out.size() + kMessageHeaderSize + message.payload.size());
  append_u32(out, kNetMagic);
  append_u16(out, kNetVersion);
  append_u16(out, static_cast<std::uint16_t>(message.kind));
  append_u64(out, message.tag);
  append_u64(out, message.payload.size());
  append_u64(out, envelope_checksum(message.kind, message.payload));
  out.insert(out.end(), message.payload.begin(), message.payload.end());
}

std::vector<std::uint8_t> encode_message(const Message& message) {
  std::vector<std::uint8_t> out;
  append_message(out, message);
  return out;
}

void append_frame_message(std::vector<std::uint8_t>& out,
                          const sw::serve::SweepFrameView& frame,
                          std::uint64_t tag) {
  const std::size_t base = out.size();
  append_u32(out, kNetMagic);
  append_u16(out, kNetVersion);
  append_u16(out, static_cast<std::uint16_t>(MessageKind::kFrame));
  append_u64(out, tag);
  append_u64(out, 0);  // payload_size, patched once the frame is encoded
  append_u64(out, 0);  // checksum, patched likewise
  sw::serve::encode_frame_into(frame, out);
  const std::size_t payload_size = out.size() - base - kMessageHeaderSize;
  SW_REQUIRE(payload_size <= kMaxMessagePayload,
             "message payload exceeds the protocol cap");
  std::uint8_t* header = out.data() + base;
  sw::serve::detail::store_u64(header + 16, payload_size);
  sw::serve::detail::store_u64(
      header + 24,
      envelope_checksum(MessageKind::kFrame,
                        {header + kMessageHeaderSize, payload_size}));
}

MessageHeader parse_message_header(std::span<const std::uint8_t> header) {
  SW_REQUIRE(header.size() == kMessageHeaderSize,
             "message header must be exactly kMessageHeaderSize bytes");
  ByteReader r(header);
  SW_REQUIRE(r.u32() == kNetMagic, "bad message magic");
  SW_REQUIRE(r.u16() == kNetVersion, "unsupported protocol version");
  const std::uint16_t kind = r.u16();
  SW_REQUIRE(known_kind(kind), "unknown message kind");
  MessageHeader out;
  out.kind = static_cast<MessageKind>(kind);
  out.tag = r.u64();
  out.payload_size = r.u64();
  out.checksum = r.u64();
  SW_REQUIRE(out.payload_size <= kMaxMessagePayload,
             "message payload size exceeds the protocol cap");
  return out;
}

void verify_message_payload(const MessageHeader& header,
                            std::span<const std::uint8_t> payload) {
  SW_REQUIRE(payload.size() == header.payload_size,
             "message payload size mismatch");
  SW_REQUIRE(envelope_checksum(header.kind, payload) == header.checksum,
             "message checksum mismatch (corrupt payload)");
}

Message make_frame_message(const sw::serve::SweepFrame& frame,
                           std::uint64_t tag) {
  Message m;
  m.kind = MessageKind::kFrame;
  m.tag = tag;
  m.payload = sw::serve::encode_frame(frame);
  return m;
}

Message make_error_message(ErrorCode code, std::string_view text,
                           std::uint64_t tag) {
  Message m;
  m.kind = MessageKind::kError;
  m.tag = tag;
  m.payload.resize(2 + text.size());
  m.payload[0] = static_cast<std::uint8_t>(static_cast<std::uint16_t>(code));
  m.payload[1] =
      static_cast<std::uint8_t>(static_cast<std::uint16_t>(code) >> 8);
  if (!text.empty()) {
    std::memcpy(m.payload.data() + 2, text.data(), text.size());
  }
  return m;
}

Message make_text_message(MessageKind kind, std::string_view text) {
  SW_REQUIRE(kind == MessageKind::kMetricsResponse ||
                 kind == MessageKind::kTraceResponse,
             "only metrics and trace responses carry free text");
  Message m;
  m.kind = kind;
  m.payload.assign(text.begin(), text.end());
  return m;
}

ErrorInfo decode_error_message(const Message& message) {
  SW_REQUIRE(message.kind == MessageKind::kError,
             "expected an error message");
  ByteReader r(message.payload);
  ErrorInfo info;
  const std::uint16_t code = r.u16();
  SW_REQUIRE(
      code >= static_cast<std::uint16_t>(ErrorCode::kOverload) &&
          code <= static_cast<std::uint16_t>(ErrorCode::kUnsupportedVersion),
      "unknown error code in error message");
  info.code = static_cast<ErrorCode>(code);
  const auto text = r.take(r.remaining());
  info.text.assign(text.begin(), text.end());
  return info;
}

std::string decode_text_message(const Message& message) {
  SW_REQUIRE(message.kind == MessageKind::kMetricsResponse ||
                 message.kind == MessageKind::kTraceResponse,
             "expected a metrics or trace response message");
  return std::string(message.payload.begin(), message.payload.end());
}

void send_message(Connection& connection, const Message& message,
                  std::chrono::milliseconds timeout) {
  connection.send_all(encode_message(message), timeout);
}

std::optional<Message> recv_message(Connection& connection,
                                    std::chrono::milliseconds timeout) {
  std::uint8_t header_bytes[kMessageHeaderSize];
  if (!connection.recv_all(header_bytes, timeout)) return std::nullopt;
  const MessageHeader header = parse_message_header(header_bytes);

  Message message;
  message.kind = header.kind;
  message.tag = header.tag;
  message.payload.resize(static_cast<std::size_t>(header.payload_size));
  if (header.payload_size > 0) {
    SW_REQUIRE(connection.recv_all(message.payload, timeout),
               "connection closed between message header and payload");
  }
  verify_message_payload(header, message.payload);
  return message;
}

std::optional<sw::serve::SweepFrame> recv_frame(
    Connection& connection, std::chrono::milliseconds timeout) {
  auto message = recv_message(connection, timeout);
  if (!message) return std::nullopt;
  if (message->kind == MessageKind::kError) {
    const ErrorInfo info = decode_error_message(*message);
    throw RemoteError(info.code, "remote error: " + info.text);
  }
  SW_REQUIRE(message->kind == MessageKind::kFrame,
             "expected a frame message");
  return sw::serve::decode_frame(message->payload);
}

std::string fetch_text(const Endpoint& server, MessageKind kind,
                       std::chrono::milliseconds timeout) {
  SW_REQUIRE(kind == MessageKind::kMetricsRequest ||
                 kind == MessageKind::kTraceRequest,
             "fetch_text sends kMetricsRequest or kTraceRequest");
  Connection conn = Connection::connect(server, timeout);
  Message m;
  m.kind = kind;
  send_message(conn, m, timeout);
  const auto reply = recv_message(conn, timeout);
  SW_REQUIRE(reply.has_value(),
             "server closed before answering a text scrape");
  if (reply->kind == MessageKind::kError) {
    const ErrorInfo info = decode_error_message(*reply);
    throw RemoteError(info.code, "text scrape rejected: " + info.text);
  }
  return decode_text_message(*reply);
}

}  // namespace sw::net
