// Blocking-socket transport for the serving layer: TCP and unix-domain
// stream sockets with poll-based deadlines.
//
// The wire format (serve/wire.h) is self-delimiting, so the transport's
// only jobs are (1) moving exact byte counts with a bounded wait — every
// send/recv takes a timeout and throws TimeoutError when the peer stalls
// past it, so a dead worker can never hang a coordinator — and (2) owning
// file descriptors with RAII so sanitizer legs stay leak-free. Sockets
// stay in blocking mode; readiness is gated by poll(2) against a deadline
// computed once per call, so a slow peer that dribbles bytes still
// completes as long as the whole transfer fits the budget. TCP listeners
// set SO_REUSEADDR (CI restarts reuse ports immediately) and disable
// Nagle on accepted/established connections: request/response frames are
// latency-sensitive and self-contained, so delayed ACK coalescing only
// adds stalls.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "util/error.h"

namespace sw::net {

/// Thrown when a send/recv/accept/connect deadline expires. Distinct from
/// plain Error so callers can treat "peer is slow" differently from "peer
/// sent garbage" (the sweep coordinator re-shards on the former, aborts on
/// the latter).
class TimeoutError : public sw::util::Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// A parsed transport address: "tcp:HOST:PORT" or "unix:PATH". TCP port 0
/// asks the kernel for an ephemeral port; Listener::local_endpoint()
/// reports the resolved one.
struct Endpoint {
  enum class Kind : std::uint8_t { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  std::string host;         ///< TCP only (numeric or resolvable name)
  std::uint16_t port = 0;   ///< TCP only
  std::string path;         ///< unix only (filesystem socket path)

  /// Parse "tcp:HOST:PORT" / "unix:PATH"; throws sw::util::Error on any
  /// other shape (missing port, empty path, unknown scheme).
  static Endpoint parse(const std::string& text);

  std::string to_string() const;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// One connected stream socket, move-only, closed on destruction.
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection() { close(); }

  Connection(Connection&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close() noexcept;

  /// Flip O_NONBLOCK for the event-driven server: readiness comes from
  /// epoll, and a send/recv must return EAGAIN instead of parking the
  /// event thread. The deadline-based send_all/recv_all below still work
  /// on a non-blocking fd (they poll on EAGAIN).
  void set_nonblocking(bool enabled);

  /// One non-blocking recv: bytes read (> 0), 0 on orderly close, -1 when
  /// the socket has nothing buffered (EAGAIN) — never blocks, throws Error
  /// on a hard socket failure. The epoll read path.
  std::ptrdiff_t recv_some(std::span<std::uint8_t> bytes);

  /// One non-blocking send: bytes written (>= 0, short counts normal),
  /// -1 when the socket buffer is full (EAGAIN). SIGPIPE suppressed; peer
  /// resets throw Error. The epoll write path.
  std::ptrdiff_t send_some(std::span<const std::uint8_t> bytes);

  /// Shut down both directions without releasing the descriptor: a
  /// send/recv blocked on another thread returns immediately with an
  /// error/EOF. Safe to call concurrently with IO on the same connection
  /// (the fd itself stays valid until close()).
  void shutdown() noexcept;

  /// Send every byte of `bytes` within `timeout` (deadline over the whole
  /// span, re-polled between partial writes). Throws TimeoutError on
  /// deadline, Error on a peer reset. SIGPIPE is suppressed.
  void send_all(std::span<const std::uint8_t> bytes,
                std::chrono::milliseconds timeout);

  /// Receive exactly `bytes.size()` bytes within `timeout`. Returns false
  /// when the peer performed an orderly close before the *first* byte (a
  /// clean end-of-stream); throws Error when the stream ends mid-span and
  /// TimeoutError on deadline.
  bool recv_all(std::span<std::uint8_t> bytes,
                std::chrono::milliseconds timeout);

  /// Wait up to `timeout` for the connection to become readable (data or
  /// EOF); false on timeout. Used as the idle tick between frames so
  /// serving loops can check a stop flag with a bounded cadence.
  bool wait_readable(std::chrono::milliseconds timeout);

  /// Connect to `endpoint`, retrying refused/not-yet-bound attempts until
  /// `timeout` elapses — so a coordinator may be started before its
  /// workers finish binding. Throws TimeoutError when the deadline passes
  /// without a connection.
  static Connection connect(const Endpoint& endpoint,
                            std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
};

/// A bound, listening stream socket. Unix-domain paths are unlinked both
/// before bind (stale socket files from a killed process) and on close.
class Listener {
 public:
  explicit Listener(const Endpoint& endpoint, int backlog = 64);
  ~Listener() { close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The bound address with any ephemeral TCP port resolved.
  const Endpoint& local_endpoint() const { return endpoint_; }
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }  ///< for registering with epoll

  /// Accept one connection, waiting up to `timeout`; nullopt on timeout
  /// (and after close(), so accept loops terminate). Throws Error on a
  /// listener-level failure.
  std::optional<Connection> accept(std::chrono::milliseconds timeout);

  /// Idempotent; unblocks a concurrent accept() via shutdown(2).
  void close() noexcept;

 private:
  int fd_ = -1;
  Endpoint endpoint_;
  std::string unlink_path_;  ///< unix socket file to remove on close
};

}  // namespace sw::net
