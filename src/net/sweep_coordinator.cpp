#include "net/sweep_coordinator.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "net/protocol.h"
#include "net/registry.h"
#include "serve/layout_hash.h"
#include "serve/wire.h"

namespace sw::net {

namespace {

using Clock = std::chrono::steady_clock;

enum class ShardState : std::uint8_t { kPending, kInflight, kDone };

struct Shard {
  std::size_t offset = 0;
  std::size_t words = 0;
  ShardState state = ShardState::kPending;
  Clock::time_point assigned_at{};
  std::size_t assignments = 0;  ///< > 1 once re-sharded
};

struct SweepState {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Shard> shards;
  std::size_t done_count = 0;
  std::vector<bool> idle;    ///< worker waiting for a shard
  std::vector<bool> alive;   ///< worker still participating
  std::size_t live_workers = 0;
  std::size_t ready_workers = 0;  ///< connected or dead (start barrier)
  std::vector<std::size_t> completed;  ///< shards retired per worker
  std::size_t resharded = 0;
  std::size_t duplicate_results = 0;
  std::size_t overload_retries = 0;
  bool aborted = false;
  std::string error;
  Clock::time_point wall_deadline{};
  std::size_t num_channels = 0;
  std::vector<std::uint8_t> merged;

  void abort_locked(const std::string& why) {
    if (!aborted) {
      aborted = true;
      error = why;
    }
    cv.notify_all();
  }
};

/// True when worker `w` is the fastest currently-idle worker: most shards
/// completed, ties to the lowest index — so exactly one idle worker wins
/// each duplication decision.
bool fastest_idle_locked(const SweepState& state, std::size_t w) {
  for (std::size_t x = 0; x < state.idle.size(); ++x) {
    if (x == w || !state.idle[x] || !state.alive[x]) continue;
    if (state.completed[x] > state.completed[w]) return false;
    if (state.completed[x] == state.completed[w] && x < w) return false;
  }
  return true;
}

/// Block until a shard is available for worker `w` (pending, or an
/// overdue in-flight shard this worker may duplicate); nullopt once the
/// sweep is complete or aborted.
std::optional<std::size_t> acquire_shard(SweepState& state, std::size_t w,
                                         const SweepOptions& options) {
  std::unique_lock<std::mutex> lock(state.mutex);
  state.idle[w] = true;
  for (;;) {
    if (state.aborted || state.done_count == state.shards.size()) {
      state.idle[w] = false;
      return std::nullopt;
    }
    const auto now = Clock::now();
    if (now > state.wall_deadline) {
      state.abort_locked("sweep wall deadline exceeded");
      continue;
    }
    if (options.wait_for_all_workers &&
        state.ready_workers < state.idle.size()) {
      // Fleet-assembly barrier: no shard moves until every worker has
      // connected or failed to, so distribution never races start-up.
      state.cv.wait_for(lock, options.poll_tick);
      continue;
    }
    for (std::size_t i = 0; i < state.shards.size(); ++i) {
      Shard& shard = state.shards[i];
      if (shard.state == ShardState::kPending) {
        shard.state = ShardState::kInflight;
        shard.assigned_at = now;
        ++shard.assignments;
        state.idle[w] = false;
        return i;
      }
    }
    // No pending work: the fastest idle worker may duplicate the most
    // overdue straggler.
    if (fastest_idle_locked(state, w)) {
      std::size_t best = state.shards.size();
      for (std::size_t i = 0; i < state.shards.size(); ++i) {
        const Shard& shard = state.shards[i];
        if (shard.state != ShardState::kInflight) continue;
        if (now - shard.assigned_at < options.straggler_deadline) continue;
        if (best == state.shards.size() ||
            shard.assigned_at < state.shards[best].assigned_at) {
          best = i;
        }
      }
      if (best != state.shards.size()) {
        Shard& shard = state.shards[best];
        shard.assigned_at = now;
        ++shard.assignments;
        ++state.resharded;
        state.idle[w] = false;
        if (options.recorder) {
          // Zero-length event on the claiming worker's track, arg = how
          // many times this shard has now been assigned — in Perfetto it
          // marks exactly where the straggler policy kicked in.
          sw::obs::TraceContext event;
          event.id = best;
          event.track = w;
          const std::uint64_t ns = sw::obs::now_ns();
          event.add(sw::obs::Phase::kReshard, ns, ns,
                    static_cast<std::uint32_t>(shard.assignments));
          options.recorder->record(event);
        }
        return best;
      }
    }
    state.cv.wait_for(lock, options.poll_tick);
  }
}

/// Return a not-yet-done shard to the pending pool (its worker failed or
/// was shed).
void requeue_shard(SweepState& state, std::size_t index) {
  std::lock_guard<std::mutex> lock(state.mutex);
  Shard& shard = state.shards[index];
  if (shard.state == ShardState::kInflight) {
    shard.state = ShardState::kPending;
  }
  state.cv.notify_all();
}

void mark_dead(SweepState& state, std::size_t w, const std::string& why) {
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.alive[w]) return;
  state.alive[w] = false;
  state.idle[w] = false;
  --state.live_workers;
  if (state.live_workers == 0 &&
      state.done_count < state.shards.size()) {
    state.abort_locked("all sweep workers failed; last failure: " + why);
  }
  state.cv.notify_all();
}

/// Validate and retire one response. Returns false (with abort set) on a
/// divergent duplicate or malformed response.
void complete_shard(SweepState& state, std::size_t w, std::size_t index,
                    const sw::serve::SweepFrame& response,
                    std::uint64_t expected_hash) {
  std::lock_guard<std::mutex> lock(state.mutex);
  Shard& shard = state.shards[index];
  if (response.kind != sw::serve::FrameKind::kResponse ||
      response.layout_hash != expected_hash ||
      response.word_offset != shard.offset ||
      response.num_words != shard.words ||
      response.num_cols != state.num_channels) {
    state.abort_locked("worker returned a response frame that does not "
                       "match its shard");
    return;
  }
  std::uint8_t* dst =
      state.merged.data() + shard.offset * state.num_channels;
  const std::size_t bytes = shard.words * state.num_channels;
  if (shard.state == ShardState::kDone) {
    // A re-sharded shard answered twice; both workers must agree on every
    // bit or the sweep result would depend on message timing.
    if (std::memcmp(dst, response.matrix.data(), bytes) != 0) {
      state.abort_locked(
          "duplicate shard results diverge bit-for-bit (offset " +
          std::to_string(shard.offset) + ")");
      return;
    }
    ++state.duplicate_results;
    return;
  }
  std::memcpy(dst, response.matrix.data(), bytes);
  shard.state = ShardState::kDone;
  ++state.done_count;
  ++state.completed[w];
  state.cv.notify_all();
}

struct WorkerContext {
  const sw::core::GateLayout* layout = nullptr;
  const std::vector<std::uint8_t>* matrix = nullptr;
  std::uint64_t expected_hash = 0;
  std::size_t slots = 0;
};

void worker_loop(SweepState& state, std::size_t w, const Endpoint& endpoint,
                 const SweepOptions& options, const WorkerContext& ctx) {
  Connection conn;
  try {
    conn = Connection::connect(endpoint, options.connect_timeout);
  } catch (const sw::util::Error& e) {
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      ++state.ready_workers;  // resolved, just not usefully
    }
    mark_dead(state, w, "connect to " + endpoint.to_string() +
                            " failed: " + e.what());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    ++state.ready_workers;
    state.cv.notify_all();
  }
  // Reused across shards: steady-state encoding allocates nothing once
  // the buffer has grown to one shard's frame size.
  std::vector<std::uint8_t> request_bytes;
  bool dead = false;
  bool finished = false;  ///< left the loop with the connection healthy
  while (!dead && !finished) {
    const std::uint64_t acquire_start = sw::obs::now_ns();
    const auto assigned = acquire_shard(state, w, options);
    if (!assigned) break;
    const std::size_t index = *assigned;
    // One trace per shard assignment: id = shard index, track = worker
    // index, so a duplicated shard shows up once per claiming worker.
    sw::obs::TraceContext trace;
    trace.id = index;
    trace.track = w;
    trace.add(sw::obs::Phase::kShardAssign, acquire_start,
              sw::obs::now_ns());
    std::size_t offset, words;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      offset = state.shards[index].offset;
      words = state.shards[index].words;
    }
    // Zero-copy request: the frame encoder packs the shard's word range
    // straight out of the sweep matrix (no row copy, no payload vector),
    // with the layout hash computed once for the whole sweep.
    const std::span<const std::uint8_t> rows{
        ctx.matrix->data() + offset * ctx.slots, words * ctx.slots};
    const std::size_t send_slot = trace.begin(sw::obs::Phase::kShardSend);
    try {
      request_bytes.clear();
      append_frame_message(
          request_bytes,
          sw::serve::make_request_view(ctx.layout->spec, ctx.expected_hash,
                                       offset, words, rows));
      conn.send_all(request_bytes, options.io_timeout);
    } catch (const sw::util::Error& e) {
      requeue_shard(state, index);
      mark_dead(state, w, e.what());
      // The open send span is dropped by the emitter; what was stamped
      // (the assign span) still lands in the timeline.
      if (options.recorder) options.recorder->record(trace);
      return;
    }
    trace.end(send_slot);
    // Wait for this shard's response, tick by tick, so sweep completion,
    // aborts and the wall deadline all preempt a silent peer.
    std::size_t wait_slot = trace.begin(sw::obs::Phase::kShardWait);
    std::optional<Clock::time_point> grace_deadline;
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (state.aborted) {
          finished = true;
          break;
        }
        if (Clock::now() > state.wall_deadline) {
          state.abort_locked("sweep wall deadline exceeded");
          finished = true;
          break;
        }
        if (state.done_count == state.shards.size() && !grace_deadline) {
          // Sweep is complete without us: linger only for the dedup
          // grace window, then abandon the redundant response.
          grace_deadline = Clock::now() + options.duplicate_grace;
        }
        if (grace_deadline && Clock::now() >= *grace_deadline &&
            state.shards[index].state == ShardState::kDone) {
          // Shard retired elsewhere; nothing left to verify. Fall out to
          // the shutdown path — this worker still deserves its
          // kShutdown even though its last answer went unused.
          finished = true;
          break;
        }
      }
      try {
        if (!conn.wait_readable(options.poll_tick)) continue;
        const auto frame = recv_frame(conn, options.io_timeout);
        if (!frame) {
          throw sw::util::Error("worker closed the connection mid-sweep");
        }
        trace.end(wait_slot);
        wait_slot = sw::obs::TraceContext::kNoSlot;
        const std::size_t retire_slot =
            trace.begin(sw::obs::Phase::kShardRetire);
        complete_shard(state, w, index, *frame, ctx.expected_hash);
        trace.end(retire_slot);
        break;
      } catch (const RemoteError& e) {
        if (e.code() == ErrorCode::kOverload) {
          // The worker shed the shard under admission control: re-queue
          // it and ask again — the connection itself is still healthy.
          {
            std::lock_guard<std::mutex> lock(state.mutex);
            ++state.overload_retries;
          }
          requeue_shard(state, index);
          std::this_thread::sleep_for(options.poll_tick);
          break;
        }
        requeue_shard(state, index);
        mark_dead(state, w, e.what());
        dead = true;
        break;
      } catch (const sw::util::Error& e) {
        // Stream corruption or a mid-frame stall: the connection is
        // unusable. (A *silent* peer does not land here — wait_readable
        // just ticks — so a SIGSTOPped worker keeps its shard in flight
        // until the straggler deadline hands it to someone else.)
        requeue_shard(state, index);
        mark_dead(state, w, e.what());
        dead = true;
        break;
      }
    }
    if (wait_slot != sw::obs::TraceContext::kNoSlot) trace.end(wait_slot);
    if (options.recorder) options.recorder->record(trace);
  }
  if (options.shutdown_workers && !dead) {
    bool completed;
    {
      // Check under the lock, send outside it: a peer with a full send
      // buffer may block this thread for io_timeout, and that must not
      // serialise the other workers' exits.
      std::lock_guard<std::mutex> lock(state.mutex);
      completed =
          !state.aborted && state.done_count == state.shards.size();
    }
    if (completed) {
      try {
        Message m;
        m.kind = MessageKind::kShutdown;
        send_message(conn, m, options.io_timeout);
      } catch (const sw::util::Error&) {
        // Best-effort: a worker that died after its last shard still
        // leaves the sweep result intact.
      }
    }
  }
}

}  // namespace

SweepCoordinator::SweepCoordinator(std::vector<Endpoint> workers,
                                   SweepOptions options)
    : workers_(std::move(workers)), options_(options) {
  SW_REQUIRE(!workers_.empty(), "sweep coordinator needs >= 1 worker");
  SW_REQUIRE(options_.shard_words > 0, "shard_words must be positive");
}

std::vector<Endpoint> SweepCoordinator::discover(
    const Endpoint& registry, std::size_t min_workers,
    std::chrono::milliseconds timeout) {
  SW_REQUIRE(min_workers > 0, "discover needs min_workers >= 1");
  const auto deadline = Clock::now() + timeout;
  std::string last_state = "registry not reached yet";
  for (;;) {
    std::chrono::milliseconds left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              Clock::now());
    if (left.count() <= 0) {
      throw TimeoutError("worker discovery timed out (" + last_state + ")");
    }
    try {
      const auto adverts = fetch_registry(registry, left);
      if (adverts.size() >= min_workers) {
        std::vector<Endpoint> endpoints;
        endpoints.reserve(adverts.size());
        for (const WorkerAdvert& a : adverts) {
          endpoints.push_back(Endpoint::parse(a.endpoint));
        }
        return endpoints;
      }
      last_state = std::to_string(adverts.size()) + " of " +
                   std::to_string(min_workers) + " workers registered";
    } catch (const TimeoutError&) {
      throw TimeoutError("worker discovery timed out (" + last_state + ")");
    } catch (const sw::util::Error& e) {
      last_state = e.what();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

std::vector<std::uint8_t> SweepCoordinator::run(
    const sw::core::GateLayout& layout,
    const std::vector<std::uint8_t>& matrix, std::size_t num_words,
    SweepReport* report) {
  const std::size_t slots =
      layout.spec.frequencies.size() * layout.spec.num_inputs;
  SW_REQUIRE(slots > 0, "layout has no input slots");
  SW_REQUIRE(matrix.size() == num_words * slots,
             "input matrix must be num_words x slot_count");

  SweepState state;
  state.num_channels = layout.spec.frequencies.size();
  state.merged.assign(num_words * state.num_channels, 0);
  for (std::size_t offset = 0; offset < num_words;
       offset += options_.shard_words) {
    Shard shard;
    shard.offset = offset;
    shard.words = std::min(options_.shard_words, num_words - offset);
    state.shards.push_back(shard);
  }
  state.idle.assign(workers_.size(), false);
  state.alive.assign(workers_.size(), true);
  state.completed.assign(workers_.size(), 0);
  state.live_workers = workers_.size();
  state.wall_deadline = Clock::now() + options_.max_wall;

  WorkerContext ctx;
  ctx.layout = &layout;
  ctx.matrix = &matrix;
  ctx.expected_hash = sw::serve::hash_layout(layout);
  ctx.slots = slots;

  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    threads.emplace_back([this, &state, &ctx, w] {
      worker_loop(state, w, workers_[w], options_, ctx);
    });
  }
  for (auto& t : threads) t.join();

  std::lock_guard<std::mutex> lock(state.mutex);
  if (report) {
    report->shards = state.shards.size();
    report->resharded = state.resharded;
    report->duplicate_results = state.duplicate_results;
    report->overload_retries = state.overload_retries;
    report->dead_workers = 0;
    for (const bool alive : state.alive) {
      if (!alive) ++report->dead_workers;
    }
    report->shards_per_worker = state.completed;
  }
  SW_REQUIRE(!state.aborted, "sweep aborted: " + state.error);
  SW_ASSERT(state.done_count == state.shards.size(),
            "sweep ended with unfinished shards");
  return std::move(state.merged);
}

}  // namespace sw::net
