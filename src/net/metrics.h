// Plain-text metrics rendering for the networked serving subsystem.
//
// The metrics endpoint answers a kMetricsRequest message with one text
// document in the Prometheus exposition style — `name value` lines, flags
// as `name{name="…"} 1` — because that is what every scraper and human
// `nc`-debugging a stalled worker already reads. Rendering is split from
// the server so the serving benches and tests can format a ServiceStats
// snapshot without standing up a socket.
#pragma once

#include <string>

#include "serve/service.h"

namespace sw::net {

/// Per-server transport counters, appended below the service section.
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;  ///< over max_connections
  std::uint64_t frames_received = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t errors_sent = 0;
  std::uint64_t overloads = 0;
  std::uint64_t metrics_requests = 0;
  std::uint64_t trace_requests = 0;
  /// Times a connection's reads were paused because its in-flight count
  /// hit the pipelining cap (back-pressure, not shedding).
  std::uint64_t backpressure_pauses = 0;
  /// Payload volume actually moved on the sockets, both directions —
  /// frames tell you how many, these tell you how much.
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::size_t active_connections = 0;
};

/// Registry-health counters, rendered by the RegistryServer's own metrics
/// endpoint (sw_registry_* lines).
struct RegistryCounters {
  std::uint64_t upserts = 0;      ///< registrations + heartbeats applied
  std::uint64_t expirations = 0;  ///< adverts pruned past their TTL
  std::uint64_t registry_requests = 0;
  std::uint64_t metrics_requests = 0;
  std::size_t live_adverts = 0;
  /// Age of the stalest live advert (0 when none): the registry-health
  /// early warning — it approaches the TTL right before an expiration.
  double oldest_advert_age_s = 0.0;
};

/// Render the service section: request/latency/plan-cache gauges, the
/// request-phase histograms (`sw_serve_*_seconds` / `sw_serve_batch_words`
/// in Prometheus `_bucket`/`_sum`/`_count` form) plus the kernel and
/// precision flags.
std::string render_service_metrics(const sw::serve::ServiceStats& stats);

/// Render the transport section (sw_net_* lines).
std::string render_server_metrics(const ServerCounters& counters);

/// Render the registry section (sw_registry_* lines).
std::string render_registry_metrics(const RegistryCounters& counters);

}  // namespace sw::net
