// Plain-text metrics rendering for the networked serving subsystem.
//
// The metrics endpoint answers a kMetricsRequest message with one text
// document in the Prometheus exposition style — `name value` lines, flags
// as `name{name="…"} 1` — because that is what every scraper and human
// `nc`-debugging a stalled worker already reads. Rendering is split from
// the server so the serving benches and tests can format a ServiceStats
// snapshot without standing up a socket.
#pragma once

#include <string>

#include "serve/service.h"

namespace sw::net {

/// Per-server transport counters, appended below the service section.
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;  ///< over max_connections
  std::uint64_t frames_received = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t errors_sent = 0;
  std::uint64_t overloads = 0;
  std::uint64_t metrics_requests = 0;
  /// Times a connection's reads were paused because its in-flight count
  /// hit the pipelining cap (back-pressure, not shedding).
  std::uint64_t backpressure_pauses = 0;
  std::size_t active_connections = 0;
};

/// Render the service section: request/latency/plan-cache gauges plus the
/// kernel and precision flags.
std::string render_service_metrics(const sw::serve::ServiceStats& stats);

/// Render the transport section (sw_net_* lines).
std::string render_server_metrics(const ServerCounters& counters);

}  // namespace sw::net
