// Dispersion of the reduced 1-D waveguide model used by the micromagnetic
// benches: exchange spin waves on a chain with a local (cross-section)
// demag tensor. This is, by construction, the *exact* linear spectrum of
// Simulation + ExchangeField + UniaxialAnisotropyField + DemagLocalField,
// so gate designs built on it are self-consistent with the solver.
#pragma once

#include "dispersion/model.h"
#include "dispersion/waveguide.h"
#include "mag/vec3.h"

namespace sw::disp {

/// Linearising LLG about m = +z with local demag diag(Nx, Ny, Nz) gives the
/// elliptical-precession (Kittel-like) dispersion
///
///   omega(k) = gamma mu0 sqrt( (Hi + Nx Ms + Ms lex^2 k^2)
///                            * (Hi + Ny Ms + Ms lex^2 k^2) )
///   Hi       = Hk - Nz Ms + Hext.
class LocalDemag1DDispersion final : public DispersionModel {
 public:
  /// `factors` must match the DemagLocalField used in the simulation.
  LocalDemag1DDispersion(const sw::mag::Material& mat,
                         const sw::mag::Vec3& factors, double h_ext = 0.0);

  /// Convenience: factors from the waveguide cross-section (length treated
  /// as infinite along the propagation axis).
  static LocalDemag1DDispersion from_waveguide(const Waveguide& wg,
                                               double h_ext = 0.0);

  double frequency(double k) const override;
  std::string name() const override { return "local-demag-1d"; }

  /// Ellipticity ratio sqrt(H2/H1) of the precession at wavenumber k; the
  /// mx/my amplitude ratio a detector sees.
  double ellipticity(double k) const;

  /// Make the model exact for a finite-difference chain with cell size dx:
  /// the exchange term uses the discrete Laplacian symbol
  /// k_eff^2 = 2(1 - cos(k dx))/dx^2 instead of k^2, so designed spacings
  /// match the solver's actual wavelengths to rounding error. Pass 0 to
  /// revert to the continuum form.
  void set_discretization(double dx) { dx_ = dx; }

 private:
  double effective_k2(double k) const;

  double h1_ = 0.0;  ///< Hi + Nx Ms [A/m]
  double h2_ = 0.0;  ///< Hi + Ny Ms [A/m]
  double ms_lex2_ = 0.0;
  double dx_ = 0.0;  ///< 0 = continuum
};

}  // namespace sw::disp
