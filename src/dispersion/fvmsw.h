// Forward-volume magnetostatic spin waves (FVMSW) in a perpendicularly
// magnetised film: the configuration the paper uses, chosen for its
// isotropic in-plane dispersion.
#pragma once

#include "dispersion/model.h"
#include "dispersion/waveguide.h"

namespace sw::disp {

/// Kalinikos-Slavin lowest-thickness-mode FVMSW dispersion with exchange and
/// width-mode quantisation:
///
///   omega(k)^2 = (w0 + wM l_ex^2 kt^2) * (w0 + wM l_ex^2 kt^2 + wM F(kt d))
///   F(x)     = 1 - (1 - exp(-x)) / x
///   kt^2     = k^2 + (n pi / w_eff)^2     (total wavenumber incl. width mode)
///   w0       = gamma mu0 (Hk - Ms + Hext) (internal field, PMA film)
///
/// The paper's device has Hk > Ms so Hext = 0 works (self-biased).
class FvmswDispersion final : public DispersionModel {
 public:
  explicit FvmswDispersion(const Waveguide& wg, double h_ext = 0.0);

  double frequency(double k) const override;
  std::string name() const override { return "fvmsw"; }

  /// Internal (out-of-plane) field Hk - Ms + Hext [A/m].
  double internal_field() const { return h_int_; }

  /// Quantised transverse wavenumber [rad/m].
  double k_transverse() const { return ky_; }

 private:
  Waveguide wg_;
  double h_int_ = 0.0;
  double ky_ = 0.0;
  double w0_ = 0.0;       ///< gamma mu0 H_int [rad/s]
  double wm_ = 0.0;       ///< gamma mu0 Ms [rad/s]
  double lex2_ = 0.0;     ///< exchange length squared [m^2]
};

}  // namespace sw::disp
