// Spin-wave dispersion model interface.
//
// A model maps propagation wavenumber k (rad/m, along the waveguide) to
// frequency f (Hz). Inversion, wavelength and group velocity are provided
// generically via Brent root finding and numeric differentiation.
#pragma once

#include <memory>
#include <string>

namespace sw::disp {

class DispersionModel {
 public:
  virtual ~DispersionModel() = default;

  /// Frequency [Hz] of the mode at wavenumber k [rad/m] (k >= 0).
  virtual double frequency(double k) const = 0;

  /// Lowest supported frequency (k -> 0 limit), i.e. the FMR of the guide.
  virtual double fmr() const { return frequency(0.0); }

  /// Short printable name.
  virtual std::string name() const = 0;

  /// Wavenumber [rad/m] for frequency f [Hz]; throws if f < fmr() or f is
  /// beyond `k_max` (default 5 rad/nm, far past any realistic magnon).
  double k_from_frequency(double f, double k_max = 5e9) const;

  /// Wavelength [m] for frequency f [Hz].
  double wavelength(double f) const;

  /// Group velocity d(omega)/dk [m/s] at wavenumber k (central difference).
  double group_velocity(double k) const;

  /// Group velocity at the k corresponding to frequency f.
  double group_velocity_at_frequency(double f) const;

  /// Phase velocity omega/k [m/s] at wavenumber k (k > 0).
  double phase_velocity(double k) const;
};

}  // namespace sw::disp
