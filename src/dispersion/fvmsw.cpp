#include "dispersion/fvmsw.h"

#include <cmath>

#include "util/constants.h"
#include "util/error.h"

namespace sw::disp {

using sw::util::kGammaMu0;
using sw::util::kPi;
using sw::util::kTwoPi;

FvmswDispersion::FvmswDispersion(const Waveguide& wg, double h_ext)
    : wg_(wg) {
  wg.material.validate();
  SW_REQUIRE(wg.width > 0.0 && wg.thickness > 0.0, "bad waveguide geometry");
  SW_REQUIRE(wg.width_mode >= 1, "width mode must be >= 1");
  const auto& m = wg.material;
  h_int_ = m.anisotropy_field() - m.Ms + h_ext;
  SW_REQUIRE(h_int_ > 0.0,
             "film is not perpendicularly magnetised (Hk + Hext <= Ms)");
  ky_ = static_cast<double>(wg.width_mode) * kPi / wg.effective_width();
  w0_ = kGammaMu0 * h_int_;
  wm_ = kGammaMu0 * m.Ms;
  const double lex = m.exchange_length();
  lex2_ = lex * lex;
}

double FvmswDispersion::frequency(double k) const {
  SW_REQUIRE(k >= 0.0, "k must be non-negative");
  const double kt2 = k * k + ky_ * ky_;
  const double kt = std::sqrt(kt2);
  const double x = kt * wg_.thickness;
  // F(x) = 1 - (1 - exp(-x))/x; series for small x avoids 0/0.
  double F;
  if (x < 1e-6) {
    F = 0.5 * x - x * x / 6.0;
  } else {
    F = 1.0 - (1.0 - std::exp(-x)) / x;
  }
  const double wk = w0_ + wm_ * lex2_ * kt2;
  const double w2 = wk * (wk + wm_ * F);
  return std::sqrt(w2) / kTwoPi;
}

}  // namespace sw::disp
