// Waveguide geometry description shared by the dispersion models and the
// gate designer.
#pragma once

#include "mag/material.h"

namespace sw::disp {

/// A straight rectangular-cross-section waveguide (the paper's device).
struct Waveguide {
  sw::mag::Material material;
  double width = 50e-9;      ///< in-plane width [m] (paper: 50 nm)
  double thickness = 1e-9;   ///< film thickness [m] (paper: 1 nm)

  /// Effective width fraction accounting for dipolar edge pinning; the
  /// quantised transverse wavenumber is n*pi/(pinning_factor*width).
  double pinning_factor = 0.92;

  /// Transverse (width) mode index used by quantised models.
  int width_mode = 1;

  double effective_width() const { return pinning_factor * width; }
};

}  // namespace sw::disp
