#include "dispersion/bvmsw_de.h"

#include <cmath>

#include "util/constants.h"
#include "util/error.h"

namespace sw::disp {

using sw::util::kGammaMu0;
using sw::util::kTwoPi;

namespace {
double thickness_form_factor(double x) {
  if (x < 1e-6) return 0.5 * x - x * x / 6.0;
  return 1.0 - (1.0 - std::exp(-x)) / x;
}
}  // namespace

BvmswDispersion::BvmswDispersion(const Waveguide& wg, double h_internal)
    : wg_(wg) {
  wg.material.validate();
  SW_REQUIRE(h_internal > 0.0, "internal field must be positive");
  w0_ = kGammaMu0 * h_internal;
  wm_ = kGammaMu0 * wg.material.Ms;
  const double lex = wg.material.exchange_length();
  lex2_ = lex * lex;
}

double BvmswDispersion::frequency(double k) const {
  SW_REQUIRE(k >= 0.0, "k must be non-negative");
  const double wk = w0_ + wm_ * lex2_ * k * k;
  const double F = thickness_form_factor(k * wg_.thickness);
  const double w2 = wk * (wk + wm_ * (1.0 - F));
  return std::sqrt(w2) / kTwoPi;
}

DamonEshbachDispersion::DamonEshbachDispersion(const Waveguide& wg,
                                               double h_internal)
    : wg_(wg) {
  wg.material.validate();
  SW_REQUIRE(h_internal > 0.0, "internal field must be positive");
  w0_ = kGammaMu0 * h_internal;
  wm_ = kGammaMu0 * wg.material.Ms;
  const double lex = wg.material.exchange_length();
  lex2_ = lex * lex;
}

double DamonEshbachDispersion::frequency(double k) const {
  SW_REQUIRE(k >= 0.0, "k must be non-negative");
  const double wex = wm_ * lex2_ * k * k;
  const double w0k = w0_ + wex;
  const double w2 = w0k * (w0k + wm_) +
                    (wm_ * wm_ / 4.0) * (1.0 - std::exp(-2.0 * k * wg_.thickness));
  return std::sqrt(w2) / kTwoPi;
}

}  // namespace sw::disp
