// Backward-volume and surface (Damon-Eshbach) magnetostatic waves, for
// completeness of the dispersion library and for cross-configuration tests.
// Both assume an in-plane magnetised film with internal field H (A/m).
#pragma once

#include "dispersion/model.h"
#include "dispersion/waveguide.h"

namespace sw::disp {

/// BVMSW: propagation parallel to in-plane M. Dipole branch is backward
/// (negative group velocity) until exchange takes over.
///   omega^2 = wk * (wk + wM * (1 - F(k d)))   with wk = w0 + wM lex^2 k^2.
class BvmswDispersion final : public DispersionModel {
 public:
  BvmswDispersion(const Waveguide& wg, double h_internal);

  double frequency(double k) const override;
  std::string name() const override { return "bvmsw"; }

 private:
  Waveguide wg_;
  double w0_ = 0.0, wm_ = 0.0, lex2_ = 0.0;
};

/// Damon-Eshbach surface waves: propagation perpendicular to in-plane M.
///   omega^2 = w0 (w0 + wM) + (wM^2 / 4)(1 - exp(-2 k d)) + exchange term.
class DamonEshbachDispersion final : public DispersionModel {
 public:
  DamonEshbachDispersion(const Waveguide& wg, double h_internal);

  double frequency(double k) const override;
  std::string name() const override { return "damon-eshbach"; }

 private:
  Waveguide wg_;
  double w0_ = 0.0, wm_ = 0.0, lex2_ = 0.0;
};

}  // namespace sw::disp
