#include "dispersion/local_1d.h"

#include <cmath>

#include "mag/demag_factors.h"
#include "util/constants.h"
#include "util/error.h"

namespace sw::disp {

using sw::util::kGammaMu0;
using sw::util::kTwoPi;

LocalDemag1DDispersion::LocalDemag1DDispersion(const sw::mag::Material& mat,
                                               const sw::mag::Vec3& factors,
                                               double h_ext) {
  mat.validate();
  const double hi = mat.anisotropy_field() - factors.z * mat.Ms + h_ext;
  SW_REQUIRE(hi > 0.0, "magnetisation not stable along +z (Hi <= 0)");
  h1_ = hi + factors.x * mat.Ms;
  h2_ = hi + factors.y * mat.Ms;
  const double lex = mat.exchange_length();
  ms_lex2_ = mat.Ms * lex * lex;
}

LocalDemag1DDispersion LocalDemag1DDispersion::from_waveguide(
    const Waveguide& wg, double h_ext) {
  const auto n = sw::mag::demag_factors_waveguide(wg.width, wg.thickness);
  return LocalDemag1DDispersion(wg.material, n, h_ext);
}

double LocalDemag1DDispersion::effective_k2(double k) const {
  if (dx_ <= 0.0 || k * dx_ < 1e-4) return k * k;
  return 2.0 * (1.0 - std::cos(k * dx_)) / (dx_ * dx_);
}

double LocalDemag1DDispersion::frequency(double k) const {
  SW_REQUIRE(k >= 0.0, "k must be non-negative");
  const double ex = ms_lex2_ * effective_k2(k);
  return kGammaMu0 * std::sqrt((h1_ + ex) * (h2_ + ex)) / kTwoPi;
}

double LocalDemag1DDispersion::ellipticity(double k) const {
  const double ex = ms_lex2_ * effective_k2(k);
  return std::sqrt((h2_ + ex) / (h1_ + ex));
}

}  // namespace sw::disp
