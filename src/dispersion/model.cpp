#include "dispersion/model.h"

#include <cmath>

#include "util/constants.h"
#include "util/error.h"
#include "util/root_find.h"

namespace sw::disp {

using sw::util::kTwoPi;

double DispersionModel::k_from_frequency(double f, double k_max) const {
  SW_REQUIRE(f > 0.0, "frequency must be positive");
  const double f0 = frequency(0.0);
  SW_REQUIRE(f >= f0,
             "frequency " + std::to_string(f) + " Hz below the band bottom (" +
                 std::to_string(f0) + " Hz)");
  if (f == f0) return 0.0;
  SW_REQUIRE(frequency(k_max) >= f, "frequency beyond k_max");
  const auto res = sw::util::brent(
      [this, f](double k) { return frequency(k) - f; }, 0.0, k_max,
      {.x_tol = 1e-6, .f_tol = 1e-3 * f, .max_iterations = 300});
  SW_REQUIRE(res.converged, "dispersion inversion did not converge");
  return res.x;
}

double DispersionModel::wavelength(double f) const {
  const double k = k_from_frequency(f);
  SW_REQUIRE(k > 0.0, "zero wavenumber has no finite wavelength");
  return kTwoPi / k;
}

double DispersionModel::group_velocity(double k) const {
  const double h = std::max(1e3, std::abs(k) * 1e-5);  // rad/m step
  const double k_lo = std::max(0.0, k - h);
  const double k_hi = k + h;
  return kTwoPi * (frequency(k_hi) - frequency(k_lo)) / (k_hi - k_lo);
}

double DispersionModel::group_velocity_at_frequency(double f) const {
  return group_velocity(k_from_frequency(f));
}

double DispersionModel::phase_velocity(double k) const {
  SW_REQUIRE(k > 0.0, "phase velocity needs k > 0");
  return kTwoPi * frequency(k) / k;
}

}  // namespace sw::disp
