// SIMD bulk codec for the bit-packed wire matrix (serve/wire.cpp's hot
// loop), mirroring the wavesim kernel pattern: the vector implementations
// live in exactly one TU (wire_simd.cpp) behind a runtime CPUID check in
// the dispatcher, and this header exposes only portable candidate
// accessors that return nullptr when the build lacks the codegen.
//
// Two flavours exist: AVX2 (32 cells per step via byte-compare + movemask)
// and AVX-512 (64 cells per step via masked byte ops — one
// _mm512_test_epi8_mask per pack step, one maskz byte-broadcast per unpack
// step). Both operate on the *flat* cell stream — valid whenever
// num_cols % 8 == 0, where packed rows tile the payload with no padding
// bits — and process only whole `step`-packed-byte groups; the caller
// finishes any remainder with the scalar helpers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sw::serve::detail {

struct WireCodec {
  /// Pack cells[0 .. packed_bytes*8) (one byte per cell, nonzero = 1) into
  /// packed_bytes output bytes, bit i of byte b = cell b*8 + i.
  /// `packed_bytes` must be a multiple of `step`.
  void (*pack)(const std::uint8_t* cells, std::size_t packed_bytes,
               std::uint8_t* out);
  /// Inverse: expand packed_bytes bytes into 0/1 cells. Same multiple-of-
  /// `step` contract.
  void (*unpack)(const std::uint8_t* packed, std::size_t packed_bytes,
                 std::uint8_t* cells);
  /// Packed-byte granularity of one vector step (4 for AVX2's 32 cells, 8
  /// for AVX-512's 64). Always a power of two; the caller computes its
  /// bulk prefix as `total & ~(step - 1)`.
  std::size_t step;
};

/// The AVX2 codec, or nullptr when this TU was built without -mavx2. The
/// caller still gates on __builtin_cpu_supports("avx2") before use.
const WireCodec* wire_codec_avx2_candidate();

/// The AVX-512 codec, or nullptr when the build lacks AVX-512 codegen. The
/// caller still gates on __builtin_cpu_supports for "avx512f" AND
/// "avx512bw" (the byte-mask ops are BW) before use.
const WireCodec* wire_codec_avx512_candidate();

}  // namespace sw::serve::detail
