// SIMD bulk codec for the bit-packed wire matrix (serve/wire.cpp's hot
// loop), mirroring the wavesim kernel pattern: the AVX2 implementation
// lives in exactly one -mavx2 TU (wire_simd.cpp) behind a runtime CPUID
// check, and this header exposes only a portable candidate accessor that
// returns nullptr when the build or the host lacks AVX2.
//
// Both functions operate on the *flat* cell stream — valid whenever
// num_cols % 8 == 0, where packed rows tile the payload with no padding
// bits — and process only whole 32-cell groups; the caller finishes any
// remainder with the scalar helpers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sw::serve::detail {

struct WireCodec {
  /// Pack cells[0 .. packed_bytes*8) (one byte per cell, nonzero = 1) into
  /// packed_bytes output bytes, bit i of byte b = cell b*8 + i.
  /// `packed_bytes` must be a multiple of 4 (32 cells per step).
  void (*pack)(const std::uint8_t* cells, std::size_t packed_bytes,
               std::uint8_t* out);
  /// Inverse: expand packed_bytes bytes into 0/1 cells. Same multiple-of-4
  /// contract.
  void (*unpack)(const std::uint8_t* packed, std::size_t packed_bytes,
                 std::uint8_t* cells);
};

/// The AVX2 codec, or nullptr when this TU was built without -mavx2. The
/// caller still gates on __builtin_cpu_supports("avx2") before use.
const WireCodec* wire_codec_avx2_candidate();

}  // namespace sw::serve::detail
