// SIMD bulk bit-pack/unpack for the wire codec. The AVX2 flavour rides the
// TU-wide -mavx2 flag (added by CMake when the toolchain has it); the
// AVX-512 flavour stays in this same TU behind per-function target
// attributes, so the AVX2 code keeps its VEX encoding (no TU-wide
// -mavx512* flags that could leak EVEX instructions into the AVX2 path and
// SIGILL an AVX2-only host). The dispatcher in wire.cpp only calls either
// after a runtime CPUID check, so the library stays portable.
#include "serve/wire_simd.h"

#if defined(SWLOGIC_WIRE_AVX2)

#include <immintrin.h>

#include <cstring>

namespace sw::serve::detail {

namespace {

/// 32 cells -> 4 packed bytes per step: compare-to-zero gives a byte mask,
/// movemask gathers one bit per byte in exactly the wire order (bit i of
/// packed byte b = cell b*8 + i, little-endian across the u32).
void pack_avx2(const std::uint8_t* cells, std::size_t packed_bytes,
               std::uint8_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  for (std::size_t b = 0; b + 4 <= packed_bytes; b += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(cells + b * 8));
    const __m256i is_zero = _mm256_cmpeq_epi8(v, zero);
    const std::uint32_t mask =
        ~static_cast<std::uint32_t>(_mm256_movemask_epi8(is_zero));
    std::memcpy(out + b, &mask, 4);
  }
}

/// 4 packed bytes -> 32 cells per step: broadcast the u32, shuffle each
/// packed byte across its 8 destination lanes, select each lane's bit and
/// normalise the 0xFF compare mask to 0/1.
void unpack_avx2(const std::uint8_t* packed, std::size_t packed_bytes,
                 std::uint8_t* cells) {
  // Per 128-bit lane the shuffle sources its own lane of the broadcast, so
  // lane 0 spreads packed bytes 0-1 and lane 1 spreads bytes 2-3.
  const __m256i spread_ctl = _mm256_setr_epi8(
      0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1,
      2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3);
  const __m256i bit_sel =
      _mm256_set1_epi64x(static_cast<long long>(0x8040201008040201ull));
  const __m256i one = _mm256_set1_epi8(1);
  for (std::size_t b = 0; b + 4 <= packed_bytes; b += 4) {
    std::uint32_t word;
    std::memcpy(&word, packed + b, 4);
    const __m256i v = _mm256_set1_epi32(static_cast<int>(word));
    const __m256i bytes = _mm256_shuffle_epi8(v, spread_ctl);
    const __m256i sel = _mm256_and_si256(bytes, bit_sel);
    const __m256i ones = _mm256_cmpeq_epi8(sel, bit_sel);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cells + b * 8),
                        _mm256_and_si256(ones, one));
  }
}

constexpr WireCodec kAvx2Codec{pack_avx2, unpack_avx2, 4};

}  // namespace

const WireCodec* wire_codec_avx2_candidate() { return &kAvx2Codec; }

}  // namespace sw::serve::detail

#else  // !SWLOGIC_WIRE_AVX2

namespace sw::serve::detail {

const WireCodec* wire_codec_avx2_candidate() { return nullptr; }

}  // namespace sw::serve::detail

#endif

#if defined(SWLOGIC_WIRE_AVX512)

#include <immintrin.h>

#include <cstring>

namespace sw::serve::detail {

namespace {

/// 64 cells -> 8 packed bytes per step: one masked byte test turns the
/// whole register into a __mmask64 whose bit j is "cell j nonzero" — which
/// is already the wire order (bit i of packed byte b = cell b*8 + i,
/// little-endian across the u64).
__attribute__((target("avx512f,avx512bw"))) void pack_avx512(
    const std::uint8_t* cells, std::size_t packed_bytes, std::uint8_t* out) {
  for (std::size_t b = 0; b + 8 <= packed_bytes; b += 8) {
    const __m512i v = _mm512_loadu_si512(cells + b * 8);
    const std::uint64_t mask =
        _cvtmask64_u64(_mm512_test_epi8_mask(v, v));
    std::memcpy(out + b, &mask, 8);
  }
}

/// 8 packed bytes -> 64 cells per step: reinterpret the bytes as a
/// __mmask64 and let a masked zero-broadcast write 1 where the bit is set,
/// 0 elsewhere — no shuffle/bit-select dance at all.
__attribute__((target("avx512f,avx512bw"))) void unpack_avx512(
    const std::uint8_t* packed, std::size_t packed_bytes,
    std::uint8_t* cells) {
  const __m512i one = _mm512_set1_epi8(1);
  for (std::size_t b = 0; b + 8 <= packed_bytes; b += 8) {
    std::uint64_t word;
    std::memcpy(&word, packed + b, 8);
    _mm512_storeu_si512(cells + b * 8,
                        _mm512_maskz_mov_epi8(_cvtu64_mask64(word), one));
  }
}

constexpr WireCodec kAvx512Codec{pack_avx512, unpack_avx512, 8};

}  // namespace

const WireCodec* wire_codec_avx512_candidate() { return &kAvx512Codec; }

}  // namespace sw::serve::detail

#else  // !SWLOGIC_WIRE_AVX512

namespace sw::serve::detail {

const WireCodec* wire_codec_avx512_candidate() { return nullptr; }

}  // namespace sw::serve::detail

#endif
