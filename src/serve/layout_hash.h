// Canonical layout hashing for the serving layer.
//
// A cached evaluation plan is only reusable for a request whose gate
// geometry is *identical* — same frequencies, placements, amplitudes and
// inversion flags — so the cache key must be a pure function of the layout
// data: deterministic across process runs (no pointers, no iteration-order
// dependence) so that a coordinator and a worker binary can agree on it
// over the wire. hash_layout() is FNV-1a 64 over a canonical little-endian
// byte serialisation of every evaluation-relevant GateLayout field;
// LayoutKey keeps those bytes alongside the hash so cache lookups compare
// the full key and a 64-bit collision can never alias two layouts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/gate_design.h"

namespace sw::wavesim {
struct ProgramSpec;
}

namespace sw::serve {

/// FNV-1a 64-bit parameters (public so the wire format can reuse the same
/// primitive for payload checksums).
inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Byte-wise FNV-1a 64 over `bytes`, starting from `seed` (chain calls to
/// hash a logical concatenation without materialising it). Used for wire
/// checksums, where IO dominates anyway.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t seed = kFnvOffsetBasis);

/// FNV-1a 64 folded over little-endian u64 chunks (zero-padded tail, total
/// length mixed in last) — one multiply per 8 bytes instead of per byte,
/// for the per-request layout-hash fast path. Deterministic across runs
/// and processes like the byte-wise variant, but a distinct function: the
/// two never produce comparable values.
std::uint64_t chunked_fnv1a64(std::span<const std::uint8_t> bytes);

/// Canonical byte serialisation of a layout: format tag, then every field
/// of the spec and the placed geometry, little-endian, doubles as IEEE-754
/// bit patterns, every vector length-prefixed. Identical layouts produce
/// identical bytes in any process on any run; any change to the geometry,
/// ops (inversion flags) or frequencies changes the bytes.
std::vector<std::uint8_t> canonical_layout_bytes(
    const sw::core::GateLayout& layout);

/// 64-bit hash of canonical_layout_bytes(layout).
std::uint64_t hash_layout(const sw::core::GateLayout& layout);

/// Canonical byte serialisation of a multi-stage ProgramSpec: a format tag
/// distinct from the layout form (so a program and a layout can never hash
/// or compare equal), then the primary input count and every stage's
/// GateSpec plus interconnect map, little-endian and length-prefixed like
/// the layout bytes. This is what program cache keys and the v3 wire frames
/// agree on across processes.
std::vector<std::uint8_t> canonical_program_bytes(
    const sw::wavesim::ProgramSpec& program);

/// 64-bit hash of canonical_program_bytes(program) — the program analogue
/// of hash_layout(), used as the v3 frame routing hash.
std::uint64_t hash_program(const sw::wavesim::ProgramSpec& program);

/// Collision-safe plan-cache key: the hash indexes the cache, the canonical
/// bytes back equality, so two distinct layouts that collide on the 64-bit
/// hash still occupy distinct cache entries.
class LayoutKey {
 public:
  LayoutKey() = default;

  static LayoutKey from(const sw::core::GateLayout& layout);
  static LayoutKey from(const sw::wavesim::ProgramSpec& program);

  std::uint64_t hash() const { return hash_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  friend bool operator==(const LayoutKey& a, const LayoutKey& b) {
    return a.hash_ == b.hash_ && a.bytes_ == b.bytes_;
  }

 private:
  std::uint64_t hash_ = 0;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace sw::serve
