// Admission control for the evaluator service: a bounded request queue and
// a cap on in-flight words, with an explicit overload policy.
//
// The service must not buffer unbounded work when producers outrun the
// workers — memory and tail latency both blow up. AdmissionController
// gates every submission against two budgets (queued-but-not-started
// requests, and admitted-but-not-completed words) and applies one of two
// policies when a budget is exhausted: kBlock parks the submitter until
// capacity frees (backpressure), kShed fails fast with OverloadError so
// the caller can retry elsewhere. Both are surfaced directly to callers of
// EvaluatorService::submit.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/error.h"

namespace sw::serve {

/// Thrown by admit() under the kShed policy when a budget is exhausted.
class OverloadError : public sw::util::Error {
 public:
  explicit OverloadError(const std::string& what) : Error(what) {}
};

enum class OverloadPolicy : std::uint8_t {
  kBlock,  ///< park the submitter until capacity frees (backpressure)
  kShed,   ///< throw OverloadError immediately (fail fast)
};

struct AdmissionOptions {
  /// Max requests admitted but not yet picked up by a worker; 0 = unbounded.
  std::size_t max_queued_requests = 1024;
  /// Max words admitted but not yet completed; 0 = unbounded. A request
  /// larger than the whole budget is still admitted when the service is
  /// idle (otherwise it could never run); it then occupies the budget
  /// alone.
  std::size_t max_inflight_words = 0;
  OverloadPolicy policy = OverloadPolicy::kBlock;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Account one request of `words` words. Under kShed throws
  /// OverloadError when a budget is exhausted; under kBlock waits until it
  /// fits. Throws sw::util::Error if the controller is closed while (or
  /// before) waiting.
  void admit(std::size_t words);

  /// A worker picked the request up: it no longer counts against the
  /// queued-requests budget (its words stay in flight until release()).
  void mark_dequeued();

  /// The request completed (successfully or not): return its words.
  void release(std::size_t words);

  /// Wake every blocked submitter with an error; subsequent admits throw.
  void close();

  std::size_t queued() const;
  std::size_t inflight_words() const;
  std::uint64_t shed_total() const;
  std::uint64_t blocked_total() const;

 private:
  bool fits_locked(std::size_t words) const;

  AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable capacity_freed_;
  std::size_t queued_ = 0;
  std::size_t inflight_words_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t blocked_ = 0;
  bool closed_ = false;
};

}  // namespace sw::serve
