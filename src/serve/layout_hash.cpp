#include "serve/layout_hash.h"

#include "serve/byteio.h"
#include "wavesim/eval_program.h"

namespace sw::serve {

namespace {

using detail::ByteWriter;

// Bumped whenever the serialisation below changes shape, so bytes from two
// revisions of the canonical form can never compare equal by accident.
constexpr std::uint64_t kCanonicalFormatTag = 0x73776c3176310001ull;  // "swl1v1"+rev
// Program form: a different tag namespace entirely, so program bytes can
// never alias layout bytes of any revision.
constexpr std::uint64_t kProgramFormatTag = 0x7377707276310001ull;  // "swprv1"+rev

void append_gate_spec(ByteWriter& w, const sw::core::GateSpec& spec) {
  w.u64(spec.num_inputs);
  w.u64(spec.frequencies.size());
  for (const double f : spec.frequencies) w.f64(f);
  w.f64(spec.transducer_width);
  w.f64(spec.min_gap);
  w.f64(spec.min_same_channel_spacing);
  w.i64(spec.multiple_search);
  w.u64(spec.invert_output.size());
  for (const std::uint8_t b : spec.invert_output) w.u8(b ? 1 : 0);
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t chunked_fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = kFnvOffsetBasis;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(bytes[i + b]) << (8 * b);
    }
    h ^= v;
    h *= kFnvPrime;
  }
  std::uint64_t tail = 0;
  for (int s = 0; i < bytes.size(); ++i, s += 8) {
    tail |= static_cast<std::uint64_t>(bytes[i]) << s;
  }
  h ^= tail;
  h *= kFnvPrime;
  // Mixing in the length keeps zero-padded tails from aliasing ("\1" vs
  // "\1\0"), which plain chunk folding would otherwise allow.
  h ^= static_cast<std::uint64_t>(bytes.size());
  h *= kFnvPrime;
  return h;
}

std::vector<std::uint8_t> canonical_layout_bytes(
    const sw::core::GateLayout& layout) {
  const auto& spec = layout.spec;
  std::vector<std::uint8_t> out;
  const std::size_t bound =
      128 + 8 * (spec.frequencies.size() + layout.wavelengths.size() +
                 layout.multiple.size() + layout.spacing.size()) +
      spec.invert_output.size() + 32 * layout.sources.size() +
      17 * layout.detectors.size();
  ByteWriter w(out, bound);

  w.u64(kCanonicalFormatTag);

  w.u64(spec.num_inputs);
  w.u64(spec.frequencies.size());
  for (const double f : spec.frequencies) w.f64(f);
  w.f64(spec.transducer_width);
  w.f64(spec.min_gap);
  w.f64(spec.min_same_channel_spacing);
  w.i64(spec.multiple_search);
  w.u64(spec.invert_output.size());
  // Normalise the flags so any nonzero truthy value hashes identically.
  for (const std::uint8_t b : spec.invert_output) w.u8(b ? 1 : 0);

  w.u64(layout.wavelengths.size());
  for (const double wl : layout.wavelengths) w.f64(wl);
  w.u64(layout.multiple.size());
  for (const int m : layout.multiple) w.i64(m);
  w.u64(layout.spacing.size());
  for (const double d : layout.spacing) w.f64(d);

  w.u64(layout.sources.size());
  for (const auto& s : layout.sources) {
    w.u64(s.channel);
    w.u64(s.input);
    w.f64(s.x);
    w.f64(s.amplitude);
  }
  w.u64(layout.detectors.size());
  for (const auto& d : layout.detectors) {
    w.u64(d.channel);
    w.f64(d.x);
    w.u8(d.inverted ? 1 : 0);
  }
  w.finish();
  return out;
}

std::uint64_t hash_layout(const sw::core::GateLayout& layout) {
  return chunked_fnv1a64(canonical_layout_bytes(layout));
}

std::vector<std::uint8_t> canonical_program_bytes(
    const sw::wavesim::ProgramSpec& program) {
  std::vector<std::uint8_t> out;
  std::size_t bound = 32;
  for (const auto& stage : program.stages) {
    bound += 128 + 8 * stage.gate.frequencies.size() +
             stage.gate.invert_output.size() + 18 * stage.sources.size();
  }
  ByteWriter w(out, bound);

  w.u64(kProgramFormatTag);
  w.u64(program.num_primary_inputs);
  w.u64(program.stages.size());
  for (const auto& stage : program.stages) {
    append_gate_spec(w, stage.gate);
    w.u64(stage.sources.size());
    for (const auto& src : stage.sources) {
      w.u8(static_cast<std::uint8_t>(src.kind));
      w.u64(src.stage);
      w.u64(src.index);
      w.u8(src.negated ? 1 : 0);
    }
  }
  w.finish();
  return out;
}

std::uint64_t hash_program(const sw::wavesim::ProgramSpec& program) {
  return chunked_fnv1a64(canonical_program_bytes(program));
}

LayoutKey LayoutKey::from(const sw::core::GateLayout& layout) {
  LayoutKey key;
  key.bytes_ = canonical_layout_bytes(layout);
  key.hash_ = chunked_fnv1a64(key.bytes_);
  return key;
}

LayoutKey LayoutKey::from(const sw::wavesim::ProgramSpec& program) {
  LayoutKey key;
  key.bytes_ = canonical_program_bytes(program);
  key.hash_ = chunked_fnv1a64(key.bytes_);
  return key;
}

}  // namespace sw::serve
