// LRU cache of ready-to-run evaluation plans, keyed by canonical layout
// hash *plus the evaluation precision*, with collision-safe full-key
// comparison.
//
// The SoA EvalPlan is the expensive per-layout artefact of the serving path
// (dispersion lookups plus one steady-phasor solve per (detector, source,
// launch-phase) triple); the cache owns it directly — each entry builds the
// plan once and shares it into its BatchEvaluator — so every cached-plan
// submit runs the runtime-dispatched SIMD kernels with zero per-request
// conversion, and the cache makes the build cost amortise across every
// request that reuses the layout. A plan requested at kFloat32 may come out
// effectively double (the margin-aware fallback, see EvalPlan); the cache
// records that in its stats but still files the entry under the f32 key —
// the fallback is a property of that (layout, precision) pair, decided
// once, and re-deciding it per request would redo the margin sweep.
// Construction of the plan for one key is serialised *behind the cache
// entry*: the first caller inserts a pending entry and builds, concurrent
// callers for the same key wait on the entry's shared future instead of
// racing a second build — which is also what makes the cache safe by design
// against the historical hazard of two threads memoising into one engine
// (the engine is additionally mutex-guarded now). Distinct layouts build
// concurrently.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/gate.h"
#include "core/gate_design.h"
#include "serve/layout_hash.h"
#include "wavesim/batch_evaluator.h"
#include "wavesim/eval_plan.h"
#include "wavesim/eval_program.h"
#include "wavesim/precision.h"
#include "wavesim/wave_engine.h"

namespace sw::serve {

/// One cached plan: the gate (owning its copy of the layout), the SoA
/// EvalPlan built from it once, and the BatchEvaluator sharing that plan.
/// Immutable once constructed and handed out as shared_ptr<const>, so an
/// entry evicted mid-request stays valid for every holder. The evaluator is
/// built with the cache's BatchOptions (default: single inline thread, so
/// evaluation runs on the calling service worker and cached plans do not
/// each own idle worker threads).
class CachedPlan {
 public:
  CachedPlan(sw::core::GateLayout layout,
             const sw::wavesim::WaveEngine& engine,
             sw::wavesim::BatchOptions options)
      : gate_(std::move(layout), engine),
        plan_(std::make_shared<const sw::wavesim::EvalPlan>(
            gate_, options.freq_tol, options.precision)),
        evaluator_(gate_, plan_, options) {}

  CachedPlan(const CachedPlan&) = delete;
  CachedPlan& operator=(const CachedPlan&) = delete;

  const sw::core::DataParallelGate& gate() const { return gate_; }
  /// The frozen SoA plan the kernels evaluate against; shared with (not
  /// copied into) the evaluator.
  const sw::wavesim::EvalPlan& plan() const { return *plan_; }
  const sw::wavesim::BatchEvaluator& evaluator() const { return evaluator_; }
  /// What this entry actually serves (kFloat64 when an f32 request fell
  /// back; plan().f32_rejection() says why). Block-f32 entries report
  /// kFloat64 here (not every decode runs f32) — the detector mix below
  /// and precision_label() carry the finer verdict.
  sw::wavesim::Precision effective_precision() const {
    return plan_->effective_precision();
  }
  /// Per-entry precision mix: how many of the plan's detectors run f32
  /// accumulation vs f64 rescue lanes (see EvalPlan). Both 0 on a plan
  /// that never requested f32.
  std::size_t f32_detectors() const { return plan_->num_f32_detectors(); }
  std::size_t f64_rescue_detectors() const {
    return plan_->num_f64_rescue_detectors();
  }
  /// "f64", "f32" or "block-f32(k/n)" — the label logs and benches print.
  std::string precision_label() const { return plan_->precision_label(); }

 private:
  sw::core::DataParallelGate gate_;
  std::shared_ptr<const sw::wavesim::EvalPlan> plan_;
  sw::wavesim::BatchEvaluator evaluator_;
};

/// One cached multi-stage program: the fused EvalProgram (which owns its
/// per-stage gates and plans) built once from a portable ProgramSpec
/// against the cache's designer and engine. Immutable once constructed and
/// handed out as shared_ptr<const>, like CachedPlan.
class CachedProgram {
 public:
  CachedProgram(sw::wavesim::ProgramSpec spec,
                const sw::core::InlineGateDesigner& designer,
                const sw::wavesim::WaveEngine& engine,
                sw::wavesim::BatchOptions options)
      : program_(std::move(spec), designer, engine, options) {}

  CachedProgram(const CachedProgram&) = delete;
  CachedProgram& operator=(const CachedProgram&) = delete;

  const sw::wavesim::EvalProgram& program() const { return program_; }
  std::size_t num_stages() const { return program_.num_stages(); }
  std::size_t depth() const { return program_.depth(); }
  /// Aggregate label over the per-stage plans ("f64" / "f32" / "mixed(...)").
  std::string precision_label() const { return program_.precision_label(); }

 private:
  sw::wavesim::EvalProgram program_;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;       ///< lookups served from a cached plan
  std::uint64_t misses = 0;     ///< lookups that triggered a build
  std::uint64_t evictions = 0;  ///< LRU entries dropped to respect capacity
  /// Builds that requested kFloat32 and got it everywhere (every detector
  /// passed the margin analysis).
  std::uint64_t f32_plans = 0;
  /// Builds that requested kFloat32 but fell back to the double plan
  /// entirely (no detector passed).
  std::uint64_t f32_fallbacks = 0;
  /// Builds that came out block-f32: a genuine per-detector mix of f32 and
  /// f64 rescue lanes. Disjoint from both counters above; every f32-
  /// requested build lands in exactly one of the three.
  std::uint64_t block_plans = 0;
  /// Detector-granularity mix, accumulated across every f32-requested
  /// build: how many detectors were proved for f32 accumulation vs rescued
  /// to f64 lanes. f32_detectors / (f32_detectors + f64_rescue_detectors)
  /// is the fleet-visible f32 ratio the metrics endpoint exports.
  std::uint64_t f32_detectors = 0;
  std::uint64_t f64_rescue_detectors = 0;
  /// Multi-stage program entries built (program lookups also count into
  /// hits/misses/evictions above — the LRU is shared).
  std::uint64_t program_builds = 0;
  /// Stages across every program built: program_stages / program_builds is
  /// the mean cascade length the service compiles.
  std::uint64_t program_stages = 0;
  /// Deepest stage-to-stage path among built programs (physical cascade
  /// latency in stages).
  std::uint64_t max_program_depth = 0;
};

class PlanCache {
 public:
  using PlanPtr = std::shared_ptr<const CachedPlan>;
  using ProgramPtr = std::shared_ptr<const CachedProgram>;

  /// `capacity == 0` means unbounded. The engine must outlive the cache.
  /// evaluator_options.precision (kAuto resolved at construction) is the
  /// default precision for lookups that do not pass one explicitly.
  /// `designer` enables program entries (a ProgramSpec carries design
  /// requests, not finished layouts, so building one needs a designer);
  /// when null, program lookups throw. The designer must outlive the cache.
  PlanCache(const sw::wavesim::WaveEngine& engine, std::size_t capacity,
            sw::wavesim::BatchOptions evaluator_options = {.num_threads = 1},
            const sw::core::InlineGateDesigner* designer = nullptr);

  /// Fast-path lookup: returns the plan when it is cached *and ready*,
  /// nullptr otherwise (counts a hit only when it returns a plan). Never
  /// blocks and never copies the layout beyond its canonical bytes.
  PlanPtr try_get(const sw::core::GateLayout& layout);
  PlanPtr try_get(const sw::core::GateLayout& layout,
                  sw::wavesim::Precision precision);

  struct Lookup {
    PlanPtr plan;
    bool hit = false;  ///< false when this call performed the build
  };

  /// Returns the cached plan, building it on a miss. One builder per key:
  /// concurrent callers for the same (layout, precision) wait on the first
  /// builder's future. A build failure propagates to every waiter and
  /// removes the entry so a later call can retry.
  Lookup get_or_build(const sw::core::GateLayout& layout);
  Lookup get_or_build(const sw::core::GateLayout& layout,
                      sw::wavesim::Precision precision);

  /// Program analogues of try_get / get_or_build: same LRU, same
  /// one-builder-per-key discipline, keyed by the canonical program bytes
  /// (which can never collide with a layout key). Throw sw::util::Error
  /// when the cache was built without a designer.
  ProgramPtr try_get_program(const sw::wavesim::ProgramSpec& program);
  ProgramPtr try_get_program(const sw::wavesim::ProgramSpec& program,
                             sw::wavesim::Precision precision);

  struct ProgramLookup {
    ProgramPtr program;
    bool hit = false;  ///< false when this call performed the build
  };

  ProgramLookup get_or_build_program(const sw::wavesim::ProgramSpec& program);
  ProgramLookup get_or_build_program(const sw::wavesim::ProgramSpec& program,
                                     sw::wavesim::Precision precision);

  bool has_designer() const { return designer_ != nullptr; }

  PlanCacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// The resolved default precision of this cache's entries.
  sw::wavesim::Precision default_precision() const {
    return evaluator_options_.precision;
  }

 private:
  struct Slot {
    LayoutKey key;
    sw::wavesim::Precision precision = sw::wavesim::Precision::kFloat64;
    bool is_program = false;
    /// Exactly one of the two futures is armed, per is_program.
    std::shared_future<PlanPtr> plan;
    std::shared_future<ProgramPtr> program;
    std::uint64_t last_used = 0;
  };

  static std::uint64_t bucket_hash(const LayoutKey& key,
                                   sw::wavesim::Precision precision);
  static bool slot_ready(const Slot& slot);
  Slot* find_locked(const LayoutKey& key, sw::wavesim::Precision precision,
                    bool is_program);
  void evict_for_insert_locked();
  void erase_locked(const LayoutKey& key, sw::wavesim::Precision precision,
                    bool is_program);

  const sw::wavesim::WaveEngine* engine_;
  std::size_t capacity_;
  sw::wavesim::BatchOptions evaluator_options_;
  const sw::core::InlineGateDesigner* designer_ = nullptr;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Slot>> slots_;
  std::size_t size_ = 0;
  std::uint64_t tick_ = 0;
  PlanCacheStats stats_;
};

}  // namespace sw::serve
