#include "serve/plan_cache.h"

#include <chrono>
#include <utility>

namespace sw::serve {

namespace {

bool ready(const std::shared_future<PlanCache::PlanPtr>& fut) {
  return fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

}  // namespace

PlanCache::PlanCache(const sw::wavesim::WaveEngine& engine,
                     std::size_t capacity,
                     sw::wavesim::BatchOptions evaluator_options)
    : engine_(&engine),
      capacity_(capacity),
      evaluator_options_(evaluator_options) {}

PlanCache::Slot* PlanCache::find_locked(const LayoutKey& key) {
  const auto bucket = slots_.find(key.hash());
  if (bucket == slots_.end()) return nullptr;
  for (auto& slot : bucket->second) {
    if (slot.key == key) return &slot;
  }
  return nullptr;
}

void PlanCache::evict_for_insert_locked() {
  while (capacity_ > 0 && size_ >= capacity_) {
    // Evict the least-recently-used *ready* slot; a slot still building is
    // pinned (its builder and waiters are live). If every slot is
    // building, temporarily exceed capacity rather than stall the insert.
    std::unordered_map<std::uint64_t, std::vector<Slot>>::iterator
        victim_bucket = slots_.end();
    std::size_t victim_index = 0;
    std::uint64_t oldest = 0;
    bool found = false;
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      for (std::size_t i = 0; i < it->second.size(); ++i) {
        const Slot& slot = it->second[i];
        if (!ready(slot.plan)) continue;
        if (!found || slot.last_used < oldest) {
          found = true;
          oldest = slot.last_used;
          victim_bucket = it;
          victim_index = i;
        }
      }
    }
    if (!found) return;
    auto& vec = victim_bucket->second;
    vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(victim_index));
    if (vec.empty()) slots_.erase(victim_bucket);
    --size_;
    ++stats_.evictions;
  }
}

void PlanCache::erase_locked(const LayoutKey& key) {
  const auto bucket = slots_.find(key.hash());
  if (bucket == slots_.end()) return;
  auto& vec = bucket->second;
  for (std::size_t i = 0; i < vec.size(); ++i) {
    if (vec[i].key == key) {
      vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(i));
      if (vec.empty()) slots_.erase(bucket);
      --size_;
      return;
    }
  }
}

PlanCache::PlanPtr PlanCache::try_get(const sw::core::GateLayout& layout) {
  const LayoutKey key = LayoutKey::from(layout);
  std::shared_future<PlanPtr> fut;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Slot* slot = find_locked(key);
    if (slot == nullptr || !ready(slot->plan)) return nullptr;
    ++stats_.hits;
    slot->last_used = ++tick_;
    fut = slot->plan;
  }
  // A ready slot always carries a value: failed builds erase their slot
  // before publishing the exception, so they are never observable here.
  return fut.get();
}

PlanCache::Lookup PlanCache::get_or_build(const sw::core::GateLayout& layout) {
  const LayoutKey key = LayoutKey::from(layout);
  std::promise<PlanPtr> builder;
  std::shared_future<PlanPtr> fut;
  bool build_here = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Slot* slot = find_locked(key)) {
      ++stats_.hits;
      slot->last_used = ++tick_;
      fut = slot->plan;
    } else {
      ++stats_.misses;
      evict_for_insert_locked();
      Slot fresh;
      fresh.key = key;
      fresh.plan = builder.get_future().share();
      fresh.last_used = ++tick_;
      fut = fresh.plan;
      slots_[key.hash()].push_back(std::move(fresh));
      ++size_;
      build_here = true;
    }
  }
  if (build_here) {
    try {
      builder.set_value(std::make_shared<const CachedPlan>(
          layout, *engine_, evaluator_options_));
    } catch (...) {
      // Drop the poisoned entry first so no new lookup can ever observe a
      // ready-with-exception slot, then wake the waiters with the error.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        erase_locked(key);
      }
      builder.set_exception(std::current_exception());
    }
  }
  return {fut.get(), !build_here};
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

}  // namespace sw::serve
