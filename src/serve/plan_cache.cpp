#include "serve/plan_cache.h"

#include <chrono>
#include <utility>

#include "util/error.h"

namespace sw::serve {

namespace {

template <typename T>
bool ready(const std::shared_future<T>& fut) {
  return fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

}  // namespace

PlanCache::PlanCache(const sw::wavesim::WaveEngine& engine,
                     std::size_t capacity,
                     sw::wavesim::BatchOptions evaluator_options,
                     const sw::core::InlineGateDesigner* designer)
    : engine_(&engine),
      capacity_(capacity),
      evaluator_options_(evaluator_options),
      designer_(designer) {
  // Resolve kAuto once so every entry, key and stat of this cache agrees
  // on the precision even if the environment changes mid-run.
  evaluator_options_.precision =
      sw::wavesim::resolve_precision(evaluator_options_.precision);
}

std::uint64_t PlanCache::bucket_hash(const LayoutKey& key,
                                     sw::wavesim::Precision precision) {
  // The precision bit is part of the cache key: an f32 and an f64 plan for
  // one layout are distinct artefacts (different arrays, different margin
  // verdicts) and must never alias. Golden-ratio mixing keeps the two
  // variants in unrelated buckets instead of chaining in one. Programs and
  // layouts need no extra bit: their canonical bytes carry distinct format
  // tags, so their key hashes already disagree.
  return precision == sw::wavesim::Precision::kFloat32
             ? key.hash() ^ 0x9e3779b97f4a7c15ull
             : key.hash();
}

bool PlanCache::slot_ready(const Slot& slot) {
  return slot.is_program ? ready(slot.program) : ready(slot.plan);
}

PlanCache::Slot* PlanCache::find_locked(const LayoutKey& key,
                                        sw::wavesim::Precision precision,
                                        bool is_program) {
  const auto bucket = slots_.find(bucket_hash(key, precision));
  if (bucket == slots_.end()) return nullptr;
  for (auto& slot : bucket->second) {
    if (slot.precision == precision && slot.is_program == is_program &&
        slot.key == key) {
      return &slot;
    }
  }
  return nullptr;
}

void PlanCache::evict_for_insert_locked() {
  while (capacity_ > 0 && size_ >= capacity_) {
    // Evict the least-recently-used *ready* slot; a slot still building is
    // pinned (its builder and waiters are live). If every slot is
    // building, temporarily exceed capacity rather than stall the insert.
    std::unordered_map<std::uint64_t, std::vector<Slot>>::iterator
        victim_bucket = slots_.end();
    std::size_t victim_index = 0;
    std::uint64_t oldest = 0;
    bool found = false;
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      for (std::size_t i = 0; i < it->second.size(); ++i) {
        const Slot& slot = it->second[i];
        if (!slot_ready(slot)) continue;
        if (!found || slot.last_used < oldest) {
          found = true;
          oldest = slot.last_used;
          victim_bucket = it;
          victim_index = i;
        }
      }
    }
    if (!found) return;
    auto& vec = victim_bucket->second;
    vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(victim_index));
    if (vec.empty()) slots_.erase(victim_bucket);
    --size_;
    ++stats_.evictions;
  }
}

void PlanCache::erase_locked(const LayoutKey& key,
                             sw::wavesim::Precision precision,
                             bool is_program) {
  const auto bucket = slots_.find(bucket_hash(key, precision));
  if (bucket == slots_.end()) return;
  auto& vec = bucket->second;
  for (std::size_t i = 0; i < vec.size(); ++i) {
    if (vec[i].precision == precision && vec[i].is_program == is_program &&
        vec[i].key == key) {
      vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(i));
      if (vec.empty()) slots_.erase(bucket);
      --size_;
      return;
    }
  }
}

PlanCache::PlanPtr PlanCache::try_get(const sw::core::GateLayout& layout) {
  return try_get(layout, evaluator_options_.precision);
}

PlanCache::PlanPtr PlanCache::try_get(const sw::core::GateLayout& layout,
                                      sw::wavesim::Precision precision) {
  precision = sw::wavesim::resolve_precision(precision);
  const LayoutKey key = LayoutKey::from(layout);
  std::shared_future<PlanPtr> fut;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Slot* slot = find_locked(key, precision, /*is_program=*/false);
    if (slot == nullptr || !ready(slot->plan)) return nullptr;
    ++stats_.hits;
    slot->last_used = ++tick_;
    fut = slot->plan;
  }
  // A ready slot always carries a value: failed builds erase their slot
  // before publishing the exception, so they are never observable here.
  return fut.get();
}

PlanCache::ProgramPtr PlanCache::try_get_program(
    const sw::wavesim::ProgramSpec& program) {
  return try_get_program(program, evaluator_options_.precision);
}

PlanCache::ProgramPtr PlanCache::try_get_program(
    const sw::wavesim::ProgramSpec& program,
    sw::wavesim::Precision precision) {
  SW_REQUIRE(designer_ != nullptr,
             "plan cache was built without a designer; cannot serve programs");
  precision = sw::wavesim::resolve_precision(precision);
  const LayoutKey key = LayoutKey::from(program);
  std::shared_future<ProgramPtr> fut;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Slot* slot = find_locked(key, precision, /*is_program=*/true);
    if (slot == nullptr || !ready(slot->program)) return nullptr;
    ++stats_.hits;
    slot->last_used = ++tick_;
    fut = slot->program;
  }
  return fut.get();
}

PlanCache::Lookup PlanCache::get_or_build(const sw::core::GateLayout& layout) {
  return get_or_build(layout, evaluator_options_.precision);
}

PlanCache::Lookup PlanCache::get_or_build(const sw::core::GateLayout& layout,
                                          sw::wavesim::Precision precision) {
  precision = sw::wavesim::resolve_precision(precision);
  const LayoutKey key = LayoutKey::from(layout);
  std::promise<PlanPtr> builder;
  std::shared_future<PlanPtr> fut;
  bool build_here = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Slot* slot = find_locked(key, precision, /*is_program=*/false)) {
      ++stats_.hits;
      slot->last_used = ++tick_;
      fut = slot->plan;
    } else {
      ++stats_.misses;
      evict_for_insert_locked();
      Slot fresh;
      fresh.key = key;
      fresh.precision = precision;
      fresh.plan = builder.get_future().share();
      fresh.last_used = ++tick_;
      fut = fresh.plan;
      slots_[bucket_hash(key, precision)].push_back(std::move(fresh));
      ++size_;
      build_here = true;
    }
  }
  if (build_here) {
    try {
      sw::wavesim::BatchOptions options = evaluator_options_;
      options.precision = precision;
      auto plan =
          std::make_shared<const CachedPlan>(layout, *engine_, options);
      if (precision == sw::wavesim::Precision::kFloat32) {
        const auto& built = plan->plan();
        std::lock_guard<std::mutex> lock(mutex_);
        // Exactly one of the three per-build counters, plus the
        // detector-granularity mix either way.
        if (built.has_f32()) {
          ++stats_.f32_plans;
        } else if (built.is_block()) {
          ++stats_.block_plans;
        } else {
          ++stats_.f32_fallbacks;
        }
        stats_.f32_detectors += built.num_f32_detectors();
        stats_.f64_rescue_detectors += built.num_f64_rescue_detectors();
      }
      builder.set_value(std::move(plan));
    } catch (...) {
      // Drop the poisoned entry first so no new lookup can ever observe a
      // ready-with-exception slot, then wake the waiters with the error.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        erase_locked(key, precision, /*is_program=*/false);
      }
      builder.set_exception(std::current_exception());
    }
  }
  return {fut.get(), !build_here};
}

PlanCache::ProgramLookup PlanCache::get_or_build_program(
    const sw::wavesim::ProgramSpec& program) {
  return get_or_build_program(program, evaluator_options_.precision);
}

PlanCache::ProgramLookup PlanCache::get_or_build_program(
    const sw::wavesim::ProgramSpec& program,
    sw::wavesim::Precision precision) {
  SW_REQUIRE(designer_ != nullptr,
             "plan cache was built without a designer; cannot serve programs");
  // Reject malformed specs before touching the cache: a spec that cannot
  // validate must not occupy a slot (its build would fail every time).
  program.validate();
  precision = sw::wavesim::resolve_precision(precision);
  const LayoutKey key = LayoutKey::from(program);
  std::promise<ProgramPtr> builder;
  std::shared_future<ProgramPtr> fut;
  bool build_here = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Slot* slot = find_locked(key, precision, /*is_program=*/true)) {
      ++stats_.hits;
      slot->last_used = ++tick_;
      fut = slot->program;
    } else {
      ++stats_.misses;
      evict_for_insert_locked();
      Slot fresh;
      fresh.key = key;
      fresh.precision = precision;
      fresh.is_program = true;
      fresh.program = builder.get_future().share();
      fresh.last_used = ++tick_;
      fut = fresh.program;
      slots_[bucket_hash(key, precision)].push_back(std::move(fresh));
      ++size_;
      build_here = true;
    }
  }
  if (build_here) {
    try {
      sw::wavesim::BatchOptions options = evaluator_options_;
      options.precision = precision;
      auto built = std::make_shared<const CachedProgram>(program, *designer_,
                                                         *engine_, options);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.program_builds;
        stats_.program_stages += built->num_stages();
        if (built->depth() > stats_.max_program_depth) {
          stats_.max_program_depth = built->depth();
        }
        // Per-stage precision verdicts roll into the same detector mix the
        // metrics endpoint exports for single plans.
        if (precision == sw::wavesim::Precision::kFloat32) {
          for (std::size_t s = 0; s < built->num_stages(); ++s) {
            const auto& plan = built->program().stage_plan(s);
            if (plan.has_f32()) {
              ++stats_.f32_plans;
            } else if (plan.is_block()) {
              ++stats_.block_plans;
            } else {
              ++stats_.f32_fallbacks;
            }
            stats_.f32_detectors += plan.num_f32_detectors();
            stats_.f64_rescue_detectors += plan.num_f64_rescue_detectors();
          }
        }
      }
      builder.set_value(std::move(built));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        erase_locked(key, precision, /*is_program=*/true);
      }
      builder.set_exception(std::current_exception());
    }
  }
  return {fut.get(), !build_here};
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

}  // namespace sw::serve
