#include "serve/service.h"

#include <chrono>
#include <cstdio>
#include <limits>
#include <mutex>
#include <utility>

#include "util/error.h"
#include "wavesim/kernels/kernel.h"

namespace sw::serve {

namespace {

/// One line per process *per precision*, not per service: the kernel is
/// process-wide, but precision is per-service configuration — a later
/// service running a different precision still gets its line (else an
/// operator would read the first service's choice as the process's), while
/// repeated construction at one precision stays quiet.
/// Seconds covered by an open-and-closed span slot (0 for kNoSlot, so a
/// truncated trace degrades to missing histogram samples, not UB).
double span_seconds(const sw::obs::TraceContext& trace, std::size_t slot) {
  if (slot >= sw::obs::TraceContext::kMaxSpans) return 0.0;
  const sw::obs::Span& s = trace.span(slot);
  return static_cast<double>(s.end_ns - s.start_ns) * 1e-9;
}

void log_kernel_once(sw::wavesim::Precision precision) {
  static std::mutex mutex;
  static bool logged[3] = {};
  const auto idx = static_cast<std::size_t>(precision);
  std::lock_guard<std::mutex> lock(mutex);
  if (idx >= 3 || logged[idx]) return;
  logged[idx] = true;
  const std::string_view name = sw::wavesim::active_kernel_name();
  const std::string_view prec = sw::wavesim::precision_name(precision);
  std::fprintf(stderr, "[sw::serve] evaluation kernel: %.*s, precision: %.*s\n",
               static_cast<int>(name.size()), name.data(),
               static_cast<int>(prec.size()), prec.data());
}

}  // namespace

struct EvaluatorService::Request {
  std::uint64_t id = 0;
  std::size_t num_words = 0;
  std::size_t num_channels = 0;
  std::chrono::steady_clock::time_point submitted_at;
  /// Per-request precision override (EvalRequest::precision).
  std::optional<sw::wavesim::Precision> precision;
  bool is_program = false;
  /// Resolved on the submit fast path; when null the worker consults the
  /// cache with the copied spec (and builds the entry on a cold miss).
  PlanCache::PlanPtr plan;
  PlanCache::ProgramPtr program;
  sw::core::GateLayout layout;
  sw::wavesim::ProgramSpec program_spec;
  std::vector<std::uint8_t> bits;
  /// Phase spans, seeded by the transport (wire decode) and grown here.
  sw::obs::TraceContext trace;
  bool defer_trace = false;
  /// Queue-wait span opened at post, closed when a worker picks it up.
  std::size_t queue_slot = sw::obs::TraceContext::kNoSlot;
  /// Exactly one of the two delivery channels is armed: submit() requests
  /// settle `promise`, submit_async() requests invoke `done`.
  std::promise<ResultBatch> promise;
  CompletionFn done;
};

EvaluatorService::EvaluatorService(const sw::disp::DispersionModel& model,
                                   double alpha, ServiceOptions options)
    : options_([&options] {
        // Resolve kAuto up front (throwing on a bad SW_EVAL_PRECISION
        // here, not inside the first request) so the cache, the stats and
        // the log line all report the same resolved choice.
        options.evaluator_options.precision = sw::wavesim::resolve_precision(
            options.evaluator_options.precision);
        return std::move(options);
      }()),
      engine_(model, alpha),
      designer_(model),
      cache_(engine_, options_.plan_cache_capacity,
             options_.evaluator_options, &designer_),
      admission_(options_.admission),
      latency_(options_.latency_window),
      trace_recorder_(options_.trace_capacity),
      pool_(options_.num_threads, /*always_spawn=*/true) {
  trace_recorder_.set_slow_threshold(options_.slow_request_threshold_s);
  log_kernel_once(options_.evaluator_options.precision);
}

EvaluatorService::~EvaluatorService() {
  // Wake blocked submitters before the pool destructor drains the queue;
  // requests already admitted still run to completion.
  admission_.close();
}

void EvaluatorService::post_request(EvalRequest&& source,
                                    std::unique_ptr<Request> request) {
  SW_REQUIRE((source.layout != nullptr) != (source.program != nullptr),
             "EvalRequest must bind exactly one of layout or program");
  std::size_t slots = 0;
  if (source.layout != nullptr) {
    slots = source.layout->spec.frequencies.size() *
            source.layout->spec.num_inputs;
    request->num_channels = source.layout->spec.frequencies.size();
  } else {
    // Validate the spec up front so a malformed program fails on the
    // submitting thread (a typed error), not inside a worker.
    source.program->validate();
    slots = source.program->primary_slot_count();
    request->num_channels = source.program->num_channels();
    request->is_program = true;
  }
  const std::size_t num_words = source.num_words;
  SW_REQUIRE(slots > 0, "request target has no input slots");
  // Mirror evaluate_bits' overflow guard up front: a wrapping product must
  // fail synchronously here, before admission charges a near-SIZE_MAX word
  // count that would shed or block every other submitter until a worker
  // rejects the request.
  SW_REQUIRE(num_words <= std::numeric_limits<std::size_t>::max() / slots,
             "num_words x slot_count overflows size_t");
  SW_REQUIRE(source.packed_bits.size() == num_words * slots,
             "packed bit matrix must be num_words x slot_count");

  request->num_words = num_words;
  request->submitted_at = std::chrono::steady_clock::now();
  request->precision = source.precision;
  request->bits = std::move(source.packed_bits);
  request->trace = std::move(source.trace);
  request->defer_trace = source.defer_trace_record;

  const std::size_t admit_slot =
      request->trace.begin(sw::obs::Phase::kAdmission);
  admission_.admit(num_words);  // may block or throw OverloadError
  request->trace.end(admit_slot);
  admission_wait_hist_.record(span_seconds(request->trace, admit_slot));
  batch_words_hist_.record(static_cast<double>(num_words));
  // Resolve the cache entry only once admitted: a shed request must not
  // touch hit counters or LRU recency (and must not pay the hash).
  const std::size_t lookup_slot =
      request->trace.begin(sw::obs::Phase::kPlanLookup);
  if (request->is_program) {
    request->program =
        source.precision
            ? cache_.try_get_program(*source.program, *source.precision)
            : cache_.try_get_program(*source.program);
    if (!request->program) request->program_spec = *source.program;
  } else {
    request->plan = source.precision
                        ? cache_.try_get(*source.layout, *source.precision)
                        : cache_.try_get(*source.layout);
    if (!request->plan) request->layout = *source.layout;
  }
  request->trace.end(lookup_slot);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    request->id = next_id_++;
    ++submitted_;
  }
  request->trace.id = request->id;
  request->queue_slot = request->trace.begin(sw::obs::Phase::kQueue);
  // Hand the queue a raw pointer: the two-word closure stays within
  // std::function's small-buffer optimisation (no allocation per post),
  // and process() reclaims ownership immediately.
  Request* raw = request.release();
  try {
    pool_.post([this, raw] { process(raw); });
  } catch (...) {
    admission_.mark_dequeued();
    admission_.release(raw->num_words);
    delete raw;
    throw;
  }
}

std::future<ResultBatch> EvaluatorService::submit(EvalRequest request) {
  auto state = std::make_unique<Request>();
  auto future = state->promise.get_future();
  post_request(std::move(request), std::move(state));
  return future;
}

void EvaluatorService::submit_async(EvalRequest request, CompletionFn done) {
  SW_REQUIRE(done != nullptr, "submit_async requires a completion callback");
  auto state = std::make_unique<Request>();
  state->done = std::move(done);
  post_request(std::move(request), std::move(state));
}

std::future<ResultBatch> EvaluatorService::submit(
    const sw::core::GateLayout& layout,
    std::vector<std::uint8_t> packed_bits, std::size_t num_words) {
  return submit(
      EvalRequest::for_layout(layout, std::move(packed_bits), num_words));
}

void EvaluatorService::submit_async(const sw::core::GateLayout& layout,
                                    std::vector<std::uint8_t> packed_bits,
                                    std::size_t num_words, CompletionFn done) {
  submit_async(
      EvalRequest::for_layout(layout, std::move(packed_bits), num_words),
      std::move(done));
}

std::future<ResultBatch> EvaluatorService::submit(
    const sw::core::GateLayout& layout,
    const std::vector<std::vector<sw::core::Bits>>& batch) {
  return submit(EvalRequest::for_batch(layout, batch));
}

void EvaluatorService::process(Request* raw) {
  const std::unique_ptr<Request> request(raw);
  admission_.mark_dequeued();
  request->trace.end(request->queue_slot);
  queue_wait_hist_.record(span_seconds(request->trace, request->queue_slot));
  ResultBatch out;
  std::exception_ptr error;
  try {
    if (options_.on_request_start) options_.on_request_start(request->id);
    bool hit = true;
    out.request_id = request->id;
    out.num_words = request->num_words;
    out.num_channels = request->num_channels;
    if (request->is_program) {
      PlanCache::ProgramPtr program = request->program;
      if (!program) {
        const std::uint64_t build_start = sw::obs::now_ns();
        PlanCache::ProgramLookup lookup =
            request->precision
                ? cache_.get_or_build_program(request->program_spec,
                                              *request->precision)
                : cache_.get_or_build_program(request->program_spec);
        program = std::move(lookup.program);
        hit = lookup.hit;
        if (!hit) {
          request->trace.add(sw::obs::Phase::kPlanBuild, build_start,
                             sw::obs::now_ns());
        }
      }
      out.cache_hit = hit;
      out.num_stages = program->num_stages();
      out.depth = program->depth();
      const std::size_t kernel_slot =
          request->trace.begin(sw::obs::Phase::kKernel);
      sw::wavesim::StageTimings timings(program->num_stages());
      out.bits = program->program().evaluate_bits(request->num_words,
                                                  request->bits, &timings);
      request->trace.end(kernel_slot);
      kernel_exec_hist_.record(span_seconds(request->trace, kernel_slot));
      // Synthesize per-stage child spans laid out sequentially inside the
      // kernel span. Stage times are accumulated across blocks (and pool
      // threads), so these are proportional shares, not wall intervals —
      // which is exactly the "where did the kernel time go" readout.
      if (kernel_slot != sw::obs::TraceContext::kNoSlot) {
        std::uint64_t cursor = request->trace.span(kernel_slot).start_ns;
        for (std::size_t s = 0; s < timings.ns.size(); ++s) {
          const std::uint64_t d =
              timings.ns[s].load(std::memory_order_relaxed);
          request->trace.add(sw::obs::Phase::kStage, cursor, cursor + d,
                             static_cast<std::uint32_t>(s));
          cursor += d;
        }
      }
    } else {
      PlanCache::PlanPtr plan = request->plan;
      if (!plan) {
        const std::uint64_t build_start = sw::obs::now_ns();
        PlanCache::Lookup lookup =
            request->precision
                ? cache_.get_or_build(request->layout, *request->precision)
                : cache_.get_or_build(request->layout);
        plan = std::move(lookup.plan);
        hit = lookup.hit;
        if (!hit) {
          request->trace.add(sw::obs::Phase::kPlanBuild, build_start,
                             sw::obs::now_ns());
        }
      }
      out.cache_hit = hit;
      const std::size_t kernel_slot =
          request->trace.begin(sw::obs::Phase::kKernel);
      out.bits =
          plan->evaluator().evaluate_bits(request->num_words, request->bits);
      request->trace.end(kernel_slot);
      kernel_exec_hist_.record(span_seconds(request->trace, kernel_slot));
    }
  } catch (...) {
    error = std::current_exception();
  }
  // Settle the accounting before the promise: a caller returning from
  // future.get() observes stats that already include this request.
  admission_.release(request->num_words);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++completed_;
  }
  // Latency covers submit to settle — queue wait included, because that is
  // what a caller waiting on the future experiences — and is recorded for
  // failures too (an erroring request still occupied the service).
  const double latency_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    request->submitted_at)
          .count();
  latency_.record(latency_s);
  request_latency_hist_.record(latency_s);
  if (options_.on_request_finish) {
    options_.on_request_finish(request->id, latency_s);
  }
  // The trace settles with the request: recorded here for direct callers,
  // handed back through ResultBatch for transports that append their own
  // wire/write spans first (defer_trace_record).
  if (!request->defer_trace) trace_recorder_.record(request->trace);
  out.trace = std::move(request->trace);
  if (request->done) {
    // Callback delivery: the request has settled either way, so a throwing
    // callback has nothing left to corrupt — swallow it rather than
    // terminate the worker.
    try {
      request->done(std::move(out), error);
    } catch (...) {
    }
  } else if (error) {
    request->promise.set_exception(error);
  } else {
    request->promise.set_value(std::move(out));
  }
}

ServiceStats EvaluatorService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    s.submitted = submitted_;
    s.completed = completed_;
  }
  s.shed = admission_.shed_total();
  s.blocked = admission_.blocked_total();
  s.queued_requests = admission_.queued();
  s.inflight_words = admission_.inflight_words();
  s.kernel = std::string(sw::wavesim::active_kernel_name());
  s.precision = std::string(
      sw::wavesim::precision_name(options_.evaluator_options.precision));
  s.latency = latency_.summary();
  s.cache = cache_.stats();
  s.request_latency = request_latency_hist_.snapshot();
  s.admission_wait = admission_wait_hist_.snapshot();
  s.queue_wait = queue_wait_hist_.snapshot();
  s.kernel_exec = kernel_exec_hist_.snapshot();
  s.batch_words = batch_words_hist_.snapshot();
  return s;
}

}  // namespace sw::serve
