#include "serve/wire.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>

#include "serve/byteio.h"
#include "serve/layout_hash.h"
#include "serve/wire_simd.h"
#include "util/error.h"

namespace sw::serve {

namespace {

using detail::ByteReader;
using detail::append_f64;
using detail::append_u16;
using detail::append_u32;
using detail::append_u64;

constexpr std::size_t kHeaderSize = 64;
// Caps far beyond any realistic sweep shard, small enough that a corrupt
// size field cannot drive a multi-gigabyte allocation before the checksum
// is ever consulted.
constexpr std::uint64_t kMaxWords = std::uint64_t{1} << 32;
constexpr std::uint64_t kMaxCols = std::uint64_t{1} << 20;

void append_spec(std::vector<std::uint8_t>& out,
                 const sw::core::GateSpec& spec) {
  append_u64(out, spec.num_inputs);
  append_u64(out, spec.frequencies.size());
  for (const double f : spec.frequencies) append_f64(out, f);
  append_f64(out, spec.transducer_width);
  append_f64(out, spec.min_gap);
  append_f64(out, spec.min_same_channel_spacing);
  append_u64(out, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(spec.multiple_search)));
  append_u64(out, spec.invert_output.size());
  for (const std::uint8_t b : spec.invert_output) out.push_back(b ? 1 : 0);
}

/// Read one GateSpec's fields from the current reader position (shared by
/// the v2 spec block and each stage of the v3 program block).
sw::core::GateSpec decode_spec_fields(ByteReader& r) {
  sw::core::GateSpec spec;
  spec.num_inputs = static_cast<std::size_t>(r.u64());
  SW_REQUIRE(spec.num_inputs <= kMaxCols,
             "implausible input count in spec block");
  const std::uint64_t nf = r.u64();
  SW_REQUIRE(nf <= kMaxCols && spec.num_inputs * nf <= kMaxCols,
             "implausible channel count in spec block");
  spec.frequencies.resize(static_cast<std::size_t>(nf));
  for (auto& f : spec.frequencies) f = r.f64();
  spec.transducer_width = r.f64();
  spec.min_gap = r.f64();
  spec.min_same_channel_spacing = r.f64();
  spec.multiple_search =
      static_cast<int>(static_cast<std::int64_t>(r.u64()));
  const std::uint64_t ninv = r.u64();
  SW_REQUIRE(ninv <= kMaxCols, "implausible invert flag count in spec block");
  spec.invert_output.resize(static_cast<std::size_t>(ninv));
  for (auto& b : spec.invert_output) b = r.u8();
  return spec;
}

sw::core::GateSpec decode_spec(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  sw::core::GateSpec spec = decode_spec_fields(r);
  SW_REQUIRE(r.remaining() == 0, "trailing bytes after spec block");
  return spec;
}

// v3 program block: a versioned, self-checksummed serialisation of a
// ProgramSpec in the spec-block position. The trailing checksum looks
// redundant next to the frame checksum, but the block is also the unit a
// coordinator persists or relays independent of any one frame, so it must
// verify on its own.
//
//   u16  block format (kProgramBlockFormat)
//   u64  num_primary_inputs
//   u64  num_stages
//   per stage: GateSpec fields (as the v2 spec block), u64 num_sources,
//              then per source u8 kind, u64 stage, u64 index, u8 negated
//   u64  chunked FNV-1a 64 over everything above

constexpr std::uint16_t kProgramBlockFormat = 1;
// Synthesis depth for n <= 4 truth tables is single digits; anything near
// this cap is a corrupt or hostile frame, not a real cascade.
constexpr std::uint64_t kMaxStages = 4096;

void append_program(std::vector<std::uint8_t>& out,
                    const sw::wavesim::ProgramSpec& program) {
  const std::size_t block_at = out.size();
  append_u16(out, kProgramBlockFormat);
  append_u64(out, program.num_primary_inputs);
  append_u64(out, program.stages.size());
  for (const auto& stage : program.stages) {
    append_spec(out, stage.gate);
    append_u64(out, stage.sources.size());
    for (const auto& src : stage.sources) {
      out.push_back(static_cast<std::uint8_t>(src.kind));
      append_u64(out, src.stage);
      append_u64(out, src.index);
      out.push_back(src.negated ? 1 : 0);
    }
  }
  append_u64(out, chunked_fnv1a64(
                      {out.data() + block_at, out.size() - block_at}));
}

sw::wavesim::ProgramSpec decode_program(std::span<const std::uint8_t> bytes) {
  SW_REQUIRE(bytes.size() > 8, "program block shorter than its checksum");
  const auto body = bytes.first(bytes.size() - 8);
  ByteReader tail(bytes.subspan(bytes.size() - 8));
  SW_REQUIRE(chunked_fnv1a64(body) == tail.u64(),
             "program block checksum mismatch");
  ByteReader r(body);
  SW_REQUIRE(r.u16() == kProgramBlockFormat,
             "unknown program block format");
  sw::wavesim::ProgramSpec program;
  program.num_primary_inputs = static_cast<std::size_t>(r.u64());
  SW_REQUIRE(program.num_primary_inputs <= kMaxCols,
             "implausible primary input count in program block");
  const std::uint64_t num_stages = r.u64();
  SW_REQUIRE(num_stages <= kMaxStages,
             "implausible stage count in program block");
  program.stages.resize(static_cast<std::size_t>(num_stages));
  for (auto& stage : program.stages) {
    stage.gate = decode_spec_fields(r);
    const std::uint64_t num_sources = r.u64();
    SW_REQUIRE(num_sources <= kMaxCols,
               "implausible source count in program block");
    stage.sources.resize(static_cast<std::size_t>(num_sources));
    for (auto& src : stage.sources) {
      const std::uint8_t kind = r.u8();
      SW_REQUIRE(kind <= 3, "unknown slot source kind in program block");
      src.kind = static_cast<sw::wavesim::SlotSource::Kind>(kind);
      const std::uint64_t stage_ref = r.u64();
      const std::uint64_t index_ref = r.u64();
      SW_REQUIRE(stage_ref <= 0xffffffffull && index_ref <= 0xffffffffull,
                 "slot source reference out of range");
      src.stage = static_cast<std::uint32_t>(stage_ref);
      src.index = static_cast<std::uint32_t>(index_ref);
      src.negated = r.u8() != 0;
    }
  }
  SW_REQUIRE(r.remaining() == 0, "trailing bytes after program block");
  // Reject structurally invalid programs (forward stage references, ragged
  // source lists …) at the wire boundary, before any caching or design.
  program.validate();
  return program;
}

std::size_t row_bytes_for(std::uint64_t num_cols) {
  return static_cast<std::size_t>((num_cols + 7) / 8);
}

// Branch-free 8-cell bit pack/unpack. The socket transport runs these per
// word on the serving path, where the original cell-at-a-time loops cost
// as much as the SIMD evaluation they fed; one u64 multiply moves a whole
// byte group instead. Bit order is unchanged from v1: bit i of payload
// byte b is column b * 8 + i.

constexpr std::uint64_t kLowBits = 0x0101010101010101ull;
constexpr std::uint64_t kLow7 = 0x7f7f7f7f7f7f7f7full;

std::uint64_t load_cells8(const std::uint8_t* cells) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t x;
    std::memcpy(&x, cells, 8);
    return x;
  } else {
    std::uint64_t x = 0;
    for (int b = 0; b < 8; ++b) {
      x |= static_cast<std::uint64_t>(cells[b]) << (8 * b);
    }
    return x;
  }
}

/// Pack 8 cells (one byte each, nonzero = 1, matching the v1 semantics)
/// into one payload byte: normalise each byte to 0/1 with a carry-free
/// "byte != 0" test, then gather the low bits with a multiply whose
/// partial products all land on distinct bits.
std::uint8_t pack_cells8(const std::uint8_t* cells) {
  const std::uint64_t x = load_cells8(cells);
  const std::uint64_t nonzero = (((x & kLow7) + kLow7) | x) >> 7 & kLowBits;
  return static_cast<std::uint8_t>((nonzero * 0x0102040810204080ull) >> 56);
}

/// Unpack one payload byte into 8 cells of 0/1: replicate the byte to
/// every lane, mask each lane to its own bit, normalise to 0/1.
void unpack_cells8(std::uint8_t packed, std::uint8_t* cells) {
  const std::uint64_t spread =
      (packed * kLowBits) & 0x8040201008040201ull;
  const std::uint64_t ones = ((spread + kLow7) >> 7) & kLowBits;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(cells, &ones, 8);
  } else {
    for (int b = 0; b < 8; ++b) {
      cells[b] = static_cast<std::uint8_t>(ones >> (8 * b));
    }
  }
}

/// The SIMD bulk codec for the flat (num_cols % 8 == 0) path — AVX-512 (64
/// cells/step) when the host and build have it, else AVX2 (32 cells/step),
/// else nullptr; resolved once, mirroring the wavesim kernel dispatch. The
/// caller reads codec->step for its bulk granularity.
const detail::WireCodec* wire_simd() {
#if defined(__x86_64__) || defined(__i386__)
  static const detail::WireCodec* codec = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw")) {
      if (const detail::WireCodec* c = detail::wire_codec_avx512_candidate()) {
        return c;
      }
    }
    return __builtin_cpu_supports("avx2")
               ? detail::wire_codec_avx2_candidate()
               : static_cast<const detail::WireCodec*>(nullptr);
  }();
  return codec;
#else
  return nullptr;
#endif
}

}  // namespace

SweepFrameView as_view(const SweepFrame& frame) {
  SweepFrameView view;
  view.kind = frame.kind;
  view.layout_hash = frame.layout_hash;
  view.word_offset = frame.word_offset;
  view.num_words = frame.num_words;
  view.num_cols = frame.num_cols;
  view.spec = frame.spec ? &*frame.spec : nullptr;
  view.program = frame.program ? &*frame.program : nullptr;
  view.matrix = frame.matrix;
  return view;
}

SweepFrameView make_request_view(const sw::core::GateSpec& spec,
                                 std::uint64_t layout_hash,
                                 std::uint64_t word_offset,
                                 std::uint64_t num_words,
                                 std::span<const std::uint8_t> matrix) {
  SweepFrameView view;
  view.kind = FrameKind::kRequest;
  view.layout_hash = layout_hash;
  view.word_offset = word_offset;
  view.num_words = num_words;
  view.num_cols = spec.frequencies.size() * spec.num_inputs;
  view.spec = &spec;
  view.matrix = matrix;
  return view;
}

SweepFrameView make_program_request_view(
    const sw::wavesim::ProgramSpec& program, std::uint64_t program_hash,
    std::uint64_t word_offset, std::uint64_t num_words,
    std::span<const std::uint8_t> matrix) {
  SweepFrameView view;
  view.kind = FrameKind::kRequest;
  view.layout_hash = program_hash;
  view.word_offset = word_offset;
  view.num_words = num_words;
  view.num_cols = program.primary_slot_count();
  view.program = &program;
  view.matrix = matrix;
  return view;
}

SweepFrameView make_response_view(const SweepFrame& request,
                                  std::uint64_t num_channels,
                                  std::span<const std::uint8_t> matrix) {
  SweepFrameView view;
  view.kind = FrameKind::kResponse;
  view.layout_hash = request.layout_hash;
  view.word_offset = request.word_offset;
  view.num_words = request.num_words;
  view.num_cols = num_channels;
  view.matrix = matrix;
  return view;
}

SweepFrame make_request_frame(const sw::core::GateLayout& layout,
                              std::uint64_t word_offset,
                              std::uint64_t num_words,
                              std::vector<std::uint8_t> matrix) {
  SweepFrame frame;
  frame.kind = FrameKind::kRequest;
  frame.layout_hash = hash_layout(layout);
  frame.word_offset = word_offset;
  frame.num_words = num_words;
  frame.num_cols = layout.spec.frequencies.size() * layout.spec.num_inputs;
  frame.spec = layout.spec;
  frame.matrix = std::move(matrix);
  return frame;
}

SweepFrame make_program_request_frame(const sw::wavesim::ProgramSpec& program,
                                      std::uint64_t word_offset,
                                      std::uint64_t num_words,
                                      std::vector<std::uint8_t> matrix) {
  program.validate();
  SweepFrame frame;
  frame.kind = FrameKind::kRequest;
  frame.layout_hash = hash_program(program);
  frame.word_offset = word_offset;
  frame.num_words = num_words;
  frame.num_cols = program.primary_slot_count();
  frame.program = program;
  frame.matrix = std::move(matrix);
  return frame;
}

SweepFrame make_response_frame(const SweepFrame& request,
                               std::uint64_t num_channels,
                               std::vector<std::uint8_t> matrix) {
  SweepFrame frame;
  frame.kind = FrameKind::kResponse;
  frame.layout_hash = request.layout_hash;
  frame.word_offset = request.word_offset;
  frame.num_words = request.num_words;
  frame.num_cols = num_channels;
  frame.matrix = std::move(matrix);
  return frame;
}

void encode_frame_into(const SweepFrameView& frame,
                       std::vector<std::uint8_t>& out) {
  SW_REQUIRE(frame.kind == FrameKind::kRequest ||
                 frame.kind == FrameKind::kResponse,
             "unknown frame kind");
  const bool is_request = frame.kind == FrameKind::kRequest;
  SW_REQUIRE(!(frame.spec != nullptr && frame.program != nullptr),
             "a frame carries at most one of GateSpec / ProgramSpec");
  SW_REQUIRE(is_request == (frame.spec != nullptr || frame.program != nullptr),
             "request frames carry a GateSpec or a ProgramSpec, response "
             "frames must not");
  SW_REQUIRE(frame.num_words <= kMaxWords && frame.num_cols <= kMaxCols,
             "frame dimensions out of range");
  SW_REQUIRE(frame.matrix.size() == frame.num_words * frame.num_cols,
             "matrix must be num_words x num_cols");

  const std::size_t base = out.size();
  out.reserve(base + kHeaderSize + frame.matrix.size() / 8 + 256);
  append_u32(out, kWireMagic);
  // A frame is v3 exactly when it carries a program: single-gate requests
  // and all responses keep encoding v2, so an upgraded peer stays
  // compatible with an old worker until the first program request.
  append_u16(out, frame.program ? kWireVersionProgram : kWireVersion);
  append_u16(out, static_cast<std::uint16_t>(frame.kind));
  append_u64(out, frame.layout_hash);
  append_u64(out, frame.word_offset);
  append_u64(out, frame.num_words);
  append_u64(out, frame.num_cols);
  append_u64(out, 0);  // spec_size, patched once the spec block is written
  append_u64(out, 0);  // payload_size, patched below
  append_u64(out, 0);  // checksum, patched over the assembled body

  if (frame.spec) append_spec(out, *frame.spec);
  if (frame.program) append_program(out, *frame.program);
  const std::size_t spec_size = out.size() - base - kHeaderSize;

  // Bit-pack the matrix straight into the output buffer: one resize to the
  // final length, rows written in place. No intermediate payload vector —
  // on the serving path this encoder runs per shard and the extra
  // allocate+copy used to rival the packing itself.
  const std::size_t row_bytes = row_bytes_for(frame.num_cols);
  const std::size_t full_bytes = static_cast<std::size_t>(frame.num_cols / 8);
  const std::size_t payload_size =
      static_cast<std::size_t>(frame.num_words) * row_bytes;
  const std::size_t payload_at = out.size();
  out.resize(payload_at + payload_size, 0);
  if (frame.num_cols % 8 == 0) {
    // Byte-aligned rows tile the payload with no padding bits, so the
    // whole matrix packs as one flat cell stream — the SIMD bulk path,
    // with the u64 trick finishing the sub-group tail.
    std::uint8_t* packed = out.data() + payload_at;
    const detail::WireCodec* simd = wire_simd();
    const std::size_t bulk = simd ? payload_size & ~(simd->step - 1) : 0;
    if (bulk > 0) simd->pack(frame.matrix.data(), bulk, packed);
    for (std::size_t b = bulk; b < payload_size; ++b) {
      packed[b] = pack_cells8(frame.matrix.data() + b * 8);
    }
  } else {
    for (std::uint64_t w = 0; w < frame.num_words; ++w) {
      const std::uint8_t* cells =
          frame.matrix.data() + static_cast<std::size_t>(w * frame.num_cols);
      std::uint8_t* row = out.data() + payload_at +
                          static_cast<std::size_t>(w) * row_bytes;
      for (std::size_t b = 0; b < full_bytes; ++b) {
        row[b] = pack_cells8(cells + b * 8);
      }
      for (std::uint64_t c = full_bytes * 8; c < frame.num_cols; ++c) {
        if (cells[c]) {
          row[full_bytes] |= static_cast<std::uint8_t>(1u << (c % 8));
        }
      }
    }
  }

  std::uint8_t* header = out.data() + base;
  detail::store_u64(header + 40, spec_size);
  detail::store_u64(header + 48, payload_size);
  // Checksum the spec block and payload as the one contiguous region they
  // occupy in the buffer: a single chunked pass, no concatenation copy.
  const std::uint64_t checksum = chunked_fnv1a64(
      {header + kHeaderSize, spec_size + payload_size});
  detail::store_u64(header + 56, checksum);
}

std::vector<std::uint8_t> encode_frame(const SweepFrame& frame) {
  std::vector<std::uint8_t> out;
  encode_frame_into(as_view(frame), out);
  return out;
}

SweepFrame decode_frame(std::span<const std::uint8_t> bytes,
                        std::uint16_t max_version) {
  SW_REQUIRE(bytes.size() >= kHeaderSize, "frame shorter than header");
  ByteReader r(bytes);
  SW_REQUIRE(r.u32() == kWireMagic, "bad frame magic");
  const std::uint16_t version = r.u16();
  // v1 frames are retired (checksum change), not negotiable: rejecting
  // them is a plain decode error. Anything newer than this decoder (or the
  // caller's pinned ceiling) throws the typed error so the transport can
  // answer with a version refusal instead of a corruption report.
  SW_REQUIRE(version >= kWireVersion, "retired wire version");
  const std::uint16_t ceiling = std::min(max_version, kWireVersionMax);
  if (version > ceiling) throw UnsupportedVersionError(version, ceiling);
  const std::uint16_t kind = r.u16();
  SW_REQUIRE(kind == static_cast<std::uint16_t>(FrameKind::kRequest) ||
                 kind == static_cast<std::uint16_t>(FrameKind::kResponse),
             "unknown frame kind");

  SweepFrame frame;
  frame.kind = static_cast<FrameKind>(kind);
  frame.layout_hash = r.u64();
  frame.word_offset = r.u64();
  frame.num_words = r.u64();
  frame.num_cols = r.u64();
  const std::uint64_t spec_size = r.u64();
  const std::uint64_t payload_size = r.u64();
  const std::uint64_t checksum = r.u64();

  SW_REQUIRE(frame.num_words <= kMaxWords && frame.num_cols <= kMaxCols,
             "frame dimensions out of range");
  SW_REQUIRE(spec_size <= (std::uint64_t{1} << 20),
             "implausible spec block size");
  const std::size_t row_bytes = row_bytes_for(frame.num_cols);
  SW_REQUIRE(payload_size == frame.num_words * row_bytes,
             "payload size inconsistent with frame dimensions");
  SW_REQUIRE(r.remaining() == spec_size + payload_size,
             "frame length mismatch (truncated or trailing bytes)");

  // Spec block and payload are contiguous in the buffer; checksum them in
  // one chunked pass exactly as the encoder did.
  const auto body =
      r.take(static_cast<std::size_t>(spec_size + payload_size));
  SW_REQUIRE(chunked_fnv1a64(body) == checksum,
             "frame checksum mismatch (corrupt body)");
  const auto spec_bytes = body.first(static_cast<std::size_t>(spec_size));
  const auto payload = body.subspan(static_cast<std::size_t>(spec_size));

  if (frame.kind == FrameKind::kRequest) {
    SW_REQUIRE(spec_size > 0, "request frame missing its spec block");
    if (version == kWireVersionProgram) {
      frame.program = decode_program(spec_bytes);
    } else {
      frame.spec = decode_spec(spec_bytes);
    }
  } else {
    SW_REQUIRE(version == kWireVersion, "response frames encode as wire v2");
    SW_REQUIRE(spec_size == 0, "response frame must not carry a spec block");
  }

  frame.matrix.assign(
      static_cast<std::size_t>(frame.num_words * frame.num_cols), 0);
  const std::size_t full_bytes = static_cast<std::size_t>(frame.num_cols / 8);
  if (frame.num_cols % 8 == 0) {
    // Flat SIMD bulk path (see encode_frame_into): byte-aligned rows have
    // no padding bits, so the payload is one contiguous packed stream.
    const std::size_t total = static_cast<std::size_t>(payload_size);
    const detail::WireCodec* simd = wire_simd();
    const std::size_t bulk = simd ? total & ~(simd->step - 1) : 0;
    if (bulk > 0) simd->unpack(payload.data(), bulk, frame.matrix.data());
    for (std::size_t b = bulk; b < total; ++b) {
      unpack_cells8(payload[b], frame.matrix.data() + b * 8);
    }
    return frame;
  }
  for (std::uint64_t w = 0; w < frame.num_words; ++w) {
    const std::uint8_t* row = payload.data() + w * row_bytes;
    std::uint8_t* cells =
        frame.matrix.data() + static_cast<std::size_t>(w * frame.num_cols);
    for (std::size_t b = 0; b < full_bytes; ++b) {
      unpack_cells8(row[b], cells + b * 8);
    }
    for (std::uint64_t c = full_bytes * 8; c < frame.num_cols; ++c) {
      cells[c] = (row[c / 8] >> (c % 8)) & 1u;
    }
    // Canonical encoding keeps row padding zero; a set padding bit means
    // the body was not produced by this encoder.
    const std::uint8_t last = row[row_bytes - 1];
    const std::uint8_t mask =
        static_cast<std::uint8_t>(0xFFu << (frame.num_cols % 8));
    SW_REQUIRE((last & mask) == 0, "nonzero padding bits in payload row");
  }
  return frame;
}

void write_frame_file(const std::string& path, const SweepFrame& frame) {
  const auto bytes = encode_frame(frame);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SW_REQUIRE(out.good(), "cannot open frame file for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  SW_REQUIRE(out.good(), "short write to frame file: " + path);
}

SweepFrame read_frame_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  SW_REQUIRE(in.good(), "cannot open frame file for reading: " + path);
  const std::streamsize size = in.tellg();
  SW_REQUIRE(size >= 0, "cannot size frame file: " + path);
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  SW_REQUIRE(in.gcount() == size, "short read from frame file: " + path);
  return decode_frame(bytes);
}

}  // namespace sw::serve
