#include "serve/wire.h"

#include <fstream>

#include "serve/byteio.h"
#include "serve/layout_hash.h"
#include "util/error.h"

namespace sw::serve {

namespace {

using detail::ByteReader;
using detail::append_f64;
using detail::append_u16;
using detail::append_u32;
using detail::append_u64;

constexpr std::size_t kHeaderSize = 64;
// Caps far beyond any realistic sweep shard, small enough that a corrupt
// size field cannot drive a multi-gigabyte allocation before the checksum
// is ever consulted.
constexpr std::uint64_t kMaxWords = std::uint64_t{1} << 32;
constexpr std::uint64_t kMaxCols = std::uint64_t{1} << 20;

std::vector<std::uint8_t> encode_spec(const sw::core::GateSpec& spec) {
  std::vector<std::uint8_t> out;
  append_u64(out, spec.num_inputs);
  append_u64(out, spec.frequencies.size());
  for (const double f : spec.frequencies) append_f64(out, f);
  append_f64(out, spec.transducer_width);
  append_f64(out, spec.min_gap);
  append_f64(out, spec.min_same_channel_spacing);
  append_u64(out, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(spec.multiple_search)));
  append_u64(out, spec.invert_output.size());
  for (const std::uint8_t b : spec.invert_output) out.push_back(b ? 1 : 0);
  return out;
}

sw::core::GateSpec decode_spec(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  sw::core::GateSpec spec;
  spec.num_inputs = static_cast<std::size_t>(r.u64());
  SW_REQUIRE(spec.num_inputs <= kMaxCols,
             "implausible input count in spec block");
  const std::uint64_t nf = r.u64();
  SW_REQUIRE(nf <= kMaxCols && spec.num_inputs * nf <= kMaxCols,
             "implausible channel count in spec block");
  spec.frequencies.resize(static_cast<std::size_t>(nf));
  for (auto& f : spec.frequencies) f = r.f64();
  spec.transducer_width = r.f64();
  spec.min_gap = r.f64();
  spec.min_same_channel_spacing = r.f64();
  spec.multiple_search =
      static_cast<int>(static_cast<std::int64_t>(r.u64()));
  const std::uint64_t ninv = r.u64();
  SW_REQUIRE(ninv <= kMaxCols, "implausible invert flag count in spec block");
  spec.invert_output.resize(static_cast<std::size_t>(ninv));
  for (auto& b : spec.invert_output) b = r.u8();
  SW_REQUIRE(r.remaining() == 0, "trailing bytes after spec block");
  return spec;
}

std::size_t row_bytes_for(std::uint64_t num_cols) {
  return static_cast<std::size_t>((num_cols + 7) / 8);
}

}  // namespace

SweepFrame make_request_frame(const sw::core::GateLayout& layout,
                              std::uint64_t word_offset,
                              std::uint64_t num_words,
                              std::vector<std::uint8_t> matrix) {
  SweepFrame frame;
  frame.kind = FrameKind::kRequest;
  frame.layout_hash = hash_layout(layout);
  frame.word_offset = word_offset;
  frame.num_words = num_words;
  frame.num_cols = layout.spec.frequencies.size() * layout.spec.num_inputs;
  frame.spec = layout.spec;
  frame.matrix = std::move(matrix);
  return frame;
}

SweepFrame make_response_frame(const SweepFrame& request,
                               std::uint64_t num_channels,
                               std::vector<std::uint8_t> matrix) {
  SweepFrame frame;
  frame.kind = FrameKind::kResponse;
  frame.layout_hash = request.layout_hash;
  frame.word_offset = request.word_offset;
  frame.num_words = request.num_words;
  frame.num_cols = num_channels;
  frame.matrix = std::move(matrix);
  return frame;
}

std::vector<std::uint8_t> encode_frame(const SweepFrame& frame) {
  SW_REQUIRE(frame.kind == FrameKind::kRequest ||
                 frame.kind == FrameKind::kResponse,
             "unknown frame kind");
  const bool is_request = frame.kind == FrameKind::kRequest;
  SW_REQUIRE(is_request == frame.spec.has_value(),
             "request frames carry a GateSpec, response frames must not");
  SW_REQUIRE(frame.num_words <= kMaxWords && frame.num_cols <= kMaxCols,
             "frame dimensions out of range");
  SW_REQUIRE(frame.matrix.size() == frame.num_words * frame.num_cols,
             "matrix must be num_words x num_cols");

  std::vector<std::uint8_t> spec_bytes;
  if (frame.spec) spec_bytes = encode_spec(*frame.spec);

  const std::size_t row_bytes = row_bytes_for(frame.num_cols);
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(frame.num_words) * row_bytes, 0);
  for (std::uint64_t w = 0; w < frame.num_words; ++w) {
    for (std::uint64_t c = 0; c < frame.num_cols; ++c) {
      if (frame.matrix[w * frame.num_cols + c]) {
        payload[static_cast<std::size_t>(w) * row_bytes + c / 8] |=
            static_cast<std::uint8_t>(1u << (c % 8));
      }
    }
  }

  const std::uint64_t checksum = fnv1a64(payload, fnv1a64(spec_bytes));

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + spec_bytes.size() + payload.size());
  append_u32(out, kWireMagic);
  append_u16(out, kWireVersion);
  append_u16(out, static_cast<std::uint16_t>(frame.kind));
  append_u64(out, frame.layout_hash);
  append_u64(out, frame.word_offset);
  append_u64(out, frame.num_words);
  append_u64(out, frame.num_cols);
  append_u64(out, spec_bytes.size());
  append_u64(out, payload.size());
  append_u64(out, checksum);
  out.insert(out.end(), spec_bytes.begin(), spec_bytes.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

SweepFrame decode_frame(std::span<const std::uint8_t> bytes) {
  SW_REQUIRE(bytes.size() >= kHeaderSize, "frame shorter than header");
  ByteReader r(bytes);
  SW_REQUIRE(r.u32() == kWireMagic, "bad frame magic");
  SW_REQUIRE(r.u16() == kWireVersion, "unsupported wire version");
  const std::uint16_t kind = r.u16();
  SW_REQUIRE(kind == static_cast<std::uint16_t>(FrameKind::kRequest) ||
                 kind == static_cast<std::uint16_t>(FrameKind::kResponse),
             "unknown frame kind");

  SweepFrame frame;
  frame.kind = static_cast<FrameKind>(kind);
  frame.layout_hash = r.u64();
  frame.word_offset = r.u64();
  frame.num_words = r.u64();
  frame.num_cols = r.u64();
  const std::uint64_t spec_size = r.u64();
  const std::uint64_t payload_size = r.u64();
  const std::uint64_t checksum = r.u64();

  SW_REQUIRE(frame.num_words <= kMaxWords && frame.num_cols <= kMaxCols,
             "frame dimensions out of range");
  SW_REQUIRE(spec_size <= (std::uint64_t{1} << 20),
             "implausible spec block size");
  const std::size_t row_bytes = row_bytes_for(frame.num_cols);
  SW_REQUIRE(payload_size == frame.num_words * row_bytes,
             "payload size inconsistent with frame dimensions");
  SW_REQUIRE(r.remaining() == spec_size + payload_size,
             "frame length mismatch (truncated or trailing bytes)");

  const auto spec_bytes = r.take(static_cast<std::size_t>(spec_size));
  const auto payload = r.take(static_cast<std::size_t>(payload_size));
  SW_REQUIRE(fnv1a64(payload, fnv1a64(spec_bytes)) == checksum,
             "frame checksum mismatch (corrupt body)");

  if (frame.kind == FrameKind::kRequest) {
    SW_REQUIRE(spec_size > 0, "request frame missing its GateSpec block");
    frame.spec = decode_spec(spec_bytes);
  } else {
    SW_REQUIRE(spec_size == 0, "response frame must not carry a GateSpec");
  }

  frame.matrix.assign(
      static_cast<std::size_t>(frame.num_words * frame.num_cols), 0);
  for (std::uint64_t w = 0; w < frame.num_words; ++w) {
    const std::uint8_t* row = payload.data() + w * row_bytes;
    for (std::uint64_t c = 0; c < frame.num_cols; ++c) {
      frame.matrix[w * frame.num_cols + c] = (row[c / 8] >> (c % 8)) & 1u;
    }
    // Canonical encoding keeps row padding zero; a set padding bit means
    // the body was not produced by this encoder.
    if (frame.num_cols % 8 != 0) {
      const std::uint8_t last = row[row_bytes - 1];
      const std::uint8_t mask = static_cast<std::uint8_t>(
          0xFFu << (frame.num_cols % 8));
      SW_REQUIRE((last & mask) == 0, "nonzero padding bits in payload row");
    }
  }
  return frame;
}

void write_frame_file(const std::string& path, const SweepFrame& frame) {
  const auto bytes = encode_frame(frame);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SW_REQUIRE(out.good(), "cannot open frame file for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  SW_REQUIRE(out.good(), "short write to frame file: " + path);
}

SweepFrame read_frame_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  SW_REQUIRE(in.good(), "cannot open frame file for reading: " + path);
  const std::streamsize size = in.tellg();
  SW_REQUIRE(size >= 0, "cannot size frame file: " + path);
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  SW_REQUIRE(in.gcount() == size, "short read from frame file: " + path);
  return decode_frame(bytes);
}

}  // namespace sw::serve
