// Long-lived evaluator service: the traffic-serving front end over the
// batch-evaluation subsystem.
//
// One EvaluatorService owns the WaveEngine, a designer, a plan cache and a
// worker pool, and accepts interleaved packed-word batches against
// *arbitrary* targets — single gate layouts or multi-stage ProgramSpecs —
// through one request type (serve::EvalRequest): submit() is asynchronous
// (returns a std::future), admission control bounds the request queue and
// the words in flight (shed or block, caller-visible), and per-target
// artefacts (BatchEvaluator plans, fused EvalPrograms) are cached in one
// LRU keyed by the canonical target hash — so the steady-state cost of a
// repeated target is just the packed-bit evaluation, not plan or program
// reconstruction. The submit fast path resolves a cached entry without
// copying the target; a miss hands the spec to a worker, where
// construction is serialised per key behind the cache entry.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/gate.h"
#include "core/gate_design.h"
#include "dispersion/model.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/eval_request.h"
#include "serve/latency.h"
#include "serve/plan_cache.h"
#include "util/thread_pool.h"
#include "wavesim/wave_engine.h"

namespace sw::serve {

struct ServiceOptions {
  /// Worker threads consuming the request queue; 0 selects
  /// std::thread::hardware_concurrency(). At least one dedicated worker is
  /// always spawned so submission stays asynchronous on one-core hosts.
  std::size_t num_threads = 0;
  /// Plan-cache capacity in distinct layouts; 0 = unbounded.
  std::size_t plan_cache_capacity = 32;
  /// Options for the cached BatchEvaluators. The default single inline
  /// thread makes each evaluation run entirely on the service worker that
  /// picked the request up (parallelism comes from concurrent requests);
  /// raise it only for few-but-huge-batch workloads.
  sw::wavesim::BatchOptions evaluator_options{.num_threads = 1};
  AdmissionOptions admission;
  /// Observability hook: called on the worker thread right after a request
  /// leaves the queue, before its evaluation starts. Useful for metrics
  /// and tracing; tests use it to hold workers in place deterministically.
  std::function<void(std::uint64_t request_id)> on_request_start;
  /// Completion hook: called on the worker thread once a request has fully
  /// settled (accounting released, success or failure alike), with its
  /// submit-to-completion latency. The same latency feeds the built-in
  /// percentile reservoir whether or not a hook is installed.
  std::function<void(std::uint64_t request_id, double latency_seconds)>
      on_request_finish;
  /// Window of recent request latencies backing ServiceStats::latency
  /// (p50/p95/p99 over the most recent `latency_window` requests).
  std::size_t latency_window = 1024;
  /// Settled traces kept in the service's TraceRecorder ring (what the
  /// trace endpoint answers with).
  std::size_t trace_capacity = 256;
  /// Any settled request whose trace spans cover at least this many
  /// seconds logs a per-phase breakdown to stderr; <= 0 disables.
  double slow_request_threshold_s = 0.0;
};

/// Decoded output of one request: row-major num_words x num_channels logic
/// bits (the evaluate_bits matrix), plus serving metadata.
struct ResultBatch {
  std::uint64_t request_id = 0;
  std::size_t num_words = 0;
  std::size_t num_channels = 0;
  bool cache_hit = false;  ///< plan came from the cache (no build this call)
  /// Evaluation stages behind these bits: 1 for a single-gate layout,
  /// the cascade length for a program (whose bits are the LAST stage's).
  std::size_t num_stages = 1;
  /// Longest stage-to-stage path of the evaluated target (1 for a gate):
  /// the physical cascade latency in stages.
  std::size_t depth = 1;
  /// The request's phase spans (admission, plan lookup/build, queue,
  /// kernel, per-stage), settled. Already recorded into the service's
  /// TraceRecorder unless the request set defer_trace_record.
  sw::obs::TraceContext trace;
  std::vector<std::uint8_t> bits;

  std::uint8_t bit(std::size_t word, std::size_t channel) const {
    return bits[word * num_channels + channel];
  }
};

struct ServiceStats {
  std::uint64_t submitted = 0;  ///< requests admitted and enqueued
  std::uint64_t completed = 0;  ///< requests finished (including failures)
  std::uint64_t shed = 0;       ///< submissions rejected with OverloadError
  std::uint64_t blocked = 0;    ///< submissions that had to wait (kBlock)
  std::size_t queued_requests = 0;  ///< admitted, not yet picked up
  std::size_t inflight_words = 0;   ///< admitted, not yet completed
  /// Evaluation kernel every evaluate_bits dispatches to ("scalar" |
  /// "avx2" | "avx512"; see sw::wavesim::active_kernel_name()).
  std::string kernel;
  /// Requested evaluation precision of this service's plans ("f64" |
  /// "f32"; ServiceOptions::evaluator_options.precision with kAuto
  /// resolved). An f32 service can still serve double or block-f32 plans
  /// per layout: cache.f32_fallbacks counts full margin-aware fallbacks,
  /// cache.block_plans the per-detector mixes, and cache.f32_detectors /
  /// cache.f64_rescue_detectors the detector-granularity split — so
  /// precision == "f32" with f64_rescue_detectors > 0 reads "asked for
  /// f32, some detectors were rescued to f64 lanes".
  std::string precision;
  /// Submit-to-completion latency percentiles over the recent-request
  /// window (ServiceOptions::latency_window); the metrics endpoint and the
  /// serving benches read these.
  LatencySummary latency;
  PlanCacheStats cache;
  /// Since-start distributions (log-bucketed, Prometheus-renderable):
  /// submit-to-settle latency, admission wait, queue wait, kernel
  /// execution — all seconds — plus the admitted batch sizes in words.
  sw::obs::HistogramSnapshot request_latency;
  sw::obs::HistogramSnapshot admission_wait;
  sw::obs::HistogramSnapshot queue_wait;
  sw::obs::HistogramSnapshot kernel_exec;
  sw::obs::HistogramSnapshot batch_words;
};

class EvaluatorService {
 public:
  /// Completion callback of submit_async: exactly one of result/error is
  /// meaningful — `error` is null on success. Runs on the worker thread
  /// that evaluated the request, after the request has fully settled
  /// (accounting released, stats updated), so the callback may safely
  /// re-submit or inspect stats().
  using CompletionFn =
      std::function<void(ResultBatch&& result, std::exception_ptr error)>;

  /// The service designs nothing itself: callers bring layouts (e.g. from
  /// InlineGateDesigner against the same model). `model` must outlive the
  /// service; `alpha` is the Gilbert damping for the owned WaveEngine.
  /// Resolves (and logs to stderr, once per process) the evaluation kernel
  /// and precision requests will run on, so an invalid SW_EVAL_KERNEL or
  /// SW_EVAL_PRECISION override fails here rather than inside the first
  /// request.
  EvaluatorService(const sw::disp::DispersionModel& model, double alpha,
                   ServiceOptions options = {});

  /// Drains every pending request (their futures all complete), then joins
  /// the workers. Blocked submitters on other threads are woken with an
  /// error.
  ~EvaluatorService();

  EvaluatorService(const EvaluatorService&) = delete;
  EvaluatorService& operator=(const EvaluatorService&) = delete;

  /// Submit one EvalRequest (layout- or program-bound, see eval_request.h).
  /// Returns a future carrying the decoded bits — for a program, the LAST
  /// stage's — with stage-count/depth metadata; evaluation errors surface
  /// through the future. Throws OverloadError (kShed) or blocks (kBlock)
  /// per the admission policy, and throws sw::util::Error on a shape
  /// mismatch or a request binding neither (or both) targets.
  std::future<ResultBatch> submit(EvalRequest request);

  /// Callback-style submit for event-driven callers (the epoll serving
  /// core) that must not park a thread in future.get(): same admission,
  /// plan-cache and accounting path as submit(), but completion is
  /// delivered by invoking `done` on the worker thread. Exceptions thrown
  /// by `done` itself are swallowed (the request has already settled).
  void submit_async(EvalRequest request, CompletionFn done);

  /// \deprecated Shim over submit(EvalRequest::for_layout(...)).
  [[deprecated("build an EvalRequest with EvalRequest::for_layout")]]
  std::future<ResultBatch> submit(const sw::core::GateLayout& layout,
                                  std::vector<std::uint8_t> packed_bits,
                                  std::size_t num_words);

  /// \deprecated Shim over submit(EvalRequest::for_batch(...)).
  [[deprecated("build an EvalRequest with EvalRequest::for_batch")]]
  std::future<ResultBatch> submit(
      const sw::core::GateLayout& layout,
      const std::vector<std::vector<sw::core::Bits>>& batch);

  /// \deprecated Shim over submit_async(EvalRequest::for_layout(...), done).
  [[deprecated("build an EvalRequest with EvalRequest::for_layout")]]
  void submit_async(const sw::core::GateLayout& layout,
                    std::vector<std::uint8_t> packed_bits,
                    std::size_t num_words, CompletionFn done);

  ServiceStats stats() const;
  const sw::wavesim::WaveEngine& engine() const { return engine_; }
  /// The designer backing program builds (shared with the plan cache).
  const sw::core::InlineGateDesigner& designer() const { return designer_; }
  std::size_t num_threads() const { return pool_.size(); }

  /// The ring of settled request traces: the trace endpoint snapshots it,
  /// transports that defer recording (see EvalRequest::defer_trace_record)
  /// record into it after appending their own spans.
  sw::obs::TraceRecorder& trace_recorder() { return trace_recorder_; }
  const sw::obs::TraceRecorder& trace_recorder() const {
    return trace_recorder_;
  }

 private:
  struct Request;
  void post_request(EvalRequest&& source, std::unique_ptr<Request> request);
  void process(Request* request);  // takes ownership

  ServiceOptions options_;
  sw::wavesim::WaveEngine engine_;
  sw::core::InlineGateDesigner designer_;
  PlanCache cache_;
  AdmissionController admission_;
  LatencyReservoir latency_;
  sw::obs::TraceRecorder trace_recorder_;
  sw::obs::Histogram request_latency_hist_ = sw::obs::Histogram::for_seconds();
  sw::obs::Histogram admission_wait_hist_ = sw::obs::Histogram::for_seconds();
  sw::obs::Histogram queue_wait_hist_ = sw::obs::Histogram::for_seconds();
  sw::obs::Histogram kernel_exec_hist_ = sw::obs::Histogram::for_seconds();
  sw::obs::Histogram batch_words_hist_ = sw::obs::Histogram::for_words();

  mutable std::mutex stats_mutex_;
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;

  // Declared last: its destructor runs first and drains the queued
  // requests while every member they touch is still alive.
  sw::util::ThreadPool pool_;
};

}  // namespace sw::serve
