// Internal little-endian byte codec shared by the serving layer.
//
// The canonical layout serialisation (layout_hash.cpp) and the wire format
// (wire.cpp) must agree byte-for-byte on integer/double encoding; keeping
// one writer and one reader here means a width or byte-order slip cannot
// diverge between them. ByteWriter is resize-once because the canonical
// serialisation sits on the per-request fast path (every submit hashes its
// layout) and must not pay a capacity check per byte; the append_* helpers
// serve the wire encoder, where frames are assembled from variable-size
// blocks. ByteReader is bounds-checked on every primitive so truncated
// input fails loudly wherever it is cut.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace sw::serve::detail {

/// Resize-once little-endian writer over a caller-owned vector.
class ByteWriter {
 public:
  ByteWriter(std::vector<std::uint8_t>& out, std::size_t bound) : out_(out) {
    out_.resize(bound);
  }

  void u8(std::uint8_t v) { out_[pos_++] = v; }

  void u64(std::uint64_t v) {
    std::uint8_t* p = out_.data() + pos_;
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    pos_ += 8;
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void finish() { out_.resize(pos_); }

 private:
  std::vector<std::uint8_t>& out_;
  std::size_t pos_ = 0;
};

/// In-place little-endian stores for patching already-sized buffers (the
/// appending encoders below write sequentially; these write at a position).
inline void store_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline void store_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Appending little-endian helpers for block-assembled buffers.
inline void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void append_f64(std::vector<std::uint8_t>& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader; every primitive throws
/// sw::util::Error on a read past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }

  std::uint16_t u16() {
    const auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }

  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    }
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::span<const std::uint8_t> take(std::size_t n) {
    SW_REQUIRE(n <= bytes_.size() - pos_, "truncated frame");
    const auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace sw::serve::detail
