#include "serve/admission.h"

namespace sw::serve {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

bool AdmissionController::fits_locked(std::size_t words) const {
  if (options_.max_queued_requests > 0 &&
      queued_ >= options_.max_queued_requests) {
    return false;
  }
  if (options_.max_inflight_words > 0 && inflight_words_ > 0 &&
      inflight_words_ + words > options_.max_inflight_words) {
    return false;
  }
  return true;
}

void AdmissionController::admit(std::size_t words) {
  std::unique_lock<std::mutex> lock(mutex_);
  SW_REQUIRE(!closed_, "admission controller closed");
  if (!fits_locked(words)) {
    if (options_.policy == OverloadPolicy::kShed) {
      ++shed_;
      throw OverloadError(
          "request shed: admission budget exhausted (queued=" +
          std::to_string(queued_) +
          ", inflight_words=" + std::to_string(inflight_words_) + ")");
    }
    ++blocked_;
    capacity_freed_.wait(lock,
                         [&] { return closed_ || fits_locked(words); });
    SW_REQUIRE(!closed_, "admission controller closed while waiting");
  }
  ++queued_;
  inflight_words_ += words;
}

void AdmissionController::mark_dequeued() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queued_ > 0) --queued_;
  }
  capacity_freed_.notify_all();
}

void AdmissionController::release(std::size_t words) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_words_ -= (words <= inflight_words_) ? words : inflight_words_;
  }
  capacity_freed_.notify_all();
}

void AdmissionController::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  capacity_freed_.notify_all();
}

std::size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::size_t AdmissionController::inflight_words() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_words_;
}

std::uint64_t AdmissionController::shed_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

std::uint64_t AdmissionController::blocked_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocked_;
}

}  // namespace sw::serve
