// The one request type of the serving API.
//
// Historically EvaluatorService grew three submit entry points (packed
// layout, nested-batch layout, packed async); adding multi-stage programs
// would have doubled that. EvalRequest collapses the request shape into a
// single value: a packed word batch bound to *either* a single gate layout
// *or* a multi-stage ProgramSpec, plus an optional per-request precision
// hint, consumed by EvaluatorService::submit / submit_async. The legacy
// overloads survive as thin deprecated shims over this type.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/encoding.h"
#include "core/gate_design.h"
#include "obs/trace.h"
#include "wavesim/eval_program.h"
#include "wavesim/precision.h"

namespace sw::serve {

/// One evaluation request. Exactly one of `layout` / `program` must be
/// set; both are borrowed — submit() copies what it needs (the cache key
/// bytes on the fast path, the spec itself only on a cache miss) before it
/// returns, so the pointee need only outlive the submit call itself.
struct EvalRequest {
  /// Single-gate target: packed_bits is the row-major num_words x
  /// slot_count matrix of BatchEvaluator::evaluate_bits
  /// (slot = channel * num_inputs + input).
  const sw::core::GateLayout* layout = nullptr;
  /// Multi-stage target: packed_bits is the row-major num_words x
  /// primary_slot_count() matrix of EvalProgram::evaluate_bits (column =
  /// channel * num_primary_inputs + input); the result carries the last
  /// stage's decoded bits.
  const sw::wavesim::ProgramSpec* program = nullptr;
  std::vector<std::uint8_t> packed_bits;
  std::size_t num_words = 0;
  /// Per-request precision override; unset uses the service's configured
  /// precision. Distinct precisions cache as distinct plan entries.
  std::optional<sw::wavesim::Precision> precision;
  /// Carried through the service and returned (with the service's phase
  /// spans appended) in ResultBatch::trace. A transport that stamps its
  /// own spans first (wire decode) seeds it here; trace.track survives
  /// untouched, trace.id is overwritten with the service request id.
  sw::obs::TraceContext trace;
  /// When false (default) the service records the finished trace into its
  /// own TraceRecorder at settle. The event server sets true and records
  /// the trace itself, after appending wire-encode and write-queue spans.
  bool defer_trace_record = false;

  static EvalRequest for_layout(const sw::core::GateLayout& layout,
                                std::vector<std::uint8_t> packed_bits,
                                std::size_t num_words) {
    EvalRequest r;
    r.layout = &layout;
    r.packed_bits = std::move(packed_bits);
    r.num_words = num_words;
    return r;
  }

  static EvalRequest for_program(const sw::wavesim::ProgramSpec& program,
                                 std::vector<std::uint8_t> packed_bits,
                                 std::size_t num_words) {
    EvalRequest r;
    r.program = &program;
    r.packed_bits = std::move(packed_bits);
    r.num_words = num_words;
    return r;
  }

  /// Convenience: pack the nested per-channel batch shape of
  /// DataParallelGate::evaluate (`batch[word][channel][input]`) against a
  /// layout.
  static EvalRequest for_batch(
      const sw::core::GateLayout& layout,
      const std::vector<std::vector<sw::core::Bits>>& batch);
};

}  // namespace sw::serve
