#include "serve/eval_request.h"

#include "util/error.h"

namespace sw::serve {

EvalRequest EvalRequest::for_batch(
    const sw::core::GateLayout& layout,
    const std::vector<std::vector<sw::core::Bits>>& batch) {
  const std::size_t n = layout.spec.frequencies.size();
  const std::size_t m = layout.spec.num_inputs;
  std::vector<std::uint8_t> packed(batch.size() * n * m);
  for (std::size_t w = 0; w < batch.size(); ++w) {
    SW_REQUIRE(batch[w].size() == n,
               "each word needs one bit vector per channel");
    for (std::size_t ch = 0; ch < n; ++ch) {
      SW_REQUIRE(batch[w][ch].size() == m, "each channel needs m bits");
      for (std::size_t in = 0; in < m; ++in) {
        packed[w * n * m + ch * m + in] = batch[w][ch][in];
      }
    }
  }
  return for_layout(layout, std::move(packed), batch.size());
}

}  // namespace sw::serve
