// Request-latency percentiles for the serving layer.
//
// Serving dashboards need tail latency, not averages, and they need it
// cheaply enough to sit on every request's completion path. LatencyReservoir
// keeps a fixed-size ring of the most recent request latencies (overwriting
// the oldest once full, so the window tracks *current* behaviour rather
// than the process's lifetime) and computes nearest-rank percentiles on
// demand by copying the ring and partial-sorting the copy — snapshot cost
// is paid by the metrics reader, record cost is one store under a mutex.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace sw::serve {

/// Nearest-rank percentiles over the reservoir window, in seconds. `count`
/// is the total recorded (not the window size); percentiles, mean and max
/// are 0 until the first record. mean_s/max_s cover the same window as the
/// percentiles — max_s exists because a single catastrophic outlier hides
/// inside p99 of a 1024 window.
struct LatencySummary {
  std::uint64_t count = 0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double mean_s = 0.0;
  double max_s = 0.0;
};

class LatencyReservoir {
 public:
  /// `window` is the ring capacity; at least 1.
  explicit LatencyReservoir(std::size_t window = 1024);

  void record(double seconds);

  LatencySummary summary() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> ring_;
  std::size_t filled_ = 0;  ///< valid entries in ring_ (<= ring_.size())
  std::size_t next_ = 0;    ///< overwrite cursor
  std::uint64_t count_ = 0;
};

}  // namespace sw::serve
