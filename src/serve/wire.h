// Sharded-sweep wire format: a versioned binary encoding of packed
// evaluate_bits request/response matrices.
//
// A coordinator splits an exhaustive sweep into word-range shards and ships
// each shard to a worker process as one request frame; the worker replies
// with one response frame. Frames are self-describing and defensive: magic
// + version up front, explicit sizes, an FNV-1a checksum over the body, and
// a decoder that rejects truncated, oversized or corrupted input with
// sw::util::Error rather than reading garbage. Requests carry the GateSpec
// so the worker can design the layout locally; the canonical layout hash
// rides along so both processes can prove they derived the identical
// geometry before any bit is evaluated.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic "SWW1"
//        4     2  version (kWireVersion)
//        6     2  kind (1 = request, 2 = response)
//        8     8  layout_hash  (hash_layout of the gate geometry)
//       16     8  word_offset  (first word's index in the full sweep)
//       24     8  num_words
//       32     8  num_cols     (slot_count for requests, channels for
//                               responses)
//       40     8  spec_size    (bytes; > 0 iff kind == request; the spec
//                               block holds a GateSpec for v2, a program
//                               block for v3)
//       48     8  payload_size (bytes)
//       56     8  checksum     (chunked FNV-1a 64 over spec block + payload)
//       64     …  spec block, then payload
//
// Version history: v1 checksummed with byte-wise FNV-1a; v2 switched to
// the chunked variant (one multiply per 8 bytes) because on the socket
// transport the checksum sits on the per-word serving path and the
// byte-wise chain cost rivalled the SIMD evaluation itself. v3 (current
// maximum) carries a multi-stage ProgramSpec in the spec-block position
// instead of a GateSpec: a versioned, self-checksummed program block
// (stage GateSpecs plus the interconnect map) whose layout_hash field is
// hash_program. A frame is encoded v3 only when it actually carries a
// program; single-gate requests and all responses stay v2, so an upgraded
// coordinator interoperates with an old worker until the first program
// request. Decoders accept versions up to a caller-chosen maximum and
// reject newer frames with the *typed* UnsupportedVersionError so a
// transport can answer "I don't speak v3" instead of dropping the
// connection.
//
// The payload is the matrix bit-packed row-major: each row is
// ceil(num_cols / 8) bytes, bit i of byte b is column b * 8 + i, and the
// padding bits of the last byte of each row must be zero.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/gate_design.h"
#include "util/error.h"
#include "wavesim/eval_program.h"

namespace sw::serve {

inline constexpr std::uint32_t kWireMagic = 0x31575753u;  // "SWW1" on disk
inline constexpr std::uint16_t kWireVersion = 2;
/// Frames carrying a ProgramSpec instead of a GateSpec encode as v3.
inline constexpr std::uint16_t kWireVersionProgram = 3;
/// Newest version this tree can decode (decode_frame's default ceiling).
inline constexpr std::uint16_t kWireVersionMax = kWireVersionProgram;

/// Thrown by decode_frame for a structurally sound frame whose version is
/// newer than the decoder's ceiling — the one decode failure a peer can
/// negotiate around (fall back to v2) rather than treat as corruption.
class UnsupportedVersionError : public sw::util::Error {
 public:
  UnsupportedVersionError(std::uint16_t version, std::uint16_t max_version)
      : Error("unsupported wire version " + std::to_string(version) +
              " (this endpoint speaks up to " + std::to_string(max_version) +
              ")"),
        version(version) {}

  std::uint16_t version = 0;
};

enum class FrameKind : std::uint16_t {
  kRequest = 1,
  kResponse = 2,
};

/// One frame, held unpacked in memory: `matrix` is num_words * num_cols
/// bytes of 0/1 values (the evaluate_bits shape), bit-packing happens only
/// on the wire.
struct SweepFrame {
  FrameKind kind = FrameKind::kRequest;
  std::uint64_t layout_hash = 0;
  std::uint64_t word_offset = 0;
  std::uint64_t num_words = 0;
  std::uint64_t num_cols = 0;
  std::optional<sw::core::GateSpec> spec;  ///< v2 requests only
  /// v3 requests only: the multi-stage program to evaluate (layout_hash is
  /// then hash_program, num_cols its primary_slot_count()). A request
  /// carries exactly one of spec / program.
  std::optional<sw::wavesim::ProgramSpec> program;
  std::vector<std::uint8_t> matrix;
};

/// A frame to encode whose matrix (and spec) are borrowed rather than
/// owned: the zero-copy encode path of the socket transport, where the
/// matrix is a word-range window into a larger sweep buffer or a result
/// batch that must not be copied per request.
struct SweepFrameView {
  FrameKind kind = FrameKind::kRequest;
  std::uint64_t layout_hash = 0;
  std::uint64_t word_offset = 0;
  std::uint64_t num_words = 0;
  std::uint64_t num_cols = 0;
  const sw::core::GateSpec* spec = nullptr;  ///< v2 requests only
  const sw::wavesim::ProgramSpec* program = nullptr;  ///< v3 requests only
  std::span<const std::uint8_t> matrix;
};

/// Borrow an owned frame as a view (no copies).
SweepFrameView as_view(const SweepFrame& frame);

/// Build a request view for `num_words` rows of `matrix` starting at
/// `word_offset`; `layout_hash` is precomputed by the caller so a client
/// streaming many shards of one sweep hashes the layout once, not per
/// frame.
SweepFrameView make_request_view(const sw::core::GateSpec& spec,
                                 std::uint64_t layout_hash,
                                 std::uint64_t word_offset,
                                 std::uint64_t num_words,
                                 std::span<const std::uint8_t> matrix);

/// Build a v3 program-request view for `num_words` rows of `matrix`
/// (num_words x primary_slot_count) starting at `word_offset`;
/// `program_hash` is hash_program(program), precomputed by the caller for
/// the same once-per-sweep reason as make_request_view.
SweepFrameView make_program_request_view(
    const sw::wavesim::ProgramSpec& program, std::uint64_t program_hash,
    std::uint64_t word_offset, std::uint64_t num_words,
    std::span<const std::uint8_t> matrix);

/// Build the response view answering `request` with a borrowed output
/// matrix (num_words x num_channels).
SweepFrameView make_response_view(const SweepFrame& request,
                                  std::uint64_t num_channels,
                                  std::span<const std::uint8_t> matrix);

/// Build a request frame for `num_words` rows of `matrix` starting at
/// `word_offset` of the full sweep; derives num_cols, the spec and the
/// layout hash from `layout`.
SweepFrame make_request_frame(const sw::core::GateLayout& layout,
                              std::uint64_t word_offset,
                              std::uint64_t num_words,
                              std::vector<std::uint8_t> matrix);

/// Build a v3 program-request frame; validates the program and derives
/// num_cols (primary_slot_count) and the canonical program hash from it.
SweepFrame make_program_request_frame(const sw::wavesim::ProgramSpec& program,
                                      std::uint64_t word_offset,
                                      std::uint64_t num_words,
                                      std::vector<std::uint8_t> matrix);

/// Build the response frame answering `request` with the decoded output
/// matrix (num_words x num_channels).
SweepFrame make_response_frame(const SweepFrame& request,
                               std::uint64_t num_channels,
                               std::vector<std::uint8_t> matrix);

/// Serialise a frame. Throws sw::util::Error on inconsistent shapes (e.g.
/// matrix size vs num_words * num_cols, response carrying a spec).
std::vector<std::uint8_t> encode_frame(const SweepFrame& frame);

/// Append the serialised frame to `out` without intermediate buffers: the
/// matrix is bit-packed directly into the output and the checksum patched
/// in place. The zero-copy path the event server and pipelined clients
/// encode on; `encode_frame` is a resize-and-forward over this.
void encode_frame_into(const SweepFrameView& frame,
                       std::vector<std::uint8_t>& out);

/// Parse a frame, validating magic, version, kind, sizes, checksum and
/// payload padding; throws sw::util::Error on any violation (truncated
/// buffer, trailing bytes, corrupt body, nonzero padding bits …). A frame
/// whose version exceeds `max_version` throws UnsupportedVersionError
/// instead, so a worker pinned at v2 (max_version = kWireVersion) answers
/// program requests with a typed refusal rather than a corruption error.
SweepFrame decode_frame(std::span<const std::uint8_t> bytes,
                        std::uint16_t max_version = kWireVersionMax);

/// Whole-file helpers for the file/pipe transport of the examples.
void write_frame_file(const std::string& path, const SweepFrame& frame);
SweepFrame read_frame_file(const std::string& path);

}  // namespace sw::serve
