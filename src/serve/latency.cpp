#include "serve/latency.h"

#include <algorithm>
#include <cmath>

namespace sw::serve {

namespace {

/// Nearest-rank percentile of an unsorted sample (mutated in place):
/// element ceil(q * n) in the sorted order, 1-indexed. The rank is an
/// exact ceil — a `q * n + 0.999999` pseudo-ceil mis-ranks whenever the
/// product lands within 1e-6 above an integer, which large windows hit.
double percentile(std::vector<double>& sample, double q) {
  if (sample.empty()) return 0.0;
  const std::size_t n = sample.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  auto nth = sample.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(sample.begin(), nth, sample.end());
  return *nth;
}

}  // namespace

LatencyReservoir::LatencyReservoir(std::size_t window)
    : ring_(window == 0 ? 1 : window, 0.0) {}

void LatencyReservoir::record(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[next_] = seconds;
  next_ = (next_ + 1) % ring_.size();
  if (filled_ < ring_.size()) ++filled_;
  ++count_;
}

LatencySummary LatencyReservoir::summary() const {
  std::vector<double> sample;
  LatencySummary out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sample.assign(ring_.begin(),
                  ring_.begin() + static_cast<std::ptrdiff_t>(filled_));
    out.count = count_;
  }
  out.p50_s = percentile(sample, 0.50);
  out.p95_s = percentile(sample, 0.95);
  out.p99_s = percentile(sample, 0.99);
  if (!sample.empty()) {
    double sum = 0.0;
    double max = sample.front();
    for (const double v : sample) {
      sum += v;
      max = std::max(max, v);
    }
    out.mean_s = sum / static_cast<double>(sample.size());
    out.max_s = max;
  }
  return out;
}

}  // namespace sw::serve
