// Area / delay / energy cost models (paper Section V.B).
//
// The paper's accounting: excitation/detection ME cells are 10 nm x 50 nm
// and dominate delay and energy; area is waveguide real estate. The scalar
// reference implementation instantiates one single-frequency gate per
// channel; the data-parallel gate multiplexes all channels on one guide.
#pragma once

#include <cstddef>
#include <vector>

#include "core/gate_design.h"

namespace sw::cost {

/// Physical transducer (ME cell) model.
struct TransducerModel {
  double width = 10e-9;     ///< footprint along the guide [m]
  double length = 50e-9;    ///< footprint across the guide [m]
  double delay = 0.42e-9;   ///< excite/detect latency [s]
  double energy = 14.4e-18; ///< energy per operation [J] (aJ scale, ME cell)
};

/// Cost figures of one physical gate realisation.
struct GateCost {
  double length = 0.0;        ///< guide length [m]
  double area = 0.0;          ///< guide area [m^2]
  double delay = 0.0;         ///< input-to-output latency [s]
  double energy = 0.0;        ///< energy per (parallel) evaluation [J]
  std::size_t transducers = 0;
  std::size_t waveguides = 0;
};

/// Cost of a single in-line gate on a guide of the given width.
/// Delay = 2 transducer delays + slowest source-to-detector flight time;
/// energy = transducer count * per-op energy (propagation is free).
GateCost gate_cost(const sw::core::GateLayout& layout, double guide_width,
                   const TransducerModel& transducer,
                   const sw::disp::DispersionModel& model);

/// Parallel-vs-scalar comparison (the paper's Table in Section V.B).
struct Comparison {
  GateCost parallel;               ///< one n-channel in-line gate
  GateCost scalar_total;           ///< n single-channel gates, summed
  std::vector<GateCost> scalar_each;
  double area_ratio = 0.0;         ///< scalar / parallel (paper: 4.16x)
  double delay_ratio = 0.0;        ///< scalar / parallel (paper: ~1x)
  double energy_ratio = 0.0;       ///< scalar / parallel (paper: ~1x)
};

/// Build both implementations with the same designer and compare.
/// The scalar reference uses one gate per frequency with the same input
/// count and transducer geometry.
Comparison compare_parallel_vs_scalar(
    const sw::core::InlineGateDesigner& designer,
    const sw::core::GateSpec& parallel_spec, double guide_width,
    const TransducerModel& transducer);

}  // namespace sw::cost
