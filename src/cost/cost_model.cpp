#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace sw::cost {

GateCost gate_cost(const sw::core::GateLayout& layout, double guide_width,
                   const TransducerModel& transducer,
                   const sw::disp::DispersionModel& model) {
  SW_REQUIRE(guide_width > 0.0, "guide width must be positive");
  GateCost c;
  c.length = layout.length();
  c.area = c.length * guide_width;
  c.transducers = layout.transducer_count();
  c.waveguides = 1;
  c.energy = static_cast<double>(c.transducers) * transducer.energy;

  // Slowest flight time from any source to its channel's detector.
  double max_flight = 0.0;
  for (const auto& s : layout.sources) {
    const double f = layout.spec.frequencies[s.channel];
    const double vg = model.group_velocity(model.k_from_frequency(f));
    SW_REQUIRE(vg > 0.0, "non-positive group velocity");
    const double d = std::abs(layout.detectors[s.channel].x - s.x);
    max_flight = std::max(max_flight, d / vg);
  }
  c.delay = 2.0 * transducer.delay + max_flight;
  return c;
}

Comparison compare_parallel_vs_scalar(
    const sw::core::InlineGateDesigner& designer,
    const sw::core::GateSpec& parallel_spec, double guide_width,
    const TransducerModel& transducer) {
  Comparison cmp;

  const auto parallel_layout = designer.design(parallel_spec);
  cmp.parallel =
      gate_cost(parallel_layout, guide_width, transducer, designer.model());

  for (std::size_t i = 0; i < parallel_spec.frequencies.size(); ++i) {
    sw::core::GateSpec scalar = parallel_spec;
    scalar.frequencies = {parallel_spec.frequencies[i]};
    if (!parallel_spec.invert_output.empty()) {
      scalar.invert_output = {parallel_spec.invert_output[i]};
    }
    // Section V.B convention: the scalar reference keeps the parallel
    // design's source spacing for its channel so flight times (and thus
    // delay figures) remain identical; only the other channels' transducers
    // disappear.
    scalar.min_same_channel_spacing = parallel_layout.spacing[i];
    scalar.multiple_search = 0;
    const auto scalar_layout = designer.design(scalar);
    const auto cost =
        gate_cost(scalar_layout, guide_width, transducer, designer.model());
    cmp.scalar_each.push_back(cost);
    cmp.scalar_total.length += cost.length;
    cmp.scalar_total.area += cost.area;
    cmp.scalar_total.energy += cost.energy;
    cmp.scalar_total.transducers += cost.transducers;
    cmp.scalar_total.waveguides += 1;
    // The scalar gates run concurrently; total delay is the slowest one.
    cmp.scalar_total.delay = std::max(cmp.scalar_total.delay, cost.delay);
  }

  cmp.area_ratio = cmp.scalar_total.area / cmp.parallel.area;
  cmp.delay_ratio = cmp.scalar_total.delay / cmp.parallel.delay;
  cmp.energy_ratio = cmp.scalar_total.energy / cmp.parallel.energy;
  return cmp;
}

}  // namespace sw::cost
