#include "obs/histogram.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/error.h"

namespace sw::obs {

std::uint64_t HistogramSnapshot::cumulative(std::size_t bound_index) const {
  std::uint64_t total = 0;
  const std::size_t last = std::min(bound_index, counts.size() - 1);
  for (std::size_t i = 0; i <= last; ++i) total += counts[i];
  return total;
}

Histogram::Histogram(double first_bound, double growth,
                     std::size_t num_buckets) {
  SW_REQUIRE(first_bound > 0.0, "histogram first bound must be positive");
  SW_REQUIRE(growth > 1.0, "histogram growth must exceed 1");
  SW_REQUIRE(num_buckets >= 1, "histogram needs at least one finite bucket");
  bounds_.reserve(num_buckets);
  double bound = first_bound;
  for (std::size_t i = 0; i < num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= growth;
  }
  buckets_ = std::vector<std::atomic<std::uint64_t>>(num_buckets + 1);
}

Histogram::Histogram(Histogram&& other) noexcept
    : bounds_(std::move(other.bounds_)),
      buckets_(other.buckets_.size()) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_.store(other.sum_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
}

void Histogram::record(double value) {
  // Prometheus `le` is an inclusive upper bound: the first bound >= value.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.counts.resize(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.sum = sum_.load(std::memory_order_relaxed);
  out.count = count_.load(std::memory_order_relaxed);
  return out;
}

void append_histogram(std::string& out, const char* name,
                      const HistogramSnapshot& snapshot) {
  char buf[192];
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snapshot.bounds.size(); ++i) {
    cumulative += snapshot.counts[i];
    std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%.9g\"} %" PRIu64 "\n",
                  name, snapshot.bounds[i], cumulative);
    out += buf;
  }
  if (!snapshot.counts.empty()) cumulative += snapshot.counts.back();
  std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                name, cumulative);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%s_sum %.9g\n", name, snapshot.sum);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n", name,
                snapshot.count);
  out += buf;
}

}  // namespace sw::obs
