// Per-request tracing: fixed-slot span recording, a bounded trace ring,
// and Chrome trace-event / Perfetto JSON export.
//
// Every request carries a TraceContext by value through the serving
// layers. Each layer stamps the phases it owns — the transport stamps wire
// decode/encode and socket write-queue time, the service stamps admission
// wait, plan lookup/build, queue wait and kernel execution, the sweep
// coordinator stamps per-shard assign/send/wait/retire (and re-shard
// events). A span is two steady_clock reads into a fixed-size slot array:
// no allocation, no locking, nothing shared until the request settles,
// when the whole context is copied into a bounded mutex ring
// (TraceRecorder) that the trace endpoint snapshots. trace_json() renders
// a snapshot in the Chrome trace-event format, so a dump loads directly
// into Perfetto or chrome://tracing with one named track per request.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sw::obs {

/// The instrumented phases. Names (phase_name) are stable identifiers:
/// they appear in trace JSON, the slow-request log and smoke-test greps.
enum class Phase : std::uint8_t {
  // Service request phases.
  kAdmission = 0,  ///< waiting for admission control to admit the words
  kPlanLookup,     ///< plan-cache fast-path lookup on the submit thread
  kQueue,          ///< admitted, waiting for a worker to pick the request up
  kPlanBuild,      ///< cache miss: building the plan / program on the worker
  kKernel,         ///< evaluate_bits: the SIMD kernel pass
  kStage,          ///< one program stage's share of the kernel pass (arg = stage)
  // Transport phases.
  kWireDecode,     ///< parsing + decoding the request's wire frame
  kWireEncode,     ///< encoding the response frame into the write buffer
  kWriteQueue,     ///< response sitting in the socket write queue
  // Sweep-coordinator shard phases (arg = worker index).
  kShardAssign,    ///< shard acquired for a worker
  kShardSend,      ///< request frame written to the worker socket
  kShardWait,      ///< in flight, waiting for the worker's reply
  kShardRetire,    ///< reply received, decoded and merged
  kReshard,        ///< shard duplicated away from an overdue worker
};

inline constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::kReshard) + 1;

std::string_view phase_name(Phase phase);

struct Span {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  Phase phase = Phase::kAdmission;
  /// Phase-specific argument: stage index for kStage, worker index for the
  /// shard phases; 0 when unused.
  std::uint32_t arg = 0;
};

/// Monotonic nanoseconds (steady_clock) — the one clock every span uses,
/// so spans from different threads of one process order correctly.
std::uint64_t now_ns();

/// Fixed-slot span recorder carried by value with the request. Slots
/// exhausted past kMaxSpans are dropped silently (the request still
/// serves; its trace is merely truncated) and counted in `truncated`.
class TraceContext {
 public:
  static constexpr std::size_t kMaxSpans = 24;
  /// Sentinel slot returned by begin() once the context is full.
  static constexpr std::size_t kNoSlot = kMaxSpans;

  /// Request id (service) or shard index (coordinator): the trace-JSON
  /// event id and the slow-log key.
  std::uint64_t id = 0;
  /// Track the events render on (Perfetto "tid"): connection id, worker
  /// index — whatever groups related requests into one timeline row.
  std::uint64_t track = 0;

  /// Open a span now; returns its slot for end(), or kNoSlot when full.
  std::size_t begin(Phase phase, std::uint32_t arg = 0);
  /// Close the span opened at `slot` (ignores kNoSlot).
  void end(std::size_t slot);
  /// Record a pre-measured span (used for accumulated per-stage time and
  /// instantaneous events, where start==end is legal).
  void add(Phase phase, std::uint64_t start_ns, std::uint64_t end_ns,
           std::uint32_t arg = 0);

  std::size_t size() const { return used_; }
  const Span& span(std::size_t i) const { return spans_[i]; }
  bool truncated() const { return truncated_; }

  /// Wall span of the whole trace: latest end over all closed spans minus
  /// earliest start (0 when empty). What the slow-request log thresholds.
  std::uint64_t total_ns() const;
  /// Sum of the closed spans matching `phase` (for tests and the slow log).
  std::uint64_t phase_ns(Phase phase) const;

 private:
  std::array<Span, kMaxSpans> spans_{};
  std::size_t used_ = 0;
  bool truncated_ = false;
};

/// Bounded mutex ring of settled traces. Record cost is one lock plus a
/// ~600-byte copy — small against the request it describes; the ring keeps
/// the most recent `capacity` traces so the trace endpoint always answers
/// with current behaviour.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 256);

  /// Slow-request logging: any recorded trace whose total span meets or
  /// exceeds `seconds` prints a per-phase breakdown to stderr. <= 0
  /// disables (the default).
  void set_slow_threshold(double seconds);

  void record(const TraceContext& trace);

  /// Most-recent-first ring copy.
  std::vector<TraceContext> snapshot() const;

  std::uint64_t recorded_total() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceContext> ring_;
  std::size_t filled_ = 0;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
  double slow_threshold_s_ = 0.0;
};

/// Render traces as one Chrome trace-event JSON document:
/// `{"traceEvents":[…]}` with complete ("X") events named by phase,
/// timestamps in microseconds, pid = this process, tid = trace.track, and
/// a process_name metadata record carrying `process_name`. Loads directly
/// in Perfetto / chrome://tracing.
std::string trace_json(const std::vector<TraceContext>& traces,
                       std::string_view process_name);

/// Splice several trace_json documents (e.g. coordinator + each worker's
/// fetched dump) into one: their traceEvents arrays are concatenated.
/// Documents with no events contribute nothing; the result is a valid
/// document even when every input is empty.
std::string merge_trace_json(const std::vector<std::string>& documents);

}  // namespace sw::obs
