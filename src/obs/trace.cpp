#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace sw::obs {

namespace {

constexpr std::string_view kPhaseNames[kNumPhases] = {
    "admission",    "plan_lookup", "queue",       "plan_build", "kernel",
    "stage",        "wire_decode", "wire_encode", "write_queue",
    "shard_assign", "shard_send",  "shard_wait",  "shard_retire", "reshard",
};

}  // namespace

std::string_view phase_name(Phase phase) {
  const auto idx = static_cast<std::size_t>(phase);
  return idx < kNumPhases ? kPhaseNames[idx] : std::string_view("unknown");
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t TraceContext::begin(Phase phase, std::uint32_t arg) {
  if (used_ >= kMaxSpans) {
    truncated_ = true;
    return kNoSlot;
  }
  const std::size_t slot = used_++;
  spans_[slot].phase = phase;
  spans_[slot].arg = arg;
  spans_[slot].start_ns = now_ns();
  spans_[slot].end_ns = 0;
  return slot;
}

void TraceContext::end(std::size_t slot) {
  if (slot >= kMaxSpans) return;
  spans_[slot].end_ns = now_ns();
}

void TraceContext::add(Phase phase, std::uint64_t start_ns,
                       std::uint64_t end_ns, std::uint32_t arg) {
  if (used_ >= kMaxSpans) {
    truncated_ = true;
    return;
  }
  spans_[used_++] = Span{start_ns, end_ns, phase, arg};
}

std::uint64_t TraceContext::total_ns() const {
  std::uint64_t first = UINT64_MAX;
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < used_; ++i) {
    if (spans_[i].end_ns == 0) continue;  // still open: excluded
    first = std::min(first, spans_[i].start_ns);
    last = std::max(last, spans_[i].end_ns);
  }
  return last > first ? last - first : 0;
}

std::uint64_t TraceContext::phase_ns(Phase phase) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < used_; ++i) {
    if (spans_[i].phase == phase && spans_[i].end_ns >= spans_[i].start_ns) {
      total += spans_[i].end_ns - spans_[i].start_ns;
    }
  }
  return total;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void TraceRecorder::set_slow_threshold(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  slow_threshold_s_ = seconds;
}

void TraceRecorder::record(const TraceContext& trace) {
  double threshold;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_[next_] = trace;
    next_ = (next_ + 1) % ring_.size();
    if (filled_ < ring_.size()) ++filled_;
    ++recorded_;
    threshold = slow_threshold_s_;
  }
  // Log outside the lock: stderr is slow and the breakdown is per-trace
  // local data.
  const double total_s = static_cast<double>(trace.total_ns()) * 1e-9;
  if (threshold > 0.0 && total_s >= threshold) {
    std::string breakdown;
    char buf[96];
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const Span& s = trace.span(i);
      if (s.end_ns < s.start_ns) continue;
      const double ms = static_cast<double>(s.end_ns - s.start_ns) * 1e-6;
      const std::string_view name = phase_name(s.phase);
      std::snprintf(buf, sizeof(buf), " %.*s=%.3fms",
                    static_cast<int>(name.size()), name.data(), ms);
      breakdown += buf;
    }
    std::fprintf(stderr,
                 "[sw::obs] slow request id=%" PRIu64 " track=%" PRIu64
                 " total=%.3fms:%s%s\n",
                 trace.id, trace.track, total_s * 1e3, breakdown.c_str(),
                 trace.truncated() ? " (truncated)" : "");
  }
}

std::vector<TraceContext> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceContext> out;
  out.reserve(filled_);
  // Most recent first: walk backwards from the overwrite cursor.
  for (std::size_t i = 0; i < filled_; ++i) {
    const std::size_t idx = (next_ + ring_.size() - 1 - i) % ring_.size();
    out.push_back(ring_[idx]);
  }
  return out;
}

std::uint64_t TraceRecorder::recorded_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::string trace_json(const std::vector<TraceContext>& traces,
                       std::string_view process_name) {
  const int pid = static_cast<int>(::getpid());
  std::string out;
  out.reserve(256 + traces.size() * TraceContext::kMaxSpans * 96);
  out += "{\"traceEvents\":[\n";
  char buf[256];
  // Process-name metadata so Perfetto labels the track group; pid keys the
  // merge of several processes' dumps into distinct track groups.
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                "\"args\":{\"name\":\"%.*s\"}}",
                pid, static_cast<int>(process_name.size()),
                process_name.data());
  out += buf;
  for (const TraceContext& trace : traces) {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const Span& s = trace.span(i);
      if (s.end_ns < s.start_ns) continue;  // never closed: skip
      const std::string_view name = phase_name(s.phase);
      // Chrome trace-event "X" (complete) event; timestamps in µs. A
      // zero-duration event (re-shard) still renders as a slice.
      std::snprintf(
          buf, sizeof(buf),
          ",\n{\"ph\":\"X\",\"pid\":%d,\"tid\":%" PRIu64
          ",\"ts\":%.3f,\"dur\":%.3f,\"name\":\"%.*s\","
          "\"args\":{\"id\":%" PRIu64 ",\"arg\":%" PRIu32 "}}",
          pid, trace.track, static_cast<double>(s.start_ns) * 1e-3,
          static_cast<double>(s.end_ns - s.start_ns) * 1e-3,
          static_cast<int>(name.size()), name.data(), trace.id, s.arg);
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

std::string merge_trace_json(const std::vector<std::string>& documents) {
  std::string merged = "{\"traceEvents\":[\n";
  bool first = true;
  for (const std::string& doc : documents) {
    // The emitter's shape is fixed (this file owns it), so splicing on the
    // first '[' and last ']' is exact, not heuristic.
    const std::size_t open = doc.find('[');
    const std::size_t close = doc.rfind(']');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open + 1) {
      continue;
    }
    std::string inner = doc.substr(open + 1, close - open - 1);
    const std::size_t begin = inner.find_first_not_of(" \n\r\t");
    const std::size_t end = inner.find_last_not_of(" \n\r\t");
    if (begin == std::string::npos) continue;
    if (!first) merged += ",\n";
    merged.append(inner, begin, end - begin + 1);
    first = false;
  }
  merged += "\n]}\n";
  return merged;
}

}  // namespace sw::obs
