// Log-bucketed histograms for the observability subsystem.
//
// A serving system needs distributions, not just point percentiles: the
// latency reservoir answers "what is p99 right now", but only a histogram
// answers "how many requests landed between 100µs and 1ms since start" —
// the shape a Prometheus scraper can rate(), aggregate across hosts, and
// alert on. obs::Histogram keeps a fixed ladder of log-spaced bucket
// bounds chosen at construction and counts records with one relaxed
// atomic increment per observation — no locks, no allocation, safe to hit
// from every worker thread on the request hot path. Snapshots copy the
// counters; rendering emits the Prometheus exposition triple
// (`_bucket{le="…"}` cumulative counts, `_sum`, `_count`).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sw::obs {

/// A point-in-time copy of a histogram: per-bucket counts (one extra
/// trailing bucket for +Inf), the finite upper bounds, and the sum/count
/// aggregates. Copyable value type; what ServiceStats carries and the
/// metrics renderer consumes.
struct HistogramSnapshot {
  std::vector<double> bounds;        ///< finite upper bounds, ascending
  std::vector<std::uint64_t> counts; ///< bounds.size() + 1 (last = +Inf)
  double sum = 0.0;
  std::uint64_t count = 0;

  /// Count of observations <= `bound_index`'s bound, Prometheus-style
  /// cumulative (bound_index == bounds.size() gives the total).
  std::uint64_t cumulative(std::size_t bound_index) const;
  /// Mean of all observations (0 before the first record).
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

class Histogram {
 public:
  /// Buckets at first_bound * growth^i for i in [0, num_buckets), plus the
  /// implicit +Inf bucket. Requires first_bound > 0, growth > 1,
  /// num_buckets >= 1.
  Histogram(double first_bound, double growth, std::size_t num_buckets);

  /// The standard latency ladder: 1µs .. ~16.8s in 25 doubling buckets —
  /// wide enough for admission stalls, fine enough to see a kernel pass.
  static Histogram for_seconds() { return Histogram(1e-6, 2.0, 25); }
  /// The standard size ladder for batch word counts: 1 .. 4^11 (~4.2M
  /// words) in quadrupling buckets.
  static Histogram for_words() { return Histogram(1.0, 4.0, 12); }

  Histogram(Histogram&& other) noexcept;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// One relaxed atomic increment (bucket found by branch-free-ish binary
  /// search over ~25 bounds) plus sum/count updates. Negative values clamp
  /// into the first bucket.
  void record(double value);

  HistogramSnapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 counters; the last is the +Inf bucket.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  /// Accumulated via compare-exchange: std::atomic<double>::fetch_add is
  /// C++20 but not yet universally lock-free; the CAS loop is equivalent
  /// and contention here is bounded by the request rate.
  std::atomic<double> sum_{0.0};
};

/// Append the Prometheus exposition of one histogram under `name`:
/// `name_bucket{le="…"}` cumulative lines (finite bounds then `+Inf`),
/// `name_sum`, `name_count`. `le` values are formatted with %.9g, so
/// golden tests can assert exact lines.
void append_histogram(std::string& out, const char* name,
                      const HistogramSnapshot& snapshot);

}  // namespace sw::obs
