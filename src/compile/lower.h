// Lowering: a synthesized majority chain -> a portable multi-stage
// ProgramSpec the wavesim/serve layers can freeze and evaluate.
//
// Each MajNode becomes one 3-input StageSpec that copies the base spec's
// physical knobs (frequencies, transducer geometry, spacing policy) and
// realises the node's free complements in the stage interconnect: fanin
// negations become SlotSource::negated (a drive-phase flip), the node's
// output inversion becomes per-channel half-integer ports via
// GateSpec::invert_output, and constant fanins become pinned kZero/kOne
// transducers. The circuit's primary input i on channel ch reads primary
// column ch * num_inputs + i — the ProgramSpec packing.
#pragma once

#include "compile/synth.h"
#include "core/gate_design.h"
#include "wavesim/eval_program.h"

namespace sw::compile {

/// Lower `circuit` to a ProgramSpec over `base`'s channels and geometry.
/// `base.num_inputs` and `base.invert_output` are ignored (every stage is a
/// 3-input majority; inversions come from the circuit). Requires at least
/// one channel. The result validates and its last stage computes
/// `circuit.function` on every channel.
sw::wavesim::ProgramSpec lower_to_program(const CompiledCircuit& circuit,
                                          const sw::core::GateSpec& base);

}  // namespace sw::compile
