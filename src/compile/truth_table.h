// Truth tables of up to 4 inputs, and their NPN canonical forms.
//
// The synthesis layer (synth.h) searches for majority-gate cascades
// realising arbitrary Boolean functions. A function of n <= 4 inputs fits
// in one 16-bit mask — bit `a` of the mask is f(a) with assignment bit i of
// `a` being input i — so function algebra (cofactors, composition with the
// bitwise majority MAJ(x,y,z) = (x&y)|(x&z)|(y&z) over masks) is a handful
// of integer ops, and exhaustive equivalence checks over all 2^(2^n)
// functions are feasible in tests.
//
// Two functions that differ only by input Negation, input Permutation and
// output Negation (NPN) compile to the same circuit shape: the spin-wave
// fabric gives every negation away for free (drive-phase flip on inputs,
// half-wavelength output port on outputs), and permuting inputs just
// relabels fanins. npn_canonicalize therefore maps a table to the
// lexicographically-least representative of its NPN class plus the
// transform that recovers the original, and the synthesizer memoises
// circuits per representative — 222 classes cover all 65536 functions of
// n = 4 instead of one search each.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sw::compile {

/// Most inputs a single table supports (the exhaustive-synthesis regime).
inline constexpr std::size_t kMaxTableInputs = 4;

class TruthTable {
 public:
  TruthTable() = default;

  /// `bits` holds f(a) at bit position a for every assignment a in
  /// [0, 2^num_inputs); bits above 2^num_inputs must be zero. Throws on
  /// num_inputs outside [1, kMaxTableInputs] or stray high bits.
  TruthTable(std::size_t num_inputs, std::uint16_t bits);

  /// Parse "11101000"-style strings, most significant assignment first
  /// (the conventional truth-table column read top-to-bottom for
  /// assignments 2^n-1 .. 0). Length must be a power of two in [2, 16].
  static TruthTable from_string(const std::string& column);

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t size() const { return std::size_t{1} << num_inputs_; }
  std::uint16_t bits() const { return bits_; }
  /// The mask with every assignment bit set for this arity.
  std::uint16_t full_mask() const {
    return static_cast<std::uint16_t>((1u << size()) - 1u);
  }

  bool value(std::size_t assignment) const {
    return (bits_ >> assignment) & 1u;
  }

  bool is_constant() const { return bits_ == 0 || bits_ == full_mask(); }
  /// True when `input` never changes the output (the support-reduction
  /// test: both cofactors equal).
  bool depends_on(std::size_t input) const;

  TruthTable complement() const {
    return TruthTable(num_inputs_,
                      static_cast<std::uint16_t>(~bits_ & full_mask()));
  }
  /// f with `input` complemented.
  TruthTable negate_input(std::size_t input) const;
  /// f with inputs relabelled: new input i reads old input perm[i].
  TruthTable permute(const std::array<std::uint8_t, kMaxTableInputs>& perm)
      const;
  /// Cofactor f|_{input = value}, dropping the bound input (arity n - 1;
  /// requires n >= 2).
  TruthTable cofactor(std::size_t input, bool value) const;

  friend bool operator==(const TruthTable&, const TruthTable&) = default;

 private:
  std::size_t num_inputs_ = 0;
  std::uint16_t bits_ = 0;
};

/// One NPN transform: reading direction is "the representative's input i is
/// the original's input perm[i], complemented when bit perm[i] of
/// input_negations is set; the representative's output is complemented when
/// output_negated". apply() runs it forward (original -> representative).
struct NpnTransform {
  std::array<std::uint8_t, kMaxTableInputs> perm{0, 1, 2, 3};
  std::uint8_t input_negations = 0;  ///< bit mask over *original* inputs
  bool output_negated = false;

  TruthTable apply(const TruthTable& t) const;
};

struct NpnClass {
  TruthTable representative;  ///< lexicographic minimum of the class
  NpnTransform transform;     ///< maps the original onto the representative
};

/// Canonicalise by brute force over all n! x 2^n x 2 transforms (<= 768 at
/// n = 4): minimal representative bits win, ties broken by transform
/// enumeration order so the result is deterministic.
NpnClass npn_canonicalize(const TruthTable& t);

}  // namespace sw::compile
