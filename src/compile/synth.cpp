#include "compile/synth.h"

#include <algorithm>
#include <bitset>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <utility>

#include "util/error.h"

namespace sw::compile {

namespace {

std::uint32_t memo_key(const TruthTable& t) {
  return (static_cast<std::uint32_t>(t.num_inputs()) << 16) | t.bits();
}

/// Mask of the projection function "input i" in an arity-n space.
std::uint16_t input_mask(std::size_t n, std::size_t input) {
  std::uint16_t m = 0;
  for (std::size_t a = 0; a < (std::size_t{1} << n); ++a) {
    if ((a >> input) & 1u) m |= static_cast<std::uint16_t>(1u << a);
  }
  return m;
}

/// Bitwise majority over truth-table masks: bit a of the result is the
/// majority vote of bit a of the three operands.
std::uint16_t maj3(std::uint16_t a, std::uint16_t b, std::uint16_t c) {
  return static_cast<std::uint16_t>((a & b) | (a & c) | (b & c));
}

}  // namespace

bool CompiledCircuit::eval(std::size_t assignment) const {
  SW_REQUIRE(!nodes.empty(), "circuit has no nodes");
  std::vector<std::uint8_t> values(nodes.size());
  const auto lit_value = [&](const Literal& l) -> bool {
    bool v = false;
    switch (l.kind) {
      case Literal::Kind::kConstZero:
        v = false;
        break;
      case Literal::Kind::kInput:
        v = ((assignment >> l.index) & 1u) != 0;
        break;
      case Literal::Kind::kNode:
        v = values[l.index] != 0;
        break;
    }
    return v != l.negated;
  };
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const MajNode& node = nodes[i];
    const int ones = (lit_value(node.in[0]) ? 1 : 0) +
                     (lit_value(node.in[1]) ? 1 : 0) +
                     (lit_value(node.in[2]) ? 1 : 0);
    bool out = ones >= 2;
    if (node.invert_output) out = !out;
    values[i] = static_cast<std::uint8_t>(out);
  }
  return values.back() != 0;
}

TruthTable CompiledCircuit::table() const {
  std::uint16_t bits = 0;
  for (std::size_t a = 0; a < (std::size_t{1} << num_inputs); ++a) {
    if (eval(a)) bits |= static_cast<std::uint16_t>(1u << a);
  }
  return TruthTable(num_inputs, bits);
}

std::size_t circuit_depth(const CompiledCircuit& circuit) {
  std::vector<std::size_t> depth(circuit.nodes.size(), 0);
  for (std::size_t i = 0; i < circuit.nodes.size(); ++i) {
    std::size_t d = 0;
    for (const Literal& l : circuit.nodes[i].in) {
      if (l.kind == Literal::Kind::kNode) d = std::max(d, depth[l.index]);
    }
    depth[i] = d + 1;
  }
  return depth.empty() ? 0 : depth.back();
}

CompiledCircuit Synthesizer::compile(const TruthTable& t) {
  ++stats_.requests;

  CompiledCircuit c;
  if (t.is_constant()) {
    // MAJ(k, k, k) = k: one gate whose drives are pinned transducers.
    const Literal k = t.bits() == 0 ? const_zero() : const_one();
    MajNode node;
    node.in = {k, k, k};
    c.num_inputs = t.num_inputs();
    c.nodes.push_back(node);
  } else {
    // Support reduction: drop inputs the function does not depend on, so
    // the NPN memo never splits one class across padded arities.
    std::vector<std::uint32_t> essential;
    for (std::size_t i = 0; i < t.num_inputs(); ++i) {
      if (t.depends_on(i)) essential.push_back(static_cast<std::uint32_t>(i));
    }
    TruthTable reduced = t;
    if (essential.size() < t.num_inputs()) {
      std::uint16_t bits = 0;
      for (std::size_t a = 0; a < (std::size_t{1} << essential.size()); ++a) {
        std::size_t full = 0;
        for (std::size_t i = 0; i < essential.size(); ++i) {
          full |= ((a >> i) & 1u) << essential[i];
        }
        if (t.value(full)) bits |= static_cast<std::uint16_t>(1u << a);
      }
      reduced = TruthTable(essential.size(), bits);
    }
    c = compile_reduced(reduced);
    if (essential.size() < t.num_inputs()) {
      for (MajNode& node : c.nodes) {
        for (Literal& lit : node.in) {
          if (lit.kind == Literal::Kind::kInput) {
            lit.index = essential[lit.index];
          }
        }
      }
      c.num_inputs = t.num_inputs();
    }
  }

  c.function = t;
  c.depth = circuit_depth(c);
  SW_REQUIRE(c.table() == t, "synthesized circuit failed verification");
  return c;
}

CompiledCircuit Synthesizer::compile_reduced(const TruthTable& t) {
  if (t.num_inputs() == 1) {
    // Buffer / NOT: MAJ(x, 0, 1) = x, with the complement on the fanin.
    CompiledCircuit c;
    c.num_inputs = 1;
    MajNode node;
    node.in = {input_lit(0, /*negated=*/t.bits() == 0b01), const_zero(),
               const_one()};
    c.nodes.push_back(node);
    return c;
  }

  const NpnClass cls = npn_canonicalize(t);
  CompiledCircuit c = compile_canonical(cls.representative);
  // Undo the transform: the representative's input i is the original's
  // input perm[i] (complemented per the mask), and an output complement
  // folds into the last node's free output inversion.
  for (MajNode& node : c.nodes) {
    for (Literal& lit : node.in) {
      if (lit.kind == Literal::Kind::kInput) {
        const std::uint32_t orig = cls.transform.perm[lit.index];
        lit.negated ^= ((cls.transform.input_negations >> orig) & 1u) != 0;
        lit.index = orig;
      }
    }
  }
  if (cls.transform.output_negated) {
    c.nodes.back().invert_output = !c.nodes.back().invert_output;
  }
  c.num_inputs = t.num_inputs();
  return c;
}

CompiledCircuit Synthesizer::compile_canonical(const TruthTable& rep) {
  const std::uint32_t key = memo_key(rep);
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  CompiledCircuit c;
  if (exact_search(rep, c)) {
    ++stats_.exact;
  } else {
    c = shannon(rep);
    ++stats_.decomposed;
  }
  c.function = rep;
  c.depth = circuit_depth(c);
  SW_REQUIRE(c.table() == rep, "canonical circuit failed verification");
  memo_.emplace(key, c);
  return c;
}

bool Synthesizer::exact_search(const TruthTable& rep,
                               CompiledCircuit& out) const {
  const std::size_t n = rep.num_inputs();
  const std::uint16_t full = rep.full_mask();
  const std::uint16_t target = rep.bits();

  // Signal list: index 0 is constant zero, 1..n the inputs, then candidate
  // nodes as the DFS stacks them. `seen` marks the function of every live
  // signal so a candidate recomputing one (or its free complement) prunes.
  std::vector<std::uint16_t> funcs;
  std::vector<std::uint8_t> depths;
  funcs.reserve(1 + n + options_.max_exact_gates);
  depths.reserve(funcs.capacity());
  funcs.push_back(0);
  depths.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    funcs.push_back(input_mask(n, i));
    depths.push_back(0);
  }
  auto seen = std::make_unique<std::bitset<65536>>();
  for (const std::uint16_t f : funcs) seen->set(f);

  const auto make_lit = [n](std::size_t signal, bool neg) -> Literal {
    if (signal == 0) return neg ? const_one() : const_zero();
    if (signal <= n) {
      return input_lit(static_cast<std::uint32_t>(signal - 1), neg);
    }
    return node_lit(static_cast<std::uint32_t>(signal - 1 - n), neg);
  };

  std::vector<MajNode> nodes;
  bool found = false;
  std::size_t best_depth = std::numeric_limits<std::size_t>::max();

  // Iterative deepening: the first gate count with any solution is the
  // minimum; within it the chain with the shallowest output wins (depth is
  // the physical latency of the cascade). Branches are deduplicated by the
  // function a candidate computes — sound because a chain's continuation
  // depends only on the set of available functions, and complements are
  // free at every fanin.
  std::function<void(std::size_t)> dfs = [&](std::size_t remaining) {
    const std::size_t s = funcs.size();
    auto tried = std::make_unique<std::bitset<65536>>();
    for (std::size_t i = 0; i + 2 < s; ++i) {
      for (std::size_t j = i + 1; j + 1 < s; ++j) {
        for (std::size_t k = j + 1; k < s; ++k) {
          for (unsigned pol = 0; pol < 8; ++pol) {
            const std::uint16_t fa =
                (pol & 1u) ? static_cast<std::uint16_t>(~funcs[i] & full)
                           : funcs[i];
            const std::uint16_t fb =
                (pol & 2u) ? static_cast<std::uint16_t>(~funcs[j] & full)
                           : funcs[j];
            const std::uint16_t fc =
                (pol & 4u) ? static_cast<std::uint16_t>(~funcs[k] & full)
                           : funcs[k];
            const std::uint16_t m = maj3(fa, fb, fc);
            const std::uint16_t mc = static_cast<std::uint16_t>(~m & full);
            if (seen->test(m) || seen->test(mc)) continue;
            if (tried->test(m) || tried->test(mc)) continue;
            tried->set(m);

            MajNode node;
            node.in = {make_lit(i, pol & 1u), make_lit(j, (pol & 2u) != 0),
                       make_lit(k, (pol & 4u) != 0)};
            const std::size_t d =
                1 + std::max({depths[i], depths[j], depths[k]});
            if (m == target || mc == target) {
              node.invert_output = mc == target;
              if (!found || d < best_depth) {
                nodes.push_back(node);
                out.num_inputs = n;
                out.nodes = nodes;
                nodes.pop_back();
                best_depth = d;
                found = true;
              }
              continue;
            }
            if (remaining == 1) continue;
            nodes.push_back(node);
            funcs.push_back(m);
            depths.push_back(static_cast<std::uint8_t>(d));
            seen->set(m);
            dfs(remaining - 1);
            seen->reset(m);
            depths.pop_back();
            funcs.pop_back();
            nodes.pop_back();
          }
        }
      }
    }
  };

  for (std::size_t r = 1; r <= options_.max_exact_gates; ++r) {
    found = false;
    best_depth = std::numeric_limits<std::size_t>::max();
    dfs(r);
    if (found) return true;
  }
  return false;
}

CompiledCircuit Synthesizer::shannon(const TruthTable& rep) {
  const std::size_t n = rep.num_inputs();
  SW_REQUIRE(n >= 2, "Shannon decomposition needs arity >= 2");

  // Split on the variable whose cofactors synthesize cheapest: the
  // cofactors are one arity smaller and recurse through the NPN memo, so
  // probing every candidate is a handful of memoised lookups.
  std::size_t best_var = 0;
  std::size_t best_cost = std::numeric_limits<std::size_t>::max();
  CompiledCircuit f0, f1;
  for (std::size_t v = 0; v < n; ++v) {
    CompiledCircuit c0 = compile(rep.cofactor(v, false));
    CompiledCircuit c1 = compile(rep.cofactor(v, true));
    const std::size_t cost = c0.nodes.size() + c1.nodes.size();
    if (cost < best_cost) {
      best_cost = cost;
      best_var = v;
      f0 = std::move(c0);
      f1 = std::move(c1);
    }
  }

  // MUX(x, f1, f0) = OR(AND(x, f1), AND(!x, f0)) — three majority nodes
  // with constant fanins, appended after both cofactor chains.
  CompiledCircuit c;
  c.num_inputs = n;
  const auto remap_input = [&](std::uint32_t i) -> std::uint32_t {
    return i < best_var ? i : i + 1;
  };
  const auto append = [&](const CompiledCircuit& sub) -> Literal {
    const std::uint32_t base = static_cast<std::uint32_t>(c.nodes.size());
    for (const MajNode& node : sub.nodes) {
      MajNode copy = node;
      for (Literal& lit : copy.in) {
        if (lit.kind == Literal::Kind::kInput) {
          lit.index = remap_input(lit.index);
        } else if (lit.kind == Literal::Kind::kNode) {
          lit.index += base;
        }
      }
      c.nodes.push_back(copy);
    }
    return node_lit(base + static_cast<std::uint32_t>(sub.nodes.size()) - 1);
  };

  const Literal o0 = append(f0);
  const Literal o1 = append(f1);
  MajNode and1;
  and1.in = {input_lit(static_cast<std::uint32_t>(best_var)), o1,
             const_zero()};
  c.nodes.push_back(and1);
  const Literal l1 = node_lit(static_cast<std::uint32_t>(c.nodes.size()) - 1);
  MajNode and0;
  and0.in = {input_lit(static_cast<std::uint32_t>(best_var), true), o0,
             const_zero()};
  c.nodes.push_back(and0);
  const Literal l0 = node_lit(static_cast<std::uint32_t>(c.nodes.size()) - 1);
  MajNode orn;
  orn.in = {l1, l0, const_one()};
  c.nodes.push_back(orn);
  return c;
}

}  // namespace sw::compile
