#include "compile/truth_table.h"

#include <algorithm>

#include "util/error.h"

namespace sw::compile {

TruthTable::TruthTable(std::size_t num_inputs, std::uint16_t bits)
    : num_inputs_(num_inputs), bits_(bits) {
  SW_REQUIRE(num_inputs >= 1 && num_inputs <= kMaxTableInputs,
             "truth table arity must be in [1, 4]");
  SW_REQUIRE((bits & ~full_mask()) == 0,
             "truth table has bits beyond 2^num_inputs assignments");
}

TruthTable TruthTable::from_string(const std::string& column) {
  std::size_t n = 1;
  while (n < kMaxTableInputs && (std::size_t{1} << n) < column.size()) ++n;
  const std::size_t size = std::size_t{1} << n;
  SW_REQUIRE(column.size() == size,
             "truth table column length must be a power of two in [2, 16]");
  std::uint16_t bits = 0;
  for (std::size_t i = 0; i < size; ++i) {
    const char c = column[i];
    SW_REQUIRE(c == '0' || c == '1', "truth table column must be 0/1 digits");
    if (c == '1') bits |= static_cast<std::uint16_t>(1u << (size - 1 - i));
  }
  return TruthTable(n, bits);
}

bool TruthTable::depends_on(std::size_t input) const {
  SW_REQUIRE(input < num_inputs_, "input index out of range");
  return negate_input(input) != *this;
}

TruthTable TruthTable::negate_input(std::size_t input) const {
  SW_REQUIRE(input < num_inputs_, "input index out of range");
  std::uint16_t out = 0;
  for (std::size_t a = 0; a < size(); ++a) {
    if (value(a ^ (std::size_t{1} << input))) {
      out |= static_cast<std::uint16_t>(1u << a);
    }
  }
  return TruthTable(num_inputs_, out);
}

TruthTable TruthTable::permute(
    const std::array<std::uint8_t, kMaxTableInputs>& perm) const {
  std::uint16_t out = 0;
  for (std::size_t a_new = 0; a_new < size(); ++a_new) {
    std::size_t a_old = 0;
    for (std::size_t i = 0; i < num_inputs_; ++i) {
      SW_REQUIRE(perm[i] < num_inputs_, "permutation entry out of range");
      a_old |= ((a_new >> i) & 1u) << perm[i];
    }
    if (value(a_old)) out |= static_cast<std::uint16_t>(1u << a_new);
  }
  return TruthTable(num_inputs_, out);
}

TruthTable TruthTable::cofactor(std::size_t input, bool bound) const {
  SW_REQUIRE(num_inputs_ >= 2, "cofactor needs arity >= 2");
  SW_REQUIRE(input < num_inputs_, "input index out of range");
  const std::size_t low_mask = (std::size_t{1} << input) - 1;
  std::uint16_t out = 0;
  for (std::size_t a = 0; a < size() / 2; ++a) {
    const std::size_t full = (a & low_mask) |
                             (bound ? (std::size_t{1} << input) : 0) |
                             ((a & ~low_mask) << 1);
    if (value(full)) out |= static_cast<std::uint16_t>(1u << a);
  }
  return TruthTable(num_inputs_ - 1, out);
}

TruthTable NpnTransform::apply(const TruthTable& t) const {
  TruthTable out = t;
  for (std::size_t j = 0; j < t.num_inputs(); ++j) {
    if ((input_negations >> j) & 1u) out = out.negate_input(j);
  }
  out = out.permute(perm);
  if (output_negated) out = out.complement();
  return out;
}

NpnClass npn_canonicalize(const TruthTable& t) {
  const std::size_t n = t.num_inputs();
  std::array<std::uint8_t, kMaxTableInputs> perm{0, 1, 2, 3};
  NpnClass best;
  bool first = true;
  do {
    for (std::uint8_t neg = 0; neg < (1u << n); ++neg) {
      for (int out_neg = 0; out_neg < 2; ++out_neg) {
        NpnTransform tf;
        tf.perm = perm;
        tf.input_negations = neg;
        tf.output_negated = out_neg != 0;
        const TruthTable candidate = tf.apply(t);
        if (first || candidate.bits() < best.representative.bits()) {
          best.representative = candidate;
          best.transform = tf;
          first = false;
        }
      }
    }
  } while (std::next_permutation(perm.begin(), perm.begin() + n));
  return best;
}

}  // namespace sw::compile
