// Majority-chain synthesis: truth table -> cascade of 3-input majority
// gates with free complements.
//
// The physical fabric (core/cascade.h) composes 3-input in-line majority
// gates where every negation is free — inputs complement by flipping the
// drive phase, outputs by reading a half-wavelength port — and constants
// are just transducers pinned to phase 0 or pi. The synthesis target is
// therefore a *majority chain*: a topological list of MAJ3 nodes whose
// fanins are constants, primary inputs or earlier nodes, each with an
// optional complement, the last node being the output. AND/OR come out as
// MAJ with a constant fanin, so the `BooleanOp` set is subsumed.
//
// The search (percy-style exact chain enumeration, bounded):
//   1. constants and single-input functions are emitted directly;
//   2. non-essential inputs are dropped first (support reduction);
//   3. the reduced table is NPN-canonicalised (truth_table.h) and the
//      representative's chain is memoised — equivalent functions share one
//      search and one circuit shape;
//   4. a representative is solved by iterative-deepening exact search up to
//      Options::max_exact_gates nodes (within the minimal gate count the
//      lowest-depth chain wins — depth is physical cascade latency), with
//      branches deduplicated by the *function* a candidate node computes
//      (complement-closed: a chain's future depends only on the set of
//      functions available, and complements are free);
//   5. anything deeper falls back to Shannon expansion around the
//      cheapest split variable — MUX(x, f1, f0) is 3 MAJ nodes and the
//      cofactors recurse through the memo — so synthesis always
//      terminates with a correct (if not minimal) chain.
//
// Every compiled circuit is re-simulated against its target table before
// it is returned; a synthesis bug surfaces as an exception, never as a
// wrong circuit.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "compile/truth_table.h"

namespace sw::compile {

/// One fanin of a majority node. kConstZero negated is constant one.
struct Literal {
  enum class Kind : std::uint8_t { kConstZero = 0, kInput = 1, kNode = 2 };
  Kind kind = Kind::kConstZero;
  std::uint32_t index = 0;  ///< input position or node position (kind-typed)
  bool negated = false;

  friend bool operator==(const Literal&, const Literal&) = default;
};

constexpr Literal const_zero() { return {Literal::Kind::kConstZero, 0, false}; }
constexpr Literal const_one() { return {Literal::Kind::kConstZero, 0, true}; }
constexpr Literal input_lit(std::uint32_t i, bool negated = false) {
  return {Literal::Kind::kInput, i, negated};
}
constexpr Literal node_lit(std::uint32_t i, bool negated = false) {
  return {Literal::Kind::kNode, i, negated};
}

struct MajNode {
  std::array<Literal, 3> in{};
  /// Read the node's output from a half-integer port (free complement).
  bool invert_output = false;

  friend bool operator==(const MajNode&, const MajNode&) = default;
};

/// A synthesized majority chain. Nodes are topological (fanins reference
/// only inputs, constants and strictly earlier nodes); the circuit output
/// is the last node's output.
struct CompiledCircuit {
  std::size_t num_inputs = 0;
  std::vector<MajNode> nodes;
  /// Longest node-to-node path to the output (1 for a single gate):
  /// the number of physical stages a wavefront traverses.
  std::size_t depth = 0;
  /// The function the circuit realises (set — and verified — by compile).
  TruthTable function;

  /// Reference simulation of one input assignment.
  bool eval(std::size_t assignment) const;
  /// Simulate all assignments into a table (arity = num_inputs).
  TruthTable table() const;
};

/// Recompute CompiledCircuit::depth from the node list.
std::size_t circuit_depth(const CompiledCircuit& circuit);

class Synthesizer {
 public:
  struct Options {
    /// Gate budget of the exact search; beyond it synthesis decomposes.
    /// 3 covers every n <= 2 function and the bulk of the n = 3 classes
    /// while keeping the n = 4 search in the low milliseconds.
    std::size_t max_exact_gates = 3;
  };

  struct Stats {
    std::uint64_t requests = 0;    ///< compile() calls
    std::uint64_t memo_hits = 0;   ///< served from the NPN-class memo
    std::uint64_t exact = 0;       ///< representatives solved exactly
    std::uint64_t decomposed = 0;  ///< representatives solved by Shannon
  };

  Synthesizer() = default;
  explicit Synthesizer(Options options) : options_(options) {}

  /// Synthesize a majority chain computing `t`. Deterministic: the same
  /// table always yields the same circuit. Throws only on internal
  /// verification failure (a bug, not an input condition).
  CompiledCircuit compile(const TruthTable& t);

  const Stats& stats() const { return stats_; }
  std::size_t memo_size() const { return memo_.size(); }

 private:
  CompiledCircuit compile_reduced(const TruthTable& t);
  CompiledCircuit compile_canonical(const TruthTable& rep);
  bool exact_search(const TruthTable& rep, CompiledCircuit& out) const;
  CompiledCircuit shannon(const TruthTable& rep);

  Options options_;
  Stats stats_;
  /// Key: representative arity << 16 | representative bits.
  std::unordered_map<std::uint32_t, CompiledCircuit> memo_;
};

}  // namespace sw::compile
