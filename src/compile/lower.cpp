#include "compile/lower.h"

#include <cstdint>

#include "util/error.h"

namespace sw::compile {

namespace wavesim = sw::wavesim;

wavesim::ProgramSpec lower_to_program(const CompiledCircuit& circuit,
                                      const sw::core::GateSpec& base) {
  SW_REQUIRE(!base.frequencies.empty(),
             "lowering needs at least one frequency channel");
  SW_REQUIRE(!circuit.nodes.empty(), "cannot lower an empty circuit");
  SW_REQUIRE(circuit.num_inputs >= 1, "circuit needs at least one input");
  const std::size_t n = base.frequencies.size();

  wavesim::ProgramSpec program;
  program.num_primary_inputs = circuit.num_inputs;
  program.stages.reserve(circuit.nodes.size());
  for (const MajNode& node : circuit.nodes) {
    wavesim::StageSpec stage;
    stage.gate = base;
    stage.gate.num_inputs = 3;
    stage.gate.invert_output.clear();
    if (node.invert_output) stage.gate.invert_output.assign(n, 1);
    stage.sources.resize(3 * n);
    for (std::size_t ch = 0; ch < n; ++ch) {
      for (std::size_t k = 0; k < 3; ++k) {
        const Literal& lit = node.in[k];
        wavesim::SlotSource src;
        switch (lit.kind) {
          case Literal::Kind::kConstZero:
            src.kind = lit.negated ? wavesim::SlotSource::Kind::kOne
                                   : wavesim::SlotSource::Kind::kZero;
            break;
          case Literal::Kind::kInput:
            SW_REQUIRE(lit.index < circuit.num_inputs,
                       "circuit literal reads past its inputs");
            src.kind = wavesim::SlotSource::Kind::kPrimary;
            src.index = static_cast<std::uint32_t>(
                ch * circuit.num_inputs + lit.index);
            src.negated = lit.negated;
            break;
          case Literal::Kind::kNode:
            SW_REQUIRE(lit.index < program.stages.size(),
                       "circuit literal references a later node");
            src.kind = wavesim::SlotSource::Kind::kStage;
            src.stage = lit.index;
            src.index = static_cast<std::uint32_t>(ch);
            src.negated = lit.negated;
            break;
        }
        stage.sources[ch * 3 + k] = src;
      }
    }
    program.stages.push_back(std::move(stage));
  }
  program.validate();
  return program;
}

}  // namespace sw::compile
