#include "wavesim/batch_evaluator.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "core/detector.h"
#include "core/encoding.h"
#include "util/error.h"

namespace sw::wavesim {

std::size_t clamp_batch_threads(std::size_t num_threads,
                                std::size_t num_words) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::min(num_threads, std::max<std::size_t>(1, num_words));
}

BatchEvaluator::BatchEvaluator(const sw::core::DataParallelGate& gate,
                               BatchOptions options)
    : gate_(&gate), pool_(options.num_threads) {
  const auto& layout = gate.layout();
  const auto& engine = gate.engine();
  const auto& freqs = layout.spec.frequencies;

  plans_.reserve(layout.detectors.size());
  for (const auto& det : layout.detectors) {
    DetectorPlan plan;
    plan.channel = det.channel;
    const double f = freqs[det.channel];
    // Each contribution is the engine's own steady phasor of that single
    // source driven at phase 0 / pi, in scalar source order, so the
    // per-word sum is bitwise identical to the scalar evaluation by
    // construction (x + 0 == x keeps skipped sources invisible, but the
    // match check below also keeps the plan compact).
    for (const auto& s : layout.sources) {
      const double sf = freqs[s.channel];
      if (std::abs(sf - f) > options.freq_tol * f) continue;
      WaveSource src;
      src.x = s.x;
      src.frequency = sf;
      src.amplitude = s.amplitude;
      Contribution c;
      c.channel = s.channel;
      c.input = s.input;
      c.slot = s.channel * layout.spec.num_inputs + s.input;
      src.phase = sw::core::kPhaseZero;
      c.zero = engine.steady_phasor({&src, 1}, det.x, f, options.freq_tol);
      src.phase = sw::core::kPhaseOne;
      c.one = engine.steady_phasor({&src, 1}, det.x, f, options.freq_tol);
      plan.contributions.push_back(c);
    }
    plans_.push_back(std::move(plan));
  }
}

template <typename BitFn>
std::vector<std::vector<sw::core::ChannelResult>> BatchEvaluator::run(
    std::size_t num_words, const BitFn& bit) const {
  std::vector<std::vector<sw::core::ChannelResult>> out(num_words);
  pool_.parallel_for(num_words, [&](std::size_t begin, std::size_t end) {
    for (std::size_t w = begin; w < end; ++w) {
      std::vector<sw::core::ChannelResult> results;
      results.reserve(plans_.size());
      for (const auto& plan : plans_) {
        std::complex<double> acc{0.0, 0.0};
        for (const auto& c : plan.contributions) {
          acc += bit(w, c.channel, c.input) ? c.one : c.zero;
        }
        const auto decision =
            sw::core::decide_phase(acc, sw::core::kPhaseZero);
        sw::core::ChannelResult r;
        r.channel = plan.channel;
        r.logic = decision.logic;
        r.phase = decision.phase;
        r.amplitude = decision.amplitude;
        r.margin = decision.margin;
        results.push_back(r);
      }
      out[w] = std::move(results);
    }
  });
  return out;
}

std::vector<std::vector<sw::core::ChannelResult>> BatchEvaluator::evaluate(
    std::span<const std::vector<sw::core::Bits>> batch) const {
  const std::size_t n = gate_->layout().spec.frequencies.size();
  const std::size_t m = gate_->layout().spec.num_inputs;
  for (const auto& word : batch) {
    SW_REQUIRE(word.size() == n, "each word needs one bit vector per channel");
    for (const auto& bits : word) {
      SW_REQUIRE(bits.size() == m, "each channel needs m bits");
    }
  }
  return run(batch.size(),
             [&batch](std::size_t w, std::size_t ch, std::size_t in) {
               return batch[w][ch][in];
             });
}

std::vector<std::vector<sw::core::ChannelResult>>
BatchEvaluator::evaluate_uniform(std::span<const sw::core::Bits> patterns) const {
  const std::size_t m = gate_->layout().spec.num_inputs;
  for (const auto& p : patterns) {
    SW_REQUIRE(p.size() == m, "each pattern needs m bits");
  }
  return run(patterns.size(),
             [&patterns](std::size_t w, std::size_t, std::size_t in) {
               return patterns[w][in];
             });
}

std::vector<std::vector<sw::core::ChannelResult>> BatchEvaluator::evaluate_with(
    std::size_t num_words, const BitAccessor& bit) const {
  SW_REQUIRE(static_cast<bool>(bit), "bit accessor must be callable");
  return run(num_words, bit);
}

std::size_t BatchEvaluator::slot_count() const {
  const auto& spec = gate_->layout().spec;
  return spec.frequencies.size() * spec.num_inputs;
}

std::vector<std::uint8_t> BatchEvaluator::evaluate_bits(
    std::size_t num_words, std::span<const std::uint8_t> bits) const {
  const std::size_t stride = slot_count();
  const std::size_t channels = gate_->layout().spec.frequencies.size();
  SW_REQUIRE(bits.size() == num_words * stride,
             "packed bit matrix must be num_words x slot_count");

  std::vector<std::uint8_t> out(num_words * channels);
  pool_.parallel_for(num_words, [&](std::size_t begin, std::size_t end) {
    for (std::size_t w = begin; w < end; ++w) {
      const std::uint8_t* word = bits.data() + w * stride;
      std::uint8_t* row = out.data() + w * channels;
      for (const auto& plan : plans_) {
        std::complex<double> acc{0.0, 0.0};
        for (const auto& c : plan.contributions) {
          acc += word[c.slot] ? c.one : c.zero;
        }
        // decide_phase with reference 0: logic 1 iff the phase is closer
        // to pi than to 0, which is exactly Re(acc) < 0.
        row[plan.channel] = acc.real() < 0.0 ? 1 : 0;
      }
    }
  });
  return out;
}

}  // namespace sw::wavesim
